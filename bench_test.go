package everest_test

import (
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"

	"everest/internal/base2"
	"everest/internal/ekl"
	"everest/internal/experiments"
	"everest/internal/fleet"
	"everest/internal/runtime"
	"everest/internal/sdk"
	"everest/internal/tensor"
	"everest/internal/traffic"
	"everest/internal/wrf"
)

// The BenchmarkE* benches regenerate each reproduction experiment
// (DESIGN.md §4) and report its key metric, so `go test -bench=.` both
// exercises the full system and emits the paper-shaped quantities.

func benchExperiment(b *testing.B, fn func() (experiments.Table, error), metrics ...string) {
	b.Helper()
	var tab experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = fn()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, m := range metrics {
		if v, ok := tab.KeyMetrics[m]; ok {
			b.ReportMetric(v, m)
		}
	}
}

// BenchmarkE1_EKLKernel — Fig. 3 compactness & equivalence.
func BenchmarkE1_EKLKernel(b *testing.B) {
	benchExperiment(b, experiments.E1, "ekl_statements", "max_diff")
}

// BenchmarkE2_LoweringPipeline — Fig. 5 dialect lowering.
func BenchmarkE2_LoweringPipeline(b *testing.B) {
	benchExperiment(b, experiments.E2, "affine_for")
}

// BenchmarkE3_OlympusAblation — §V-C memory architecture ladder.
func BenchmarkE3_OlympusAblation(b *testing.B) {
	benchExperiment(b, experiments.E3, "speedup_+packing")
}

// BenchmarkE4_DataFormats — base2 accuracy/resource trade-off.
func BenchmarkE4_DataFormats(b *testing.B) {
	benchExperiment(b, experiments.E4, "lut_f64", "err_bf16")
}

// BenchmarkE5_Virtualization — §VI-B SR-IOV overhead.
func BenchmarkE5_Virtualization(b *testing.B) {
	benchExperiment(b, experiments.E5, "overhead_vf-passthrough", "overhead_virtio")
}

// BenchmarkE6_Scheduler — §VI-A resource manager.
func BenchmarkE6_Scheduler(b *testing.B) {
	benchExperiment(b, experiments.E6, "recovery_inflation")
}

// BenchmarkE7_Autotune — §VI-C mARGOt adaptation.
func BenchmarkE7_Autotune(b *testing.B) {
	benchExperiment(b, experiments.E7, "recovered_fpga")
}

// BenchmarkE8_AnomalyAutoML — §VII TPE vs random.
func BenchmarkE8_AnomalyAutoML(b *testing.B) {
	benchExperiment(b, experiments.E8, "tpe_f1", "random_f1")
}

// BenchmarkE9_PTDR — §VIII PTDR CPU vs FPGA.
func BenchmarkE9_PTDR(b *testing.B) {
	benchExperiment(b, experiments.E9, "speedup_100000")
}

// BenchmarkE10_MapMatching — §VIII placement exploration.
func BenchmarkE10_MapMatching(b *testing.B) {
	benchExperiment(b, experiments.E10, "proj_fpga_100000")
}

// BenchmarkE11_WRFEnsemble — §II-A accelerated WRF.
func BenchmarkE11_WRFEnsemble(b *testing.B) {
	benchExperiment(b, experiments.E11, "radiation_fraction", "step_speedup")
}

// BenchmarkE12_EnergyForecast — §II-B KRR backtest.
func BenchmarkE12_EnergyForecast(b *testing.B) {
	benchExperiment(b, experiments.E12, "krr_mae", "physical_mae")
}

// BenchmarkE13_AirQuality — §II-C correction pipeline.
func BenchmarkE13_AirQuality(b *testing.B) {
	benchExperiment(b, experiments.E13, "raw_logerr", "corrected_logerr")
}

// BenchmarkE14_TrafficModels — §II-D traffic suite.
func BenchmarkE14_TrafficModels(b *testing.B) {
	benchExperiment(b, experiments.E14, "match_accuracy", "cnn_mae")
}

// BenchmarkConcurrentWorkflows exercises the concurrent multi-tenant engine:
// each iteration submits 8 mixed workflows to a Server over an 8-node
// cluster, waits for them all, and compares the modelled completion time
// against running the same workflows back-to-back through the serial
// planner. The reported speedup_x8 metric is the acceptance number (>= 2x).
func BenchmarkConcurrentWorkflows(b *testing.B) {
	const workflows = 8
	ws := make([]*runtime.Workflow, workflows)
	for i := range ws {
		ws[i] = sdk.SyntheticWorkflow(i)
	}
	serial, err := sdk.New(sdk.DefaultCluster(8)).SerialMakespan(runtime.PolicyHEFT, ws...)
	if err != nil {
		b.Fatal(err)
	}
	var speedups []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv := sdk.New(sdk.DefaultCluster(8)).NewServer(sdk.ServerConfig{Policy: runtime.PolicyHEFT})
		subs := make([]*sdk.Submission, workflows)
		for j := range subs {
			sub, err := srv.Submit("bench", "", sdk.SyntheticWorkflow(j))
			if err != nil {
				b.Fatal(err)
			}
			subs[j] = sub
		}
		if err := srv.Start(); err != nil {
			b.Fatal(err)
		}
		for _, sub := range subs {
			if _, err := sub.Wait(); err != nil {
				b.Fatal(err)
			}
		}
		stats := srv.Shutdown()
		speedups = append(speedups, serial/stats.Makespan)
	}
	b.ReportMetric(median(speedups), "speedup_x8")
}

// BenchmarkAdaptivePlacement exercises the closed autotuner→engine→virt
// loop: each iteration serves the E-adapt scenario — FPGA-leaning
// workflows hit mid-run by an accelerator unplug and a node slowdown —
// once with static placement and once adaptively, on identical clusters
// and fault scripts. The reported speedup_adaptive metric is the
// acceptance number (>= 1.3x; the committed baseline in BENCH_2.json is
// what CI's bench gate compares against).
func BenchmarkAdaptivePlacement(b *testing.B) {
	sc := sdk.DefaultAdaptiveScenario()
	var speedups, makespans []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		static, err := sc.Run(false)
		if err != nil {
			b.Fatal(err)
		}
		adaptive, err := sc.Run(true)
		if err != nil {
			b.Fatal(err)
		}
		speedups = append(speedups, static.Makespan/adaptive.Makespan)
		makespans = append(makespans, adaptive.Makespan)
	}
	// The scenario is exactly deterministic (sequential serving over
	// modelled-time fault timelines), so every iteration yields the same
	// ratio; the median is reported for uniformity with the genuinely
	// interleaving-variant BenchmarkConcurrentWorkflows.
	b.ReportMetric(median(speedups), "speedup_adaptive")
	b.ReportMetric(median(makespans), "modelled_s")
}

// BenchmarkCompiledVariants exercises the closed compilation→runtime loop
// (E-compile): the windpower KRR kernel is compiled source-to-schedule
// (EKL → MLIR → HLS → Olympus), staged on part of the cluster, and the
// same workflows and mid-run faults are served twice — once on the static
// engine (the hand-declared path: placement from the design-time task
// cost model) and once adaptively with every workflow's tuner seeded from
// the compiler-derived cpu1/cpu16/fpga operating points, transfers priced
// over the TCP/10G cloudFPGA stack in both arms. The scenario is exactly
// deterministic (sequential serving over modelled-time fault timelines),
// so the reported speedup_compiled is identical across GOMAXPROCS and is
// what CI's bench gate pins via BENCH_3.json.
func BenchmarkCompiledVariants(b *testing.B) {
	sc := sdk.DefaultCompiledScenario()
	c, err := sc.Compile()
	if err != nil {
		b.Fatal(err)
	}
	var speedups, makespans []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		static, err := sc.RunWith(c, false)
		if err != nil {
			b.Fatal(err)
		}
		adaptive, err := sc.RunWith(c, true)
		if err != nil {
			b.Fatal(err)
		}
		speedups = append(speedups, static.Makespan/adaptive.Makespan)
		makespans = append(makespans, adaptive.Makespan)
	}
	b.ReportMetric(median(speedups), "speedup_compiled")
	b.ReportMetric(median(makespans), "modelled_s")
}

// BenchmarkFleetThroughput exercises the federation tier (E-fleet): the
// same aggregate workload — 64 mixed compiled and hand-declared workflows
// from 32 tenants, one-slot bitstream caches, an accelerator unplug on
// site 0 — is pushed through the open-arrival saturation ladder twice,
// once over 4 federated sites and once over a single site. The reported
// throughput_at_slo metric is the 4-site achieved throughput (workflows
// per modelled second) at the highest offered load whose p95 latency
// still meets the scenario SLO; fleet_speedup is its ratio over the
// single site (acceptance: >= 1.5x). Sequential modelled-time serving
// makes both exactly deterministic across GOMAXPROCS; CI's consolidated
// benchgate pins them via BENCH_4.json.
func BenchmarkFleetThroughput(b *testing.B) {
	sc := sdk.DefaultFleetScenario()
	c, err := sc.Compile()
	if err != nil {
		b.Fatal(err)
	}
	gaps := sdk.DefaultSaturationGaps()
	var tputs, speedups []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		multi := sc
		_, best4, err := multi.Saturate(c, gaps)
		if err != nil {
			b.Fatal(err)
		}
		single := sc
		single.Sites = 1
		_, best1, err := single.Saturate(c, gaps)
		if err != nil {
			b.Fatal(err)
		}
		if best4.Throughput <= 0 || best1.Throughput <= 0 {
			b.Fatalf("no SLO-meeting rung (4-site %+v, 1-site %+v)", best4, best1)
		}
		tputs = append(tputs, best4.Throughput)
		speedups = append(speedups, best4.Throughput/best1.Throughput)
	}
	b.ReportMetric(median(tputs), "throughput_at_slo")
	b.ReportMetric(median(speedups), "fleet_speedup")
}

// BenchmarkAppSuite exercises the workload registry through the fleet
// tier (E-apps): all three EVEREST use-case applications — weather
// ensembles with compiled RRTMG radiation, traffic map-matching with the
// compiled Fig. 4 projection stage, energy prediction with compiled KRR
// and ONNX inference — interleaved across 24 tenants over 4 federated
// sites, swept through the open-arrival rate ladder. The reported
// suite_throughput_at_slo is the mixed-suite achieved throughput at the
// highest SLO-meeting offered load; p95_energy / p95_traffic /
// p95_weather are the per-application p95 latencies at that operating
// point. Sequential modelled-time serving makes every number exactly
// deterministic across GOMAXPROCS; CI's consolidated benchgate pins them
// via BENCH_5.json.
func BenchmarkAppSuite(b *testing.B) {
	sc := sdk.DefaultSuiteScenario()
	suite, err := sc.BuildSuite()
	if err != nil {
		b.Fatal(err)
	}
	gaps := []float64{0.64, 0.16, 0.08, 0.04, 0.02}
	var tputs []float64
	appP95s := make(map[string][]float64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, best, perApp, err := sc.SaturateSuite(suite, gaps)
		if err != nil {
			b.Fatal(err)
		}
		if best.Throughput <= 0 {
			b.Fatalf("no SLO-meeting rung: %+v", points)
		}
		tputs = append(tputs, best.Throughput)
		for j, p := range points {
			if p.Gap != best.Gap {
				continue
			}
			for name, tl := range perApp[j] {
				appP95s[name] = append(appP95s[name], tl.P95)
			}
		}
	}
	b.ReportMetric(median(tputs), "suite_throughput_at_slo")
	for name, p95s := range appP95s {
		b.ReportMetric(median(p95s), "p95_"+name)
	}
}

// BenchmarkGuaranteedServing exercises the proven-bound admission class
// (E-wcet): the E-fleet mix driven toward best-effort saturation with
// every 4th submission requesting a guaranteed 4s deadline, while site 0
// loses an accelerator and suffers a 3x CPU slowdown mid-run. Reported:
// guaranteed_admit_rate (admissions / guaranteed requests — refusals
// degrade to best-effort), bound_violations (admitted completions past
// their proven bound; pinned EXACTLY at zero by BENCH_8.json — the
// admission math is either sound or broken), and bound_tightness (worst
// observed latency/bound ratio — how sharp the proof is; must stay in
// (0, 1]). Modelled-time metrics: exactly deterministic across
// GOMAXPROCS.
func BenchmarkGuaranteedServing(b *testing.B) {
	sc := sdk.DefaultGuaranteedScenario()
	c, err := sc.Compile()
	if err != nil {
		b.Fatal(err)
	}
	var admit, tight []float64
	violations := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sc.RunWith(c)
		if err != nil {
			b.Fatal(err)
		}
		if res.GuaranteedAdmitted == 0 {
			b.Fatal("no guaranteed admissions: the bench proves nothing")
		}
		admit = append(admit, res.GuaranteedAdmitRate)
		tight = append(tight, res.BoundTightness)
		violations += float64(res.BoundViolations)
	}
	b.ReportMetric(median(admit), "guaranteed_admit_rate")
	b.ReportMetric(median(tight), "bound_tightness")
	// Violations are summed, not medianed: one bad run must not hide.
	b.ReportMetric(violations, "bound_violations")
}

// BenchmarkStreamThroughput exercises the streaming tier (E-stream): the
// million-event sensor feed — four traffic/energy pipelines of 250k
// events each, alternating guaranteed and best-effort tenants — is swept
// through the offered-rate ladder, and the same feed is then served with
// partial reconfiguration on and off at the default rate. The reported
// events_per_sec_at_slo metric is the sustained throughput (events per
// modelled second, all pipelines) at the highest rate rung whose p99
// end-to-end event latency meets the 0.25s SLO with negligible shedding;
// stream_p99_s is that rung's p99; pr_swap_win is the throughput ratio of
// the partial-reconfiguration run over the whole-device-reload run
// (acceptance: a measurable win, >= 1.5x). Single-threaded modelled-time
// serving makes every number exactly deterministic across GOMAXPROCS;
// CI's consolidated benchgate pins them via BENCH_7.json.
func BenchmarkStreamThroughput(b *testing.B) {
	srv, err := sdk.NewStreamServer(sdk.DefaultStreamScenario())
	if err != nil {
		b.Fatal(err)
	}
	rates := sdk.DefaultStreamRates()
	var tputs, p99s, wins []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, best, err := srv.Saturate(rates)
		if err != nil {
			b.Fatal(err)
		}
		if best.Throughput <= 0 {
			b.Fatal("no rate rung met the p99 SLO")
		}
		on, off, err := srv.SwapWin()
		if err != nil {
			b.Fatal(err)
		}
		if off.Swaps <= 0 {
			b.Fatalf("whole-device arm paid no swaps (%+v); the win would be vacuous", off)
		}
		tputs = append(tputs, best.Throughput)
		p99s = append(p99s, best.P99)
		wins = append(wins, on.Throughput/off.Throughput)
	}
	b.ReportMetric(median(tputs), "events_per_sec_at_slo")
	b.ReportMetric(median(p99s), "stream_p99_s")
	b.ReportMetric(median(wins), "pr_swap_win")
}

// BenchmarkRegionServing exercises the hierarchical multi-region tier
// (E-region): a traffic wave rotating across 3 geo-distributed regions
// — each a full federation on its own registry fabric — over the 1 Gb/s
// WAN, with background batch churn evicting wave bitstreams from the
// bounded region stores, proven-bound guaranteed admissions, and
// inter-region handoff priced against local cold serving. Each
// iteration serves the same suite twice, with forecast-driven bitstream
// prefetch on and off. The gated region_prefetch_speedup is the ratio
// of the arms' tail cold-start overhead p99 — the p99 of (latency minus
// engine service time) over steady-state non-batch submissions, i.e.
// the WAN-refetch + deploy + queue overhead prefetch attacks, reported
// independently of the apps' intrinsic compute (acceptance: >= 1.5x);
// region_coldstart_p99_s is the prefetch-on arm's absolute overhead;
// region_bound_violations (summed, exact pin 0) says every admitted
// guarantee held on both arms. Modelled-time serving: every number is
// exactly deterministic across GOMAXPROCS; CI's consolidated benchgate
// pins them via BENCH_9.json.
func BenchmarkRegionServing(b *testing.B) {
	sc := sdk.DefaultRegionScenario()
	s, err := sc.BuildSuite()
	if err != nil {
		b.Fatal(err)
	}
	var speedups, overheads []float64
	violations := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arms := map[bool]sdk.RegionResult{}
		for _, pf := range []bool{true, false} {
			run := sc
			run.Prefetch = pf
			res, err := run.RunSuite(s)
			if err != nil {
				b.Fatal(err)
			}
			if res.Completed != sc.Workflows {
				b.Fatalf("prefetch=%v completed %d/%d", pf, res.Completed, sc.Workflows)
			}
			if res.GuaranteedAdmitted == 0 {
				b.Fatalf("prefetch=%v: no guaranteed admissions — the bench proves nothing", pf)
			}
			violations += float64(res.BoundViolations)
			arms[pf] = res
		}
		on, off := arms[true], arms[false]
		if on.TailColdStartP99 <= 0 {
			b.Fatal("prefetch-on arm has no tail overhead to compare")
		}
		speedups = append(speedups, off.TailColdStartP99/on.TailColdStartP99)
		overheads = append(overheads, on.TailColdStartP99)
	}
	b.ReportMetric(median(speedups), "region_prefetch_speedup")
	b.ReportMetric(median(overheads), "region_coldstart_p99_s")
	// Violations are summed, not medianed: one bad run must not hide.
	b.ReportMetric(violations, "region_bound_violations")
}

// BenchmarkDatasetLocality exercises the named data plane (E-data): the
// FPGA map-reduce k-means workload — point partitions scattered across a
// 4-site federation on a 1 Gb/s WAN, three rounds of compiled map shards
// folding their partition into per-cluster partials plus a reduce
// combining them — served twice, with placement-aware routing on and
// off. With locality pricing the router moves each map shard to the site
// holding its partition and only the tiny partials cross the fabric;
// blind, the same workload is placed by queue balance alone and the
// partitions themselves get shipped. The gated data_locality_byte_win is
// the ratio of the arms' shipped-bytes-per-workflow (acceptance: >=
// 1.5x); data_shipped_bytes_per_wf is the locality arm's absolute
// staging traffic; data_wf_per_modelled_s its serving throughput.
// Modelled-time serving with submit-and-wait rounds: every number is
// exactly deterministic across GOMAXPROCS; CI's consolidated benchgate
// pins them via BENCH_10.json.
func BenchmarkDatasetLocality(b *testing.B) {
	var wins, shipped, tputs []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arms := map[bool]sdk.KMeansResult{}
		for _, blind := range []bool{false, true} {
			sc := sdk.DefaultKMeansScenario()
			sc.PlacementBlind = blind
			res, err := sc.Run()
			if err != nil {
				b.Fatal(err)
			}
			if res.Workflows != sc.Rounds*(sc.Config.Partitions+1) {
				b.Fatalf("blind=%v completed %d workflows", blind, res.Workflows)
			}
			arms[blind] = res
		}
		local, blind := arms[false], arms[true]
		if blind.ShippedBytes == 0 {
			b.Fatal("blind arm shipped nothing; the contrast is vacuous")
		}
		if local.DatasetHits == 0 {
			b.Fatal("locality arm never hit its store; the contrast is vacuous")
		}
		if local.BytesPerWorkflow <= 0 {
			b.Fatal("locality arm shipped nothing at all; the ratio is degenerate")
		}
		wins = append(wins, blind.BytesPerWorkflow/local.BytesPerWorkflow)
		shipped = append(shipped, local.BytesPerWorkflow)
		tputs = append(tputs, local.Throughput)
	}
	b.ReportMetric(median(wins), "data_locality_byte_win")
	b.ReportMetric(median(shipped), "data_shipped_bytes_per_wf")
	b.ReportMetric(median(tputs), "data_wf_per_modelled_s")
}

// BenchmarkSimulatorSpeed is the event-core self-bench (E-speed): it drives
// the full E-fleet scenario — 64 workflows from 32 tenants over 4 federated
// sites with an accelerator unplug — and reports how fast the modelled-time
// engine itself runs in *wall-clock* terms. workflows_per_wall_second is
// end-to-end serving speed; ns_per_event is wall nanoseconds per fleet
// trace event (deploys, hits, evictions, routes, completions), a proxy for
// per-event dispatch cost that is insensitive to workflow size. Unlike the
// modelled metrics in BENCH_2–5 these numbers measure the host machine, so
// BENCH_6.json gates them with a widened jitter tolerance (see its comment).
func BenchmarkSimulatorSpeed(b *testing.B) {
	sc := sdk.DefaultFleetScenario()
	c, err := sc.Compile()
	if err != nil {
		b.Fatal(err)
	}
	var events atomic.Int64
	sc.Trace = func(fleet.Event) { events.Add(1) }
	var completed int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sc.RunWith(c)
		if err != nil {
			b.Fatal(err)
		}
		completed += res.Completed
	}
	b.StopTimer()
	wall := b.Elapsed().Seconds()
	b.ReportMetric(float64(completed)/wall, "workflows_per_wall_second")
	b.ReportMetric(wall*1e9/float64(events.Load()), "ns_per_event")
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// Micro-benchmarks of the hot substrate kernels.

func BenchmarkEinsumMatMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.Random(rng, -1, 1, 64, 64)
	y := tensor.Random(rng, -1, 1, 64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(x, y)
	}
}

func BenchmarkPositEncodeDecode(b *testing.B) {
	p, err := base2.NewPositFormat(16, 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 100
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := vals[i%len(vals)]
		if p.Decode(p.Encode(v)) == -1 {
			b.Fatal("impossible")
		}
	}
}

func BenchmarkEKLInterpreterRRTMG(b *testing.B) {
	k, err := ekl.ParseKernel(wrf.EKLSource())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	const nflav, nT, nP, nEta, nx, ng = 3, 12, 16, 9, 16, 8
	intT := func(max int, shape ...int) *tensor.Tensor {
		t := tensor.New(shape...)
		for i := range t.Data() {
			t.Data()[i] = float64(rng.Intn(max))
		}
		return t
	}
	bind := ekl.Binding{
		Tensors: map[string]*tensor.Tensor{
			"p":           tensor.Random(rng, 5000, 101325, nx),
			"bnd_to_flav": intT(nflav, 2, 4),
			"j_T":         intT(nT-2, nx),
			"j_p":         intT(nP-3, nx),
			"j_eta":       intT(nEta-2, nflav, nx),
			"r_mix":       tensor.Random(rng, 0, 1, nflav, nx, 2),
			"f_major":     tensor.Random(rng, 0, 1, nflav, nx, 2, 2, 2),
			"k_major":     tensor.Random(rng, 0.1, 1, nT, nP, nEta, ng),
		},
		Scalars: map[string]float64{"bnd": 1},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Run(bind); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkViterbiMatch(b *testing.B) {
	net := traffic.GridNetwork(6, 6, 200, 1)
	trace, err := traffic.SimulateTrip(net, 3, 8, 10, 80)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := traffic.MatchTrace(net, trace, 60, 10, 30, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPTDRMonteCarlo(b *testing.B) {
	net := traffic.GridNetwork(6, 6, 200, 1)
	profile := traffic.BuildProfile(net, 7)
	route, _, err := net.ShortestPath(0, 35)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := traffic.MonteCarlo(net, profile, route, 8.5*3600, 1000, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWRFStep(b *testing.B) {
	cfg := wrf.Config{NX: 16, NY: 16, NZ: 8, DT: 60, DX: 3000, RadiationEvery: 1}
	s := wrf.NewState(cfg, 1)
	rad := wrf.NewRadiation(1, cfg.NZ)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(rad)
	}
}
