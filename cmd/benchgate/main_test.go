package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: everest
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkConcurrentWorkflows 	      10	    291766 ns/op	         2.350 speedup_x8
BenchmarkAdaptivePlacement-8   	      10	    723624 ns/op	         0.5860 modelled_s	        13.49 speedup_adaptive
BenchmarkEinsumMatMul64-8      	    5000	    240000 ns/op
PASS
ok  	everest	0.015s
`

func sampleBaseline(concurrent, adaptive float64) Baseline {
	return Baseline{
		Tolerance: 0.25,
		Benchmarks: map[string]Reference{
			"BenchmarkConcurrentWorkflows": {Metric: "speedup_x8", HigherIsBetter: true, Value: concurrent},
			"BenchmarkAdaptivePlacement":   {Metric: "speedup_adaptive", HigherIsBetter: true, Value: adaptive},
		},
	}
}

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if v := got["BenchmarkConcurrentWorkflows"]["speedup_x8"]; v != 2.35 {
		t.Errorf("speedup_x8 = %g, want 2.35", v)
	}
	if v := got["BenchmarkAdaptivePlacement"]["speedup_adaptive"]; v != 13.49 {
		t.Errorf("speedup_adaptive = %g, want 13.49 (suffix must strip)", v)
	}
	if v := got["BenchmarkAdaptivePlacement"]["modelled_s"]; v != 0.586 {
		t.Errorf("modelled_s = %g, want 0.586", v)
	}
	if v := got["BenchmarkEinsumMatMul64"]["ns/op"]; v != 240000 {
		t.Errorf("ns/op = %g, want 240000", v)
	}
}

func TestCheckPassAndFail(t *testing.T) {
	observed, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	// Within tolerance: observed 2.35 vs baseline 2.5 is a 6% dip.
	if lines, ok := check(sampleBaseline(2.5, 13.0), observed); !ok {
		t.Errorf("small dip must pass:\n%s", strings.Join(lines, "\n"))
	}
	// Beyond tolerance: observed 2.35 vs baseline 4.0 is a 41% dip.
	lines, ok := check(sampleBaseline(4.0, 13.0), observed)
	if ok {
		t.Error("41%% regression must fail")
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "FAIL BenchmarkConcurrentWorkflows") {
		t.Errorf("verdicts missing failure:\n%s", joined)
	}
	// A gated benchmark absent from the output must fail.
	base := sampleBaseline(2.0, 13.0)
	base.Benchmarks["BenchmarkGhost"] = Reference{Metric: "speedup", HigherIsBetter: true, Value: 1}
	if _, ok := check(base, observed); ok {
		t.Error("missing benchmark must fail")
	}
	// Lower-is-better direction.
	base = Baseline{Benchmarks: map[string]Reference{
		"BenchmarkAdaptivePlacement": {Metric: "modelled_s", HigherIsBetter: false, Value: 0.3},
	}}
	if _, ok := check(base, observed); ok {
		t.Error("0.586s vs 0.3s baseline (lower-is-better) must fail")
	}
}

// wallBench mimics the E-speed self-bench output at a given jitter factor:
// the machine running slow by `slow` multiplies ns_per_event (lower is
// better) and divides workflows_per_wall_second (higher is better).
func wallBench(slow float64) string {
	return "BenchmarkSimulatorSpeed \t 500\t " +
		strconvF(520000*slow) + " ns/op\t " +
		strconvF(2850*slow) + " ns_per_event\t " +
		strconvF(118000/slow) + " workflows_per_wall_second\n"
}

func strconvF(v float64) string {
	raw, _ := json.Marshal(v)
	return string(raw)
}

func wallBaseline(tol float64) Baseline {
	return Baseline{
		Tolerance: tol,
		Comment:   "wall-clock metrics; tolerance widened for runner jitter",
		Benchmarks: map[string]Reference{
			"BenchmarkSimulatorSpeed": {
				Metric: "workflows_per_wall_second", HigherIsBetter: true, Value: 118000,
			},
			"BenchmarkSimulatorSpeed@ns_per_event": {
				Metric: "ns_per_event", HigherIsBetter: false, Value: 2850,
			},
		},
	}
}

// TestWallClockJitter pins the gate's behaviour on wall-clock metrics: a
// machine-jitter slowdown inside the widened tolerance passes in BOTH
// directions (higher_is_better=true and =false), while a real regression —
// here the ~3.3x gap back to the pre-heap engine — fails both keys no
// matter how noisy the runner.
func TestWallClockJitter(t *testing.T) {
	for _, tc := range []struct {
		name string
		slow float64 // machine slowdown factor applied to the sample output
		tol  float64
		ok   bool
	}{
		{"exact baseline", 1.0, 0.40, true},
		{"15pct jitter slow", 1.15, 0.40, true},
		{"15pct jitter fast", 0.87, 0.40, true},
		{"at tolerance edge lower-is-better", 1.39, 0.40, true},
		{"beyond tolerance", 1.45, 0.40, false},
		{"engine regression 3.3x", 3.3, 0.40, false},
		{"same jitter, unwidened tolerance", 1.30, 0.25, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			observed, err := parseBench(strings.NewReader(wallBench(tc.slow)))
			if err != nil {
				t.Fatal(err)
			}
			lines, ok := check(wallBaseline(tc.tol), observed)
			if ok != tc.ok {
				t.Errorf("slow=%.2f tol=%.2f: ok=%v, want %v\n%s",
					tc.slow, tc.tol, ok, tc.ok, strings.Join(lines, "\n"))
			}
		})
	}
	// A genuine regression must flag BOTH directions, not just one.
	observed, err := parseBench(strings.NewReader(wallBench(3.3)))
	if err != nil {
		t.Fatal(err)
	}
	lines, _ := check(wallBaseline(0.40), observed)
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "FAIL BenchmarkSimulatorSpeed ") &&
		!strings.Contains(joined, "FAIL BenchmarkSimulatorSpeed:") {
		t.Errorf("workflows_per_wall_second regression not flagged:\n%s", joined)
	}
	if !strings.Contains(joined, "FAIL BenchmarkSimulatorSpeed@ns_per_event") {
		t.Errorf("ns_per_event regression not flagged:\n%s", joined)
	}
}

// TestCommentRoundTrip: -update must rewrite values while preserving the
// human-facing comment that documents the widened tolerance.
func TestCommentRoundTrip(t *testing.T) {
	dir := t.TempDir()
	baselinePath := filepath.Join(dir, "BENCH.json")
	inputPath := filepath.Join(dir, "bench.out")
	raw, err := json.Marshal(wallBaseline(0.40))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(baselinePath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(inputPath, []byte(wallBench(1.1)), 0o644); err != nil {
		t.Fatal(err)
	}
	var sink strings.Builder
	if err := run("", baselinePath, inputPath, true, &sink); err != nil {
		t.Fatal(err)
	}
	raw, err = os.ReadFile(baselinePath)
	if err != nil {
		t.Fatal(err)
	}
	var updated Baseline
	if err := json.Unmarshal(raw, &updated); err != nil {
		t.Fatal(err)
	}
	if updated.Comment != wallBaseline(0.40).Comment {
		t.Errorf("comment lost across -update: %q", updated.Comment)
	}
	if v := updated.Benchmarks["BenchmarkSimulatorSpeed@ns_per_event"].Value; v == 2850 {
		t.Error("-update left the stale ns_per_event value in place")
	}
}

func TestRunAndUpdate(t *testing.T) {
	dir := t.TempDir()
	baselinePath := filepath.Join(dir, "BENCH.json")
	inputPath := filepath.Join(dir, "bench.out")
	raw, err := json.Marshal(sampleBaseline(99, 99))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(baselinePath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(inputPath, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	var sink strings.Builder
	if err := run("", baselinePath, inputPath, false, &sink); err == nil {
		t.Error("check against inflated baseline must fail")
	}
	// Update rewrites the values; the same check then passes.
	if err := run("", baselinePath, inputPath, true, &sink); err != nil {
		t.Fatal(err)
	}
	if err := run("", baselinePath, inputPath, false, &sink); err != nil {
		t.Errorf("check after update must pass: %v", err)
	}
	var updated Baseline
	raw, err = os.ReadFile(baselinePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &updated); err != nil {
		t.Fatal(err)
	}
	if v := updated.Benchmarks["BenchmarkAdaptivePlacement"].Value; v != 13.49 {
		t.Errorf("updated value = %g, want 13.49", v)
	}
}

func TestDirGatesEveryBaseline(t *testing.T) {
	dir := t.TempDir()
	inputPath := filepath.Join(dir, "bench.out")
	if err := os.WriteFile(inputPath, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	write := func(name string, base Baseline) {
		raw, err := json.Marshal(base)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("BENCH_1.json", Baseline{Benchmarks: map[string]Reference{
		"BenchmarkConcurrentWorkflows": {Metric: "speedup_x8", HigherIsBetter: true, Value: 2.3},
	}})
	// An @alias key gates a second metric of the same benchmark.
	write("BENCH_2.json", Baseline{Benchmarks: map[string]Reference{
		"BenchmarkAdaptivePlacement":            {Metric: "speedup_adaptive", HigherIsBetter: true, Value: 13.0},
		"BenchmarkAdaptivePlacement@modelled_s": {Metric: "modelled_s", HigherIsBetter: false, Value: 0.6},
	}})
	var sink strings.Builder
	if err := run(dir, "", inputPath, false, &sink); err != nil {
		t.Fatalf("all-green dir gate failed: %v\n%s", err, sink.String())
	}
	if out := sink.String(); !strings.Contains(out, "BENCH_1.json") || !strings.Contains(out, "BENCH_2.json") {
		t.Fatalf("verdicts should name their baseline files:\n%s", out)
	}

	// A regression in ANY file fails the consolidated gate.
	write("BENCH_3.json", Baseline{Benchmarks: map[string]Reference{
		"BenchmarkConcurrentWorkflows": {Metric: "speedup_x8", HigherIsBetter: true, Value: 99},
	}})
	if err := run(dir, "", inputPath, false, &sink); err == nil {
		t.Fatal("regression in one file must fail the dir gate")
	}

	// -update with -dir rewrites every file.
	if err := run(dir, "", inputPath, true, &sink); err != nil {
		t.Fatal(err)
	}
	if err := run(dir, "", inputPath, false, &sink); err != nil {
		t.Fatalf("check after dir update must pass: %v", err)
	}

	// An empty directory is an explicit error, not a silent pass.
	if err := run(t.TempDir(), "", inputPath, false, &sink); err == nil {
		t.Fatal("dir without BENCH_*.json must error")
	}
}

func TestLoadBaselineErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "BENCH_bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBaseline(bad); err == nil {
		t.Fatal("malformed baseline accepted")
	}
	empty := filepath.Join(dir, "BENCH_empty.json")
	if err := os.WriteFile(empty, []byte(`{"tolerance":0.25,"benchmarks":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBaseline(empty); err == nil {
		t.Fatal("baseline gating nothing accepted")
	}
	if _, err := loadBaseline(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing baseline accepted")
	}
	if name := benchName("BenchmarkX@alias"); name != "BenchmarkX" {
		t.Fatalf("benchName = %q, want BenchmarkX", name)
	}
	if name := benchName("@weird"); name != "@weird" {
		t.Fatalf("leading @ must not strip, got %q", name)
	}
}

func TestDirUpdateIsAtomic(t *testing.T) {
	dir := t.TempDir()
	inputPath := filepath.Join(dir, "bench.out")
	if err := os.WriteFile(inputPath, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	good := Baseline{Benchmarks: map[string]Reference{
		"BenchmarkConcurrentWorkflows": {Metric: "speedup_x8", HigherIsBetter: true, Value: 1},
	}}
	ghost := Baseline{Benchmarks: map[string]Reference{
		"BenchmarkGhost": {Metric: "speedup", HigherIsBetter: true, Value: 1},
	}}
	for name, base := range map[string]Baseline{"BENCH_1.json": good, "BENCH_2.json": ghost} {
		raw, err := json.Marshal(base)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var sink strings.Builder
	if err := run(dir, "", inputPath, true, &sink); err == nil {
		t.Fatal("update with an unresolvable baseline must fail")
	}
	// The resolvable file must be untouched: no partial refresh.
	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_1.json"))
	if err != nil {
		t.Fatal(err)
	}
	var after Baseline
	if err := json.Unmarshal(raw, &after); err != nil {
		t.Fatal(err)
	}
	if v := after.Benchmarks["BenchmarkConcurrentWorkflows"].Value; v != 1 {
		t.Fatalf("BENCH_1.json was rewritten (value %g) despite the failed refresh", v)
	}
}

// exactBench renders a guaranteed-serving result line with the given
// violation count (the correctness counter BENCH_8 pins at zero).
func exactBench(violations float64) string {
	return "BenchmarkGuaranteedServing \t 10\t 98765 ns/op\t " +
		strconvF(0.8125) + " guaranteed_admit_rate\t " +
		strconvF(violations) + " bound_violations\n"
}

func exactBaseline() Baseline {
	return Baseline{
		Tolerance: 0.25,
		Benchmarks: map[string]Reference{
			"BenchmarkGuaranteedServing": {
				Metric: "guaranteed_admit_rate", HigherIsBetter: true, Value: 0.8125,
			},
			"BenchmarkGuaranteedServing@bound_violations": {
				Metric: "bound_violations", HigherIsBetter: false, Value: 0, Exact: true,
			},
		},
	}
}

// TestExactReferenceGatesAtEquality: an exact reference ignores the
// tolerance entirely — one bound violation against a pinned zero fails
// even though 1 vs 0 is within any relative tolerance semantics, while the
// non-exact metric of the same baseline still tolerates drift.
func TestExactReferenceGatesAtEquality(t *testing.T) {
	observed, err := parseBench(strings.NewReader(exactBench(0)))
	if err != nil {
		t.Fatal(err)
	}
	if lines, ok := check(exactBaseline(), observed); !ok {
		t.Errorf("zero violations must pass the exact gate:\n%s", strings.Join(lines, "\n"))
	}
	observed, err = parseBench(strings.NewReader(exactBench(1)))
	if err != nil {
		t.Fatal(err)
	}
	lines, ok := check(exactBaseline(), observed)
	if ok {
		t.Error("one violation against an exact zero pin must fail")
	}
	if !strings.Contains(strings.Join(lines, "\n"), "FAIL BenchmarkGuaranteedServing@bound_violations") {
		t.Errorf("exact failure not attributed to the violation key:\n%s", strings.Join(lines, "\n"))
	}
}

// TestUpdateRefusesToMoveExactPin: -update must rewrite the drifting
// non-exact value but refuse — atomically, leaving the file untouched —
// when the run deviates from an exact pin: re-baselining a correctness
// counter is never a refresh.
func TestUpdateRefusesToMoveExactPin(t *testing.T) {
	dir := t.TempDir()
	baselinePath := filepath.Join(dir, "BENCH.json")
	inputPath := filepath.Join(dir, "bench.out")
	write := func(content []byte) {
		if err := os.WriteFile(inputPath, content, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	base := exactBaseline()
	base.Benchmarks["BenchmarkGuaranteedServing"] = Reference{
		Metric: "guaranteed_admit_rate", HigherIsBetter: true, Value: 0.5, // stale
	}
	raw, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(baselinePath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Clean run: the stale admit rate refreshes, the exact pin survives
	// verbatim (still exact, still zero).
	write([]byte(exactBench(0)))
	var sink strings.Builder
	if err := run("", baselinePath, inputPath, true, &sink); err != nil {
		t.Fatal(err)
	}
	raw, err = os.ReadFile(baselinePath)
	if err != nil {
		t.Fatal(err)
	}
	var updated Baseline
	if err := json.Unmarshal(raw, &updated); err != nil {
		t.Fatal(err)
	}
	if v := updated.Benchmarks["BenchmarkGuaranteedServing"].Value; v != 0.8125 {
		t.Errorf("non-exact value not refreshed: %g", v)
	}
	pin := updated.Benchmarks["BenchmarkGuaranteedServing@bound_violations"]
	if !pin.Exact || pin.Value != 0 {
		t.Errorf("exact pin mutated across -update: %+v", pin)
	}

	// Violating run: the refresh must fail and leave the file as-is.
	write([]byte(exactBench(2)))
	if err := run("", baselinePath, inputPath, true, &sink); err == nil {
		t.Fatal("-update against a violated exact pin must fail")
	}
	raw2, err := os.ReadFile(baselinePath)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw2) != string(raw) {
		t.Error("baseline rewritten despite the failed exact refresh")
	}
}
