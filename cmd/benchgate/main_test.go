package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: everest
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkConcurrentWorkflows 	      10	    291766 ns/op	         2.350 speedup_x8
BenchmarkAdaptivePlacement-8   	      10	    723624 ns/op	         0.5860 modelled_s	        13.49 speedup_adaptive
BenchmarkEinsumMatMul64-8      	    5000	    240000 ns/op
PASS
ok  	everest	0.015s
`

func sampleBaseline(concurrent, adaptive float64) Baseline {
	return Baseline{
		Tolerance: 0.25,
		Benchmarks: map[string]Reference{
			"BenchmarkConcurrentWorkflows": {Metric: "speedup_x8", HigherIsBetter: true, Value: concurrent},
			"BenchmarkAdaptivePlacement":   {Metric: "speedup_adaptive", HigherIsBetter: true, Value: adaptive},
		},
	}
}

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if v := got["BenchmarkConcurrentWorkflows"]["speedup_x8"]; v != 2.35 {
		t.Errorf("speedup_x8 = %g, want 2.35", v)
	}
	if v := got["BenchmarkAdaptivePlacement"]["speedup_adaptive"]; v != 13.49 {
		t.Errorf("speedup_adaptive = %g, want 13.49 (suffix must strip)", v)
	}
	if v := got["BenchmarkAdaptivePlacement"]["modelled_s"]; v != 0.586 {
		t.Errorf("modelled_s = %g, want 0.586", v)
	}
	if v := got["BenchmarkEinsumMatMul64"]["ns/op"]; v != 240000 {
		t.Errorf("ns/op = %g, want 240000", v)
	}
}

func TestCheckPassAndFail(t *testing.T) {
	observed, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	// Within tolerance: observed 2.35 vs baseline 2.5 is a 6% dip.
	if lines, ok := check(sampleBaseline(2.5, 13.0), observed); !ok {
		t.Errorf("small dip must pass:\n%s", strings.Join(lines, "\n"))
	}
	// Beyond tolerance: observed 2.35 vs baseline 4.0 is a 41% dip.
	lines, ok := check(sampleBaseline(4.0, 13.0), observed)
	if ok {
		t.Error("41%% regression must fail")
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "FAIL BenchmarkConcurrentWorkflows") {
		t.Errorf("verdicts missing failure:\n%s", joined)
	}
	// A gated benchmark absent from the output must fail.
	base := sampleBaseline(2.0, 13.0)
	base.Benchmarks["BenchmarkGhost"] = Reference{Metric: "speedup", HigherIsBetter: true, Value: 1}
	if _, ok := check(base, observed); ok {
		t.Error("missing benchmark must fail")
	}
	// Lower-is-better direction.
	base = Baseline{Benchmarks: map[string]Reference{
		"BenchmarkAdaptivePlacement": {Metric: "modelled_s", HigherIsBetter: false, Value: 0.3},
	}}
	if _, ok := check(base, observed); ok {
		t.Error("0.586s vs 0.3s baseline (lower-is-better) must fail")
	}
}

func TestRunAndUpdate(t *testing.T) {
	dir := t.TempDir()
	baselinePath := filepath.Join(dir, "BENCH.json")
	inputPath := filepath.Join(dir, "bench.out")
	raw, err := json.Marshal(sampleBaseline(99, 99))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(baselinePath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(inputPath, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	var sink strings.Builder
	if err := run("", baselinePath, inputPath, false, &sink); err == nil {
		t.Error("check against inflated baseline must fail")
	}
	// Update rewrites the values; the same check then passes.
	if err := run("", baselinePath, inputPath, true, &sink); err != nil {
		t.Fatal(err)
	}
	if err := run("", baselinePath, inputPath, false, &sink); err != nil {
		t.Errorf("check after update must pass: %v", err)
	}
	var updated Baseline
	raw, err = os.ReadFile(baselinePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &updated); err != nil {
		t.Fatal(err)
	}
	if v := updated.Benchmarks["BenchmarkAdaptivePlacement"].Value; v != 13.49 {
		t.Errorf("updated value = %g, want 13.49", v)
	}
}

func TestDirGatesEveryBaseline(t *testing.T) {
	dir := t.TempDir()
	inputPath := filepath.Join(dir, "bench.out")
	if err := os.WriteFile(inputPath, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	write := func(name string, base Baseline) {
		raw, err := json.Marshal(base)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("BENCH_1.json", Baseline{Benchmarks: map[string]Reference{
		"BenchmarkConcurrentWorkflows": {Metric: "speedup_x8", HigherIsBetter: true, Value: 2.3},
	}})
	// An @alias key gates a second metric of the same benchmark.
	write("BENCH_2.json", Baseline{Benchmarks: map[string]Reference{
		"BenchmarkAdaptivePlacement":            {Metric: "speedup_adaptive", HigherIsBetter: true, Value: 13.0},
		"BenchmarkAdaptivePlacement@modelled_s": {Metric: "modelled_s", HigherIsBetter: false, Value: 0.6},
	}})
	var sink strings.Builder
	if err := run(dir, "", inputPath, false, &sink); err != nil {
		t.Fatalf("all-green dir gate failed: %v\n%s", err, sink.String())
	}
	if out := sink.String(); !strings.Contains(out, "BENCH_1.json") || !strings.Contains(out, "BENCH_2.json") {
		t.Fatalf("verdicts should name their baseline files:\n%s", out)
	}

	// A regression in ANY file fails the consolidated gate.
	write("BENCH_3.json", Baseline{Benchmarks: map[string]Reference{
		"BenchmarkConcurrentWorkflows": {Metric: "speedup_x8", HigherIsBetter: true, Value: 99},
	}})
	if err := run(dir, "", inputPath, false, &sink); err == nil {
		t.Fatal("regression in one file must fail the dir gate")
	}

	// -update with -dir rewrites every file.
	if err := run(dir, "", inputPath, true, &sink); err != nil {
		t.Fatal(err)
	}
	if err := run(dir, "", inputPath, false, &sink); err != nil {
		t.Fatalf("check after dir update must pass: %v", err)
	}

	// An empty directory is an explicit error, not a silent pass.
	if err := run(t.TempDir(), "", inputPath, false, &sink); err == nil {
		t.Fatal("dir without BENCH_*.json must error")
	}
}

func TestLoadBaselineErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "BENCH_bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBaseline(bad); err == nil {
		t.Fatal("malformed baseline accepted")
	}
	empty := filepath.Join(dir, "BENCH_empty.json")
	if err := os.WriteFile(empty, []byte(`{"tolerance":0.25,"benchmarks":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBaseline(empty); err == nil {
		t.Fatal("baseline gating nothing accepted")
	}
	if _, err := loadBaseline(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing baseline accepted")
	}
	if name := benchName("BenchmarkX@alias"); name != "BenchmarkX" {
		t.Fatalf("benchName = %q, want BenchmarkX", name)
	}
	if name := benchName("@weird"); name != "@weird" {
		t.Fatalf("leading @ must not strip, got %q", name)
	}
}

func TestDirUpdateIsAtomic(t *testing.T) {
	dir := t.TempDir()
	inputPath := filepath.Join(dir, "bench.out")
	if err := os.WriteFile(inputPath, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	good := Baseline{Benchmarks: map[string]Reference{
		"BenchmarkConcurrentWorkflows": {Metric: "speedup_x8", HigherIsBetter: true, Value: 1},
	}}
	ghost := Baseline{Benchmarks: map[string]Reference{
		"BenchmarkGhost": {Metric: "speedup", HigherIsBetter: true, Value: 1},
	}}
	for name, base := range map[string]Baseline{"BENCH_1.json": good, "BENCH_2.json": ghost} {
		raw, err := json.Marshal(base)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var sink strings.Builder
	if err := run(dir, "", inputPath, true, &sink); err == nil {
		t.Fatal("update with an unresolvable baseline must fail")
	}
	// The resolvable file must be untouched: no partial refresh.
	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_1.json"))
	if err != nil {
		t.Fatal(err)
	}
	var after Baseline
	if err := json.Unmarshal(raw, &after); err != nil {
		t.Fatal(err)
	}
	if v := after.Benchmarks["BenchmarkConcurrentWorkflows"].Value; v != 1 {
		t.Fatalf("BENCH_1.json was rewritten (value %g) despite the failed refresh", v)
	}
}
