// Command benchgate is the CI bench-regression gate: it parses `go test
// -bench` output, compares selected benchmark metrics against a committed
// baseline (BENCH_2.json), and exits non-zero when a metric regresses
// beyond the tolerance.
//
//	go test -bench . -benchtime 10x -run xxx . | tee bench.out
//	go run ./cmd/benchgate -baseline BENCH_2.json -input bench.out
//	go run ./cmd/benchgate -baseline BENCH_2.json -input bench.out -update
//
// The gated metrics are the modelled quantities the benchmarks report
// (speedups, makespans) rather than ns/op: modelled numbers are
// machine-independent, so the gate stays meaningful across CI runners.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed reference the gate compares against.
type Baseline struct {
	// Tolerance is the allowed relative regression (0.25 = 25%).
	Tolerance  float64              `json:"tolerance"`
	Benchmarks map[string]Reference `json:"benchmarks"`
}

// Reference pins one benchmark metric.
type Reference struct {
	Metric         string  `json:"metric"`
	HigherIsBetter bool    `json:"higher_is_better"`
	Value          float64 `json:"value"`
}

// parseBench extracts per-benchmark metric values from `go test -bench`
// text output. Lines look like:
//
//	BenchmarkFoo-8   10   123456 ns/op   2.35 speedup_x8   0.58 modelled_s
//
// The "-8" GOMAXPROCS suffix is stripped; value/unit pairs after the
// iteration count become the metric map (ns/op included).
func parseBench(r io.Reader) (map[string]map[string]float64, error) {
	out := make(map[string]map[string]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not an iteration count: not a result line
		}
		metrics := out[name]
		if metrics == nil {
			metrics = make(map[string]float64)
			out[name] = metrics
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			metrics[fields[i+1]] = v
		}
	}
	return out, sc.Err()
}

// check compares observed metrics against the baseline and returns one
// human-readable verdict line per gated benchmark plus the overall pass.
func check(base Baseline, observed map[string]map[string]float64) (lines []string, ok bool) {
	tol := base.Tolerance
	if tol <= 0 {
		tol = 0.25
	}
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	ok = true
	for _, name := range names {
		ref := base.Benchmarks[name]
		got, found := observed[name][ref.Metric]
		if !found {
			lines = append(lines, fmt.Sprintf("FAIL %s: metric %q missing from bench output", name, ref.Metric))
			ok = false
			continue
		}
		var regressed bool
		var change float64
		if ref.Value != 0 {
			change = (got - ref.Value) / ref.Value
		}
		if ref.HigherIsBetter {
			regressed = got < ref.Value*(1-tol)
		} else {
			regressed = got > ref.Value*(1+tol)
		}
		verdict := "ok  "
		if regressed {
			verdict = "FAIL"
			ok = false
		}
		lines = append(lines, fmt.Sprintf("%s %s: %s = %.4g (baseline %.4g, %+.1f%%, tolerance %.0f%%)",
			verdict, name, ref.Metric, got, ref.Value, change*100, tol*100))
	}
	return lines, ok
}

// update rewrites the baseline's values from the observed metrics,
// keeping metric names, directions, and tolerance.
func update(base Baseline, observed map[string]map[string]float64) (Baseline, error) {
	for name, ref := range base.Benchmarks {
		got, found := observed[name][ref.Metric]
		if !found {
			return base, fmt.Errorf("benchgate: metric %q of %s missing from bench output", ref.Metric, name)
		}
		ref.Value = got
		base.Benchmarks[name] = ref
	}
	return base, nil
}

func run(baselinePath, inputPath string, doUpdate bool, stdout io.Writer) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("benchgate: bad baseline %s: %w", baselinePath, err)
	}
	if len(base.Benchmarks) == 0 {
		return fmt.Errorf("benchgate: baseline %s gates no benchmarks", baselinePath)
	}
	var in io.Reader = os.Stdin
	if inputPath != "" && inputPath != "-" {
		f, err := os.Open(inputPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	observed, err := parseBench(in)
	if err != nil {
		return err
	}
	if doUpdate {
		updated, err := update(base, observed)
		if err != nil {
			return err
		}
		out, err := json.MarshalIndent(updated, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(baselinePath, append(out, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "benchgate: wrote %s\n", baselinePath)
		return nil
	}
	lines, ok := check(base, observed)
	for _, l := range lines {
		fmt.Fprintln(stdout, l)
	}
	if !ok {
		return fmt.Errorf("benchgate: benchmark regression beyond tolerance")
	}
	return nil
}

func main() {
	baseline := flag.String("baseline", "BENCH_2.json", "committed baseline JSON")
	input := flag.String("input", "-", "bench output file ('-' = stdin)")
	doUpdate := flag.Bool("update", false, "rewrite the baseline from the bench output instead of checking")
	flag.Parse()
	if err := run(*baseline, *input, *doUpdate, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
}
