// Command benchgate is the CI bench-regression gate: it parses `go test
// -bench` output, compares selected benchmark metrics against committed
// baselines, and exits non-zero when a metric regresses beyond the
// tolerance.
//
//	go test -bench . -benchtime 10x -run xxx . | tee bench.out
//	go run ./cmd/benchgate -dir . -input bench.out            # every BENCH_*.json
//	go run ./cmd/benchgate -baseline BENCH_2.json -input bench.out
//	go run ./cmd/benchgate -dir . -input bench.out -update    # rewrite baselines
//
// The gated metrics are the modelled quantities the benchmarks report
// (speedups, makespans, throughput-at-SLO) rather than ns/op: modelled
// numbers are machine-independent, so the gate stays meaningful across CI
// runners.
//
// Baseline keys are benchmark names; a key may carry an "@alias" suffix
// ("BenchmarkFleetThroughput@fleet_speedup") so one benchmark can gate
// several metrics — the suffix is stripped before matching bench output.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Baseline is one committed reference file the gate compares against.
type Baseline struct {
	// Tolerance is the allowed relative regression (0.25 = 25%).
	Tolerance float64 `json:"tolerance"`
	// Comment documents why a baseline is shaped the way it is (e.g. a
	// widened tolerance for wall-clock metrics subject to runner jitter).
	// It is round-tripped verbatim by -update.
	Comment    string               `json:"comment,omitempty"`
	Benchmarks map[string]Reference `json:"benchmarks"`
}

// Reference pins one benchmark metric.
type Reference struct {
	Metric         string  `json:"metric"`
	HigherIsBetter bool    `json:"higher_is_better"`
	Value          float64 `json:"value"`
	// Exact gates the metric at equality with Value, ignoring the
	// tolerance: any deviation in either direction fails. It pins
	// correctness counters (e.g. guaranteed-class bound violations, which
	// must be exactly zero — "only a few violations" is not a property),
	// and -update refuses to move an exact value, so a refresh can never
	// silently launder a broken invariant into a new baseline.
	Exact bool `json:"exact,omitempty"`
}

// benchName strips the optional "@alias" suffix off a baseline key.
func benchName(key string) string {
	if i := strings.Index(key, "@"); i > 0 {
		return key[:i]
	}
	return key
}

// parseBench extracts per-benchmark metric values from `go test -bench`
// text output. Lines look like:
//
//	BenchmarkFoo-8   10   123456 ns/op   2.35 speedup_x8   0.58 modelled_s
//
// The "-8" GOMAXPROCS suffix is stripped; value/unit pairs after the
// iteration count become the metric map (ns/op included).
func parseBench(r io.Reader) (map[string]map[string]float64, error) {
	out := make(map[string]map[string]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not an iteration count: not a result line
		}
		metrics := out[name]
		if metrics == nil {
			metrics = make(map[string]float64)
			out[name] = metrics
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			metrics[fields[i+1]] = v
		}
	}
	return out, sc.Err()
}

// check compares observed metrics against one baseline and returns one
// human-readable verdict line per gated benchmark plus the overall pass.
func check(base Baseline, observed map[string]map[string]float64) (lines []string, ok bool) {
	tol := base.Tolerance
	if tol <= 0 {
		tol = 0.25
	}
	keys := make([]string, 0, len(base.Benchmarks))
	for key := range base.Benchmarks {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	ok = true
	for _, key := range keys {
		ref := base.Benchmarks[key]
		got, found := observed[benchName(key)][ref.Metric]
		if !found {
			lines = append(lines, fmt.Sprintf("FAIL %s: metric %q missing from bench output", key, ref.Metric))
			ok = false
			continue
		}
		var regressed bool
		var change float64
		if ref.Value != 0 {
			change = (got - ref.Value) / ref.Value
		}
		if ref.Exact {
			regressed = got != ref.Value
		} else if ref.HigherIsBetter {
			regressed = got < ref.Value*(1-tol)
		} else {
			regressed = got > ref.Value*(1+tol)
		}
		verdict := "ok  "
		if regressed {
			verdict = "FAIL"
			ok = false
		}
		if ref.Exact {
			lines = append(lines, fmt.Sprintf("%s %s: %s = %.4g (exact baseline %.4g)",
				verdict, key, ref.Metric, got, ref.Value))
		} else {
			lines = append(lines, fmt.Sprintf("%s %s: %s = %.4g (baseline %.4g, %+.1f%%, tolerance %.0f%%)",
				verdict, key, ref.Metric, got, ref.Value, change*100, tol*100))
		}
	}
	return lines, ok
}

// update rewrites the baseline's values from the observed metrics,
// keeping metric names, directions, and tolerance. Exact references are
// verified, never rewritten: a run that deviates from an exact pin fails
// the update rather than re-baselining the invariant.
func update(base Baseline, observed map[string]map[string]float64) (Baseline, error) {
	for key, ref := range base.Benchmarks {
		got, found := observed[benchName(key)][ref.Metric]
		if !found {
			return base, fmt.Errorf("benchgate: metric %q of %s missing from bench output", ref.Metric, key)
		}
		if ref.Exact {
			if got != ref.Value {
				return base, fmt.Errorf("benchgate: exact metric %q of %s is %.4g, pinned at %.4g — fix the regression, don't re-baseline it",
					ref.Metric, key, got, ref.Value)
			}
			continue
		}
		ref.Value = got
		base.Benchmarks[key] = ref
	}
	return base, nil
}

// loadBaseline reads and validates one baseline file.
func loadBaseline(path string) (Baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Baseline{}, err
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return Baseline{}, fmt.Errorf("benchgate: bad baseline %s: %w", path, err)
	}
	if len(base.Benchmarks) == 0 {
		return Baseline{}, fmt.Errorf("benchgate: baseline %s gates no benchmarks", path)
	}
	return base, nil
}

// baselinePaths resolves the files to gate: every BENCH_*.json in dir
// (sorted), or the single -baseline file when dir is empty.
func baselinePaths(dir, single string) ([]string, error) {
	if dir == "" {
		return []string{single}, nil
	}
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("benchgate: no BENCH_*.json files in %s", dir)
	}
	sort.Strings(paths)
	return paths, nil
}

func run(dir, baselinePath, inputPath string, doUpdate bool, stdout io.Writer) error {
	paths, err := baselinePaths(dir, baselinePath)
	if err != nil {
		return err
	}
	var in io.Reader = os.Stdin
	if inputPath != "" && inputPath != "-" {
		f, err := os.Open(inputPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	observed, err := parseBench(in)
	if err != nil {
		return err
	}
	bases := make([]Baseline, len(paths))
	for i, path := range paths {
		base, err := loadBaseline(path)
		if err != nil {
			return err
		}
		bases[i] = base
	}
	if doUpdate {
		// Two phases so a refresh is atomic: compute every rewrite first,
		// write only if all baselines resolved against the bench output —
		// an error must not leave some files updated and others not.
		rendered := make([][]byte, len(paths))
		for i, base := range bases {
			updated, err := update(base, observed)
			if err != nil {
				return err
			}
			out, err := json.MarshalIndent(updated, "", "  ")
			if err != nil {
				return err
			}
			rendered[i] = append(out, '\n')
		}
		for i, path := range paths {
			if err := os.WriteFile(path, rendered[i], 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "benchgate: wrote %s\n", path)
		}
		return nil
	}
	allOK := true
	for i, path := range paths {
		lines, ok := check(bases[i], observed)
		for _, l := range lines {
			fmt.Fprintf(stdout, "%s [%s]\n", l, filepath.Base(path))
		}
		if !ok {
			allOK = false
		}
	}
	if !allOK {
		return fmt.Errorf("benchgate: benchmark regression beyond tolerance")
	}
	return nil
}

func main() {
	dir := flag.String("dir", "", "gate every BENCH_*.json in this directory (overrides -baseline)")
	baseline := flag.String("baseline", "BENCH_2.json", "single committed baseline JSON")
	input := flag.String("input", "-", "bench output file ('-' = stdin)")
	doUpdate := flag.Bool("update", false, "rewrite the baseline(s) from the bench output instead of checking")
	flag.Parse()
	if err := run(*dir, *baseline, *input, *doUpdate, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
}
