// Command basecamp is the single point of access to the EVEREST SDK (paper
// §IV: "all tools within the SDK are wrapped under the basecamp command").
//
// Subcommands:
//
//	basecamp compile  -kernel <file.ekl|demo|windpower|airquality> [-lang ekl|cfdlang] [-backend vitis|bambu] [-format f32|f64|bf16|f16|fixed16|posit16] [-device alveo-u55c|alveo-u280|cloudfpga] [-memports N] [-emit mlir|olympus|driver|source]
//	                               # source-to-schedule: prints the HLS report plus the derived
//	                               # cpu1/cpu16/fpga operating points and the tuner's pick
//	basecamp deploy   -nodes N     # compile demo kernel, stage it, plan a workflow
//	basecamp serve    -workflows N -concurrency K [-adaptive] [-net tcp10g|udp10g]  # concurrent multi-tenant runtime demo
//	basecamp serve    -sites N -cache-slots K [-registry-net tcp10g|udp10g|eth100g] [-gap S]  # federated fleet serving
//	basecamp serve    -sites N -suite [-apps energy,traffic,weather]  # serve the EVEREST application suite (workload registry)
//	basecamp serve    -stream [-rate R] [-events N] [-arrival poisson|bursty|diurnal] [-partial=false]  # streaming pipelines with resident kernels
//	basecamp serve    -regions N [-prefetch=false] [-autoscale] [-wan wan10g|wan1g]  # hierarchical multi-region federation with predictive prefetch
//	basecamp serve    -kmeans [-partitions N] [-centroids K]  # FPGA map-reduce k-means over the named data plane
//	basecamp adapt    -workflows N [-compiled]  # adaptive vs static placement under injected faults
//	basecamp dialects              # list the registered MLIR dialects (Fig. 5)
//	basecamp anomaly  -trials N    # AutoML model selection on a synthetic stream
//	basecamp bench                 # shortcut: run all reproduction experiments
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"everest/internal/anomaly"
	"everest/internal/apps"
	"everest/internal/base2"
	"everest/internal/ekl"
	"everest/internal/experiments"
	"everest/internal/fleet"
	"everest/internal/mlir"
	"everest/internal/mlir/dialects"
	"everest/internal/netsim"
	"everest/internal/olympus"
	"everest/internal/region"
	"everest/internal/runtime"
	"everest/internal/sdk"
	"everest/internal/stream"
	"everest/internal/tensor"
	"everest/internal/variants"
	"everest/internal/wrf"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "compile":
		err = cmdCompile(os.Args[2:])
	case "deploy":
		err = cmdDeploy(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "adapt":
		err = cmdAdapt(os.Args[2:])
	case "dialects":
		err = cmdDialects()
	case "anomaly":
		err = cmdAnomaly(os.Args[2:])
	case "bench":
		err = cmdBench()
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "basecamp: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "basecamp: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: basecamp <compile|deploy|serve|adapt|dialects|anomaly|bench> [flags]`)
}

func formatByName(name string) (base2.Format, error) {
	switch strings.ToLower(name) {
	case "", "f32":
		return base2.Float32{}, nil
	case "f64":
		return base2.Float64{}, nil
	case "bf16":
		return base2.BF16(), nil
	case "f16":
		return base2.FP16(), nil
	case "fixed16":
		return base2.NewFixedFormat(4, 12)
	case "posit16":
		return base2.NewPositFormat(16, 1)
	default:
		return nil, fmt.Errorf("unknown format %q", name)
	}
}

func cmdCompile(args []string) error {
	fs := flag.NewFlagSet("compile", flag.ExitOnError)
	kernelPath := fs.String("kernel", "demo",
		"EKL source file, 'demo' for the RRTMG kernel, or a built-in example: "+
			strings.Join(variants.ExampleNames(), ", "))
	lang := fs.String("lang", "ekl", "frontend: ekl or cfdlang ('cfdlang' also accepts -kernel matmul)")
	backend := fs.String("backend", "vitis", "HLS backend: vitis or bambu")
	format := fs.String("format", "f32", "datapath format")
	device := fs.String("device", "alveo-u55c", "target device")
	memPorts := fs.Int("memports", 0, "PLM banking: concurrent ports the datapath sees (0 = 2)")
	emit := fs.String("emit", "summary", "output: summary, mlir, olympus, driver, or source")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmtF, err := formatByName(*format)
	if err != nil {
		return err
	}
	oly := sdk.DefaultOlympus()
	oly.MemPorts = *memPorts
	opt := variants.Options{
		Backend: *backend, Format: fmtF, Device: *device,
		Olympus: oly,
	}

	var c *variants.Compiled
	switch {
	case *lang == "cfdlang":
		src := variants.MatmulCFD()
		name := "matmul"
		if *kernelPath != "demo" && *kernelPath != "matmul" {
			data, err := os.ReadFile(*kernelPath)
			if err != nil {
				return err
			}
			src, name = string(data), *kernelPath
		}
		c, err = variants.CompileCFDlang(src, name, nil, opt)
	case *kernelPath == "demo":
		c, err = variants.CompileEKL(wrf.EKLSource(), demoBinding(), opt)
	case isExampleKernel(*kernelPath):
		c, err = variants.CompileExample(*kernelPath, opt)
	default:
		data, err2 := os.ReadFile(*kernelPath)
		if err2 != nil {
			return err2
		}
		src := string(data)
		k, err2 := ekl.ParseKernel(src)
		if err2 != nil {
			return err2
		}
		// Shapes, not values, drive hardware generation: synthesize a
		// binding with default extents for symbolic dimensions.
		c, err = variants.CompileEKL(src, sdk.GenericBinding(k, 16), opt)
	}
	if err != nil {
		return err
	}

	switch *emit {
	case "mlir":
		fmt.Println(c.Module.String())
	case "olympus":
		m, err := olympus.EmitModule(c.Design)
		if err != nil {
			return err
		}
		fmt.Println(m.String())
	case "driver":
		for _, line := range c.Design.HostCode {
			fmt.Println(line)
		}
	case "source":
		switch {
		case c.Kernel != nil:
			fmt.Print(c.Kernel.Source())
		case c.Program != nil:
			fmt.Print(c.Program.Source())
		default:
			return fmt.Errorf("compile: no parsed source to print")
		}
	default:
		stmts := "-"
		if c.Kernel != nil {
			stmts = fmt.Sprintf("%d statements", c.Kernel.SourceLines())
		}
		fmt.Printf("kernel   : %s [%s] (%s)\n", c.KernelName, c.Frontend, stmts)
		fmt.Printf("hls      : %s\n", c.Report.String())
		cfg := c.Design.Bitstream.Config
		fmt.Printf("olympus  : replicas=%d lanes=%d packed=%d doublebuf=%v plm=%dB\n",
			cfg.Replicas, cfg.Lanes, cfg.PackedElements, cfg.DoubleBuffered, cfg.PLMBytes)
		fmt.Printf("bitstream: %s (util %.1f%% of %s)\n",
			c.Design.Bitstream.ID, c.Design.FitUtil*100, c.Design.Bitstream.Target)
		for _, st := range c.PassStats {
			fmt.Printf("pass     : %-16s %8v  (%d ops after)\n", st.Pass, st.Duration, st.OpsAfter)
		}
		fmt.Printf("workload : %.4g effective flops, %dB in, %dB out\n",
			c.Flops, c.InputBytes, c.OutputBytes)
		fmt.Println("variants : (operating points derived from the HLS schedule + CPU cost model)")
		for _, row := range c.Summary() {
			fmt.Printf("  %s\n", row)
		}
		tn, err := c.NewTuner()
		if err != nil {
			return err
		}
		fmt.Printf("tuner    : best=%s\n", tn.Best())
	}
	return nil
}

func isExampleKernel(name string) bool {
	for _, n := range variants.ExampleNames() {
		if n == name {
			return true
		}
	}
	return false
}

func demoBinding() ekl.Binding {
	rng := rand.New(rand.NewSource(1))
	const nflav, nT, nP, nEta, nx, ng = 3, 12, 16, 9, 32, 16
	intT := func(max int, shape ...int) *tensor.Tensor {
		t := tensor.New(shape...)
		for i := range t.Data() {
			t.Data()[i] = float64(rng.Intn(max))
		}
		return t
	}
	return ekl.Binding{
		Tensors: map[string]*tensor.Tensor{
			"p":           tensor.Random(rng, 5000, 101325, nx),
			"bnd_to_flav": intT(nflav, 2, 4),
			"j_T":         intT(nT-2, nx),
			"j_p":         intT(nP-3, nx),
			"j_eta":       intT(nEta-2, nflav, nx),
			"r_mix":       tensor.Random(rng, 0, 1, nflav, nx, 2),
			"f_major":     tensor.Random(rng, 0, 1, nflav, nx, 2, 2, 2),
			"k_major":     tensor.Random(rng, 0.1, 1, nT, nP, nEta, ng),
		},
		Scalars: map[string]float64{"bnd": 1},
	}
}

func cmdDeploy(args []string) error {
	fs := flag.NewFlagSet("deploy", flag.ExitOnError)
	nodes := fs.Int("nodes", 2, "compute nodes in the simulated cluster")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s := sdk.New(sdk.DefaultCluster(*nodes))
	res, err := sdk.Compile(wrf.EKLSource(), demoBinding(), sdk.CompileOptions{
		Olympus: olympus.Options{SharePLM: true, DoubleBuffer: true, Replicate: true, MaxReplicas: 4, PackData: true},
	})
	if err != nil {
		return err
	}
	if err := s.Publish(res); err != nil {
		return err
	}
	dt, err := s.Deploy(res.Design.Bitstream.ID, "node00")
	if err != nil {
		return err
	}
	fmt.Printf("staged %s on node00 in %.0f ms\n", res.Design.Bitstream.ID, dt*1000)

	w := runtime.NewWorkflow()
	if err := w.Submit(runtime.TaskSpec{Name: "prep", Flops: 5e9, OutputBytes: 1 << 24}); err != nil {
		return err
	}
	if err := w.Submit(runtime.TaskSpec{
		Name: "radiation", Deps: []string{"prep"},
		Flops: 5e10, InputBytes: 1 << 24, OutputBytes: 1 << 22,
		NeedsFPGA: true, BitstreamID: res.Design.Bitstream.ID,
	}); err != nil {
		return err
	}
	if err := w.Submit(runtime.TaskSpec{Name: "post", Deps: []string{"radiation"},
		Flops: 1e9, InputBytes: 1 << 22}); err != nil {
		return err
	}
	sched, err := s.NewScheduler(runtime.PolicyHEFT).Plan(w)
	if err != nil {
		return err
	}
	fmt.Printf("makespan: %.3gs over %d tasks (%d transfers)\n",
		sched.Makespan, len(sched.Assignments), sched.Transfers)
	for _, a := range sched.Assignments {
		target := "cpu"
		if a.OnFPGA {
			target = "fpga"
		}
		fmt.Printf("  %-10s %-8s %-5s [%.3g, %.3g]s\n", a.Task, a.Node, target, a.Start, a.End)
	}
	return nil
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	workflows := fs.Int("workflows", 16, "workflows to submit")
	concurrency := fs.Int("concurrency", 8, "max workflows in flight (0 = unlimited)")
	nodes := fs.Int("nodes", 8, "compute nodes in the simulated cluster (per site with -sites > 1)")
	policyName := fs.String("policy", "heft", "placement policy: heft or fifo")
	tenants := fs.Int("tenants", 4, "tenants sharing the cluster")
	failNode := fs.String("fail", "", "inject a node failure, e.g. node00@0.5")
	trace := fs.Bool("trace", false, "print engine events")
	adaptive := fs.Bool("adaptive", false, "variant-aware scheduling against live monitors")
	netName := fs.String("net", "", "price transfers over a cloudFPGA stack: tcp10g or udp10g (default: flat fabric)")
	sites := fs.Int("sites", 1, "federated engine sites (> 1 serves through the fleet router)")
	cacheSlots := fs.Int("cache-slots", 1, "resident bitstreams per site (fleet mode)")
	registryNet := fs.String("registry-net", "tcp10g", "registry->site deploy fabric (fleet mode): tcp10g, udp10g, or eth100g")
	gap := fs.Float64("gap", 0.05, "modelled interarrival seconds between submissions (fleet mode)")
	unplugAt := fs.Float64("unplug-at", 0.5, "modelled time site 0's first accelerator detaches (fleet mode; 0 = no fault)")
	guaranteed := fs.Bool("guaranteed", false, "submit every 4th workflow through the proven-bound admission class (fleet mode)")
	deadline := fs.Float64("deadline", 4, "relative latency bound guaranteed submissions must provably meet, modelled seconds (fleet mode)")
	suite := fs.Bool("suite", false, "serve the EVEREST application suite from the workload registry (fleet mode)")
	appList := fs.String("apps", "", "comma-separated registry applications to serve (fleet mode; implies -suite)")
	streamMode := fs.Bool("stream", false, "serve long-lived streaming pipelines (windowed operators over the app suite)")
	rate := fs.Float64("rate", 0, "per-pipeline event arrival rate (stream mode; 0 = scenario default)")
	events := fs.Int("events", 0, "events per pipeline (stream mode; 0 = scenario default)")
	pipelines := fs.Int("pipelines", 0, "concurrent pipelines (stream mode; 0 = 2x apps)")
	arrival := fs.String("arrival", "poisson", "arrival process (stream mode): poisson, bursty, or diurnal")
	partial := fs.Bool("partial", true, "keep kernels resident in FPGA partial-reconfiguration regions (stream mode)")
	regions := fs.Int("regions", 0, "serve through the hierarchical multi-region federation (> 0 regions; its own scenario)")
	prefetch := fs.Bool("prefetch", true, "forecast-driven bitstream prefetch (region mode)")
	autoscale := fs.Bool("autoscale", false, "let regions grow and shrink their active site count (region mode)")
	wan := fs.String("wan", "", "inter-region fabric (region mode): wan10g or wan1g (default: scenario's)")
	kmeans := fs.Bool("kmeans", false, "serve the FPGA map-reduce k-means over the named data plane (its own scenario)")
	partitions := fs.Int("partitions", 0, "point partitions scattered across the sites (kmeans mode; 0 = scenario default)")
	centroids := fs.Int("centroids", 0, "cluster count (kmeans mode; 0 = scenario default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var policy runtime.Policy
	switch strings.ToLower(*policyName) {
	case "heft":
		policy = runtime.PolicyHEFT
	case "fifo":
		policy = runtime.PolicyFIFO
	default:
		return fmt.Errorf("serve: unknown policy %q", *policyName)
	}
	// Each serving mode has flags the others would silently ignore, which
	// would misreport what was measured: per-site serving is serial and
	// faults are scripted per site in fleet mode, cache/deploy/arrival
	// knobs only exist there, and the streaming tier has its own workload
	// shape (open arrivals over windowed operators, no workflow count).
	streamOnly := map[string]bool{
		"rate": true, "events": true, "pipelines": true, "arrival": true, "partial": true,
	}
	streamOK := map[string]bool{"stream": true, "nodes": true, "trace": true, "apps": true}
	regionMode := *regions > 0
	regionOnly := map[string]bool{"prefetch": true, "autoscale": true, "wan": true}
	regionOK := map[string]bool{"regions": true, "workflows": true, "gap": true, "trace": true}
	kmeansMode := *kmeans
	kmeansOnly := map[string]bool{"partitions": true, "centroids": true}
	kmeansOK := map[string]bool{"kmeans": true, "sites": true, "registry-net": true, "trace": true}
	var incompatible []string
	nodesSet, workflowsSet, gapSet := false, false, false
	sitesSet, registryNetSet := false, false
	fs.Visit(func(fl *flag.Flag) {
		nodesSet = nodesSet || fl.Name == "nodes"
		workflowsSet = workflowsSet || fl.Name == "workflows"
		gapSet = gapSet || fl.Name == "gap"
		sitesSet = sitesSet || fl.Name == "sites"
		registryNetSet = registryNetSet || fl.Name == "registry-net"
		switch {
		case regionMode && !regionOnly[fl.Name] && !regionOK[fl.Name]:
			incompatible = append(incompatible, "-"+fl.Name)
		case regionMode:
			// an allowed region-mode flag
		case kmeansMode && !kmeansOnly[fl.Name] && !kmeansOK[fl.Name]:
			incompatible = append(incompatible, "-"+fl.Name)
		case kmeansMode:
			// an allowed kmeans-mode flag
		case regionOnly[fl.Name] || kmeansOnly[fl.Name]:
			incompatible = append(incompatible, "-"+fl.Name)
		case *streamMode && !streamOnly[fl.Name] && !streamOK[fl.Name]:
			incompatible = append(incompatible, "-"+fl.Name)
		case !*streamMode && streamOnly[fl.Name]:
			incompatible = append(incompatible, "-"+fl.Name)
		case !*streamMode && *sites > 1 && (fl.Name == "concurrency" || fl.Name == "fail"):
			incompatible = append(incompatible, "-"+fl.Name)
		case !*streamMode && *sites == 1 && (fl.Name == "cache-slots" || fl.Name == "registry-net" ||
			fl.Name == "gap" || fl.Name == "unplug-at" || fl.Name == "suite" || fl.Name == "apps" ||
			fl.Name == "guaranteed" || fl.Name == "deadline"):
			incompatible = append(incompatible, "-"+fl.Name)
		}
	})
	if len(incompatible) > 0 {
		mode := "-sites > 1"
		switch {
		case regionMode:
			mode = "-regions"
		case kmeansMode:
			mode = "-kmeans"
		case *streamMode:
			mode = "-stream"
		case *sites == 1:
			mode = "-sites 1"
		}
		return fmt.Errorf("serve: %s not supported with %s",
			strings.Join(incompatible, ", "), mode)
	}
	if kmeansMode {
		kmSites, kmNet := 0, "" // 0/"" → scenario defaults
		if sitesSet {
			kmSites = *sites
		}
		if registryNetSet {
			kmNet = *registryNet
		}
		return serveKmeans(kmSites, *partitions, *centroids, kmNet, *trace)
	}
	if regionMode {
		regionWorkflows, regionGap := 0, 0.0 // 0 → scenario defaults
		if workflowsSet {
			regionWorkflows = *workflows
		}
		if gapSet {
			regionGap = *gap
		}
		return serveRegions(*regions, regionWorkflows, regionGap,
			*prefetch, *autoscale, *wan, *trace)
	}
	if *streamMode {
		streamNodes := 0 // scenario default (1 compute node + cloudfpga0)
		if nodesSet {
			streamNodes = *nodes
		}
		return serveStream(streamNodes, *appList, *pipelines, *events,
			*rate, *arrival, *partial, *trace)
	}
	if *sites > 1 {
		if *appList != "" {
			*suite = true
		}
		gDeadline := 0.0
		if *guaranteed {
			gDeadline = *deadline
		}
		return serveFleet(*sites, *nodes, *cacheSlots, *workflows, *tenants,
			policy, *adaptive, *netName, *registryNet, *gap, *unplugAt, gDeadline, *trace, *suite, *appList)
	}
	var stack *netsim.Stack
	if *netName != "" {
		st, err := netsim.StackByName(*netName)
		if err != nil {
			return err
		}
		stack = &st
	}
	if *workflows < 1 || *tenants < 1 || *nodes < 1 {
		return fmt.Errorf("serve: workflows, tenants and nodes must be positive")
	}
	var failures []runtime.NodeFailure
	if *failNode != "" {
		parts := strings.SplitN(*failNode, "@", 2)
		f := runtime.NodeFailure{Node: parts[0], AtTime: 0.5}
		if len(parts) == 2 {
			if _, err := fmt.Sscanf(parts[1], "%g", &f.AtTime); err != nil {
				return fmt.Errorf("serve: bad -fail time %q", parts[1])
			}
		}
		failures = append(failures, f)
	}

	// Serial baseline: the same workflows planned one at a time and run
	// back-to-back — what the runtime did before it became concurrent.
	s := sdk.New(sdk.DefaultCluster(*nodes))
	for _, f := range failures {
		if s.Cluster.FindNode(f.Node) == nil {
			return fmt.Errorf("serve: -fail references unknown node %q", f.Node)
		}
	}
	ws := make([]*runtime.Workflow, *workflows)
	for i := range ws {
		ws[i] = sdk.SyntheticWorkflow(i)
	}
	serial, err := s.SerialMakespan(policy, ws...)
	if err != nil {
		return err
	}

	cfg := sdk.ServerConfig{
		Policy: policy, MaxConcurrent: *concurrency, Failures: failures,
		Adaptive: *adaptive, Net: stack,
	}
	if *trace {
		cfg.Trace = func(ev runtime.Event) {
			fmt.Printf("  [%8.4fs] %-13s wf=%-12s task=%-8s node=%-10s %s\n",
				ev.Time, ev.Kind, ev.Workflow, ev.Task, ev.Node, ev.Detail)
		}
	}
	srv := s.NewServer(cfg)
	tenantName := func(i int) string { return fmt.Sprintf("tenant%02d", i%*tenants) }
	subs := make([]*sdk.Submission, *workflows)
	for i := range subs {
		sub, err := srv.Submit(tenantName(i), "", sdk.SyntheticWorkflow(i))
		if err != nil {
			return err
		}
		subs[i] = sub
	}
	wallStart := time.Now()
	if err := srv.Start(); err != nil {
		return err
	}
	transfers, moved := 0, int64(0)
	for i, sub := range subs {
		sched, err := sub.Wait()
		if err != nil {
			return fmt.Errorf("serve: workflow %d: %w", i, err)
		}
		transfers += sched.Transfers
		moved += sched.MovedBytes
	}
	stats := srv.Shutdown()
	wall := time.Since(wallStart)

	fmt.Printf("cluster    : %d compute nodes + cloudfpga0 (%d total)\n",
		*nodes, len(s.Cluster.Nodes))
	mode := "static"
	if *adaptive {
		mode = "adaptive"
	}
	fmt.Printf("workflows  : %d across %d tenants (policy %s, concurrency %d, %s)\n",
		stats.Completed, len(stats.Tenants), policy, *concurrency, mode)
	fmt.Printf("serial     : %.3gs modelled, back-to-back\n", serial)
	fmt.Printf("concurrent : %.3gs modelled\n", stats.Makespan)
	if stats.Makespan > 0 {
		fmt.Printf("speedup    : %.2fx\n", serial/stats.Makespan)
	}
	fmt.Printf("transfers  : %d batched, %.1f MB moved\n", transfers, float64(moved)/1e6)
	var names []string
	for name := range stats.Tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ts := stats.Tenants[name]
		fmt.Printf("  %-10s : %d done, %d failed, last finish %.3gs%s\n",
			name, ts.Completed, ts.Failed, ts.LastFinish, tenantAdaptSummary(ts))
	}
	fmt.Printf("wall time  : %s\n", wall.Round(time.Millisecond))
	return nil
}

// serveFleet is `basecamp serve -sites N`: the same mixed E-fleet load
// served through the federation tier — N independent engine sites behind
// the fleet router, with bounded per-site bitstream caches and deploys
// priced over the registry fabric. With suite set, the served stream is
// the EVEREST application suite from the workload registry. A positive
// gDeadline submits every 4th workflow through the proven-bound admission
// class against that deadline (refusals degrade to best-effort).
func serveFleet(sites, nodes, cacheSlots, workflows, tenants int, policy runtime.Policy, adaptive bool, netName, registryNet string, gap, unplugAt, gDeadline float64, trace, suite bool, appList string) error {
	if workflows < 1 || tenants < 1 || nodes < 1 {
		return fmt.Errorf("serve: workflows, tenants and nodes must be positive")
	}
	sc := sdk.FleetScenario{
		Sites: sites, NodesPerSite: nodes, CacheSlots: cacheSlots,
		Tenants: tenants, Workflows: workflows, ArrivalGap: gap,
		UnplugAt: unplugAt,
		Net:      netName, RegistryNet: registryNet,
		Policy: policy, Adaptive: adaptive,
		SLO: 1.75,
	}
	if gDeadline > 0 {
		sc.GuaranteedEvery = 4
		sc.GuaranteedDeadline = gDeadline
	}
	if suite {
		sc.SLO = sdk.DefaultSuiteScenario().SLO
		sc.Apps = apps.Names()
		if appList != "" {
			sc.Apps = nil
			for _, name := range strings.Split(appList, ",") {
				sc.Apps = append(sc.Apps, strings.TrimSpace(name))
			}
		}
	}
	if trace {
		sc.Trace = func(ev fleet.Event) {
			fmt.Printf("  [%8.4fs] %-10s site=%-7s tenant=%-9s wf=%-14s bs=%-12s %s\n",
				ev.Time, ev.Kind, ev.Site, ev.Tenant, ev.Workflow, ev.Bitstream, ev.Detail)
		}
	}
	res, err := sc.Run()
	if err != nil {
		return err
	}
	mode := "static"
	if adaptive {
		mode = "adaptive"
	}
	fmt.Printf("fleet      : %d sites x (%d compute nodes + cloudfpga0), cache %d slot(s)/site, %s\n",
		sites, nodes, cacheSlots, mode)
	workload := "mixed"
	if suite {
		workload = "app-suite [" + strings.Join(sc.Apps, " ") + "]"
	}
	fmt.Printf("workflows  : %d %s across %d tenants, arrivals every %.3gs modelled\n",
		workflows, workload, tenants, gap)
	fmt.Printf("completed  : %d (%d rejected), makespan %.4gs modelled\n",
		res.Completed, res.Rejected, res.Makespan)
	fmt.Printf("throughput : %.4g workflows/s modelled\n", res.Throughput)
	fmt.Printf("latency    : p50 %.4gs, p95 %.4gs, max %.4gs (SLO %.3gs met: %v)\n",
		res.P50, res.P95, res.Max, sc.SLO, res.SLOMet)
	if gDeadline > 0 {
		fmt.Printf("guaranteed : %d admitted / %d requested (rate %.2f) at deadline %.3gs; %d degraded to best-effort\n",
			res.GuaranteedAdmitted, res.GuaranteedAdmitted+res.GuaranteedRefused,
			res.GuaranteedAdmitRate, gDeadline, res.GuaranteedRefused)
		fmt.Printf("bounds     : %d violations, worst tightness %.3g (latency/bound; sound iff 0 violations)\n",
			res.BoundViolations, res.BoundTightness)
	}
	var appNames []string
	for name := range res.Apps {
		appNames = append(appNames, name)
	}
	sort.Strings(appNames)
	for _, name := range appNames {
		tl := res.Apps[name]
		fmt.Printf("  app %-8s : %2d done, p50 %.4gs, p95 %.4gs, max %.4gs\n",
			name, tl.Completed, tl.P50, tl.P95, tl.Max)
	}
	for _, s := range res.Stats.Fleet.Sites {
		fmt.Printf("  %-7s : %3d served, cache %d hit / %d miss, %d evict, %d redeploy, %d fallback, %.3gs deploying\n",
			s.Name, s.Served, s.CacheHits, s.CacheMisses, s.Evictions, s.Redeploys,
			s.FallbackDeploys, s.DeploySeconds)
	}
	return nil
}

// serveRegions is `basecamp serve -regions`: the app suite served
// through the hierarchical multi-region federation — a traffic wave
// rotating across geo-distributed regions over a modelled WAN, with
// background batch churn, proven-bound guaranteed admissions, and
// (unless -prefetch=false) forecast-driven bitstream prefetch staging
// each region's artifact store before the wave arrives.
func serveRegions(regions, workflows int, gap float64, prefetch, autoscale bool, wan string, trace bool) error {
	sc := sdk.DefaultRegionScenario()
	if regions > 0 {
		sc.Regions = regions
	}
	if workflows > 0 {
		sc.Workflows = workflows
	}
	if gap > 0 {
		sc.ArrivalGap = gap
	}
	sc.Prefetch = prefetch
	sc.Autoscale = autoscale
	if wan != "" {
		sc.WAN = wan
	}
	if trace {
		sc.Trace = func(ev region.Event) {
			fmt.Printf("  [%8.4fs] %-10s region=%-9s tenant=%-9s wf=%-14s app=%-8s %s\n",
				ev.Time, ev.Kind, ev.Region, ev.Tenant, ev.Workflow, ev.App, ev.Detail)
		}
	}
	res, err := sc.Run()
	if err != nil {
		return err
	}
	wanName := sc.WAN
	if wanName == "" {
		wanName = "wan10g"
	}
	pf := "prefetch on"
	if !prefetch {
		pf = "prefetch off"
	}
	fmt.Printf("federation : %d regions x %d sites x (%d nodes + cloudfpga0), store %d slot(s)/region, %s over %s\n",
		sc.Regions, sc.SitesPerRegion, sc.NodesPerSite, sc.StoreSlots, pf, wanName)
	fmt.Printf("workflows  : %d app-suite [%s], wave blocks of %d every %.3gs modelled, batch every %d\n",
		sc.Workflows, strings.Join(sc.Apps, " "), sc.BlockSize, sc.ArrivalGap, sc.BatchEvery)
	fmt.Printf("completed  : %d (%d rejected), makespan %.4gs modelled\n",
		res.Completed, res.Rejected, res.Makespan)
	fmt.Printf("throughput : %.4g workflows/s modelled\n", res.Throughput)
	fmt.Printf("latency    : p50 %.4gs, p95 %.4gs, max %.4gs; tail p99 %.4gs, cold-start overhead p99 %.4gs\n",
		res.P50, res.P95, res.Max, res.TailP99, res.TailColdStartP99)
	fmt.Printf("guaranteed : %d admitted / %d requested (rate %.2f) at deadline %.3gs; %d degraded to best-effort\n",
		res.GuaranteedAdmitted, res.GuaranteedAdmitted+res.GuaranteedRefused,
		res.GuaranteedAdmitRate, sc.GuaranteedDeadline, res.GuaranteedRefused)
	fmt.Printf("bounds     : %d violations (sound iff 0)\n", res.BoundViolations)
	fmt.Printf("wan        : %d handoffs, %d cold serves, %d prefetch stages, %d warms, %d preemptions\n",
		res.Handoffs, res.ColdServes, res.PrefetchFetches, res.Warms, res.Preemptions)
	for _, r := range res.Stats.Regions {
		fmt.Printf("  %-9s : %3d served (%d guaranteed, %d batch), %d cold, %d fetch %.3gs wan, %d prefetch %.3gs, %d evict, %d sites active\n",
			r.Name, r.Served, r.Guaranteed, r.Batch, r.ColdServes,
			r.WANFetches, r.WANFetchSeconds, r.PrefetchFetches, r.PrefetchSeconds,
			r.StoreEvictions, r.ActiveSites)
	}
	return nil
}

// serveKmeans is `basecamp serve -kmeans`: the FPGA map-reduce k-means
// workload driven through the fleet's named data plane — point
// partitions scattered across WAN-federated sites, maps routed to their
// data by the placement-aware cost, only the per-cluster partial
// statistics crossing the fabric to the reduce.
func serveKmeans(sites, partitions, centroids int, registryNet string, trace bool) error {
	sc := sdk.DefaultKMeansScenario()
	if sites > 0 {
		sc.Sites = sites
	}
	if partitions > 0 {
		sc.Config.Partitions = partitions
	}
	if centroids > 0 {
		sc.Config.Centroids = centroids
	}
	if registryNet != "" {
		sc.RegistryNet = registryNet
	}
	if trace {
		sc.Trace = func(ev fleet.Event) {
			fmt.Printf("  [%8.4fs] %-10s site=%-7s tenant=%-9s wf=%-14s bs=%-12s %s\n",
				ev.Time, ev.Kind, ev.Site, ev.Tenant, ev.Workflow, ev.Bitstream, ev.Detail)
		}
	}
	res, err := sc.Run()
	if err != nil {
		return err
	}
	cfg := sc.Config
	fmt.Printf("fleet      : %d sites over %s, dataset stores site-local, kernels pre-warmed fleet-wide\n",
		sc.Sites, sc.RegistryNet)
	fmt.Printf("workload   : %d rounds x (%d map shards + 1 reduce), %d points x %d dims, %d centroids\n",
		sc.Rounds, cfg.Partitions, cfg.Points, cfg.Dims, cfg.Centroids)
	fmt.Printf("completed  : %d workflows, makespan %.4gs modelled, %.4g workflows/s\n",
		res.Workflows, res.Makespan, res.Throughput)
	fmt.Printf("data plane : %d B shipped (%.4g B/workflow), %.4gs staging stall, %d store hits / %d misses\n",
		res.ShippedBytes, res.BytesPerWorkflow, res.FetchStall, res.DatasetHits, res.DatasetMisses)
	for _, s := range res.Stats.Fleet.Sites {
		fmt.Printf("  %-7s : %3d served, data %d hits / %d misses, %d fetches %dB in, %d published %dB, %d evicted\n",
			s.Name, s.Served, s.DatasetHits, s.DatasetMisses,
			s.DatasetFetches, s.DatasetFetchedBytes, s.DatasetPublished, s.DatasetPublishedBytes, s.DatasetEvictions)
	}
	return nil
}

// serveStream is `basecamp serve -stream`: the app suite served as
// long-lived streaming pipelines — open arrivals feeding windowed
// operators with backpressure, compiled kernels resident in FPGA
// partial-reconfiguration regions — for one run at a fixed rate,
// reporting sustained throughput, latency percentiles, per-pipeline
// outcomes, and per-device residency churn.
func serveStream(nodes int, appList string, pipelines, events int, rate float64, arrival string, partial, trace bool) error {
	sc := sdk.DefaultStreamScenario()
	sc.Nodes = nodes // 0 → scenario default
	if appList != "" {
		sc.Apps = nil
		for _, name := range strings.Split(appList, ",") {
			sc.Apps = append(sc.Apps, strings.TrimSpace(name))
		}
		sc.Pipelines = 0 // re-derive from the app list
	}
	if pipelines > 0 {
		sc.Pipelines = pipelines
	}
	if events > 0 {
		sc.Events = events
	}
	if rate > 0 {
		sc.Rate = rate
	}
	sc.Arrival = arrival
	sc.PartialReconfig = partial
	if trace {
		sc.Trace = func(ev stream.Event) {
			fmt.Printf("  [%10.6fs] %-7s pipe=%-10s stage=%-9s dev=%-11s %d ev\n",
				ev.Time, ev.Kind, ev.Pipeline, ev.Stage, ev.Device, ev.Events)
		}
	}
	srv, err := sdk.NewStreamServer(sc)
	if err != nil {
		return err
	}
	sc = srv.Scenario()
	fmt.Printf("stream     : %d pipelines over [%s], %d events each at %.4g ev/s, %s arrivals\n",
		sc.Pipelines, strings.Join(sc.Apps, " "), sc.Events, sc.Rate, sc.Arrival)
	fmt.Printf("cluster    : %d compute node(s) + cloudfpga0, partial reconfig %v\n",
		sc.Nodes, sc.PartialReconfig)
	st, err := srv.Run()
	if err != nil {
		return err
	}
	fmt.Printf("served     : %d of %d events (%d shed), %d windows, makespan %.4gs modelled\n",
		st.Done, st.Events, st.Shed, st.Windows, st.Makespan)
	fmt.Printf("throughput : %.4g events/s modelled\n", st.Throughput)
	fmt.Printf("latency    : p50 %.4gs, p99 %.4gs, max %.4gs (SLO %.3gs met: %v)\n",
		st.P50, st.P99, st.Max, sc.SLO, st.P99 <= sc.SLO)
	for _, p := range st.Pipelines {
		fmt.Printf("  %-10s : %-10s %7d done, %6d shed, p50 %.4gs, p99 %.4gs\n",
			p.Name, p.Tenant, p.Done, p.Shed, p.P50, p.P99)
	}
	for _, d := range st.Devices {
		fmt.Printf("  %-13s : %d kernel(s) in %d region(s), %d swaps (%.4gs reloading)\n",
			d.Name, d.Kernels, d.Regions, d.Swaps, d.SwapSeconds)
	}
	return nil
}

// tenantAdaptSummary renders a tenant's adaptation stats, empty when the
// run had none (static mode without faults). Static runs with faults have
// reschedule/fallback counts but no variants; the variants clause is
// omitted then.
func tenantAdaptSummary(ts sdk.TenantStats) string {
	if len(ts.Variants) == 0 && ts.Reschedules == 0 && ts.Fallbacks == 0 {
		return ""
	}
	variants := ""
	if len(ts.Variants) > 0 {
		var vars []string
		for v, n := range ts.Variants {
			vars = append(vars, fmt.Sprintf("%s:%d", v, n))
		}
		sort.Strings(vars)
		variants = fmt.Sprintf("variants [%s], ", strings.Join(vars, " "))
	}
	return fmt.Sprintf(", %s%d resched, %d fallback",
		variants, ts.Reschedules, ts.Fallbacks)
}

// cmdAdapt runs the E-adapt comparison: the same FPGA-leaning workflows
// and mid-run faults (accelerator unplug + node slowdown) served twice,
// statically and adaptively, printing both makespans and the adaptation
// activity. With -compiled it runs the E-compile variant instead: the
// workload kernel is compiled source-to-schedule and the adaptive arm's
// tuners are seeded from the derived operating points.
func cmdAdapt(args []string) error {
	fs := flag.NewFlagSet("adapt", flag.ExitOnError)
	def := sdk.DefaultAdaptiveScenario()
	workflows := fs.Int("workflows", def.Workflows, "workflows to submit")
	nodes := fs.Int("nodes", def.Nodes, "compute nodes in the simulated cluster")
	fpgaNodes := fs.Int("fpga-nodes", def.FPGANodes, "nodes the bitstream is staged on")
	tenants := fs.Int("tenants", def.Tenants, "tenants sharing the cluster")
	slow := fs.Float64("slow", def.Slowdown, "load factor hitting the last compute node")
	faultAt := fs.Float64("fault-at", def.FaultAt, "modelled time the faults take effect")
	compiled := fs.Bool("compiled", false, "E-compile: serve a source-to-schedule compiled kernel instead of the hand-declared workload")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *compiled {
		csc := sdk.DefaultCompiledScenario()
		csc.Workflows, csc.Nodes, csc.FPGANodes, csc.Tenants = *workflows, *nodes, *fpgaNodes, *tenants
		csc.Slowdown = *slow
		// -fault-at defaults to the E-adapt timing; only an explicit value
		// overrides the compiled scenario's own default.
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "fault-at" {
				csc.FaultAt = *faultAt
			}
		})
		return runCompiledScenario(csc)
	}
	sc := sdk.AdaptiveScenario{
		Workflows: *workflows, Nodes: *nodes, FPGANodes: *fpgaNodes,
		Tenants: *tenants, Slowdown: *slow, FaultAt: *faultAt,
	}
	static, err := sc.Run(false)
	if err != nil {
		return err
	}
	adaptive, err := sc.Run(true)
	if err != nil {
		return err
	}
	fmt.Printf("scenario   : %d workflows, %d nodes (%d with FPGA), %d tenants\n",
		sc.Workflows, sc.Nodes, sc.FPGANodes, sc.Tenants)
	fmt.Printf("faults     : unplug FPGA of node00 + %.3gx slowdown of node%02d, from t=%.3gs\n",
		sc.Slowdown, sc.Nodes-1, sc.FaultAt)
	fmt.Printf("static     : %.4gs modelled\n", static.Makespan)
	fmt.Printf("adaptive   : %.4gs modelled\n", adaptive.Makespan)
	if adaptive.Makespan > 0 {
		fmt.Printf("speedup    : %.2fx\n", static.Makespan/adaptive.Makespan)
	}
	var names []string
	for name := range adaptive.Stats.Tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-10s : %s\n", name,
			strings.TrimPrefix(tenantAdaptSummary(adaptive.Stats.Tenants[name]), ", "))
	}
	fmt.Println("node health (adaptive run):")
	for _, h := range adaptive.Health {
		fmt.Printf("  %-10s : %2d tasks, ewma %.3gs, load est %.2fx, devices %d/%d\n",
			h.Node, h.Tasks, h.EWMALatency, h.SlowdownEst, h.DevicesOnline, h.DevicesTotal)
	}
	return nil
}

// runCompiledScenario serves the E-compile comparison and prints it.
func runCompiledScenario(sc sdk.CompiledScenario) error {
	c, err := sc.Compile()
	if err != nil {
		return err
	}
	static, err := sc.RunWith(c, false)
	if err != nil {
		return err
	}
	adaptive, err := sc.RunWith(c, true)
	if err != nil {
		return err
	}
	fmt.Printf("scenario   : %d workflows of compiled kernel %q, %d nodes (%d with FPGA), %d tenants, %s transfers\n",
		sc.Workflows, c.KernelName, sc.Nodes, sc.FPGANodes, sc.Tenants, sc.Net)
	fmt.Printf("hls        : %s\n", c.Report.String())
	fmt.Println("variants   : (derived from the HLS schedule + CPU cost model)")
	for _, row := range c.Summary() {
		fmt.Printf("  %s\n", row)
	}
	fmt.Printf("faults     : unplug FPGA of node00 + %.3gx slowdown of node%02d, from t=%.3gs\n",
		sc.Slowdown, sc.Nodes-1, sc.FaultAt)
	fmt.Printf("static     : %.4gs modelled (hand-declared path)\n", static.Makespan)
	fmt.Printf("adaptive   : %.4gs modelled (compiled variants)\n", adaptive.Makespan)
	if adaptive.Makespan > 0 {
		fmt.Printf("speedup    : %.2fx\n", static.Makespan/adaptive.Makespan)
	}
	var names []string
	for name := range adaptive.Stats.Tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-10s : %s\n", name,
			strings.TrimPrefix(tenantAdaptSummary(adaptive.Stats.Tenants[name]), ", "))
	}
	return nil
}

func cmdDialects() error {
	ctx := mlir.NewContext()
	dialects.RegisterAll(ctx)
	fmt.Println("registered MLIR dialects (paper Fig. 5):")
	for _, name := range ctx.DialectNames() {
		fmt.Printf("  %s\n", name)
	}
	return nil
}

func cmdAnomaly(args []string) error {
	fs := flag.NewFlagSet("anomaly", flag.ExitOnError)
	trials := fs.Int("trials", 30, "AutoML trial budget")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(8))
	train := tensor.New(250, 2)
	for i := 0; i < 250; i++ {
		train.Set(rng.NormFloat64(), i, 0)
		train.Set(rng.NormFloat64()*0.5+1, i, 1)
	}
	val := tensor.New(250, 2)
	labels := make([]bool, 250)
	for i := 0; i < 250; i++ {
		val.Set(rng.NormFloat64(), i, 0)
		val.Set(rng.NormFloat64()*0.5+1, i, 1)
	}
	for k := 0; k < 12; k++ {
		i := (k*19 + 5) % 250
		val.Set(9+rng.Float64()*3, i, 0)
		val.Set(-7-rng.Float64()*2, i, 1)
		labels[i] = true
	}
	tpe, err := anomaly.NewTPE(anomaly.DetectorSpace(), 7)
	if err != nil {
		return err
	}
	res, err := anomaly.SelectModel(train, val, labels, 12.0/250, *trials, tpe)
	if err != nil {
		return err
	}
	fmt.Printf("selected %s (F1=%.3f after %d trials)\n",
		res.Best.Cats["detector"], res.BestF1, res.Trials)
	node := &anomaly.DetectionNode{Detector: res.Detector}
	if err := node.CalibrateThreshold(train, 0.05); err != nil {
		return err
	}
	rep, err := node.Detect(val)
	if err != nil {
		return err
	}
	rep.Scores = nil // keep the JSON small
	js, err := rep.JSON()
	if err != nil {
		return err
	}
	fmt.Println(js)
	return nil
}

func cmdBench() error {
	for _, exp := range experiments.All() {
		tab, err := exp()
		if err != nil {
			return err
		}
		fmt.Println(tab.String())
	}
	return nil
}
