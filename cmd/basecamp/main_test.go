package main

import (
	"strings"
	"testing"

	"everest/internal/runtime"
	"everest/internal/sdk"
)

func TestServeFleetSmoke(t *testing.T) {
	if err := serveFleet(2, 2, 1, 8, 4, runtime.PolicyHEFT, true, "", "eth100g", 0.05, 0.2, 0, false, false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestServeFleetValidation(t *testing.T) {
	if err := serveFleet(2, 2, 1, 0, 4, runtime.PolicyHEFT, false, "", "tcp10g", 0.05, 0, 0, false, false, ""); err == nil {
		t.Fatal("zero workflows accepted")
	}
	if err := serveFleet(2, 2, 1, 8, 4, runtime.PolicyFIFO, false, "bogus", "tcp10g", 0.05, 0, 0, false, false, ""); err == nil {
		t.Fatal("bogus net accepted")
	}
}

func TestFormatByName(t *testing.T) {
	for _, name := range []string{"", "f32", "f64", "bf16", "f16", "fixed16", "posit16"} {
		if _, err := formatByName(name); err != nil {
			t.Fatalf("format %q: %v", name, err)
		}
	}
	if _, err := formatByName("int4"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestIsExampleKernel(t *testing.T) {
	if !isExampleKernel("windpower") {
		t.Fatal("windpower is a built-in example")
	}
	if isExampleKernel("nope") {
		t.Fatal("unknown kernel accepted")
	}
}

func TestTenantAdaptSummary(t *testing.T) {
	if got := tenantAdaptSummary(sdk.TenantStats{}); got != "" {
		t.Fatalf("idle tenant summary = %q, want empty", got)
	}
	got := tenantAdaptSummary(sdk.TenantStats{
		Reschedules: 2, Fallbacks: 1,
		Variants: map[string]int{"fpga": 3, "cpu16": 1},
	})
	for _, want := range []string{"2 resched", "1 fallback", "fpga:3", "cpu16:1"} {
		if !strings.Contains(got, want) {
			t.Fatalf("summary %q missing %q", got, want)
		}
	}
}

func TestServeRejectsFleetIncompatibleFlags(t *testing.T) {
	if err := cmdServe([]string{"-sites", "2", "-fail", "node00@0.5"}); err == nil {
		t.Fatal("-fail with -sites > 1 accepted")
	}
	if err := cmdServe([]string{"-sites", "2", "-concurrency", "4"}); err == nil {
		t.Fatal("-concurrency with -sites > 1 accepted")
	}
	if err := cmdServe([]string{"-policy", "turbo"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestServeRejectsSingleSiteIncompatibleFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-cache-slots", "2"},
		{"-registry-net", "eth100g"},
		{"-gap", "0.1"},
		{"-unplug-at", "0.2"},
		{"-suite"},
		{"-apps", "energy"},
	} {
		if err := cmdServe(args); err == nil {
			t.Fatalf("fleet-only flag %v accepted without -sites > 1", args)
		}
	}
}

func TestServeStreamSmoke(t *testing.T) {
	if err := serveStream(0, "", 0, 20000, 0, "poisson", true, false); err != nil {
		t.Fatal(err)
	}
}

func TestServeStreamRejectsUnknownApp(t *testing.T) {
	if err := serveStream(0, "nope", 0, 5000, 0, "poisson", true, false); err == nil {
		t.Fatal("unknown app accepted")
	}
	if err := serveStream(0, "", 0, 5000, 0, "sawtooth", true, false); err == nil {
		t.Fatal("unknown arrival process accepted")
	}
}

func TestServeRejectsStreamIncompatibleFlags(t *testing.T) {
	// Stream-only knobs outside -stream, and workflow-serving knobs
	// inside it, are conflicts, not silently ignored flags.
	for _, args := range [][]string{
		{"-rate", "4000"},
		{"-events", "1000"},
		{"-pipelines", "2"},
		{"-arrival", "bursty"},
		{"-partial=false"},
		{"-stream", "-workflows", "4"},
		{"-stream", "-sites", "2"},
		{"-stream", "-policy", "fifo"},
		{"-stream", "-cache-slots", "2"},
		{"-stream", "-suite"},
		{"-guaranteed"},                  // proven-bound class exists in fleet mode only
		{"-deadline", "2"},               // likewise its deadline knob
		{"-stream", "-guaranteed"},       // and the stream tier has its own QoS story
		{"-stream", "-deadline", "0.25"}, // (stream guarantees are per-event, not per-workflow)
	} {
		if err := cmdServe(args); err == nil {
			t.Fatalf("conflicting flags %v accepted", args)
		}
	}
}

func TestServeRegionsSmoke(t *testing.T) {
	if err := serveRegions(0, 60, 0, true, false, "", false); err != nil {
		t.Fatal(err)
	}
}

func TestServeRegionsRejectsBadWAN(t *testing.T) {
	if err := serveRegions(0, 60, 0, true, false, "no-such-fabric", false); err == nil {
		t.Fatal("bogus WAN accepted")
	}
}

func TestServeRejectsRegionIncompatibleFlags(t *testing.T) {
	// The region tier is its own scenario: fleet/stream workload knobs
	// inside -regions, and region-only knobs outside it, are conflicts.
	for _, args := range [][]string{
		{"-regions", "3", "-sites", "2"},
		{"-regions", "3", "-stream"},
		{"-regions", "3", "-suite"},
		{"-regions", "3", "-guaranteed"},
		{"-regions", "3", "-nodes", "4"},
		{"-regions", "3", "-cache-slots", "2"},
		{"-prefetch=false"},
		{"-autoscale"},
		{"-wan", "wan1g"},
	} {
		if err := cmdServe(args); err == nil {
			t.Fatalf("conflicting flags %v accepted", args)
		}
	}
}

func TestServeFleetSuiteSmoke(t *testing.T) {
	if err := serveFleet(2, 2, 2, 6, 3, runtime.PolicyHEFT, true, "", "eth100g", 0.05, 0.2, 0, false, true, ""); err != nil {
		t.Fatal(err)
	}
}

func TestServeFleetSuiteRejectsUnknownApp(t *testing.T) {
	if err := serveFleet(2, 2, 2, 6, 3, runtime.PolicyHEFT, true, "", "eth100g", 0.05, 0, 0, false, true, "nope"); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestServeKmeansSmoke(t *testing.T) {
	if err := serveKmeans(2, 4, 4, "", false); err != nil {
		t.Fatal(err)
	}
}

func TestServeKmeansRejectsBadFabric(t *testing.T) {
	if err := serveKmeans(2, 4, 4, "carrier-pigeon", false); err == nil {
		t.Fatal("bogus registry fabric accepted")
	}
}

func TestServeRejectsKmeansIncompatibleFlags(t *testing.T) {
	// The k-means data-plane run is its own scenario: workload knobs from
	// the other modes inside -kmeans, and kmeans-only knobs outside it,
	// are conflicts, not silently ignored flags.
	for _, args := range [][]string{
		{"-kmeans", "-workflows", "4"},
		{"-kmeans", "-stream"},
		{"-kmeans", "-suite"},
		{"-kmeans", "-guaranteed"},
		{"-kmeans", "-nodes", "4"},
		{"-kmeans", "-cache-slots", "2"},
		{"-kmeans", "-gap", "0.1"},
		{"-kmeans", "-policy", "fifo"},
		{"-kmeans", "-prefetch=false"},
		{"-regions", "2", "-kmeans"},
		{"-partitions", "8"},
		{"-centroids", "4"},
		{"-sites", "2", "-partitions", "8"},
		{"-stream", "-centroids", "4"},
	} {
		if err := cmdServe(args); err == nil {
			t.Fatalf("conflicting flags %v accepted", args)
		}
	}
}
