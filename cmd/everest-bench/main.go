// Command everest-bench regenerates the EVEREST reproduction experiment
// tables (E1–E14, see DESIGN.md and EXPERIMENTS.md).
//
// Usage:
//
//	everest-bench             # run every experiment
//	everest-bench -only E3    # run one experiment
//	everest-bench -list       # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"everest/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run a single experiment (e.g. E3)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	all := experiments.All()
	if *list {
		for i := range all {
			fmt.Printf("E%d\n", i+1)
		}
		return
	}
	failed := 0
	for i, exp := range all {
		id := fmt.Sprintf("E%d", i+1)
		if *only != "" && !strings.EqualFold(*only, id) {
			continue
		}
		tab, err := exp()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
			failed++
			continue
		}
		fmt.Println(tab.String())
	}
	if failed > 0 {
		os.Exit(1)
	}
}
