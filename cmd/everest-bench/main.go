// Command everest-bench regenerates the EVEREST reproduction experiment
// tables (E1–E14, see DESIGN.md and EXPERIMENTS.md) and drives the
// fleet-serving saturation harness.
//
// Usage:
//
//	everest-bench             # run every experiment
//	everest-bench -only E3    # run one experiment
//	everest-bench -list       # list experiments
//	everest-bench -saturate [-sites N] [-mode open|closed] [-gaps 0.64,0.08]
//	                          # sweep offered load over the fleet tier and
//	                          # report latency percentiles + throughput at SLO
//	everest-bench -saturate -suite [-apps energy,traffic,weather]
//	                          # serve the EVEREST use-case application suite
//	                          # (workload registry) instead of the default mix,
//	                          # with per-application latency percentiles
//	everest-bench -stream [-rates 1000,4000] [-events N] [-partial=false]
//	                          # sweep the streaming tier's offered event rate,
//	                          # report sustained events/sec at the p99 SLO and
//	                          # the partial-reconfiguration swap win
//	everest-bench -wcet [-deadlines 0.5,1,2,4,8,16]
//	                          # sweep the guaranteed-class deadline ladder at
//	                          # best-effort saturation (unplug+slowdown faults)
//	                          # and report admit rate, bound violations (must
//	                          # be zero), and proof tightness per rung
//	everest-bench -regions [-workflows N]
//	                          # serve the hierarchical E-region scenario twice
//	                          # (predictive bitstream prefetch on and off) and
//	                          # report the tail cold-start overhead contrast,
//	                          # handoffs, and guaranteed-class accounting
//	everest-bench -data       # serve the E-data map-reduce k-means twice
//	                          # (data-locality routing on and placement-blind)
//	                          # and report shipped bytes, staging stalls, and
//	                          # the bytes-per-workflow win
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"

	"everest/internal/apps"
	"everest/internal/experiments"
	"everest/internal/sdk"
)

func main() {
	// benchMain returns instead of exiting so the deferred profile
	// writers (-cpuprofile/-memprofile) flush on every path.
	os.Exit(benchMain())
}

func benchMain() int {
	only := flag.String("only", "", "run a single experiment (e.g. E3)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	saturate := flag.Bool("saturate", false, "run the fleet saturation harness instead of the experiment tables")
	sites := flag.Int("sites", 4, "federated engine sites (saturation harness)")
	nodes := flag.Int("nodes", 2, "compute nodes per site")
	tenants := flag.Int("tenants", 32, "tenants (closed mode: concurrent clients)")
	workflows := flag.Int("workflows", 64, "workflows per rung")
	cacheSlots := flag.Int("cache-slots", 1, "resident bitstreams per site")
	mode := flag.String("mode", "open", "arrival mode: open (rate ladder) or closed (one in flight per tenant)")
	slo := flag.Float64("slo", 1.75, "p95 latency SLO in modelled seconds")
	gaps := flag.String("gaps", "", "comma-separated open-mode interarrival gaps in modelled seconds (default ladder)")
	netName := flag.String("net", "", "intra-site transfer stack: tcp10g or udp10g (default: flat fabric)")
	registryNet := flag.String("registry-net", "tcp10g", "registry->site deploy fabric: tcp10g, udp10g, or eth100g")
	suite := flag.Bool("suite", false, "serve the EVEREST application suite (workload registry) instead of the default mix")
	appList := flag.String("apps", "", "comma-separated registry applications to serve (implies -suite; default: all)")
	streamMode := flag.Bool("stream", false, "run the streaming serving harness (long-lived pipelines) instead of the experiment tables")
	rates := flag.String("rates", "", "comma-separated per-pipeline event rates for the -stream ladder (default ladder)")
	events := flag.Int("events", 0, "events per pipeline for -stream (default 250000)")
	pipelines := flag.Int("pipelines", 0, "concurrent pipelines for -stream (default 2x apps)")
	arrival := flag.String("arrival", "poisson", "arrival process for -stream: poisson, bursty, or diurnal")
	partial := flag.Bool("partial", true, "keep kernels resident in FPGA partial-reconfiguration regions (-stream)")
	streamSLO := flag.Float64("stream-slo", 0.25, "p99 end-to-end event latency SLO in modelled seconds (-stream)")
	wcet := flag.Bool("wcet", false, "run the guaranteed-class deadline ladder (proven WCET admission) instead of the experiment tables")
	deadlines := flag.String("deadlines", "", "comma-separated deadline rungs in modelled seconds for -wcet (default ladder)")
	regions := flag.Bool("regions", false, "run the hierarchical multi-region harness (prefetch on/off contrast) instead of the experiment tables")
	data := flag.Bool("data", false, "run the named-data-plane harness (k-means locality on/off contrast) instead of the experiment tables")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (pprof format)")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file (pprof format)")
	flag.Parse()

	if *cpuProfile != "" {
		stop, err := startCPUProfile(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "everest-bench: -cpuprofile: %v\n", err)
			return 1
		}
		defer stop()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			if err := writeHeapProfile(path); err != nil {
				fmt.Fprintf(os.Stderr, "everest-bench: -memprofile: %v\n", err)
			}
		}()
	}

	if *appList != "" && !*streamMode {
		*suite = true
	}
	if *data {
		if *saturate || *streamMode || *wcet || *regions {
			fmt.Fprintln(os.Stderr, "everest-bench: -data, -regions, -wcet, -saturate and -stream are separate harnesses; pick one")
			return 2
		}
		if err := runData(); err != nil {
			fmt.Fprintf(os.Stderr, "everest-bench: %v\n", err)
			return 1
		}
		return 0
	}
	if *regions {
		if *saturate || *streamMode || *wcet {
			fmt.Fprintln(os.Stderr, "everest-bench: -regions, -wcet, -saturate and -stream are separate harnesses; pick one")
			return 2
		}
		// Honor -workflows only when set explicitly: the fleet-tier default
		// of 64 is too short for the region forecaster's warmup.
		regionWorkflows := 0
		flag.Visit(func(fl *flag.Flag) {
			if fl.Name == "workflows" {
				regionWorkflows = *workflows
			}
		})
		if err := runRegions(regionWorkflows); err != nil {
			fmt.Fprintf(os.Stderr, "everest-bench: %v\n", err)
			return 1
		}
		return 0
	}
	if *wcet {
		if *saturate || *streamMode {
			fmt.Fprintln(os.Stderr, "everest-bench: -wcet, -saturate and -stream are separate harnesses; pick one")
			return 2
		}
		if err := runWCET(*deadlines); err != nil {
			fmt.Fprintf(os.Stderr, "everest-bench: %v\n", err)
			return 1
		}
		return 0
	}
	if *streamMode {
		if *saturate {
			fmt.Fprintln(os.Stderr, "everest-bench: -stream and -saturate are separate harnesses; pick one")
			return 2
		}
		// The fleet default of 2 nodes/site doesn't suit the stream scenario,
		// whose swap-win story wants the default E-stream cluster (1 compute
		// node + cloudfpga0). Honor -nodes only when set explicitly.
		streamNodes := 0
		flag.Visit(func(fl *flag.Flag) {
			if fl.Name == "nodes" {
				streamNodes = *nodes
			}
		})
		if err := runStream(streamNodes, *appList, *pipelines, *events, *arrival,
			*partial, *streamSLO, *rates); err != nil {
			fmt.Fprintf(os.Stderr, "everest-bench: %v\n", err)
			return 1
		}
		return 0
	}
	if *saturate {
		if err := runSaturation(*sites, *nodes, *tenants, *workflows, *cacheSlots,
			*mode, *slo, *gaps, *netName, *registryNet, *suite, *appList); err != nil {
			fmt.Fprintf(os.Stderr, "everest-bench: %v\n", err)
			return 1
		}
		return 0
	}
	if *suite {
		fmt.Fprintln(os.Stderr, "everest-bench: -suite/-apps require -saturate")
		return 2
	}

	all := experiments.All()
	if *list {
		for i := range all {
			fmt.Printf("E%d\n", i+1)
		}
		return 0
	}
	failed := 0
	for i, exp := range all {
		id := fmt.Sprintf("E%d", i+1)
		if *only != "" && !strings.EqualFold(*only, id) {
			continue
		}
		tab, err := exp()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
			failed++
			continue
		}
		fmt.Println(tab.String())
	}
	if failed > 0 {
		return 1
	}
	return 0
}

// startCPUProfile begins streaming a pprof CPU profile to path; the
// returned stop flushes and closes it.
func startCPUProfile(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// writeHeapProfile snapshots the live heap to path after settling it with
// a GC cycle.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // settle live heap before snapshotting
	return pprof.WriteHeapProfile(f)
}

// runSaturation drives the fleet tier to saturation: open mode sweeps a
// ladder of offered loads and reports the achieved throughput at the
// highest SLO-meeting rung; closed mode serves one run with each tenant
// keeping a single workflow in flight and prints per-tenant percentiles.
// With suite set, the served stream is the EVEREST application suite from
// the workload registry and per-application percentiles are reported.
func runSaturation(sites, nodes, tenants, workflows, cacheSlots int, mode string, slo float64, gapList, netName, registryNet string, suite bool, appList string) error {
	sc := sdk.FleetScenario{
		Sites: sites, NodesPerSite: nodes, CacheSlots: cacheSlots,
		Tenants: tenants, Workflows: workflows,
		ArrivalGap: 0.05, UnplugAt: 0.5,
		Net: netName, RegistryNet: registryNet,
		Adaptive: true, SLO: slo,
	}
	workload := "mixed"
	if suite {
		sc.Apps = apps.Names()
		if appList != "" {
			sc.Apps = nil
			for _, name := range strings.Split(appList, ",") {
				sc.Apps = append(sc.Apps, strings.TrimSpace(name))
			}
		}
		workload = "app-suite [" + strings.Join(sc.Apps, " ") + "]"
	}
	fmt.Printf("fleet      : %d sites x (%d compute nodes + cloudfpga0), cache %d slot(s)/site\n",
		sites, nodes, cacheSlots)
	fmt.Printf("workload   : %d %s workflows from %d tenants, SLO p95 <= %.3gs modelled\n",
		workflows, workload, tenants, slo)

	var run func(sc sdk.FleetScenario) (sdk.FleetResult, error)
	var sweep func(gaps []float64) ([]sdk.SaturationPoint, sdk.SaturationPoint, []map[string]sdk.TenantLatency, error)
	if suite {
		st, err := sc.BuildSuite()
		if err != nil {
			return err
		}
		run = func(sc sdk.FleetScenario) (sdk.FleetResult, error) { return sc.RunSuite(st) }
		sweep = func(gaps []float64) ([]sdk.SaturationPoint, sdk.SaturationPoint, []map[string]sdk.TenantLatency, error) {
			return sc.SaturateSuite(st, gaps)
		}
	} else {
		c, err := sc.Compile()
		if err != nil {
			return err
		}
		run = func(sc sdk.FleetScenario) (sdk.FleetResult, error) { return sc.RunWith(c) }
		sweep = func(gaps []float64) ([]sdk.SaturationPoint, sdk.SaturationPoint, []map[string]sdk.TenantLatency, error) {
			points, best, err := sc.Saturate(c, gaps)
			return points, best, nil, err
		}
	}

	switch mode {
	case "closed":
		if gapList != "" {
			// Closed mode has no rate ladder (each client keeps one
			// workflow in flight); silently ignoring the list would
			// misreport what was measured.
			return fmt.Errorf("-gaps is an open-mode flag; not supported with -mode closed")
		}
		sc.Closed = true
		res, err := run(sc)
		if err != nil {
			return err
		}
		fmt.Printf("closed loop: %d clients, %d completed, makespan %.4gs\n",
			tenants, res.Completed, res.Makespan)
		fmt.Printf("throughput : %.4g workflows/s modelled\n", res.Throughput)
		fmt.Printf("latency    : p50 %.4gs, p95 %.4gs, max %.4gs (SLO met: %v)\n",
			res.P50, res.P95, res.Max, res.SLOMet)
		printAppPercentiles(res.Apps)
		printTenantPercentiles(res)
		return nil
	case "open":
		ladder := sdk.DefaultSaturationGaps()
		if gapList != "" {
			ladder = nil
			for _, s := range strings.Split(gapList, ",") {
				g, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
				if err != nil {
					return fmt.Errorf("bad -gaps entry %q: %w", s, err)
				}
				ladder = append(ladder, g)
			}
		}
		points, best, perApp, err := sweep(ladder)
		if err != nil {
			return err
		}
		fmt.Println("offered/s   achieved/s   p50 s     p95 s     done  rej  SLO")
		for _, p := range points {
			met := "ok"
			if !p.SLOMet {
				met = "MISS"
			}
			fmt.Printf("%9.4g   %10.4g   %7.4g   %7.4g   %4d  %3d  %s\n",
				p.OfferedRate, p.Throughput, p.P50, p.P95, p.Completed, p.Rejected, met)
		}
		if best.Throughput <= 0 {
			return fmt.Errorf("no rung met the SLO; lower the offered load or raise -slo")
		}
		fmt.Printf("throughput_at_slo: %.4g workflows/s (gap %.4gs, p95 %.4gs)\n",
			best.Throughput, best.Gap, best.P95)
		for i, p := range points {
			if p.Gap == best.Gap && i < len(perApp) {
				printAppPercentiles(perApp[i])
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown -mode %q (want open or closed)", mode)
	}
}

// runStream drives the streaming tier: it compiles the E-stream
// application suite once, sweeps the offered per-pipeline event rate
// over a ladder, reports the sustained events/sec at the highest rung
// that met the p99 SLO, and closes with the partial-reconfiguration
// swap-win comparison at the scenario's configured rate.
// runWCET is `everest-bench -wcet`: the guaranteed-class admission ladder.
// The E-wcet scenario (E-fleet mix at best-effort saturation, unplug and
// 3x slowdown faults on site 0) is re-served once per deadline rung; each
// rung reports how much guaranteed work the fleet could prove a bound for,
// whether any admitted workflow missed its bound (the run fails if one
// did), and how tight the worst proof was.
func runWCET(deadlineList string) error {
	ladder := []float64{0.5, 1, 2, 4, 8, 16}
	if deadlineList != "" {
		ladder = nil
		for _, s := range strings.Split(deadlineList, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil || v <= 0 {
				return fmt.Errorf("bad -deadlines entry %q", s)
			}
			ladder = append(ladder, v)
		}
	}
	sc := sdk.DefaultGuaranteedScenario()
	c, err := sc.Compile()
	if err != nil {
		return err
	}
	fmt.Printf("fleet      : %d sites x (%d compute nodes + cloudfpga0), every %dth workflow guaranteed\n",
		sc.Sites, sc.NodesPerSite, sc.GuaranteedEvery)
	fmt.Printf("faults     : unplug@%.3gs + %gx slowdown@%.3gs on site 0 (cap honours the SlowdownCap contract)\n",
		sc.UnplugAt, sc.SlowdownFactor, sc.SlowdownAt)
	fmt.Printf("%10s %10s %10s %10s %12s %10s %10s\n",
		"deadline_s", "requested", "admitted", "admit_rate", "violations", "tightness", "p95_s")
	violations := 0
	for _, dl := range ladder {
		rung := sc
		rung.GuaranteedDeadline = dl
		res, err := rung.RunWith(c)
		if err != nil {
			return err
		}
		violations += res.BoundViolations
		fmt.Printf("%10.3g %10d %10d %10.2f %12d %10.3g %10.4g\n",
			dl, res.GuaranteedAdmitted+res.GuaranteedRefused, res.GuaranteedAdmitted,
			res.GuaranteedAdmitRate, res.BoundViolations, res.BoundTightness, res.P95)
	}
	if violations > 0 {
		return fmt.Errorf("%d guaranteed completions missed their proven bound — the admission math is broken", violations)
	}
	fmt.Println("bounds     : every admitted guarantee held (0 violations)")
	return nil
}

// runRegions is `everest-bench -regions`: the hierarchical federation
// harness. The default E-region scenario — a traffic wave traveling
// across three geo-distributed regions over the 1 Gb/s WAN with batch
// churn and guaranteed-class admissions — is served twice over the same
// compiled suite, once with predictive bitstream prefetch and once
// without, and the tail cold-start overhead contrast is reported. The
// run fails if any admitted guarantee missed its proven bound.
func runRegions(workflows int) error {
	sc := sdk.DefaultRegionScenario()
	if workflows > 0 {
		sc.Workflows = workflows
	}
	s, err := sc.BuildSuite()
	if err != nil {
		return err
	}
	fmt.Printf("federation : %d regions x %d sites x (%d compute nodes + cloudfpga0), WAN %s\n",
		sc.Regions, sc.SitesPerRegion, sc.NodesPerSite, sc.WAN)
	fmt.Printf("workload   : %d workflows, wave period %.3gs, batch every %d, guaranteed every %dth wave arrival (deadline %.3gs)\n",
		sc.Workflows, float64(sc.Regions*sc.BlockSize)*sc.ArrivalGap, sc.BatchEvery,
		sc.GuaranteedEvery, sc.GuaranteedDeadline)
	fmt.Printf("%-12s %6s %9s %12s %10s %9s %9s %9s %11s\n",
		"prefetch", "done", "tail_p99", "coldstart_99", "tail_cold", "handoffs", "staged", "admitted", "violations")
	arms := map[bool]sdk.RegionResult{}
	violations := 0
	for _, pf := range []bool{false, true} {
		run := sc
		run.Prefetch = pf
		res, err := run.RunSuite(s)
		if err != nil {
			return err
		}
		arms[pf] = res
		violations += res.BoundViolations
		label := "off"
		if pf {
			label = "on"
		}
		fmt.Printf("%-12s %6d %8.4gs %11.4gs %10d %9d %9d %5d/%-3d %11d\n",
			label, res.Completed, res.TailP99, res.TailColdStartP99, res.TailCold,
			res.Handoffs, res.PrefetchFetches, res.GuaranteedAdmitted,
			res.GuaranteedAdmitted+res.GuaranteedRefused, res.BoundViolations)
	}
	on, off := arms[true], arms[false]
	if on.TailColdStartP99 <= 0 {
		return fmt.Errorf("prefetch-on arm has no tail overhead to compare (%.4g)", on.TailColdStartP99)
	}
	fmt.Printf("coldstart_p99_speedup: %.4gx (off %.4gs / on %.4gs)\n",
		off.TailColdStartP99/on.TailColdStartP99, off.TailColdStartP99, on.TailColdStartP99)
	if violations > 0 {
		return fmt.Errorf("%d guaranteed completions missed their proven bound — the admission math is broken", violations)
	}
	fmt.Println("bounds     : every admitted guarantee held (0 violations)")
	return nil
}

// runData is the E-data contrast table: the identical map-reduce
// k-means workload served with and without data-locality pricing in the
// fleet router (the PlacementBlind arm), reporting shipped bytes,
// staging stall, dataset-store hit rates, and the byte win the CI
// benchmark gate ratchets.
func runData() error {
	sc := sdk.DefaultKMeansScenario()
	cfg := sc.Config
	fmt.Printf("fleet      : %d sites over %s, site-local dataset stores, kernels pre-warmed fleet-wide\n",
		sc.Sites, sc.RegistryNet)
	fmt.Printf("workload   : %d rounds x (%d map shards + 1 reduce), %d points x %d dims, %d centroids, partitions scattered\n",
		sc.Rounds, cfg.Partitions, cfg.Points, cfg.Dims, cfg.Centroids)
	fmt.Printf("%-10s %6s %10s %12s %12s %9s %9s %12s\n",
		"routing", "done", "shipped", "B/workflow", "stall", "hits", "misses", "wf/s")
	arms := map[bool]sdk.KMeansResult{}
	for _, blind := range []bool{true, false} {
		run := sc
		run.PlacementBlind = blind
		res, err := run.Run()
		if err != nil {
			return err
		}
		arms[blind] = res
		label := "locality"
		if blind {
			label = "blind"
		}
		fmt.Printf("%-10s %6d %9dB %12.4g %11.4gs %9d %9d %12.4g\n",
			label, res.Workflows, res.ShippedBytes, res.BytesPerWorkflow,
			res.FetchStall, res.DatasetHits, res.DatasetMisses, res.Throughput)
	}
	local, blind := arms[false], arms[true]
	if local.BytesPerWorkflow <= 0 {
		return fmt.Errorf("locality arm shipped nothing to compare (%.4g B/workflow)", local.BytesPerWorkflow)
	}
	fmt.Printf("locality_byte_win: %.4gx (blind %.4g B/wf / locality %.4g B/wf)\n",
		blind.BytesPerWorkflow/local.BytesPerWorkflow, blind.BytesPerWorkflow, local.BytesPerWorkflow)
	return nil
}

func runStream(nodes int, appList string, pipelines, events int, arrival string, partial bool, slo float64, rateList string) error {
	sc := sdk.DefaultStreamScenario()
	sc.Nodes = nodes // 0 → scenario default
	if appList != "" {
		sc.Apps = nil
		for _, name := range strings.Split(appList, ",") {
			sc.Apps = append(sc.Apps, strings.TrimSpace(name))
		}
		sc.Pipelines = 0 // re-derive from the app list
	}
	if pipelines > 0 {
		sc.Pipelines = pipelines
	}
	if events > 0 {
		sc.Events = events
	}
	sc.Arrival = arrival
	sc.PartialReconfig = partial
	sc.SLO = slo

	ladder := sdk.DefaultStreamRates()
	if rateList != "" {
		ladder = nil
		for _, s := range strings.Split(rateList, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return fmt.Errorf("bad -rates entry %q: %w", s, err)
			}
			ladder = append(ladder, r)
		}
	}

	srv, err := sdk.NewStreamServer(sc)
	if err != nil {
		return err
	}
	sc = srv.Scenario()
	fmt.Printf("stream     : %d pipelines over [%s], %d events each, %s arrivals\n",
		sc.Pipelines, strings.Join(sc.Apps, " "), sc.Events, sc.Arrival)
	fmt.Printf("cluster    : %d compute node(s) + cloudfpga0, partial reconfig %v, SLO p99 <= %.3gs modelled\n",
		sc.Nodes, sc.PartialReconfig, sc.SLO)

	points, best, err := srv.Saturate(ladder)
	if err != nil {
		return err
	}
	fmt.Println("rate/pipe   achieved/s   p50 s       p99 s       shed     swaps  SLO")
	for _, p := range points {
		met := "ok"
		if !p.SLOMet {
			met = "MISS"
		}
		fmt.Printf("%9.4g   %10.4g   %9.4g   %9.4g   %6d   %5d  %s\n",
			p.Rate, p.Throughput, p.P50, p.P99, p.Shed, p.Swaps, met)
	}
	if best.Throughput <= 0 {
		return fmt.Errorf("no rung met the SLO; lower the offered rates or raise -stream-slo")
	}
	fmt.Printf("events_per_sec_at_slo: %.4g (rate %.4g/pipeline, p99 %.4gs)\n",
		best.Throughput, best.Rate, best.P99)

	on, off, err := srv.SwapWin()
	if err != nil {
		return err
	}
	fmt.Printf("swap_win   : partial on  %.4g ev/s, p99 %.4gs, %d swaps\n",
		on.Throughput, on.P99, on.Swaps)
	fmt.Printf("             partial off %.4g ev/s, p99 %.4gs, %d swaps (%.4gs reloading)\n",
		off.Throughput, off.P99, off.Swaps, off.SwapSeconds)
	return nil
}

// printAppPercentiles renders the per-application latency distribution of
// a suite run (no-op for the default mix).
func printAppPercentiles(perApp map[string]sdk.TenantLatency) {
	var names []string
	for name := range perApp {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		tl := perApp[name]
		fmt.Printf("  app %-8s : %2d done, p50 %.4gs, p95 %.4gs, max %.4gs\n",
			name, tl.Completed, tl.P50, tl.P95, tl.Max)
	}
}

// printTenantPercentiles renders the per-tenant latency distribution.
func printTenantPercentiles(res sdk.FleetResult) {
	var names []string
	for name := range res.Stats.Tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		tl := res.Stats.Tenants[name]
		fmt.Printf("  %-10s : %2d done, p50 %.4gs, p95 %.4gs, max %.4gs\n",
			name, tl.Completed, tl.P50, tl.P95, tl.Max)
	}
}
