package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunSaturationOpen(t *testing.T) {
	if err := runSaturation(2, 2, 4, 12, 1, "open", 1.75, "0.64,0.01", "", "eth100g", false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunSaturationClosed(t *testing.T) {
	if err := runSaturation(2, 2, 4, 12, 1, "closed", 1.75, "", "", "tcp10g", false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunSaturationRejectsBadFlags(t *testing.T) {
	if err := runSaturation(2, 2, 4, 8, 1, "bogus", 1.75, "", "", "tcp10g", false, ""); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if err := runSaturation(2, 2, 4, 8, 1, "open", 1.75, "not-a-number", "", "tcp10g", false, ""); err == nil {
		t.Fatal("malformed -gaps accepted")
	}
	if err := runSaturation(2, 2, 4, 8, 1, "open", 1.75, "0.1", "bogus", "tcp10g", false, ""); err == nil {
		t.Fatal("bogus net accepted")
	}
	// An SLO no rung can meet is an explicit error, not a zero metric.
	if err := runSaturation(1, 2, 4, 12, 1, "open", 1e-9, "0.001", "", "tcp10g", false, ""); err == nil {
		t.Fatal("impossible SLO should error")
	}
}

func TestRunSaturationSuiteOpen(t *testing.T) {
	if err := runSaturation(2, 2, 6, 12, 2, "open", 2.5, "0.64,0.01", "", "eth100g", true, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunSaturationSuiteClosedSubset(t *testing.T) {
	if err := runSaturation(2, 2, 6, 8, 2, "closed", 2.5, "", "", "tcp10g", true, "energy, weather"); err != nil {
		t.Fatal(err)
	}
}

func TestRunSaturationSuiteRejectsUnknownApp(t *testing.T) {
	if err := runSaturation(2, 2, 6, 8, 2, "open", 2.5, "0.64", "", "tcp10g", true, "nope"); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestRunWCETSmoke(t *testing.T) {
	if err := runWCET("2,4"); err != nil {
		t.Fatal(err)
	}
}

func TestRunWCETRejectsBadDeadlines(t *testing.T) {
	if err := runWCET("not-a-number"); err == nil {
		t.Fatal("malformed -deadlines accepted")
	}
	if err := runWCET("0"); err == nil {
		t.Fatal("non-positive deadline accepted")
	}
}

func TestRunStreamSmoke(t *testing.T) {
	if err := runStream(0, "", 0, 20000, "poisson", true, 0.25, "2000,4000"); err != nil {
		t.Fatal(err)
	}
}

func TestRunStreamRejectsBadFlags(t *testing.T) {
	if err := runStream(0, "", 0, 5000, "poisson", true, 0.25, "not-a-number"); err == nil {
		t.Fatal("malformed -rates accepted")
	}
	if err := runStream(0, "nope", 0, 5000, "poisson", true, 0.25, "2000"); err == nil {
		t.Fatal("unknown app accepted")
	}
	// An SLO no rung can meet is an explicit error, not a zero metric.
	if err := runStream(0, "", 0, 5000, "poisson", true, 1e-9, "4000"); err == nil {
		t.Fatal("impossible SLO should error")
	}
}

// TestRunRegionsSmoke runs the full E-region contrast (both prefetch
// arms over the shared suite); runRegions itself errors on any
// guaranteed-bound violation or a degenerate prefetch-on arm.
func TestRunRegionsSmoke(t *testing.T) {
	if err := runRegions(0); err != nil {
		t.Fatal(err)
	}
}

// TestProfileHelpers covers the -cpuprofile/-memprofile plumbing: both
// helpers must produce non-empty pprof files and surface unwritable paths
// as errors instead of exiting mid-profile.
func TestProfileHelpers(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	stop, err := startCPUProfile(cpu)
	if err != nil {
		t.Fatal(err)
	}
	sink := 0
	for i := 0; i < 1000; i++ { // give the profiler something to sample
		sink += i * i
	}
	_ = sink
	stop()
	if fi, err := os.Stat(cpu); err != nil || fi.Size() == 0 {
		t.Fatalf("cpu profile missing or empty: %v", err)
	}
	if _, err := startCPUProfile(dir); err == nil {
		t.Error("cpu profile into a directory path must error")
	}

	mem := filepath.Join(dir, "mem.pprof")
	if err := writeHeapProfile(mem); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(mem); err != nil || fi.Size() == 0 {
		t.Fatalf("heap profile missing or empty: %v", err)
	}
	if err := writeHeapProfile(dir); err == nil {
		t.Error("heap profile into a directory path must error")
	}
}

// TestRunDataSmoke runs the full E-data contrast (both routing arms of
// the map-reduce k-means); runData itself errors on a degenerate
// locality arm.
func TestRunDataSmoke(t *testing.T) {
	if err := runData(); err != nil {
		t.Fatal(err)
	}
}
