package main

import "testing"

func TestRunSaturationOpen(t *testing.T) {
	if err := runSaturation(2, 2, 4, 12, 1, "open", 1.75, "0.64,0.01", "", "eth100g", false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunSaturationClosed(t *testing.T) {
	if err := runSaturation(2, 2, 4, 12, 1, "closed", 1.75, "", "", "tcp10g", false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunSaturationRejectsBadFlags(t *testing.T) {
	if err := runSaturation(2, 2, 4, 8, 1, "bogus", 1.75, "", "", "tcp10g", false, ""); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if err := runSaturation(2, 2, 4, 8, 1, "open", 1.75, "not-a-number", "", "tcp10g", false, ""); err == nil {
		t.Fatal("malformed -gaps accepted")
	}
	if err := runSaturation(2, 2, 4, 8, 1, "open", 1.75, "0.1", "bogus", "tcp10g", false, ""); err == nil {
		t.Fatal("bogus net accepted")
	}
	// An SLO no rung can meet is an explicit error, not a zero metric.
	if err := runSaturation(1, 2, 4, 12, 1, "open", 1e-9, "0.001", "", "tcp10g", false, ""); err == nil {
		t.Fatal("impossible SLO should error")
	}
}

func TestRunSaturationSuiteOpen(t *testing.T) {
	if err := runSaturation(2, 2, 6, 12, 2, "open", 2.5, "0.64,0.01", "", "eth100g", true, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunSaturationSuiteClosedSubset(t *testing.T) {
	if err := runSaturation(2, 2, 6, 8, 2, "closed", 2.5, "", "", "tcp10g", true, "energy, weather"); err != nil {
		t.Fatal(err)
	}
}

func TestRunSaturationSuiteRejectsUnknownApp(t *testing.T) {
	if err := runSaturation(2, 2, 6, 8, 2, "open", 2.5, "0.64", "", "tcp10g", true, "nope"); err == nil {
		t.Fatal("unknown app accepted")
	}
}
