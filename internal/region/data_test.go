package region

import (
	"testing"

	"everest/internal/dataset"
	"everest/internal/netsim"
	"everest/internal/platform"
	"everest/internal/runtime"
)

// dataWorkflow is a single software task reading and writing the given
// dataset partitions (data-plane routing fixture; no FPGA stage so the
// artifact path stays out of the cost).
func dataWorkflow(reads, writes []dataset.Ref) *runtime.Workflow {
	w := runtime.NewWorkflow()
	if err := w.Submit(runtime.TaskSpec{
		Name: "stage", Flops: 1e9, Reads: reads, Writes: writes,
	}); err != nil {
		panic(err)
	}
	return w
}

func submitData(t *testing.T, f *Federation, req Request) Result {
	t.Helper()
	h, err := f.SubmitAt(req)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRegionDatasetLocalityRouting: with a big partition resident in one
// region, the router sends its reader there — the WAN transfer the other
// region would pay prices it out of the argmin — and the serve stages
// nothing.
func TestRegionDatasetLocalityRouting(t *testing.T) {
	f := newTestFed(t, platform.NewRegistry(), Config{Regions: 2})
	defer f.Shutdown()
	part := dataset.Ref{Name: "train/points", Bytes: 1 << 30}
	if err := f.PlaceDataset(1, 0, part); err != nil {
		t.Fatal(err)
	}
	if !f.DatasetResident(1, part) || f.DatasetResident(0, part) {
		t.Fatal("placement did not land in region 1 only")
	}
	res := submitData(t, f, Request{Name: "reader", Home: 0, Arrival: 0, Class: Interactive,
		Workflow: dataWorkflow([]dataset.Ref{part}, nil)})
	if res.Region != "region01" {
		t.Fatalf("routed to %s, want region01 (data gravity)", res.Region)
	}
	if res.DataFetch != 0 {
		t.Fatalf("DataFetch = %g at the resident region, want 0", res.DataFetch)
	}
}

// TestRegionWANDataFetch pins the serve-path staging cost: a reader held
// at its home region by an expensive payload handoff WAN-fetches the
// remote partition at exactly the stack's transfer time, the fetched
// copy becomes resident (the second serve is free), and the stats and
// trace account the transfer once.
func TestRegionWANDataFetch(t *testing.T) {
	var events []Event
	f := newTestFed(t, platform.NewRegistry(), Config{Regions: 2,
		Trace: func(e Event) { events = append(events, e) }})
	defer f.Shutdown()
	part := dataset.Ref{Name: "train/points", Bytes: 1 << 28}
	if err := f.PlaceDataset(1, 0, part); err != nil {
		t.Fatal(err)
	}
	// The 4 GiB input payload makes the handoff to region 1 far more
	// expensive than fetching the 256 MiB partition home.
	res := submitData(t, f, Request{Name: "reader", Home: 0, Arrival: 0, Class: Interactive,
		InputBytes: 4 << 30, Workflow: dataWorkflow([]dataset.Ref{part}, nil)})
	if res.Region != "region00" {
		t.Fatalf("routed to %s, want region00 (payload gravity wins)", res.Region)
	}
	wan := netsim.WAN10G()
	if want := wan.SendSeconds(part.Bytes); res.DataFetch != want {
		t.Fatalf("DataFetch = %g, want the WAN transfer %g", res.DataFetch, want)
	}
	if !res.Cold {
		t.Fatal("a serve that WAN-staged data must be Cold")
	}
	if !f.DatasetResident(0, part) {
		t.Fatal("fetched partition not cached in the region store")
	}
	// Resident now: the same read later is free.
	res2 := submitData(t, f, Request{Name: "reader2", Home: 0, Arrival: res.Completion, Class: Interactive,
		InputBytes: 4 << 30, Workflow: dataWorkflow([]dataset.Ref{part}, nil)})
	if res2.Region != "region00" || res2.DataFetch != 0 {
		t.Fatalf("second read: region=%s DataFetch=%g, want a free home serve", res2.Region, res2.DataFetch)
	}
	st := f.Stats()
	rs := st.Regions[0]
	if st.DataFetches != 1 || rs.DataFetches != 1 || rs.DataFetchedBytes != part.Bytes {
		t.Fatalf("fetch accounting: fed=%d region=%d bytes=%d, want 1/1/%d",
			st.DataFetches, rs.DataFetches, rs.DataFetchedBytes, part.Bytes)
	}
	fetches := 0
	for _, e := range events {
		if e.Kind == EventDataFetch {
			fetches++
		}
	}
	if fetches != 1 {
		t.Fatalf("%d EventDataFetch events, want 1", fetches)
	}
}

// TestRegionCrossWorkflowPublish: a producer's Writes reach the serving
// region's store and the federation catalog, so an unrelated consumer
// submitted at another gateway is routed to the data and stages nothing.
func TestRegionCrossWorkflowPublish(t *testing.T) {
	f := newTestFed(t, platform.NewRegistry(), Config{Regions: 2})
	defer f.Shutdown()
	model := dataset.Ref{Name: "shared/model", Bytes: 1 << 30}
	prod := submitData(t, f, Request{Name: "producer", Home: 0, Arrival: 0, Class: Interactive,
		Workflow: dataWorkflow(nil, []dataset.Ref{model})})
	if prod.Region != "region00" {
		t.Fatalf("producer served at %s, want its home region00", prod.Region)
	}
	if !f.DatasetResident(0, model) {
		t.Fatal("producer output not published into the region store")
	}
	cons := submitData(t, f, Request{Name: "consumer", Home: 1, Arrival: prod.Completion, Class: Interactive,
		Workflow: dataWorkflow([]dataset.Ref{model}, nil)})
	if cons.Region != "region00" || cons.DataFetch != 0 {
		t.Fatalf("consumer: region=%s DataFetch=%g, want a free serve at the producer's region",
			cons.Region, cons.DataFetch)
	}
	if f.Stats().DataFetches != 0 {
		t.Fatal("cross-workflow reuse paid a WAN fetch")
	}
}

// TestRegionUnknownReadsFree: a ref the federation catalog has never
// seen is outside source data — it prices at zero everywhere, stages
// nothing, and leaves the reader at its home region.
func TestRegionUnknownReadsFree(t *testing.T) {
	f := newTestFed(t, platform.NewRegistry(), Config{Regions: 2})
	defer f.Shutdown()
	ext := dataset.Ref{Name: "external/archive", Bytes: 1 << 40}
	res := submitData(t, f, Request{Name: "reader", Home: 0, Arrival: 0, Class: Interactive,
		Workflow: dataWorkflow([]dataset.Ref{ext}, nil)})
	if res.Region != "region00" || res.DataFetch != 0 {
		t.Fatalf("region=%s DataFetch=%g, want a free home serve", res.Region, res.DataFetch)
	}
	if st := f.Stats(); st.DataFetches != 0 || st.Regions[0].DataFetchedBytes != 0 {
		t.Fatalf("unknown read shipped bytes: %+v", st)
	}
}

// TestDataEstimateSingleCharge is the data-plane half of the route-cost
// audit: each known partition is charged exactly once — zero when
// resident, the WAN transfer when reachable, the fallback penalty when
// the region is partitioned off — and the arms are never additive.
func TestDataEstimateSingleCharge(t *testing.T) {
	f := newTestFed(t, platform.NewRegistry(), Config{Regions: 1,
		Partitions: []Partition{{Region: 0, From: 10, Until: 20}}})
	defer f.Shutdown()
	resident := dataset.Ref{Name: "resident", Bytes: 1 << 27}
	missing := dataset.Ref{Name: "missing", Bytes: 1 << 28}
	if err := f.PlaceDataset(0, 0, resident); err != nil {
		t.Fatal(err)
	}
	r := f.regions[0]
	known := []dataset.Ref{resident, missing}
	if got := f.dataEstimate(r, known, 0); got != f.wan.SendSeconds(missing.Bytes) {
		t.Fatalf("reachable estimate = %g, want exactly one WAN transfer %g",
			got, f.wan.SendSeconds(missing.Bytes))
	}
	// Inside the partition window the missing ref costs the flat fallback
	// penalty instead of — never in addition to — the WAN transfer.
	if got := f.dataEstimate(r, known, 15); got != f.cfg.FallbackSeconds {
		t.Fatalf("partitioned estimate = %g, want FallbackSeconds %g",
			got, f.cfg.FallbackSeconds)
	}
	if got := f.dataEstimate(r, []dataset.Ref{resident}, 0); got != 0 {
		t.Fatalf("resident estimate = %g, want 0", got)
	}
	// knownReads is the catalog gate in front of the estimate.
	if got := f.knownReads([]dataset.Ref{resident, {Name: "never-seen"}}); len(got) != 1 ||
		got[0].Name != "resident" {
		t.Fatalf("knownReads = %v, want the resident ref only", got)
	}
}

// TestRegionDataPrefetch mirrors TestPrefetchWarmsTheNextWave for the
// data plane: two apps churn a region store that holds one partition;
// after the window roll the forecaster re-stages the hotter app's
// partition, so its next arrival serves with zero staging stall.
func TestRegionDataPrefetch(t *testing.T) {
	partA := dataset.Ref{Name: "app-a/points", Bytes: 1 << 26}
	partB := dataset.Ref{Name: "app-b/points", Bytes: 1 << 26}
	run := func(prefetch bool) (Result, Stats) {
		f := newTestFed(t, platform.NewRegistry(), Config{Regions: 1,
			DatasetStoreBytes: 1<<26 + 1024,
			Prefetch:          prefetch, WindowSeconds: 1, WarmThreshold: 0.5})
		defer f.Shutdown()
		// Placing B evicts A: the store fits one partition.
		if err := f.PlaceDataset(0, 0, partA); err != nil {
			t.Fatal(err)
		}
		if err := f.PlaceDataset(0, 0, partB); err != nil {
			t.Fatal(err)
		}
		submit := func(app string, part dataset.Ref, at float64) Result {
			return submitData(t, f, Request{Name: app, App: app, Home: 0, Arrival: at, Class: Interactive,
				Workflow: dataWorkflow([]dataset.Ref{part}, nil)})
		}
		// Window 0: app a is the hot one; app b churns its partition out.
		submit("a", partA, 0.10)
		submit("a", partA, 0.20)
		submit("b", partB, 0.50)
		// Past the roll at t=1: with prefetch on, the roll re-staged partA
		// off the serving path before this arrival.
		last := submit("a", partA, 1.10)
		return last, f.Shutdown()
	}

	cold, stOff := run(false)
	if cold.DataFetch <= 0 {
		t.Fatalf("without prefetch DataFetch = %g, want a cold re-fetch after churn", cold.DataFetch)
	}
	if stOff.DataPrefetches != 0 {
		t.Fatalf("prefetch off but DataPrefetches = %d", stOff.DataPrefetches)
	}

	warm, stOn := run(true)
	if warm.DataFetch != 0 || warm.Cold {
		t.Fatalf("with prefetch DataFetch=%g cold=%v, want a fully warm serve", warm.DataFetch, warm.Cold)
	}
	if stOn.DataPrefetches == 0 {
		t.Fatal("prefetch staged no partitions")
	}
	if warm.Latency >= cold.Latency {
		t.Fatalf("warm latency %g !< cold latency %g", warm.Latency, cold.Latency)
	}
}

// TestRegionDataStoreBounded: the byte bound evicts oldest-first and the
// eviction counter moves (region-tier mirror of the fleet store test).
func TestRegionDataStoreBounded(t *testing.T) {
	f := newTestFed(t, platform.NewRegistry(), Config{Regions: 1,
		DatasetStoreBytes: 2 << 20})
	defer f.Shutdown()
	refs := dataset.Partitioned("pts", 3<<20, 3)
	if err := f.PlaceDataset(0, 0, refs...); err != nil {
		t.Fatal(err)
	}
	if f.DatasetResident(0, refs[0]) {
		t.Fatal("oldest partition survived a full store")
	}
	if !f.DatasetResident(0, refs[1]) || !f.DatasetResident(0, refs[2]) {
		t.Fatal("newest partitions missing")
	}
	if st := f.Stats().Regions[0]; st.DataEvictions != 1 || st.DataPublished != 3 {
		t.Fatalf("DataEvictions=%d DataPublished=%d, want 1/3", st.DataEvictions, st.DataPublished)
	}
}
