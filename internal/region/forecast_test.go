package region

import (
	"math"
	"testing"
)

func TestForecasterDefaultsAndRolls(t *testing.T) {
	f := NewForecaster(0, 0, 0)
	if f.Window() != 0.25 {
		t.Fatalf("default window = %g, want 0.25", f.Window())
	}
	f = NewForecaster(1, 0.5, 4)
	f.Observe("a", 0.1)
	f.Observe("a", 0.2)
	if got := f.Predict("a"); got != 0 {
		t.Fatalf("prediction before any closed window = %g, want 0", got)
	}
	// Rolling past t=1 closes window 0 with count 2: EWMA = 0.5*2 = 1.
	f.RollTo(1.5)
	if got := f.Predict("a"); got != 1 {
		t.Fatalf("EWMA after one window of 2 = %g, want 1", got)
	}
	// Two empty windows decay it: absence is signal.
	f.RollTo(3.5)
	if got := f.Predict("a"); got != 0.25 {
		t.Fatalf("EWMA after two empty windows = %g, want 0.25", got)
	}
	if apps := f.Apps(); len(apps) != 1 || apps[0] != "a" {
		t.Fatalf("Apps = %v, want [a]", apps)
	}
	if got := f.Predict("never-seen"); got != 0 {
		t.Fatalf("prediction for unseen app = %g, want 0", got)
	}
}

// TestForecasterPredictsPeriodicReturn is the case EWMA cannot handle:
// a traffic wave visiting the region every 4 windows. During the silent
// windows the EWMA decays toward zero, but the KRR autoregression — fed
// lag windows covering a full period — sees the wave coming back.
func TestForecasterPredictsPeriodicReturn(t *testing.T) {
	f := NewForecaster(1, 0.5, 4)
	// 10 periods of [4, 0, 0, 0]: bursts of 4 arrivals at t = 4k.
	for k := 0; k < 10; k++ {
		base := float64(4 * k)
		for j := 0; j < 4; j++ {
			f.Observe("wave", base+0.1)
		}
	}
	// Close everything through t=40: history ends [..., 4, 0, 0, 0] — the
	// next window is a burst window.
	f.RollTo(40)
	ewma := 0.0
	for i := 0; i < len(f.hist["wave"]); i++ {
		c := f.hist["wave"][i]
		ewma = 0.5*c + 0.5*ewma
	}
	if ewma >= 1 {
		t.Fatalf("EWMA baseline %g should have decayed below 1 during the silent windows", ewma)
	}
	pred := f.Predict("wave")
	if pred < 2 {
		t.Fatalf("periodic-return prediction = %g, want the KRR to see the burst coming (>= 2)", pred)
	}
	// One window into the silence the same machinery must NOT fire: the
	// lag features [0, 0, 0, 4] map to a quiet window.
	f.RollTo(41)
	if quiet := f.Predict("wave"); quiet >= pred/2 {
		t.Fatalf("post-burst prediction %g not clearly below return prediction %g", quiet, pred)
	}
}

func TestForecasterPredictionNeverNegative(t *testing.T) {
	f := NewForecaster(1, 0.5, 2)
	for i := 0; i < 12; i++ {
		if i%2 == 0 {
			f.Observe("x", float64(i)+0.5)
		} else {
			f.RollTo(float64(i + 1))
		}
	}
	f.RollTo(20)
	if got := f.Predict("x"); got < 0 || math.IsNaN(got) {
		t.Fatalf("prediction = %g, want clamped >= 0 and finite", got)
	}
}
