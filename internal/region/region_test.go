package region

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"everest/internal/fleet"
	"everest/internal/hls"
	"everest/internal/platform"
	"everest/internal/runtime"
)

// testBitstream returns a small deployable artifact that fits every
// catalog device (fleet test fixture shape).
func testBitstream(id string) platform.Bitstream {
	return platform.Bitstream{
		ID: id, Kernel: "k-" + id, Target: "alveo-u55c",
		Report: hls.Report{
			LatencyCycle: 1 << 16, II: 1, IterLatency: 8,
			Resources: hls.Resources{LUT: 20000, FF: 24000, DSP: 32, BRAM: 16},
			ClockMHz:  300,
		},
		Config: platform.SystemConfig{
			Replicas: 2, BusWidthBits: 512, Lanes: 4, PackedElements: 8,
			DoubleBuffered: true, PLMBytes: 1 << 16,
		},
		ElemBits: 32,
	}
}

// fpgaWorkflow is a two-task workflow whose compute stage requests the
// given bitstream.
func fpgaWorkflow(bsID string) *runtime.Workflow {
	w := runtime.NewWorkflow()
	if err := w.Submit(runtime.TaskSpec{Name: "prep", Flops: 1e9, OutputBytes: 1 << 20}); err != nil {
		panic(err)
	}
	if err := w.Submit(runtime.TaskSpec{
		Name: "compute", Deps: []string{"prep"},
		Flops: 2e10, InputBytes: 1 << 20, OutputBytes: 1 << 18,
		NeedsFPGA: true, BitstreamID: bsID,
	}); err != nil {
		panic(err)
	}
	return w
}

// cpuWorkflow is a single pure-software task.
func cpuWorkflow() *runtime.Workflow {
	w := runtime.NewWorkflow()
	if err := w.Submit(runtime.TaskSpec{Name: "only", Flops: 5e9, OutputBytes: 1 << 18}); err != nil {
		panic(err)
	}
	return w
}

// heavyWorkflow backs a single site up for a long stretch of modelled
// time (routing tests use it to make the home queue expensive).
func heavyWorkflow() *runtime.Workflow {
	w := runtime.NewWorkflow()
	if err := w.Submit(runtime.TaskSpec{Name: "only", Flops: 5e13, OutputBytes: 1 << 18}); err != nil {
		panic(err)
	}
	return w
}

func testClusters(nodes int) func(int, int) *platform.Cluster {
	return func(region, site int) *platform.Cluster {
		var ns []*platform.Node
		for i := 0; i < nodes; i++ {
			ns = append(ns, platform.NewNode(fmt.Sprintf("node%02d", i),
				platform.XeonModel(), platform.AlveoU55C()))
		}
		return platform.NewCluster(ns...)
	}
}

func newTestFed(t *testing.T, catalog *platform.Registry, cfg Config) *Federation {
	t.Helper()
	if cfg.Regions == 0 {
		cfg.Regions = 2
	}
	if cfg.SitesPerRegion == 0 {
		cfg.SitesPerRegion = 1
	}
	if cfg.NewCluster == nil {
		cfg.NewCluster = testClusters(1)
	}
	f, err := New(catalog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewValidates(t *testing.T) {
	cat := platform.NewRegistry()
	cases := []struct {
		name string
		cat  *platform.Registry
		cfg  Config
	}{
		{"nil catalog", nil, Config{Regions: 1, SitesPerRegion: 1, NewCluster: testClusters(1)}},
		{"zero regions", cat, Config{SitesPerRegion: 1, NewCluster: testClusters(1)}},
		{"zero sites", cat, Config{Regions: 1, NewCluster: testClusters(1)}},
		{"nil cluster builder", cat, Config{Regions: 1, SitesPerRegion: 1}},
		{"initial sites beyond fleet", cat, Config{Regions: 1, SitesPerRegion: 1,
			InitialSitesPerRegion: 2, NewCluster: testClusters(1)}},
		{"partition out of range", cat, Config{Regions: 1, SitesPerRegion: 1, NewCluster: testClusters(1),
			Partitions: []Partition{{Region: 3, From: 0, Until: 1}}}},
		{"partition empty interval", cat, Config{Regions: 1, SitesPerRegion: 1, NewCluster: testClusters(1),
			Partitions: []Partition{{Region: 0, From: 2, Until: 2}}}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cat, tc.cfg); err == nil {
			t.Errorf("%s: New succeeded, want error", tc.name)
		}
	}
}

func TestSubmitValidates(t *testing.T) {
	cat := platform.NewRegistry()
	f := newTestFed(t, cat, Config{Regions: 1})
	defer f.Shutdown()
	if _, err := f.SubmitAt(Request{Home: 0, Arrival: 0}); err == nil {
		t.Error("nil workflow accepted")
	}
	if _, err := f.SubmitAt(Request{Workflow: cpuWorkflow(), Home: 7, Arrival: 0}); err == nil {
		t.Error("out-of-range home accepted")
	}
	if _, err := f.SubmitAt(Request{Workflow: cpuWorkflow(), Class: Guaranteed, Arrival: 0}); err == nil {
		t.Error("guaranteed without deadline accepted")
	}
	if _, err := f.SubmitAt(Request{Workflow: cpuWorkflow(), Arrival: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.SubmitAt(Request{Workflow: cpuWorkflow(), Arrival: 1}); err == nil {
		t.Error("arrival before the frontier accepted")
	}
}

func TestInteractiveServedAtHomePaysWANOnce(t *testing.T) {
	cat := platform.NewRegistry()
	cat.Put(testBitstream("bs-a"))
	f := newTestFed(t, cat, Config{Regions: 1, CacheSlots: 1})
	defer f.Shutdown()

	h, err := f.SubmitAt(Request{App: "a", Workflow: fpgaWorkflow("bs-a"),
		Class: Interactive, Arrival: 0})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Region != "region00" || res.Handoff != 0 {
		t.Fatalf("served at %s with handoff %g, want home region00 / 0", res.Region, res.Handoff)
	}
	if res.Fetch <= 0 || res.Deploy <= 0 || !res.Cold {
		t.Fatalf("first serve fetch=%g deploy=%g cold=%v, want a fully cold serve", res.Fetch, res.Deploy, res.Cold)
	}
	if ids := f.Store(0).IDs(); len(ids) != 1 || ids[0] != "bs-a" {
		t.Fatalf("region store = %v, want [bs-a]", ids)
	}

	// Same app later: the artifact is in the region store and site cache.
	h, err = f.SubmitAt(Request{App: "a", Workflow: fpgaWorkflow("bs-a"),
		Class: Interactive, Arrival: res.Completion + 0.01})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Fetch != 0 || res2.Deploy != 0 || res2.Cold {
		t.Fatalf("second serve fetch=%g deploy=%g cold=%v, want warm", res2.Fetch, res2.Deploy, res2.Cold)
	}
	st := f.Shutdown()
	if st.WANFetches != 1 || st.ColdServes != 1 || st.Completed != 2 {
		t.Fatalf("WANFetches=%d ColdServes=%d Completed=%d, want 1/1/2", st.WANFetches, st.ColdServes, st.Completed)
	}
}

func TestHandoffWhenHomeIsBusy(t *testing.T) {
	cat := platform.NewRegistry()
	f := newTestFed(t, cat, Config{Regions: 2})
	defer f.Shutdown()

	// Back the home region's only site up far past the second arrival.
	h, err := f.SubmitAt(Request{App: "big", Workflow: heavyWorkflow(), Class: Interactive, Arrival: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := h.Wait(); err != nil || res.Completion < 1 {
		t.Fatalf("heavy workflow completion %g (%v), want a long run", res.Completion, err)
	}

	h, err = f.SubmitAt(Request{App: "small", Workflow: cpuWorkflow(), Class: Interactive,
		Arrival: 0.1, InputBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Region != "region01" {
		t.Fatalf("served at %s, want handoff to idle region01", res.Region)
	}
	if res.Handoff <= 0 {
		t.Fatalf("handoff stall %g, want the WAN payload transfer priced in", res.Handoff)
	}
	st := f.Shutdown()
	if st.Regions[1].Handoffs != 1 || st.Regions[0].HandedOff != 1 {
		t.Fatalf("Handoffs=%d HandedOff=%d, want 1/1", st.Regions[1].Handoffs, st.Regions[0].HandedOff)
	}
	if st.Handoffs != 1 {
		t.Fatalf("aggregate Handoffs = %d, want 1", st.Handoffs)
	}
}

func TestPartitionForcesLocalServing(t *testing.T) {
	cat := platform.NewRegistry()
	cat.Put(testBitstream("bs-a"))
	f := newTestFed(t, cat, Config{Regions: 2,
		Partitions: []Partition{{Region: 0, From: 0, Until: 1000}}})
	defer f.Shutdown()

	// Back home up: without the partition this arrival would hand off.
	h, err := f.SubmitAt(Request{App: "big", Workflow: heavyWorkflow(), Class: Interactive, Arrival: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	h, err = f.SubmitAt(Request{App: "a", Workflow: fpgaWorkflow("bs-a"), Class: Interactive, Arrival: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	// Cut off from both the other region and the catalog: served at home,
	// with the bitstream degraded to software instead of WAN-fetched.
	if res.Region != "region00" || res.Handoff != 0 {
		t.Fatalf("served at %s handoff=%g, want local region00", res.Region, res.Handoff)
	}
	if res.Fetch != 0 {
		t.Fatalf("fetch stall %g through a partition, want 0", res.Fetch)
	}
	if ids := f.Store(0).IDs(); len(ids) != 0 {
		t.Fatalf("partitioned store = %v, want empty", ids)
	}
	st := f.Shutdown()
	if st.Regions[0].PartitionSkips == 0 {
		t.Fatal("partitioned fetch must be counted in PartitionSkips")
	}
	if st.WANFetches != 0 {
		t.Fatalf("WANFetches = %d through a partition, want 0", st.WANFetches)
	}
}

func TestGuaranteedServedWithProvenBound(t *testing.T) {
	cat := platform.NewRegistry()
	f := newTestFed(t, cat, Config{Regions: 1})
	defer f.Shutdown()
	h, err := f.SubmitAt(Request{App: "g", Workflow: cpuWorkflow(), Class: Guaranteed,
		Deadline: 30, Arrival: 0})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Guaranteed || res.Bound <= 0 {
		t.Fatalf("guaranteed=%v bound=%g, want a proven bound", res.Guaranteed, res.Bound)
	}
	if res.Latency > res.Bound {
		t.Fatalf("latency %g exceeds proven bound %g", res.Latency, res.Bound)
	}
	st := f.Shutdown()
	if st.Guaranteed != 1 || st.BoundViolations != 0 {
		t.Fatalf("Guaranteed=%d BoundViolations=%d, want 1/0", st.Guaranteed, st.BoundViolations)
	}
}

func TestGuaranteedRejectedWhenUnprovable(t *testing.T) {
	cat := platform.NewRegistry()
	f := newTestFed(t, cat, Config{Regions: 1})
	defer f.Shutdown()
	_, err := f.SubmitAt(Request{App: "g", Workflow: cpuWorkflow(), Class: Guaranteed,
		Deadline: 1e-9, Arrival: 0})
	if err == nil {
		t.Fatal("impossible deadline admitted")
	}
	if !errors.Is(err, fleet.ErrSaturated) {
		t.Fatalf("rejection error = %v, want fleet.ErrSaturated", err)
	}
	st := f.Shutdown()
	if st.Rejected != 1 || st.Submitted != 0 {
		t.Fatalf("Rejected=%d Submitted=%d, want 1/0", st.Rejected, st.Submitted)
	}
}

func TestNoActiveRegionRejects(t *testing.T) {
	cat := platform.NewRegistry()
	f := newTestFed(t, cat, Config{Regions: 1})
	defer f.Shutdown()
	if err := f.Fleet(0).SetSiteActive(0, false, 0); err != nil {
		t.Fatal(err)
	}
	_, err := f.SubmitAt(Request{Workflow: cpuWorkflow(), Class: Interactive, Arrival: 0})
	if err == nil || !strings.Contains(err.Error(), "no region can serve") {
		t.Fatalf("submit with every site scaled out = %v, want a routing refusal", err)
	}
}

func TestBatchHeldBehindGuaranteedAndPreempted(t *testing.T) {
	cat := platform.NewRegistry()
	f := newTestFed(t, cat, Config{Regions: 1})
	defer f.Shutdown()

	// A guaranteed serve owns the near frontier.
	gh, err := f.SubmitAt(Request{App: "g", Workflow: cpuWorkflow(), Class: Guaranteed,
		Deadline: 30, Arrival: 0})
	if err != nil {
		t.Fatal(err)
	}
	gres, err := gh.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if gres.Completion <= 0.001 {
		t.Fatalf("guaranteed completion %g, want a frontier to hold batch behind", gres.Completion)
	}

	// Batch arriving inside the guaranteed window is parked, not served.
	bh, err := f.SubmitAt(Request{App: "b", Workflow: cpuWorkflow(), Class: Batch, Arrival: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-bh.Done():
		t.Fatal("batch resolved while held")
	default:
	}

	// A priority arrival lands exactly when the batch is due: the batch is
	// pushed past the priority completion plus the restart penalty.
	ih, err := f.SubmitAt(Request{App: "i", Workflow: cpuWorkflow(), Class: Interactive,
		Arrival: gres.Completion + 0.001})
	if err != nil {
		t.Fatal(err)
	}
	ires, err := ih.Wait()
	if err != nil {
		t.Fatal(err)
	}

	f.Drain(ires.Completion + 1)
	bres, err := bh.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if bres.Preemptions != 1 {
		t.Fatalf("batch preemptions = %d, want 1", bres.Preemptions)
	}
	if bres.Hold <= 0 {
		t.Fatalf("batch hold = %g, want time parked in the hold queue", bres.Hold)
	}
	if got := bres.Arrival + bres.Hold; got <= ires.Completion {
		t.Fatalf("batch released at %g, want after the interactive completion %g", got, ires.Completion)
	}
	st := f.Shutdown()
	if st.Regions[0].Holds != 1 || st.Preemptions != 1 {
		t.Fatalf("Holds=%d Preemptions=%d, want 1/1", st.Regions[0].Holds, st.Preemptions)
	}
	if st.BoundViolations != 0 {
		t.Fatalf("BoundViolations = %d, want 0", st.BoundViolations)
	}
}

func TestBatchServedInlineWhenNoFrontier(t *testing.T) {
	cat := platform.NewRegistry()
	f := newTestFed(t, cat, Config{Regions: 1})
	defer f.Shutdown()
	h, err := f.SubmitAt(Request{App: "b", Workflow: cpuWorkflow(), Class: Batch, Arrival: 0})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Hold != 0 || res.Class != Batch {
		t.Fatalf("idle-federation batch hold=%g class=%v, want immediate serve", res.Hold, res.Class)
	}
}

func TestPreemptAfterCompletionErrors(t *testing.T) {
	cat := platform.NewRegistry()
	f := newTestFed(t, cat, Config{Regions: 1})
	defer f.Shutdown()
	if err := f.Preempt(nil); err == nil {
		t.Error("nil handle preempt accepted")
	}
	h, err := f.SubmitAt(Request{Workflow: cpuWorkflow(), Class: Interactive, Arrival: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := f.Preempt(h); err == nil || !strings.Contains(err.Error(), "already completed") {
		t.Fatalf("preempting completed work = %v, want refusal", err)
	}
}

// TestPrefetchWarmsTheNextWave is the mechanism test for predictive
// prefetch: two apps churn a one-slot region store and one-slot site
// cache; after a window roll the forecaster re-stages the hotter app, so
// its next arrival is fully warm. The same arrival stream without
// prefetch leaves that arrival cold — the end-to-end contrast the bench
// gates at scale.
func TestPrefetchWarmsTheNextWave(t *testing.T) {
	run := func(prefetch bool) (Result, Stats) {
		cat := platform.NewRegistry()
		cat.Put(testBitstream("bs-a"))
		cat.Put(testBitstream("bs-b"))
		f := newTestFed(t, cat, Config{Regions: 1, CacheSlots: 1, StoreSlots: 1,
			Prefetch: prefetch, WindowSeconds: 1, WarmThreshold: 0.5})
		defer f.Shutdown()
		submit := func(app, bs string, at float64) Result {
			h, err := f.SubmitAt(Request{App: app, Workflow: fpgaWorkflow(bs),
				Class: Interactive, Arrival: at})
			if err != nil {
				t.Fatal(err)
			}
			res, err := h.Wait()
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		// Window 0: app a is the hot one (two arrivals); app b churns the
		// store and the cache behind it.
		submit("a", "bs-a", 0.10)
		submit("a", "bs-a", 0.20)
		submit("b", "bs-b", 0.50)
		// Past the roll at t=1: with prefetch on, the roll re-staged bs-a
		// (store fetch + cache warm) before this arrival.
		last := submit("a", "bs-a", 1.10)
		return last, f.Shutdown()
	}

	cold, stOff := run(false)
	if !cold.Cold || cold.Fetch <= 0 {
		t.Fatalf("without prefetch: cold=%v fetch=%g, want a cold re-fetch after churn", cold.Cold, cold.Fetch)
	}
	if stOff.PrefetchFetches != 0 || stOff.Warms != 0 {
		t.Fatalf("prefetch off but PrefetchFetches=%d Warms=%d", stOff.PrefetchFetches, stOff.Warms)
	}

	warm, stOn := run(true)
	if warm.Cold || warm.Fetch != 0 || warm.Deploy != 0 {
		t.Fatalf("with prefetch: cold=%v fetch=%g deploy=%g, want a fully warm serve", warm.Cold, warm.Fetch, warm.Deploy)
	}
	if stOn.PrefetchFetches == 0 || stOn.Warms == 0 {
		t.Fatalf("PrefetchFetches=%d Warms=%d, want the staging accounted", stOn.PrefetchFetches, stOn.Warms)
	}
	if warm.Latency >= cold.Latency {
		t.Fatalf("warm latency %g !< cold latency %g", warm.Latency, cold.Latency)
	}
}

func TestStoreLRUEviction(t *testing.T) {
	cat := platform.NewRegistry()
	cat.Put(testBitstream("bs-a"))
	cat.Put(testBitstream("bs-b"))
	f := newTestFed(t, cat, Config{Regions: 1, StoreSlots: 1})
	defer f.Shutdown()
	submit := func(bs string, at float64) Result {
		h, err := f.SubmitAt(Request{App: bs, Workflow: fpgaWorkflow(bs), Class: Interactive, Arrival: at})
		if err != nil {
			t.Fatal(err)
		}
		res, err := h.Wait()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	submit("bs-a", 0)
	submit("bs-b", 1)
	if ids := f.Store(0).IDs(); len(ids) != 1 || ids[0] != "bs-b" {
		t.Fatalf("store after churn = %v, want the LRU bs-a evicted", ids)
	}
	st := f.Shutdown()
	if st.Regions[0].StoreEvictions != 1 {
		t.Fatalf("StoreEvictions = %d, want 1", st.Regions[0].StoreEvictions)
	}
}

func TestAutoscaleJoinsAndLeaves(t *testing.T) {
	cat := platform.NewRegistry()
	f := newTestFed(t, cat, Config{Regions: 1, SitesPerRegion: 2, InitialSitesPerRegion: 1,
		Autoscale: true, ScaleUpWait: 0.1, ScaleDownIdleWindows: 2, SiteBootSeconds: 0.5,
		WindowSeconds: 0.25})
	defer f.Shutdown()
	submit := func(w *runtime.Workflow, at float64) Result {
		h, err := f.SubmitAt(Request{Workflow: w, Class: Interactive, Arrival: at})
		if err != nil {
			t.Fatal(err)
		}
		res, err := h.Wait()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := submit(heavyWorkflow(), 0)
	if res.Completion < 1 {
		t.Fatalf("heavy completion %g, want a queue worth scaling for", res.Completion)
	}
	// The next arrival drives window rolls past t=0.25: the roll sees the
	// backed-up queue and activates site 1 (with boot delay).
	submit(cpuWorkflow(), 0.3)
	st := f.Stats()
	if st.Regions[0].ScaleUps != 1 || st.Regions[0].ActiveSites != 2 {
		t.Fatalf("ScaleUps=%d ActiveSites=%d, want 1/2", st.Regions[0].ScaleUps, st.Regions[0].ActiveSites)
	}
	// Long idle stretch: rolls past the drain see zero wait and scale the
	// extra site back out after ScaleDownIdleWindows windows.
	submit(cpuWorkflow(), res.Completion+5)
	st = f.Shutdown()
	if st.Regions[0].ScaleDowns < 1 {
		t.Fatalf("ScaleDowns = %d, want the idle site released", st.Regions[0].ScaleDowns)
	}
	if st.Regions[0].ActiveSites != 1 {
		t.Fatalf("ActiveSites = %d after idle, want 1", st.Regions[0].ActiveSites)
	}
}

func TestAccessorsAndDoubleStart(t *testing.T) {
	cat := platform.NewRegistry()
	f := newTestFed(t, cat, Config{Regions: 2})
	defer f.Shutdown()
	if got := f.Regions(); got != 2 {
		t.Fatalf("Regions() = %d, want 2", got)
	}
	for r := 0; r < f.Regions(); r++ {
		if f.Fleet(r) == nil || f.Store(r) == nil {
			t.Fatalf("region %d: nil Fleet or Store accessor", r)
		}
	}
	if err := f.Start(); err == nil || !strings.Contains(err.Error(), "already started") {
		t.Fatalf("second Start = %v, want already-started error", err)
	}
}

// TestRouteCandOrdering pins the router's deterministic tie-breaks:
// cheapest first, then the home region, then index order.
func TestRouteCandOrdering(t *testing.T) {
	const home = 1
	cases := []struct {
		name string
		a, b routeCand
		want bool
	}{
		{"cheaper wins", routeCand{idx: 2, cost: 1}, routeCand{idx: 0, cost: 2}, true},
		{"pricier loses", routeCand{idx: 0, cost: 2}, routeCand{idx: 2, cost: 1}, false},
		{"home breaks cost tie", routeCand{idx: home, cost: 1}, routeCand{idx: 0, cost: 1}, true},
		{"non-home loses tie", routeCand{idx: 0, cost: 1}, routeCand{idx: home, cost: 1}, false},
		{"index breaks non-home tie", routeCand{idx: 0, cost: 1}, routeCand{idx: 2, cost: 1}, true},
	}
	for _, tc := range cases {
		if got := tc.a.less(tc.b, home); got != tc.want {
			t.Errorf("%s: less = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestTraceEmitsRegionEvents exercises the trace fan-out in the region
// package itself (the sdk determinism harness hashes it end to end).
func TestTraceEmitsRegionEvents(t *testing.T) {
	cat := platform.NewRegistry()
	var events []EventKind
	f := newTestFed(t, cat, Config{Regions: 2, Trace: func(ev Event) {
		events = append(events, ev.Kind)
	}})
	h, err := f.SubmitAt(Request{Workflow: cpuWorkflow(), Class: Interactive, Arrival: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	f.Shutdown()
	seen := map[EventKind]bool{}
	for _, k := range events {
		seen[k] = true
	}
	if !seen[EventRoute] || !seen[EventDone] {
		t.Fatalf("trace missing route/done events: %v", events)
	}
}

func TestEventKindAndClassStrings(t *testing.T) {
	kinds := []EventKind{EventRoute, EventHandoff, EventFetch, EventPrefetch, EventHold,
		EventRelease, EventPreempt, EventScaleUp, EventScaleDown, EventEvictStore,
		EventReject, EventDone, EventKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("EventKind(%d).String() empty", int(k))
		}
	}
	for _, c := range []Class{Batch, Interactive, Guaranteed, Class(9)} {
		if c.String() == "" {
			t.Errorf("Class(%d).String() empty", int(c))
		}
	}
}
