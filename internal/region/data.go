package region

import (
	"fmt"

	"everest/internal/dataset"
	"everest/internal/fleet"
	"everest/internal/runtime"
)

// This file generalizes the region artifact store to data: each region
// caches published dataset partitions next to its bitstream images
// (region.dstore), WAN-fetches the ones it is missing from the
// federation, and prefetches them ahead of forecast demand exactly like
// bitstreams. The federation keeps a dataset catalog (dataCat) mirroring
// the bitstream catalog: only partitions placed or published somewhere
// are priced and fetched — an unknown ref is outside source data that
// costs the same everywhere and drops out of the routing argmin.
//
// The tiering composes without double-charging: a WAN fetch lands a
// partition in the *region* store only, so the regional fleet (which
// prices its own site-local stores against its own catalog) never
// re-bills the same transfer; a partition published inside a region
// reaches both that fleet's site store (fleet publishOutputs) and the
// region store (publishData), so a later serve pays neither fabric.

// PlaceDataset seeds partitions into region r's store at modelled time
// at — the ingest step a federation scenario runs before serving. The
// partitions become known federation-wide, so routing prices their
// locality from then on. Placement is free (ingest plane, not WAN).
func (f *Federation) PlaceDataset(r int, at float64, refs ...dataset.Ref) error {
	if r < 0 || r >= len(f.regions) {
		return fmt.Errorf("region: region %d outside [0, %d)", r, len(f.regions))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	reg := f.regions[r]
	for _, ref := range refs {
		evicted := reg.dstore.Publish(dataset.Version{
			Ref: ref, Time: at, Workflow: "(placed)", Task: "(placed)",
		})
		reg.stats.DataPublished++
		reg.stats.DataEvictions += len(evicted)
		f.dataCat[ref.Key()] = ref
	}
	return nil
}

// DatasetResident reports whether region r's store currently holds the
// partition (tests and scenario assertions; no LRU perturbation).
func (f *Federation) DatasetResident(r int, ref dataset.Ref) bool {
	if r < 0 || r >= len(f.regions) {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.regions[r].dstore.Holds(ref)
}

// knownReads filters a workflow's external reads down to partitions the
// federation catalog knows. Callers hold f.mu.
func (f *Federation) knownReads(reads []dataset.Ref) []dataset.Ref {
	var out []dataset.Ref
	for _, r := range reads {
		if _, ok := f.dataCat[r.Key()]; ok {
			out = append(out, r)
		}
	}
	return out
}

// dataEstimate prices the WAN staging a serve at region r would pay for
// the known reads it is missing — the data-locality term of the
// top-level routing cost, symmetric with fetchEstimate for bitstreams.
// Each partition is charged exactly once: the WAN transfer when it is
// reachable, the fallback penalty when the region is partitioned off.
func (f *Federation) dataEstimate(r *region, known []dataset.Ref, at float64) float64 {
	total := 0.0
	for _, ref := range known {
		if r.dstore.Holds(ref) {
			continue
		}
		if f.partitioned(r.idx, at) {
			total += f.cfg.FallbackSeconds
			continue
		}
		total += f.wan.SendSeconds(ref.Bytes)
	}
	return total
}

// ensureData stages every known read region r's store is missing,
// WAN-fetching serially, and returns the total modelled stall. A
// partitioned region skips the fetch (the serve proceeds on what it
// holds, the modelled behaviour of a region cut off from the
// federation). With prefetch set the fetch is control-plane traffic:
// accounted, but off any workflow's critical path.
func (f *Federation) ensureData(r *region, known []dataset.Ref, at float64, prefetch bool) float64 {
	total := 0.0
	for _, ref := range known {
		if r.dstore.Contains(ref) {
			continue
		}
		if f.partitioned(r.idx, at+total) {
			r.stats.PartitionSkips++
			continue
		}
		dt := f.wan.SendSeconds(ref.Bytes)
		evicted := r.dstore.Publish(dataset.Version{
			Ref: ref, Time: at + total, Workflow: "(fetch)", Task: "(fetch)",
		})
		r.stats.DataEvictions += len(evicted)
		kind := EventDataFetch
		if prefetch {
			kind = EventDataPrefetch
			r.stats.DataPrefetches++
		} else {
			r.stats.DataFetches++
			r.stats.DataFetchSeconds += dt
			r.stats.DataFetchedBytes += ref.Bytes
			total += dt
		}
		f.trace(Event{Kind: kind, Region: r.name, Time: at + total,
			Detail: fmt.Sprintf("%v %dB wan=%.4gs", ref.Key(), ref.Bytes, dt)})
	}
	return total
}

// publishData admits a completed workflow's output partitions into the
// serving region's store and the federation catalog — the cross-region
// sharing step, free like every publish (the data was produced here).
// Callers hold f.mu.
func (f *Federation) publishData(r *region, w *runtime.Workflow, name string, completion float64) {
	w.Range(func(t *runtime.TaskSpec) bool {
		for _, ref := range t.Writes {
			evicted := r.dstore.Publish(dataset.Version{
				Ref: ref, Time: completion, Workflow: name, Task: t.Name,
			})
			r.stats.DataPublished++
			r.stats.DataEvictions += len(evicted)
			f.dataCat[ref.Key()] = ref
		}
		return true
	})
}

// learnAppReads remembers an app's external reads at first serve, the
// dataset counterpart of appNeeds — what prefetch stages ahead of
// forecast demand. Callers hold f.mu.
func (f *Federation) learnAppReads(app string, w *runtime.Workflow) {
	if app == "" {
		return
	}
	if _, ok := f.appReads[app]; ok {
		return
	}
	f.appReads[app] = fleet.DatasetReads(w)
}
