// Forecaster: the per-region demand model behind predictive bitstream
// prefetch. Arrivals are bucketed into fixed windows per app; at every
// window roll the region predicts the next window's demand and warms the
// bitstream caches of apps about to get traffic. Two predictors run side
// by side — an EWMA that tracks sustained demand, and the registry's own
// KRR machinery (internal/energy, the regressor the energy app serves)
// fitted autoregressively over the window history, which is what can see
// a periodic traffic wave *returning* to a region whose recent windows
// are all zero. The forecast is the union (max) of the two: EWMA catches
// ramps the moment they start, KRR catches revisits before they start,
// and a false positive only costs prefetch bandwidth off the critical
// path.
package region

import (
	"math"

	"everest/internal/energy"
	"everest/internal/tensor"
)

// Forecaster buckets per-app arrivals into fixed modelled-time windows
// and predicts the next window's count per app. It is driven entirely by
// modelled time from a single goroutine (the federation's serving path),
// so it needs no locking, and every prediction is deterministic.
type Forecaster struct {
	window  float64 // window length, modelled seconds
	alpha   float64 // EWMA smoothing factor
	lag     int     // autoregressive features: the last lag window counts
	minFit  int     // closed windows per app before the KRR engages
	maxHist int     // history cap (bounds fit cost)

	cur    int64 // current open window index
	counts map[string]float64
	hist   map[string][]float64
	ewma   map[string]float64
	apps   []string // first-observed order: deterministic iteration
}

// NewForecaster returns a forecaster over windows of the given modelled
// length. alpha is the EWMA smoothing factor; lag is the autoregressive
// feature depth of the KRR (it must cover a full period of any traffic
// pattern the forecaster should anticipate).
func NewForecaster(window, alpha float64, lag int) *Forecaster {
	if window <= 0 {
		window = 0.25
	}
	if alpha <= 0 || alpha > 1 {
		alpha = 0.5
	}
	if lag < 2 {
		lag = 16
	}
	return &Forecaster{
		window: window, alpha: alpha, lag: lag,
		minFit: lag + 4, maxHist: 8 * lag,
		counts: make(map[string]float64),
		hist:   make(map[string][]float64),
		ewma:   make(map[string]float64),
	}
}

// Window returns the window length in modelled seconds.
func (f *Forecaster) Window() float64 { return f.window }

// Apps returns the observed apps in first-seen order.
func (f *Forecaster) Apps() []string { return f.apps }

// Observe records one arrival of app at modelled time t, closing any
// windows t has moved past.
func (f *Forecaster) Observe(app string, t float64) {
	f.RollTo(t)
	if _, ok := f.counts[app]; !ok {
		f.apps = append(f.apps, app)
		f.hist[app] = nil
		f.ewma[app] = 0
	}
	f.counts[app]++
}

// RollTo closes every window that ends at or before modelled time t,
// appending counts (zeros for empty windows — absence is signal) and
// updating the EWMAs.
func (f *Forecaster) RollTo(t float64) {
	idx := int64(math.Floor(t / f.window))
	for f.cur < idx {
		for _, app := range f.apps {
			c := f.counts[app]
			f.hist[app] = append(f.hist[app], c)
			if len(f.hist[app]) > f.maxHist {
				f.hist[app] = f.hist[app][len(f.hist[app])-f.maxHist:]
			}
			f.ewma[app] = f.alpha*c + (1-f.alpha)*f.ewma[app]
			f.counts[app] = 0
		}
		f.cur++
	}
}

// Predict returns the expected arrivals of app in the next window: the
// max of the EWMA baseline and, once enough history exists, the KRR
// autoregression. Falls back to the EWMA whenever the fit or prediction
// fails, and never returns a negative demand.
func (f *Forecaster) Predict(app string) float64 {
	base := f.ewma[app]
	hist := f.hist[app]
	if len(hist) >= f.minFit {
		if krr, err := f.fitPredict(hist); err == nil && krr > base {
			base = krr
		}
	}
	if base < 0 {
		return 0
	}
	return base
}

// fitPredict fits a KRR on lagged window counts and predicts the next
// window from the most recent lag counts.
func (f *Forecaster) fitPredict(hist []float64) (float64, error) {
	n := len(hist) - f.lag
	x := tensor.New(n, f.lag)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < f.lag; j++ {
			x.Set(hist[i+j], i, j)
		}
		y[i] = hist[i+f.lag]
	}
	k := energy.DefaultKRR()
	if err := k.Fit(x, y); err != nil {
		return 0, err
	}
	feat := make([]float64, f.lag)
	copy(feat, hist[len(hist)-f.lag:])
	return k.Predict(feat)
}
