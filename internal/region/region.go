// Package region is the fleet-of-fleets tier of the EVEREST runtime: a
// hierarchical federation where each region is a complete fleet (its own
// sites, its own bitstream registry, its own Eth100G deployment fabric)
// and regions are joined by a much slower WAN. The paper frames EVEREST
// as orchestrating big-data pipelines across heterogeneous
// *infrastructures*, not just nodes (§II, §VI); this package adds that
// top level:
//
//   - a top-level router that prices serving a workflow away from its
//     home region (WAN payload transfer + missing-artifact fetches +
//     remote queue wait) against waiting out the home queue;
//   - two-level bitstream distribution: a federation-wide catalog holds
//     every artifact, each region keeps a bounded store fetched over the
//     WAN on demand, and each site caches deployments as before — so a
//     cold serve can stack WAN fetch + registry transfer + reconfig;
//   - tenant SLO classes (guaranteed > interactive > batch): guaranteed
//     work rides the fleet's proven-bound admission, interactive work is
//     served on arrival, and batch work is parked in a modelled-time
//     hold queue that priority arrivals preempt (push back, with a
//     restart penalty) — so batch absorbs slack without ever standing in
//     front of the classes above it;
//   - per-region autoscaling: sites join (after a boot delay) when the
//     queue wait crosses a threshold and leave after idle windows;
//   - predictive bitstream prefetch (see Forecaster): at every window
//     roll a region forecasts next-window demand per app and stages the
//     app's bitstreams — WAN fetch into the region store, cache warm
//     into the least-busy site — before the traffic arrives.
//
// Time discipline matches the fleet tier: everything is modelled
// seconds, arrivals must be submitted in non-decreasing order, and the
// single-driver submit protocol makes every number — including the trace
// stream — deterministic across GOMAXPROCS.
package region

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"everest/internal/dataset"
	"everest/internal/fleet"
	"everest/internal/netsim"
	"everest/internal/platform"
	"everest/internal/runtime"
)

// Class is a tenant SLO class.
type Class int

// SLO classes, weakest first.
const (
	// Batch is deferrable best-effort work: it may be held and preempted.
	Batch Class = iota
	// Interactive is served on arrival, best effort.
	Interactive
	// Guaranteed rides the fleet's proven-bound admission class.
	Guaranteed
)

func (c Class) String() string {
	switch c {
	case Batch:
		return "batch"
	case Interactive:
		return "interactive"
	case Guaranteed:
		return "guaranteed"
	}
	return "unknown"
}

// EventKind classifies region trace events.
type EventKind int

// Region trace event kinds.
const (
	// EventRoute fires when the top-level router picks a serving region.
	EventRoute EventKind = iota
	// EventHandoff fires when a workflow is served away from its home.
	EventHandoff
	// EventFetch fires when a missing artifact is WAN-fetched on the
	// serving path (the workflow pays the stall).
	EventFetch
	// EventPrefetch fires when the forecaster WAN-fetches an artifact
	// ahead of demand (off the critical path).
	EventPrefetch
	// EventHold fires when batch work is parked in the hold queue.
	EventHold
	// EventRelease fires when held batch work is finally served.
	EventRelease
	// EventPreempt fires when a priority arrival pushes held batch back.
	EventPreempt
	// EventScaleUp fires when autoscaling activates a site.
	EventScaleUp
	// EventScaleDown fires when autoscaling deactivates a site.
	EventScaleDown
	// EventEvictStore fires when a bounded region store drops an artifact.
	EventEvictStore
	// EventDataFetch fires when a missing dataset partition is WAN-staged
	// on the serving path (the workflow pays the stall).
	EventDataFetch
	// EventDataPrefetch fires when the forecaster WAN-stages a partition
	// ahead of demand (off the critical path).
	EventDataPrefetch
	// EventReject fires when no region can serve (or prove) a request.
	EventReject
	// EventDone fires when a workflow's region-level completion is known.
	EventDone
)

func (k EventKind) String() string {
	switch k {
	case EventRoute:
		return "route"
	case EventHandoff:
		return "handoff"
	case EventFetch:
		return "fetch"
	case EventPrefetch:
		return "prefetch"
	case EventHold:
		return "hold"
	case EventRelease:
		return "release"
	case EventPreempt:
		return "preempt"
	case EventScaleUp:
		return "scale-up"
	case EventScaleDown:
		return "scale-down"
	case EventEvictStore:
		return "evict-store"
	case EventDataFetch:
		return "data-fetch"
	case EventDataPrefetch:
		return "data-prefetch"
	case EventReject:
		return "reject"
	case EventDone:
		return "done"
	}
	return "unknown"
}

// Event is one region trace record, serialized by the federation.
type Event struct {
	Kind      EventKind
	Region    string
	Tenant    string
	Workflow  string
	App       string
	Bitstream string
	Time      float64 // modelled seconds
	Detail    string
}

// Partition makes one region unreachable over the WAN during [From,
// Until): no handoffs in or out, no artifact fetches. The region keeps
// serving its own traffic from whatever its store already holds.
type Partition struct {
	Region      int
	From, Until float64
}

// Config configures a Federation.
type Config struct {
	// Regions is the number of federated regions (>= 1).
	Regions int
	// SitesPerRegion is each region's fleet size (>= 1).
	SitesPerRegion int
	// InitialSitesPerRegion caps how many sites per region serve at
	// Start; autoscaling (or SetSiteActive) brings in the rest. 0 = all.
	InitialSitesPerRegion int
	// NewCluster builds region r, site s's cluster (required).
	NewCluster func(region, site int) *platform.Cluster
	// CacheSlots, PartialReconfig, Policy, Adaptive, SlowdownCap, Net and
	// RegistryNet configure each region's fleet (fleet.Config semantics).
	CacheSlots      int
	PartialReconfig bool
	Policy          runtime.Policy
	Adaptive        bool
	SlowdownCap     float64
	Net             *netsim.Stack
	RegistryNet     *netsim.Stack
	// WAN prices inter-region transfers: workflow handoff payloads and
	// catalog→region artifact fetches (default the wan10g metro fabric).
	WAN *netsim.Stack
	// HandoffPenalty is the flat routing bias added to non-home regions
	// on top of the modelled WAN transfer (default 10 ms) — the price of
	// leaving the tenant's data locality.
	HandoffPenalty float64
	// FallbackSeconds is the routing penalty per artifact a region cannot
	// obtain (partitioned WAN, missing from the catalog): the cost of
	// degrading that work to software (default 250 ms).
	FallbackSeconds float64
	// StoreSlots bounds each region's artifact store; filling it evicts
	// the least-recently-used bitstream (the catalog keeps the
	// authoritative copy, so eviction means a future WAN refetch).
	// 0 = unbounded.
	StoreSlots int
	// DatasetStoreBytes bounds the dataset half of each region's artifact
	// store — published partitions cached next to the bitstream images,
	// WAN-fetched on demand and eligible for prefetch like any other
	// artifact. 0 = the 1 GiB default; negative = unbounded. Each region's
	// fleet sites keep their own (fleet.Config.DatasetStoreBytes) stores
	// below this one.
	DatasetStoreBytes int64
	// PreemptPenalty is the modelled restart cost a held batch workflow
	// pays every time a priority arrival pushes it back (default 50 ms).
	PreemptPenalty float64
	// Autoscale lets regions activate sites (after SiteBootSeconds) when
	// the queue wait at a window roll exceeds ScaleUpWait, and deactivate
	// one after ScaleDownIdleWindows consecutive idle rolls.
	Autoscale            bool
	ScaleUpWait          float64 // default 0.5
	ScaleDownIdleWindows int     // default 4
	SiteBootSeconds      float64 // default 2
	// Prefetch turns on the forecast-driven warming loop.
	Prefetch bool
	// WindowSeconds is the forecast window (default 0.25).
	WindowSeconds float64
	// WarmThreshold is the predicted next-window arrival count at which a
	// region stages an app's bitstreams (default 0.5).
	WarmThreshold float64
	// ForecastLag is the KRR autoregression depth in windows (default 16;
	// it must cover a full period of any pattern worth anticipating).
	ForecastLag int
	// Partitions scripts WAN reachability faults.
	Partitions []Partition
	// Trace, when set, receives every region event (serialized).
	Trace func(Event)
	// FleetTrace, when set, receives every regional fleet's events tagged
	// with the region name, serialized with the region's own events.
	FleetTrace func(region string, ev fleet.Event)
	// EngineTrace, when set, receives every site engine's events tagged
	// with region and site, serialized likewise.
	EngineTrace func(region, site string, ev runtime.Event)
}

// Request is one workflow submission to the federation.
type Request struct {
	Tenant string
	Name   string
	// App labels the workflow for the demand forecaster; workflows of the
	// same app share bitstreams, and prefetch warms per app.
	App      string
	Workflow *runtime.Workflow
	// Home is the gateway region the request arrived at (its demand is
	// observed there; serving elsewhere pays the WAN handoff).
	Home int
	// Arrival is the modelled submission time. Arrivals must be submitted
	// in non-decreasing order — the federation is a modelled-time event
	// loop, and prefetch, autoscaling, and hold releases all fire between
	// arrivals.
	Arrival float64
	// Class is the SLO class; Guaranteed requires a Deadline (relative
	// latency bound in modelled seconds, fleet semantics).
	Class    Class
	Deadline float64
	// InputBytes is the payload that must cross the WAN if the workflow
	// is served away from its home region.
	InputBytes int64
}

// Result is the region-level outcome of one workflow.
type Result struct {
	Region string
	Site   string
	Class  Class

	Arrival   float64
	Handoff   float64 // WAN payload transfer stall (served away from home)
	Fetch     float64 // WAN artifact fetch stall on the serving path
	DataFetch float64 // WAN dataset staging stall on the serving path
	Hold      float64 // modelled time parked in the batch hold queue
	Wait      float64 // fleet queue delay
	Deploy    float64 // bitstream deployment stall
	Service   float64 // engine-measured service time

	Completion float64
	Latency    float64 // Completion - Arrival, all stalls included

	// Cold marks a serve that paid distribution costs (WAN fetch or site
	// deploy) on its critical path — the metric prefetch attacks.
	Cold bool

	// Guaranteed-class fields: the proven bound relative to Arrival.
	Guaranteed bool
	Bound      float64

	// Preemptions counts how many times this workflow was pushed back
	// while held (batch only).
	Preemptions int
}

// Handle is the caller's handle on one submitted workflow. Interactive
// and guaranteed work completes during SubmitAt; batch work may stay
// held until later arrivals (or Drain) release it, so Wait on a batch
// handle only after Drain or Shutdown.
type Handle struct {
	done chan struct{}
	res  Result
	err  error
	held *held // non-nil while parked in the hold queue
}

// Wait blocks until the workflow completes and returns its result.
func (h *Handle) Wait() (Result, error) {
	<-h.done
	return h.res, h.err
}

// Done returns a channel closed when the workflow has completed.
func (h *Handle) Done() <-chan struct{} { return h.done }

// held is one deferred batch workflow.
type held struct {
	h       *Handle
	req     Request
	release float64
	seq     int // FIFO tie-break
	pushes  int // preemption count
}

// RegionStats snapshots one region.
type RegionStats struct {
	Name   string
	Served int
	Failed int

	Guaranteed  int
	Interactive int
	Batch       int

	Handoffs  int // served here for another region's gateway
	HandedOff int // gateway arrivals this region shipped elsewhere

	ColdServes  int
	Preemptions int
	Holds       int

	WANFetches      int
	WANFetchSeconds float64
	PrefetchFetches int
	PrefetchSeconds float64
	Warms           int
	StoreEvictions  int
	PartitionSkips  int

	DataFetches      int     // dataset partitions WAN-staged on serve paths
	DataFetchSeconds float64 // modelled stall those fetches cost
	DataFetchedBytes int64   // dataset bytes shipped over the WAN
	DataPrefetches   int     // partitions staged ahead of demand
	DataPublished    int     // partitions published into the region store
	DataEvictions    int     // partitions the byte bound evicted

	ScaleUps    int
	ScaleDowns  int
	ActiveSites int

	Fleet fleet.Stats
}

// Stats aggregates the federation.
type Stats struct {
	Submitted int
	Completed int
	Failed    int
	Rejected  int

	ColdServes      int
	Preemptions     int
	Handoffs        int
	WANFetches      int
	PrefetchFetches int
	Warms           int
	DataFetches     int
	DataPrefetches  int

	Guaranteed      int
	BoundViolations int

	Makespan float64
	Regions  []RegionStats
}

// region is one member fleet plus its region-level serving state.
type region struct {
	idx  int
	name string
	reg  *platform.Registry // region artifact store (the fleet deploys from it)
	fl   *fleet.Fleet
	fc   *Forecaster

	held        []*held
	gFrontier   float64 // latest guaranteed completion (batch holds behind it)
	nextRoll    float64
	active      int // sites currently activated by the region
	idleWindows int

	storeSeq int64
	storeUse map[string]int64 // artifact id -> last-use seq (LRU)

	// dstore is the dataset half of the region artifact store: published
	// partitions cached next to the bitstream images, WAN-fetched from the
	// federation on demand and prefetch-eligible. Guarded by the
	// federation mutex like the rest of the region state.
	dstore *dataset.Store

	stats RegionStats
}

// Federation is the top-level router over regional fleets.
type Federation struct {
	cfg     Config
	catalog *platform.Registry
	wan     netsim.Stack
	regions []*region

	traceMu sync.Mutex

	mu        sync.Mutex
	started   bool
	closed    bool
	frontier  float64 // latest processed modelled time
	submitted int
	rejected  int
	heldSeq   int

	appNeeds map[string][]string // app -> bitstream IDs (learned at first serve)
	appOrder []string

	// dataCat is the federation dataset catalog: partitions placed or
	// published somewhere, keyed for the locality/fetch pricing that
	// mirrors the bitstream catalog. Guarded by mu.
	dataCat map[dataset.Key]dataset.Ref
	// appReads remembers each app's external dataset reads (learned at
	// first serve, like appNeeds) so prefetch can stage data ahead of
	// demand alongside the app's bitstreams.
	appReads map[string][]dataset.Ref
}

// New builds a federation over a shared artifact catalog. Each region
// gets its own fleet on its own (initially empty) registry; artifacts
// reach a region by WAN fetch from the catalog — on demand, or ahead of
// demand when prefetch is on.
func New(catalog *platform.Registry, cfg Config) (*Federation, error) {
	if catalog == nil {
		return nil, fmt.Errorf("region: nil catalog")
	}
	if cfg.Regions < 1 {
		return nil, fmt.Errorf("region: need >= 1 region, got %d", cfg.Regions)
	}
	if cfg.SitesPerRegion < 1 {
		return nil, fmt.Errorf("region: need >= 1 site per region, got %d", cfg.SitesPerRegion)
	}
	if cfg.NewCluster == nil {
		return nil, fmt.Errorf("region: NewCluster builder is required")
	}
	if cfg.InitialSitesPerRegion < 0 || cfg.InitialSitesPerRegion > cfg.SitesPerRegion {
		return nil, fmt.Errorf("region: InitialSitesPerRegion %d outside [0, %d]",
			cfg.InitialSitesPerRegion, cfg.SitesPerRegion)
	}
	if cfg.WAN == nil {
		st := netsim.WAN10G()
		cfg.WAN = &st
	}
	if cfg.HandoffPenalty == 0 {
		cfg.HandoffPenalty = 0.010
	}
	if cfg.FallbackSeconds == 0 {
		cfg.FallbackSeconds = 0.250
	}
	if cfg.PreemptPenalty == 0 {
		cfg.PreemptPenalty = 0.050
	}
	if cfg.ScaleUpWait <= 0 {
		cfg.ScaleUpWait = 0.5
	}
	if cfg.ScaleDownIdleWindows <= 0 {
		cfg.ScaleDownIdleWindows = 4
	}
	if cfg.SiteBootSeconds <= 0 {
		cfg.SiteBootSeconds = 2
	}
	if cfg.WindowSeconds <= 0 {
		cfg.WindowSeconds = 0.25
	}
	if cfg.WarmThreshold <= 0 {
		cfg.WarmThreshold = 0.5
	}
	for _, p := range cfg.Partitions {
		if p.Region < 0 || p.Region >= cfg.Regions {
			return nil, fmt.Errorf("region: partition targets region %d outside [0, %d)", p.Region, cfg.Regions)
		}
		if p.Until <= p.From {
			return nil, fmt.Errorf("region: partition of region %d has empty interval [%g, %g)", p.Region, p.From, p.Until)
		}
	}
	switch {
	case cfg.DatasetStoreBytes == 0:
		cfg.DatasetStoreBytes = 1 << 30
	case cfg.DatasetStoreBytes < 0:
		cfg.DatasetStoreBytes = 0 // dataset.Store: 0 = unbounded
	}
	f := &Federation{cfg: cfg, catalog: catalog, wan: *cfg.WAN,
		appNeeds: make(map[string][]string),
		dataCat:  make(map[dataset.Key]dataset.Ref),
		appReads: make(map[string][]dataset.Ref)}
	for i := 0; i < cfg.Regions; i++ {
		i := i
		name := fmt.Sprintf("region%02d", i)
		reg := platform.NewRegistry()
		var ftrace func(fleet.Event)
		if cfg.FleetTrace != nil {
			ftrace = func(ev fleet.Event) { f.cfg.FleetTrace(name, ev) }
		}
		var etrace func(string, runtime.Event)
		if cfg.EngineTrace != nil {
			etrace = func(site string, ev runtime.Event) { f.cfg.EngineTrace(name, site, ev) }
		}
		fl, err := fleet.New(reg, fleet.Config{
			Sites:              cfg.SitesPerRegion,
			NewCluster:         func(site int) *platform.Cluster { return cfg.NewCluster(i, site) },
			CacheSlots:         cfg.CacheSlots,
			PartialReconfig:    cfg.PartialReconfig,
			Policy:             cfg.Policy,
			Adaptive:           cfg.Adaptive,
			SlowdownCap:        cfg.SlowdownCap,
			InitialActiveSites: cfg.InitialSitesPerRegion,
			Net:                cfg.Net,
			RegistryNet:        cfg.RegistryNet,
			Trace:              ftrace,
			EngineTrace:        etrace,
		})
		if err != nil {
			return nil, fmt.Errorf("region: %s: %w", name, err)
		}
		active := cfg.SitesPerRegion
		if cfg.InitialSitesPerRegion > 0 {
			active = cfg.InitialSitesPerRegion
		}
		f.regions = append(f.regions, &region{
			idx: i, name: name, reg: reg, fl: fl,
			fc:       NewForecaster(cfg.WindowSeconds, 0.5, cfg.ForecastLag),
			nextRoll: cfg.WindowSeconds,
			active:   active,
			storeUse: make(map[string]int64),
			dstore:   dataset.NewStore(cfg.DatasetStoreBytes),
		})
		f.regions[i].stats.Name = name
	}
	return f, nil
}

// Regions returns the number of federated regions.
func (f *Federation) Regions() int { return len(f.regions) }

// Fleet exposes region r's fleet (tests and CLIs inspect it).
func (f *Federation) Fleet(r int) *fleet.Fleet { return f.regions[r].fl }

// Store exposes region r's artifact registry.
func (f *Federation) Store(r int) *platform.Registry { return f.regions[r].reg }

// Start brings every regional fleet up.
func (f *Federation) Start() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.started {
		return fmt.Errorf("region: already started")
	}
	for _, r := range f.regions {
		if err := r.fl.Start(); err != nil {
			return fmt.Errorf("region: %s: %w", r.name, err)
		}
	}
	f.started = true
	return nil
}

// partitioned reports whether region r is WAN-unreachable at modelled
// time t.
func (f *Federation) partitioned(r int, t float64) bool {
	for _, p := range f.cfg.Partitions {
		if p.Region == r && t >= p.From && t < p.Until {
			return true
		}
	}
	return false
}

// SubmitAt routes one workflow. Interactive and guaranteed work is
// served to completion inside the call (modelled time; the handle is
// already resolved on return). Batch work may be parked in the hold
// queue and served by a later SubmitAt or Drain. An error means the
// request was rejected (guaranteed proof impossible, no active site, or
// invalid request); nothing was enqueued.
func (f *Federation) SubmitAt(req Request) (*Handle, error) {
	if req.Workflow == nil {
		return nil, fmt.Errorf("region: nil workflow")
	}
	if req.Home < 0 || req.Home >= len(f.regions) {
		return nil, fmt.Errorf("region: home region %d outside [0, %d)", req.Home, len(f.regions))
	}
	if req.Class == Guaranteed && req.Deadline <= 0 {
		return nil, fmt.Errorf("region: guaranteed request needs a positive deadline, got %.3g", req.Deadline)
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.started || f.closed {
		return nil, fmt.Errorf("region: not serving (started=%v closed=%v)", f.started, f.closed)
	}
	if req.Arrival < f.frontier {
		return nil, fmt.Errorf("region: arrival %.6g before frontier %.6g (arrivals must be non-decreasing)",
			req.Arrival, f.frontier)
	}
	f.frontier = req.Arrival
	// Batch arrivals flush due held work first (FIFO among batch);
	// priority arrivals do not — they preempt it instead, below.
	f.advance(req.Arrival, req.Class == Batch)

	f.submitted++
	if req.Name == "" {
		req.Name = fmt.Sprintf("%s/wf%d", req.Tenant, f.submitted)
	}
	home := f.regions[req.Home]
	home.fc.Observe(req.App, req.Arrival)

	if req.Class == Batch {
		release := req.Arrival
		if home.gFrontier > release {
			release = home.gFrontier
		}
		if release > req.Arrival {
			// The guaranteed class owns the near frontier: park the batch
			// work behind it.
			h := &Handle{done: make(chan struct{})}
			f.heldSeq++
			hw := &held{h: h, req: req, release: release, seq: f.heldSeq}
			h.held = hw
			home.held = append(home.held, hw)
			home.stats.Holds++
			f.trace(Event{Kind: EventHold, Region: home.name, Tenant: req.Tenant,
				Workflow: req.Name, App: req.App, Time: req.Arrival,
				Detail: fmt.Sprintf("release=%.4gs", release)})
			return h, nil
		}
		h := &Handle{done: make(chan struct{})}
		f.serveNow(home, req, req.Arrival, 0, h)
		return h, h.err
	}

	h := &Handle{done: make(chan struct{})}
	if err := f.route(req, h); err != nil {
		f.submitted--
		f.rejected++
		f.trace(Event{Kind: EventReject, Region: home.name, Tenant: req.Tenant,
			Workflow: req.Name, App: req.App, Time: req.Arrival, Detail: err.Error()})
		return nil, err
	}
	// Priority work completed: push back any held batch that was due —
	// in a preemptive system the batch must not have occupied the
	// frontier the priority work just used.
	f.preemptDue(req.Arrival, h.res.Completion)
	return h, nil
}

// route picks the serving region for interactive and guaranteed work and
// serves inline. Candidates are priced as
//
//	queueWait + handoff(WAN payload + penalty, non-home)
//	          + fetch estimate + data estimate
//
// with the home region winning ties. A WAN partition (of home or of the
// candidate) removes every non-home candidate. Guaranteed requests try
// candidates cheapest-first until one region's fleet proves the
// (stall-shrunk) deadline; when none can, the request is rejected.
func (f *Federation) route(req Request, h *Handle) error {
	home := req.Home
	needs := fleet.BitstreamNeeds(req.Workflow)
	known := f.knownReads(fleet.DatasetReads(req.Workflow))
	var cands []routeCand
	for _, r := range f.regions {
		if r.idx != home && (f.partitioned(home, req.Arrival) || f.partitioned(r.idx, req.Arrival)) {
			continue
		}
		handoff := 0.0
		if r.idx != home {
			handoff = f.wan.SendSeconds(req.InputBytes) + f.cfg.HandoffPenalty
		}
		eff := req.Arrival + handoff
		wait, ok := r.fl.QueueWait(eff)
		if !ok {
			continue // no active site
		}
		cost := handoff + wait + f.fetchEstimate(r, needs, eff) + f.dataEstimate(r, known, eff)
		cands = append(cands, routeCand{idx: r.idx, cost: cost})
	}
	if len(cands) == 0 {
		return fmt.Errorf("region: no region can serve %s (all partitioned or scaled down)", req.Name)
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].less(cands[b], home) })
	if req.Class != Guaranteed {
		r := f.regions[cands[0].idx]
		f.trace(Event{Kind: EventRoute, Region: r.name, Tenant: req.Tenant,
			Workflow: req.Name, App: req.App, Time: req.Arrival,
			Detail: fmt.Sprintf("cost=%.4gs of %d candidate(s)", cands[0].cost, len(cands))})
		f.serveNow(r, req, req.Arrival, 0, h)
		return h.err
	}
	var lastErr error
	for _, c := range cands {
		r := f.regions[c.idx]
		if err := f.tryGuaranteed(r, req, h); err != nil {
			lastErr = err
			continue
		}
		f.trace(Event{Kind: EventRoute, Region: r.name, Tenant: req.Tenant,
			Workflow: req.Name, App: req.App, Time: req.Arrival,
			Detail: fmt.Sprintf("guaranteed cost=%.4gs of %d candidate(s)", c.cost, len(cands))})
		return nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("%w: no region can prove a %.4gs deadline", fleet.ErrSaturated, req.Deadline)
	}
	return lastErr
}

// routeCand is one candidate serving region; ordering is cheapest-first
// with the home region winning ties, then index order — deterministic.
type routeCand struct {
	idx  int
	cost float64
}

func (a routeCand) less(b routeCand, home int) bool {
	if a.cost != b.cost {
		return a.cost < b.cost
	}
	if (a.idx == home) != (b.idx == home) {
		return a.idx == home
	}
	return a.idx < b.idx
}

// tryGuaranteed serves a guaranteed request at region r: stalls (WAN
// handoff, artifact fetches, dataset staging) are charged first and
// shrink the deadline the fleet must prove.
func (f *Federation) tryGuaranteed(r *region, req Request, h *Handle) error {
	handoff := 0.0
	if r.idx != req.Home {
		handoff = f.wan.SendSeconds(req.InputBytes)
	}
	needs := fleet.BitstreamNeeds(req.Workflow)
	fetch := f.ensureArtifacts(r, needs, req.Arrival+handoff)
	known := f.knownReads(fleet.DatasetReads(req.Workflow))
	dfetch := f.ensureData(r, known, req.Arrival+handoff+fetch, false)
	stall := handoff + fetch + dfetch
	if req.Deadline <= stall {
		return fmt.Errorf("%w: %s: stalls %.4gs consume the %.4gs deadline",
			fleet.ErrSaturated, r.name, stall, req.Deadline)
	}
	tk, err := r.fl.Submit(fleet.Request{
		Tenant: req.Tenant, Name: req.Name, Workflow: req.Workflow,
		Arrival: req.Arrival + stall, Guaranteed: true, Deadline: req.Deadline - stall,
	})
	if err != nil {
		return err
	}
	f.finish(r, req, tk, handoff, fetch, dfetch, 0, 0, h)
	return nil
}

// serveNow serves one request at region r with the given serving-path
// arrival (the hold release for batch work), resolving h.
func (f *Federation) serveNow(r *region, req Request, at float64, pushes int, h *Handle) {
	handoff := 0.0
	if r.idx != req.Home {
		handoff = f.wan.SendSeconds(req.InputBytes)
	}
	needs := fleet.BitstreamNeeds(req.Workflow)
	fetch := f.ensureArtifacts(r, needs, at+handoff)
	known := f.knownReads(fleet.DatasetReads(req.Workflow))
	dfetch := f.ensureData(r, known, at+handoff+fetch, false)
	tk, err := r.fl.Submit(fleet.Request{
		Tenant: req.Tenant, Name: req.Name, Workflow: req.Workflow,
		Arrival: at + handoff + fetch + dfetch,
	})
	if err != nil {
		r.stats.Failed++
		h.err = fmt.Errorf("region: %s: %w", r.name, err)
		h.held = nil
		close(h.done)
		return
	}
	f.finish(r, req, tk, handoff, fetch, dfetch, at-req.Arrival, pushes, h)
}

// finish waits out the fleet serve and fills the handle's result.
func (f *Federation) finish(r *region, req Request, tk *fleet.Ticket, handoff, fetch, dfetch, hold float64, pushes int, h *Handle) {
	res, err := tk.Wait()
	h.held = nil
	if err != nil {
		r.stats.Failed++
		h.err = fmt.Errorf("region: %s: %w", r.name, err)
		close(h.done)
		return
	}
	if req.App != "" {
		if _, ok := f.appNeeds[req.App]; !ok {
			f.appNeeds[req.App] = fleet.BitstreamNeeds(req.Workflow)
			f.appOrder = append(f.appOrder, req.App)
		}
	}
	f.learnAppReads(req.App, req.Workflow)
	f.publishData(r, req.Workflow, req.Name, res.Completion)
	cold := fetch > 0 || dfetch > 0 || res.Deploy > 0
	out := Result{
		Region: r.name, Site: res.Site, Class: req.Class,
		Arrival: req.Arrival, Handoff: handoff, Fetch: fetch, DataFetch: dfetch, Hold: hold,
		Wait: res.Wait, Deploy: res.Deploy, Service: res.Service,
		Completion: res.Completion, Latency: res.Completion - req.Arrival,
		Cold: cold, Guaranteed: res.Guaranteed, Preemptions: pushes,
	}
	if res.Guaranteed {
		out.Bound = handoff + fetch + dfetch + res.Bound
		r.gFrontier = math.Max(r.gFrontier, res.Completion)
		r.stats.Guaranteed++
	} else if req.Class == Interactive {
		r.stats.Interactive++
	} else {
		r.stats.Batch++
	}
	r.stats.Served++
	if cold {
		r.stats.ColdServes++
	}
	if r.idx != req.Home {
		r.stats.Handoffs++
		f.regions[req.Home].stats.HandedOff++
		f.trace(Event{Kind: EventHandoff, Region: r.name, Tenant: req.Tenant,
			Workflow: req.Name, App: req.App, Time: req.Arrival,
			Detail: fmt.Sprintf("home=%s xfer=%.4gs", f.regions[req.Home].name, handoff)})
	}
	h.res = out
	f.trace(Event{Kind: EventDone, Region: r.name, Tenant: req.Tenant,
		Workflow: req.Name, App: req.App, Time: res.Completion,
		Detail: fmt.Sprintf("class=%s latency=%.4gs cold=%v", req.Class, out.Latency, cold)})
	close(h.done)
}

// fetchEstimate prices the WAN fetches a serve at region r would pay.
func (f *Federation) fetchEstimate(r *region, needs []string, at float64) float64 {
	total := 0.0
	for _, id := range needs {
		if _, err := r.reg.Get(id); err == nil {
			continue
		}
		if f.partitioned(r.idx, at) {
			total += f.cfg.FallbackSeconds
			continue
		}
		bs, err := f.catalog.Get(id)
		if err != nil {
			total += f.cfg.FallbackSeconds
			continue
		}
		total += f.wan.SendSeconds(f.imageBytes(r, bs))
	}
	return total
}

// ensureArtifacts makes every needed bitstream resident in region r's
// store, WAN-fetching the missing ones serially, and returns the total
// modelled stall. Artifacts that cannot be obtained (partitioned WAN,
// absent from the catalog) are skipped — the fleet degrades those tasks
// to software, which is the modelled behaviour of a region cut off from
// the catalog.
func (f *Federation) ensureArtifacts(r *region, needs []string, at float64) float64 {
	total := 0.0
	for _, id := range needs {
		dt, err := f.ensureStored(r, id, at+total, false)
		if err != nil {
			continue
		}
		total += dt
	}
	return total
}

// ensureStored fetches one artifact into region r's store if absent,
// returning the modelled fetch seconds (0 when already resident).
// Prefetch fetches are accounted separately — they run on the control
// plane, off any workflow's critical path.
func (f *Federation) ensureStored(r *region, id string, at float64, prefetch bool) (float64, error) {
	if _, err := r.reg.Get(id); err == nil {
		r.storeSeq++
		r.storeUse[id] = r.storeSeq
		return 0, nil
	}
	if f.partitioned(r.idx, at) {
		r.stats.PartitionSkips++
		return 0, fmt.Errorf("region: %s partitioned at %.4gs", r.name, at)
	}
	bs, err := f.catalog.Get(id)
	if err != nil {
		return 0, err
	}
	dt := f.wan.SendSeconds(f.imageBytes(r, bs))
	if err := r.reg.Put(bs); err != nil {
		return 0, err
	}
	r.storeSeq++
	r.storeUse[id] = r.storeSeq
	f.evictStore(r, at)
	kind := EventFetch
	if prefetch {
		kind = EventPrefetch
		r.stats.PrefetchFetches++
		r.stats.PrefetchSeconds += dt
	} else {
		r.stats.WANFetches++
		r.stats.WANFetchSeconds += dt
	}
	f.trace(Event{Kind: kind, Region: r.name, Bitstream: id, Time: at,
		Detail: fmt.Sprintf("wan=%.4gs", dt)})
	return dt, nil
}

// evictStore enforces the bounded region store: LRU artifacts (never the
// one just touched) are dropped until the store fits.
func (f *Federation) evictStore(r *region, at float64) {
	if f.cfg.StoreSlots <= 0 {
		return
	}
	for len(r.storeUse) > f.cfg.StoreSlots {
		victim, vseq := "", int64(math.MaxInt64)
		for id, seq := range r.storeUse {
			if seq < vseq {
				victim, vseq = id, seq
			}
		}
		delete(r.storeUse, victim)
		r.reg.Delete(victim)
		r.stats.StoreEvictions++
		f.trace(Event{Kind: EventEvictStore, Region: r.name, Bitstream: victim, Time: at})
	}
}

// imageBytes is the configuration image a WAN fetch of bs into region r
// ships: the largest image among the region's devices that can host it
// (0 — a free fetch — only when no device fits, in which case the fleet
// will degrade to software anyway).
func (f *Federation) imageBytes(r *region, bs platform.Bitstream) int64 {
	need := bs.TotalResources()
	var best int64
	for si := 0; si < r.fl.Sites(); si++ {
		for _, n := range r.fl.Cluster(si).Nodes {
			for _, d := range n.Devices {
				if need.FitsIn(d.Capacity) && d.ConfigBytes() > best {
					best = d.ConfigBytes()
				}
			}
		}
	}
	return best
}

// preemptDue pushes every held batch workflow that was due by the
// priority arrival at t past the priority work's completion, plus the
// restart penalty.
func (f *Federation) preemptDue(t, completion float64) {
	for _, r := range f.regions {
		for _, hw := range r.held {
			if hw.release > t {
				continue
			}
			hw.release = math.Max(completion, t) + f.cfg.PreemptPenalty
			hw.pushes++
			r.stats.Preemptions++
			f.trace(Event{Kind: EventPreempt, Region: r.name, Tenant: hw.req.Tenant,
				Workflow: hw.req.Name, App: hw.req.App, Time: t,
				Detail: fmt.Sprintf("pushed to %.4gs (%d)", hw.release, hw.pushes)})
		}
	}
}

// Preempt manually pushes a held batch workflow back by the restart
// penalty. Preempting work that already completed (or was never held) is
// an error — there is nothing left to push.
func (f *Federation) Preempt(h *Handle) error {
	if h == nil {
		return fmt.Errorf("region: nil handle")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	hw := h.held
	if hw == nil {
		return fmt.Errorf("region: workflow already completed; cannot preempt")
	}
	hw.release += f.cfg.PreemptPenalty
	hw.pushes++
	f.regions[hw.req.Home].stats.Preemptions++
	return nil
}

// advance processes every modelled event due by time t, in time order
// with deterministic tie-breaks: window rolls (forecast, prefetch,
// autoscale), and — when flushHeld is set — hold-queue releases.
func (f *Federation) advance(t float64, flushHeld bool) {
	for {
		bestT := math.Inf(1)
		kind := -1 // 0 = roll, 1 = release
		var br *region
		var bh *held
		for _, r := range f.regions {
			if r.nextRoll <= t && r.nextRoll < bestT {
				bestT, kind, br = r.nextRoll, 0, r
			}
		}
		if flushHeld {
			for _, r := range f.regions {
				for _, hw := range r.held {
					if hw.release > t {
						continue
					}
					if hw.release < bestT || (hw.release == bestT && kind == 1 && hw.seq < bh.seq) {
						bestT, kind, br, bh = hw.release, 1, r, hw
					}
				}
			}
		}
		if kind < 0 {
			return
		}
		if kind == 0 {
			f.roll(br, br.nextRoll)
			br.nextRoll += f.cfg.WindowSeconds
			continue
		}
		f.release(br, bh)
	}
}

// release serves one held batch workflow at its release time.
func (f *Federation) release(r *region, hw *held) {
	for i, x := range r.held {
		if x == hw {
			r.held = append(r.held[:i], r.held[i+1:]...)
			break
		}
	}
	f.trace(Event{Kind: EventRelease, Region: r.name, Tenant: hw.req.Tenant,
		Workflow: hw.req.Name, App: hw.req.App, Time: hw.release,
		Detail: fmt.Sprintf("held %.4gs pushes=%d", hw.release-hw.req.Arrival, hw.pushes)})
	f.serveNow(r, hw.req, hw.release, hw.pushes, hw.h)
}

// roll processes one region's window boundary: close forecast windows,
// stage predicted demand (prefetch), and autoscale.
func (f *Federation) roll(r *region, at float64) {
	r.fc.RollTo(at)
	if f.cfg.Prefetch {
		f.prefetch(r, at)
	}
	if f.cfg.Autoscale {
		f.autoscale(r, at)
	}
}

// prefetch stages the bitstreams of every app whose forecast demand for
// the next window crosses the threshold: WAN fetch into the region store
// if absent, cache warm into the least-busy site. All off the serving
// path — the modelled fetch and staging seconds are accounted, and the
// WAN occupancy is control-plane traffic. Apps are staged in ascending
// predicted demand (first-seen order breaks ties), so when the bounded
// store or site caches cannot hold every staged artifact, the hottest
// apps' bitstreams land last — most-recently-used — and survive the LRU.
func (f *Federation) prefetch(r *region, at float64) {
	type stage struct {
		app  string
		pred float64
	}
	var due []stage
	for _, app := range r.fc.Apps() {
		if _, ok := f.appNeeds[app]; !ok {
			continue // never served anywhere yet: nothing to stage
		}
		if pred := r.fc.Predict(app); pred >= f.cfg.WarmThreshold {
			due = append(due, stage{app, pred})
		}
	}
	sort.SliceStable(due, func(a, b int) bool { return due[a].pred < due[b].pred })
	for _, st := range due {
		for _, id := range f.appNeeds[st.app] {
			if _, err := f.ensureStored(r, id, at, true); err != nil {
				continue
			}
			if _, dt, err := r.fl.Warm(id, at); err == nil && dt > 0 {
				r.stats.Warms++
			}
		}
		// Datasets are prefetch-eligible like bitstreams: stage the app's
		// known external partitions into the region store ahead of the
		// demand, so the arriving workflows find them resident.
		if known := f.knownReads(f.appReads[st.app]); len(known) > 0 {
			f.ensureData(r, known, at, true)
		}
	}
}

// autoscale reacts to the queue state at a window roll: a wait past
// ScaleUpWait activates the next site (serving from at+SiteBootSeconds);
// ScaleDownIdleWindows consecutive idle rolls deactivate the last one
// (never below one site, never a site still holding work).
func (f *Federation) autoscale(r *region, at float64) {
	wait, ok := r.fl.QueueWait(at)
	switch {
	case ok && wait > f.cfg.ScaleUpWait && r.active < f.cfg.SitesPerRegion:
		if err := r.fl.SetSiteActive(r.active, true, at+f.cfg.SiteBootSeconds); err == nil {
			r.active++
			r.idleWindows = 0
			r.stats.ScaleUps++
			f.trace(Event{Kind: EventScaleUp, Region: r.name, Time: at,
				Detail: fmt.Sprintf("wait=%.4gs sites=%d (boot %.3gs)", wait, r.active, f.cfg.SiteBootSeconds)})
		}
	case ok && wait == 0 && r.active > 1:
		r.idleWindows++
		if r.idleWindows >= f.cfg.ScaleDownIdleWindows {
			if err := r.fl.SetSiteActive(r.active-1, false, at); err == nil {
				r.active--
				r.stats.ScaleDowns++
				f.trace(Event{Kind: EventScaleDown, Region: r.name, Time: at,
					Detail: fmt.Sprintf("sites=%d", r.active)})
			}
			r.idleWindows = 0
		}
	default:
		r.idleWindows = 0
	}
}

// Drain advances modelled time to at and serves every held batch
// workflow (in release order), whatever its release time. Call it after
// the last arrival and before waiting on batch handles.
func (f *Federation) Drain(at float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if at > f.frontier {
		f.frontier = at
	}
	f.advance(f.frontier, true)
	for {
		var br *region
		var bh *held
		for _, r := range f.regions {
			for _, hw := range r.held {
				if bh == nil || hw.release < bh.release || (hw.release == bh.release && hw.seq < bh.seq) {
					br, bh = r, hw
				}
			}
		}
		if bh == nil {
			return
		}
		f.release(br, bh)
	}
}

// Shutdown drains held work, stops every regional fleet, and returns the
// final stats.
func (f *Federation) Shutdown() Stats {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return f.Stats()
	}
	f.mu.Unlock()
	f.Drain(0)
	f.mu.Lock()
	f.closed = true
	started := f.started
	f.mu.Unlock()
	if started {
		for _, r := range f.regions {
			r.fl.Shutdown()
		}
	}
	return f.Stats()
}

// Stats snapshots the federation.
func (f *Federation) Stats() Stats {
	f.mu.Lock()
	out := Stats{Submitted: f.submitted, Rejected: f.rejected}
	for _, r := range f.regions {
		rs := r.stats
		rs.Fleet = r.fl.Stats()
		rs.ActiveSites = rs.Fleet.ActiveSites()
		out.Completed += rs.Served
		out.Failed += rs.Failed
		out.ColdServes += rs.ColdServes
		out.Preemptions += rs.Preemptions
		out.Handoffs += rs.Handoffs
		out.WANFetches += rs.WANFetches
		out.PrefetchFetches += rs.PrefetchFetches
		out.Warms += rs.Warms
		out.DataFetches += rs.DataFetches
		out.DataPrefetches += rs.DataPrefetches
		out.Guaranteed += rs.Guaranteed
		out.BoundViolations += rs.Fleet.BoundViolations()
		if rs.Fleet.Makespan > out.Makespan {
			out.Makespan = rs.Fleet.Makespan
		}
		out.Regions = append(out.Regions, rs)
	}
	f.mu.Unlock()
	return out
}

// trace emits one region event under the trace mutex.
func (f *Federation) trace(ev Event) {
	if f.cfg.Trace == nil {
		return
	}
	f.traceMu.Lock()
	f.cfg.Trace(ev)
	f.traceMu.Unlock()
}
