package olympus

import (
	"fmt"

	"everest/internal/mlir"
	"everest/internal/mlir/dialects"
)

// ControllerState describes one state of a generated memory controller.
type ControllerState struct {
	Name    string
	Actions []string
	Next    string
}

// ControllerSpec is the finite-state controller Olympus generates for the
// data-movement infrastructure around a kernel (read/execute/write
// pipelining of §V-C). Double buffering splits the transfer states into
// ping/pong pairs that overlap with execution.
type ControllerSpec struct {
	Name   string
	States []ControllerState
}

// Controller derives the memory-subsystem controller for a design.
func Controller(d *Design) ControllerSpec {
	cfg := d.Bitstream.Config
	name := fmt.Sprintf("%s_ctrl", d.Bitstream.Kernel)
	if !cfg.DoubleBuffered {
		return ControllerSpec{
			Name: name,
			States: []ControllerState{
				{Name: "idle", Actions: []string{"wait_start"}, Next: "load"},
				{Name: "load", Actions: []string{"dma_read(in, plm)"}, Next: "exec"},
				{Name: "exec", Actions: []string{"start_kernels", "wait_done"}, Next: "store"},
				{Name: "store", Actions: []string{"dma_write(plm, out)"}, Next: "idle"},
			},
		}
	}
	return ControllerSpec{
		Name: name,
		States: []ControllerState{
			{Name: "idle", Actions: []string{"wait_start"}, Next: "fill"},
			{Name: "fill", Actions: []string{"dma_read(in[0], plm_ping)"}, Next: "steady"},
			{Name: "steady", Actions: []string{
				"start_kernels(plm_ping)",
				"dma_read(in[k+1], plm_pong)",
				"dma_write(plm_done, out[k-1])",
				"swap(ping, pong)",
			}, Next: "steady"},
			{Name: "drain", Actions: []string{"wait_done", "dma_write(plm_ping, out[last])"}, Next: "idle"},
		},
	}
}

// EmitController renders the controller as an fsm-dialect MLIR module.
func EmitController(spec ControllerSpec) (*mlir.Module, error) {
	if len(spec.States) == 0 {
		return nil, fmt.Errorf("olympus: controller %q has no states", spec.Name)
	}
	valid := make(map[string]bool, len(spec.States))
	for _, st := range spec.States {
		valid[st.Name] = true
	}
	ctx := mlir.NewContext()
	dialects.RegisterAll(ctx)
	m := mlir.NewModule(ctx, spec.Name)
	b := mlir.NewBuilder(ctx, m.Body())
	mach := b.CreateWithRegions("fsm.machine", nil, nil, map[string]mlir.Attribute{
		"sym_name": mlir.StringAttr(spec.Name),
	}, 1)
	mb := mlir.NewBuilder(ctx, mach.Regions[0].Entry())
	for _, st := range spec.States {
		if st.Next != "" && !valid[st.Next] {
			return nil, fmt.Errorf("olympus: state %q transitions to unknown state %q", st.Name, st.Next)
		}
		sop := mb.CreateWithRegions("fsm.state", nil, nil, map[string]mlir.Attribute{
			"name": mlir.StringAttr(st.Name),
		}, 1)
		sb := mlir.NewBuilder(ctx, sop.Regions[0].Entry())
		for _, a := range st.Actions {
			sb.Create("fsm.action", nil, nil, map[string]mlir.Attribute{"do": mlir.StringAttr(a)})
		}
		if st.Next != "" {
			sb.Create("fsm.transition", nil, nil, map[string]mlir.Attribute{"to": mlir.StringAttr(st.Next)})
		}
	}
	if err := m.Verify(); err != nil {
		return nil, err
	}
	return m, nil
}
