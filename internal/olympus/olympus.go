// Package olympus implements the EVEREST system-level hardware generation
// stage (paper §V-C; Soldavini et al., "Platform-Aware FPGA System
// Architecture Generation based on MLIR", arXiv:2309.12917).
//
// Starting from an HLS-compiled kernel and the FPGA platform description,
// Olympus builds the data-movement infrastructure around the kernel:
//
//   - private local memories (PLMs) with lifetime-based sharing
//     (Pilato et al., TCAD 2017 — paper ref [16]);
//   - double buffering and read/execute/write pipelining;
//   - kernel replication with the memory bus split into lanes so each
//     replica gets a private stream (paper ref [24]);
//   - data packing to fill every bus beat (Iris, paper ref [25]).
//
// The output is a platform.Bitstream: the architectural content a real flow
// would encode in the FPGA configuration, plus generated host driver calls.
package olympus

import (
	"fmt"

	"everest/internal/hls"
	"everest/internal/platform"
)

// Options selects which optimizations Generate applies. The zero value is
// the naive architecture (single instance, unpacked, sequential transfers):
// the E3 ablation baseline.
type Options struct {
	SharePLM      bool    // lifetime-based PLM sharing
	DoubleBuffer  bool    // overlap transfer and compute
	Replicate     bool    // instantiate as many replicas as fit
	MaxReplicas   int     // cap on replicas (0 = no cap)
	PackData      bool    // pack elements into full bus beats
	BusWidthBits  int     // memory bus width (0 = device port width)
	TargetII      int     // forwarded to HLS directives
	Unroll        int     // forwarded to HLS directives
	MemPorts      int     // PLM banking: concurrent ports the datapath sees (0 = 2)
	ReserveFabric float64 // fraction of the device kept free (0..1)
}

// Buffer describes one kernel buffer for PLM planning.
type Buffer struct {
	Name  string
	Bytes int64
	// Phase groups buffers by kernel phase; buffers in different phases
	// have disjoint lifetimes and can share storage when SharePLM is on.
	Phase int
}

// PlanPLM returns the PLM footprint: the sum of buffer sizes without
// sharing, or the maximum over phases with lifetime-based sharing.
func PlanPLM(buffers []Buffer, share bool) int64 {
	if len(buffers) == 0 {
		return 0
	}
	if !share {
		var sum int64
		for _, b := range buffers {
			sum += b.Bytes
		}
		return sum
	}
	perPhase := make(map[int]int64)
	for _, b := range buffers {
		perPhase[b.Phase] += b.Bytes
	}
	var max int64
	for _, v := range perPhase {
		if v > max {
			max = v
		}
	}
	return max
}

// Design is the result of system generation.
type Design struct {
	Bitstream platform.Bitstream
	HostCode  []string // generated driver call sequence
	// Diagnostics
	ReplicasTried int
	FitUtil       float64
}

// Generate builds the FPGA system architecture for a kernel on a device.
func Generate(k hls.Kernel, backend hls.Backend, dev *platform.Device, buffers []Buffer, opt Options) (*Design, error) {
	if dev == nil {
		return nil, fmt.Errorf("olympus: nil device")
	}
	busWidth := opt.BusWidthBits
	if busWidth <= 0 {
		busWidth = dev.Memory.PortWidthBits
	}
	elemBits := k.Format.Bits()
	if elemBits <= 0 {
		return nil, fmt.Errorf("olympus: kernel %q has no element width", k.Name)
	}

	plmBytes := PlanPLM(buffers, opt.SharePLM)
	k.BufferBytes = 0 // PLMs are accounted at the system level, not per instance

	dirs := hls.Directives{PipelineEnabled: true, TargetII: opt.TargetII, Unroll: opt.Unroll, MemPorts: opt.MemPorts}
	report, err := hls.Schedule(k, dirs, backend)
	if err != nil {
		return nil, fmt.Errorf("olympus: HLS failed: %w", err)
	}

	packed := 1
	if opt.PackData {
		packed = busWidth / elemBits
		if packed < 1 {
			packed = 1
		}
	}

	budget := dev.Capacity
	if opt.ReserveFabric > 0 && opt.ReserveFabric < 1 {
		budget = hls.Resources{
			LUT:  int(float64(budget.LUT) * (1 - opt.ReserveFabric)),
			FF:   int(float64(budget.FF) * (1 - opt.ReserveFabric)),
			DSP:  int(float64(budget.DSP) * (1 - opt.ReserveFabric)),
			BRAM: int(float64(budget.BRAM) * (1 - opt.ReserveFabric)),
		}
	}

	maxRep := 1
	if opt.Replicate {
		maxRep = busWidth / elemBits // one lane per replica at elem granularity
		if maxRep < 1 {
			maxRep = 1
		}
		if opt.MaxReplicas > 0 && maxRep > opt.MaxReplicas {
			maxRep = opt.MaxReplicas
		}
	}

	// Find the largest replica count that fits the budget.
	var bs platform.Bitstream
	tried := 0
	for rep := maxRep; rep >= 1; rep-- {
		tried++
		lanes := rep
		if busWidth%lanes != 0 {
			continue
		}
		cfg := platform.SystemConfig{
			Replicas:       rep,
			BusWidthBits:   busWidth,
			Lanes:          lanes,
			PackedElements: packed,
			DoubleBuffered: opt.DoubleBuffer,
			PLMBytes:       plmBytes,
			PLMShared:      opt.SharePLM,
		}
		cand := platform.Bitstream{
			ID:       fmt.Sprintf("%s@%s[r%d]", k.Name, dev.Name, rep),
			Kernel:   k.Name,
			Target:   dev.Name,
			Report:   report,
			Config:   cfg,
			ElemBits: elemBits,
		}
		if cand.TotalResources().FitsIn(budget) {
			bs = cand
			break
		}
	}
	if bs.ID == "" {
		return nil, fmt.Errorf("olympus: kernel %q does not fit on %s even unreplicated", k.Name, dev.Name)
	}

	d := &Design{
		Bitstream:     bs,
		ReplicasTried: tried,
		FitUtil:       bs.TotalResources().Utilization(dev.Capacity),
	}
	d.HostCode = hostDriver(bs)
	return d, nil
}

// hostDriver emits the driver call sequence Olympus generates for the host
// side (paper: "host code drivers to move data from host to device and
// initiate execution").
func hostDriver(bs platform.Bitstream) []string {
	calls := []string{
		fmt.Sprintf("xrt::device dev = xrt::device(%q)", bs.Target),
		fmt.Sprintf("auto uuid = dev.load_xclbin(%q)", bs.ID),
	}
	for r := 0; r < bs.Config.Replicas; r++ {
		calls = append(calls,
			fmt.Sprintf("auto krnl%d = xrt::kernel(dev, uuid, %q)", r, bs.Kernel),
			fmt.Sprintf("auto in%d = xrt::bo(dev, IN_BYTES/%d, krnl%d.group_id(0))", r, bs.Config.Replicas, r),
			fmt.Sprintf("auto out%d = xrt::bo(dev, OUT_BYTES/%d, krnl%d.group_id(1))", r, bs.Config.Replicas, r),
		)
	}
	if bs.Config.DoubleBuffered {
		calls = append(calls, "// double-buffered: sync(k+1) overlapped with run(k)")
	}
	for r := 0; r < bs.Config.Replicas; r++ {
		calls = append(calls,
			fmt.Sprintf("in%d.sync(XCL_BO_SYNC_BO_TO_DEVICE)", r),
			fmt.Sprintf("auto run%d = krnl%d(in%d, out%d)", r, r, r, r),
		)
	}
	for r := 0; r < bs.Config.Replicas; r++ {
		calls = append(calls,
			fmt.Sprintf("run%d.wait()", r),
			fmt.Sprintf("out%d.sync(XCL_BO_SYNC_BO_FROM_DEVICE)", r),
		)
	}
	return calls
}

// AblationStep names one step of the E3 ablation.
type AblationStep struct {
	Label string
	Opt   Options
}

// AblationLadder returns the cumulative optimization ladder of experiment
// E3: naive -> +PLM sharing -> +double buffering -> +replication/lanes ->
// +packing.
func AblationLadder(maxReplicas int) []AblationStep {
	return []AblationStep{
		{Label: "naive", Opt: Options{}},
		{Label: "+plm-sharing", Opt: Options{SharePLM: true}},
		{Label: "+double-buffer", Opt: Options{SharePLM: true, DoubleBuffer: true}},
		{Label: "+replicate-lanes", Opt: Options{SharePLM: true, DoubleBuffer: true, Replicate: true, MaxReplicas: maxReplicas}},
		{Label: "+packing", Opt: Options{SharePLM: true, DoubleBuffer: true, Replicate: true, MaxReplicas: maxReplicas, PackData: true}},
	}
}
