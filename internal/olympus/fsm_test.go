package olympus

import (
	"strings"
	"testing"

	"everest/internal/hls"
	"everest/internal/platform"
)

func TestControllerSequential(t *testing.T) {
	d, err := Generate(streamKernel(), hls.VitisBackend{}, platform.AlveoU55C(), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := Controller(d)
	if len(spec.States) != 4 {
		t.Fatalf("sequential controller has %d states, want 4 (idle/load/exec/store)", len(spec.States))
	}
	names := make([]string, 0, 4)
	for _, s := range spec.States {
		names = append(names, s.Name)
	}
	if strings.Join(names, ",") != "idle,load,exec,store" {
		t.Errorf("states = %v", names)
	}
}

func TestControllerDoubleBuffered(t *testing.T) {
	d, err := Generate(streamKernel(), hls.VitisBackend{}, platform.AlveoU55C(), nil, Options{DoubleBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	spec := Controller(d)
	// Steady state must overlap read/execute/write.
	var steady *ControllerState
	for i := range spec.States {
		if spec.States[i].Name == "steady" {
			steady = &spec.States[i]
		}
	}
	if steady == nil {
		t.Fatal("double-buffered controller needs a steady state")
	}
	joined := strings.Join(steady.Actions, ";")
	for _, want := range []string{"start_kernels", "dma_read", "dma_write", "swap"} {
		if !strings.Contains(joined, want) {
			t.Errorf("steady state missing %q: %v", want, steady.Actions)
		}
	}
}

func TestEmitController(t *testing.T) {
	d, err := Generate(streamKernel(), hls.VitisBackend{}, platform.AlveoU55C(), nil, Options{DoubleBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := EmitController(Controller(d))
	if err != nil {
		t.Fatal(err)
	}
	if m.CountOps("fsm.state") != 4 {
		t.Errorf("fsm.state count %d, want 4", m.CountOps("fsm.state"))
	}
	if m.CountOps("fsm.transition") != 4 {
		t.Errorf("fsm.transition count %d, want 4", m.CountOps("fsm.transition"))
	}
	text := m.String()
	if !strings.Contains(text, "fsm.machine") || !strings.Contains(text, `"swap(ping, pong)"`) {
		t.Error("printed controller missing content")
	}
}

func TestEmitControllerErrors(t *testing.T) {
	if _, err := EmitController(ControllerSpec{Name: "x"}); err == nil {
		t.Error("empty controller must fail")
	}
	bad := ControllerSpec{Name: "x", States: []ControllerState{
		{Name: "a", Next: "ghost"},
	}}
	if _, err := EmitController(bad); err == nil {
		t.Error("transition to unknown state must fail")
	}
}
