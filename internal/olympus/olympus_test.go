package olympus

import (
	"strings"
	"testing"

	"everest/internal/base2"
	"everest/internal/hls"
	"everest/internal/platform"
)

func streamKernel() hls.Kernel {
	return hls.Kernel{
		Name: "stream",
		Nest: hls.LoopNest{
			TripCounts: []int{1 << 20},
			Body:       hls.OpMix{Adds: 2, Muls: 2, Loads: 2, Stores: 1},
		},
		Format: base2.Float32{},
	}
}

func testBuffers() []Buffer {
	return []Buffer{
		{Name: "in", Bytes: 1 << 16, Phase: 0},
		{Name: "tmp", Bytes: 1 << 16, Phase: 0},
		{Name: "out", Bytes: 1 << 16, Phase: 1},
	}
}

func TestPlanPLM(t *testing.T) {
	bufs := testBuffers()
	if got := PlanPLM(bufs, false); got != 3<<16 {
		t.Errorf("unshared PLM = %d, want %d", got, 3<<16)
	}
	if got := PlanPLM(bufs, true); got != 2<<16 {
		t.Errorf("shared PLM = %d, want %d (max phase)", got, 2<<16)
	}
	if PlanPLM(nil, true) != 0 {
		t.Error("empty buffer list must be 0")
	}
}

func TestGenerateNaive(t *testing.T) {
	d, err := Generate(streamKernel(), hls.VitisBackend{}, platform.AlveoU55C(), testBuffers(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := d.Bitstream.Config
	if cfg.Replicas != 1 || cfg.PackedElements != 1 || cfg.DoubleBuffered {
		t.Errorf("naive config wrong: %+v", cfg)
	}
	if cfg.PLMBytes != 3<<16 {
		t.Errorf("naive PLM = %d, want unshared sum", cfg.PLMBytes)
	}
	if len(d.HostCode) == 0 {
		t.Error("host driver code must be generated")
	}
}

func TestGenerateReplication(t *testing.T) {
	opt := Options{Replicate: true, MaxReplicas: 8, SharePLM: true}
	d, err := Generate(streamKernel(), hls.VitisBackend{}, platform.AlveoU55C(), testBuffers(), opt)
	if err != nil {
		t.Fatal(err)
	}
	cfg := d.Bitstream.Config
	if cfg.Replicas < 2 {
		t.Errorf("replication should fit more than 1 instance, got %d", cfg.Replicas)
	}
	if cfg.Lanes != cfg.Replicas {
		t.Errorf("each replica should get a lane: lanes=%d replicas=%d", cfg.Lanes, cfg.Replicas)
	}
	if !d.Bitstream.TotalResources().FitsIn(platform.AlveoU55C().Capacity) {
		t.Error("generated system must fit the device")
	}
}

func TestGeneratePacking(t *testing.T) {
	opt := Options{PackData: true}
	d, err := Generate(streamKernel(), hls.VitisBackend{}, platform.AlveoU55C(), nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	// f32 elements on a 256-bit HBM port: 8 per beat.
	if got := d.Bitstream.Config.PackedElements; got != 8 {
		t.Errorf("packed elements = %d, want 8", got)
	}
}

func TestGenerateRejectsOversized(t *testing.T) {
	huge := streamKernel()
	huge.Nest.Body.Special = 500 // enormous datapath
	_, err := Generate(huge, hls.VitisBackend{}, platform.CloudFPGA(), nil, Options{})
	if err == nil {
		t.Error("oversized kernel must fail generation")
	}
}

func TestAblationLadderImprovesThroughput(t *testing.T) {
	// The E3 experiment in miniature: each ladder step must not regress,
	// and the full ladder must deliver a clear win over naive.
	dev := platform.AlveoU55C()
	wl := platform.Workload{BytesIn: 1 << 28, BytesOut: 1 << 28, Batches: 8}
	var prev float64
	var first, last float64
	for i, step := range AblationLadder(8) {
		d, err := Generate(streamKernel(), hls.VitisBackend{}, dev, testBuffers(), step.Opt)
		if err != nil {
			t.Fatalf("%s: %v", step.Label, err)
		}
		tl, err := platform.Execute(dev, d.Bitstream, wl)
		if err != nil {
			t.Fatalf("%s: %v", step.Label, err)
		}
		thr := platform.Throughput(wl, tl)
		if i == 0 {
			first = thr
		}
		last = thr
		if i > 0 && thr < prev*0.99 {
			t.Errorf("step %s regressed throughput: %.3g < %.3g", step.Label, thr, prev)
		}
		prev = thr
	}
	if last < first*2 {
		t.Errorf("full ladder speedup %.2fx, want >= 2x", last/first)
	}
}

func TestEmitModule(t *testing.T) {
	opt := Options{Replicate: true, MaxReplicas: 4, SharePLM: true, DoubleBuffer: true}
	d, err := Generate(streamKernel(), hls.BambuBackend{}, platform.AlveoU55C(), testBuffers(), opt)
	if err != nil {
		t.Fatal(err)
	}
	m, err := EmitModule(d)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.CountOps("olympus.kernel_inst"); got != d.Bitstream.Config.Replicas {
		t.Errorf("kernel_inst count %d, want %d", got, d.Bitstream.Config.Replicas)
	}
	if m.CountOps("olympus.bus") != 1 || m.CountOps("olympus.plm") != 1 {
		t.Error("bus/plm ops missing")
	}
	text := m.String()
	if !strings.Contains(text, "olympus.system") {
		t.Error("printed module missing olympus.system")
	}
}

func TestHostDriverShape(t *testing.T) {
	opt := Options{Replicate: true, MaxReplicas: 2, DoubleBuffer: true}
	d, err := Generate(streamKernel(), hls.VitisBackend{}, platform.AlveoU55C(), nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	code := strings.Join(d.HostCode, "\n")
	if !strings.Contains(code, "load_xclbin") {
		t.Error("driver must load the bitstream")
	}
	if !strings.Contains(code, "double-buffered") {
		t.Error("driver must note double buffering")
	}
	if !strings.Contains(code, "run0.wait()") {
		t.Error("driver must wait for kernels")
	}
}

func TestReserveFabricShrinksReplicas(t *testing.T) {
	base := Options{Replicate: true, MaxReplicas: 8}
	reserved := Options{Replicate: true, MaxReplicas: 8, ReserveFabric: 0.9}
	d1, err := Generate(streamKernel(), hls.VitisBackend{}, platform.AlveoU55C(), nil, base)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Generate(streamKernel(), hls.VitisBackend{}, platform.AlveoU55C(), nil, reserved)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Bitstream.Config.Replicas > d1.Bitstream.Config.Replicas {
		t.Error("reserving fabric must not increase replicas")
	}
}
