package olympus

import (
	"everest/internal/mlir"
	"everest/internal/mlir/dialects"
)

// EmitModule renders a Design as an olympus-dialect MLIR module (the form
// of Fig. 5's "Coordination, integration, backend" layer). The module
// verifies under the registered dialects.
func EmitModule(d *Design) (*mlir.Module, error) {
	ctx := mlir.NewContext()
	dialects.RegisterAll(ctx)
	m := mlir.NewModule(ctx, d.Bitstream.ID)
	b := mlir.NewBuilder(ctx, m.Body())

	sys := b.CreateWithRegions("olympus.system", nil, nil, map[string]mlir.Attribute{
		"sym_name": mlir.StringAttr(d.Bitstream.ID),
		"target":   mlir.StringAttr(d.Bitstream.Target),
	}, 1)
	sb := mlir.NewBuilder(ctx, sys.Regions[0].Entry())

	cfg := d.Bitstream.Config
	bus := sb.Create("olympus.bus", nil, []mlir.Type{mlir.StreamType{Elem: mlir.F64()}},
		map[string]mlir.Attribute{
			"width":  mlir.IntAttr(cfg.BusWidthBits),
			"lanes":  mlir.IntAttr(cfg.Lanes),
			"packed": mlir.IntAttr(cfg.PackedElements),
		})

	var plm *mlir.Op
	if cfg.PLMBytes > 0 {
		words := cfg.PLMBytes * 8 / int64(d.Bitstream.ElemBits)
		if words < 1 {
			words = 1
		}
		plm = sb.Create("olympus.plm", nil,
			[]mlir.Type{mlir.MemRefOf(mlir.F64(), "plm", int(words))},
			map[string]mlir.Attribute{
				"words":  mlir.IntAttr(words),
				"width":  mlir.IntAttr(d.Bitstream.ElemBits),
				"shared": mlir.BoolAttr(cfg.PLMShared),
				"double": mlir.BoolAttr(cfg.DoubleBuffered),
			})
	}

	for r := 0; r < cfg.Replicas; r++ {
		operands := []*mlir.Value{bus.Result(0)}
		if plm != nil {
			operands = append(operands, plm.Result(0))
		}
		sb.Create("olympus.kernel_inst", operands, nil, map[string]mlir.Attribute{
			"kernel": mlir.StringAttr(d.Bitstream.Kernel),
			"lane":   mlir.IntAttr(r % cfg.Lanes),
		})
	}
	sb.Create("olympus.done", nil, nil, nil)

	if err := m.Verify(); err != nil {
		return nil, err
	}
	return m, nil
}
