package hls

import (
	"fmt"

	"everest/internal/base2"
	"everest/internal/ekl"
	"everest/internal/mlir"
)

// FromModule extracts HLS kernels from a lowered EKL module (one kernel per
// teil-lowered statement op). The op mix is read from the teil loop bodies;
// trip counts come from the recorded bounds.
func FromModule(m *mlir.Module, format base2.Format) []Kernel {
	var kernels []Kernel
	i := 0
	m.Walk(func(op *mlir.Op) {
		if !mlir.GetBool(op.Attrs, "teil.lowered", false) {
			return
		}
		bounds, _ := op.Attrs["bounds"].(mlir.ArrayAttr)
		nest := LoopNest{}
		for _, b := range bounds {
			if ia, ok := b.(mlir.IntAttr); ok && ia > 0 {
				nest.TripCounts = append(nest.TripCounts, int(ia))
			}
		}
		if len(nest.TripCounts) == 0 {
			nest.TripCounts = []int{1}
		}
		var mix OpMix
		for _, region := range op.Regions {
			for _, blk := range region.Blocks {
				for _, nested := range blk.Ops {
					switch nested.FullName() {
					case "teil.load":
						mix.Loads++
					case "teil.store":
						mix.Stores++
					case "teil.accumulate":
						mix.Adds++
						nest.Reduction = true
					case "teil.binary":
						switch mlir.GetString(nested.Attrs, "fn", "*") {
						case "+", "-":
							mix.Adds++
						case "/":
							mix.Divs++
						case "<", "<=", ">", ">=", "==", "!=":
							mix.Compares++
						default:
							mix.Muls++
						}
					case "teil.unary":
						mix.Special++
					}
				}
			}
		}
		if op.Is("ekl.gather") {
			mix.Gathers++
		}
		if op.Is("ekl.select") {
			mix.Compares++
		}
		nest.Body = mix
		name := mlir.GetString(op.Attrs, "name", "")
		if name == "" {
			name = op.FullName()
		}
		kernels = append(kernels, Kernel{
			Name:   nameWithIndex(name, i),
			Nest:   nest,
			Format: format,
		})
		i++
	})
	return kernels
}

// FromEKLKernel builds one fused HLS kernel directly from an EKL kernel and
// its executed trace: the loop nest of the dominant (largest iteration
// space) statement, with the op mix aggregated from the whole kernel body.
// This matches how the SDK offloads a kernel as a single accelerator.
func FromEKLKernel(k *ekl.Kernel, res *ekl.Result, format base2.Format) Kernel {
	var nest LoopNest
	var domTrips int64 = -1
	for _, info := range res.Trace {
		var counts []int
		trips := int64(1)
		for _, ix := range info.Free {
			counts = append(counts, info.Extents[ix])
			trips *= int64(info.Extents[ix])
		}
		for _, ix := range info.SumIdx {
			counts = append(counts, info.Extents[ix])
			trips *= int64(info.Extents[ix])
		}
		if trips > domTrips {
			domTrips = trips
			nest.TripCounts = counts
			nest.Reduction = len(info.SumIdx) > 0
		}
	}
	if len(nest.TripCounts) == 0 {
		nest.TripCounts = []int{1}
	}

	var mix OpMix
	for _, s := range k.Stmts {
		countOps(s.RHS, &mix)
		mix.Stores++
	}
	nest.Body = mix

	var bufBytes int64
	elemBytes := int64((format.Bits() + 7) / 8)
	for _, in := range k.Inputs {
		if t, ok := res.All[in.Name]; ok {
			bufBytes += int64(t.Size()) * elemBytes
		}
	}
	for _, out := range k.Outputs {
		if t, ok := res.All[out.Name]; ok {
			bufBytes += int64(t.Size()) * elemBytes
		}
	}

	return Kernel{Name: k.Name, Nest: nest, Format: format, BufferBytes: bufBytes}
}

func countOps(e ekl.Expr, mix *OpMix) {
	switch t := e.(type) {
	case ekl.NumberLit, ekl.IdentRef:
	case ekl.SubscriptExpr:
		trivial := true
		for _, ix := range t.Indices {
			if _, ok := ix.(ekl.IdentRef); !ok {
				trivial = false
			}
			countOps(ix, mix)
		}
		if trivial {
			mix.Loads++
		} else {
			mix.Gathers++
		}
	case ekl.BinaryExpr:
		switch t.Op {
		case "+", "-":
			mix.Adds++
		case "*":
			mix.Muls++
		case "/":
			mix.Divs++
		default:
			mix.Compares++
		}
		countOps(t.L, mix)
		countOps(t.R, mix)
	case ekl.UnaryExpr:
		mix.Adds++
		countOps(t.X, mix)
	case ekl.CallExpr:
		if t.Fn == "select" || t.Fn == "min" || t.Fn == "max" {
			mix.Compares++
		} else {
			mix.Special++
		}
		for _, a := range t.Args {
			countOps(a, mix)
		}
	case ekl.SumExpr:
		mix.Adds++
		countOps(t.Body, mix)
	case ekl.PairExpr:
		countOps(t.A, mix)
		countOps(t.B, mix)
	}
}

func nameWithIndex(name string, i int) string {
	if name == "" {
		name = "kernel"
	}
	return fmt.Sprintf("%s_%d", name, i)
}
