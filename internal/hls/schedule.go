package hls

import (
	"fmt"
	"math"
)

// Schedule synthesizes a kernel under the given directives with the given
// backend and returns the latency/resource report.
//
// Model (classic HLS analysis):
//
//   - The per-iteration datapath latency assumes balanced-tree chaining:
//     a product of m factors takes ceil(log2 m) multiplier levels, the sums
//     one adder tree, plus serial divides/specials and one load/store level.
//   - Unpipelined loops pay the full iteration latency every trip.
//   - Pipelined loops achieve latency (trips-1)*II + depth, where II is
//     bounded below by (a) memory port pressure ceil(accesses/ports),
//     (b) the reduction recurrence (accumulator feedback = add latency,
//     1 for single-cycle formats), and (c) the requested TargetII.
//   - Unrolling by U replicates the datapath U times (resources scale) and
//     divides the trip count; memory pressure scales with U as well, so
//     unrolling beyond the port budget stops helping — the motivation for
//     Olympus bus lanes (experiment E3).
func Schedule(k Kernel, d Directives, b Backend) (Report, error) {
	if len(k.Nest.TripCounts) == 0 {
		return Report{}, fmt.Errorf("hls: kernel %q has an empty loop nest", k.Name)
	}
	for _, t := range k.Nest.TripCounts {
		if t <= 0 {
			return Report{}, fmt.Errorf("hls: kernel %q has non-positive trip count %d", k.Name, t)
		}
	}
	if !b.SupportsFormat(k.Format) {
		return Report{}, fmt.Errorf("hls: backend %q does not support format %s", b.Name(), k.Format.Name())
	}
	unroll := d.Unroll
	if unroll < 1 {
		unroll = 1
	}
	inner := k.Nest.TripCounts[len(k.Nest.TripCounts)-1]
	if unroll > inner {
		unroll = inner
	}
	memPorts := d.MemPorts
	if memPorts <= 0 {
		memPorts = 2
	}

	mix := k.Nest.Body
	depth := iterationDepth(mix, k, b)

	// Effective per-iteration work after unrolling: U iterations of the
	// innermost loop issue at once, so the innermost trip count shrinks by U
	// (ceil for the remainder) on EVERY outer iteration — the remainder
	// cannot amortize across the nest, since each outer iteration restarts
	// the innermost loop and pays its own partial group.
	trips := k.Nest.Trips()
	outer := trips / int64(inner)
	effInner := int64(ceilDiv(inner, unroll))
	effTrips := outer * effInner

	accesses := (mix.Loads + mix.Stores + 2*mix.Gathers) * unroll
	memII := ceilDiv(accesses, memPorts)

	var latency, wcet int64
	ii := 0
	if d.PipelineEnabled {
		recII := 1
		if k.Nest.Reduction {
			// The accumulator feedback path bounds II at the add latency.
			recII = b.Cost(OpAdd, k.Format).Latency
		}
		ii = maxInt(1, maxInt(memII, recII))
		if d.TargetII > ii {
			ii = d.TargetII
		}
		latency = (effTrips-1)*int64(ii) + int64(depth)
		// Worst case: the pipeline cannot overlap across outer-loop
		// boundaries (each outer iteration drains before the next fills) and
		// every boundary costs one control cycle. When II exceeds depth+1
		// the flush model would undercut the steady-state expression, so the
		// bound is floored at the achieved latency.
		wcet = outer*((effInner-1)*int64(ii)+int64(depth)) + (outer - 1)
		if wcet < latency {
			wcet = latency
		}
	} else {
		// Sequential: every iteration pays the full depth plus one cycle of
		// loop control; there is no overlap to lose, so the schedule is its
		// own worst case.
		latency = effTrips * int64(depth+1)
		wcet = latency
	}

	res := datapathResources(mix, k, b).Scale(unroll)
	// Control and buffering overhead.
	res = res.Add(Resources{LUT: 300 + 50*len(k.Nest.TripCounts), FF: 400})
	res = res.Add(Resources{BRAM: bramBlocks(k.BufferBytes)})

	return Report{
		Kernel:       k.Name,
		Backend:      b.Name(),
		LatencyCycle: latency,
		WCETCycle:    wcet,
		II:           ii,
		IterLatency:  depth,
		Resources:    res,
		ClockMHz:     b.ClockMHz(k.Format),
		Directives:   d,
	}, nil
}

// iterationDepth estimates the pipeline depth of one iteration.
func iterationDepth(mix OpMix, k Kernel, b Backend) int {
	addLat := b.Cost(OpAdd, k.Format).Latency
	mulLat := b.Cost(OpMul, k.Format).Latency
	divLat := b.Cost(OpDiv, k.Format).Latency
	cmpLat := b.Cost(OpCmp, k.Format).Latency
	spLat := b.Cost(OpSpecial, k.Format).Latency
	ldLat := b.Cost(OpLoad, k.Format).Latency

	depth := ldLat // operand fetch level
	if mix.Gathers > 0 {
		depth += ldLat // dependent address adds a serial level
	}
	if mix.Muls > 0 {
		depth += treeLevels(mix.Muls) * mulLat
	}
	if mix.Adds > 0 {
		depth += treeLevels(mix.Adds) * addLat
	}
	depth += mix.Divs * divLat
	if mix.Compares > 0 {
		depth += cmpLat
	}
	depth += mix.Special * spLat
	if mix.Stores > 0 {
		depth += ldLat
	}
	if depth < 1 {
		depth = 1
	}
	return depth
}

// treeLevels returns ceil(log2(n+1)): the depth of a balanced operator tree
// combining n operators.
func treeLevels(n int) int {
	if n <= 0 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(n + 1))))
}

// datapathResources sums operator resources for one datapath copy.
func datapathResources(mix OpMix, k Kernel, b Backend) Resources {
	var r Resources
	addRes := func(op OpClass, n int) {
		if n <= 0 {
			return
		}
		r = r.Add(b.Cost(op, k.Format).Res.Scale(n))
	}
	addRes(OpAdd, mix.Adds)
	addRes(OpMul, mix.Muls)
	addRes(OpDiv, mix.Divs)
	addRes(OpCmp, mix.Compares)
	addRes(OpSpecial, mix.Special)
	addRes(OpLoad, mix.Loads+mix.Gathers)
	addRes(OpStore, mix.Stores)
	return r
}

// bramBlocks converts a buffer footprint to BRAM18 blocks (2 KiB each).
func bramBlocks(bytes int64) int {
	if bytes <= 0 {
		return 0
	}
	return int((bytes + 2047) / 2048)
}

// BestDirectives searches the small directive space (pipeline on/off,
// unroll in powers of two up to maxUnroll) for the lowest-latency
// configuration that fits within the resource budget. It returns the chosen
// directives and report.
func BestDirectives(k Kernel, b Backend, budget Resources, maxUnroll int) (Report, error) {
	if maxUnroll < 1 {
		maxUnroll = 1
	}
	var best Report
	found := false
	for _, pipe := range []bool{false, true} {
		for u := 1; u <= maxUnroll; u *= 2 {
			rep, err := Schedule(k, Directives{PipelineEnabled: pipe, Unroll: u}, b)
			if err != nil {
				return Report{}, err
			}
			if !rep.Resources.FitsIn(budget) {
				continue
			}
			if !found || rep.LatencyCycle < best.LatencyCycle {
				best = rep
				found = true
			}
		}
	}
	if !found {
		return Report{}, fmt.Errorf("hls: kernel %q does not fit in the resource budget %s", k.Name, budget)
	}
	return best, nil
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
