package hls

import (
	"math/rand"
	"testing"
	"testing/quick"

	"everest/internal/base2"
	"everest/internal/ekl"
	"everest/internal/tensor"
)

// sweepFormats is the base2 format ladder the WCET soundness tests sweep:
// the E4 fixed/minifloat ladder plus posits (bambu-only).
func sweepFormats(t testing.TB) []base2.Format {
	fx412, err := base2.NewFixedFormat(4, 12)
	if err != nil {
		t.Fatal(err)
	}
	fx1616, err := base2.NewFixedFormat(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	posit16, err := base2.NewPositFormat(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	posit32, err := base2.NewPositFormat(32, 2)
	if err != nil {
		t.Fatal(err)
	}
	return []base2.Format{
		base2.Float64{}, base2.Float32{},
		base2.FP16(), base2.BF16(), base2.FP8E4M3(),
		fx412, fx1616, posit16, posit32,
	}
}

// checkWCET asserts the Report bound invariants: a positive bound that
// dominates the achieved latency, with equality for sequential schedules
// (nothing overlaps, so the schedule is its own worst case).
func checkWCET(t *testing.T, rep Report) {
	t.Helper()
	if rep.WCETCycle <= 0 {
		t.Fatalf("%s: WCETCycle = %d, must be positive", rep.Kernel, rep.WCETCycle)
	}
	if rep.LatencyCycle > rep.WCETCycle {
		t.Fatalf("%s: LatencyCycle %d exceeds WCETCycle %d (dir %+v)",
			rep.Kernel, rep.LatencyCycle, rep.WCETCycle, rep.Directives)
	}
	if !rep.Directives.PipelineEnabled && rep.LatencyCycle != rep.WCETCycle {
		t.Fatalf("%s: sequential schedule must be its own worst case: latency %d, wcet %d",
			rep.Kernel, rep.LatencyCycle, rep.WCETCycle)
	}
	if rep.WCETSeconds() < rep.TimeSeconds() {
		t.Fatalf("%s: WCETSeconds %.3g below TimeSeconds %.3g", rep.Kernel, rep.WCETSeconds(), rep.TimeSeconds())
	}
}

// TestUnrollRemainderPerOuterIteration is the regression test for the
// effective-trip-count bug: with TripCounts=[3,10] and Unroll=4, every one
// of the 3 outer iterations pays its own ceil(10/4)=3 unrolled groups — 9
// effective trips — where the old global ceil(30/4)=8 silently amortized
// the innermost remainder across outer iterations.
func TestUnrollRemainderPerOuterIteration(t *testing.T) {
	k := Kernel{
		Name: "rem",
		Nest: LoopNest{
			TripCounts: []int{3, 10},
			Body:       OpMix{Adds: 1, Muls: 1, Loads: 2, Stores: 1},
		},
		Format: base2.Float32{},
	}
	b := VitisBackend{}

	seq, err := Schedule(k, Directives{Unroll: 4}, b)
	if err != nil {
		t.Fatal(err)
	}
	depth := int64(seq.IterLatency)
	if want := 9 * (depth + 1); seq.LatencyCycle != want {
		t.Errorf("sequential latency = %d, want %d (= 3 outer x ceil(10/4) trips x (depth+1))",
			seq.LatencyCycle, want)
	}

	pipe, err := Schedule(k, Directives{PipelineEnabled: true, Unroll: 4, MemPorts: 16}, b)
	if err != nil {
		t.Fatal(err)
	}
	ii := int64(pipe.II)
	if want := (9-1)*ii + int64(pipe.IterLatency); pipe.LatencyCycle != want {
		t.Errorf("pipelined latency = %d, want %d (9 effective trips)", pipe.LatencyCycle, want)
	}
}

// TestWCETPipelinedFormula pins the pipelined bound shape: zero overlap
// across outer-loop boundaries plus one control cycle per boundary.
func TestWCETPipelinedFormula(t *testing.T) {
	k := Kernel{
		Name: "nest",
		Nest: LoopNest{
			TripCounts: []int{3, 10},
			Body:       OpMix{Adds: 1, Muls: 1, Loads: 2, Stores: 1},
		},
		Format: base2.Float32{},
	}
	rep, err := Schedule(k, Directives{PipelineEnabled: true}, VitisBackend{})
	if err != nil {
		t.Fatal(err)
	}
	ii, depth := int64(rep.II), int64(rep.IterLatency)
	want := 3*((10-1)*ii+depth) + 2
	if rep.WCETCycle != want {
		t.Errorf("WCETCycle = %d, want %d (3 fills of a 10-trip pipeline + 2 boundary cycles)",
			rep.WCETCycle, want)
	}
	checkWCET(t, rep)

	// A single loop has no outer boundaries: the bound collapses onto the
	// achieved latency.
	flat := Kernel{Name: "flat", Nest: LoopNest{TripCounts: []int{30}, Body: k.Nest.Body}, Format: base2.Float32{}}
	frep, err := Schedule(flat, Directives{PipelineEnabled: true}, VitisBackend{})
	if err != nil {
		t.Fatal(err)
	}
	if frep.WCETCycle != frep.LatencyCycle {
		t.Errorf("single-loop WCET = %d, want latency %d", frep.WCETCycle, frep.LatencyCycle)
	}
}

// TestWCETInvariantBase2Sweep sweeps the base2 format ladder, both
// backends, and the directive grid over remainder-heavy nests: every
// producible schedule must satisfy LatencyCycle <= WCETCycle.
func TestWCETInvariantBase2Sweep(t *testing.T) {
	nests := []LoopNest{
		{TripCounts: []int{1024}, Body: OpMix{Adds: 1, Muls: 1, Loads: 2, Stores: 1}},
		{TripCounts: []int{3, 10}, Body: OpMix{Adds: 2, Muls: 1, Loads: 3, Stores: 1}},
		{TripCounts: []int{7, 13}, Body: OpMix{Adds: 1, Muls: 2, Divs: 1, Loads: 2}, Reduction: true},
		{TripCounts: []int{2, 3, 5}, Body: OpMix{Adds: 1, Special: 1, Gathers: 1, Loads: 1, Stores: 1}},
		{TripCounts: []int{1}, Body: OpMix{Compares: 1, Loads: 1, Stores: 1}},
	}
	for _, format := range sweepFormats(t) {
		for _, b := range []Backend{VitisBackend{}, BambuBackend{}} {
			if !b.SupportsFormat(format) {
				continue
			}
			for ni, nest := range nests {
				for _, pipe := range []bool{false, true} {
					for _, u := range []int{1, 2, 4, 8} {
						for _, ports := range []int{2, 8} {
							k := Kernel{Name: format.Name(), Nest: nest, Format: format}
							rep, err := Schedule(k, Directives{PipelineEnabled: pipe, Unroll: u, MemPorts: ports}, b)
							if err != nil {
								t.Fatalf("nest %d %s/%s: %v", ni, b.Name(), format.Name(), err)
							}
							checkWCET(t, rep)
						}
					}
				}
			}
		}
	}
}

// TestWCETInvariantProperty drives randomized nests and directives through
// Schedule and checks the bound invariant on every result.
func TestWCETInvariantProperty(t *testing.T) {
	formats := sweepFormats(t)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := 1 + rng.Intn(3)
		counts := make([]int, dims)
		for i := range counts {
			counts[i] = 1 + rng.Intn(50)
		}
		k := Kernel{
			Name: "fuzz",
			Nest: LoopNest{
				TripCounts: counts,
				Body: OpMix{
					Adds: rng.Intn(4), Muls: rng.Intn(4), Divs: rng.Intn(2),
					Compares: rng.Intn(2), Special: rng.Intn(2),
					Loads: rng.Intn(4), Stores: rng.Intn(2), Gathers: rng.Intn(2),
				},
				Reduction: rng.Intn(2) == 0,
			},
			Format:      formats[rng.Intn(len(formats))],
			BufferBytes: int64(rng.Intn(1 << 16)),
		}
		d := Directives{
			PipelineEnabled: rng.Intn(2) == 0,
			TargetII:        rng.Intn(4),
			Unroll:          1 + rng.Intn(16),
			MemPorts:        1 + rng.Intn(16),
		}
		b := Backend(VitisBackend{})
		if rng.Intn(2) == 0 {
			b = BambuBackend{}
		}
		rep, err := Schedule(k, d, b)
		if err != nil {
			return !b.SupportsFormat(k.Format) // only the format gate may refuse
		}
		return rep.WCETCycle > 0 && rep.LatencyCycle <= rep.WCETCycle
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestBestDirectivesWCETInvariant: the directive search may pick any point
// in its grid, so the chosen schedule must carry a sound bound too.
func TestBestDirectivesWCETInvariant(t *testing.T) {
	budget := Resources{LUT: 200000, FF: 300000, DSP: 500, BRAM: 200}
	for _, format := range sweepFormats(t) {
		for _, b := range []Backend{VitisBackend{}, BambuBackend{}} {
			if !b.SupportsFormat(format) {
				continue
			}
			k := Kernel{
				Name:   "best-" + format.Name(),
				Nest:   LoopNest{TripCounts: []int{5, 23}, Body: OpMix{Adds: 1, Muls: 1, Loads: 2, Stores: 1}},
				Format: format,
			}
			rep, err := BestDirectives(k, b, budget, 8)
			if err != nil {
				t.Fatalf("%s/%s: %v", b.Name(), format.Name(), err)
			}
			checkWCET(t, rep)
		}
	}
}

// TestWCETFromEKLKernels runs the ekl fuzz corpus' concrete-shape kernels
// end to end — parse, execute, convert via FromEKLKernel, search directives
// — and checks the bound invariant on every derived schedule.
func TestWCETFromEKLKernels(t *testing.T) {
	cases := []struct {
		src     string
		tensors map[string][]int
	}{
		{matmulSrc, map[string][]int{"a": {8, 16}, "b": {16, 4}}},
		{"kernel k {\n  input a : [4]\n  y = a[i] + 1\n  output y\n}\n",
			map[string][]int{"a": {4}}},
		{"kernel acc {\n  input a : [6]\n  s = 0\n  s += sum(i) exp(a[i])\n  output s\n}\n",
			map[string][]int{"a": {6}}},
	}
	budget := Resources{LUT: 400000, FF: 600000, DSP: 1000, BRAM: 500}
	for ci, c := range cases {
		k, err := ekl.ParseKernel(c.src)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		rng := rand.New(rand.NewSource(int64(ci)))
		bind := ekl.Binding{Tensors: map[string]*tensor.Tensor{}}
		for name, shape := range c.tensors {
			bind.Tensors[name] = tensor.Random(rng, -1, 1, shape...)
		}
		res, err := k.Run(bind)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		for _, format := range sweepFormats(t) {
			hk := FromEKLKernel(k, res, format)
			for _, b := range []Backend{VitisBackend{}, BambuBackend{}} {
				if !b.SupportsFormat(format) {
					continue
				}
				rep, err := BestDirectives(hk, b, budget, 8)
				if err != nil {
					t.Fatalf("case %d %s/%s: %v", ci, b.Name(), format.Name(), err)
				}
				checkWCET(t, rep)
			}
		}
	}
}

// FuzzScheduleWCET fuzzes the raw schedule space: arbitrary nests, op
// mixes, and directives must never produce a schedule whose achieved
// latency exceeds its proven bound.
func FuzzScheduleWCET(f *testing.F) {
	f.Add(3, 10, 1, 1, 2, 1, true, false, 4, 16, uint8(0))
	f.Add(7, 13, 2, 1, 3, 0, false, true, 1, 2, uint8(3))
	f.Add(1, 1, 0, 0, 1, 1, true, true, 16, 1, uint8(7))
	f.Fuzz(func(t *testing.T, outer, inner, adds, muls, loads, stores int,
		pipe, reduction bool, unroll, ports int, fsel uint8) {
		if outer <= 0 || inner <= 0 || outer > 1<<20 || inner > 1<<20 {
			t.Skip()
		}
		clamp := func(v, hi int) int {
			if v < 0 {
				return 0
			}
			if v > hi {
				return hi
			}
			return v
		}
		formats := sweepFormats(t)
		format := formats[int(fsel)%len(formats)]
		k := Kernel{
			Name: "fuzz",
			Nest: LoopNest{
				TripCounts: []int{outer, inner},
				Body: OpMix{
					Adds: clamp(adds, 64), Muls: clamp(muls, 64),
					Loads: clamp(loads, 64), Stores: clamp(stores, 64),
				},
				Reduction: reduction,
			},
			Format: format,
		}
		d := Directives{PipelineEnabled: pipe, Unroll: clamp(unroll, 1<<16), MemPorts: clamp(ports, 1<<10)}
		for _, b := range []Backend{VitisBackend{}, BambuBackend{}} {
			if !b.SupportsFormat(format) {
				continue
			}
			rep, err := Schedule(k, d, b)
			if err != nil {
				t.Fatalf("schedule: %v", err)
			}
			if rep.WCETCycle <= 0 || rep.LatencyCycle > rep.WCETCycle {
				t.Fatalf("bound violated: latency %d, wcet %d (dir %+v)",
					rep.LatencyCycle, rep.WCETCycle, d)
			}
		}
	})
}
