package hls

import (
	"math/rand"
	"testing"
	"testing/quick"

	"everest/internal/base2"
	"everest/internal/ekl"
	"everest/internal/mlir"
	"everest/internal/tensor"
)

func vecKernel(format base2.Format, n int) Kernel {
	return Kernel{
		Name: "axpy",
		Nest: LoopNest{
			TripCounts: []int{n},
			Body:       OpMix{Adds: 1, Muls: 1, Loads: 2, Stores: 1},
		},
		Format: format,
	}
}

func dotKernel(format base2.Format, n int) Kernel {
	return Kernel{
		Name: "dot",
		Nest: LoopNest{
			TripCounts: []int{n},
			Body:       OpMix{Adds: 1, Muls: 1, Loads: 2},
			Reduction:  true,
		},
		Format: format,
	}
}

func TestScheduleValidation(t *testing.T) {
	b := VitisBackend{}
	if _, err := Schedule(Kernel{Name: "empty", Format: base2.Float64{}}, Directives{}, b); err == nil {
		t.Error("empty loop nest must fail")
	}
	bad := vecKernel(base2.Float64{}, 8)
	bad.Nest.TripCounts = []int{0}
	if _, err := Schedule(bad, Directives{}, b); err == nil {
		t.Error("zero trip count must fail")
	}
	posit, _ := base2.NewPositFormat(16, 1)
	if _, err := Schedule(vecKernel(posit, 8), Directives{}, VitisBackend{}); err == nil {
		t.Error("vitis must reject posit formats")
	}
	if _, err := Schedule(vecKernel(posit, 8), Directives{}, BambuBackend{}); err != nil {
		t.Errorf("bambu must accept posit formats: %v", err)
	}
}

func TestPipeliningImprovesLatency(t *testing.T) {
	k := vecKernel(base2.Float64{}, 1024)
	b := VitisBackend{}
	seq, err := Schedule(k, Directives{}, b)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := Schedule(k, Directives{PipelineEnabled: true}, b)
	if err != nil {
		t.Fatal(err)
	}
	if pipe.LatencyCycle >= seq.LatencyCycle {
		t.Errorf("pipelining must reduce latency: %d vs %d", pipe.LatencyCycle, seq.LatencyCycle)
	}
	if pipe.II < 1 {
		t.Error("pipelined kernel must report II >= 1")
	}
	// Speedup should approach the iteration depth for long loops.
	speedup := float64(seq.LatencyCycle) / float64(pipe.LatencyCycle)
	if speedup < 3 {
		t.Errorf("pipeline speedup %.2f too small for a 1024-trip loop", speedup)
	}
}

func TestReductionBoundsII(t *testing.T) {
	b := VitisBackend{}
	red, err := Schedule(dotKernel(base2.Float64{}, 512), Directives{PipelineEnabled: true}, b)
	if err != nil {
		t.Fatal(err)
	}
	addLat := b.Cost(OpAdd, base2.Float64{}).Latency
	if red.II < addLat {
		t.Errorf("float reduction II = %d, must be >= add latency %d", red.II, addLat)
	}
	// Fixed-point accumulators are single cycle: II can be 1.
	fx, _ := base2.NewFixedFormat(16, 16)
	redFx, err := Schedule(dotKernel(fx, 512), Directives{PipelineEnabled: true}, b)
	if err != nil {
		t.Fatal(err)
	}
	if redFx.II != 1 {
		t.Errorf("fixed-point reduction II = %d, want 1", redFx.II)
	}
}

func TestUnrollTradesResourcesForLatency(t *testing.T) {
	k := vecKernel(base2.Float32{}, 4096)
	b := VitisBackend{}
	base, _ := Schedule(k, Directives{PipelineEnabled: true}, b)
	un4, err := Schedule(k, Directives{PipelineEnabled: true, Unroll: 4, MemPorts: 16}, b)
	if err != nil {
		t.Fatal(err)
	}
	if un4.LatencyCycle >= base.LatencyCycle {
		t.Errorf("unroll with ports must cut latency: %d vs %d", un4.LatencyCycle, base.LatencyCycle)
	}
	if un4.Resources.DSP <= base.Resources.DSP {
		t.Error("unroll must increase DSP usage")
	}
	// Without extra ports, memory pressure caps the win.
	un4starved, _ := Schedule(k, Directives{PipelineEnabled: true, Unroll: 4, MemPorts: 2}, b)
	if un4starved.II <= un4.II {
		t.Errorf("port starvation must raise II: %d vs %d", un4starved.II, un4.II)
	}
}

func TestFixedCheaperThanF64(t *testing.T) {
	fx, _ := base2.NewFixedFormat(8, 8)
	for _, b := range []Backend{VitisBackend{}, BambuBackend{}} {
		f64, _ := Schedule(vecKernel(base2.Float64{}, 1024), Directives{PipelineEnabled: true}, b)
		fxd, _ := Schedule(vecKernel(fx, 1024), Directives{PipelineEnabled: true}, b)
		if fxd.IterLatency >= f64.IterLatency {
			t.Errorf("%s: fixed16 depth %d must beat f64 depth %d", b.Name(), fxd.IterLatency, f64.IterLatency)
		}
		if fxd.Resources.LUT >= f64.Resources.LUT {
			t.Errorf("%s: fixed16 LUTs %d must beat f64 LUTs %d", b.Name(), fxd.Resources.LUT, f64.Resources.LUT)
		}
		if fxd.ClockMHz <= f64.ClockMHz {
			t.Errorf("%s: fixed16 clock must exceed f64 clock", b.Name())
		}
	}
}

func TestBackendsDiffer(t *testing.T) {
	k := vecKernel(base2.Float64{}, 256)
	v, _ := Schedule(k, Directives{PipelineEnabled: true}, VitisBackend{})
	bb, _ := Schedule(k, Directives{PipelineEnabled: true}, BambuBackend{})
	if v.Resources.DSP <= bb.Resources.DSP {
		t.Error("vitis should be more DSP-hungry than bambu for float")
	}
	if bb.Resources.LUT <= v.Resources.LUT {
		t.Error("bambu should be more LUT-hungry than vitis for float")
	}
}

func TestBestDirectives(t *testing.T) {
	k := vecKernel(base2.Float32{}, 4096)
	budget := Resources{LUT: 200000, FF: 300000, DSP: 100, BRAM: 100}
	rep, err := BestDirectives(k, VitisBackend{}, budget, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Directives.PipelineEnabled {
		t.Error("best configuration should enable pipelining")
	}
	if !rep.Resources.FitsIn(budget) {
		t.Error("chosen configuration must fit the budget")
	}
	// Impossible budget must error.
	if _, err := BestDirectives(k, VitisBackend{}, Resources{LUT: 10}, 8); err == nil {
		t.Error("impossible budget must error")
	}
}

func TestResourcesHelpers(t *testing.T) {
	a := Resources{LUT: 10, FF: 20, DSP: 2, BRAM: 1}
	b := a.Scale(3)
	if b.LUT != 30 || b.DSP != 6 {
		t.Error("Scale wrong")
	}
	c := a.Add(b)
	if c.FF != 80 {
		t.Error("Add wrong")
	}
	cap := Resources{LUT: 100, FF: 100, DSP: 10, BRAM: 10}
	if !a.FitsIn(cap) || c.FitsIn(Resources{LUT: 1}) {
		t.Error("FitsIn wrong")
	}
	if u := a.Utilization(cap); u != 0.2 {
		t.Errorf("Utilization = %v, want 0.2 (DSP-bound)", u)
	}
}

func TestLatencyMonotoneInTripsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 16 + rng.Intn(1000)
		k1 := vecKernel(base2.Float32{}, n)
		k2 := vecKernel(base2.Float32{}, n*2)
		for _, d := range []Directives{{}, {PipelineEnabled: true}} {
			r1, err1 := Schedule(k1, d, VitisBackend{})
			r2, err2 := Schedule(k2, d, VitisBackend{})
			if err1 != nil || err2 != nil || r2.LatencyCycle <= r1.LatencyCycle {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBackendByName(t *testing.T) {
	if b, err := BackendByName("VITIS"); err != nil || b.Name() != "vitis" {
		t.Error("vitis lookup failed")
	}
	if b, err := BackendByName("bambu"); err != nil || b.Name() != "bambu" {
		t.Error("bambu lookup failed")
	}
	if _, err := BackendByName("icarus"); err == nil {
		t.Error("unknown backend must error")
	}
}

const matmulSrc = `
kernel matmul {
  input a : [M, K]
  input b : [K, N]
  c = sum(k) a[i, k] * b[k, j]
  output c[i, j]
}
`

func TestFromEKLKernel(t *testing.T) {
	k, err := ekl.ParseKernel(matmulSrc)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	bind := ekl.Binding{Tensors: map[string]*tensor.Tensor{
		"a": tensor.Random(rng, -1, 1, 8, 16),
		"b": tensor.Random(rng, -1, 1, 16, 4),
	}}
	res, err := k.Run(bind)
	if err != nil {
		t.Fatal(err)
	}
	hk := FromEKLKernel(k, res, base2.Float32{})
	if got := hk.Nest.Trips(); got != 8*16*4 {
		t.Errorf("trip count %d, want 512", got)
	}
	if !hk.Nest.Reduction {
		t.Error("matmul must be detected as a reduction")
	}
	if hk.Nest.Body.Muls == 0 || hk.Nest.Body.Loads == 0 {
		t.Errorf("op mix missing ops: %+v", hk.Nest.Body)
	}
	if hk.BufferBytes == 0 {
		t.Error("buffer footprint must be nonzero")
	}
	if _, err := Schedule(hk, Directives{PipelineEnabled: true}, VitisBackend{}); err != nil {
		t.Errorf("schedule of EKL-derived kernel failed: %v", err)
	}
}

func TestFromModule(t *testing.T) {
	k, err := ekl.ParseKernel(matmulSrc)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	bind := ekl.Binding{Tensors: map[string]*tensor.Tensor{
		"a": tensor.Random(rng, -1, 1, 4, 8),
		"b": tensor.Random(rng, -1, 1, 8, 4),
	}}
	m, _, err := ekl.Lower(k, bind)
	if err != nil {
		t.Fatal(err)
	}
	pm := mlir.NewPassManager().Add(ekl.LowerToTeIL())
	if err := pm.Run(m); err != nil {
		t.Fatal(err)
	}
	kernels := FromModule(m, base2.Float32{})
	if len(kernels) == 0 {
		t.Fatal("FromModule found no kernels")
	}
	found := false
	for _, hk := range kernels {
		if hk.Nest.Reduction && hk.Nest.Trips() >= 4*4*8 {
			found = true
		}
		if _, err := Schedule(hk, Directives{PipelineEnabled: true}, BambuBackend{}); err != nil {
			t.Errorf("schedule(%s): %v", hk.Name, err)
		}
	}
	if !found {
		t.Error("no kernel captured the full matmul iteration space")
	}
}
