// Package hls models the high-level-synthesis stage of the EVEREST SDK
// (paper §IV): turning loop-nest kernels into hardware implementations with
// predictable latency and resource usage.
//
// The paper's SDK drives two real HLS engines — AMD Vitis HLS and the
// open-source Bambu compiler [6] — behind one interface. This package keeps
// that structure: a Backend supplies per-operator latency/resource cost
// tables (calibrated to the public characteristics of each tool: Vitis maps
// arithmetic onto DSP slices aggressively, Bambu generates LUT-heavier
// datapaths and supports custom formats like posits natively), and Schedule
// applies classic HLS scheduling: loop pipelining with an initiation
// interval bounded by resource pressure and reduction recurrences, optional
// unrolling, and balanced-tree operator chaining.
//
// The output Report is what Olympus (system generation) and the platform
// simulator consume; absolute cycle counts are model values, but the
// relations the experiments check (pipelining wins, fixed-point is cheaper
// than fp64, unrolling trades DSPs for latency) follow from the same
// mechanics that drive the real tools.
package hls

import (
	"fmt"
	"math"

	"everest/internal/base2"
)

// OpMix counts the operations of one innermost-loop iteration.
type OpMix struct {
	Adds     int // additions/subtractions
	Muls     int // multiplications
	Divs     int // divisions
	Compares int // comparisons/selects
	Special  int // exp/log/sqrt-class operators
	Loads    int // memory reads
	Stores   int // memory writes
	Gathers  int // data-dependent (irregular) reads
}

// Total returns the total arithmetic operation count (excluding memory).
func (m OpMix) Total() int { return m.Adds + m.Muls + m.Divs + m.Compares + m.Special }

// LoopNest is a perfect loop nest with the per-iteration operation mix.
type LoopNest struct {
	TripCounts []int // outermost first
	Body       OpMix
	// Reduction marks the innermost loop as a reduction (loop-carried
	// dependence through an accumulator), which bounds the pipeline II.
	Reduction bool
}

// Trips returns the product of all trip counts.
func (n LoopNest) Trips() int64 {
	t := int64(1)
	for _, c := range n.TripCounts {
		t *= int64(c)
	}
	return t
}

// Kernel is the unit of HLS compilation.
type Kernel struct {
	Name   string
	Nest   LoopNest
	Format base2.Format // datapath number format
	// BufferBytes is the total on-chip buffer footprint the kernel needs
	// (PLMs); Olympus may later share or double them.
	BufferBytes int64
}

// Directives are the synthesis knobs (the "pragmas").
type Directives struct {
	PipelineEnabled bool
	TargetII        int // 0 means "best achievable"
	Unroll          int // innermost unroll factor; 0/1 means none
	MemPorts        int // concurrent memory ports available; 0 means 2
}

// Resources is the FPGA resource vector.
type Resources struct {
	LUT  int
	FF   int
	DSP  int
	BRAM int // BRAM18 blocks
}

// Add returns the component-wise sum.
func (r Resources) Add(o Resources) Resources {
	return Resources{LUT: r.LUT + o.LUT, FF: r.FF + o.FF, DSP: r.DSP + o.DSP, BRAM: r.BRAM + o.BRAM}
}

// Scale returns the resource vector multiplied by k.
func (r Resources) Scale(k int) Resources {
	return Resources{LUT: r.LUT * k, FF: r.FF * k, DSP: r.DSP * k, BRAM: r.BRAM * k}
}

// FitsIn reports whether r fits within capacity c.
func (r Resources) FitsIn(c Resources) bool {
	return r.LUT <= c.LUT && r.FF <= c.FF && r.DSP <= c.DSP && r.BRAM <= c.BRAM
}

// Utilization returns the maximum fractional utilization across resource
// classes (1.0 = a class fully used).
func (r Resources) Utilization(c Resources) float64 {
	u := 0.0
	if c.LUT > 0 {
		u = math.Max(u, float64(r.LUT)/float64(c.LUT))
	}
	if c.FF > 0 {
		u = math.Max(u, float64(r.FF)/float64(c.FF))
	}
	if c.DSP > 0 {
		u = math.Max(u, float64(r.DSP)/float64(c.DSP))
	}
	if c.BRAM > 0 {
		u = math.Max(u, float64(r.BRAM)/float64(c.BRAM))
	}
	return u
}

func (r Resources) String() string {
	return fmt.Sprintf("LUT=%d FF=%d DSP=%d BRAM=%d", r.LUT, r.FF, r.DSP, r.BRAM)
}

// Report is the synthesis result for one kernel.
type Report struct {
	Kernel       string
	Backend      string
	LatencyCycle int64 // total kernel latency in cycles
	// WCETCycle is the proven worst-case execution time of the schedule in
	// cycles: the pipelined latency with zero overlap across outer-loop
	// boundaries plus one control cycle per boundary (JUNIPER-style
	// schedule-derived bound). Invariant: LatencyCycle <= WCETCycle.
	WCETCycle   int64
	II          int // achieved initiation interval (0 if not pipelined)
	IterLatency int // latency of one iteration (pipeline depth)
	Resources   Resources
	ClockMHz    float64
	Directives  Directives
}

// TimeSeconds converts the cycle latency to seconds at the achieved clock.
func (r Report) TimeSeconds() float64 {
	return float64(r.LatencyCycle) / (r.ClockMHz * 1e6)
}

// WCETSeconds converts the worst-case cycle bound to seconds at the
// achieved clock.
func (r Report) WCETSeconds() float64 {
	return float64(r.WCETCycle) / (r.ClockMHz * 1e6)
}

func (r Report) String() string {
	return fmt.Sprintf("%s[%s]: %d cycles (II=%d, depth=%d) @%.0fMHz, %s",
		r.Kernel, r.Backend, r.LatencyCycle, r.II, r.IterLatency, r.ClockMHz, r.Resources)
}
