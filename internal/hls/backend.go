package hls

import (
	"fmt"
	"strings"

	"everest/internal/base2"
)

// OpClass identifies an operator class for costing.
type OpClass int

// Operator classes.
const (
	OpAdd OpClass = iota
	OpMul
	OpDiv
	OpCmp
	OpSpecial // exp/log/sqrt
	OpLoad
	OpStore
)

// OpCost is the latency (cycles) and resource footprint of one operator
// instance.
type OpCost struct {
	Latency int
	Res     Resources
}

// Backend supplies the per-operator cost model of one HLS tool.
type Backend interface {
	// Name identifies the backend ("vitis", "bambu").
	Name() string
	// Cost returns the cost of an operator in the given number format.
	Cost(op OpClass, f base2.Format) OpCost
	// ClockMHz is the achievable clock for a datapath in format f.
	ClockMHz(f base2.Format) float64
	// SupportsFormat reports whether the backend can synthesize format f
	// natively (the paper: Bambu integrates custom formats smoothly).
	SupportsFormat(f base2.Format) bool
}

// formatClass buckets formats for the cost tables.
type formatClass int

const (
	fcF64 formatClass = iota
	fcF32
	fcF16 // fp16/bf16/fp8
	fcFixed
	fcPosit
)

func classOf(f base2.Format) formatClass {
	switch ff := f.(type) {
	case base2.Float64:
		return fcF64
	case base2.Float32:
		return fcF32
	case base2.MiniFloat:
		return fcF16
	case base2.FixedFormat:
		return fcFixed
	case base2.PositFormat:
		return fcPosit
	default:
		_ = ff
		return fcF64
	}
}

// widthScale scales LUT/FF costs with the storage width relative to 32 bit.
func widthScale(f base2.Format, base int) int {
	w := f.Bits()
	v := base * w / 32
	if v < 1 {
		v = 1
	}
	return v
}

// VitisBackend models AMD Vitis HLS: DSP-first mapping of arithmetic,
// floating point via DSP macros, no native posit support (posit datapaths
// must go through Bambu, matching the paper's tool split).
type VitisBackend struct{}

// Name implements Backend.
func (VitisBackend) Name() string { return "vitis" }

// SupportsFormat implements Backend.
func (VitisBackend) SupportsFormat(f base2.Format) bool {
	return classOf(f) != fcPosit
}

// ClockMHz implements Backend.
func (VitisBackend) ClockMHz(f base2.Format) float64 {
	switch classOf(f) {
	case fcF64:
		return 300
	case fcF32:
		return 333
	case fcF16:
		return 350
	case fcFixed:
		return 400
	default:
		return 250
	}
}

// Cost implements Backend.
func (VitisBackend) Cost(op OpClass, f base2.Format) OpCost {
	fc := classOf(f)
	switch op {
	case OpAdd:
		switch fc {
		case fcF64:
			return OpCost{8, Resources{LUT: 800, FF: 1000, DSP: 3}}
		case fcF32:
			return OpCost{5, Resources{LUT: 400, FF: 500, DSP: 2}}
		case fcF16:
			return OpCost{4, Resources{LUT: 250, FF: 300, DSP: 1}}
		case fcFixed:
			return OpCost{1, Resources{LUT: widthScale(f, 40), FF: widthScale(f, 40)}}
		default:
			return OpCost{6, Resources{LUT: 1200, FF: 900}}
		}
	case OpMul:
		switch fc {
		case fcF64:
			return OpCost{9, Resources{LUT: 500, FF: 800, DSP: 11}}
		case fcF32:
			return OpCost{4, Resources{LUT: 250, FF: 400, DSP: 3}}
		case fcF16:
			return OpCost{3, Resources{LUT: 150, FF: 250, DSP: 1}}
		case fcFixed:
			return OpCost{2, Resources{LUT: widthScale(f, 30), FF: widthScale(f, 60), DSP: dspForFixed(f)}}
		default:
			return OpCost{7, Resources{LUT: 1500, FF: 1100, DSP: 2}}
		}
	case OpDiv:
		switch fc {
		case fcF64:
			return OpCost{36, Resources{LUT: 3000, FF: 3500, DSP: 0}}
		case fcF32:
			return OpCost{16, Resources{LUT: 1500, FF: 1800}}
		case fcF16:
			return OpCost{10, Resources{LUT: 800, FF: 900}}
		case fcFixed:
			return OpCost{f.Bits() + 3, Resources{LUT: widthScale(f, 120), FF: widthScale(f, 150)}}
		default:
			return OpCost{30, Resources{LUT: 4000, FF: 3000}}
		}
	case OpCmp:
		return OpCost{1, Resources{LUT: widthScale(f, 20), FF: widthScale(f, 10)}}
	case OpSpecial:
		switch fc {
		case fcF64:
			return OpCost{26, Resources{LUT: 4000, FF: 5000, DSP: 26}}
		case fcF32:
			return OpCost{14, Resources{LUT: 2000, FF: 2500, DSP: 12}}
		default:
			return OpCost{12, Resources{LUT: 1800, FF: 2000, DSP: 6}}
		}
	case OpLoad, OpStore:
		return OpCost{2, Resources{LUT: 30, FF: 60}}
	}
	return OpCost{1, Resources{LUT: 10}}
}

func dspForFixed(f base2.Format) int {
	// A DSP48 multiplies 18x27; wider fixed products cascade DSPs.
	w := f.Bits()
	switch {
	case w <= 18:
		return 1
	case w <= 27:
		return 2
	default:
		return 4
	}
}

// BambuBackend models the Bambu open-source HLS compiler (paper ref [6]):
// LUT-oriented datapaths, slightly deeper float pipelines, and native
// support for custom formats (posit, arbitrary fixed) through its soft-float
// and template libraries.
type BambuBackend struct{}

// Name implements Backend.
func (BambuBackend) Name() string { return "bambu" }

// SupportsFormat implements Backend.
func (BambuBackend) SupportsFormat(f base2.Format) bool { return true }

// ClockMHz implements Backend.
func (BambuBackend) ClockMHz(f base2.Format) float64 {
	switch classOf(f) {
	case fcF64:
		return 250
	case fcF32:
		return 280
	case fcF16:
		return 300
	case fcFixed:
		return 380
	default:
		return 260 // posit datapaths are competitive in Bambu
	}
}

// Cost implements Backend.
func (BambuBackend) Cost(op OpClass, f base2.Format) OpCost {
	fc := classOf(f)
	switch op {
	case OpAdd:
		switch fc {
		case fcF64:
			return OpCost{10, Resources{LUT: 1400, FF: 1500}}
		case fcF32:
			return OpCost{6, Resources{LUT: 700, FF: 800}}
		case fcF16:
			return OpCost{4, Resources{LUT: 400, FF: 450}}
		case fcFixed:
			return OpCost{1, Resources{LUT: widthScale(f, 40), FF: widthScale(f, 40)}}
		default: // posit: regime decode + align + add + round
			return OpCost{5, Resources{LUT: widthScale(f, 900), FF: widthScale(f, 700)}}
		}
	case OpMul:
		switch fc {
		case fcF64:
			return OpCost{11, Resources{LUT: 900, FF: 1200, DSP: 9}}
		case fcF32:
			return OpCost{5, Resources{LUT: 450, FF: 600, DSP: 2}}
		case fcF16:
			return OpCost{3, Resources{LUT: 250, FF: 350, DSP: 1}}
		case fcFixed:
			return OpCost{2, Resources{LUT: widthScale(f, 35), FF: widthScale(f, 70), DSP: dspForFixed(f)}}
		default: // posit
			return OpCost{6, Resources{LUT: widthScale(f, 800), FF: widthScale(f, 600), DSP: 1}}
		}
	case OpDiv:
		switch fc {
		case fcFixed:
			return OpCost{f.Bits() + 4, Resources{LUT: widthScale(f, 130), FF: widthScale(f, 160)}}
		case fcPosit:
			return OpCost{f.Bits() + 8, Resources{LUT: widthScale(f, 1200), FF: widthScale(f, 900)}}
		case fcF64:
			return OpCost{40, Resources{LUT: 4500, FF: 4000}}
		default:
			return OpCost{20, Resources{LUT: 2200, FF: 2000}}
		}
	case OpCmp:
		return OpCost{1, Resources{LUT: widthScale(f, 22), FF: widthScale(f, 12)}}
	case OpSpecial:
		switch fc {
		case fcF64:
			return OpCost{30, Resources{LUT: 6000, FF: 6000, DSP: 12}}
		default:
			return OpCost{16, Resources{LUT: 3000, FF: 3000, DSP: 5}}
		}
	case OpLoad, OpStore:
		return OpCost{2, Resources{LUT: 35, FF: 70}}
	}
	return OpCost{1, Resources{LUT: 12}}
}

// BackendByName resolves "vitis" or "bambu".
func BackendByName(name string) (Backend, error) {
	switch strings.ToLower(name) {
	case "vitis":
		return VitisBackend{}, nil
	case "bambu":
		return BambuBackend{}, nil
	default:
		return nil, fmt.Errorf("hls: unknown backend %q (want vitis or bambu)", name)
	}
}
