package hls

import (
	"testing"

	"everest/internal/base2"
)

// Resource-constrained scheduling on small dataflow graphs: these tests
// pin the exact II and latency arithmetic (memory-port pressure, the
// reduction recurrence, the TargetII floor, and unroll clamping), which is
// what the variant pipeline's fpga operating points are derived from.

func fixed16(t *testing.T) base2.Format {
	t.Helper()
	f, err := base2.NewFixedFormat(4, 12)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestMemoryPortPressureBoundsII(t *testing.T) {
	// Fixed-point add latency is 1, so with no reduction the II is purely
	// the memory floor: ceil(accesses / ports).
	k := Kernel{
		Name:   "ports",
		Nest:   LoopNest{TripCounts: []int{100}, Body: OpMix{Adds: 1, Loads: 4, Stores: 2}},
		Format: fixed16(t),
	}
	cases := []struct {
		name   string
		ports  int
		wantII int
	}{
		{"default 2 ports", 0, 3}, // ceil(6/2)
		{"2 ports explicit", 2, 3},
		{"3 ports", 3, 2}, // ceil(6/3)
		{"6 ports", 6, 1},
		{"8 ports saturate at II=1", 8, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := Schedule(k, Directives{PipelineEnabled: true, MemPorts: tc.ports}, VitisBackend{})
			if err != nil {
				t.Fatal(err)
			}
			if rep.II != tc.wantII {
				t.Fatalf("II = %d, want %d", rep.II, tc.wantII)
			}
			wantLatency := int64(100-1)*int64(tc.wantII) + int64(rep.IterLatency)
			if rep.LatencyCycle != wantLatency {
				t.Fatalf("latency = %d, want (trips-1)*II+depth = %d", rep.LatencyCycle, wantLatency)
			}
		})
	}
}

func TestGathersCountDoubleAgainstPorts(t *testing.T) {
	// A gather is a dependent load: address fetch plus data fetch, two
	// memory transactions against the port budget.
	k := Kernel{
		Name:   "gather",
		Nest:   LoopNest{TripCounts: []int{64}, Body: OpMix{Adds: 1, Gathers: 2}},
		Format: fixed16(t),
	}
	rep, err := Schedule(k, Directives{PipelineEnabled: true, MemPorts: 2}, VitisBackend{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.II != 2 { // ceil(2*2/2)
		t.Fatalf("II = %d, want 2", rep.II)
	}
}

func TestReductionRecurrenceVsPortFloor(t *testing.T) {
	// With a reduction, the accumulator feedback bounds the II at the add
	// latency even when the memory system is wide open.
	k := Kernel{
		Name:   "dot",
		Nest:   LoopNest{TripCounts: []int{256}, Body: OpMix{Adds: 1, Muls: 1, Loads: 2}, Reduction: true},
		Format: base2.Float32{},
	}
	rep, err := Schedule(k, Directives{PipelineEnabled: true, MemPorts: 16}, VitisBackend{})
	if err != nil {
		t.Fatal(err)
	}
	addLat := VitisBackend{}.Cost(OpAdd, base2.Float32{}).Latency
	if rep.II != addLat {
		t.Fatalf("II = %d, want f32 add latency %d", rep.II, addLat)
	}
	// The same nest in fixed point has a single-cycle accumulate: II = 1.
	k.Format = fixed16(t)
	rep, err = Schedule(k, Directives{PipelineEnabled: true, MemPorts: 16}, VitisBackend{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.II != 1 {
		t.Fatalf("fixed-point II = %d, want 1", rep.II)
	}
}

func TestTargetIIIsAFloor(t *testing.T) {
	k := Kernel{
		Name:   "floor",
		Nest:   LoopNest{TripCounts: []int{32}, Body: OpMix{Adds: 1, Loads: 1, Stores: 1}},
		Format: fixed16(t),
	}
	rep, err := Schedule(k, Directives{PipelineEnabled: true, TargetII: 7}, VitisBackend{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.II != 7 {
		t.Fatalf("II = %d, want requested floor 7", rep.II)
	}
	// A target below the achievable II does not lie about the result.
	rep, err = Schedule(k, Directives{PipelineEnabled: true, TargetII: 1, MemPorts: 1}, VitisBackend{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.II != 2 { // ceil(2 accesses / 1 port)
		t.Fatalf("II = %d, want memory floor 2 despite TargetII=1", rep.II)
	}
}

func TestUnrollClampsToInnerTripCount(t *testing.T) {
	k := Kernel{
		Name:   "clamp",
		Nest:   LoopNest{TripCounts: []int{10, 4}, Body: OpMix{Adds: 1, Loads: 1}},
		Format: fixed16(t),
	}
	wide, err := Schedule(k, Directives{PipelineEnabled: true, Unroll: 64, MemPorts: 64}, VitisBackend{})
	if err != nil {
		t.Fatal(err)
	}
	clamped, err := Schedule(k, Directives{PipelineEnabled: true, Unroll: 4, MemPorts: 64}, VitisBackend{})
	if err != nil {
		t.Fatal(err)
	}
	if wide.LatencyCycle != clamped.LatencyCycle || wide.Resources != clamped.Resources {
		t.Fatalf("unroll 64 over a 4-trip inner loop should equal unroll 4: %v vs %v", wide, clamped)
	}
}

func TestBestDirectivesRespectsTightBudget(t *testing.T) {
	k := Kernel{
		Name:   "budget",
		Nest:   LoopNest{TripCounts: []int{128}, Body: OpMix{Adds: 2, Muls: 2, Loads: 3, Stores: 1}},
		Format: base2.Float32{},
	}
	loose, err := BestDirectives(k, VitisBackend{}, Resources{LUT: 1 << 20, FF: 1 << 21, DSP: 9024, BRAM: 4032}, 8)
	if err != nil {
		t.Fatal(err)
	}
	// A budget that only admits the un-unrolled datapath forces a slower
	// but fitting schedule.
	single, err := Schedule(k, Directives{PipelineEnabled: true}, VitisBackend{})
	if err != nil {
		t.Fatal(err)
	}
	tight := single.Resources
	constrained, err := BestDirectives(k, VitisBackend{}, tight, 8)
	if err != nil {
		t.Fatal(err)
	}
	if constrained.Directives.Unroll > 1 {
		t.Fatalf("tight budget admitted unroll %d", constrained.Directives.Unroll)
	}
	if constrained.LatencyCycle < loose.LatencyCycle {
		t.Fatalf("constrained schedule (%d cycles) cannot beat the loose one (%d)",
			constrained.LatencyCycle, loose.LatencyCycle)
	}
	// And a budget below even that admits nothing.
	if _, err := BestDirectives(k, VitisBackend{}, Resources{LUT: 10}, 8); err == nil {
		t.Fatal("expected no-fit error for a 10-LUT budget")
	}
}
