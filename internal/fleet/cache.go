package fleet

import "everest/internal/platform"

// bitstreamCache is one site's bounded set of resident bitstreams. Each
// entry records the device slot holding the deployed artifact; capacity is
// the number of bitstreams the site may keep resident at once, so filling
// it forces a genuine eviction — the victim's slot is unprogrammed and a
// later request for it pays a full redeploy. Eviction order is LRU over a
// monotonic use sequence, which makes the victim deterministic (no two
// entries share a sequence number).
//
// A slot is either a whole device (region < 0, the classic path: the
// victim's device is unprogrammed outright) or one partial-reconfiguration
// region of a device (region >= 0, Config.PartialReconfig: several slots
// share a card and evicting one clears only that region). occupied() is
// what keeps the two granularities from clobbering each other: a
// whole-device entry blocks every region of its card and vice versa.
//
// The cache itself is not synchronized; the owning site's mutex guards it
// (the site worker mutates, the router peeks).
type cacheSlot struct {
	id     string
	node   *platform.Node
	dev    int
	region int   // PR region slot, or -1 for a whole-device program
	use    int64 // last-touch sequence
}

// unprogram frees the slot's fabric share: the whole device for a classic
// slot, just the region for a per-region one.
func (s *cacheSlot) unprogram() {
	if s.region < 0 {
		_, _ = s.node.Unprogram(s.dev)
		return
	}
	_, _ = s.node.UnprogramRegion(s.dev, s.region)
}

type bitstreamCache struct {
	slots int
	seq   int64
	m     map[string]*cacheSlot
}

func newBitstreamCache(slots int) *bitstreamCache {
	if slots < 1 {
		slots = 1
	}
	return &bitstreamCache{slots: slots, m: make(map[string]*cacheSlot)}
}

func (c *bitstreamCache) len() int { return len(c.m) }

// get returns the slot holding id and refreshes its recency.
func (c *bitstreamCache) get(id string) (*cacheSlot, bool) {
	s, ok := c.m[id]
	if ok {
		c.seq++
		s.use = c.seq
	}
	return s, ok
}

// peek returns the slot holding id without touching recency (router cost
// estimates must not perturb LRU order).
func (c *bitstreamCache) peek(id string) (*cacheSlot, bool) {
	s, ok := c.m[id]
	return s, ok
}

// add records a freshly deployed bitstream as most recently used. An id
// that is already resident refreshes in place: when the new deployment
// landed on a different slot, the stale slot is unprogrammed first —
// otherwise it would stay programmed with no cache entry pointing at it
// while occupied() kept reporting the dead slot forever.
func (c *bitstreamCache) add(id string, node *platform.Node, dev, region int) {
	c.seq++
	if s, ok := c.m[id]; ok {
		if s.node != node || s.dev != dev || s.region != region {
			s.unprogram()
		}
		s.node, s.dev, s.region, s.use = node, dev, region, c.seq
		return
	}
	c.m[id] = &cacheSlot{id: id, node: node, dev: dev, region: region, use: c.seq}
}

func (c *bitstreamCache) remove(id string) { delete(c.m, id) }

// lru returns the least recently used slot, or nil when empty.
func (c *bitstreamCache) lru() *cacheSlot {
	var victim *cacheSlot
	for _, s := range c.m {
		if victim == nil || s.use < victim.use {
			victim = s
		}
	}
	return victim
}

// occupied reports whether programming (node, dev, region) would clobber a
// resident entry. A whole-device candidate (region < 0) conflicts with any
// entry on the device; a region candidate conflicts with a whole-device
// entry on the device or an entry in the same region.
func (c *bitstreamCache) occupied(node *platform.Node, dev, region int) bool {
	for _, s := range c.m {
		if s.node != node || s.dev != dev {
			continue
		}
		if region < 0 || s.region < 0 || s.region == region {
			return true
		}
	}
	return false
}
