package fleet

import "everest/internal/platform"

// bitstreamCache is one site's bounded set of resident bitstreams. Each
// entry records the device slot holding the deployed artifact; capacity is
// the number of bitstreams the site may keep resident at once, so filling
// it forces a genuine eviction — the victim's device is unprogrammed and a
// later request for it pays a full redeploy. Eviction order is LRU over a
// monotonic use sequence, which makes the victim deterministic (no two
// entries share a sequence number).
//
// The cache itself is not synchronized; the owning site's mutex guards it
// (the site worker mutates, the router peeks).
type cacheSlot struct {
	id   string
	node *platform.Node
	dev  int
	use  int64 // last-touch sequence
}

type bitstreamCache struct {
	slots int
	seq   int64
	m     map[string]*cacheSlot
}

func newBitstreamCache(slots int) *bitstreamCache {
	if slots < 1 {
		slots = 1
	}
	return &bitstreamCache{slots: slots, m: make(map[string]*cacheSlot)}
}

func (c *bitstreamCache) len() int { return len(c.m) }

// get returns the slot holding id and refreshes its recency.
func (c *bitstreamCache) get(id string) (*cacheSlot, bool) {
	s, ok := c.m[id]
	if ok {
		c.seq++
		s.use = c.seq
	}
	return s, ok
}

// peek returns the slot holding id without touching recency (router cost
// estimates must not perturb LRU order).
func (c *bitstreamCache) peek(id string) (*cacheSlot, bool) {
	s, ok := c.m[id]
	return s, ok
}

// add records a freshly deployed bitstream as most recently used. An id
// that is already resident refreshes in place: when the new deployment
// landed on a different device slot, the stale device is unprogrammed
// first — otherwise it would stay programmed with no cache entry pointing
// at it while occupied() kept reporting the dead slot forever.
func (c *bitstreamCache) add(id string, node *platform.Node, dev int) {
	c.seq++
	if s, ok := c.m[id]; ok {
		if s.node != node || s.dev != dev {
			_, _ = s.node.Unprogram(s.dev)
		}
		s.node, s.dev, s.use = node, dev, c.seq
		return
	}
	c.m[id] = &cacheSlot{id: id, node: node, dev: dev, use: c.seq}
}

func (c *bitstreamCache) remove(id string) { delete(c.m, id) }

// lru returns the least recently used slot, or nil when empty.
func (c *bitstreamCache) lru() *cacheSlot {
	var victim *cacheSlot
	for _, s := range c.m {
		if victim == nil || s.use < victim.use {
			victim = s
		}
	}
	return victim
}

// occupied reports whether some cached bitstream resides on (node, dev) —
// programming over it would silently clobber a resident entry.
func (c *bitstreamCache) occupied(node *platform.Node, dev int) bool {
	for _, s := range c.m {
		if s.node == node && s.dev == dev {
			return true
		}
	}
	return false
}
