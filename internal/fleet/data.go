package fleet

import (
	"fmt"

	"everest/internal/dataset"
	"everest/internal/runtime"
)

// This file is the fleet's named data plane. Alongside the bitstream
// cache, each site keeps a bounded LRU dataset store
// (dataset.Store) of partitions it has ingested or produced. The router
// prices data locality from it — a site already holding a task's input
// partitions charges zero fetch, any other site charges the
// registry-fabric transfer of the missing ones — so compute moves to the
// data instead of the data being re-shipped. Completed workflows publish
// their output datasets back to the store, which is what lets ensemble
// members share assimilation output and traffic windows share map-match
// state across workflows.
//
// Only data *known to the federation* (placed via PlaceDataset or
// published by a completed workflow) is priced and fetched. An external
// ref no site holds is source data arriving from outside: it costs the
// same wherever the workflow lands, so it adds a constant to every
// candidate and is dropped from the argmin — which keeps workloads that
// name their sources but never share them priced exactly like the
// anonymous-bytes path.

// DatasetReads lists the workflow's external dataset reads: partitions
// read by some task but written by none (intra-workflow intermediates
// are already priced by the engine's transfer model). Order is first-use,
// deduplicated. The region tier prices WAN staging off this set.
func DatasetReads(w *runtime.Workflow) []dataset.Ref { return datasetReads(w) }

// datasetReads collects external reads with the same linear-scan dedup as
// bitstreamNeeds: workflows read a handful of partitions, and legacy
// workflows (no refs anywhere) must allocate nothing.
func datasetReads(w *runtime.Workflow) []dataset.Ref {
	var writes []dataset.Key
	w.Range(func(t *runtime.TaskSpec) bool {
		for _, r := range t.Writes {
			writes = append(writes, r.Key())
		}
		return true
	})
	var out []dataset.Ref
	w.Range(func(t *runtime.TaskSpec) bool {
	reads:
		for _, r := range t.Reads {
			k := r.Key()
			for _, wk := range writes {
				if wk == k {
					continue reads
				}
			}
			for _, o := range out {
				if o.Key() == k {
					continue reads
				}
			}
			out = append(out, r)
		}
		return true
	})
	return out
}

// knownReads filters reads down to partitions the federation holds
// somewhere (placed or published). Returns nil when none are known, so
// legacy submissions stay allocation-free past this point.
func (f *Fleet) knownReads(reads []dataset.Ref) []dataset.Ref {
	if len(reads) == 0 {
		return nil
	}
	var out []dataset.Ref
	f.catMu.RLock()
	for _, r := range reads {
		if f.catalog[r.Key()] {
			out = append(out, r)
		}
	}
	f.catMu.RUnlock()
	return out
}

// catalogAdd records partitions as known to the federation.
func (f *Fleet) catalogAdd(refs []dataset.Ref) {
	if len(refs) == 0 {
		return
	}
	f.catMu.Lock()
	for _, r := range refs {
		f.catalog[r.Key()] = true
	}
	f.catMu.Unlock()
}

// PlaceDataset seeds partitions into site i's dataset store at modelled
// time at — the ingest step a scenario runs before serving (scattering
// k-means point partitions across the fleet, staging a shared feature
// table). Placement is free: the data is assumed to land through the
// ingest plane, not the serving queue. The partitions become known to the
// federation, so routing prices their locality from then on.
func (f *Fleet) PlaceDataset(i int, at float64, refs ...dataset.Ref) error {
	if i < 0 || i >= len(f.sites) {
		return fmt.Errorf("fleet: site %d outside [0, %d)", i, len(f.sites))
	}
	s := f.sites[i]
	s.mu.Lock()
	for _, r := range refs {
		evicted := s.dstore.Publish(dataset.Version{
			Ref: r, Time: at, Workflow: "(placed)", Task: "(placed)",
		})
		s.stats.DatasetPublished++
		s.stats.DatasetPublishedBytes += r.Bytes
		s.stats.DatasetEvictions += len(evicted)
	}
	s.mu.Unlock()
	f.catalogAdd(refs)
	return nil
}

// DatasetResident reports whether site i currently holds the partition
// (tests and scenario assertions; does not perturb LRU order).
func (f *Fleet) DatasetResident(i int, r dataset.Ref) bool {
	if i < 0 || i >= len(f.sites) {
		return false
	}
	s := f.sites[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dstore.Holds(r)
}

// fetchData stages the workflow's admission-time known reads (w.reads,
// the snapshot Submit filtered through the catalog) that the site does
// not hold, charging the registry-fabric transfer for each and admitting
// the fetched copies into the site store. Returns the modelled fetch
// stall and the shipped bytes. Resident partitions cost nothing — that is
// the locality win the router priced. The snapshot, not a serve-time
// catalog read, decides what is fetched: a partition published between
// admission and serve must not change this workflow's charges, or the
// numbers would depend on completion interleaving.
func (f *Fleet) fetchData(s *site, w work, at float64) (float64, int64) {
	if len(w.reads) == 0 {
		return 0, 0
	}
	total, shipped := 0.0, int64(0)
	var evs *[]Event
	if f.cfg.Trace != nil {
		evs = evPool.Get().(*[]Event)
		defer func() {
			*evs = (*evs)[:0]
			evPool.Put(evs)
		}()
	}
	s.mu.Lock()
	for _, r := range w.reads {
		if s.dstore.Contains(r) {
			s.stats.DatasetHits++
			continue
		}
		s.stats.DatasetMisses++
		dt := f.cfg.RegistryNet.SendSeconds(r.Bytes)
		evicted := s.dstore.Publish(dataset.Version{
			Ref: r, Time: at + total, Workflow: w.t.Name, Task: "(fetch)",
		})
		s.stats.DatasetFetches++
		s.stats.DatasetFetchedBytes += r.Bytes
		s.stats.DatasetFetchSeconds += dt
		s.stats.DatasetEvictions += len(evicted)
		shipped += r.Bytes
		if evs != nil {
			*evs = append(*evs, Event{Kind: EventDataFetch, Site: s.name, Tenant: w.t.Tenant,
				Workflow: w.t.Name, Time: at + total,
				Detail: fmt.Sprintf("%v %dB in %.4gs", r.Key(), r.Bytes, dt)})
			for _, ev := range evicted {
				*evs = append(*evs, Event{Kind: EventDataEvict, Site: s.name,
					Time: at + total, Detail: ev.Ref.Key().String()})
			}
		}
		total += dt
	}
	s.mu.Unlock()
	if evs != nil {
		f.trace(*evs...)
	}
	return total, shipped
}

// publishOutputs admits every task's Writes into the site store at the
// workflow's completion time — the cross-workflow sharing step. The
// publish is free (the data was just produced on this site); the lineage
// version records (completion, workflow, task) so concurrent publishers
// of the same name resolve by the standard tie-break.
func (f *Fleet) publishOutputs(s *site, w work, completion float64) {
	var published []dataset.Ref
	var evs *[]Event
	if f.cfg.Trace != nil {
		evs = evPool.Get().(*[]Event)
		defer func() {
			*evs = (*evs)[:0]
			evPool.Put(evs)
		}()
	}
	s.mu.Lock()
	w.wf.Range(func(t *runtime.TaskSpec) bool {
		for _, r := range t.Writes {
			evicted := s.dstore.Publish(dataset.Version{
				Ref: r, Time: completion, Workflow: w.t.Name, Task: t.Name,
			})
			s.stats.DatasetPublished++
			s.stats.DatasetPublishedBytes += r.Bytes
			s.stats.DatasetEvictions += len(evicted)
			published = append(published, r)
			if evs != nil {
				*evs = append(*evs, Event{Kind: EventDataPublish, Site: s.name,
					Tenant: w.t.Tenant, Workflow: w.t.Name, Time: completion,
					Detail: fmt.Sprintf("%v %dB by %s", r.Key(), r.Bytes, t.Name)})
				for _, ev := range evicted {
					*evs = append(*evs, Event{Kind: EventDataEvict, Site: s.name,
						Time: completion, Detail: ev.Ref.Key().String()})
				}
			}
		}
		return true
	})
	s.mu.Unlock()
	f.catalogAdd(published)
	if evs != nil {
		f.trace(*evs...)
	}
}

// fetchBound prices the worst-case data staging of a workflow's known
// reads: every partition fetched individually over the registry fabric,
// which dominates any subset the serve path actually ships (per-fetch
// pricing pays the fabric latency per partition, residency only removes
// terms, and serve fetches exactly the admission-time snapshot this
// bound covers). Guaranteed-class admission adds this to its debt, so a
// proven deadline survives a completely cold dataset store.
func (f *Fleet) fetchBound(reads []dataset.Ref) float64 {
	total := 0.0
	for _, r := range reads {
		total += f.cfg.RegistryNet.SendSeconds(r.Bytes)
	}
	return total
}
