// Package fleet is the federation tier of the EVEREST runtime: many
// independent runtime.Engine sites (each its own simulated cluster, its own
// modelled timeline) behind one front door. The paper deploys the SDK's
// runtime per cloudFPGA site (§VI); this package adds the horizontal
// dimension the north star needs — a Router shards submitted workflows
// across sites using a cost model that combines per-site queue depth
// (live, from engine-measured service times and engine stats), tenant
// affinity, and bitstream-cache locality: deploying a bitstream to a site
// is priced (registry transfer over the netsim fabric plus reconfiguration
// latency), cached deployments are free, and a bounded per-site LRU cache
// forces real eviction and redeploy traffic under churn.
//
// Time discipline: each site's engine advances its own modelled clock with
// no idle gaps (service times back to back). The fleet layers arrivals on
// top with the single-server queue recursion — a workflow routed to site s
// begins at max(arrival, site busy-until), pays its deployment stalls,
// then its engine-measured service time (the site's makespan delta), and
// the completion becomes the new busy-until. Everything is modelled
// seconds; when workflows are submitted in arrival order and awaited one
// at a time, every number is exactly deterministic across GOMAXPROCS (the
// per-site engines then serve serially, which is the regime the E-fleet
// scenario and the throughput benchmark run in). Asynchronous submission
// is also supported — futures resolve as site queues drain — at the price
// of routing against whatever live state exists at submit time.
package fleet

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"everest/internal/dataset"
	"everest/internal/netsim"
	"everest/internal/platform"
	"everest/internal/runtime"
)

// ErrSaturated is returned by Submit when admission control rejects a
// workflow because every site's modelled queue exceeds the configured
// bound. Callers detect it with errors.Is.
var ErrSaturated = errors.New("fleet: all sites saturated")

// EventKind classifies fleet trace events.
type EventKind int

// Fleet trace event kinds.
const (
	// EventRoute fires when the router assigns a workflow to a site.
	EventRoute EventKind = iota
	// EventReject fires when admission control refuses a workflow.
	EventReject
	// EventCacheHit fires when a required bitstream is already resident.
	EventCacheHit
	// EventCacheMiss fires when a required bitstream must be deployed.
	EventCacheMiss
	// EventDeploy fires after a bitstream is transferred and programmed.
	EventDeploy
	// EventEvict fires when the bounded cache unprograms a victim.
	EventEvict
	// EventRedeploy fires when a deploy re-stages a bitstream this site
	// held before — the eviction (or unplug) traffic made it pay again.
	EventRedeploy
	// EventFallback fires when no online device can host a required
	// bitstream; the workflow's FPGA tasks will run in software.
	EventFallback
	// EventDone fires when a workflow's fleet-level completion is known.
	EventDone
	// EventWarm fires when a prefetch warms a bitstream into a site cache.
	EventWarm
	// EventSiteJoin fires when a site is activated (scale-up).
	EventSiteJoin
	// EventSiteLeave fires when a site is deactivated (scale-down).
	EventSiteLeave
	// EventDataFetch fires when a missing dataset partition is shipped to
	// the serving site over the registry fabric.
	EventDataFetch
	// EventDataPublish fires when a completed workflow publishes an output
	// partition to the site's dataset store.
	EventDataPublish
	// EventDataEvict fires when the bounded dataset store evicts a
	// partition to admit another.
	EventDataEvict
)

func (k EventKind) String() string {
	switch k {
	case EventRoute:
		return "route"
	case EventReject:
		return "reject"
	case EventCacheHit:
		return "cache-hit"
	case EventCacheMiss:
		return "cache-miss"
	case EventDeploy:
		return "deploy"
	case EventEvict:
		return "evict"
	case EventRedeploy:
		return "redeploy"
	case EventFallback:
		return "fallback"
	case EventDone:
		return "done"
	case EventWarm:
		return "warm"
	case EventSiteJoin:
		return "site-join"
	case EventSiteLeave:
		return "site-leave"
	case EventDataFetch:
		return "data-fetch"
	case EventDataPublish:
		return "data-publish"
	case EventDataEvict:
		return "data-evict"
	}
	return "unknown"
}

// Event is one fleet trace record. Callbacks are serialized by the fleet
// (they may fire from site workers and from Submit), so they need no
// locking of their own; they must not call back into the Fleet.
type Event struct {
	Kind      EventKind
	Site      string
	Tenant    string
	Workflow  string
	Bitstream string
	Time      float64 // modelled seconds
	Detail    string
}

// Config configures a Fleet.
type Config struct {
	// Sites is the number of federated engine sites (>= 1).
	Sites int
	// NewCluster builds site i's cluster (required; each site owns its
	// cluster exclusively).
	NewCluster func(site int) *platform.Cluster
	// CacheSlots bounds how many bitstreams a site keeps resident
	// (default 1). Filling it evicts LRU — the victim's slot is
	// unprogrammed, so returning work pays a redeploy.
	CacheSlots int
	// PartialReconfig deploys bitstreams into per-device PR region slots
	// instead of programming whole devices: one card hosts up to
	// Device.Regions() kernels at once, deploys transfer and reconfigure
	// only a region-sized image slice, and evictions clear a single region.
	// Kernels too large for a region fall back to whole-device programming
	// on a card with no resident regions.
	PartialReconfig bool
	// Policy selects each engine's placement strategy.
	Policy runtime.Policy
	// Adaptive enables variant-aware scheduling per site engine.
	Adaptive bool
	// InitialActiveSites caps how many sites serve at Start; the rest are
	// scaled down until SetSiteActive brings them in (per-region
	// autoscaling drives this). 0 means all sites start active.
	InitialActiveSites int
	// MaxQueueSeconds is the admission bound: a site whose modelled queue
	// wait exceeds it is ineligible, and when every site is, Submit
	// rejects with ErrSaturated. 0 means unlimited.
	MaxQueueSeconds float64
	// SlowdownCap is the fleet's load contract: no node's CPU load factor
	// ever exceeds it (scripted EnvSlowdown events are validated against it
	// at New). Guaranteed-class admission multiplies software worst cases
	// by this cap, which is what lets a proven bound survive slowdown
	// faults. Default 4.
	SlowdownCap float64
	// AffinitySeconds is the routing penalty added to sites other than
	// the tenant's previous one (default 10 ms) — it keeps a tenant's
	// bitstreams co-located unless queueing or deployment costs say
	// otherwise.
	AffinitySeconds float64
	// FallbackSeconds is the routing penalty per required bitstream a
	// site cannot host on any online device (default 250 ms) — the
	// router's price for degrading that workflow's FPGA work to software.
	FallbackSeconds float64
	// Net prices intra-site transfers (per-engine semantics; nil = flat
	// cluster fabric).
	Net *netsim.Stack
	// RegistryNet prices registry→site bitstream transfers on deploys and
	// dataset-partition fetches (default the eth100g data-center fabric).
	RegistryNet *netsim.Stack
	// DatasetStoreBytes bounds each site's dataset store — the LRU of
	// named partitions it holds next to its bitstream cache. Filling it
	// evicts least-recently-used partitions, so returning readers pay a
	// refetch. Default 256 MiB; negative means unbounded.
	DatasetStoreBytes int64
	// PlacementBlind disables data-locality pricing in the router: every
	// site looks equally distant from every dataset, so workflows land by
	// queue/cache/affinity alone and missing partitions are shipped at
	// serve time. This is the contrast arm of the locality benchmark — the
	// fetch traffic is still paid, just never avoided.
	PlacementBlind bool
	// SiteEvents scripts per-site modelled-time environment faults
	// (index = site; engine EngineConfig.Events semantics).
	SiteEvents [][]runtime.EnvEvent
	// Trace, when set, receives every fleet event (serialized).
	Trace func(Event)
	// EngineTrace, when set, receives every site engine's runtime events
	// tagged with the site name, serialized with the fleet's own events
	// under the same trace mutex. With submit-and-wait driving the merged
	// stream is deterministic: exactly one site serves at any moment, so
	// engine events nest between that workflow's Route and Done events.
	EngineTrace func(site string, ev runtime.Event)
}

// Request is one workflow submission.
type Request struct {
	Tenant   string
	Name     string
	Workflow *runtime.Workflow
	// Arrival is the workflow's modelled submission time; queueing delay
	// is measured from it.
	Arrival float64
	// Guaranteed requests the proven-bound admission class: the request is
	// admitted only on a site whose modelled worst case — queue frontier,
	// estimate overhang, outstanding guaranteed debt, cold deploys, and the
	// workflow's schedule-derived service bound — fits within Deadline.
	// When no site can prove the deadline, Submit rejects with ErrSaturated
	// instead of enqueueing. Best-effort traffic is unaffected.
	Guaranteed bool
	// Deadline is the relative latency bound (modelled seconds past
	// Arrival) a guaranteed request must provably meet. Required (> 0)
	// when Guaranteed is set.
	Deadline float64
}

// Result is the fleet-level outcome of one workflow.
type Result struct {
	Sched      *runtime.Schedule
	Site       string
	Arrival    float64
	Wait       float64 // modelled queueing delay before the site picked it up
	Deploy     float64 // modelled bitstream deployment stall it paid
	Fetch      float64 // modelled dataset staging stall it paid
	Service    float64 // engine-measured service time (site makespan delta)
	Completion float64 // modelled completion (fleet timeline)
	Latency    float64 // Completion - Arrival
	// FetchedBytes counts the dataset bytes shipped over the registry
	// fabric to stage this workflow's inputs; zero when every known
	// partition was already resident (the locality win).
	FetchedBytes int64
	// Guaranteed-class fields: Bound is the admission-time worst-case
	// latency the fleet proved (relative to Arrival, <= the request's
	// deadline); zero for best-effort work.
	Guaranteed bool
	Bound      float64
}

// Ticket is the caller's handle on one routed workflow.
type Ticket struct {
	Site   string
	Tenant string
	Name   string

	done chan struct{}
	res  Result
	err  error
}

// Wait blocks until the workflow completes and returns its result.
func (t *Ticket) Wait() (Result, error) {
	<-t.done
	return t.res, t.err
}

// Done returns a channel closed when the workflow has completed.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// SiteStats snapshots one site's serving and cache state.
type SiteStats struct {
	Name    string
	Served  int
	Failed  int
	Pending int // routed but not yet completed

	CacheHits       int
	CacheMisses     int
	Evictions       int
	Redeploys       int // deploys of bitstreams this site held before
	FallbackDeploys int // required bitstreams no online device could host
	DeploySeconds   float64

	// Prefetch accounting: bitstreams staged by Warm (control-plane
	// deploys that stalled no workflow) and their modelled staging time.
	WarmDeploys int
	WarmSeconds float64

	// Dataset-store accounting: serve-time locality probes over known
	// partitions (hits read in place, misses ship), fetch traffic, publish
	// volume, and LRU evictions.
	DatasetHits           int
	DatasetMisses         int
	DatasetFetches        int
	DatasetFetchedBytes   int64
	DatasetFetchSeconds   float64
	DatasetPublished      int
	DatasetPublishedBytes int64
	DatasetEvictions      int

	// Active reports whether the site is serving (autoscaling may have
	// scaled it down, or it may still be booting at snapshot time).
	Active bool

	// Guaranteed-class accounting: completions admitted on proof, and how
	// many of them missed their promised bound (the verifier gates this at
	// exactly zero).
	Guaranteed      int
	BoundViolations int

	BusyUntil float64 // modelled completion frontier
	Engine    runtime.EngineStats
}

// Stats aggregates the fleet.
type Stats struct {
	Submitted int
	Completed int
	Failed    int
	Rejected  int
	Makespan  float64 // latest site completion frontier
	Sites     []SiteStats
}

// CacheHits sums cache hits across sites.
func (st Stats) CacheHits() int { return st.sum(func(s SiteStats) int { return s.CacheHits }) }

// CacheMisses sums cache misses across sites.
func (st Stats) CacheMisses() int { return st.sum(func(s SiteStats) int { return s.CacheMisses }) }

// Evictions sums cache evictions across sites.
func (st Stats) Evictions() int { return st.sum(func(s SiteStats) int { return s.Evictions }) }

// Redeploys sums eviction- or fault-triggered redeploys across sites.
func (st Stats) Redeploys() int { return st.sum(func(s SiteStats) int { return s.Redeploys }) }

// Guaranteed sums guaranteed-class completions across sites.
func (st Stats) Guaranteed() int { return st.sum(func(s SiteStats) int { return s.Guaranteed }) }

// BoundViolations sums guaranteed completions that missed their proven
// bound across sites — zero whenever the admission math is sound.
func (st Stats) BoundViolations() int {
	return st.sum(func(s SiteStats) int { return s.BoundViolations })
}

// WarmDeploys sums prefetch-staged bitstream deploys across sites.
func (st Stats) WarmDeploys() int { return st.sum(func(s SiteStats) int { return s.WarmDeploys }) }

// DatasetHits sums serve-time dataset residency hits across sites.
func (st Stats) DatasetHits() int { return st.sum(func(s SiteStats) int { return s.DatasetHits }) }

// DatasetFetches sums dataset-partition fetches across sites.
func (st Stats) DatasetFetches() int {
	return st.sum(func(s SiteStats) int { return s.DatasetFetches })
}

// DatasetFetchedBytes sums the dataset bytes shipped between sites — the
// traffic data-locality routing exists to avoid.
func (st Stats) DatasetFetchedBytes() int64 {
	var n int64
	for _, s := range st.Sites {
		n += s.DatasetFetchedBytes
	}
	return n
}

// DatasetPublished sums partitions published to site stores across sites.
func (st Stats) DatasetPublished() int {
	return st.sum(func(s SiteStats) int { return s.DatasetPublished })
}

// DatasetEvictions sums dataset-store LRU evictions across sites.
func (st Stats) DatasetEvictions() int {
	return st.sum(func(s SiteStats) int { return s.DatasetEvictions })
}

// ActiveSites counts sites currently serving (autoscaling state).
func (st Stats) ActiveSites() int {
	n := 0
	for _, s := range st.Sites {
		if s.Active {
			n++
		}
	}
	return n
}

func (st Stats) sum(f func(SiteStats) int) int {
	n := 0
	for _, s := range st.Sites {
		n += f(s)
	}
	return n
}

// site is one federated engine plus its fleet-side serving state.
type site struct {
	name    string
	cluster *platform.Cluster
	engine  *runtime.Engine
	q       *ticketQueue

	mu           sync.Mutex
	cache        *bitstreamCache
	dstore       *dataset.Store // named-partition LRU beside the bitstream cache
	everDeployed map[string]bool
	active       bool    // serving: the router may choose it
	activeFrom   float64 // modelled time the site became eligible (boot done)
	busyUntil    float64 // queue-recursion frontier (modelled)
	lastMakespan float64 // engine cumulative makespan after last workflow
	pending      int
	pendingG     int       // pending requests in the guaranteed class
	boundDebt    float64   // summed worst cases of pending guaranteed work
	stats        SiteStats // counter fields only; snapshots fill the rest
}

// work is one routed workflow waiting in a site's serial queue.
type work struct {
	t       *Ticket
	wf      *runtime.Workflow
	arrival float64
	needs   []string      // bitstream IDs the workflow's FPGA tasks request
	reads   []dataset.Ref // external dataset partitions the workflow reads

	// Guaranteed-class fields: the admitted deadline and proven bound
	// (relative to arrival), and the debt claimed against the site
	// (deploy bound + service bound, released on completion).
	guaranteed bool
	deadline   float64
	bound      float64
	debt       float64
}

// Fleet shards workflows across federated engine sites.
type Fleet struct {
	cfg   Config
	reg   *platform.Registry
	sites []*site

	traceMu sync.Mutex

	mu        sync.Mutex
	started   bool
	closed    bool
	lastSite  map[string]int // tenant -> previous site (affinity)
	submitted int
	rejected  int

	// catalog records every partition placed or published anywhere in the
	// federation: the set data-locality pricing and serve-time fetches are
	// scoped to (unknown refs are outside sources, equidistant from every
	// site). Guarded by its own lock — routing reads it without f.mu.
	catMu   sync.RWMutex
	catalog map[dataset.Key]bool

	workers sync.WaitGroup
}

// New builds a fleet over a shared bitstream registry. Each site gets its
// own cluster from cfg.NewCluster and its own engine; the registry is the
// federation-wide artifact store deploys transfer from.
func New(reg *platform.Registry, cfg Config) (*Fleet, error) {
	if reg == nil {
		return nil, fmt.Errorf("fleet: nil registry")
	}
	if cfg.Sites < 1 {
		return nil, fmt.Errorf("fleet: need >= 1 site, got %d", cfg.Sites)
	}
	if cfg.NewCluster == nil {
		return nil, fmt.Errorf("fleet: NewCluster builder is required")
	}
	if cfg.CacheSlots < 1 {
		cfg.CacheSlots = 1
	}
	if cfg.AffinitySeconds == 0 {
		cfg.AffinitySeconds = 0.010
	}
	if cfg.FallbackSeconds == 0 {
		cfg.FallbackSeconds = 0.250
	}
	if cfg.RegistryNet == nil {
		st := netsim.Eth100G()
		cfg.RegistryNet = &st
	}
	if cfg.SlowdownCap <= 0 {
		cfg.SlowdownCap = 4
	}
	switch {
	case cfg.DatasetStoreBytes == 0:
		cfg.DatasetStoreBytes = 256 << 20
	case cfg.DatasetStoreBytes < 0:
		cfg.DatasetStoreBytes = 0 // dataset.Store treats 0 as unbounded
	}
	if cfg.InitialActiveSites < 0 || cfg.InitialActiveSites > cfg.Sites {
		return nil, fmt.Errorf("fleet: InitialActiveSites %d outside [0, %d]",
			cfg.InitialActiveSites, cfg.Sites)
	}
	// SlowdownCap is a contract, not a wish: refuse a configuration whose
	// own scripted faults would break the bound the guaranteed class
	// admits against.
	for i, evs := range cfg.SiteEvents {
		for _, ev := range evs {
			if ev.Kind == runtime.EnvSlowdown && ev.Factor > cfg.SlowdownCap {
				return nil, fmt.Errorf("fleet: site %d scripts slowdown factor %.3g beyond SlowdownCap %.3g",
					i, ev.Factor, cfg.SlowdownCap)
			}
		}
	}
	f := &Fleet{cfg: cfg, reg: reg, lastSite: make(map[string]int),
		catalog: make(map[dataset.Key]bool)}
	for i := 0; i < cfg.Sites; i++ {
		c := cfg.NewCluster(i)
		if c == nil || len(c.Nodes) == 0 {
			return nil, fmt.Errorf("fleet: NewCluster(%d) returned an empty cluster", i)
		}
		var events []runtime.EnvEvent
		if i < len(cfg.SiteEvents) {
			events = cfg.SiteEvents[i]
		}
		siteName := fmt.Sprintf("site%02d", i)
		var engTrace func(runtime.Event)
		if cfg.EngineTrace != nil {
			engTrace = func(ev runtime.Event) {
				f.traceMu.Lock()
				defer f.traceMu.Unlock()
				f.cfg.EngineTrace(siteName, ev)
			}
		}
		s := &site{
			name:    siteName,
			cluster: c,
			q:       newTicketQueue(),
			engine: runtime.NewEngine(c, reg, runtime.EngineConfig{
				Policy: cfg.Policy, Adaptive: cfg.Adaptive,
				Events: events, Net: cfg.Net, Trace: engTrace,
			}),
			cache:        newBitstreamCache(cfg.CacheSlots),
			dstore:       dataset.NewStore(cfg.DatasetStoreBytes),
			everDeployed: make(map[string]bool),
			active:       cfg.InitialActiveSites == 0 || i < cfg.InitialActiveSites,
		}
		s.stats.Name = s.name
		f.sites = append(f.sites, s)
	}
	return f, nil
}

// Sites returns the number of federated sites.
func (f *Fleet) Sites() int { return len(f.sites) }

// Cluster exposes site i's cluster (tests and CLIs inspect device state).
func (f *Fleet) Cluster(i int) *platform.Cluster { return f.sites[i].cluster }

// activeAt reports whether the site may serve work arriving at the given
// modelled time. Called with s.mu held.
func (s *site) activeAt(at float64) bool { return s.active && s.activeFrom <= at }

// SetSiteActive scales site i in or out at modelled time at. Activation
// takes effect at `at` (callers model boot delay by passing a future
// time); deactivation refuses while the site still holds routed work, so
// autoscalers drain before they shrink. The site's cache survives a
// scale-down — bitstreams are still resident if it returns.
func (f *Fleet) SetSiteActive(i int, active bool, at float64) error {
	if i < 0 || i >= len(f.sites) {
		return fmt.Errorf("fleet: site %d outside [0, %d)", i, len(f.sites))
	}
	s := f.sites[i]
	s.mu.Lock()
	if !active && s.pending > 0 {
		pending := s.pending
		s.mu.Unlock()
		return fmt.Errorf("fleet: %s still holds %d routed workflows", s.name, pending)
	}
	s.active = active
	if active {
		s.activeFrom = at
	}
	s.mu.Unlock()
	kind := EventSiteLeave
	if active {
		kind = EventSiteJoin
	}
	f.trace(Event{Kind: kind, Site: s.name, Time: at})
	return nil
}

// QueueWait returns the modelled queue delay a workflow arriving at the
// given time would see on the least-loaded site. ok=false means no site
// is active at that time (all scaled down or still booting). The region
// tier prices inter-region handoff against this.
func (f *Fleet) QueueWait(arrival float64) (float64, bool) {
	best, ok := 0.0, false
	for _, s := range f.sites {
		s.mu.Lock()
		act := s.activeAt(arrival)
		wait := s.busyUntil - arrival
		s.mu.Unlock()
		if !act {
			continue
		}
		if wait < 0 {
			wait = 0
		}
		if !ok || wait < best {
			best, ok = wait, true
		}
	}
	return best, ok
}

// Warm pre-stages bitstream id into the least-busy active site's cache at
// modelled time at, without occupying the serving queue: staging runs on
// the deployment control plane concurrently with serving, so it steals no
// service time from workflows — which is what makes speculative prefetch
// pay. An already-resident bitstream is a free no-op. Returns the chosen
// site index and the modelled staging seconds; an error means the
// registry lacks the bitstream, no site is active, or no online device
// fits it.
func (f *Fleet) Warm(id string, at float64) (int, float64, error) {
	if _, err := f.reg.Get(id); err != nil {
		return -1, 0, fmt.Errorf("fleet: warm: %w", err)
	}
	best, bestBusy := -1, 0.0
	for i, s := range f.sites {
		s.mu.Lock()
		act := s.activeAt(at)
		resident := false
		if act {
			if slot, ok := s.cache.peek(id); ok && slot.node.DeviceOnlineAt(slot.dev, at) {
				resident = true
			}
		}
		busy := s.busyUntil
		s.mu.Unlock()
		if !act {
			continue
		}
		if resident {
			return i, 0, nil
		}
		if best < 0 || busy < bestBusy {
			best, bestBusy = i, busy
		}
	}
	if best < 0 {
		return -1, 0, fmt.Errorf("fleet: warm %s: no active site", id)
	}
	s := f.sites[best]
	var evs *[]Event
	if f.cfg.Trace != nil {
		evs = evPool.Get().(*[]Event)
		defer func() {
			*evs = (*evs)[:0]
			evPool.Put(evs)
		}()
	}
	s.mu.Lock()
	dt := f.deployOne(s, "prefetch", "warm:"+id, id, at, evs)
	if dt > 0 {
		s.stats.WarmDeploys++
		s.stats.WarmSeconds += dt
	}
	s.mu.Unlock()
	if evs != nil {
		f.trace(*evs...)
	}
	if dt == 0 {
		return best, 0, fmt.Errorf("fleet: warm %s: no online device fits on %s", id, s.name)
	}
	f.trace(Event{Kind: EventWarm, Site: s.name, Tenant: "prefetch", Bitstream: id,
		Time: at, Detail: fmt.Sprintf("staged in %.4gs", dt)})
	return best, dt, nil
}

// WarmAll pre-stages bitstream id into every active site's cache at
// modelled time at — the fleet-wide analogue of Warm for models every
// site is about to serve (a scattered map-reduce workload, a federation-
// wide rollout). Staging runs on the deployment control plane, so it
// stalls no workflow; already-resident sites are free no-ops. Returns the
// summed staging seconds. An error means the registry lacks the
// bitstream; sites where no online device fits it are skipped.
func (f *Fleet) WarmAll(id string, at float64) (float64, error) {
	if _, err := f.reg.Get(id); err != nil {
		return 0, fmt.Errorf("fleet: warm-all: %w", err)
	}
	var evs *[]Event
	if f.cfg.Trace != nil {
		evs = evPool.Get().(*[]Event)
		defer func() {
			*evs = (*evs)[:0]
			evPool.Put(evs)
		}()
	}
	total := 0.0
	for _, s := range f.sites {
		s.mu.Lock()
		if !s.activeAt(at) {
			s.mu.Unlock()
			continue
		}
		if slot, ok := s.cache.peek(id); ok && slot.node.DeviceOnlineAt(slot.dev, at) {
			s.mu.Unlock()
			continue
		}
		dt := f.deployOne(s, "prefetch", "warm:"+id, id, at, evs)
		if dt > 0 {
			s.stats.WarmDeploys++
			s.stats.WarmSeconds += dt
		}
		s.mu.Unlock()
		if evs != nil {
			f.trace(*evs...)
			*evs = (*evs)[:0]
		}
		if dt > 0 {
			total += dt
			f.trace(Event{Kind: EventWarm, Site: s.name, Tenant: "prefetch", Bitstream: id,
				Time: at, Detail: fmt.Sprintf("staged in %.4gs", dt)})
		}
	}
	return total, nil
}

// Start brings every site engine up and spawns one serial worker per site.
func (f *Fleet) Start() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.started {
		return fmt.Errorf("fleet: already started")
	}
	for _, s := range f.sites {
		if err := s.engine.Start(); err != nil {
			return fmt.Errorf("fleet: %s: %w", s.name, err)
		}
	}
	f.started = true
	for _, s := range f.sites {
		f.workers.Add(1)
		go f.runSite(s)
	}
	return nil
}

// Submit routes one workflow to the cheapest site and enqueues it there.
// It never blocks on serving; the returned ticket resolves when the site's
// serial worker drains to it. Rejections (ErrSaturated) happen only under
// a configured MaxQueueSeconds admission bound.
func (f *Fleet) Submit(req Request) (*Ticket, error) {
	if req.Workflow == nil {
		return nil, fmt.Errorf("fleet: nil workflow")
	}
	if req.Guaranteed && req.Deadline <= 0 {
		return nil, fmt.Errorf("fleet: guaranteed request needs a positive deadline, got %.3g", req.Deadline)
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = "default"
	}
	needs := bitstreamNeeds(req.Workflow)
	reads := datasetReads(req.Workflow)
	known := f.knownReads(reads)
	f.mu.Lock()
	if !f.started || f.closed {
		f.mu.Unlock()
		return nil, fmt.Errorf("fleet: not serving (started=%v closed=%v)", f.started, f.closed)
	}
	last, hasLast := f.lastSite[tenant]
	f.mu.Unlock()

	// Route outside the fleet lock: each candidate site is priced under its
	// own mutex (sharded bookkeeping), and the argmin merge walks sites in
	// index order with strict-less ties — deterministic regardless of how
	// many submitters race, given identical per-site state. Guaranteed
	// requests instead route by proof: the admitting site's bound claim is
	// atomic, so concurrent admissions can never over-commit a site.
	var idx int
	var bound, debt float64
	var err error
	if req.Guaranteed {
		idx, bound, debt, err = f.routeGuaranteed(req.Workflow, needs, known, req.Arrival, req.Deadline)
	} else {
		idx, err = f.route(tenant, last, hasLast, needs, known, req.Arrival)
	}
	f.mu.Lock()
	if err != nil {
		f.rejected++
		f.mu.Unlock()
		f.trace(Event{Kind: EventReject, Tenant: tenant, Workflow: req.Name,
			Time: req.Arrival, Detail: err.Error()})
		return nil, err
	}
	f.submitted++
	name := req.Name
	if name == "" {
		name = fmt.Sprintf("%s/wf%d", tenant, f.submitted)
	}
	f.lastSite[tenant] = idx
	s := f.sites[idx]
	f.mu.Unlock()

	if !req.Guaranteed {
		// Guaranteed admissions already claimed their pending slot (and
		// bound debt) atomically inside routeGuaranteed.
		s.mu.Lock()
		s.pending++
		s.mu.Unlock()
	}
	if f.cfg.Trace != nil {
		detail := fmt.Sprintf("needs=%d", len(needs))
		if req.Guaranteed {
			detail = fmt.Sprintf("needs=%d guaranteed bound=%.4gs deadline=%.4gs", len(needs), bound, req.Deadline)
		}
		f.trace(Event{Kind: EventRoute, Site: s.name, Tenant: tenant, Workflow: name,
			Time: req.Arrival, Detail: detail})
	}
	t := &Ticket{Site: s.name, Tenant: tenant, Name: name, done: make(chan struct{})}
	if !s.q.push(work{t: t, wf: req.Workflow, arrival: req.Arrival, needs: needs, reads: known,
		guaranteed: req.Guaranteed, deadline: req.Deadline, bound: bound, debt: debt}) {
		// A concurrent Shutdown closed the site queues between routing and
		// enqueue. Undo the accounting and refuse — returning the ticket
		// would leave a Wait that never resolves (no worker remains to
		// serve it).
		s.mu.Lock()
		s.pending--
		if req.Guaranteed {
			s.pendingG--
			s.boundDebt -= debt
			if s.boundDebt < 0 {
				s.boundDebt = 0
			}
		}
		s.mu.Unlock()
		f.mu.Lock()
		f.submitted--
		f.rejected++
		f.mu.Unlock()
		f.trace(Event{Kind: EventReject, Site: s.name, Tenant: tenant,
			Workflow: name, Time: req.Arrival, Detail: "fleet shut down"})
		return nil, fmt.Errorf("fleet: shut down")
	}
	return t, nil
}

// Shutdown refuses new submissions, drains every site queue, stops the
// engines, and returns the final stats.
func (f *Fleet) Shutdown() Stats {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return f.Stats()
	}
	f.closed = true
	started := f.started
	f.mu.Unlock()
	if started {
		for _, s := range f.sites {
			s.q.close()
		}
		f.workers.Wait()
		for _, s := range f.sites {
			s.engine.Shutdown()
		}
	}
	return f.Stats()
}

// Stats snapshots the fleet.
func (f *Fleet) Stats() Stats {
	f.mu.Lock()
	out := Stats{Submitted: f.submitted, Rejected: f.rejected}
	f.mu.Unlock()
	for _, s := range f.sites {
		s.mu.Lock()
		ss := s.stats
		ss.Pending = s.pending
		ss.BusyUntil = s.busyUntil
		ss.Active = s.active
		s.mu.Unlock()
		ss.Engine = s.engine.Stats()
		out.Completed += ss.Served
		out.Failed += ss.Failed
		if ss.BusyUntil > out.Makespan {
			out.Makespan = ss.BusyUntil
		}
		out.Sites = append(out.Sites, ss)
	}
	return out
}

// ---------------------------------------------------------------------------
// router

// route picks the cheapest eligible site for a workflow. Cost combines the
// modelled queue wait (the site's completion frontier past the arrival),
// the estimated deployment stall for bitstreams the site's cache does not
// hold (registry transfer + reconfiguration; a cache hit is free), the
// software-fallback penalty for bitstreams the site cannot host at all,
// the tenant-affinity penalty for leaving the tenant's previous site, and
// the data-locality fetch of federation-known input partitions the site
// does not hold (a site holding the data charges zero — compute moves to
// the data). Ties break on site order, so routing is deterministic. Runs
// without the fleet lock — per-site state is read under each site's own
// mutex.
func (f *Fleet) route(tenant string, last int, hasLast bool, needs []string, reads []dataset.Ref, arrival float64) (int, error) {
	best, bestCost := -1, 0.0
	for i, s := range f.sites {
		cost, ok := f.siteCost(i, s, last, hasLast, needs, reads, arrival)
		if !ok {
			continue
		}
		if best < 0 || cost < bestCost {
			best, bestCost = i, cost
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("%w (%d sites, queue bound %.3gs)",
			ErrSaturated, len(f.sites), f.cfg.MaxQueueSeconds)
	}
	return best, nil
}

// routeGuaranteed admits a guaranteed request by proof. Every site is
// priced with the full admission inequality
//
//	wait + overhang + boundDebt + deployBound + fetchBound + serviceBound <= deadline
//
// where wait is the site's queue frontier past the arrival, overhang the
// engine's estimate frontier beyond the last settled makespan, boundDebt
// the summed worst cases of already-admitted guaranteed work, deployBound
// the worst-case cold deployment of every needed bitstream, fetchBound
// the worst-case staging of every external dataset partition, and
// serviceBound the workflow's schedule-derived serve-alone worst case
// (runtime.ServiceBound). Candidates are tried cheapest-bound first (site
// order breaks ties) and the winning site's debt claim happens atomically
// under its mutex, re-verifying the inequality — so racing admissions
// cannot jointly over-commit a site. When no site can prove the deadline
// the request is refused with ErrSaturated and nothing is enqueued.
func (f *Fleet) routeGuaranteed(w *runtime.Workflow, needs []string, reads []dataset.Ref, arrival, deadline float64) (int, float64, float64, error) {
	type candidate struct {
		idx   int
		bound float64
		debt  float64
	}
	var cands []candidate
	for i, s := range f.sites {
		svc, err := runtime.ServiceBound(w, s.cluster, f.reg, runtime.BoundOptions{
			SlowdownCap: f.cfg.SlowdownCap, Net: f.cfg.Net,
		})
		if err != nil {
			continue // the site cannot bound the workflow at all
		}
		debt := f.deployBound(s, needs) + f.fetchBound(reads) + svc
		if bound, ok := f.admissionBound(s, arrival, debt, false, deadline); ok {
			cands = append(cands, candidate{idx: i, bound: bound, debt: debt})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].bound != cands[b].bound {
			return cands[a].bound < cands[b].bound
		}
		return cands[a].idx < cands[b].idx
	})
	for _, c := range cands {
		if bound, ok := f.admissionBound(f.sites[c.idx], arrival, c.debt, true, deadline); ok {
			return c.idx, bound, c.debt, nil
		}
	}
	return 0, 0, 0, fmt.Errorf("%w: no site can prove a %.4gs deadline (%d sites)",
		ErrSaturated, deadline, len(f.sites))
}

// admissionBound evaluates the guaranteed-class inequality on one site,
// returning the proven relative bound; ok=false means the site cannot
// admit (pending best-effort work makes it unboundable, or the bound
// misses the deadline). With claim set, a passing evaluation atomically
// books the debt and pending slot under the site mutex.
func (f *Fleet) admissionBound(s *site, arrival, debt float64, claim bool, deadline float64) (float64, bool) {
	// The engine's backlog only advances, so reading it before taking the
	// site mutex keeps the bound conservative.
	backlog := s.engine.Stats().Backlog
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.activeAt(arrival) {
		return 0, false
	}
	if s.pending-s.pendingG > 0 {
		// Queued best-effort work carries no proven bound: nothing sound
		// can be promised behind it.
		return 0, false
	}
	wait := s.busyUntil - arrival
	if wait < 0 {
		wait = 0
	}
	// Estimate overhang: the dispatcher's placement frontier may sit past
	// the last settled makespan (estimates only ratchet down on reports),
	// and the next service delta is measured from the settled makespan — so
	// the gap is time the next workflow can be billed for.
	overhang := backlog - s.lastMakespan
	if overhang < 0 {
		overhang = 0
	}
	bound := wait + overhang + s.boundDebt + debt
	if bound > deadline {
		return 0, false
	}
	if claim {
		s.pending++
		s.pendingG++
		s.boundDebt += debt
	}
	return bound, true
}

// deployBound prices the worst-case cold deployment of every bitstream the
// workflow needs: per bitstream, the costliest whole-device staging
// (registry transfer of the full configuration image plus full
// reconfiguration) across the devices that can host it — which dominates
// every path deployOne can take, including the region-sized partial
// images. A bitstream no device fits costs nothing here: the deploy path
// falls back to software, which the service bound already covers.
func (f *Fleet) deployBound(s *site, needs []string) float64 {
	total := 0.0
	for _, id := range needs {
		bs, err := f.reg.Get(id)
		if err != nil {
			continue
		}
		need := bs.TotalResources()
		worst := 0.0
		for _, n := range s.cluster.Nodes {
			for _, d := range n.Devices {
				if !need.FitsIn(d.Capacity) {
					continue
				}
				if c := deployCost(f.cfg.RegistryNet, d, -1); c > worst {
					worst = c
				}
			}
		}
		total += worst
	}
	return total
}

// siteCost prices routing a workflow to one site; ok=false means the site
// is saturated past the admission bound.
func (f *Fleet) siteCost(idx int, s *site, last int, hasLast bool, needs []string, reads []dataset.Ref, arrival float64) (float64, bool) {
	s.mu.Lock()
	if !s.activeAt(arrival) {
		// Scaled out, or still booting at this arrival: not a candidate.
		s.mu.Unlock()
		return 0, false
	}
	busy := s.busyUntil
	inFlight := s.pending
	missing := s.dstore.MissingBytes(reads)
	var cachedBuf [8]bool // workflows need a handful of bitstreams; avoid the alloc
	cachedAt := cachedBuf[:len(cachedBuf):len(cachedBuf)]
	if len(needs) > len(cachedBuf) {
		cachedAt = make([]bool, len(needs))
	}
	cachedAt = cachedAt[:len(needs)]
	for j, id := range needs {
		if slot, ok := s.cache.peek(id); ok {
			// A resident bitstream on a device that is offline by the time
			// this work would start is stale: the deploy path will treat it
			// as a miss, so the estimate must too.
			at := arrival
			if busy > at {
				at = busy
			}
			cachedAt[j] = slot.node.DeviceOnlineAt(slot.dev, at)
		}
	}
	s.mu.Unlock()
	wait := busy - arrival
	if wait < 0 {
		wait = 0
	}
	// The busyUntil recursion only covers completed workflows. Work still
	// routed-but-unserved (asynchronous submitters) extends the queue by
	// roughly one engine-measured mean service time each — the live
	// queue-depth signal read off the site's engine stats. With
	// submit-and-wait driving (the deterministic scenarios) inFlight is
	// always 0 and this term vanishes.
	if inFlight > 0 {
		est := s.engine.Stats()
		if est.Completed > 0 {
			meanService := est.Backlog / float64(est.Completed)
			wait += float64(inFlight) * meanService
		}
	}
	if f.cfg.MaxQueueSeconds > 0 && wait > f.cfg.MaxQueueSeconds {
		return 0, false
	}
	cost := wait
	at := arrival
	if busy > at {
		at = busy
	}
	for j, id := range needs {
		if cachedAt[j] {
			continue // resident: deployment is free
		}
		if est, ok := f.estimateDeploy(s, id, at); ok {
			cost += est
		} else {
			cost += f.cfg.FallbackSeconds
		}
	}
	if !hasLast || last != idx {
		cost += f.cfg.AffinitySeconds
	}
	// Data locality: partitions the site does not hold must cross the
	// registry fabric before the workflow can run. PlacementBlind prices
	// every site as if the data were local (the contrast arm the data
	// benchmarks measure against).
	if missing > 0 && !f.cfg.PlacementBlind {
		cost += f.cfg.RegistryNet.SendSeconds(missing)
	}
	return cost, true
}

// estimateDeploy prices a cold deploy of bitstream id to the site at
// modelled time at; ok=false means no online device can host it.
func (f *Fleet) estimateDeploy(s *site, id string, at float64) (float64, bool) {
	bs, err := f.reg.Get(id)
	if err != nil {
		return 0, false
	}
	n, dev, region := s.deployTarget(bs, at, f.cfg.PartialReconfig, nil)
	if n == nil {
		return 0, false
	}
	return deployCost(f.cfg.RegistryNet, n.Devices[dev], region), true
}

// deployCost prices staging one configuration image onto a device slot:
// the registry transfer of the image plus the reconfiguration latency,
// both region-sized when the slot is a PR region (region >= 0).
func deployCost(net *netsim.Stack, d *platform.Device, region int) float64 {
	if region >= 0 {
		return net.SendSeconds(d.RegionConfigBytes()) + d.RegionReconfigSeconds()
	}
	return net.SendSeconds(d.ConfigBytes()) + d.ReconfigSeconds()
}

// deployTarget returns the first alive node, online device (at modelled
// time at), and slot that fits the bitstream, skipping slots the occupied
// predicate claims. With partial set, PR region slots (region >= 0) are
// tried on each device first and a kernel too large for a region falls
// back to the whole device (region -1); without it every candidate is
// whole-device. nil predicate skips nothing (estimates ignore cache
// occupancy: an occupied slot only means an eviction, already priced by
// the cache bound).
func (s *site) deployTarget(bs platform.Bitstream, at float64, partial bool, occupied func(*platform.Node, int, int) bool) (*platform.Node, int, int) {
	need := bs.TotalResources()
	for _, n := range s.cluster.Nodes {
		if _, failed := n.FailedAt(); failed {
			continue
		}
		for idx := range n.Devices {
			if !n.DeviceOnlineAt(idx, at) {
				continue
			}
			d := n.Devices[idx]
			if !need.FitsIn(d.Capacity) {
				continue
			}
			if partial && need.FitsIn(d.RegionCapacity()) {
				for r := 0; r < d.Regions(); r++ {
					if occupied != nil && occupied(n, idx, r) {
						continue
					}
					return n, idx, r
				}
				continue
			}
			if occupied != nil && occupied(n, idx, -1) {
				continue
			}
			return n, idx, -1
		}
	}
	return nil, -1, -1
}

// BitstreamNeeds lists the distinct bitstream IDs a workflow's FPGA
// tasks request, in first-use order. The region tier prices WAN catalog
// fetches and drives prefetch warming off this set.
func BitstreamNeeds(w *runtime.Workflow) []string { return bitstreamNeeds(w) }

// bitstreamNeeds lists the distinct bitstream IDs a workflow's FPGA tasks
// request, in first-use order. Deduplication is a linear scan over the
// output — workflows request a handful of bitstreams, so this beats a map
// and keeps the router's per-submission work allocation-free except for
// the result itself.
func bitstreamNeeds(w *runtime.Workflow) []string {
	var out []string
	w.Range(func(t *runtime.TaskSpec) bool {
		if !t.NeedsFPGA || t.BitstreamID == "" {
			return true
		}
		for _, id := range out {
			if id == t.BitstreamID {
				return true
			}
		}
		out = append(out, t.BitstreamID)
		return true
	})
	return out
}

// ---------------------------------------------------------------------------
// site worker

// runSite drains one site's queue serially: deploy what the workflow
// needs, serve it on the site engine, then advance the site's modelled
// frontier with the queue recursion.
func (f *Fleet) runSite(s *site) {
	defer f.workers.Done()
	for {
		w, ok := s.q.pop()
		if !ok {
			return
		}
		f.serve(s, w)
	}
}

func (f *Fleet) serve(s *site, w work) {
	t := w.t
	s.mu.Lock()
	start := w.arrival
	if s.busyUntil > start {
		start = s.busyUntil
	}
	s.mu.Unlock()
	deploy := f.deployNeeds(s, w, start)
	fetch, fetchedBytes := f.fetchData(s, w, start+deploy)

	fut, err := s.engine.Submit(w.wf, runtime.SubmitOptions{Name: t.Name, Tenant: t.Tenant})
	var sched *runtime.Schedule
	if err == nil {
		sched, err = fut.Wait()
	}

	s.mu.Lock()
	s.pending--
	if w.guaranteed {
		// Settle the admission claim: the worst case this request booked is
		// no longer owed, whatever actually happened.
		s.pendingG--
		s.boundDebt -= w.debt
		if s.boundDebt < 0 {
			s.boundDebt = 0
		}
		s.stats.Guaranteed++
	}
	if err != nil {
		s.stats.Failed++
		s.stats.DeploySeconds += deploy
		if w.guaranteed {
			// A failed guaranteed workflow never completed within its
			// deadline: the promise is broken by definition.
			s.stats.BoundViolations++
		}
		// The deployment stall was paid and the workflow may have partially
		// executed before failing; advance the site timeline accordingly so
		// the engine's clock progress is not misattributed to the NEXT
		// workflow's service delta.
		frontier := s.engine.Stats().Backlog
		partial := frontier - s.lastMakespan
		if partial < 0 {
			partial = 0
		}
		if frontier > s.lastMakespan {
			s.lastMakespan = frontier
		}
		s.busyUntil = start + deploy + fetch + partial
		s.mu.Unlock()
		t.err = fmt.Errorf("fleet: %s: %w", s.name, err)
		// Trace before resolving the ticket: once Wait returns, every
		// event of this workflow has been delivered.
		if f.cfg.Trace != nil {
			f.trace(Event{Kind: EventDone, Site: s.name, Tenant: t.Tenant,
				Workflow: t.Name, Time: start, Detail: "error: " + err.Error()})
		}
		close(t.done)
		return
	}
	service := sched.Makespan - s.lastMakespan
	if service < 0 {
		service = 0
	}
	if sched.Makespan > s.lastMakespan {
		s.lastMakespan = sched.Makespan
	}
	completion := start + deploy + fetch + service
	s.busyUntil = completion
	s.stats.Served++
	s.stats.DeploySeconds += deploy
	if w.guaranteed && completion-w.arrival > w.deadline {
		s.stats.BoundViolations++
	}
	s.mu.Unlock()
	f.publishOutputs(s, w, completion)

	t.res = Result{
		Sched: sched, Site: s.name, Arrival: w.arrival,
		Wait: start - w.arrival, Deploy: deploy, Fetch: fetch, Service: service,
		FetchedBytes: fetchedBytes,
		Completion:   completion, Latency: completion - w.arrival,
		Guaranteed: w.guaranteed, Bound: w.bound,
	}
	// Trace before resolving the ticket (see the error path above).
	if f.cfg.Trace != nil {
		f.trace(Event{Kind: EventDone, Site: s.name, Tenant: t.Tenant, Workflow: t.Name,
			Time: completion, Detail: fmt.Sprintf("latency=%.4gs", completion-w.arrival)})
	}
	close(t.done)
}

// evPool recycles the deploy path's trace event buffers: with tracing on,
// each served workflow borrows one buffer instead of growing a fresh slice
// per bitstream; with tracing off the deploy path builds no events at all.
var evPool = sync.Pool{New: func() any { b := make([]Event, 0, 8); return &b }}

// deployNeeds stages every bitstream the workflow requests and the site
// does not hold, returning the total modelled deployment stall. The site
// worker is the only mutator of the cache; s.mu guards it against router
// peeks.
func (f *Fleet) deployNeeds(s *site, w work, at float64) float64 {
	total := 0.0
	var evs *[]Event // nil = tracing off; events are never constructed
	if f.cfg.Trace != nil {
		evs = evPool.Get().(*[]Event)
		defer func() {
			*evs = (*evs)[:0]
			evPool.Put(evs)
		}()
	}
	for _, id := range w.needs {
		s.mu.Lock()
		slot, hit := s.cache.get(id)
		if hit && slot.node.DeviceOnlineAt(slot.dev, at+total) {
			s.stats.CacheHits++
			s.mu.Unlock()
			if evs != nil {
				f.trace(Event{Kind: EventCacheHit, Site: s.name, Tenant: w.t.Tenant,
					Workflow: w.t.Name, Bitstream: id, Time: at + total})
			}
			continue
		}
		if hit {
			// Resident, but the hosting device is offline now (unplug
			// churn): drop the stale entry and redeploy elsewhere.
			slot.unprogram()
			s.cache.remove(id)
			s.stats.Evictions++
			if evs != nil {
				*evs = append(*evs, Event{Kind: EventEvict, Site: s.name, Bitstream: id,
					Time: at + total, Detail: fmt.Sprintf("%s/dev%d offline", slot.node.Name, slot.dev)})
			}
		}
		s.stats.CacheMisses++
		if evs != nil {
			*evs = append(*evs, Event{Kind: EventCacheMiss, Site: s.name, Tenant: w.t.Tenant,
				Workflow: w.t.Name, Bitstream: id, Time: at + total})
		}
		dt := f.deployOne(s, w.t.Tenant, w.t.Name, id, at+total, evs)
		s.mu.Unlock()
		total += dt
		if evs != nil {
			f.trace(*evs...)
			*evs = (*evs)[:0]
		}
	}
	return total
}

// deployOne stages one bitstream, evicting LRU entries while the cache is
// at capacity or no un-occupied device slot remains. Returns the modelled
// stall (0 on software fallback). Called with s.mu held; trace events are
// appended to evs when non-nil (tracing on).
func (f *Fleet) deployOne(s *site, tenant, wfName, id string, at float64, evs *[]Event) float64 {
	bs, err := f.reg.Get(id)
	if err != nil {
		s.stats.FallbackDeploys++
		if evs != nil {
			*evs = append(*evs, Event{Kind: EventFallback, Site: s.name, Tenant: tenant,
				Workflow: wfName, Bitstream: id, Time: at, Detail: err.Error()})
		}
		return 0
	}
	var node *platform.Node
	dev, region := -1, -1
	for {
		if s.cache.len() < f.cfg.CacheSlots {
			node, dev, region = s.deployTarget(bs, at, f.cfg.PartialReconfig, s.cache.occupied)
			if node != nil {
				break
			}
		}
		victim := s.cache.lru()
		if victim == nil {
			// Nothing left to evict and still no hosting device: the
			// site's accelerators are offline, too small, or gone.
			s.stats.FallbackDeploys++
			if evs != nil {
				*evs = append(*evs, Event{Kind: EventFallback, Site: s.name, Tenant: tenant,
					Workflow: wfName, Bitstream: id, Time: at, Detail: "no online device fits"})
			}
			return 0
		}
		victim.unprogram()
		s.cache.remove(victim.id)
		s.stats.Evictions++
		if evs != nil {
			*evs = append(*evs, Event{Kind: EventEvict, Site: s.name, Bitstream: victim.id,
				Time: at, Detail: fmt.Sprintf("lru from %s/%s", victim.node.Name, slotName(victim.dev, victim.region))})
		}
	}
	var dt float64
	if region >= 0 {
		dt, err = node.ProgramRegion(dev, region, bs)
	} else {
		dt, err = node.Program(dev, bs)
	}
	if err != nil {
		s.stats.FallbackDeploys++
		if evs != nil {
			*evs = append(*evs, Event{Kind: EventFallback, Site: s.name, Tenant: tenant,
				Workflow: wfName, Bitstream: id, Time: at, Detail: err.Error()})
		}
		return 0
	}
	d := node.Devices[dev]
	img := d.ConfigBytes()
	if region >= 0 {
		img = d.RegionConfigBytes()
	}
	xfer := f.cfg.RegistryNet.SendSeconds(img)
	s.cache.add(id, node, dev, region)
	kind := EventDeploy
	if s.everDeployed[id] {
		s.stats.Redeploys++
		kind = EventRedeploy
	}
	s.everDeployed[id] = true
	if evs != nil {
		*evs = append(*evs, Event{Kind: kind, Site: s.name, Tenant: tenant,
			Workflow: wfName, Bitstream: id, Time: at,
			Detail: fmt.Sprintf("%s/%s xfer=%.4gs reconfig=%.3gs", node.Name, slotName(dev, region), xfer, dt)})
	}
	return xfer + dt
}

// slotName renders a device slot for trace details: "dev0" whole-device,
// "dev0.r2" for PR region 2.
func slotName(dev, region int) string {
	if region >= 0 {
		return fmt.Sprintf("dev%d.r%d", dev, region)
	}
	return fmt.Sprintf("dev%d", dev)
}

// trace emits events in order under the trace mutex.
func (f *Fleet) trace(evs ...Event) {
	if f.cfg.Trace == nil {
		return
	}
	f.traceMu.Lock()
	defer f.traceMu.Unlock()
	for _, ev := range evs {
		f.cfg.Trace(ev)
	}
}

// ---------------------------------------------------------------------------
// per-site serial queue

// ticketQueue is an unbounded FIFO of routed work; pushes never block.
type ticketQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []work
	closed bool
}

func newTicketQueue() *ticketQueue {
	q := &ticketQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues work; false means the queue is already closed (the
// worker may be gone, so the caller must not rely on the work running).
func (q *ticketQueue) push(w work) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.items = append(q.items, w)
	q.cond.Signal()
	return true
}

func (q *ticketQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// pop blocks until work is available or the queue is closed and drained.
func (q *ticketQueue) pop() (work, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return work{}, false
	}
	w := q.items[0]
	q.items = q.items[1:]
	return w, true
}
