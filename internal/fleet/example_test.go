package fleet_test

import (
	"fmt"

	"everest/internal/fleet"
	"everest/internal/hls"
	"everest/internal/platform"
	"everest/internal/runtime"
)

// Example demonstrates fleet routing: two federated sites serve three
// workflows, and the router keeps a tenant's FPGA work where its
// bitstream is already resident (affinity plus deploy-cost awareness)
// while pure-software work lands on the idle site. Modelled-time serving
// makes the routing decisions and counters exactly reproducible.
func Example() {
	bs := platform.Bitstream{
		ID: "bs-krr", Kernel: "krr", Target: "alveo-u55c",
		Report: hls.Report{
			LatencyCycle: 1 << 16, II: 1, IterLatency: 8,
			Resources: hls.Resources{LUT: 20000, FF: 24000, DSP: 32, BRAM: 16},
			ClockMHz:  300,
		},
		Config: platform.SystemConfig{
			Replicas: 2, BusWidthBits: 512, Lanes: 4, PackedElements: 8,
			DoubleBuffered: true, PLMBytes: 1 << 16,
		},
		ElemBits: 32,
	}
	reg := platform.NewRegistry()
	if err := reg.Put(bs); err != nil {
		panic(err)
	}

	f, err := fleet.New(reg, fleet.Config{
		Sites: 2,
		NewCluster: func(site int) *platform.Cluster {
			return platform.NewCluster(platform.NewNode("node00",
				platform.XeonModel(), platform.AlveoU55C()))
		},
	})
	if err != nil {
		panic(err)
	}
	if err := f.Start(); err != nil {
		panic(err)
	}

	accelerated := func() *runtime.Workflow {
		w := runtime.NewWorkflow()
		if err := w.Submit(runtime.TaskSpec{
			Name: "compute", Flops: 2e12, InputBytes: 1 << 20,
			NeedsFPGA: true, BitstreamID: bs.ID,
		}); err != nil {
			panic(err)
		}
		return w
	}
	software := runtime.NewWorkflow()
	if err := software.Submit(runtime.TaskSpec{Name: "only", Flops: 5e9}); err != nil {
		panic(err)
	}

	// Two accelerated workflows from one tenant, then a software-only
	// workflow from another tenant that arrives while the first site's
	// modelled timeline is still busy.
	for i, req := range []fleet.Request{
		{Tenant: "alpha", Name: "krr-a", Workflow: accelerated()},
		{Tenant: "alpha", Name: "krr-b", Workflow: accelerated()},
		{Tenant: "beta", Name: "soft", Workflow: software},
	} {
		req.Arrival = float64(i) * 0.01
		t, err := f.Submit(req)
		if err != nil {
			panic(err)
		}
		if _, err := t.Wait(); err != nil {
			panic(err)
		}
		fmt.Printf("%s/%s -> %s\n", t.Tenant, t.Name, t.Site)
	}
	stats := f.Shutdown()
	s0 := stats.Sites[0]
	fmt.Printf("site00: %d served, cache %d hit / %d miss\n",
		s0.Served, s0.CacheHits, s0.CacheMisses)
	// Output:
	// alpha/krr-a -> site00
	// alpha/krr-b -> site00
	// beta/soft -> site01
	// site00: 2 served, cache 1 hit / 1 miss
}
