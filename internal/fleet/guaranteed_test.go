package fleet

import (
	"errors"
	"testing"

	"everest/internal/platform"
	"everest/internal/runtime"
)

func TestGuaranteedNeedsDeadline(t *testing.T) {
	reg := platform.NewRegistry()
	f := newTestFleet(t, reg, Config{Sites: 1})
	defer f.Shutdown()
	if _, err := f.Submit(Request{Workflow: cpuWorkflow(), Guaranteed: true}); err == nil {
		t.Fatal("guaranteed request without a deadline must be refused")
	}
}

func TestNewRejectsSlowdownBeyondCap(t *testing.T) {
	_, err := New(platform.NewRegistry(), Config{
		Sites: 1, NewCluster: testCluster(1), SlowdownCap: 2,
		SiteEvents: [][]runtime.EnvEvent{{
			{Kind: runtime.EnvSlowdown, Node: "node00", Factor: 3, At: 0},
		}},
	})
	if err == nil {
		t.Fatal("scripted slowdown beyond SlowdownCap must fail New")
	}
}

// TestGuaranteedAdmitAndSettle admits one guaranteed FPGA workflow on an
// idle fleet: the result must carry the proven bound, the modelled latency
// must respect it, and the admission claim (pending slot + bound debt)
// must be fully settled afterwards so the next admission starts clean.
func TestGuaranteedAdmitAndSettle(t *testing.T) {
	reg := platform.NewRegistry()
	if err := reg.Put(testBitstream("bs-g")); err != nil {
		t.Fatal(err)
	}
	f := newTestFleet(t, reg, Config{Sites: 2})
	defer f.Shutdown()

	tk, err := f.Submit(Request{Tenant: "g", Workflow: fpgaWorkflow("bs-g"),
		Arrival: 0, Guaranteed: true, Deadline: 60})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tk.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Guaranteed {
		t.Fatal("result must be flagged guaranteed")
	}
	if res.Bound <= 0 || res.Bound > 60 {
		t.Fatalf("proven bound %g must be in (0, deadline]", res.Bound)
	}
	if res.Latency > res.Bound {
		t.Fatalf("latency %g exceeds proven bound %g", res.Latency, res.Bound)
	}
	st := f.Stats()
	if st.Guaranteed() != 1 || st.BoundViolations() != 0 {
		t.Fatalf("guaranteed/violations = %d/%d, want 1/0", st.Guaranteed(), st.BoundViolations())
	}
	for _, s := range f.sites {
		s.mu.Lock()
		if s.pendingG != 0 || s.boundDebt != 0 {
			t.Errorf("site %s claim not settled: pendingG=%d debt=%g", s.name, s.pendingG, s.boundDebt)
		}
		s.mu.Unlock()
	}
}

// TestGuaranteedRefusesImpossibleDeadline asks for a bound no site can
// prove: Submit must refuse with ErrSaturated and enqueue nothing.
func TestGuaranteedRefusesImpossibleDeadline(t *testing.T) {
	reg := platform.NewRegistry()
	f := newTestFleet(t, reg, Config{Sites: 2})
	defer f.Shutdown()

	_, err := f.Submit(Request{Workflow: cpuWorkflow(), Guaranteed: true, Deadline: 1e-12})
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("expected ErrSaturated, got %v", err)
	}
	st := f.Stats()
	if st.Rejected != 1 || st.Submitted != 0 {
		t.Fatalf("rejected/submitted = %d/%d, want 1/0", st.Rejected, st.Submitted)
	}
}

// TestAdmissionBoundRefusesBehindBestEffort checks the eligibility rule
// directly: a site holding queued best-effort work (no proven bound on
// anything ahead of us) can never admit a guaranteed request, while the
// same site with only guaranteed debt pending still can.
func TestAdmissionBoundRefusesBehindBestEffort(t *testing.T) {
	reg := platform.NewRegistry()
	f := newTestFleet(t, reg, Config{Sites: 1})
	defer f.Shutdown()
	s := f.sites[0]

	s.mu.Lock()
	s.pending = 1 // one best-effort workflow routed but unserved
	s.mu.Unlock()
	if _, ok := f.admissionBound(s, 0, 1, false, 1e9); ok {
		t.Fatal("site with pending best-effort work must refuse guaranteed admission")
	}

	s.mu.Lock()
	s.pendingG = 1 // the pending workflow is itself guaranteed, debt booked
	s.boundDebt = 2.5
	s.mu.Unlock()
	bound, ok := f.admissionBound(s, 0, 1, false, 1e9)
	if !ok {
		t.Fatal("site with only guaranteed debt must stay admissible")
	}
	if bound < 3.5 {
		t.Fatalf("bound %g must include the booked debt 2.5 plus our own 1", bound)
	}

	s.mu.Lock()
	s.pending, s.pendingG, s.boundDebt = 0, 0, 0
	s.mu.Unlock()
}

// TestAdmissionBoundClaimIsAtomic verifies the claim path books the debt
// under the site mutex and a follow-up admission sees it.
func TestAdmissionBoundClaimIsAtomic(t *testing.T) {
	reg := platform.NewRegistry()
	f := newTestFleet(t, reg, Config{Sites: 1})
	defer f.Shutdown()
	s := f.sites[0]

	if _, ok := f.admissionBound(s, 0, 3, true, 10); !ok {
		t.Fatal("first claim must pass on an idle site")
	}
	// 3s of debt booked: a second request with 8s of its own debt can no
	// longer prove a 10s deadline.
	if _, ok := f.admissionBound(s, 0, 8, true, 10); ok {
		t.Fatal("second claim must see the booked debt and refuse")
	}
	bound, ok := f.admissionBound(s, 0, 6, false, 10)
	if !ok || bound != 9 {
		t.Fatalf("bound = %g ok=%v, want 9 true (3 booked + 6 own)", bound, ok)
	}

	s.mu.Lock()
	s.pending, s.pendingG, s.boundDebt = 0, 0, 0
	s.mu.Unlock()
}

// TestGuaranteedRoutesCheapestBound: with one site held busy, the
// guaranteed router must pick the idle site even when best-effort
// affinity would have preferred the busy one.
func TestGuaranteedRoutesCheapestBound(t *testing.T) {
	reg := platform.NewRegistry()
	f := newTestFleet(t, reg, Config{Sites: 2})
	defer f.Shutdown()

	// Load site00 via a best-effort tenant, waited to completion so its
	// busy frontier advances deterministically.
	tk, err := f.Submit(Request{Tenant: "t", Workflow: cpuWorkflow(), Arrival: 0})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tk.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Site != "site00" {
		t.Fatalf("warmup routed to %s, want site00", res.Site)
	}
	// A guaranteed arrival at time 0 pays the full wait on site00 but
	// nothing on site01: the proof-cheapest site must win.
	tk2, err := f.Submit(Request{Tenant: "t", Workflow: cpuWorkflow(),
		Arrival: 0, Guaranteed: true, Deadline: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := tk2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Site != "site01" {
		t.Fatalf("guaranteed routed to %s, want idle site01", res2.Site)
	}
}
