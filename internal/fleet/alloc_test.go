package fleet

import (
	"testing"

	"everest/internal/dataset"
	"everest/internal/platform"
)

// TestRouteAllocFree pins the router's allocation budget: pricing every
// site for one workflow — cache residency probes, cold-deploy estimates,
// affinity — must not allocate in steady state. The per-need residency
// scratch is a stack buffer (see siteCost), so the whole Submit-side
// routing decision stays off the heap; a regression here would show up as
// GC pressure scaling with routed workflows in BenchmarkSimulatorSpeed.
func TestRouteAllocFree(t *testing.T) {
	reg := platform.NewRegistry()
	if err := reg.Put(testBitstream("bs0")); err != nil {
		t.Fatal(err)
	}
	if err := reg.Put(testBitstream("bs1")); err != nil {
		t.Fatal(err)
	}
	f, err := New(reg, Config{Sites: 4, NewCluster: testCluster(2)})
	if err != nil {
		t.Fatal(err)
	}
	refs := dataset.Partitioned("points", 1<<24, 2)
	if err := f.PlaceDataset(0, 0, refs...); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		what  string
		needs []string
		reads []dataset.Ref
	}{
		{"route (software-only)", nil, nil},
		{"route (cold bitstreams)", []string{"bs0", "bs1"}, nil},
		{"route (dataset locality)", []string{"bs0"}, refs},
	} {
		if got := testing.AllocsPerRun(200, func() {
			if _, err := f.route("tenant00", 1, true, tc.needs, tc.reads, 0.5); err != nil {
				t.Fatal(err)
			}
		}); got > 0 {
			t.Errorf("%s allocates %.1f per run, budget 0", tc.what, got)
		}
	}
}
