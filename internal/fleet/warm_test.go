package fleet

import (
	"strings"
	"testing"

	"everest/internal/platform"
	"everest/internal/runtime"
)

func TestWarmStagesAndIsIdempotent(t *testing.T) {
	reg := platform.NewRegistry()
	reg.Put(testBitstream("bs-w"))
	f := newTestFleet(t, reg, Config{Sites: 2, CacheSlots: 2})
	defer f.Shutdown()

	site, dt, err := f.Warm("bs-w", 0)
	if err != nil {
		t.Fatal(err)
	}
	if dt <= 0 {
		t.Fatalf("first warm must pay transfer+reconfig, got %g", dt)
	}
	// Second warm finds the bitstream resident: free no-op.
	site2, dt2, err := f.Warm("bs-w", 1)
	if err != nil {
		t.Fatal(err)
	}
	if site2 != site || dt2 != 0 {
		t.Fatalf("re-warm = (site %d, %g), want resident no-op on site %d", site2, dt2, site)
	}
	st := f.Stats()
	if st.WarmDeploys() != 1 {
		t.Fatalf("WarmDeploys = %d, want 1", st.WarmDeploys())
	}
	if st.Sites[site].WarmSeconds != dt {
		t.Fatalf("WarmSeconds = %g, want %g", st.Sites[site].WarmSeconds, dt)
	}

	// A warmed bitstream makes the first real serve a cache hit: no
	// deployment stall on the workflow's critical path.
	tk, err := f.Submit(Request{Tenant: "t", Name: "wf", Workflow: fpgaWorkflow("bs-w"), Arrival: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tk.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Deploy != 0 {
		t.Fatalf("serve after warm paid deploy stall %g, want 0", res.Deploy)
	}
}

func TestWarmErrors(t *testing.T) {
	reg := platform.NewRegistry()
	reg.Put(testBitstream("bs-w"))
	f := newTestFleet(t, reg, Config{Sites: 1})
	defer f.Shutdown()
	if _, _, err := f.Warm("missing", 0); err == nil {
		t.Fatal("warming an unregistered bitstream must fail")
	}
	// Deactivate the only site: nothing can host the warm.
	if err := f.SetSiteActive(0, false, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Warm("bs-w", 0); err == nil || !strings.Contains(err.Error(), "no active site") {
		t.Fatalf("warm with no active site = %v, want refusal", err)
	}
}

func TestSetSiteActiveGatesRouting(t *testing.T) {
	reg := platform.NewRegistry()
	reg.Put(testBitstream("bs-a"))
	f := newTestFleet(t, reg, Config{Sites: 2, InitialActiveSites: 1})
	defer f.Shutdown()

	if got := f.Stats().ActiveSites(); got != 1 {
		t.Fatalf("ActiveSites = %d, want 1", got)
	}
	// All work lands on the lone active site.
	for i := 0; i < 3; i++ {
		tk, err := f.Submit(Request{Workflow: cpuWorkflow(), Arrival: float64(i)})
		if err != nil {
			t.Fatal(err)
		}
		res, err := tk.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if res.Site != "site00" {
			t.Fatalf("workflow %d served by %s, want site00", i, res.Site)
		}
	}
	// Site 1 joins with a boot delay: arrivals before activeFrom still
	// cannot use it, arrivals after can.
	if err := f.SetSiteActive(1, true, 100); err != nil {
		t.Fatal(err)
	}
	tk, err := f.Submit(Request{Workflow: cpuWorkflow(), Arrival: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := tk.Wait(); err != nil || res.Site != "site00" {
		t.Fatalf("pre-boot arrival served by %s (%v), want site00", res.Site, err)
	}
	// Back site00 up past t=200 so the joined site is the cheaper choice
	// once its boot completes.
	heavy := runtime.NewWorkflow()
	if err := heavy.Submit(runtime.TaskSpec{Name: "only", Flops: 5e13, OutputBytes: 1 << 18}); err != nil {
		t.Fatal(err)
	}
	tk, err = f.Submit(Request{Workflow: heavy, Arrival: 199})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tk.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Site != "site00" || res.Completion <= 200 {
		t.Fatalf("heavy workflow: site %s completion %g, want site00 past 200", res.Site, res.Completion)
	}
	tk, err = f.Submit(Request{Workflow: cpuWorkflow(), Arrival: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := tk.Wait(); err != nil || res.Site != "site01" {
		t.Fatalf("post-boot arrival served by %s (%v), want idle site01", res.Site, err)
	}
	if got := f.Stats().ActiveSites(); got != 2 {
		t.Fatalf("ActiveSites = %d, want 2", got)
	}
	if err := f.SetSiteActive(5, true, 0); err == nil {
		t.Fatal("out-of-range site index must fail")
	}
}

func TestSetSiteActiveRefusesWithPendingWork(t *testing.T) {
	reg := platform.NewRegistry()
	f := newTestFleet(t, reg, Config{Sites: 1})
	defer f.Shutdown()
	tk, err := f.Submit(Request{Workflow: cpuWorkflow(), Arrival: 0})
	if err != nil {
		t.Fatal(err)
	}
	// The workflow may already be served by the time we try; only assert
	// the refusal when work was still routed there.
	errDeact := f.SetSiteActive(0, false, 0)
	if _, err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	if errDeact == nil {
		// Drained before the call — deactivation after the drain must work.
		if err := f.SetSiteActive(0, false, 0); err != nil {
			t.Fatal(err)
		}
	} else if !strings.Contains(errDeact.Error(), "routed workflows") {
		t.Fatalf("unexpected deactivation error: %v", errDeact)
	}
}

func TestQueueWait(t *testing.T) {
	reg := platform.NewRegistry()
	f := newTestFleet(t, reg, Config{Sites: 2, InitialActiveSites: 1})
	defer f.Shutdown()
	if w, ok := f.QueueWait(0); !ok || w != 0 {
		t.Fatalf("idle fleet QueueWait = (%g, %v), want (0, true)", w, ok)
	}
	tk, err := f.Submit(Request{Workflow: cpuWorkflow(), Arrival: 0})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tk.Wait()
	if err != nil {
		t.Fatal(err)
	}
	// An arrival before the frontier waits for it; one after waits 0.
	if w, ok := f.QueueWait(0); !ok || w != res.Completion {
		t.Fatalf("QueueWait(0) = (%g, %v), want (%g, true)", w, ok, res.Completion)
	}
	if w, ok := f.QueueWait(res.Completion + 1); !ok || w != 0 {
		t.Fatalf("QueueWait past frontier = (%g, %v), want (0, true)", w, ok)
	}
	if err := f.SetSiteActive(0, false, res.Completion); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.QueueWait(res.Completion + 1); ok {
		t.Fatal("QueueWait with every site inactive must report ok=false")
	}
}

func TestInitialActiveSitesValidated(t *testing.T) {
	reg := platform.NewRegistry()
	if _, err := New(reg, Config{Sites: 2, NewCluster: testCluster(1), InitialActiveSites: 3}); err == nil {
		t.Fatal("InitialActiveSites > Sites must fail")
	}
}

func TestBitstreamNeedsExported(t *testing.T) {
	w := fpgaWorkflow("bs-x")
	needs := BitstreamNeeds(w)
	if len(needs) != 1 || needs[0] != "bs-x" {
		t.Fatalf("BitstreamNeeds = %v, want [bs-x]", needs)
	}
	if got := BitstreamNeeds(cpuWorkflow()); len(got) != 0 {
		t.Fatalf("pure-software workflow needs = %v, want none", got)
	}
}

// TestWarmAllStagesEverySite: one call leaves the bitstream resident at
// every active site (each first serve is deploy-free wherever it lands),
// a second call is a fleet-wide free no-op, and inactive sites are
// skipped rather than staged.
func TestWarmAllStagesEverySite(t *testing.T) {
	reg := platform.NewRegistry()
	reg.Put(testBitstream("bs-w"))
	f := newTestFleet(t, reg, Config{Sites: 3, InitialActiveSites: 2})
	defer f.Shutdown()

	dt, err := f.WarmAll("bs-w", 0)
	if err != nil {
		t.Fatal(err)
	}
	if dt <= 0 {
		t.Fatalf("first warm-all staged nothing (dt=%g)", dt)
	}
	st := f.Stats()
	for i := 0; i < 2; i++ {
		if st.Sites[i].WarmDeploys != 1 {
			t.Fatalf("site %d WarmDeploys = %d, want 1", i, st.Sites[i].WarmDeploys)
		}
	}
	if st.Sites[2].WarmDeploys != 0 {
		t.Fatal("warm-all staged an inactive site")
	}
	// Everything resident: re-warming the fleet is free.
	if dt2, err := f.WarmAll("bs-w", 1); err != nil || dt2 != 0 {
		t.Fatalf("second warm-all = (%g, %v), want a free no-op", dt2, err)
	}
	// Different tenants spread over both active sites; neither serve pays
	// a deploy stall.
	for i, tenant := range []string{"a", "b"} {
		tk, err := f.Submit(Request{Tenant: tenant, Name: tenant,
			Workflow: fpgaWorkflow("bs-w"), Arrival: 2 + float64(i)})
		if err != nil {
			t.Fatal(err)
		}
		res, err := tk.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if res.Deploy != 0 {
			t.Fatalf("tenant %s paid deploy stall %g after warm-all", tenant, res.Deploy)
		}
	}
	if _, err := f.WarmAll("missing", 0); err == nil {
		t.Fatal("warm-all of an unregistered bitstream must fail")
	}
}
