package fleet

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"everest/internal/hls"
	"everest/internal/platform"
	"everest/internal/runtime"
)

// testBitstream returns a small deployable artifact that fits every
// catalog device.
func testBitstream(id string) platform.Bitstream {
	return platform.Bitstream{
		ID: id, Kernel: "k-" + id, Target: "alveo-u55c",
		Report: hls.Report{
			LatencyCycle: 1 << 16, II: 1, IterLatency: 8,
			Resources: hls.Resources{LUT: 20000, FF: 24000, DSP: 32, BRAM: 16},
			ClockMHz:  300,
		},
		Config: platform.SystemConfig{
			Replicas: 2, BusWidthBits: 512, Lanes: 4, PackedElements: 8,
			DoubleBuffered: true, PLMBytes: 1 << 16,
		},
		ElemBits: 32,
	}
}

// fpgaWorkflow is a two-task workflow whose compute stage requests the
// given bitstream.
func fpgaWorkflow(bsID string) *runtime.Workflow {
	w := runtime.NewWorkflow()
	if err := w.Submit(runtime.TaskSpec{Name: "prep", Flops: 1e9, OutputBytes: 1 << 20}); err != nil {
		panic(err)
	}
	if err := w.Submit(runtime.TaskSpec{
		Name: "compute", Deps: []string{"prep"},
		Flops: 2e10, InputBytes: 1 << 20, OutputBytes: 1 << 18,
		NeedsFPGA: true, BitstreamID: bsID,
	}); err != nil {
		panic(err)
	}
	return w
}

// cpuWorkflow is a single pure-software task.
func cpuWorkflow() *runtime.Workflow {
	w := runtime.NewWorkflow()
	if err := w.Submit(runtime.TaskSpec{Name: "only", Flops: 5e9, OutputBytes: 1 << 18}); err != nil {
		panic(err)
	}
	return w
}

func testCluster(nodes int) func(int) *platform.Cluster {
	return func(int) *platform.Cluster {
		var ns []*platform.Node
		for i := 0; i < nodes; i++ {
			ns = append(ns, platform.NewNode(fmt.Sprintf("node%02d", i),
				platform.XeonModel(), platform.AlveoU55C()))
		}
		return platform.NewCluster(ns...)
	}
}

func newTestFleet(t *testing.T, reg *platform.Registry, cfg Config) *Fleet {
	t.Helper()
	if cfg.NewCluster == nil {
		cfg.NewCluster = testCluster(2)
	}
	f, err := New(reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestCacheLRUOrderAndOccupancy(t *testing.T) {
	c := newBitstreamCache(2)
	n := platform.NewNode("n", platform.XeonModel(), platform.AlveoU55C(), platform.AlveoU55C())
	c.add("a", n, 0, -1)
	c.add("b", n, 1, -1)
	if got := c.lru(); got == nil || got.id != "a" {
		t.Fatalf("lru = %+v, want a", got)
	}
	if _, ok := c.get("a"); !ok { // touch refreshes recency
		t.Fatal("get(a) missed")
	}
	if got := c.lru(); got == nil || got.id != "b" {
		t.Fatalf("lru after touch = %+v, want b", got)
	}
	if _, ok := c.peek("b"); !ok {
		t.Fatal("peek(b) missed")
	}
	if got := c.lru(); got == nil || got.id != "b" {
		t.Fatalf("peek must not refresh recency; lru = %+v, want b", got)
	}
	if !c.occupied(n, 0, -1) || !c.occupied(n, 1, -1) {
		t.Fatal("both device slots should be occupied")
	}
	c.remove("b")
	if c.occupied(n, 1, -1) {
		t.Fatal("slot 1 should be free after remove")
	}
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
}

// TestCacheAddRefreshInPlace re-deploys a resident bitstream to a
// different device slot: the entry must refresh in place and the stale
// device must be unprogrammed. Pre-fix, add() overwrote the map slot and
// leaked the old (node, dev) — the stale device stayed programmed and
// occupied() reported the dead slot forever.
func TestCacheAddRefreshInPlace(t *testing.T) {
	c := newBitstreamCache(2)
	n := platform.NewNode("n", platform.XeonModel(), platform.AlveoU55C(), platform.AlveoU55C())
	bs := testBitstream("a")
	if _, err := n.Program(0, bs); err != nil {
		t.Fatal(err)
	}
	c.add("a", n, 0, -1)
	if _, err := n.Program(1, bs); err != nil {
		t.Fatal(err)
	}
	c.add("a", n, 1, -1) // same id lands on a different device
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
	if c.occupied(n, 0, -1) {
		t.Fatal("stale slot (n, 0) still reported occupied")
	}
	if !c.occupied(n, 1, -1) {
		t.Fatal("fresh slot (n, 1) not reported occupied")
	}
	if _, loaded := n.Programmed(0); loaded {
		t.Fatal("stale device 0 left programmed")
	}
	slot, ok := c.peek("a")
	if !ok || slot.dev != 1 {
		t.Fatalf("slot = %+v, want dev 1", slot)
	}
	// Refreshing the same (node, dev) must not unprogram the live device.
	c.add("a", n, 1, -1)
	if _, loaded := n.Programmed(1); !loaded {
		t.Fatal("refresh on the same slot unprogrammed the live device")
	}
	// The refresh must count as a touch: "a" is now more recent than "b".
	if _, err := n.Program(0, testBitstream("b")); err != nil {
		t.Fatal(err)
	}
	c.add("b", n, 0, -1)
	c.add("a", n, 1, -1)
	if got := c.lru(); got == nil || got.id != "b" {
		t.Fatalf("lru = %+v, want b (refresh must update recency)", got)
	}
}

func TestNewValidatesConfig(t *testing.T) {
	reg := platform.NewRegistry()
	if _, err := New(nil, Config{Sites: 1, NewCluster: testCluster(1)}); err == nil {
		t.Fatal("nil registry accepted")
	}
	if _, err := New(reg, Config{Sites: 0, NewCluster: testCluster(1)}); err == nil {
		t.Fatal("zero sites accepted")
	}
	if _, err := New(reg, Config{Sites: 1}); err == nil {
		t.Fatal("missing NewCluster accepted")
	}
	if _, err := New(reg, Config{Sites: 1, NewCluster: func(int) *platform.Cluster { return platform.NewCluster() }}); err == nil {
		t.Fatal("empty cluster accepted")
	}
}

func TestSubmitValidatesState(t *testing.T) {
	reg := platform.NewRegistry()
	f, err := New(reg, Config{Sites: 1, NewCluster: testCluster(1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Submit(Request{Workflow: cpuWorkflow()}); err == nil {
		t.Fatal("submit before Start accepted")
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Submit(Request{}); err == nil {
		t.Fatal("nil workflow accepted")
	}
	f.Shutdown()
	if _, err := f.Submit(Request{Workflow: cpuWorkflow()}); err == nil {
		t.Fatal("submit after Shutdown accepted")
	}
	if err := f.Start(); err == nil {
		t.Fatal("double Start accepted")
	}
}

func TestRouterPrefersCachedBitstreamSite(t *testing.T) {
	reg := platform.NewRegistry()
	bs := testBitstream("bs-loc")
	if err := reg.Put(bs); err != nil {
		t.Fatal(err)
	}
	f := newTestFleet(t, reg, Config{Sites: 2})
	defer f.Shutdown()

	tk, err := f.Submit(Request{Tenant: "t0", Workflow: fpgaWorkflow(bs.ID), Arrival: 0})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tk.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Site != "site00" {
		t.Fatalf("first workflow routed to %s, want site00 (tie breaks on site order)", res.Site)
	}
	if res.Deploy <= 0 {
		t.Fatalf("cold deploy should stall, got %g", res.Deploy)
	}

	// A different tenant (no affinity anywhere) lands on the site already
	// holding the bitstream: the cached deployment is free, the other site
	// would pay a cold deploy.
	tk2, err := f.Submit(Request{Tenant: "t1", Workflow: fpgaWorkflow(bs.ID), Arrival: res.Completion})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := tk2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Site != "site00" {
		t.Fatalf("cached-bitstream workflow routed to %s, want site00", res2.Site)
	}
	if res2.Deploy != 0 {
		t.Fatalf("cache hit should deploy for free, got %g", res2.Deploy)
	}
	st := f.Stats()
	if st.CacheHits() != 1 || st.CacheMisses() != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", st.CacheHits(), st.CacheMisses())
	}
}

func TestRouterSpreadsLoadAcrossSites(t *testing.T) {
	reg := platform.NewRegistry()
	f := newTestFleet(t, reg, Config{Sites: 2})
	defer f.Shutdown()

	// Same-instant arrivals from distinct tenants: once site00 carries the
	// first workflow's modelled backlog, the queue-depth term routes the
	// next one to site01.
	var sites []string
	for i := 0; i < 4; i++ {
		tk, err := f.Submit(Request{Tenant: fmt.Sprintf("t%d", i), Workflow: cpuWorkflow(), Arrival: 0})
		if err != nil {
			t.Fatal(err)
		}
		res, err := tk.Wait()
		if err != nil {
			t.Fatal(err)
		}
		sites = append(sites, res.Site)
	}
	if sites[0] != "site00" || sites[1] != "site01" {
		t.Fatalf("expected alternating start, got %v", sites)
	}
	st := f.Stats()
	if st.Sites[0].Served == 0 || st.Sites[1].Served == 0 {
		t.Fatalf("both sites should serve, got %+v", st.Sites)
	}
	if st.Completed != 4 || st.Submitted != 4 {
		t.Fatalf("completed/submitted = %d/%d, want 4/4", st.Completed, st.Submitted)
	}
}

func TestAdmissionRejectsSaturatedSites(t *testing.T) {
	reg := platform.NewRegistry()
	f := newTestFleet(t, reg, Config{Sites: 1, MaxQueueSeconds: 0.001})
	defer f.Shutdown()

	tk, err := f.Submit(Request{Tenant: "t0", Workflow: cpuWorkflow(), Arrival: 0})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tk.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completion <= 0.001 {
		t.Fatalf("workflow too short to saturate: completion %g", res.Completion)
	}
	// The site's frontier now reaches past the admission bound for a
	// workflow arriving at time 0.
	if _, err := f.Submit(Request{Tenant: "t1", Workflow: cpuWorkflow(), Arrival: 0}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("expected ErrSaturated, got %v", err)
	}
	// Arriving after the backlog drains is admitted again.
	tk3, err := f.Submit(Request{Tenant: "t2", Workflow: cpuWorkflow(), Arrival: res.Completion})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk3.Wait(); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Rejected != 1 || st.Completed != 2 {
		t.Fatalf("rejected/completed = %d/%d, want 1/2", st.Rejected, st.Completed)
	}
}

func TestEvictionForcesRedeploy(t *testing.T) {
	reg := platform.NewRegistry()
	bs1, bs2 := testBitstream("bs-one"), testBitstream("bs-two")
	if err := reg.Put(bs1); err != nil {
		t.Fatal(err)
	}
	if err := reg.Put(bs2); err != nil {
		t.Fatal(err)
	}
	var events []Event
	f := newTestFleet(t, reg, Config{
		Sites: 1, CacheSlots: 1,
		Trace: func(ev Event) { events = append(events, ev) },
	})
	defer f.Shutdown()

	arrival := 0.0
	for i, id := range []string{"bs-one", "bs-two", "bs-one"} {
		tk, err := f.Submit(Request{Tenant: "t0", Workflow: fpgaWorkflow(id), Arrival: arrival})
		if err != nil {
			t.Fatal(err)
		}
		res, err := tk.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if res.Deploy <= 0 {
			t.Fatalf("workflow %d should pay a deploy (one-slot cache), got %g", i, res.Deploy)
		}
		arrival = res.Completion
	}
	st := f.Stats()
	s := st.Sites[0]
	if s.CacheMisses != 3 || s.Evictions != 2 || s.Redeploys != 1 {
		t.Fatalf("miss/evict/redeploy = %d/%d/%d, want 3/2/1", s.CacheMisses, s.Evictions, s.Redeploys)
	}
	if st.CacheMisses() != 3 || st.Evictions() != 2 || st.Redeploys() != 1 || st.CacheHits() != 0 {
		t.Fatalf("aggregate churn = %d/%d/%d/%d, want 3/2/1/0",
			st.CacheMisses(), st.Evictions(), st.Redeploys(), st.CacheHits())
	}
	if f.Sites() != 1 {
		t.Fatalf("Sites() = %d, want 1", f.Sites())
	}
	if cl := f.Cluster(0); cl == nil || len(cl.Nodes) == 0 {
		t.Fatal("Cluster(0) should expose the site cluster")
	}
	var kinds []EventKind
	for _, ev := range events {
		kinds = append(kinds, ev.Kind)
	}
	wantSub := []EventKind{EventCacheMiss, EventDeploy, EventCacheMiss, EventEvict,
		EventDeploy, EventCacheMiss, EventEvict, EventRedeploy}
	i := 0
	for _, k := range kinds {
		if i < len(wantSub) && k == wantSub[i] {
			i++
		}
	}
	if i != len(wantSub) {
		t.Fatalf("trace %v missing subsequence %v (matched %d)", kinds, wantSub, i)
	}
}

func TestFallbackWhenNoOnlineDevice(t *testing.T) {
	reg := platform.NewRegistry()
	bs := testBitstream("bs-fb")
	if err := reg.Put(bs); err != nil {
		t.Fatal(err)
	}
	f := newTestFleet(t, reg, Config{
		Sites: 1,
		SiteEvents: [][]runtime.EnvEvent{{
			{Kind: runtime.EnvUnplug, Node: "node00", Device: 0, At: 0},
			{Kind: runtime.EnvUnplug, Node: "node01", Device: 0, At: 0},
		}},
	})
	defer f.Shutdown()

	tk, err := f.Submit(Request{Tenant: "t0", Workflow: fpgaWorkflow(bs.ID), Arrival: 0})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tk.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Deploy != 0 {
		t.Fatalf("no deploy possible, got stall %g", res.Deploy)
	}
	for _, a := range res.Sched.Assignments {
		if a.OnFPGA {
			t.Fatalf("task %s ran on FPGA with every device offline", a.Task)
		}
	}
	st := f.Stats()
	if st.Sites[0].FallbackDeploys != 1 {
		t.Fatalf("fallback deploys = %d, want 1", st.Sites[0].FallbackDeploys)
	}
}

func TestAsyncTicketsResolveOnShutdown(t *testing.T) {
	reg := platform.NewRegistry()
	f := newTestFleet(t, reg, Config{Sites: 2})

	var tickets []*Ticket
	for i := 0; i < 12; i++ {
		tk, err := f.Submit(Request{Tenant: fmt.Sprintf("t%d", i%3), Workflow: cpuWorkflow(), Arrival: float64(i) * 0.01})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	st := f.Shutdown()
	for i, tk := range tickets {
		select {
		case <-tk.Done():
		default:
			t.Fatalf("ticket %d unresolved after Shutdown", i)
		}
		if _, err := tk.Wait(); err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
	}
	if st.Completed != 12 {
		t.Fatalf("completed = %d, want 12", st.Completed)
	}
	if st.Makespan <= 0 {
		t.Fatal("makespan should be positive")
	}
	// Engine stats surfaced per site.
	for _, s := range st.Sites {
		if s.Engine.Submitted != s.Served {
			t.Fatalf("%s: engine submitted %d != served %d", s.Name, s.Engine.Submitted, s.Served)
		}
		if s.Engine.Active != 0 || s.Engine.ReadyTasks != 0 {
			t.Fatalf("%s: engine should be drained, got %+v", s.Name, s.Engine)
		}
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EventRoute, EventReject, EventCacheHit, EventCacheMiss,
		EventDeploy, EventEvict, EventRedeploy, EventFallback, EventDone, EventKind(99)}
	want := []string{"route", "reject", "cache-hit", "cache-miss", "deploy",
		"evict", "redeploy", "fallback", "done", "unknown"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Fatalf("kind %d = %q, want %q", i, k.String(), want[i])
		}
	}
}

func TestTicketQueuePushAfterCloseRefuses(t *testing.T) {
	q := newTicketQueue()
	if !q.push(work{}) {
		t.Fatal("push on an open queue must succeed")
	}
	q.close()
	if q.push(work{}) {
		t.Fatal("push on a closed queue must refuse (its worker may be gone)")
	}
	// Items enqueued before close still drain.
	if _, ok := q.pop(); !ok {
		t.Fatal("queued item should survive close")
	}
	if _, ok := q.pop(); ok {
		t.Fatal("drained closed queue should report done")
	}
}

// TestEngineTraceMergeAndServeError covers the two serve-side trace paths
// the eviction test does not: per-site engine events flowing through
// Config.EngineTrace tagged with their site name, and the error path —
// a site whose nodes are all dead must resolve the ticket with an error
// and trace an EventDone carrying the error detail.
func TestEngineTraceMergeAndServeError(t *testing.T) {
	reg := platform.NewRegistry()
	var events []Event
	var engSites []string
	f := newTestFleet(t, reg, Config{
		Sites: 1,
		Trace: func(ev Event) { events = append(events, ev) },
		EngineTrace: func(site string, ev runtime.Event) {
			engSites = append(engSites, fmt.Sprintf("%s:%d:%s", site, ev.Kind, ev.Task))
		},
	})
	defer f.Shutdown()

	tk, err := f.Submit(Request{Tenant: "t0", Workflow: cpuWorkflow()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(engSites) == 0 {
		t.Fatal("no engine events reached EngineTrace")
	}
	for _, s := range engSites {
		if !strings.HasPrefix(s, "site00:") {
			t.Fatalf("engine event not tagged with its site: %q", s)
		}
	}

	for _, n := range f.Cluster(0).Nodes {
		n.Fail(0)
	}
	tk, err = f.Submit(Request{Tenant: "t0", Workflow: cpuWorkflow(), Arrival: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(); err == nil {
		t.Fatal("serving on an all-dead site must error")
	}
	last := events[len(events)-1]
	if last.Kind != EventDone || !strings.Contains(last.Detail, "error:") {
		t.Fatalf("last event = %+v, want EventDone with error detail", last)
	}
	st := f.Stats()
	if st.Sites[0].Failed != 1 {
		t.Fatalf("site failed count = %d, want 1", st.Sites[0].Failed)
	}
}

func TestPartialReconfigSharesOneDevice(t *testing.T) {
	// Two distinct kernels on a one-device site: with partial
	// reconfiguration and a two-slot cache they land in two PR regions of
	// the same card — the alternating stream pays two cold region deploys
	// and then runs eviction-free, where whole-device programming churns.
	reg := platform.NewRegistry()
	bs1, bs2 := testBitstream("bs-pr-a"), testBitstream("bs-pr-b")
	for _, bs := range []platform.Bitstream{bs1, bs2} {
		if err := reg.Put(bs); err != nil {
			t.Fatal(err)
		}
	}
	serve := func(partial bool) ([]float64, Stats) {
		var events []Event
		f := newTestFleet(t, reg, Config{
			Sites: 1, CacheSlots: 2, PartialReconfig: partial,
			NewCluster: testCluster(1),
			Trace:      func(ev Event) { events = append(events, ev) },
		})
		defer f.Shutdown()
		var deploys []float64
		arrival := 0.0
		for _, id := range []string{"bs-pr-a", "bs-pr-b", "bs-pr-a", "bs-pr-b"} {
			tk, err := f.Submit(Request{Tenant: "t0", Workflow: fpgaWorkflow(id), Arrival: arrival})
			if err != nil {
				t.Fatal(err)
			}
			res, err := tk.Wait()
			if err != nil {
				t.Fatal(err)
			}
			deploys = append(deploys, res.Deploy)
			arrival = res.Completion
		}
		if partial {
			found := false
			for _, ev := range events {
				if ev.Kind == EventDeploy && strings.Contains(ev.Detail, ".r") {
					found = true
				}
			}
			if !found {
				t.Fatalf("partial deploys should target region slots, trace: %+v", events)
			}
		}
		return deploys, f.Stats()
	}

	prDeploys, prStats := serve(true)
	wholeDeploys, wholeStats := serve(false)

	// Partial: two cold region deploys, then both kernels stay resident.
	if prDeploys[0] <= 0 || prDeploys[1] <= 0 {
		t.Fatalf("partial cold deploys = %v, want both paid", prDeploys)
	}
	if prDeploys[2] != 0 || prDeploys[3] != 0 {
		t.Fatalf("partial revisits = %v, want free (both kernels resident)", prDeploys[2:])
	}
	if prStats.Evictions() != 0 || prStats.CacheHits() != 2 {
		t.Fatalf("partial evictions/hits = %d/%d, want 0/2", prStats.Evictions(), prStats.CacheHits())
	}
	// Whole-device: the single card holds one image at a time, so every
	// alternation evicts and redeploys despite the two-slot cache.
	if wholeStats.Evictions() == 0 || wholeStats.Redeploys() == 0 {
		t.Fatalf("whole-device churn = evict %d redeploy %d, want > 0",
			wholeStats.Evictions(), wholeStats.Redeploys())
	}
	// Region images are a quarter of the card: cold partial deploys must
	// be cheaper than whole-device ones.
	if prDeploys[0] >= wholeDeploys[0] {
		t.Fatalf("region deploy %g should undercut whole-device deploy %g",
			prDeploys[0], wholeDeploys[0])
	}
}
