package fleet

import (
	"bytes"
	"errors"
	"fmt"
	gort "runtime"
	"testing"

	"everest/internal/dataset"
	"everest/internal/netsim"
	"everest/internal/platform"
	"everest/internal/runtime"
)

// dataWorkflow is a single software task reading the given partitions and
// writing the given outputs.
func dataWorkflow(reads, writes []dataset.Ref) *runtime.Workflow {
	w := runtime.NewWorkflow()
	if err := w.Submit(runtime.TaskSpec{
		Name: "stage", Flops: 1e9, Reads: reads, Writes: writes,
	}); err != nil {
		panic(err)
	}
	return w
}

// bigRef is a partition large enough that its registry-fabric transfer
// dominates the router's tenant-affinity nudge.
func bigRef(name string, p int) dataset.Ref {
	return dataset.Ref{Name: name, Partition: p, Bytes: 1 << 30}
}

func TestDatasetLocalityRouting(t *testing.T) {
	f := newTestFleet(t, platform.NewRegistry(), Config{Sites: 3, DatasetStoreBytes: -1})
	defer f.Shutdown()
	ref := bigRef("pts", 0)
	if err := f.PlaceDataset(2, 0, ref); err != nil {
		t.Fatal(err)
	}
	tk, err := f.Submit(Request{Tenant: "t0", Workflow: dataWorkflow([]dataset.Ref{ref}, nil), Arrival: 0})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tk.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Site != "site02" {
		t.Fatalf("routed to %s, want site02 (the partition's home)", res.Site)
	}
	if res.Fetch != 0 || res.FetchedBytes != 0 {
		t.Fatalf("home-site serve paid fetch %g/%dB, want none", res.Fetch, res.FetchedBytes)
	}
	st := f.Stats()
	if st.DatasetFetchedBytes() != 0 {
		t.Fatalf("fleet shipped %dB, want 0", st.DatasetFetchedBytes())
	}
}

func TestPlacementBlindFetches(t *testing.T) {
	wan, err := netsim.StackByName("wan1g")
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	f := newTestFleet(t, platform.NewRegistry(), Config{
		Sites: 3, PlacementBlind: true, RegistryNet: &wan, DatasetStoreBytes: -1,
		Trace: func(ev Event) { events = append(events, ev) },
	})
	defer f.Shutdown()
	ref := bigRef("pts", 0)
	if err := f.PlaceDataset(2, 0, ref); err != nil {
		t.Fatal(err)
	}
	tk, err := f.Submit(Request{Tenant: "t0", Workflow: dataWorkflow([]dataset.Ref{ref}, nil), Arrival: 0})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tk.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Site != "site00" {
		t.Fatalf("blind router sent the work to %s, want site00 (tie order)", res.Site)
	}
	want := wan.SendSeconds(ref.Bytes)
	if res.FetchedBytes != ref.Bytes || res.Fetch != want {
		t.Fatalf("fetch = %g/%dB, want %g/%dB", res.Fetch, res.FetchedBytes, want, ref.Bytes)
	}
	// The staged copy is admitted: the serving site now holds it too.
	if !f.DatasetResident(0, ref) || !f.DatasetResident(2, ref) {
		t.Fatal("fetched copy not resident at the serving site")
	}
	st := f.Stats()
	var fetches, misses int
	for _, s := range st.Sites {
		fetches += s.DatasetFetches
		misses += s.DatasetMisses
	}
	if fetches != 1 || misses != 1 || st.DatasetFetchedBytes() != ref.Bytes {
		t.Fatalf("fetches/misses/bytes = %d/%d/%d", fetches, misses, st.DatasetFetchedBytes())
	}
	found := false
	for _, ev := range events {
		if ev.Kind == EventDataFetch && ev.Site == "site00" {
			found = true
		}
	}
	if !found {
		t.Fatal("no EventDataFetch in the trace")
	}
}

func TestCrossWorkflowDatasetReuse(t *testing.T) {
	f := newTestFleet(t, platform.NewRegistry(), Config{Sites: 3, DatasetStoreBytes: -1})
	defer f.Shutdown()
	out := bigRef("features", 0)
	// Producer: an anonymous-input workflow publishing the feature table.
	tk, err := f.Submit(Request{Tenant: "producer", Workflow: dataWorkflow(nil, []dataset.Ref{out}), Arrival: 0})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tk.Wait()
	if err != nil {
		t.Fatal(err)
	}
	var home int
	if _, err := fmt.Sscanf(res.Site, "site%02d", &home); err != nil {
		t.Fatal(err)
	}
	if !f.DatasetResident(home, out) {
		t.Fatal("published output not resident at the producing site")
	}
	// Consumer from a different tenant: data gravity must pull it to the
	// producer's site, and the resident table is read in place.
	tk2, err := f.Submit(Request{Tenant: "consumer", Workflow: dataWorkflow([]dataset.Ref{out}, nil), Arrival: res.Completion})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := tk2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Site != res.Site {
		t.Fatalf("consumer routed to %s, want the producer's %s", res2.Site, res.Site)
	}
	if res2.FetchedBytes != 0 {
		t.Fatalf("consumer shipped %dB for a resident table", res2.FetchedBytes)
	}
}

// TestUnknownReadsStayFree pins the known-to-catalog rule: a ref nobody
// placed or published is external source data — it steers nothing, costs
// nothing, and is never probed or fetched.
func TestUnknownReadsStayFree(t *testing.T) {
	f := newTestFleet(t, platform.NewRegistry(), Config{Sites: 2})
	defer f.Shutdown()
	ref := bigRef("external/source", 0)
	tk, err := f.Submit(Request{Tenant: "t0", Workflow: dataWorkflow([]dataset.Ref{ref}, nil), Arrival: 0})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tk.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Fetch != 0 || res.FetchedBytes != 0 {
		t.Fatalf("unknown read was fetched: %g/%dB", res.Fetch, res.FetchedBytes)
	}
	st := f.Stats()
	for _, s := range st.Sites {
		if s.DatasetHits != 0 || s.DatasetMisses != 0 {
			t.Fatalf("unknown read was probed: %+v", s)
		}
	}
}

// TestGuaranteedFetchBound pins the admission debt of known reads: the
// proven bound must cover a completely cold dataset store even when the
// serve-time fetch turns out free, and a deadline under that worst case
// must be refused.
func TestGuaranteedFetchBound(t *testing.T) {
	wan, err := netsim.StackByName("wan1g")
	if err != nil {
		t.Fatal(err)
	}
	reg := platform.NewRegistry()
	f := newTestFleet(t, reg, Config{Sites: 1, RegistryNet: &wan, DatasetStoreBytes: -1})
	defer f.Shutdown()
	ref := bigRef("pts", 0)
	if err := f.PlaceDataset(0, 0, ref); err != nil {
		t.Fatal(err)
	}
	fetchWorst := wan.SendSeconds(ref.Bytes)
	tk, err := f.Submit(Request{Tenant: "t0", Workflow: dataWorkflow([]dataset.Ref{ref}, nil),
		Arrival: 0, Guaranteed: true, Deadline: fetchWorst + 3600})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tk.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Bound < fetchWorst {
		t.Fatalf("bound %g does not cover the cold-store fetch %g", res.Bound, fetchWorst)
	}
	if res.Fetch != 0 {
		t.Fatalf("resident partition paid a fetch stall %g", res.Fetch)
	}
	// A deadline below the data-staging worst case is unprovable.
	if _, err := f.Submit(Request{Tenant: "t0", Workflow: dataWorkflow([]dataset.Ref{ref}, nil),
		Arrival: res.Completion, Guaranteed: true, Deadline: fetchWorst / 2}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("deadline under fetch bound admitted (err=%v)", err)
	}
}

// TestSiteCostSingleDeployCharge is the PR-10 audit regression: a site
// that misses the cache AND has no online device to host the bitstream
// must be priced exactly one fallback penalty — the deploy-estimate and
// fallback arms of siteCost are alternatives, never additive. The audit
// found no double-count on any fetchEstimate/estimateDeploy call site;
// this pins that invariant.
func TestSiteCostSingleDeployCharge(t *testing.T) {
	reg := platform.NewRegistry()
	bs := testBitstream("bs-audit")
	if err := reg.Put(bs); err != nil {
		t.Fatal(err)
	}
	f := newTestFleet(t, reg, Config{Sites: 1, SiteEvents: [][]runtime.EnvEvent{{
		{Kind: runtime.EnvUnplug, Node: "node00", Device: 0, At: 0},
		{Kind: runtime.EnvUnplug, Node: "node01", Device: 0, At: 0},
	}}})
	defer f.Shutdown()
	s := f.sites[0]
	cost, ok := f.siteCost(0, s, 0, false, []string{bs.ID}, nil, 0.5)
	if !ok {
		t.Fatal("site not a candidate")
	}
	// wait 0 (idle) + affinity (no last site) + exactly one fallback.
	want := f.cfg.AffinitySeconds + f.cfg.FallbackSeconds
	if cost != want {
		t.Fatalf("cost = %g, want exactly %g (affinity + one fallback, no double charge)", cost, want)
	}
	// With the device online, the same probe prices exactly one deploy
	// estimate instead — again no stacking of the two arms.
	f2 := newTestFleet(t, reg, Config{Sites: 1})
	defer f2.Shutdown()
	s2 := f2.sites[0]
	est, ok := f2.estimateDeploy(s2, bs.ID, 0.5)
	if !ok || est <= 0 {
		t.Fatalf("deploy estimate = %g/%v", est, ok)
	}
	cost2, ok := f2.siteCost(0, s2, 0, false, []string{bs.ID}, nil, 0.5)
	if !ok {
		t.Fatal("site 2 not a candidate")
	}
	if want2 := f2.cfg.AffinitySeconds + est; cost2 != want2 {
		t.Fatalf("cost = %g, want exactly %g (affinity + one deploy estimate)", cost2, want2)
	}
}

// TestLineageDeterminism is the PR-10 determinism satellite: two
// concurrent workflows publish the same dataset name, and the resident
// version must resolve by the (time, workflow id, task) tie-break — with
// the full fleet trace byte-identical across GOMAXPROCS widths.
func TestLineageDeterminism(t *testing.T) {
	run := func() []byte {
		var buf bytes.Buffer
		f := newTestFleet(t, platform.NewRegistry(), Config{Sites: 1,
			Trace: func(ev Event) {
				fmt.Fprintf(&buf, "%s %s %s %s %.9f %s\n", ev.Kind, ev.Site, ev.Tenant, ev.Workflow, ev.Time, ev.Detail)
			}})
		model := dataset.Single("shared/model", 1<<20)
		// Two same-arrival writers of the same name on one site: serve
		// order, completion times, and hence lineage are modelled-time
		// facts, not host-scheduling ones.
		var tks []*Ticket
		for _, name := range []string{"trainA", "trainB"} {
			tk, err := f.Submit(Request{Tenant: "t0", Name: name,
				Workflow: dataWorkflow(nil, []dataset.Ref{model}), Arrival: 0})
			if err != nil {
				t.Fatal(err)
			}
			tks = append(tks, tk)
		}
		for _, tk := range tks {
			if _, err := tk.Wait(); err != nil {
				t.Fatal(err)
			}
		}
		s := f.sites[0]
		s.mu.Lock()
		v, ok := s.dstore.Version(model)
		s.mu.Unlock()
		if !ok {
			t.Fatal("model not resident")
		}
		// Both writers complete at distinct modelled times; the later
		// completion owns the name. With equal times the higher workflow id
		// (trainB) would win — either way the outcome is a pure function of
		// (time, workflow, task).
		fmt.Fprintf(&buf, "version %s %s %.9f\n", v.Workflow, v.Task, v.Time)
		f.Shutdown()
		return buf.Bytes()
	}
	ref := atGOMAXPROCS(1, run)
	for _, procs := range []int{4, 8} {
		if got := atGOMAXPROCS(procs, run); !bytes.Equal(ref, got) {
			t.Fatalf("lineage trace diverged at GOMAXPROCS=%d:\n--- 1\n%s\n--- %d\n%s", procs, ref, procs, got)
		}
	}
}

// atGOMAXPROCS runs fn with the scheduler width pinned to n.
func atGOMAXPROCS(n int, fn func() []byte) []byte {
	prev := gort.GOMAXPROCS(n)
	defer gort.GOMAXPROCS(prev)
	return fn()
}

// TestDatasetStoreBounded pins the LRU bound end to end: placements past
// the site's capacity evict the oldest partitions and the counters say so.
func TestDatasetStoreBounded(t *testing.T) {
	f := newTestFleet(t, platform.NewRegistry(), Config{Sites: 1, DatasetStoreBytes: 2 << 20})
	defer f.Shutdown()
	refs := dataset.Partitioned("pts", 3<<20, 3) // 3 MiB over a 2 MiB store
	for _, r := range refs {
		if err := f.PlaceDataset(0, 0, r); err != nil {
			t.Fatal(err)
		}
	}
	if f.DatasetResident(0, refs[0]) {
		t.Fatal("oldest partition survived past the store bound")
	}
	if !f.DatasetResident(0, refs[2]) {
		t.Fatal("newest partition missing")
	}
	st := f.Stats()
	if st.Sites[0].DatasetEvictions == 0 {
		t.Fatal("no evictions counted")
	}
}
