package netsim

import (
	"testing"
	"testing/quick"
)

func TestGoodputBelowLineRate(t *testing.T) {
	for _, s := range []Stack{TCP10G(), UDP10G()} {
		g := s.GoodputGBs()
		if g <= 0 || g >= s.LineRateGbps/8 {
			t.Errorf("%s goodput %g must be positive and below line rate", s.Name, g)
		}
	}
	if UDP10G().GoodputGBs() <= TCP10G().GoodputGBs() {
		t.Error("UDP goodput should exceed TCP goodput")
	}
}

func TestSendSecondsSmallVsLarge(t *testing.T) {
	s := TCP10G()
	small := s.SendSeconds(64)
	// Small messages are latency-dominated.
	if small < s.LatencyUs*1e-6 {
		t.Error("send cannot beat latency")
	}
	if small > 2*s.LatencyUs*1e-6 {
		t.Errorf("64B send %g should be latency-dominated", small)
	}
	// Large messages approach goodput.
	n := int64(1 << 30)
	large := s.SendSeconds(n)
	ideal := float64(n) / (s.GoodputGBs() * 1e9)
	if large < ideal*0.95 || large > ideal*1.1 {
		t.Errorf("1GiB send %g, ideal %g", large, ideal)
	}
}

func TestSendMonotoneProperty(t *testing.T) {
	s := UDP10G()
	prop := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return s.SendSeconds(x) <= s.SendSeconds(y)+1e-15
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWorldValidation(t *testing.T) {
	if _, err := NewWorld(0, TCP10G()); err == nil {
		t.Error("0 ranks must fail")
	}
	w, err := NewWorld(4, TCP10G())
	if err != nil || w.Ranks != 4 {
		t.Fatal(err)
	}
}

func TestCollectives(t *testing.T) {
	w, _ := NewWorld(8, UDP10G())
	single, _ := NewWorld(1, UDP10G())
	if single.Broadcast(1<<20) != 0 || single.AllReduce(1<<20) != 0 || single.Barrier() != 0 {
		t.Error("single-rank collectives must be free")
	}
	bc := w.Broadcast(1 << 20)
	p2p := w.SendRecv(1 << 20)
	if bc <= p2p {
		t.Error("8-rank broadcast must cost more than one send")
	}
	if bc > 3.1*p2p {
		t.Errorf("binomial broadcast should take ~log2(8)=3 steps, got %g vs %g", bc, p2p)
	}
	// Ring allreduce moves ~2n bytes regardless of p (for large n).
	ar := w.AllReduce(1 << 24)
	twice := 2 * w.SendRecv(1<<24)
	if ar > twice*1.5 {
		t.Errorf("ring allreduce %g should be near 2x send %g", ar, twice)
	}
	if w.Gather(1<<20) <= p2p {
		t.Error("gather at root must serialize arrivals")
	}
	if w.Scatter(1<<10) != w.Gather(1<<10) {
		t.Error("scatter and gather should be symmetric in this model")
	}
	if w.Barrier() <= 0 {
		t.Error("barrier must cost time")
	}
}

func TestWANStacks(t *testing.T) {
	metro, err := StackByName("wan10g")
	if err != nil {
		t.Fatal(err)
	}
	geo, err := StackByName("wan1g")
	if err != nil {
		t.Fatal(err)
	}
	intra := Eth100G()
	// An Alveo-class configuration image (~20 MB). The WAN fetch must be
	// the dominant cold-start cost: slower than the intra-region registry
	// fabric by a wide margin, and the geo link slower than the metro one.
	const image = 20 << 20
	if metro.SendSeconds(image) <= 10*intra.SendSeconds(image) {
		t.Fatalf("wan10g image fetch %gs should dwarf eth100g %gs",
			metro.SendSeconds(image), intra.SendSeconds(image))
	}
	if geo.SendSeconds(image) <= metro.SendSeconds(image) {
		t.Fatalf("wan1g image fetch %gs should exceed wan10g %gs",
			geo.SendSeconds(image), metro.SendSeconds(image))
	}
	// Propagation latency floors: even an empty control message pays the
	// one-way WAN latency, which is what the region router prices against
	// local queue wait.
	if metro.SendSeconds(0) < metro.LatencyUs*1e-6 || geo.SendSeconds(0) < geo.LatencyUs*1e-6 {
		t.Fatal("WAN sends cannot beat propagation latency")
	}
	if geo.LatencyUs <= metro.LatencyUs {
		t.Fatal("geo WAN latency must exceed metro WAN latency")
	}
	for _, s := range []Stack{metro, geo} {
		if g := s.GoodputGBs(); g <= 0 || g >= s.LineRateGbps/8 {
			t.Errorf("%s goodput %g must be positive and below line rate", s.Name, g)
		}
	}
}

func TestAllReduceScalesGentlyWithRanks(t *testing.T) {
	n := int64(1 << 26)
	w2, _ := NewWorld(2, UDP10G())
	w16, _ := NewWorld(16, UDP10G())
	r2 := w2.AllReduce(n)
	r16 := w16.AllReduce(n)
	// Ring allreduce is nearly rank-independent for large messages.
	if r16 > r2*2.5 {
		t.Errorf("allreduce should scale gently: p=2 %g vs p=16 %g", r2, r16)
	}
}

func TestStackByNameEth100G(t *testing.T) {
	st, err := StackByName("eth100g")
	if err != nil {
		t.Fatal(err)
	}
	tcp, err := StackByName("tcp10g")
	if err != nil {
		t.Fatal(err)
	}
	// The registry fabric must dominate the cloudFPGA stacks on both axes:
	// a bulk bitstream transfer and the per-message latency floor.
	const bitstream = 20 << 20
	if st.SendSeconds(bitstream) >= tcp.SendSeconds(bitstream) {
		t.Fatalf("eth100g bulk transfer %gs not faster than tcp10g %gs",
			st.SendSeconds(bitstream), tcp.SendSeconds(bitstream))
	}
	if st.LatencyUs >= tcp.LatencyUs {
		t.Fatalf("eth100g latency %gus not below tcp10g %gus", st.LatencyUs, tcp.LatencyUs)
	}
	if st.GoodputGBs() >= st.LineRateGbps/8 {
		t.Fatal("goodput must stay below line rate")
	}
	if _, err := StackByName("bogus"); err == nil {
		t.Fatal("bogus stack accepted")
	}
}
