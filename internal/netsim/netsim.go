// Package netsim models the 10 Gbps TCP/UDP network stack of the IBM
// cloudFPGA platform (paper §III) and the ZRLMPI unified programming model
// (Ringlein et al., FCCM 2020 — paper ref [21]): message passing between
// network-attached FPGAs and hosts with hardware-agnostic synchronous
// communication routines.
//
// Time is modelled in seconds; the packetization model charges per-MTU
// framing overhead, which is what makes small messages latency-bound and
// large messages bandwidth-bound — the behaviour the DOSA/ZRLMPI layer is
// designed around.
package netsim

import (
	"fmt"
	"math"
)

// Stack is one transport configuration.
type Stack struct {
	Name          string
	LineRateGbps  float64 // physical line rate
	MTU           int     // payload bytes per frame
	FrameOverhead int     // header bytes per frame (eth+ip+proto)
	LatencyUs     float64 // one-way wire+stack latency
	AckFactor     float64 // goodput derate for acknowledged transports
}

// TCP10G returns the cloudFPGA 10G TCP stack model.
func TCP10G() Stack {
	return Stack{Name: "tcp10g", LineRateGbps: 10, MTU: 1460, FrameOverhead: 78, LatencyUs: 25, AckFactor: 0.95}
}

// UDP10G returns the cloudFPGA 10G UDP stack model.
func UDP10G() Stack {
	return Stack{Name: "udp10g", LineRateGbps: 10, MTU: 1472, FrameOverhead: 66, LatencyUs: 20, AckFactor: 1.0}
}

// Eth100G returns the data-center fabric joining federated sites to the
// bitstream registry (jumbo frames, RDMA-class latency). Deployment tiers
// price registry→site bitstream transfers over it; it is an order of
// magnitude faster than the cloudFPGA 10G stacks, so reconfiguration
// latency, not the wire, dominates a cold deploy.
func Eth100G() Stack {
	return Stack{Name: "eth100g", LineRateGbps: 100, MTU: 4096, FrameOverhead: 58, LatencyUs: 3, AckFactor: 1.0}
}

// WAN10G returns the metro-scale inter-region fabric: a leased 10G wave
// between data centers in the same metropolitan area. Bandwidth matches
// the intra-site cloudFPGA stacks but the propagation latency is three
// orders of magnitude higher, so handing a workflow (or a bitstream
// image) across regions is latency-priced, not bandwidth-priced, for
// anything small.
func WAN10G() Stack {
	return Stack{Name: "wan10g", LineRateGbps: 10, MTU: 1460, FrameOverhead: 78, LatencyUs: 5000, AckFactor: 0.95}
}

// WAN1G returns the geo-scale inter-region fabric: a shared 1G VPN link
// between continents. Both the wire time of a multi-megabyte
// configuration image and the 40 ms propagation latency are significant,
// which is what makes cold inter-region bitstream fetches dominate
// cold-start latency — and speculative prefetch worth building.
func WAN1G() Stack {
	return Stack{Name: "wan1g", LineRateGbps: 1, MTU: 1460, FrameOverhead: 78, LatencyUs: 40000, AckFactor: 0.9}
}

// StackByName resolves "tcp10g", "udp10g", "eth100g", "wan10g", or "wan1g".
func StackByName(name string) (Stack, error) {
	switch name {
	case "tcp10g":
		return TCP10G(), nil
	case "udp10g":
		return UDP10G(), nil
	case "eth100g":
		return Eth100G(), nil
	case "wan10g":
		return WAN10G(), nil
	case "wan1g":
		return WAN1G(), nil
	default:
		return Stack{}, fmt.Errorf("netsim: unknown stack %q (want tcp10g, udp10g, eth100g, wan10g, or wan1g)", name)
	}
}

// GoodputGBs returns the achievable payload bandwidth in GB/s.
func (s Stack) GoodputGBs() float64 {
	eff := float64(s.MTU) / float64(s.MTU+s.FrameOverhead)
	return s.LineRateGbps / 8 * eff * s.AckFactor
}

// SendSeconds models a one-way transfer of n payload bytes.
func (s Stack) SendSeconds(n int64) float64 {
	if n < 0 {
		n = 0
	}
	frames := (n + int64(s.MTU) - 1) / int64(s.MTU)
	if frames == 0 {
		frames = 1
	}
	wire := float64(n+frames*int64(s.FrameOverhead)) / (s.LineRateGbps / 8 * 1e9)
	return s.LatencyUs*1e-6 + wire/s.AckFactor
}

// RoundTripSeconds models a request/response of the given payload sizes.
func (s Stack) RoundTripSeconds(req, resp int64) float64 {
	return s.SendSeconds(req) + s.SendSeconds(resp)
}

// World is a ZRLMPI communicator over `Ranks` endpoints (hosts or FPGAs).
type World struct {
	Ranks int
	Stack Stack
}

// NewWorld validates and builds a communicator.
func NewWorld(ranks int, s Stack) (World, error) {
	if ranks < 1 {
		return World{}, fmt.Errorf("netsim: world needs >= 1 rank, got %d", ranks)
	}
	return World{Ranks: ranks, Stack: s}, nil
}

// SendRecv models a point-to-point message of n bytes.
func (w World) SendRecv(n int64) float64 { return w.Stack.SendSeconds(n) }

// Broadcast models a binomial-tree broadcast of n bytes to all ranks.
func (w World) Broadcast(n int64) float64 {
	if w.Ranks <= 1 {
		return 0
	}
	steps := math.Ceil(math.Log2(float64(w.Ranks)))
	return steps * w.Stack.SendSeconds(n)
}

// AllReduce models a ring allreduce of n bytes: 2(p-1) steps moving n/p.
func (w World) AllReduce(n int64) float64 {
	p := w.Ranks
	if p <= 1 {
		return 0
	}
	chunk := n / int64(p)
	if chunk < 1 {
		chunk = 1
	}
	return float64(2*(p-1)) * w.Stack.SendSeconds(chunk)
}

// Gather models gathering n bytes from every rank at the root (serialized
// arrivals on the root's link).
func (w World) Gather(n int64) float64 {
	if w.Ranks <= 1 {
		return 0
	}
	return float64(w.Ranks-1) * w.Stack.SendSeconds(n)
}

// Scatter models the root sending n bytes to each rank.
func (w World) Scatter(n int64) float64 { return w.Gather(n) }

// Barrier models a dissemination barrier (log2 p rounds of empty messages).
func (w World) Barrier() float64 {
	if w.Ranks <= 1 {
		return 0
	}
	steps := math.Ceil(math.Log2(float64(w.Ranks)))
	return steps * w.Stack.SendSeconds(0)
}
