package netsim

import (
	"math"
	"testing"
)

// The packetization model charges one FrameOverhead per MTU-sized frame
// (minimum one frame, even for empty payloads) on top of the one-way stack
// latency. These tests pin the frame-count semantics at the boundaries and
// the latency-bound -> bandwidth-bound crossover that separates ZRLMPI
// small-message from bulk-transfer behaviour.

func approxEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12+1e-9*math.Abs(b)
}

func TestSendSecondsFramingEdges(t *testing.T) {
	for _, stack := range []Stack{TCP10G(), UDP10G()} {
		rate := stack.LineRateGbps / 8 * 1e9 // bytes per second on the wire
		cases := []struct {
			name   string
			bytes  int64
			frames int64 // expected frames charged
		}{
			{"zero-byte payload still pays one frame", 0, 1},
			{"one byte", 1, 1},
			{"exactly one MTU", int64(stack.MTU), 1},
			{"MTU+1 spills into a second frame", int64(stack.MTU) + 1, 2},
			{"exactly two MTUs", 2 * int64(stack.MTU), 2},
			{"two MTUs + 1", 2*int64(stack.MTU) + 1, 3},
		}
		for _, tc := range cases {
			t.Run(stack.Name+"/"+tc.name, func(t *testing.T) {
				wireBytes := float64(tc.bytes + tc.frames*int64(stack.FrameOverhead))
				want := stack.LatencyUs*1e-6 + wireBytes/rate/stack.AckFactor
				got := stack.SendSeconds(tc.bytes)
				if !approxEq(got, want) {
					t.Fatalf("SendSeconds(%d) = %.12g, want %.12g (%d frames)",
						tc.bytes, got, want, tc.frames)
				}
			})
		}

		// The marginal cost of the spill byte is a full frame overhead, not
		// one byte: the framing cliff the DOSA/ZRLMPI layer packs around.
		cliff := stack.SendSeconds(int64(stack.MTU)+1) - stack.SendSeconds(int64(stack.MTU))
		perByte := 1 / rate / stack.AckFactor
		wantCliff := (1 + float64(stack.FrameOverhead)) * perByte
		if !approxEq(cliff, wantCliff) {
			t.Errorf("%s: MTU+1 cliff = %.4g, want frame overhead %.4g", stack.Name, cliff, wantCliff)
		}
	}
}

// wireSeconds is the bandwidth-dependent component of a send.
func wireSeconds(s Stack, n int64) float64 {
	return s.SendSeconds(n) - s.LatencyUs*1e-6
}

// crossoverBytes returns the smallest payload whose wire time reaches the
// stack latency — the latency-bound -> bandwidth-bound boundary.
// SendSeconds is monotone non-decreasing in the payload, so binary search
// is valid.
func crossoverBytes(s Stack) int64 {
	lo, hi := int64(0), int64(1<<21)
	for lo < hi {
		mid := (lo + hi) / 2
		if wireSeconds(s, mid) >= s.LatencyUs*1e-6 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

func TestLatencyToBandwidthCrossover(t *testing.T) {
	cases := []struct {
		stack  Stack
		lo, hi int64 // expected crossover window (bytes)
	}{
		// TCP10G: latency 25us, 95% goodput, 78B/frame overhead:
		// n + 78*ceil(n/1460) = 25e-6 * 1.25e9 * 0.95 = 29687.5 -> n ~ 28128.
		{TCP10G(), 27900, 28300},
		// UDP10G: latency 20us, no ack derate, 66B/frame overhead:
		// n + 66*ceil(n/1472) = 20e-6 * 1.25e9 = 25000 -> n ~ 23878.
		{UDP10G(), 23700, 24000},
	}
	var got []int64
	for _, tc := range cases {
		x := crossoverBytes(tc.stack)
		got = append(got, x)
		if x < tc.lo || x > tc.hi {
			t.Errorf("%s: crossover at %d bytes, want within [%d, %d]",
				tc.stack.Name, x, tc.lo, tc.hi)
		}
		// Below the crossover the stack latency dominates; above, the wire.
		if w := wireSeconds(tc.stack, x/2); w >= tc.stack.LatencyUs*1e-6 {
			t.Errorf("%s: %d bytes should be latency-bound (wire %.4g)", tc.stack.Name, x/2, w)
		}
		if w := wireSeconds(tc.stack, 4*x); w <= tc.stack.LatencyUs*1e-6 {
			t.Errorf("%s: %d bytes should be bandwidth-bound (wire %.4g)", tc.stack.Name, 4*x, w)
		}
	}
	// UDP's lower latency and ack-free goodput move its crossover earlier:
	// it turns bandwidth-bound on smaller messages than TCP.
	if got[1] >= got[0] {
		t.Errorf("udp crossover %d should precede tcp crossover %d", got[1], got[0])
	}
}
