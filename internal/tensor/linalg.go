package tensor

import (
	"fmt"
	"math"
)

// Cholesky computes the lower-triangular factor L of a symmetric positive
// definite matrix A = L Lᵀ. It returns an error if A is not SPD (within
// numerical tolerance), which callers like kernel ridge regression handle by
// raising the regularization.
func Cholesky(a *Tensor) (*Tensor, error) {
	n, err := squareDim(a)
	if err != nil {
		return nil, err
	}
	l := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("tensor: matrix not positive definite at pivot %d (%.3g)", i, sum)
				}
				l.Set(math.Sqrt(sum), i, j)
			} else {
				l.Set(sum/l.At(j, j), i, j)
			}
		}
	}
	return l, nil
}

// CholeskySolve solves A x = b given the Cholesky factor L of A, via forward
// then backward substitution.
func CholeskySolve(l, b *Tensor) *Tensor {
	n := l.Shape()[0]
	// Forward: L y = b.
	y := New(n)
	for i := 0; i < n; i++ {
		s := b.At(i)
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y.At(k)
		}
		y.Set(s/l.At(i, i), i)
	}
	// Backward: Lᵀ x = y.
	x := New(n)
	for i := n - 1; i >= 0; i-- {
		s := y.At(i)
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x.At(k)
		}
		x.Set(s/l.At(i, i), i)
	}
	return x
}

// SolveSPD solves A x = b for symmetric positive definite A. If A is not
// SPD, jitter is added to the diagonal geometrically until factorization
// succeeds (up to 8 attempts).
func SolveSPD(a, b *Tensor) (*Tensor, error) {
	n, err := squareDim(a)
	if err != nil {
		return nil, err
	}
	work := a.Clone()
	jitter := 0.0
	for attempt := 0; attempt < 8; attempt++ {
		l, err := Cholesky(work)
		if err == nil {
			return CholeskySolve(l, b), nil
		}
		if jitter == 0 {
			jitter = 1e-10
		} else {
			jitter *= 10
		}
		work = a.Clone()
		for i := 0; i < n; i++ {
			work.Set(work.At(i, i)+jitter, i, i)
		}
	}
	return nil, fmt.Errorf("tensor: SolveSPD failed even with jitter %.3g", jitter)
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Tensor {
	t := New(n, n)
	for i := 0; i < n; i++ {
		t.Set(1, i, i)
	}
	return t
}

// Mean2 returns the per-column mean of a rank-2 tensor (rows are samples).
func Mean2(x *Tensor) *Tensor {
	rows, cols := x.Shape()[0], x.Shape()[1]
	m := New(cols)
	if rows == 0 {
		return m
	}
	for j := 0; j < cols; j++ {
		s := 0.0
		for i := 0; i < rows; i++ {
			s += x.At(i, j)
		}
		m.Set(s/float64(rows), j)
	}
	return m
}

// Covariance returns the (biased) covariance matrix of a rank-2 sample
// matrix (rows are samples, columns features).
func Covariance(x *Tensor) *Tensor {
	rows, cols := x.Shape()[0], x.Shape()[1]
	mu := Mean2(x)
	c := New(cols, cols)
	if rows == 0 {
		return c
	}
	for i := 0; i < rows; i++ {
		for a := 0; a < cols; a++ {
			da := x.At(i, a) - mu.At(a)
			for b := 0; b < cols; b++ {
				db := x.At(i, b) - mu.At(b)
				c.Set(c.At(a, b)+da*db/float64(rows), a, b)
			}
		}
	}
	return c
}

// Inverse2 inverts a symmetric positive definite matrix via Cholesky,
// column by column. Used by the Mahalanobis anomaly detector and GMM.
func Inverse2(a *Tensor) (*Tensor, error) {
	n, err := squareDim(a)
	if err != nil {
		return nil, err
	}
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	inv := New(n, n)
	e := New(n)
	for j := 0; j < n; j++ {
		e.Fill(0)
		e.Set(1, j)
		col := CholeskySolve(l, e)
		for i := 0; i < n; i++ {
			inv.Set(col.At(i), i, j)
		}
	}
	return inv, nil
}

// LogDetSPD returns log(det A) for SPD A via its Cholesky factor.
func LogDetSPD(a *Tensor) (float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return 0, err
	}
	n := l.Shape()[0]
	s := 0.0
	for i := 0; i < n; i++ {
		s += math.Log(l.At(i, i))
	}
	return 2 * s, nil
}

func squareDim(a *Tensor) (int, error) {
	if a.Rank() != 2 || a.Shape()[0] != a.Shape()[1] {
		return 0, fmt.Errorf("tensor: want square matrix, got shape %v", a.Shape())
	}
	return a.Shape()[0], nil
}
