package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewAndIndexing(t *testing.T) {
	a := New(2, 3)
	if a.Rank() != 2 || a.Size() != 6 {
		t.Fatalf("rank/size wrong: %d %d", a.Rank(), a.Size())
	}
	a.Set(5, 1, 2)
	if a.At(1, 2) != 5 {
		t.Error("Set/At roundtrip failed")
	}
	if a.Data()[5] != 5 {
		t.Error("row-major layout broken: [1,2] should be flat index 5")
	}
}

func TestScalarAndItem(t *testing.T) {
	s := Scalar(3.25)
	if s.Rank() != 0 || s.Item() != 3.25 {
		t.Error("Scalar/Item failed")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-range index")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestRankMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on rank mismatch")
		}
	}()
	New(2, 2).At(1)
}

func TestFromDataValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on bad FromData length")
		}
	}()
	FromData([]float64{1, 2, 3}, 2, 2)
}

func TestCloneIndependence(t *testing.T) {
	a := New(2).Fill(1)
	b := a.Clone()
	b.Set(9, 0)
	if a.At(0) != 1 {
		t.Error("Clone must deep-copy")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromData([]float64{1, 2, 3}, 3)
	b := FromData([]float64{4, 5, 6}, 3)
	if got := Add(a, b).Data(); got[0] != 5 || got[2] != 9 {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(b, a).Data(); got[1] != 3 {
		t.Errorf("Sub = %v", got)
	}
	if got := Mul(a, b).Data(); got[2] != 18 {
		t.Errorf("Mul = %v", got)
	}
	if got := a.Scale(2).Data(); got[1] != 4 {
		t.Errorf("Scale = %v", got)
	}
	if a.Sum() != 6 || !almostEqual(a.Mean(), 2, 1e-12) {
		t.Error("Sum/Mean wrong")
	}
	if a.Max() != 3 || a.Min() != 1 {
		t.Error("Max/Min wrong")
	}
}

func TestReshape(t *testing.T) {
	a := FromData([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, 2)
	if b.At(2, 1) != 6 {
		t.Error("Reshape must preserve row-major order")
	}
}

func TestIndexerCoversSpace(t *testing.T) {
	it := NewIndexer([]int{2, 3})
	var seen [][2]int
	for idx, ok := it.Next(); ok; idx, ok = it.Next() {
		seen = append(seen, [2]int{idx[0], idx[1]})
	}
	if len(seen) != 6 {
		t.Fatalf("Indexer produced %d tuples, want 6", len(seen))
	}
	if seen[0] != [2]int{0, 0} || seen[5] != [2]int{1, 2} {
		t.Errorf("Indexer order wrong: %v", seen)
	}
}

func TestIndexerScalarSpace(t *testing.T) {
	it := NewIndexer(nil)
	idx, ok := it.Next()
	if !ok || len(idx) != 0 {
		t.Fatal("rank-0 space must yield one empty tuple")
	}
	if _, ok := it.Next(); ok {
		t.Fatal("rank-0 space must yield exactly one tuple")
	}
}

func TestIndexerEmptyDim(t *testing.T) {
	it := NewIndexer([]int{2, 0})
	if _, ok := it.Next(); ok {
		t.Fatal("zero-extent dimension must yield no tuples")
	}
}

func TestEinsumMatMul(t *testing.T) {
	a := FromData([]float64{1, 2, 3, 4}, 2, 2)
	b := FromData([]float64{5, 6, 7, 8}, 2, 2)
	c := MatMul(a, b)
	want := []float64{19, 22, 43, 50}
	for i, w := range want {
		if c.Data()[i] != w {
			t.Fatalf("MatMul = %v, want %v", c.Data(), want)
		}
	}
}

func TestEinsumTransposeReduceDiag(t *testing.T) {
	m := FromData([]float64{1, 2, 3, 4}, 2, 2)
	tr := MustEinsum("ij->ji", m)
	if tr.At(0, 1) != 3 {
		t.Error("transpose wrong")
	}
	sum := MustEinsum("ij->", m)
	if sum.Item() != 10 {
		t.Error("full reduction wrong")
	}
	diag := MustEinsum("ii->i", m)
	if diag.At(0) != 1 || diag.At(1) != 4 {
		t.Error("diagonal extraction wrong")
	}
	trace := MustEinsum("ii->", m)
	if trace.Item() != 5 {
		t.Error("trace wrong")
	}
}

func TestEinsumBatched(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := Random(rng, -1, 1, 4, 3, 5)
	k := Random(rng, -1, 1, 3, 5)
	out := MustEinsum("xij,ij->x", r, k)
	// Check against manual loop.
	for x := 0; x < 4; x++ {
		want := 0.0
		for i := 0; i < 3; i++ {
			for j := 0; j < 5; j++ {
				want += r.At(x, i, j) * k.At(i, j)
			}
		}
		if !almostEqual(out.At(x), want, 1e-12) {
			t.Fatalf("batched einsum mismatch at %d: %g vs %g", x, out.At(x), want)
		}
	}
}

func TestEinsumErrors(t *testing.T) {
	a := New(2, 2)
	if _, err := Einsum("ij,jk->ik", a); err == nil {
		t.Error("operand count mismatch must error")
	}
	if _, err := Einsum("ij->ik", a); err == nil {
		t.Error("unbound output index must error")
	}
	if _, err := Einsum("ij", a); err == nil {
		t.Error("missing arrow must error")
	}
	if _, err := Einsum("i1->i", a); err == nil {
		t.Error("non-letter index must error")
	}
	if _, err := Einsum("ij->ii", a); err == nil {
		t.Error("repeated output index must error")
	}
	b := New(3, 2)
	if _, err := Einsum("ij,ij->", a, b); err == nil {
		t.Error("inconsistent extents must error")
	}
	if _, err := Einsum("ijk->", a); err == nil {
		t.Error("rank mismatch must error")
	}
}

func TestEinsumMatMulAssociativityProperty(t *testing.T) {
	// Property: (AB)C == A(BC) within tolerance.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Random(rng, -1, 1, 3, 4)
		b := Random(rng, -1, 1, 4, 2)
		c := Random(rng, -1, 1, 2, 5)
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		return MaxAbsDiff(left, right) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestEinsumLinearityProperty(t *testing.T) {
	// Property: einsum is linear in each operand.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a1 := Random(rng, -1, 1, 3, 3)
		a2 := Random(rng, -1, 1, 3, 3)
		v := Random(rng, -1, 1, 3)
		lhs := MatVec(Add(a1, a2), v)
		rhs := Add(MatVec(a1, v), MatVec(a2, v))
		return MaxAbsDiff(lhs, rhs) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDotOuter(t *testing.T) {
	a := FromData([]float64{1, 2}, 2)
	b := FromData([]float64{3, 4}, 2)
	if Dot(a, b) != 11 {
		t.Error("Dot wrong")
	}
	o := Outer(a, b)
	if o.At(1, 0) != 6 {
		t.Error("Outer wrong")
	}
}

func TestCholeskySolve(t *testing.T) {
	// A = [[4,2],[2,3]], b = [2,1] -> x = A^{-1} b
	a := FromData([]float64{4, 2, 2, 3}, 2, 2)
	b := FromData([]float64{2, 1}, 2)
	x, err := SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Check residual.
	r := Sub(MatVec(a, x), b)
	if r.Map(math.Abs).Max() > 1e-10 {
		t.Errorf("residual too large: %v", r.Data())
	}
}

func TestCholeskyRejectsNonSPD(t *testing.T) {
	a := FromData([]float64{1, 2, 2, 1}, 2, 2) // indefinite
	if _, err := Cholesky(a); err == nil {
		t.Error("Cholesky must reject indefinite matrices")
	}
	if _, err := Cholesky(New(2, 3)); err == nil {
		t.Error("Cholesky must reject non-square matrices")
	}
}

func TestSolveSPDProperty(t *testing.T) {
	// Property: for random SPD A = M Mᵀ + I, solve then multiply recovers b.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := Random(rng, -1, 1, 4, 4)
		a := Add(MatMul(m, Transpose(m)), Identity(4))
		b := Random(rng, -1, 1, 4)
		x, err := SolveSPD(a, b)
		if err != nil {
			return false
		}
		return MaxAbsDiff(MatVec(a, x), b) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestInverseAndLogDet(t *testing.T) {
	a := FromData([]float64{4, 2, 2, 3}, 2, 2)
	inv, err := Inverse2(a)
	if err != nil {
		t.Fatal(err)
	}
	prod := MatMul(a, inv)
	if MaxAbsDiff(prod, Identity(2)) > 1e-10 {
		t.Errorf("A * A^-1 != I: %v", prod.Data())
	}
	ld, err := LogDetSPD(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(ld, math.Log(8), 1e-10) { // det = 4*3-2*2 = 8
		t.Errorf("LogDet = %g, want log(8)", ld)
	}
}

func TestCovarianceAndMean(t *testing.T) {
	x := FromData([]float64{
		1, 10,
		3, 14,
	}, 2, 2)
	mu := Mean2(x)
	if mu.At(0) != 2 || mu.At(1) != 12 {
		t.Errorf("Mean2 = %v", mu.Data())
	}
	c := Covariance(x)
	if c.At(0, 0) != 1 || c.At(1, 1) != 4 || c.At(0, 1) != 2 {
		t.Errorf("Covariance = %v", c.Data())
	}
}

func TestRMSEAndMaxAbsDiff(t *testing.T) {
	a := FromData([]float64{0, 0}, 2)
	b := FromData([]float64{3, 4}, 2)
	if !almostEqual(RMSE(a, b), math.Sqrt(12.5), 1e-12) {
		t.Error("RMSE wrong")
	}
	if MaxAbsDiff(a, b) != 4 {
		t.Error("MaxAbsDiff wrong")
	}
	if !math.IsInf(MaxAbsDiff(a, New(3)), 1) {
		t.Error("shape mismatch must give +Inf")
	}
}
