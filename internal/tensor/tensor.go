// Package tensor provides dense row-major float64 tensors and the
// Einstein-notation contraction engine backing the EVEREST tensor dialects
// (teil/esn) and the reference interpreter of the EVEREST Kernel Language.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Tensor is a dense row-major float64 tensor. The zero value is a scalar 0.
type Tensor struct {
	shape   []int
	strides []int
	data    []float64
}

// New returns a zero-filled tensor with the given shape. An empty shape
// yields a scalar.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dim %d", d))
		}
		n *= d
	}
	t := &Tensor{shape: append([]int(nil), shape...), data: make([]float64, n)}
	t.computeStrides()
	return t
}

// FromData wraps data (not copied) with the given shape.
func FromData(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	t := &Tensor{shape: append([]int(nil), shape...), data: data}
	t.computeStrides()
	return t
}

// Scalar returns a rank-0 tensor holding v.
func Scalar(v float64) *Tensor {
	t := New()
	t.data[0] = v
	return t
}

// Random returns a tensor with entries drawn uniformly from [lo, hi).
func Random(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = lo + rng.Float64()*(hi-lo)
	}
	return t
}

func (t *Tensor) computeStrides() {
	t.strides = make([]int, len(t.shape))
	s := 1
	for i := len(t.shape) - 1; i >= 0; i-- {
		t.strides[i] = s
		s *= t.shape[i]
	}
}

// Shape returns the tensor shape (do not mutate).
func (t *Tensor) Shape() []int { return t.shape }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Size returns the number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Data returns the backing slice (row-major; mutating it mutates the tensor).
func (t *Tensor) Data() []float64 { return t.data }

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.offset(idx)] }

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range [0,%d) in dim %d", x, t.shape[i], i))
		}
		off += x * t.strides[i]
	}
	return off
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Fill sets every element to v and returns t.
func (t *Tensor) Fill(v float64) *Tensor {
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Reshape returns a view-copy with a new shape of equal size.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.shape, shape))
	}
	return FromData(append([]float64(nil), t.data...), shape...)
}

// Item returns the single element of a scalar tensor.
func (t *Tensor) Item() float64 {
	if len(t.data) != 1 {
		panic(fmt.Sprintf("tensor: Item on tensor with %d elements", len(t.data)))
	}
	return t.data[0]
}

// Apply replaces every element x with fn(x), in place, returning t.
func (t *Tensor) Apply(fn func(float64) float64) *Tensor {
	for i, v := range t.data {
		t.data[i] = fn(v)
	}
	return t
}

// Map returns a new tensor with fn applied elementwise.
func (t *Tensor) Map(fn func(float64) float64) *Tensor { return t.Clone().Apply(fn) }

// Zip combines two same-shape tensors elementwise into a new tensor.
func Zip(a, b *Tensor, fn func(x, y float64) float64) *Tensor {
	if !sameShape(a.shape, b.shape) {
		panic(fmt.Sprintf("tensor: Zip shape mismatch %v vs %v", a.shape, b.shape))
	}
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = fn(a.data[i], b.data[i])
	}
	return out
}

// Add returns a+b elementwise (shapes must match).
func Add(a, b *Tensor) *Tensor { return Zip(a, b, func(x, y float64) float64 { return x + y }) }

// Sub returns a-b elementwise.
func Sub(a, b *Tensor) *Tensor { return Zip(a, b, func(x, y float64) float64 { return x - y }) }

// Mul returns a*b elementwise (Hadamard).
func Mul(a, b *Tensor) *Tensor { return Zip(a, b, func(x, y float64) float64 { return x * y }) }

// Scale returns t*s as a new tensor.
func (t *Tensor) Scale(s float64) *Tensor { return t.Map(func(x float64) float64 { return x * s }) }

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Max returns the maximum element (-Inf for empty tensors).
func (t *Tensor) Max() float64 {
	m := math.Inf(-1)
	for _, v := range t.data {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element (+Inf for empty tensors).
func (t *Tensor) Min() float64 {
	m := math.Inf(1)
	for _, v := range t.data {
		if v < m {
			m = v
		}
	}
	return m
}

// MaxAbsDiff returns max |a-b| over all elements; shapes must match.
func MaxAbsDiff(a, b *Tensor) float64 {
	if !sameShape(a.shape, b.shape) {
		return math.Inf(1)
	}
	m := 0.0
	for i := range a.data {
		if d := math.Abs(a.data[i] - b.data[i]); d > m {
			m = d
		}
	}
	return m
}

// RMSE returns the root-mean-square difference of two same-shape tensors.
func RMSE(a, b *Tensor) float64 {
	if !sameShape(a.shape, b.shape) {
		return math.Inf(1)
	}
	if len(a.data) == 0 {
		return 0
	}
	s := 0.0
	for i := range a.data {
		d := a.data[i] - b.data[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a.data)))
}

// String renders small tensors fully and large ones by shape only.
func (t *Tensor) String() string {
	if len(t.data) > 32 {
		return fmt.Sprintf("tensor%v<%d elems>", t.shape, len(t.data))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "tensor%v", t.shape)
	fmt.Fprintf(&b, "%v", t.data)
	return b.String()
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Indexer iterates a multi-dimensional index space in row-major order. The
// slice returned by Next aliases internal state: consume it before the next
// call and do not mutate it.
type Indexer struct {
	bounds  []int
	idx     []int
	started bool
	done    bool
}

// NewIndexer returns an iterator over the product of bounds. A zero bound
// yields an immediately-done iterator; an empty bounds list yields exactly
// one (empty) index, matching a rank-0 index space.
func NewIndexer(bounds []int) *Indexer {
	it := &Indexer{bounds: bounds, idx: make([]int, len(bounds))}
	for _, b := range bounds {
		if b <= 0 {
			it.done = true
		}
	}
	return it
}

// Next returns the next index tuple; the second result is false once the
// space is exhausted.
func (it *Indexer) Next() ([]int, bool) {
	if it.done {
		return nil, false
	}
	if !it.started {
		it.started = true
		return it.idx, true
	}
	for d := len(it.bounds) - 1; d >= 0; d-- {
		it.idx[d]++
		if it.idx[d] < it.bounds[d] {
			return it.idx, true
		}
		it.idx[d] = 0
	}
	it.done = true
	return nil, false
}
