package tensor

import (
	"fmt"
	"sort"
	"strings"
)

// Einsum evaluates an Einstein-notation contraction, e.g.
//
//	Einsum("ij,jk->ik", a, b)         // matrix multiply
//	Einsum("xij,ij->x", r, k)         // batched Frobenius products
//	Einsum("i->", v)                  // full reduction
//	Einsum("ij->ji", m)               // transpose
//
// Index letters appearing in inputs but not in the output are summed over
// (the paper's Fig. 3 kernels are sums over dT, dp, dη). Repeated letters
// within one operand trace that operand's diagonal. Letters must be single
// runes in [a-zA-Z].
func Einsum(spec string, inputs ...*Tensor) (*Tensor, error) {
	inSpecs, outSpec, err := parseSpec(spec)
	if err != nil {
		return nil, err
	}
	if len(inSpecs) != len(inputs) {
		return nil, fmt.Errorf("einsum: spec %q names %d inputs, got %d tensors",
			spec, len(inSpecs), len(inputs))
	}

	// Bind every index letter to its extent, checking consistency.
	extents := make(map[rune]int)
	for k, in := range inputs {
		labels := inSpecs[k]
		if len(labels) != in.Rank() {
			return nil, fmt.Errorf("einsum: operand %d has rank %d but spec %q names %d indices",
				k, in.Rank(), string(labels), len(labels))
		}
		for d, r := range labels {
			ext := in.Shape()[d]
			if prev, ok := extents[r]; ok && prev != ext {
				return nil, fmt.Errorf("einsum: index %q bound to both %d and %d", r, prev, ext)
			}
			extents[r] = ext
		}
	}
	for _, r := range outSpec {
		if _, ok := extents[r]; !ok {
			return nil, fmt.Errorf("einsum: output index %q not present in any input", r)
		}
	}

	// Partition indices: free (appear in output, kept) vs summed.
	sumIdx := make([]rune, 0, len(extents))
	outSet := make(map[rune]bool, len(outSpec))
	for _, r := range outSpec {
		outSet[r] = true
	}
	for r := range extents {
		if !outSet[r] {
			sumIdx = append(sumIdx, r)
		}
	}
	sort.Slice(sumIdx, func(i, j int) bool { return sumIdx[i] < sumIdx[j] })

	outShape := make([]int, len(outSpec))
	for i, r := range outSpec {
		outShape[i] = extents[r]
	}
	out := New(outShape...)

	// Precompute, for each operand, the position of each of its labels in
	// the combined (free + summed) index tuple.
	order := append(append([]rune(nil), outSpec...), sumIdx...)
	pos := make(map[rune]int, len(order))
	for i, r := range order {
		pos[r] = i
	}
	operandMap := make([][]int, len(inputs))
	for k, labels := range inSpecs {
		m := make([]int, len(labels))
		for d, r := range labels {
			m[d] = pos[r]
		}
		operandMap[k] = m
	}

	bounds := make([]int, len(order))
	for i, r := range order {
		bounds[i] = extents[r]
	}
	nFree := len(outSpec)

	// Iterate the full index space accumulating products. This is the
	// reference implementation backing correctness tests; the HLS path
	// generates loop nests from the same spec.
	opIdx := make([][]int, len(inputs))
	for k := range inputs {
		opIdx[k] = make([]int, len(inSpecs[k]))
	}
	it := NewIndexer(bounds)
	outIdx := make([]int, nFree)
	for tuple, ok := it.Next(); ok; tuple, ok = it.Next() {
		prod := 1.0
		for k, in := range inputs {
			m := operandMap[k]
			for d := range m {
				opIdx[k][d] = tuple[m[d]]
			}
			prod *= in.At(opIdx[k]...)
		}
		copy(outIdx, tuple[:nFree])
		out.data[out.offset(outIdx)] += prod
	}
	return out, nil
}

// MustEinsum is Einsum that panics on error, for internal fixed specs.
func MustEinsum(spec string, inputs ...*Tensor) *Tensor {
	t, err := Einsum(spec, inputs...)
	if err != nil {
		panic(err)
	}
	return t
}

func parseSpec(spec string) (ins [][]rune, out []rune, err error) {
	arrow := strings.Index(spec, "->")
	if arrow < 0 {
		return nil, nil, fmt.Errorf("einsum: spec %q missing ->", spec)
	}
	lhs, rhs := spec[:arrow], spec[arrow+2:]
	for _, part := range strings.Split(lhs, ",") {
		labels, err := parseLabels(part)
		if err != nil {
			return nil, nil, err
		}
		ins = append(ins, labels)
	}
	out, err = parseLabels(rhs)
	if err != nil {
		return nil, nil, err
	}
	seen := make(map[rune]bool)
	for _, r := range out {
		if seen[r] {
			return nil, nil, fmt.Errorf("einsum: repeated output index %q", r)
		}
		seen[r] = true
	}
	return ins, out, nil
}

func parseLabels(s string) ([]rune, error) {
	labels := make([]rune, 0, len(s))
	for _, r := range strings.TrimSpace(s) {
		if (r < 'a' || r > 'z') && (r < 'A' || r > 'Z') {
			return nil, fmt.Errorf("einsum: invalid index letter %q", r)
		}
		labels = append(labels, r)
	}
	return labels, nil
}

// MatMul returns the matrix product of two rank-2 tensors.
func MatMul(a, b *Tensor) *Tensor { return MustEinsum("ij,jk->ik", a, b) }

// MatVec returns the matrix-vector product of a rank-2 and a rank-1 tensor.
func MatVec(a, v *Tensor) *Tensor { return MustEinsum("ij,j->i", a, v) }

// Dot returns the inner product of two rank-1 tensors.
func Dot(a, b *Tensor) float64 { return MustEinsum("i,i->", a, b).Item() }

// Outer returns the outer product of two rank-1 tensors.
func Outer(a, b *Tensor) *Tensor { return MustEinsum("i,j->ij", a, b) }

// Transpose returns the transpose of a rank-2 tensor.
func Transpose(a *Tensor) *Tensor { return MustEinsum("ij->ji", a) }
