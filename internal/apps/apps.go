// Package apps is the EVEREST application workload registry: the paper's
// three driver applications — WRF-based weather ensembles (§II-A),
// renewable-energy prediction (§II-B), and traffic modelling (§II-D) —
// modelled as multi-stage DAG workflows whose accelerable stages are
// compiled source-to-schedule through the variant pipeline
// (internal/variants). Every accelerable stage carries its own compiled
// kernel and bitstream, so a workflow's tasks can request different
// per-stage bitstreams and its tuner seeds merge the compiled operating
// points — nothing on the accelerated path is hand-declared.
//
// The registry is what feeds the serving stack: sdk.FleetScenario's mixed
// suite interleaves the registered applications across tenants, `basecamp
// serve -suite` and `everest-bench -saturate -suite` serve them through
// the fleet tier, and the examples build their workflows from here
// instead of wiring internals by hand.
package apps

import (
	"fmt"
	"sort"

	"everest/internal/autotuner"
	"everest/internal/base2"
	"everest/internal/olympus"
	"everest/internal/platform"
	"everest/internal/runtime"
	"everest/internal/variants"
)

// StageKernel binds one accelerable DAG stage to its compiled kernel.
type StageKernel struct {
	Stage    string
	Compiled *variants.Compiled
}

// App is one registered application: a workflow generator plus the
// compiled kernels of its accelerable stages.
type App struct {
	Name    string
	Title   string
	Kernels []StageKernel

	// BatchEvents is how many stream events one workflow instance's batch
	// stands for (GPS points, forecast-horizon meter readings, atmospheric
	// columns). The streaming tier divides the app's batch stage costs by
	// it to derive per-event operator costs.
	BatchEvents int

	// build constructs the i-th workflow instance. Implementations vary
	// software-stage weights with i so a stream of submissions resembles
	// mixed traffic, and must be deterministic in i.
	build func(i int) *runtime.Workflow
}

// Workflow returns the application's i-th workflow instance with the
// merged compiled operating points attached (Workflow.SetVariants), ready
// for adaptive serving.
func (a *App) Workflow(i int) *runtime.Workflow {
	w := a.build(i)
	if vs := a.Variants(); len(vs) > 0 {
		w.SetVariants(vs)
	}
	return w
}

// Variants merges the operating points of every stage kernel into one
// tuner seed set (mean expected latency per variant across stages).
func (a *App) Variants() []autotuner.Variant {
	cs := make([]*variants.Compiled, 0, len(a.Kernels))
	for _, k := range a.Kernels {
		cs = append(cs, k.Compiled)
	}
	return variants.MergeVariants(cs...)
}

// Bitstreams returns the distinct bitstreams the application's stages
// request, in stage order. Serving tiers publish these to the registry.
func (a *App) Bitstreams() []platform.Bitstream {
	var out []platform.Bitstream
	seen := make(map[string]bool)
	for _, k := range a.Kernels {
		if k.Compiled == nil || k.Compiled.Design == nil {
			continue
		}
		bs := k.Compiled.Design.Bitstream
		if seen[bs.ID] {
			continue
		}
		seen[bs.ID] = true
		out = append(out, bs)
	}
	return out
}

// Kernel returns the compiled kernel of a stage, if it is accelerable.
func (a *App) Kernel(stage string) (*variants.Compiled, bool) {
	for _, k := range a.Kernels {
		if k.Stage == stage {
			return k.Compiled, true
		}
	}
	return nil, false
}

// Names lists the registered applications in stable order.
func Names() []string { return []string{"energy", "traffic", "weather"} }

// DefaultOptions is the suite's compile configuration: fixed-point
// datapath (single-cycle accumulate) with PLMs banked 8 ways and the full
// Olympus optimization ladder — the configuration under which the
// accelerable stages win their offload (matching `basecamp compile`'s
// E-compile defaults).
func DefaultOptions() variants.Options {
	fixed, err := base2.NewFixedFormat(4, 12)
	if err != nil {
		panic(fmt.Sprintf("apps: default fixed format: %v", err))
	}
	return variants.Options{
		Backend: "vitis",
		Format:  fixed,
		Device:  "alveo-u55c",
		Olympus: olympus.Options{
			SharePLM: true, DoubleBuffer: true, Replicate: true,
			MaxReplicas: 8, PackData: true, MemPorts: 8,
		},
	}
}

// Build compiles one registered application's accelerable stages and
// returns the ready App.
func Build(name string, opt variants.Options) (*App, error) {
	switch name {
	case "energy":
		return buildEnergy(opt)
	case "traffic":
		return buildTraffic(opt)
	case "weather":
		return buildWeather(opt)
	case "kmeans":
		// Buildable by name but not in Names(): the mixed suite's
		// interleave stays the paper's three drivers.
		return buildKmeans(opt)
	}
	return nil, fmt.Errorf("apps: unknown application %q (want one of %v)", name, Names())
}

// Suite is a set of built applications served as one mixed workload.
type Suite struct {
	Apps []*App
}

// BuildSuite compiles the named applications (all registered ones when
// names is empty) in sorted order, so the suite's interleave is
// independent of caller argument order.
func BuildSuite(opt variants.Options, names ...string) (*Suite, error) {
	if len(names) == 0 {
		names = Names()
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	seen := make(map[string]bool, len(sorted))
	s := &Suite{}
	for _, name := range sorted {
		if seen[name] {
			return nil, fmt.Errorf("apps: duplicate application %q", name)
		}
		seen[name] = true
		app, err := Build(name, opt)
		if err != nil {
			return nil, err
		}
		s.Apps = append(s.Apps, app)
	}
	return s, nil
}

// Workflow returns the i-th submission of the mixed suite: applications
// interleave round-robin (deterministic in i alone, so the stream is
// identical across GOMAXPROCS and arrival modes), each advancing through
// its own workflow instances.
func (s *Suite) Workflow(i int) (*App, *runtime.Workflow) {
	app := s.AppOf(i)
	return app, app.Workflow(i / len(s.Apps))
}

// AppOf returns the application serving the i-th submission without
// building its workflow (the cheap lookup result reporting needs).
func (s *Suite) AppOf(i int) *App {
	return s.Apps[i%len(s.Apps)]
}

// Bitstreams returns the distinct bitstreams across the suite.
func (s *Suite) Bitstreams() []platform.Bitstream {
	var out []platform.Bitstream
	seen := make(map[string]bool)
	for _, a := range s.Apps {
		for _, bs := range a.Bitstreams() {
			if seen[bs.ID] {
				continue
			}
			seen[bs.ID] = true
			out = append(out, bs)
		}
	}
	return out
}

// AppNames returns the suite's application names in serving order.
func (s *Suite) AppNames() []string {
	out := make([]string, len(s.Apps))
	for i, a := range s.Apps {
		out[i] = a.Name
	}
	return out
}
