package apps

import (
	"fmt"

	"everest/internal/condrust"
	"everest/internal/dataset"
	"everest/internal/runtime"
	"everest/internal/traffic"
	"everest/internal/variants"
)

// The traffic application (§II-D, §VIII): the Fig. 4 map-matching
// pipeline. The DAG is extracted from the ConDRust coordination program
// itself — one task per dataflow actor, dependencies from the dataflow
// edges — and the stage the program marks #[kernel(offloaded = true)]
// (projection) is compiled source-to-schedule from traffic.ProjectionEKL,
// specialized against a real road network and GPS trace. The remaining
// actors run in software with the E10 stage cost model over the daily
// batch.

// trafficBatch is the daily GPS batch the software stages process.
const trafficBatch = 1000

func buildTraffic(opt variants.Options) (*App, error) {
	prog, err := condrust.Parse(traffic.Fig4Source)
	if err != nil {
		return nil, fmt.Errorf("apps: traffic coordination program: %w", err)
	}
	fn := prog.Find("match_one")
	if fn == nil {
		return nil, fmt.Errorf("apps: traffic program has no match_one")
	}
	g, err := condrust.BuildGraph(fn)
	if err != nil {
		return nil, fmt.Errorf("apps: traffic dataflow graph: %w", err)
	}

	// Specialize the projection kernel against a real network and trip.
	net := traffic.GridNetwork(6, 6, 200, 1)
	trace, err := traffic.SimulateTrip(net, 7, 10, 10, 80)
	if err != nil {
		return nil, fmt.Errorf("apps: traffic trip: %w", err)
	}
	c, err := variants.CompileEKL(traffic.ProjectionEKL(), traffic.ProjectionBinding(net, trace.Points), opt)
	if err != nil {
		return nil, fmt.Errorf("apps: traffic projection kernel: %w", err)
	}

	a := &App{
		Name:        "traffic",
		Title:       "Fig. 4 map-matching dataflow with FPGA-offloaded projection",
		BatchEvents: trafficBatch,
	}
	// Stage identity comes from the graph: every offloaded actor carries
	// the compiled kernel.
	for _, n := range g.Nodes {
		if n.Offloaded() {
			a.Kernels = append(a.Kernels, StageKernel{Stage: n.Fn, Compiled: c})
		}
	}
	if len(a.Kernels) == 0 {
		return nil, fmt.Errorf("apps: traffic program marks no offloaded stage")
	}

	// Freeze the graph-derived task list (actor name, deps) once; the
	// builder then only stamps per-instance weights.
	type stage struct {
		name string
		deps []string
	}
	byBinding := make(map[string]string) // dataflow value name -> task name
	var stages []stage
	for _, n := range g.Nodes {
		name := n.Fn
		var deps []string
		seen := make(map[string]bool)
		for _, arg := range n.Args {
			if producer, ok := byBinding[arg]; ok && !seen[producer] {
				deps = append(deps, producer)
				seen[producer] = true
			} else if !ok && !seen["ingest"] {
				// Graph input (the GPS vector / map cell): fed by ingest.
				deps = append(deps, "ingest")
				seen["ingest"] = true
			}
		}
		byBinding[n.Name] = name
		stages = append(stages, stage{name: name, deps: deps})
	}

	a.build = func(i int) *runtime.Workflow {
		w := runtime.NewWorkflow()
		must := func(spec runtime.TaskSpec) {
			if err := w.Submit(spec); err != nil {
				panic(fmt.Sprintf("apps: traffic workflow %d: %v", i, err))
			}
		}
		scale := 1 + float64(i%3)/2
		// Stages exchange named datasets; bytes derive from the ref sizes,
		// matching the pre-dataset constants exactly. A stage whose read
		// footprint differs from its producer's output (the projection's
		// kernel-shaped input, a multi-input join's per-event window) reads
		// a distinct *view* name — outside data from the catalog's
		// perspective, priced like anonymous bytes.
		window := int64(trafficBatch) * 64
		// FCD ingest: the day's GPS batch lands on the cluster.
		must(runtime.TaskSpec{Name: "ingest", Flops: 1e9 * scale,
			Writes: []dataset.Ref{dataset.Single("traffic/gps", int64(trafficBatch)*640)}})
		written := map[string]dataset.Ref{} // stage -> its output ref
		for _, st := range stages {
			if _, accel := a.Kernel(st.name); accel {
				spec := c.Task(st.name, st.deps...)
				spec.InputBytes, spec.OutputBytes = 0, 0
				spec.Reads = []dataset.Ref{dataset.Single("traffic/"+st.name+".in", c.InputBytes)}
				out := dataset.Single("traffic/"+st.name, c.OutputBytes)
				spec.Writes = []dataset.Ref{out}
				written[st.name] = out
				must(spec)
				continue
			}
			// A single software-stage producer of the same window size is
			// read directly; anything else is a view of the joined inputs.
			read := dataset.Single("traffic/"+st.name+".in", window)
			if len(st.deps) == 1 {
				if dep, ok := written[st.deps[0]]; ok && dep.Bytes == window {
					read = dep
				}
			}
			out := dataset.Single("traffic/"+st.name, window)
			written[st.name] = out
			must(runtime.TaskSpec{Name: st.name, Deps: st.deps,
				Flops: traffic.StageFlops(st.name, trafficBatch) * scale,
				Reads: []dataset.Ref{read}, Writes: []dataset.Ref{out},
			})
		}
		return w
	}
	return a, nil
}
