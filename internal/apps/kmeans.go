package apps

import (
	"fmt"

	"everest/internal/base2"
	"everest/internal/dataset"
	"everest/internal/ekl"
	"everest/internal/runtime"
	"everest/internal/variants"
)

// The k-means workload: a map-reduce clustering iteration over a
// partitioned point set, the data-plane driver of the dataset tier. Each
// map shard soft-assigns one point partition to the centroids and folds
// its own points into per-cluster partial sums (the sufficient
// statistics), so only those tiny partials ever leave the shard; the
// reduce stage combines the partials into the refreshed centroids. All
// three kernels are compiled source-to-schedule through the EKL
// pipeline, and every task names its data — point partitions, the
// centroid model, per-shard partials — as dataset refs whose sizes the
// compiled byte accounting decomposes exactly. Sharded across a fleet
// with the partitions placed on different sites, the byte-optimal
// execution moves the map compute to the data and ships only partials:
// the locality win BenchmarkDatasetLocality measures against a
// placement-blind router, which must stage point partitions to wherever
// its queues happen to balance.
//
// EKL has sum() reductions but no argmin, so assignment is soft: each
// point weighs every centroid by exp(-beta*d2) normalized over centroids
// (beta sharpens toward hard assignment), and the update averages points
// under those weights — one EM-style iteration per map-reduce round.

// KMeansConfig shapes one k-means round.
type KMeansConfig struct {
	Partitions int // map shards, one point partition each (default 4)
	Points     int // points per partition (default 256)
	Centroids  int // cluster count K (default 8)
	Dims       int // feature dimensions (default 4)
}

func (c KMeansConfig) withDefaults() KMeansConfig {
	if c.Partitions < 1 {
		c.Partitions = 4
	}
	if c.Points < 2 {
		c.Points = 256
	}
	if c.Centroids < 2 {
		c.Centroids = 8
	}
	if c.Dims < 2 {
		c.Dims = 4
	}
	return c
}

// KMeansAssignEKL is the map kernel: soft-assign every point of one
// partition to the centroids. The exp/divide per point-centroid pair is
// what the FPGA datapath absorbs in pipelined special-function units
// while a CPU core pays an iterative sequence each — the same offload
// economics as the traffic projection.
func KMeansAssignEKL() string {
	return `# k-means map stage: soft assignment weights of one point partition
kernel kmeans_assign {
  input x : [N, D]
  input c : [K, D]
  param beta = 4.0
  d2 = sum(d) pow(x[i, d] - c[k, d], 2)
  a = exp(-beta * d2[i, k])
  z = sum(k) a[i, k]
  w = a[i, k] / z[i]
  output w[i, k]
}
`
}

// KMeansPartialEKL is the map-side fold: collapse one partition's
// assignment weights and points into per-cluster weighted sums and
// weight totals — the shard's sufficient statistics. This is the kernel
// that makes the workload map-reduce shaped: everything downstream of it
// is K*(D+1) values per shard, regardless of partition size.
func KMeansPartialEKL() string {
	return `# k-means map-side fold: per-cluster sufficient statistics of one shard
kernel kmeans_partial {
  input w : [N, K]
  input x : [N, D]
  s = sum(i) w[i, k] * x[i, d]
  n = sum(i) w[i, k]
  output s[k, d]
  output n[k]
}
`
}

// KMeansUpdateEKL is the reduce kernel: combine every shard's partial
// sums into the refreshed centroids.
func KMeansUpdateEKL() string {
	return `# k-means reduce stage: combine shard partials into new centroids
kernel kmeans_update {
  input s : [P, K, D]
  input n : [P, K]
  param eps = 0.0625
  sk = sum(p) s[p, k, d]
  nk = sum(p) n[p, k]
  c = sk[k, d] / (nk[k] + eps)
  output c[k, d]
}
`
}

// KMeans is one compiled k-means round: the map, fold, and reduce
// kernels plus the named datasets its tasks exchange.
type KMeans struct {
	Config  KMeansConfig
	Assign  *variants.Compiled // map stage kernel (one run per partition)
	Partial *variants.Compiled // map-side fold kernel (one run per partition)
	Update  *variants.Compiled // reduce stage kernel (one run per round)

	points    []dataset.Ref // kmeans/points, one partition per shard
	weights   []dataset.Ref // kmeans/weights, shard-local intermediates
	partials  []dataset.Ref // kmeans/partial, the per-shard statistics
	centroids dataset.Ref   // kmeans/centroids, the shared model
}

// BuildKMeans compiles both stages and derives the dataset refs from the
// compiled byte accounting: partition sizes are read off the kernels'
// tensor footprints, so the refs sum exactly to what the compilation
// says each stage moves.
func BuildKMeans(opt variants.Options, cfg KMeansConfig) (*KMeans, error) {
	cfg = cfg.withDefaults()
	compile := func(src string, extents map[string]int) (*variants.Compiled, error) {
		k, err := ekl.ParseKernel(src)
		if err != nil {
			return nil, err
		}
		return variants.CompileEKL(src, variants.SynthesizeBinding(k, extents), opt)
	}
	assign, err := compile(KMeansAssignEKL(), map[string]int{
		"N": cfg.Points, "D": cfg.Dims, "K": cfg.Centroids,
	})
	if err != nil {
		return nil, fmt.Errorf("apps: kmeans assign kernel: %w", err)
	}
	partial, err := compile(KMeansPartialEKL(), map[string]int{
		"N": cfg.Points, "D": cfg.Dims, "K": cfg.Centroids,
	})
	if err != nil {
		return nil, fmt.Errorf("apps: kmeans partial kernel: %w", err)
	}
	update, err := compile(KMeansUpdateEKL(), map[string]int{
		"P": cfg.Partitions, "D": cfg.Dims, "K": cfg.Centroids,
	})
	if err != nil {
		return nil, fmt.Errorf("apps: kmeans update kernel: %w", err)
	}
	format := opt.Format
	if format == nil {
		format = base2.Float32{}
	}
	elem := int64((format.Bits() + 7) / 8)
	km := &KMeans{
		Config:    cfg,
		Assign:    assign,
		Partial:   partial,
		Update:    update,
		centroids: dataset.Single("kmeans/centroids", int64(cfg.Centroids*cfg.Dims)*elem),
	}
	partBytes := int64(cfg.Points*cfg.Dims) * elem
	weightBytes := int64(cfg.Points*cfg.Centroids) * elem
	// One shard's sufficient statistics: K weighted sums of D dims plus
	// the K weight totals.
	statBytes := int64(cfg.Centroids*(cfg.Dims+1)) * elem
	for p := 0; p < cfg.Partitions; p++ {
		km.points = append(km.points, dataset.Ref{Name: "kmeans/points", Partition: p, Bytes: partBytes})
		km.weights = append(km.weights, dataset.Ref{Name: "kmeans/weights", Partition: p, Bytes: weightBytes})
		km.partials = append(km.partials, dataset.Ref{Name: "kmeans/partial", Partition: p, Bytes: statBytes})
	}
	// The refs must decompose the compiled byte accounting exactly — a
	// drift here would silently unmoor the data plane from the compiler.
	if got := km.points[0].Bytes + km.centroids.Bytes; got != assign.InputBytes {
		return nil, fmt.Errorf("apps: kmeans assign reads %dB but refs sum to %dB", assign.InputBytes, got)
	}
	if km.weights[0].Bytes != assign.OutputBytes {
		return nil, fmt.Errorf("apps: kmeans assign writes %dB but weights ref is %dB", assign.OutputBytes, km.weights[0].Bytes)
	}
	if got := km.weights[0].Bytes + km.points[0].Bytes; got != partial.InputBytes {
		return nil, fmt.Errorf("apps: kmeans partial reads %dB but refs sum to %dB", partial.InputBytes, got)
	}
	if km.partials[0].Bytes != partial.OutputBytes {
		return nil, fmt.Errorf("apps: kmeans partial writes %dB but stats ref is %dB", partial.OutputBytes, km.partials[0].Bytes)
	}
	if got := dataset.Sum(km.partials); got != update.InputBytes {
		return nil, fmt.Errorf("apps: kmeans update reads %dB but refs sum to %dB", update.InputBytes, got)
	}
	if km.centroids.Bytes != update.OutputBytes {
		return nil, fmt.Errorf("apps: kmeans update writes %dB but centroids ref is %dB", update.OutputBytes, km.centroids.Bytes)
	}
	return km, nil
}

// PointRefs returns the point partitions (what a scenario scatters across
// sites before serving).
func (k *KMeans) PointRefs() []dataset.Ref { return append([]dataset.Ref(nil), k.points...) }

// WeightRefs returns the per-shard assignment-weight datasets (the
// shard-local intermediates between assign and the fold).
func (k *KMeans) WeightRefs() []dataset.Ref { return append([]dataset.Ref(nil), k.weights...) }

// PartialRefs returns the per-shard sufficient-statistics datasets — the
// only map output that crosses sites.
func (k *KMeans) PartialRefs() []dataset.Ref { return append([]dataset.Ref(nil), k.partials...) }

// CentroidRef returns the shared centroid model dataset.
func (k *KMeans) CentroidRef() dataset.Ref { return k.centroids }

// mapTasks appends shard p's two tasks — assign reading the point
// partition plus the centroids, and the fold collapsing the weights into
// the shard's partial statistics — to a workflow. Bytes are derived from
// the refs, which the builder proved equal to the compiled accounting.
func (k *KMeans) mapTasks(w *runtime.Workflow, p int) error {
	assign := k.Assign.Task(fmt.Sprintf("assign%d", p))
	assign.InputBytes, assign.OutputBytes = 0, 0
	assign.Reads = []dataset.Ref{k.points[p], k.centroids}
	assign.Writes = []dataset.Ref{k.weights[p]}
	if err := w.Submit(assign); err != nil {
		return err
	}
	fold := k.Partial.Task(fmt.Sprintf("partial%d", p), assign.Name)
	fold.InputBytes, fold.OutputBytes = 0, 0
	fold.Reads = []dataset.Ref{k.weights[p], k.points[p]}
	fold.Writes = []dataset.Ref{k.partials[p]}
	return w.Submit(fold)
}

// MapWorkflow returns the map shard for partition p: the compiled assign
// and fold tasks. The weights stay inside the workflow (written and read
// by its own tasks), so the shard's external reads are exactly the point
// partition and the centroid model, and its only published output is the
// tiny partial — the map-reduce data shape the locality router exploits.
func (k *KMeans) MapWorkflow(p int) *runtime.Workflow {
	w := runtime.NewWorkflow()
	if err := k.mapTasks(w, p); err != nil {
		panic(fmt.Sprintf("apps: kmeans map workflow %d: %v", p, err))
	}
	w.SetVariants(append(k.Assign.Variants(), k.Partial.Variants()...))
	return w
}

// ReduceWorkflow returns the reduce step: one compiled update task
// combining every shard's partials, publishing the refreshed centroids —
// which supersede the previous model by lineage.
func (k *KMeans) ReduceWorkflow() *runtime.Workflow {
	w := runtime.NewWorkflow()
	spec := k.Update.Task("update")
	spec.InputBytes, spec.OutputBytes = 0, 0
	spec.Reads = append([]dataset.Ref(nil), k.partials...)
	spec.Writes = []dataset.Ref{k.centroids}
	if err := w.Submit(spec); err != nil {
		panic(fmt.Sprintf("apps: kmeans reduce workflow: %v", err))
	}
	w.SetVariants(k.Update.Variants())
	return w
}

// buildKmeans registers the whole round as one workflow-per-instance app
// (map tasks fan out, the reduce joins them) so the serving tiers can
// drive k-means through the same App interface as the paper's drivers.
// It is built by name only — Names() keeps the suite interleave to the
// paper's three applications.
func buildKmeans(opt variants.Options) (*App, error) {
	km, err := BuildKMeans(opt, KMeansConfig{})
	if err != nil {
		return nil, err
	}
	a := &App{
		Name:        "kmeans",
		Title:       "map-reduce k-means clustering over placed point partitions",
		BatchEvents: km.Config.Points * km.Config.Partitions,
		Kernels: []StageKernel{
			{Stage: "assign", Compiled: km.Assign},
			{Stage: "partial", Compiled: km.Partial},
			{Stage: "update", Compiled: km.Update},
		},
	}
	a.build = func(i int) *runtime.Workflow {
		w := runtime.NewWorkflow()
		deps := make([]string, 0, km.Config.Partitions)
		for p := 0; p < km.Config.Partitions; p++ {
			if err := km.mapTasks(w, p); err != nil {
				panic(fmt.Sprintf("apps: kmeans workflow %d: %v", i, err))
			}
			deps = append(deps, fmt.Sprintf("partial%d", p))
		}
		spec := km.Update.Task("update", deps...)
		spec.InputBytes, spec.OutputBytes = 0, 0
		spec.Reads = append([]dataset.Ref(nil), km.partials...)
		spec.Writes = []dataset.Ref{km.centroids}
		if err := w.Submit(spec); err != nil {
			panic(fmt.Sprintf("apps: kmeans workflow %d: %v", i, err))
		}
		return w
	}
	return a, nil
}
