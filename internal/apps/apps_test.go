package apps

import (
	"reflect"
	"strings"
	"testing"

	"everest/internal/runtime"
)

// builtSuite caches one compiled suite across the package's tests (the
// compile flow is deterministic, so sharing is safe).
var builtSuite *Suite

func suite(t *testing.T) *Suite {
	t.Helper()
	if builtSuite == nil {
		s, err := BuildSuite(DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		builtSuite = s
	}
	return builtSuite
}

func app(t *testing.T, name string) *App {
	t.Helper()
	for _, a := range suite(t).Apps {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("suite has no app %q", name)
	return nil
}

// dagShape renders a workflow as "task<-dep,dep" rows in submission order.
func dagShape(w *runtime.Workflow) []string {
	var rows []string
	for _, name := range w.Tasks() {
		task, _ := w.Get(name)
		rows = append(rows, name+"<-"+strings.Join(task.Deps, ","))
	}
	return rows
}

// TestGoldenDAGShapes pins each application's DAG: stage names and
// dependency structure are part of the registry's contract with the
// serving stack and the docs.
func TestGoldenDAGShapes(t *testing.T) {
	golden := map[string][]string{
		"energy": {
			"featurize<-",
			"krr<-featurize",
			"infer<-featurize",
			"detect<-krr,infer",
			"publish<-detect",
		},
		"traffic": {
			"ingest<-",
			"projection<-ingest",
			"build_trellis<-ingest,projection",
			"viterbi<-build_trellis",
			"interpolate<-ingest,projection,viterbi",
		},
		"weather": {
			"assim<-",
			"dyn0<-assim",
			"rad0<-dyn0",
			"dyn1<-assim",
			"rad1<-dyn1",
			"dyn2<-assim",
			"rad2<-dyn2",
			"reduce<-rad0,rad1,rad2",
		},
	}
	for name, want := range golden {
		got := dagShape(app(t, name).Workflow(0))
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s DAG = %v, want %v", name, got, want)
		}
	}
}

// TestCompiledStagesDeriveFromCompilation is the no-hand-declared-latency
// acceptance check: every accelerable stage's task spec must carry
// exactly the compiled kernel's workload model and bitstream, and every
// stage kernel must have derived software and fpga operating points.
func TestCompiledStagesDeriveFromCompilation(t *testing.T) {
	for _, a := range suite(t).Apps {
		if len(a.Kernels) == 0 {
			t.Errorf("app %s has no accelerable stage", a.Name)
			continue
		}
		w := a.Workflow(0)
		for _, sk := range a.Kernels {
			task, ok := w.Get(sk.Stage)
			if !ok {
				t.Errorf("%s: accelerable stage %q missing from DAG", a.Name, sk.Stage)
				continue
			}
			c := sk.Compiled
			if !task.NeedsFPGA || task.BitstreamID != c.Design.Bitstream.ID {
				t.Errorf("%s/%s: task does not request the compiled bitstream (%+v)", a.Name, sk.Stage, task)
			}
			if task.Flops != c.Flops || task.InputBytes != c.InputBytes || task.OutputBytes != c.OutputBytes {
				t.Errorf("%s/%s: task workload (%g, %d, %d) != compiled (%g, %d, %d)",
					a.Name, sk.Stage, task.Flops, task.InputBytes, task.OutputBytes,
					c.Flops, c.InputBytes, c.OutputBytes)
			}
			for _, v := range []string{runtime.VariantCPU1, runtime.VariantCPU16, runtime.VariantFPGA} {
				if p, ok := c.Point(v); !ok || p.LatencySeconds <= 0 {
					t.Errorf("%s/%s: operating point %s not derived", a.Name, sk.Stage, v)
				}
			}
		}
		vs := a.Variants()
		if len(vs) != 3 {
			t.Errorf("%s: merged variants = %v, want cpu1/cpu16/fpga", a.Name, vs)
		}
		if got := a.Workflow(0).Variants(); len(got) != len(vs) {
			t.Errorf("%s: workflow does not carry the merged variants", a.Name)
		}
	}
}

// TestPerStageBitstreamIdentity: the energy DAG carries two distinct
// bitstreams (KRR and the ONNX net), and the suite's registry set has one
// bitstream per compiled kernel with no collisions.
func TestPerStageBitstreamIdentity(t *testing.T) {
	e := app(t, "energy")
	bss := e.Bitstreams()
	if len(bss) != 2 {
		t.Fatalf("energy bitstreams = %d, want 2 distinct", len(bss))
	}
	krr, _ := e.Kernel("krr")
	mlp, _ := e.Kernel("infer")
	if krr == nil || mlp == nil {
		t.Fatal("energy accelerable stages missing")
	}
	w := e.Workflow(0)
	kt, _ := w.Get("krr")
	it, _ := w.Get("infer")
	if kt.BitstreamID == it.BitstreamID {
		t.Fatal("krr and infer must request distinct bitstreams")
	}
	// Suite-wide: 4 compiled kernels -> 4 distinct bitstreams.
	if got := len(suite(t).Bitstreams()); got != 4 {
		t.Fatalf("suite bitstreams = %d, want 4", got)
	}
}

// TestSuiteInterleaveDeterministic: the mixed stream is a pure function
// of the submission index — same apps, same DAGs, same task specs on
// every call — which is what makes fleet serving exactly reproducible.
func TestSuiteInterleaveDeterministic(t *testing.T) {
	s := suite(t)
	wantOrder := []string{"energy", "traffic", "weather", "energy", "traffic", "weather"}
	for i, want := range wantOrder {
		a, w := s.Workflow(i)
		if a.Name != want {
			t.Fatalf("Workflow(%d) app = %s, want %s", i, a.Name, want)
		}
		a2, w2 := s.Workflow(i)
		if a2 != a {
			t.Fatalf("Workflow(%d) app differs across calls", i)
		}
		if !reflect.DeepEqual(dagShape(w), dagShape(w2)) {
			t.Fatalf("Workflow(%d) DAG differs across calls", i)
		}
		for _, name := range w.Tasks() {
			t1, _ := w.Get(name)
			t2, _ := w2.Get(name)
			if !reflect.DeepEqual(t1, t2) {
				t.Fatalf("Workflow(%d) task %s differs across calls: %+v vs %+v", i, name, t1, t2)
			}
		}
	}
	// Per-instance variation: the same app at different indices varies
	// software weight but keeps the DAG shape.
	a0, w0 := s.Workflow(0)
	_, w3 := s.Workflow(3)
	if !reflect.DeepEqual(dagShape(w0), dagShape(w3)) {
		t.Fatalf("%s DAG shape must not vary with instance", a0.Name)
	}
	f0, _ := w0.Get("featurize")
	f3, _ := w3.Get("featurize")
	if f0.Flops == f3.Flops {
		t.Fatal("instance weights should vary across the stream")
	}
}

// TestRegistryValidation covers the registry's error paths.
func TestRegistryValidation(t *testing.T) {
	if got := Names(); !reflect.DeepEqual(got, []string{"energy", "traffic", "weather"}) {
		t.Fatalf("Names() = %v", got)
	}
	if _, err := Build("nope", DefaultOptions()); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := BuildSuite(DefaultOptions(), "energy", "energy"); err == nil {
		t.Fatal("duplicate app accepted")
	}
	if _, err := BuildSuite(DefaultOptions(), "nope"); err == nil {
		t.Fatal("unknown suite app accepted")
	}
}
