package apps

import (
	"fmt"

	"everest/internal/dataset"
	"everest/internal/runtime"
	"everest/internal/variants"
	"everest/internal/wrf"
)

// The weather application (§II-A): a WRF ensemble forecast as a DAG —
// data assimilation produces the analysis, each ensemble member advances
// its perturbed state and calls the RRTMG radiation kernel (the Fig. 3
// gas-optics contraction, the accelerable stage), and a reduction
// computes the ensemble statistics. The radiation kernel is compiled
// source-to-schedule from wrf.EKLSource against the scheme's own table
// shapes, so the rad stages' costs, transfer footprints, and bitstream
// all come from the compilation.

// weatherMembers is the ensemble width of one workflow instance.
const weatherMembers = 3

// weatherColumns is the atmospheric-column batch each radiation call
// processes (the X extent the kernel is specialized to).
const weatherColumns = 24

func buildWeather(opt variants.Options) (*App, error) {
	rad := wrf.NewRadiation(11, 8)
	c, err := variants.CompileEKL(wrf.EKLSource(), rad.EKLBinding(11, weatherColumns), opt)
	if err != nil {
		return nil, fmt.Errorf("apps: weather radiation kernel: %w", err)
	}
	a := &App{
		Name:        "weather",
		Title:       "WRF ensemble forecast with FPGA-offloaded RRTMG radiation",
		BatchEvents: weatherMembers * weatherColumns,
	}
	for m := 0; m < weatherMembers; m++ {
		a.Kernels = append(a.Kernels, StageKernel{Stage: fmt.Sprintf("rad%d", m), Compiled: c})
	}
	a.build = func(i int) *runtime.Workflow {
		w := runtime.NewWorkflow()
		must := func(spec runtime.TaskSpec) {
			if err := w.Submit(spec); err != nil {
				panic(fmt.Sprintf("apps: weather workflow %d: %v", i, err))
			}
		}
		scale := 1 + float64(i%3)/2 // mixed traffic: 1x, 1.5x, 2x analysis work
		// Stages name the data they exchange as dataset refs; every byte
		// count below is derived from the ref sizes, which match the
		// pre-dataset constants exactly (the suite numbers must not move).
		analysis := dataset.Single("weather/analysis", 1<<23)
		// 3D-Var assimilation produces the shared analysis state.
		must(runtime.TaskSpec{Name: "assim", Flops: 2e10 * scale,
			Writes: []dataset.Ref{analysis}})
		reduceDeps := make([]string, 0, weatherMembers)
		heating := make([]dataset.Ref, 0, weatherMembers)
		for m := 0; m < weatherMembers; m++ {
			dyn := fmt.Sprintf("dyn%d", m)
			radStage := fmt.Sprintf("rad%d", m)
			state := dataset.Single(fmt.Sprintf("weather/state%d", m), c.InputBytes)
			heat := dataset.Single(fmt.Sprintf("weather/heating%d", m), c.OutputBytes)
			// Member dynamics: advect/diffuse the perturbed state.
			must(runtime.TaskSpec{Name: dyn, Deps: []string{"assim"},
				Flops: 8e9 * scale,
				Reads: []dataset.Ref{analysis}, Writes: []dataset.Ref{state}})
			// Radiation: the compiled Fig. 3 kernel (per-stage bitstream).
			rad := c.Task(radStage, dyn)
			rad.InputBytes, rad.OutputBytes = 0, 0
			rad.Reads = []dataset.Ref{state}
			rad.Writes = []dataset.Ref{heat}
			must(rad)
			reduceDeps = append(reduceDeps, radStage)
			heating = append(heating, heat)
		}
		// Ensemble statistics over the members' heating tendencies.
		must(runtime.TaskSpec{Name: "reduce", Deps: reduceDeps,
			Flops: 2e9, Reads: heating})
		return w
	}
	return a, nil
}
