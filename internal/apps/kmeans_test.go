package apps

import (
	"fmt"
	"reflect"
	"testing"

	"everest/internal/dataset"
)

// builtKMeans caches one compiled round for the package's tests (the
// compile flow is deterministic, so sharing is safe).
var builtKMeans *KMeans

func kmeansRound(t *testing.T) *KMeans {
	t.Helper()
	if builtKMeans == nil {
		km, err := BuildKMeans(DefaultOptions(), KMeansConfig{})
		if err != nil {
			t.Fatal(err)
		}
		builtKMeans = km
	}
	return builtKMeans
}

func TestKMeansConfigDefaults(t *testing.T) {
	got := KMeansConfig{}.withDefaults()
	want := KMeansConfig{Partitions: 4, Points: 256, Centroids: 8, Dims: 4}
	if got != want {
		t.Fatalf("withDefaults() = %+v, want %+v", got, want)
	}
	// Explicit values survive; below-minimum values snap to the defaults.
	custom := KMeansConfig{Partitions: 2, Points: 32, Centroids: 3, Dims: 16}
	if got := custom.withDefaults(); got != custom {
		t.Fatalf("withDefaults() clobbered explicit config: %+v", got)
	}
	floor := KMeansConfig{Partitions: -1, Points: 1, Centroids: 1, Dims: 1}.withDefaults()
	if floor != want {
		t.Fatalf("withDefaults() on sub-minimum config = %+v, want %+v", floor, want)
	}
}

// TestBuildKMeansRefAccounting pins the contract BuildKMeans enforces:
// the dataset refs decompose the compiled byte accounting exactly, per
// stage, so the data plane and the compiler never disagree about sizes.
func TestBuildKMeansRefAccounting(t *testing.T) {
	km := kmeansRound(t)
	cfg := km.Config
	if cfg != (KMeansConfig{Partitions: 4, Points: 256, Centroids: 8, Dims: 4}) {
		t.Fatalf("built config %+v is not the documented default", cfg)
	}
	points, weights, partials := km.PointRefs(), km.WeightRefs(), km.PartialRefs()
	if len(points) != cfg.Partitions || len(weights) != cfg.Partitions || len(partials) != cfg.Partitions {
		t.Fatalf("ref counts %d/%d/%d, want one of each per partition (%d)",
			len(points), len(weights), len(partials), cfg.Partitions)
	}
	for p := 0; p < cfg.Partitions; p++ {
		if points[p].Partition != p || partials[p].Partition != p {
			t.Fatalf("partition %d refs carry partitions %d/%d", p, points[p].Partition, partials[p].Partition)
		}
	}
	centroids := km.CentroidRef()
	if centroids.Bytes <= 0 {
		t.Fatalf("centroid model has %d bytes", centroids.Bytes)
	}
	if got := points[0].Bytes + centroids.Bytes; got != km.Assign.InputBytes {
		t.Errorf("assign reads %dB but refs sum to %dB", km.Assign.InputBytes, got)
	}
	if weights[0].Bytes != km.Assign.OutputBytes {
		t.Errorf("assign writes %dB but weights ref is %dB", km.Assign.OutputBytes, weights[0].Bytes)
	}
	if got := weights[0].Bytes + points[0].Bytes; got != km.Partial.InputBytes {
		t.Errorf("partial reads %dB but refs sum to %dB", km.Partial.InputBytes, got)
	}
	if got := dataset.Sum(partials); got != km.Update.InputBytes {
		t.Errorf("update reads %dB but partials sum to %dB", km.Update.InputBytes, got)
	}
	if centroids.Bytes != km.Update.OutputBytes {
		t.Errorf("update writes %dB but centroids ref is %dB", km.Update.OutputBytes, centroids.Bytes)
	}
	// The map-reduce shape: a shard's partial is far smaller than its
	// point partition — that asymmetry is the whole locality win.
	if partials[0].Bytes*4 >= points[0].Bytes {
		t.Errorf("partial %dB is not small against partition %dB", partials[0].Bytes, points[0].Bytes)
	}
	// Accessors hand out copies: mutating a returned slice must not
	// corrupt the round's own refs.
	points[0].Bytes = -1
	if km.PointRefs()[0].Bytes == -1 {
		t.Fatal("PointRefs returned the internal slice, not a copy")
	}
	weights[0].Bytes = -1
	if km.WeightRefs()[0].Bytes == -1 {
		t.Fatal("WeightRefs returned the internal slice, not a copy")
	}
	partials[0].Bytes = -1
	if km.PartialRefs()[0].Bytes == -1 {
		t.Fatal("PartialRefs returned the internal slice, not a copy")
	}
}

func TestBuildKMeansCustomConfig(t *testing.T) {
	cfg := KMeansConfig{Partitions: 2, Points: 16, Centroids: 4, Dims: 8}
	km, err := BuildKMeans(DefaultOptions(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if km.Config != cfg {
		t.Fatalf("built config %+v, want %+v", km.Config, cfg)
	}
	if len(km.PointRefs()) != 2 || len(km.PartialRefs()) != 2 {
		t.Fatalf("ref counts %d/%d, want 2/2", len(km.PointRefs()), len(km.PartialRefs()))
	}
}

func TestKMeansMapWorkflowShape(t *testing.T) {
	km := kmeansRound(t)
	for _, p := range []int{0, km.Config.Partitions - 1} {
		w := km.MapWorkflow(p)
		wantShape := []string{
			fmt.Sprintf("assign%d<-", p),
			fmt.Sprintf("partial%d<-assign%d", p, p),
		}
		if got := dagShape(w); !reflect.DeepEqual(got, wantShape) {
			t.Fatalf("map shard %d DAG %v, want %v", p, got, wantShape)
		}
		assign, _ := w.Get(fmt.Sprintf("assign%d", p))
		if !reflect.DeepEqual(assign.Reads, []dataset.Ref{km.PointRefs()[p], km.CentroidRef()}) {
			t.Fatalf("assign%d reads %+v", p, assign.Reads)
		}
		if !reflect.DeepEqual(assign.Writes, []dataset.Ref{km.WeightRefs()[p]}) {
			t.Fatalf("assign%d writes %+v", p, assign.Writes)
		}
		if assign.TotalBytes() != km.Assign.InputBytes+km.Assign.OutputBytes {
			t.Fatalf("assign%d moves %dB, compiled accounting says %dB",
				p, assign.TotalBytes(), km.Assign.InputBytes+km.Assign.OutputBytes)
		}
		fold, _ := w.Get(fmt.Sprintf("partial%d", p))
		if !reflect.DeepEqual(fold.Reads, []dataset.Ref{km.WeightRefs()[p], km.PointRefs()[p]}) {
			t.Fatalf("partial%d reads %+v", p, fold.Reads)
		}
		if !reflect.DeepEqual(fold.Writes, []dataset.Ref{km.PartialRefs()[p]}) {
			t.Fatalf("partial%d writes %+v", p, fold.Writes)
		}
		if len(w.Variants()) == 0 {
			t.Fatalf("map shard %d carries no operating points", p)
		}
	}
}

func TestKMeansReduceWorkflowShape(t *testing.T) {
	km := kmeansRound(t)
	w := km.ReduceWorkflow()
	if got := dagShape(w); !reflect.DeepEqual(got, []string{"update<-"}) {
		t.Fatalf("reduce DAG %v", got)
	}
	update, _ := w.Get("update")
	if !reflect.DeepEqual(update.Reads, km.PartialRefs()) {
		t.Fatalf("update reads %+v, want every shard partial", update.Reads)
	}
	if !reflect.DeepEqual(update.Writes, []dataset.Ref{km.CentroidRef()}) {
		t.Fatalf("update writes %+v, want the centroid model", update.Writes)
	}
}

// TestBuildKmeansApp covers the by-name App registration: kmeans is
// buildable through the same interface the serving tiers drive, but
// stays out of Names() so the paper's three-app suite interleave is
// unchanged.
func TestBuildKmeansApp(t *testing.T) {
	for _, n := range Names() {
		if n == "kmeans" {
			t.Fatal("kmeans must not join the default suite interleave")
		}
	}
	a, err := Build("kmeans", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "kmeans" || len(a.Kernels) != 3 {
		t.Fatalf("app %q with %d kernels, want kmeans with 3", a.Name, len(a.Kernels))
	}
	for _, stage := range []string{"assign", "partial", "update"} {
		if _, ok := a.Kernel(stage); !ok {
			t.Fatalf("app has no %q kernel", stage)
		}
	}
	if a.BatchEvents <= 0 {
		t.Fatalf("BatchEvents = %d", a.BatchEvents)
	}
	w := a.Workflow(0)
	tasks := w.Tasks()
	// Default config: 4 partitions x (assign + partial) + the reduce.
	if len(tasks) != 9 || tasks[len(tasks)-1] != "update" {
		t.Fatalf("workflow has tasks %v, want 8 map tasks then update", tasks)
	}
	update, _ := w.Get("update")
	if len(update.Deps) != 4 {
		t.Fatalf("update depends on %v, want every shard's partial", update.Deps)
	}
	if len(w.Variants()) == 0 {
		t.Fatal("app workflow carries no operating points")
	}
	if len(a.Bitstreams()) == 0 {
		t.Fatal("app advertises no bitstreams")
	}
}
