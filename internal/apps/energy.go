package apps

import (
	"fmt"

	"everest/internal/anomaly"
	"everest/internal/dataset"
	"everest/internal/energy"
	"everest/internal/onnxlite"
	"everest/internal/runtime"
	"everest/internal/tensor"
	"everest/internal/variants"
)

// The energy application (§II-B): renewable-energy prediction with an
// anomaly check. Featurized wind-farm history feeds two accelerable
// inference stages carrying *different* bitstreams — the KRR-RBF
// regressor (the paper's "current version uses the Kernel Ridge
// algorithm", the windpower kernel) and an ONNX dense network compiled
// through variants.CompileONNX (paper §V-A: "the SDK supports standard
// ONNX ML models") — whose predictions an anomaly-detection stage
// cross-checks before publication. Two distinct per-stage bitstreams in
// one DAG is what exercises per-stage bitstream identity through the
// runtime and the fleet's deploy path.

// energyBatch is the inference batch (forecast horizon hours) per workflow.
const energyBatch = 24

// energyHidden is the dense network's hidden width.
const energyHidden = 16

// energyModel builds the deterministic ONNX inference network over the
// wind-farm feature vector.
func energyModel() (*onnxlite.Model, int) {
	farm := energy.NewFarm(12)
	dim := len(energy.Features(farm, energy.Sample{}))
	fill := func(n int, scale float64) []float64 {
		out := make([]float64, n)
		seed := uint64(0x243f6a8885a308d3)
		for i := range out {
			seed ^= seed << 13
			seed ^= seed >> 7
			seed ^= seed << 17
			out[i] = (float64(seed%2000)/1000 - 1) * scale
		}
		return out
	}
	weights := map[string][]float64{
		"w1": fill(dim*energyHidden, 0.4), "b1": fill(energyHidden, 0.1),
		"w2": fill(energyHidden, 0.4), "b2": fill(1, 0.1),
	}
	return onnxlite.DenseMLP("energy_mlp", energyBatch, dim, energyHidden, 1, weights), dim
}

func buildEnergy(opt variants.Options) (*App, error) {
	model, dim := energyModel()
	mlp, err := variants.CompileONNX(model, energyBatch, opt)
	if err != nil {
		return nil, fmt.Errorf("apps: energy ONNX network: %w", err)
	}
	krr, err := variants.CompileExample("windpower", opt)
	if err != nil {
		return nil, fmt.Errorf("apps: energy KRR kernel: %w", err)
	}
	if mlp.Design.Bitstream.ID == krr.Design.Bitstream.ID {
		return nil, fmt.Errorf("apps: energy stages must carry distinct bitstreams")
	}

	// Validate the detection stage's wiring on real synthesized history:
	// the detector must fit and score the feature matrix the featurize
	// stage produces. This keeps the DAG honest without modelling data
	// movement the runtime already prices.
	farm := energy.NewFarm(12)
	ds := energy.SynthesizeYear(5, 24*14, farm)
	feats := tensor.New(len(ds.Samples), dim)
	for i, s := range ds.Samples {
		copy(feats.Data()[i*dim:(i+1)*dim], energy.Features(farm, s))
	}
	detector := &anomaly.ZScore{}
	if err := detector.Fit(feats); err != nil {
		return nil, fmt.Errorf("apps: energy anomaly detector: %w", err)
	}
	if _, err := detector.Score(energy.Features(farm, ds.Samples[0])); err != nil {
		return nil, fmt.Errorf("apps: energy anomaly scoring: %w", err)
	}

	a := &App{
		Name:  "energy",
		Title: "wind-power prediction (KRR + ONNX dense net) with anomaly check",
		// One workflow instance digests the rolling history window; as a
		// stream, each of its samples (one SCADA reading) is one event.
		BatchEvents: len(ds.Samples),
		Kernels: []StageKernel{
			{Stage: "krr", Compiled: krr},
			{Stage: "infer", Compiled: mlp},
		},
	}
	featBytes := int64(len(ds.Samples) * dim * 8)
	a.build = func(i int) *runtime.Workflow {
		w := runtime.NewWorkflow()
		must := func(spec runtime.TaskSpec) {
			if err := w.Submit(spec); err != nil {
				panic(fmt.Sprintf("apps: energy workflow %d: %v", i, err))
			}
		}
		scale := 1 + float64(i%3)/2
		// Stages exchange named datasets; bytes derive from the ref sizes,
		// matching the pre-dataset constants exactly. The two inference
		// stages read kernel-shaped *views* of the feature table (distinct
		// names sized to the compiled input footprints — outside data from
		// the catalog's perspective, so they price like anonymous bytes).
		features := dataset.Single("energy/features", featBytes)
		krrView := dataset.Single("energy/features.krr", krr.InputBytes)
		krrPred := dataset.Single("energy/pred.krr", krr.OutputBytes)
		mlpView := dataset.Single("energy/features.infer", mlp.InputBytes)
		mlpPred := dataset.Single("energy/pred.infer", mlp.OutputBytes)
		alerts := dataset.Single("energy/alerts", 1<<16)
		// Featurization over the rolling farm history window.
		must(runtime.TaskSpec{Name: "featurize", Flops: 4e9 * scale,
			Writes: []dataset.Ref{features}})
		// The two inference stages: distinct compiled kernels, distinct
		// bitstreams, same upstream features.
		krrSpec := krr.Task("krr", "featurize")
		krrSpec.InputBytes, krrSpec.OutputBytes = 0, 0
		krrSpec.Reads = []dataset.Ref{krrView}
		krrSpec.Writes = []dataset.Ref{krrPred}
		must(krrSpec)
		mlpSpec := mlp.Task("infer", "featurize")
		mlpSpec.InputBytes, mlpSpec.OutputBytes = 0, 0
		mlpSpec.Reads = []dataset.Ref{mlpView}
		mlpSpec.Writes = []dataset.Ref{mlpPred}
		must(mlpSpec)
		// Anomaly cross-check of the two predictors (z-score over the
		// prediction window).
		must(runtime.TaskSpec{Name: "detect", Deps: []string{"krr", "infer"},
			Flops: float64(energyBatch*dim) * 2e5 * scale,
			Reads: []dataset.Ref{krrPred, mlpPred}, Writes: []dataset.Ref{alerts}})
		must(runtime.TaskSpec{Name: "publish", Deps: []string{"detect"},
			Flops: 5e8, Reads: []dataset.Ref{alerts}})
		return w
	}
	return a, nil
}
