package condrust

import (
	"fmt"
	"sort"
	"sync"

	"everest/internal/mlir"
	"everest/internal/mlir/dialects"
)

// Node is one actor of the extracted dataflow graph.
type Node struct {
	ID   int
	Name string // bound name ("cv"), or "__tail" for the result
	Fn   string
	Args []string // producer names (params or earlier bindings)
	Attr *KernelAttr
}

// Offloaded reports whether the node carries an offload annotation.
func (n *Node) Offloaded() bool { return n.Attr != nil && n.Attr.Offloaded }

// Graph is the deterministic dataflow graph of one function.
type Graph struct {
	Fn     *Func
	Nodes  []*Node
	Inputs []string // parameter names
	Result string   // name whose value is the function result
}

// BuildGraph checks the function (definite assignment, single assignment,
// no use of unbound names — the properties that make ConDRust deterministic)
// and extracts its dataflow graph.
func BuildGraph(f *Func) (*Graph, error) {
	g := &Graph{Fn: f}
	defined := make(map[string]bool)
	for _, p := range f.Params {
		if defined[p.Name] {
			return nil, fmt.Errorf("condrust: %s: duplicate parameter %q", f.Name, p.Name)
		}
		defined[p.Name] = true
		g.Inputs = append(g.Inputs, p.Name)
	}
	for _, s := range f.Stmts {
		if defined[s.Name] {
			return nil, fmt.Errorf("condrust: %s line %d: %q rebinds an existing name (single assignment required)",
				f.Name, s.Line, s.Name)
		}
		for _, a := range s.Call.Args {
			if !defined[a] {
				return nil, fmt.Errorf("condrust: %s line %d: use of unbound name %q", f.Name, s.Line, a)
			}
		}
		g.Nodes = append(g.Nodes, &Node{
			ID: len(g.Nodes), Name: s.Name, Fn: s.Call.Fn,
			Args: append([]string(nil), s.Call.Args...), Attr: s.Attr,
		})
		defined[s.Name] = true
	}
	switch {
	case f.TailName != "":
		if !defined[f.TailName] {
			return nil, fmt.Errorf("condrust: %s: tail uses unbound name %q", f.Name, f.TailName)
		}
		g.Result = f.TailName
	case f.Tail.Fn != "":
		for _, a := range f.Tail.Args {
			if !defined[a] {
				return nil, fmt.Errorf("condrust: %s: tail call uses unbound name %q", f.Name, a)
			}
		}
		g.Nodes = append(g.Nodes, &Node{
			ID: len(g.Nodes), Name: "__tail", Fn: f.Tail.Fn,
			Args: append([]string(nil), f.Tail.Args...),
		})
		g.Result = "__tail"
	default:
		return nil, fmt.Errorf("condrust: %s: function has no result expression", f.Name)
	}
	return g, nil
}

// OffloadCandidates returns the nodes marked #[kernel(offloaded = true)].
func (g *Graph) OffloadCandidates() []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if n.Offloaded() {
			out = append(out, n)
		}
	}
	return out
}

// Stages returns the nodes grouped into topological levels: nodes within a
// level have no mutual dependencies and can run in parallel.
func (g *Graph) Stages() [][]*Node {
	level := make(map[string]int)
	for _, in := range g.Inputs {
		level[in] = 0
	}
	var stages [][]*Node
	for _, n := range g.Nodes {
		lv := 0
		for _, a := range n.Args {
			if la, ok := level[a]; ok && la+1 > lv {
				lv = la + 1
			}
		}
		if lv == 0 {
			lv = 1
		}
		level[n.Name] = lv
		for len(stages) < lv {
			stages = append(stages, nil)
		}
		stages[lv-1] = append(stages[lv-1], n)
	}
	return stages
}

// FuncRegistry maps actor function names to Go implementations. Values flow
// as interface{}; implementations must be pure for determinism to hold.
type FuncRegistry map[string]func(args []interface{}) (interface{}, error)

// Execute runs the graph on the inputs with unbounded parallelism across
// independent actors. Determinism: every name is written once and read only
// after its producer completes, so the result does not depend on scheduling.
func (g *Graph) Execute(reg FuncRegistry, inputs map[string]interface{}) (interface{}, error) {
	for _, in := range g.Inputs {
		if _, ok := inputs[in]; !ok {
			return nil, fmt.Errorf("condrust: missing input %q", in)
		}
	}
	for _, n := range g.Nodes {
		if _, ok := reg[n.Fn]; !ok {
			return nil, fmt.Errorf("condrust: no implementation registered for %q", n.Fn)
		}
	}

	var mu sync.Mutex
	vals := make(map[string]interface{}, len(inputs)+len(g.Nodes))
	for k, v := range inputs {
		vals[k] = v
	}
	var firstErr error

	for _, stage := range g.Stages() {
		var wg sync.WaitGroup
		for _, n := range stage {
			wg.Add(1)
			go func(n *Node) {
				defer wg.Done()
				mu.Lock()
				args := make([]interface{}, len(n.Args))
				for i, a := range n.Args {
					args[i] = vals[a]
				}
				mu.Unlock()
				out, err := reg[n.Fn](args)
				mu.Lock()
				defer mu.Unlock()
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("condrust: actor %s(%s): %w", n.Fn, n.Name, err)
					return
				}
				vals[n.Name] = out
			}(n)
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
	}
	return vals[g.Result], nil
}

// EmitDFG renders the graph as a dfg-dialect MLIR module (Fig. 5's
// coordination layer), one dfg.node per actor with channel values carrying
// the dataflow edges.
func (g *Graph) EmitDFG() (*mlir.Module, error) {
	ctx := mlir.NewContext()
	dialects.RegisterAll(ctx)
	m := mlir.NewModule(ctx, g.Fn.Name)
	b := mlir.NewBuilder(ctx, m.Body())

	gop := b.CreateWithRegions("dfg.graph", nil, nil, map[string]mlir.Attribute{
		"sym_name": mlir.StringAttr(g.Fn.Name),
	}, 1)
	gb := mlir.NewBuilder(ctx, gop.Regions[0].Entry())

	vals := make(map[string]*mlir.Value)
	for _, in := range g.Inputs {
		ch := gb.Create("dfg.channel", nil,
			[]mlir.Type{mlir.StreamType{Elem: mlir.F64()}},
			map[string]mlir.Attribute{"name": mlir.StringAttr(in)})
		ch.Result(0).SetName(in)
		vals[in] = ch.Result(0)
	}
	for _, n := range g.Nodes {
		operands := make([]*mlir.Value, len(n.Args))
		for i, a := range n.Args {
			operands[i] = vals[a]
		}
		attrs := map[string]mlir.Attribute{"fn": mlir.StringAttr(n.Fn)}
		if n.Attr != nil {
			attrs["offloaded"] = mlir.BoolAttr(n.Attr.Offloaded)
			if n.Attr.Path != "" {
				attrs["path"] = mlir.StringAttr(n.Attr.Path)
			}
			if len(n.Attr.Multiplicity) > 0 {
				attrs["multiplicity"] = mlir.IntsAttr(n.Attr.Multiplicity...)
			}
		}
		op := gb.Create("dfg.node", operands,
			[]mlir.Type{mlir.StreamType{Elem: mlir.F64()}}, attrs)
		op.Result(0).SetName(n.Name)
		vals[n.Name] = op.Result(0)
	}
	gb.Create("dfg.output", []*mlir.Value{vals[g.Result]}, nil, nil)

	if err := m.Verify(); err != nil {
		return nil, err
	}
	return m, nil
}

// CriticalPathLen returns the number of stages (the depth of the graph).
func (g *Graph) CriticalPathLen() int { return len(g.Stages()) }

// NodeNames returns all bound names in definition order.
func (g *Graph) NodeNames() []string {
	names := make([]string, len(g.Nodes))
	for i, n := range g.Nodes {
		names[i] = n.Name
	}
	return names
}

// SortedFunctions returns the distinct actor function names, sorted.
func (g *Graph) SortedFunctions() []string {
	set := make(map[string]bool)
	for _, n := range g.Nodes {
		set[n.Fn] = true
	}
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}
