// Package condrust implements the EVEREST coordination language (paper
// §V-A2, Fig. 4): ConDRust, an imperative language based on a subset of Rust
// (Suchert et al., ECOOP 2023) that compiles to deterministic dataflow.
//
// The supported subset is exactly the shape of Fig. 4:
//
//	fn match_one(gv: GpsVector, mapcell: MapCell) -> RoadSpeedVector {
//	    #[kernel(offloaded = true, multiplicity = [1, 1, 1, 1],
//	             path = "projection.cpp")]
//	    let cv: CandiVector = projection(gv, mapcell);
//	    let t: Trellis = build_trellis(gv, cv, mapcell);
//	    let rsvbb: RoadSpeedVector = viterbi(t, cv);
//	    interpolate(rsvbb, mapcell)
//	}
//
// Functions are sequences of let-bound calls ending in a tail expression.
// Because every value is produced exactly once and consumed by name, the
// program is a static dataflow graph: parallel execution is deterministic by
// construction ("provable determinism", the language's key property). The
// #[kernel] attribute marks calls for FPGA offloading and carries the HLS
// source path and multiplicity, feeding the compile-time placement
// exploration of experiment E10.
package condrust

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// KernelAttr is the #[kernel(...)] annotation of one statement.
type KernelAttr struct {
	Offloaded    bool
	Multiplicity []int
	Path         string
}

// Call is a function application over previously bound names.
type Call struct {
	Fn   string
	Args []string
}

// Stmt is one `let name: Type = call(args);` statement.
type Stmt struct {
	Name string
	Type string
	Call Call
	Attr *KernelAttr
	Line int
}

// Param is a typed function parameter.
type Param struct {
	Name string
	Type string
}

// Func is a parsed ConDRust function.
type Func struct {
	Name    string
	Params  []Param
	RetType string
	Stmts   []Stmt
	// Tail is the returned expression: a call or a bare name.
	Tail     Call
	TailName string // set when the tail is a bare identifier
	Line     int
}

// Program is a set of functions.
type Program struct {
	Funcs []*Func
}

// Find returns the function with the given name, or nil.
func (p *Program) Find(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

type lexer struct {
	src  []rune
	pos  int
	line int
}

func (l *lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
	}
	return r
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		r := l.peek()
		if unicode.IsSpace(r) {
			l.advance()
			continue
		}
		if r == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
			continue
		}
		break
	}
}

func (l *lexer) ident() string {
	var b strings.Builder
	for l.pos < len(l.src) {
		r := l.peek()
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
			b.WriteRune(l.advance())
		} else {
			break
		}
	}
	return b.String()
}

func (l *lexer) expect(s string) error {
	l.skipSpace()
	for _, want := range s {
		if l.pos >= len(l.src) || l.peek() != want {
			return fmt.Errorf("condrust:%d: expected %q", l.line, s)
		}
		l.advance()
	}
	return nil
}

func (l *lexer) accept(s string) bool {
	l.skipSpace()
	save, saveLine := l.pos, l.line
	for _, want := range s {
		if l.pos >= len(l.src) || l.peek() != want {
			l.pos, l.line = save, saveLine
			return false
		}
		l.advance()
	}
	return true
}

// Parse parses ConDRust source into a Program.
func Parse(src string) (*Program, error) {
	l := &lexer{src: []rune(src), line: 1}
	prog := &Program{}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			break
		}
		f, err := parseFunc(l)
		if err != nil {
			return nil, err
		}
		prog.Funcs = append(prog.Funcs, f)
	}
	if len(prog.Funcs) == 0 {
		return nil, fmt.Errorf("condrust: no functions in source")
	}
	return prog, nil
}

func parseFunc(l *lexer) (*Func, error) {
	if err := l.expect("fn"); err != nil {
		return nil, err
	}
	l.skipSpace()
	f := &Func{Name: l.ident(), Line: l.line}
	if f.Name == "" {
		return nil, fmt.Errorf("condrust:%d: expected function name", l.line)
	}
	if err := l.expect("("); err != nil {
		return nil, err
	}
	for !l.accept(")") {
		l.skipSpace()
		p := Param{Name: l.ident()}
		if p.Name == "" {
			return nil, fmt.Errorf("condrust:%d: expected parameter name", l.line)
		}
		if err := l.expect(":"); err != nil {
			return nil, err
		}
		l.skipSpace()
		p.Type = l.ident()
		if p.Type == "" {
			return nil, fmt.Errorf("condrust:%d: expected parameter type", l.line)
		}
		f.Params = append(f.Params, p)
		l.accept(",")
	}
	if l.accept("->") {
		l.skipSpace()
		f.RetType = l.ident()
	}
	if err := l.expect("{"); err != nil {
		return nil, err
	}

	for {
		l.skipSpace()
		var attr *KernelAttr
		if l.accept("#[") {
			a, err := parseAttr(l)
			if err != nil {
				return nil, err
			}
			attr = a
			l.skipSpace()
		}
		if l.accept("let") {
			line := l.line
			l.skipSpace()
			s := Stmt{Name: l.ident(), Attr: attr, Line: line}
			if s.Name == "" {
				return nil, fmt.Errorf("condrust:%d: expected binding name", l.line)
			}
			if l.accept(":") {
				l.skipSpace()
				s.Type = l.ident()
			}
			if err := l.expect("="); err != nil {
				return nil, err
			}
			call, err := parseCall(l)
			if err != nil {
				return nil, err
			}
			s.Call = call
			if err := l.expect(";"); err != nil {
				return nil, err
			}
			f.Stmts = append(f.Stmts, s)
			continue
		}
		if attr != nil {
			return nil, fmt.Errorf("condrust:%d: #[kernel] attribute must precede a let statement", l.line)
		}
		// Tail expression.
		l.skipSpace()
		name := l.ident()
		if name == "" {
			return nil, fmt.Errorf("condrust:%d: expected tail expression", l.line)
		}
		l.skipSpace()
		if l.peek() == '(' {
			call, err := parseCallWithName(l, name)
			if err != nil {
				return nil, err
			}
			f.Tail = call
		} else {
			f.TailName = name
		}
		if err := l.expect("}"); err != nil {
			return nil, err
		}
		break
	}
	return f, nil
}

func parseCall(l *lexer) (Call, error) {
	l.skipSpace()
	name := l.ident()
	if name == "" {
		return Call{}, fmt.Errorf("condrust:%d: expected call", l.line)
	}
	return parseCallWithName(l, name)
}

func parseCallWithName(l *lexer, name string) (Call, error) {
	c := Call{Fn: name}
	if err := l.expect("("); err != nil {
		return c, err
	}
	for !l.accept(")") {
		l.skipSpace()
		arg := l.ident()
		if arg == "" {
			return c, fmt.Errorf("condrust:%d: expected argument name", l.line)
		}
		c.Args = append(c.Args, arg)
		l.accept(",")
	}
	return c, nil
}

func parseAttr(l *lexer) (*KernelAttr, error) {
	l.skipSpace()
	if kw := l.ident(); kw != "kernel" {
		return nil, fmt.Errorf("condrust:%d: unknown attribute %q", l.line, kw)
	}
	a := &KernelAttr{}
	if err := l.expect("("); err != nil {
		return nil, err
	}
	for !l.accept(")") {
		l.skipSpace()
		key := l.ident()
		if err := l.expect("="); err != nil {
			return nil, err
		}
		l.skipSpace()
		switch key {
		case "offloaded":
			v := l.ident()
			a.Offloaded = v == "true"
		case "multiplicity":
			if err := l.expect("["); err != nil {
				return nil, err
			}
			for !l.accept("]") {
				l.skipSpace()
				var num strings.Builder
				for unicode.IsDigit(l.peek()) {
					num.WriteRune(l.advance())
				}
				n, err := strconv.Atoi(num.String())
				if err != nil {
					return nil, fmt.Errorf("condrust:%d: bad multiplicity entry", l.line)
				}
				a.Multiplicity = append(a.Multiplicity, n)
				l.accept(",")
			}
		case "path":
			if err := l.expect(`"`); err != nil {
				return nil, err
			}
			var sb strings.Builder
			for l.pos < len(l.src) && l.peek() != '"' {
				sb.WriteRune(l.advance())
			}
			if err := l.expect(`"`); err != nil {
				return nil, err
			}
			a.Path = sb.String()
		default:
			return nil, fmt.Errorf("condrust:%d: unknown kernel attribute key %q", l.line, key)
		}
		l.accept(",")
	}
	if err := l.expect("]"); err != nil {
		return nil, err
	}
	return a, nil
}
