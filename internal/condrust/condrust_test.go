package condrust

import (
	"strings"
	"testing"
	"testing/quick"
)

// fig4Src is the paper's Fig. 4 example verbatim (module paths elided).
const fig4Src = `
fn match_one(gv: GpsVector, mapcell: MapCell) -> RoadSpeedVector {
    #[kernel(offloaded = true, multiplicity = [1, 1, 1, 1],
             path = "projection.cpp")]
    let cv: CandiVector = projection(gv, mapcell);
    let t: Trellis = build_trellis(gv, cv, mapcell);
    let rsvbb: RoadSpeedVector = viterbi(t, cv);
    interpolate(rsvbb, mapcell)
}
`

func TestParseFig4(t *testing.T) {
	prog, err := Parse(fig4Src)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Find("match_one")
	if f == nil {
		t.Fatal("match_one not found")
	}
	if len(f.Params) != 2 || f.Params[0].Name != "gv" || f.Params[1].Type != "MapCell" {
		t.Errorf("params wrong: %+v", f.Params)
	}
	if f.RetType != "RoadSpeedVector" {
		t.Errorf("return type %q", f.RetType)
	}
	if len(f.Stmts) != 3 {
		t.Fatalf("want 3 statements, got %d", len(f.Stmts))
	}
	attr := f.Stmts[0].Attr
	if attr == nil || !attr.Offloaded || attr.Path != "projection.cpp" {
		t.Errorf("kernel attr wrong: %+v", attr)
	}
	if len(attr.Multiplicity) != 4 {
		t.Errorf("multiplicity wrong: %v", attr.Multiplicity)
	}
	if f.Tail.Fn != "interpolate" || len(f.Tail.Args) != 2 {
		t.Errorf("tail wrong: %+v", f.Tail)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"fn { }",
		"fn f( { }",
		"fn f() -> T { let x = ; x }",
		"fn f() -> T { #[kernel(offloaded = true)] x }",
		"fn f() -> T { let x: T = g(y) }", // missing semicolon
		"fn f() -> T { #[wrong()] let x: T = g(); x }",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) must fail", src)
		}
	}
}

func TestBuildGraphChecks(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unbound arg", `fn f(a: A) -> B { let x: B = g(q); x }`},
		{"rebinding", `fn f(a: A) -> B { let x: B = g(a); let x: B = h(a); x }`},
		{"dup param", `fn f(a: A, a: A) -> B { let x: B = g(a); x }`},
		{"unbound tail", `fn f(a: A) -> B { let x: B = g(a); y }`},
	}
	for _, c := range cases {
		prog, err := Parse(c.src)
		if err != nil {
			t.Fatalf("%s: parse: %v", c.name, err)
		}
		if _, err := BuildGraph(prog.Funcs[0]); err == nil {
			t.Errorf("%s: BuildGraph must fail", c.name)
		}
	}
}

func TestGraphStages(t *testing.T) {
	prog, err := Parse(fig4Src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGraph(prog.Funcs[0])
	if err != nil {
		t.Fatal(err)
	}
	// projection -> build_trellis -> viterbi -> interpolate: pure chain.
	if g.CriticalPathLen() != 4 {
		t.Errorf("critical path %d, want 4", g.CriticalPathLen())
	}
	if len(g.OffloadCandidates()) != 1 || g.OffloadCandidates()[0].Fn != "projection" {
		t.Error("projection must be the only offload candidate")
	}
	if got := g.SortedFunctions(); len(got) != 4 {
		t.Errorf("functions = %v", got)
	}
}

func TestParallelStages(t *testing.T) {
	src := `
fn fan(a: A) -> D {
    let x: B = f(a);
    let y: C = g(a);
    let z: D = h(x, y);
    z
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGraph(prog.Funcs[0])
	if err != nil {
		t.Fatal(err)
	}
	stages := g.Stages()
	if len(stages) != 2 {
		t.Fatalf("want 2 stages, got %d", len(stages))
	}
	if len(stages[0]) != 2 {
		t.Errorf("first stage should hold the two independent calls, got %d", len(stages[0]))
	}
}

func TestExecuteDeterministic(t *testing.T) {
	prog, err := Parse(fig4Src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGraph(prog.Funcs[0])
	if err != nil {
		t.Fatal(err)
	}
	reg := FuncRegistry{
		"projection":    func(a []interface{}) (interface{}, error) { return a[0].(int) * 2, nil },
		"build_trellis": func(a []interface{}) (interface{}, error) { return a[0].(int) + a[1].(int), nil },
		"viterbi":       func(a []interface{}) (interface{}, error) { return a[0].(int) * a[1].(int), nil },
		"interpolate":   func(a []interface{}) (interface{}, error) { return a[0].(int) - a[1].(int), nil },
	}
	inputs := map[string]interface{}{"gv": 3, "mapcell": 10}
	// cv=6, t=9, rsvbb=54, result=44.
	first, err := g.Execute(reg, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if first.(int) != 44 {
		t.Fatalf("result = %v, want 44", first)
	}
	// Determinism across many concurrent executions.
	for i := 0; i < 50; i++ {
		got, err := g.Execute(reg, inputs)
		if err != nil || got.(int) != 44 {
			t.Fatalf("run %d: %v (%v)", i, got, err)
		}
	}
}

func TestExecuteErrors(t *testing.T) {
	prog, _ := Parse(fig4Src)
	g, _ := BuildGraph(prog.Funcs[0])
	if _, err := g.Execute(FuncRegistry{}, map[string]interface{}{"gv": 1, "mapcell": 2}); err == nil {
		t.Error("missing implementations must error")
	}
	reg := FuncRegistry{
		"projection":    func(a []interface{}) (interface{}, error) { return nil, nil },
		"build_trellis": func(a []interface{}) (interface{}, error) { return nil, nil },
		"viterbi":       func(a []interface{}) (interface{}, error) { return nil, nil },
		"interpolate":   func(a []interface{}) (interface{}, error) { return nil, nil },
	}
	if _, err := g.Execute(reg, map[string]interface{}{"gv": 1}); err == nil {
		t.Error("missing input must error")
	}
}

func TestExecutePropagatesActorError(t *testing.T) {
	src := `fn f(a: A) -> B { let x: B = boom(a); x }`
	prog, _ := Parse(src)
	g, _ := BuildGraph(prog.Funcs[0])
	reg := FuncRegistry{
		"boom": func(a []interface{}) (interface{}, error) {
			return nil, errBoom
		},
	}
	_, err := g.Execute(reg, map[string]interface{}{"a": 1})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("actor error must propagate, got %v", err)
	}
}

var errBoom = errFromString("boom failed")

type errFromString string

func (e errFromString) Error() string { return string(e) }

func TestEmitDFG(t *testing.T) {
	prog, _ := Parse(fig4Src)
	g, _ := BuildGraph(prog.Funcs[0])
	m, err := g.EmitDFG()
	if err != nil {
		t.Fatal(err)
	}
	if got := m.CountOps("dfg.node"); got != 4 {
		t.Errorf("dfg.node count %d, want 4", got)
	}
	if got := m.CountOps("dfg.channel"); got != 2 {
		t.Errorf("dfg.channel count %d, want 2 (params)", got)
	}
	text := m.String()
	if !strings.Contains(text, `offloaded = true`) {
		t.Error("offload annotation must survive into the dfg module")
	}
	if !strings.Contains(text, `"projection.cpp"`) {
		t.Error("kernel path must survive into the dfg module")
	}
}

func TestTailNameFunction(t *testing.T) {
	src := `fn f(a: A) -> B { let x: B = g(a); x }`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGraph(prog.Funcs[0])
	if err != nil {
		t.Fatal(err)
	}
	if g.Result != "x" {
		t.Errorf("result = %q, want x", g.Result)
	}
	reg := FuncRegistry{"g": func(a []interface{}) (interface{}, error) { return 7, nil }}
	out, err := g.Execute(reg, map[string]interface{}{"a": 0})
	if err != nil || out.(int) != 7 {
		t.Errorf("Execute = %v (%v)", out, err)
	}
}

func TestDeterminismUnderFanOutProperty(t *testing.T) {
	// Wide fan-out graph executed repeatedly must always give the same sum.
	src := `
fn wide(a: A) -> S {
    let x1: B = inc(a);
    let x2: B = inc(a);
    let x3: B = inc(a);
    let x4: B = inc(a);
    let s1: S = add(x1, x2);
    let s2: S = add(x3, x4);
    add(s1, s2)
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGraph(prog.Funcs[0])
	if err != nil {
		t.Fatal(err)
	}
	reg := FuncRegistry{
		"inc": func(a []interface{}) (interface{}, error) { return a[0].(int) + 1, nil },
		"add": func(a []interface{}) (interface{}, error) { return a[0].(int) + a[1].(int), nil },
	}
	prop := func(seed int8) bool {
		v := int(seed)
		out, err := g.Execute(reg, map[string]interface{}{"a": v})
		return err == nil && out.(int) == 4*(v+1)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
