package traffic

import (
	"fmt"
	"math"
	"math/rand"
)

// CNN is a small 1-D convolutional network for road-speed prediction
// (§II-D: "a convolutional neural network for training the road speed
// prediction model"): input window of past speeds → conv(kernel k, C
// channels) → ReLU → position-aware dense layer → next-interval speed.
// Inputs and targets are normalized internally by a scale learned in Fit.
type CNN struct {
	Window   int // input length
	Kernel   int
	Channels int

	convW [][]float64 // Channels x Kernel
	convB []float64   // Channels
	fcW   [][]float64 // Channels x outLen (position-aware read-out)
	fcB   float64
	norm  float64 // input/target scale
}

// NewCNN builds a network with seeded He-style initialization.
func NewCNN(window, kernel, channels int, seed int64) (*CNN, error) {
	if kernel > window || kernel < 2 || channels < 1 {
		return nil, fmt.Errorf("traffic: bad cnn shape (window=%d kernel=%d channels=%d)",
			window, kernel, channels)
	}
	rng := rand.New(rand.NewSource(seed))
	c := &CNN{Window: window, Kernel: kernel, Channels: channels, norm: 1}
	outLen := window - kernel + 1
	scale := math.Sqrt(2 / float64(kernel))
	for ch := 0; ch < channels; ch++ {
		w := make([]float64, kernel)
		for i := range w {
			w[i] = rng.NormFloat64() * scale
		}
		c.convW = append(c.convW, w)
		fw := make([]float64, outLen)
		for i := range fw {
			fw[i] = rng.NormFloat64() * math.Sqrt(2/float64(channels*outLen))
		}
		c.fcW = append(c.fcW, fw)
	}
	c.convB = make([]float64, channels)
	return c, nil
}

// forward computes the (normalized) prediction and intermediate
// activations; xn must already be normalized.
func (c *CNN) forward(xn []float64) (pred float64, convOut [][]float64) {
	outLen := c.Window - c.Kernel + 1
	convOut = make([][]float64, c.Channels)
	pred = c.fcB
	for ch := 0; ch < c.Channels; ch++ {
		convOut[ch] = make([]float64, outLen)
		for t := 0; t < outLen; t++ {
			a := c.convB[ch]
			for k := 0; k < c.Kernel; k++ {
				a += c.convW[ch][k] * xn[t+k]
			}
			if a < 0 {
				a = 0 // ReLU
			}
			convOut[ch][t] = a
			pred += c.fcW[ch][t] * a
		}
	}
	return pred, convOut
}

// Predict returns the network output for an input window.
func (c *CNN) Predict(x []float64) (float64, error) {
	if len(x) != c.Window {
		return 0, fmt.Errorf("traffic: cnn expects window %d, got %d", c.Window, len(x))
	}
	xn := make([]float64, len(x))
	for i, v := range x {
		xn[i] = v / c.norm
	}
	p, _ := c.forward(xn)
	return p * c.norm, nil
}

// trainStep performs one SGD step on normalized (xn, yn) and returns the
// squared error before the update.
func (c *CNN) trainStep(xn []float64, yn, lr float64) float64 {
	pred, convOut := c.forward(xn)
	err := pred - yn
	loss := err * err
	outLen := c.Window - c.Kernel + 1
	for ch := 0; ch < c.Channels; ch++ {
		for t := 0; t < outLen; t++ {
			gradFc := err * convOut[ch][t]
			if convOut[ch][t] > 0 {
				g := err * c.fcW[ch][t]
				for k := 0; k < c.Kernel; k++ {
					c.convW[ch][k] -= lr * g * xn[t+k]
				}
				c.convB[ch] -= lr * g
			}
			c.fcW[ch][t] -= lr * gradFc
		}
	}
	c.fcB -= lr * err
	return loss
}

// Fit trains for epochs passes over the sample set, learning the
// normalization scale from the targets. It returns the final mean loss (in
// normalized units).
func (c *CNN) Fit(xs [][]float64, ys []float64, epochs int, lr float64) (float64, error) {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0, fmt.Errorf("traffic: cnn training set mismatch")
	}
	maxAbs := 1e-12
	for _, y := range ys {
		if a := math.Abs(y); a > maxAbs {
			maxAbs = a
		}
	}
	c.norm = maxAbs
	xn := make([][]float64, len(xs))
	yn := make([]float64, len(ys))
	for i := range xs {
		if len(xs[i]) != c.Window {
			return 0, fmt.Errorf("traffic: cnn sample %d has window %d, want %d", i, len(xs[i]), c.Window)
		}
		row := make([]float64, c.Window)
		for j, v := range xs[i] {
			row[j] = v / c.norm
		}
		xn[i] = row
		yn[i] = ys[i] / c.norm
	}
	last := 0.0
	for e := 0; e < epochs; e++ {
		total := 0.0
		for i := range xn {
			total += c.trainStep(xn[i], yn[i], lr)
		}
		last = total / float64(len(xn))
	}
	return last, nil
}

// DailySpeedCurve synthesizes one weekday of 15-minute mean speeds for a
// road segment: free flow at night, two rush-hour dips, plus noise.
func DailySpeedCurve(freeFlow float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	const bins = 96 // 24h / 15min
	out := make([]float64, bins)
	for b := 0; b < bins; b++ {
		h := float64(b) / 4
		v := freeFlow
		// Morning and evening rush dips.
		v -= 0.45 * freeFlow * math.Exp(-(h-8.5)*(h-8.5)/2)
		v -= 0.55 * freeFlow * math.Exp(-(h-17.5)*(h-17.5)/3)
		v += rng.NormFloat64() * freeFlow * 0.04
		if v < 1 {
			v = 1
		}
		out[b] = v
	}
	return out
}

// WindowDataset slices daily curves into (window, next-value) samples.
func WindowDataset(curves [][]float64, window int) (xs [][]float64, ys []float64) {
	for _, curve := range curves {
		for t := 0; t+window < len(curve); t++ {
			xs = append(xs, curve[t:t+window])
			ys = append(ys, curve[t+window])
		}
	}
	return xs, ys
}
