package traffic

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"everest/internal/base2"
	"everest/internal/hls"
)

// SpeedProfile holds, per edge and per 15-minute interval of a weekday, the
// lognormal parameters of the traversal speed — the "macroscopic parameters
// for each road segment ... for each 15-minute interval" of §II-D.
type SpeedProfile struct {
	Bins int // intervals per day (96)
	// MuSigma[edge][bin] = (mu, sigma) of log-speed.
	MuSigma map[int][][2]float64
}

// BuildProfile derives a speed profile from the network's free-flow speeds
// with congestion dips, seeded for determinism.
func BuildProfile(net *Network, seed int64) *SpeedProfile {
	p := &SpeedProfile{Bins: 96, MuSigma: make(map[int][][2]float64)}
	for e := range net.Edges {
		curve := DailySpeedCurve(net.Edges[e].SpeedLim, seed+int64(e))
		ms := make([][2]float64, p.Bins)
		for b, v := range curve {
			// Lognormal with ~18% coefficient of variation.
			ms[b] = [2]float64{math.Log(v), 0.18}
		}
		p.MuSigma[e] = ms
	}
	return p
}

// SampleTravelTime draws one Monte-Carlo travel time (seconds) over the
// route departing at departSec into the day. Speeds are drawn per edge from
// the profile of the interval the vehicle is in when entering the edge —
// the time-dependent part of PTDR.
func (p *SpeedProfile) SampleTravelTime(net *Network, route []int, departSec float64, rng *rand.Rand) (float64, error) {
	t := departSec
	for _, eid := range route {
		ms, ok := p.MuSigma[eid]
		if !ok {
			return 0, fmt.Errorf("traffic: edge %d has no speed profile", eid)
		}
		bin := int(t/900) % p.Bins
		if bin < 0 {
			bin += p.Bins
		}
		speed := math.Exp(ms[bin][0] + rng.NormFloat64()*ms[bin][1])
		if speed < 0.5 {
			speed = 0.5
		}
		t += net.Edges[eid].Length / speed
	}
	return t - departSec, nil
}

// PTDRResult is the travel-time distribution summary the routing layer
// consumes ("Probabilistic Time Dependent Routing to infer correct arrival
// times").
type PTDRResult struct {
	Samples    int
	Mean       float64
	P05        float64
	P50        float64
	P95        float64
	FlopsTotal float64 // modelled work, for the CPU/FPGA comparison
}

// MonteCarlo runs n travel-time samples and summarizes the distribution.
func MonteCarlo(net *Network, p *SpeedProfile, route []int, departSec float64, n int, seed int64) (*PTDRResult, error) {
	if n < 1 {
		return nil, fmt.Errorf("traffic: need at least one sample")
	}
	if len(route) == 0 {
		return nil, fmt.Errorf("traffic: empty route")
	}
	rng := rand.New(rand.NewSource(seed))
	times := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		t, err := p.SampleTravelTime(net, route, departSec, rng)
		if err != nil {
			return nil, err
		}
		times[i] = t
		sum += t
	}
	sort.Float64s(times)
	q := func(f float64) float64 {
		pos := f * float64(n-1)
		lo := int(pos)
		hi := lo
		if hi+1 < n {
			hi++
		}
		frac := pos - float64(lo)
		return times[lo]*(1-frac) + times[hi]*frac
	}
	return &PTDRResult{
		Samples: n, Mean: sum / float64(n),
		P05: q(0.05), P50: q(0.50), P95: q(0.95),
		FlopsTotal: FlopsPerSample(len(route)) * float64(n),
	}, nil
}

// FlopsPerSample models the per-sample arithmetic of the PTDR kernel: per
// edge one lognormal draw (~12 flops incl. exp) plus accumulation.
func FlopsPerSample(routeLen int) float64 { return float64(routeLen) * 14 }

// PTDRKernel returns the HLS kernel specification of the Monte-Carlo
// sampler for FPGA offload (§VIII: "we also implemented the PTDR kernel on
// a compute cluster with Alveo u55c FPGAs").
func PTDRKernel(routeLen, samples int) hls.Kernel {
	return hls.Kernel{
		Name: "ptdr_mc",
		Nest: hls.LoopNest{
			TripCounts: []int{samples, routeLen},
			// Per edge: profile load, gaussian draw (special), exp
			// (special), divide, accumulate.
			Body:      hls.OpMix{Adds: 3, Muls: 2, Divs: 1, Special: 2, Loads: 2},
			Reduction: false, // samples are independent
		},
		Format:      base2.Float32{},
		BufferBytes: int64(routeLen * 96 * 8), // per-bin profile in PLM
	}
}

// PTDRBytes returns the host<->device payload of one PTDR batch: the route
// profile in, the sampled quantiles out (per-sample times stay on device).
func PTDRBytes(routeLen, samples int) (in, out int64) {
	return int64(routeLen * 96 * 8), int64(samples * 4)
}

// PTDRKernelSchedule runs the default HLS schedule of the PTDR kernel
// (pipelined, Vitis cost model), used by tests and the E9 bench.
func PTDRKernelSchedule(k hls.Kernel) (hls.Report, error) {
	return hls.Schedule(k, hls.Directives{PipelineEnabled: true}, hls.VitisBackend{})
}
