package traffic

import (
	"everest/internal/ekl"
	"everest/internal/tensor"
)

// This file is the offload face of the map-matching pipeline (§VIII): the
// Fig. 4 projection stage — the one the coordination program marks
// #[kernel(offloaded = true)] — expressed in the EVEREST kernel language
// so the variant pipeline can compile it source-to-schedule, plus the
// software cost model of the remaining ConDRust stages. The workload
// registry (internal/apps) builds the traffic application's DAG from the
// parsed Fig. 4 dataflow graph and compiles this kernel for its
// accelerable stage.

// ProjectionEKL is the candidate-projection kernel: every GPS point is
// projected onto every edge segment (clamped parametric projection, the
// exact arithmetic of Network.ProjectOntoEdge) and the squared distance
// comes out. The per-pair divide and the clamp are what the FPGA datapath
// absorbs in pipelined units while a CPU core pays an iterative sequence
// for each divide — the offload economics of E10.
func ProjectionEKL() string {
	return `# Fig. 4 projection stage: squared point-to-segment distances
kernel traffic_projection {
  input px : [P]
  input py : [P]
  input ax : [E]
  input ay : [E]
  input bx : [E]
  input by : [E]
  input len2 : [E]
  t0 = ((px[i] - ax[j]) * (bx[j] - ax[j]) + (py[i] - ay[j]) * (by[j] - ay[j])) / len2[j]
  t = min(max(t0[i, j], 0.0), 1.0)
  d2 = pow(px[i] - (ax[j] + t[i, j] * (bx[j] - ax[j])), 2)
     + pow(py[i] - (ay[j] + t[i, j] * (by[j] - ay[j])), 2)
  output d2[i, j]
}
`
}

// ProjectionBinding materializes the projection kernel's binding from a
// real road network and GPS trace: point coordinates, edge endpoint
// coordinates, and squared segment lengths. Shapes drive the hardware
// generation; the values let the reference interpretation be checked
// against Network.ProjectOntoEdge.
func ProjectionBinding(net *Network, points []GPSPoint) ekl.Binding {
	p := len(points)
	e := len(net.Edges)
	px, py := tensor.New(p), tensor.New(p)
	for i, gp := range points {
		px.Set(gp.Pos.X, i)
		py.Set(gp.Pos.Y, i)
	}
	ax, ay := tensor.New(e), tensor.New(e)
	bx, by := tensor.New(e), tensor.New(e)
	len2 := tensor.New(e)
	for j, edge := range net.Edges {
		a, b := net.Nodes[edge.From], net.Nodes[edge.To]
		ax.Set(a.X, j)
		ay.Set(a.Y, j)
		bx.Set(b.X, j)
		by.Set(b.Y, j)
		dx, dy := b.X-a.X, b.Y-a.Y
		l2 := dx*dx + dy*dy
		if l2 <= 0 {
			l2 = 1 // degenerate zero-length edge: avoid the divide blowing up
		}
		len2.Set(l2, j)
	}
	return ekl.Binding{
		Tensors: map[string]*tensor.Tensor{
			"px": px, "py": py,
			"ax": ax, "ay": ay, "bx": bx, "by": by,
			"len2": len2,
		},
		Scalars: map[string]float64{},
	}
}

// StageFlops is the software cost model of the Fig. 4 pipeline stages for
// a daily batch of GPS points — the per-stage work the placement
// exploration of E10 prices (examples/trafficoffload sweeps the same
// model over batch sizes). Stage names match the coordination program's
// actor functions; unknown stages cost zero.
func StageFlops(stage string, batch int) float64 {
	b := float64(batch)
	switch stage {
	case "projection":
		// candidates × edges × projection arithmetic per pair.
		return b * 40 * 2000 * 12
	case "build_trellis":
		return b * 40 * 640
	case "viterbi":
		return b * 40 * 64
	case "interpolate":
		return b * 320
	}
	return 0
}
