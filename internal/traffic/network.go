// Package traffic implements the traffic modeling and prediction use case
// (paper §II-D, §VIII): a road-network model fed by floating car data (FCD),
// HMM map matching of sparse and noisy GPS points (the Fig. 4 pipeline:
// projection → trellis → Viterbi → interpolation), Gaussian-mixture traffic
// prediction robust to incomplete data, a convolutional speed predictor, and
// probabilistic time-dependent routing (PTDR) by Monte-Carlo simulation —
// the kernel the paper deploys on Alveo u55c FPGAs.
package traffic

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
)

// NodeID identifies a network node (intersection).
type NodeID int

// Point is a planar coordinate in meters.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Edge is a directed road segment.
type Edge struct {
	ID       int
	From, To NodeID
	Length   float64 // meters
	SpeedLim float64 // m/s free-flow speed
}

// Network is a directed road graph.
type Network struct {
	Nodes []Point
	Edges []Edge
	out   map[NodeID][]int // node -> outgoing edge IDs
}

// GridNetwork builds an nx×ny Manhattan grid with bidirectional streets.
// Spacing is the block length in meters.
func GridNetwork(nx, ny int, spacing float64, seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	n := &Network{out: make(map[NodeID][]int)}
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			n.Nodes = append(n.Nodes, Point{X: float64(i) * spacing, Y: float64(j) * spacing})
		}
	}
	id := func(i, j int) NodeID { return NodeID(j*nx + i) }
	addBoth := func(a, b NodeID) {
		length := n.Nodes[a].Dist(n.Nodes[b])
		// Mix of arterials (~60 km/h) and side streets (~30 km/h).
		speed := 8.3
		if rng.Float64() < 0.3 {
			speed = 16.7
		}
		for _, pair := range [][2]NodeID{{a, b}, {b, a}} {
			e := Edge{ID: len(n.Edges), From: pair[0], To: pair[1], Length: length, SpeedLim: speed}
			n.Edges = append(n.Edges, e)
			n.out[pair[0]] = append(n.out[pair[0]], e.ID)
		}
	}
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			if i+1 < nx {
				addBoth(id(i, j), id(i+1, j))
			}
			if j+1 < ny {
				addBoth(id(i, j), id(i, j+1))
			}
		}
	}
	return n
}

// Out returns the outgoing edge IDs of a node.
func (n *Network) Out(v NodeID) []int { return n.out[v] }

// EdgeMidpoint returns the midpoint of an edge.
func (n *Network) EdgeMidpoint(e int) Point {
	a, b := n.Nodes[n.Edges[e].From], n.Nodes[n.Edges[e].To]
	return Point{X: (a.X + b.X) / 2, Y: (a.Y + b.Y) / 2}
}

// ProjectOntoEdge returns the closest point on edge e to p and its distance.
func (n *Network) ProjectOntoEdge(e int, p Point) (Point, float64) {
	a := n.Nodes[n.Edges[e].From]
	b := n.Nodes[n.Edges[e].To]
	abx, aby := b.X-a.X, b.Y-a.Y
	l2 := abx*abx + aby*aby
	t := 0.0
	if l2 > 0 {
		t = ((p.X-a.X)*abx + (p.Y-a.Y)*aby) / l2
		t = math.Max(0, math.Min(1, t))
	}
	proj := Point{X: a.X + t*abx, Y: a.Y + t*aby}
	return proj, proj.Dist(p)
}

// NearbyEdges returns edge IDs whose projection distance to p is <= radius.
func (n *Network) NearbyEdges(p Point, radius float64) []int {
	var out []int
	for e := range n.Edges {
		if _, d := n.ProjectOntoEdge(e, p); d <= radius {
			out = append(out, e)
		}
	}
	return out
}

// pqItem is a Dijkstra frontier entry.
type pqItem struct {
	node NodeID
	cost float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].cost < q[j].cost }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// ShortestPath returns the minimum free-flow travel-time path between two
// nodes as edge IDs, plus the travel time in seconds. It returns an error if
// no path exists.
func (n *Network) ShortestPath(from, to NodeID) ([]int, float64, error) {
	if int(from) >= len(n.Nodes) || int(to) >= len(n.Nodes) || from < 0 || to < 0 {
		return nil, 0, fmt.Errorf("traffic: node out of range")
	}
	const inf = math.MaxFloat64
	dist := make(map[NodeID]float64, len(n.Nodes))
	prevEdge := make(map[NodeID]int, len(n.Nodes))
	q := &pq{{node: from, cost: 0}}
	dist[from] = 0
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.node == to {
			break
		}
		if d, ok := dist[it.node]; ok && it.cost > d {
			continue
		}
		for _, eid := range n.out[it.node] {
			e := n.Edges[eid]
			nd := it.cost + e.Length/e.SpeedLim
			if cur, ok := dist[e.To]; !ok || nd < cur {
				dist[e.To] = nd
				prevEdge[e.To] = eid
				heap.Push(q, pqItem{node: e.To, cost: nd})
			}
		}
	}
	d, ok := dist[to]
	if !ok || d == inf {
		return nil, 0, fmt.Errorf("traffic: no path from %d to %d", from, to)
	}
	// Reconstruct.
	var rev []int
	cur := to
	for cur != from {
		eid, ok := prevEdge[cur]
		if !ok {
			return nil, 0, fmt.Errorf("traffic: path reconstruction failed")
		}
		rev = append(rev, eid)
		cur = n.Edges[eid].From
	}
	path := make([]int, len(rev))
	for i := range rev {
		path[i] = rev[len(rev)-1-i]
	}
	return path, d, nil
}

// RouteDistance returns the network travel distance (m) between two points
// located on two edges, approximated as projection offsets plus the
// shortest path between edge endpoints.
func (n *Network) RouteDistance(eA int, pA Point, eB int, pB Point) float64 {
	if eA == eB {
		return pA.Dist(pB)
	}
	a := n.Edges[eA]
	b := n.Edges[eB]
	// Distance from pA to the end of its edge, path, then start of eB to pB.
	head := pA.Dist(n.Nodes[a.To])
	tail := n.Nodes[b.From].Dist(pB)
	path, _, err := n.ShortestPath(a.To, b.From)
	if err != nil {
		return math.MaxFloat64 / 4
	}
	mid := 0.0
	for _, eid := range path {
		mid += n.Edges[eid].Length
	}
	return head + mid + tail
}
