package traffic

import (
	"fmt"
	"math"
	"math/rand"

	"everest/internal/condrust"
)

// GPSPoint is one floating-car-data sample.
type GPSPoint struct {
	Pos  Point
	Time float64 // seconds since trip start
}

// Trace is one vehicle trip: noisy GPS points plus (for evaluation) the true
// edge sequence.
type Trace struct {
	Points    []GPSPoint
	TrueEdges []int
}

// SimulateTrip drives a vehicle for `hops` edges — along a shortest path
// when one of that length exists, otherwise a U-turn-free random walk —
// sampling GPS points every sampleEvery meters with Gaussian noise: the
// "sparse and noisy FCD points" of §II-D.
func SimulateTrip(net *Network, seed int64, hops int, noiseStd, sampleEvery float64) (*Trace, error) {
	rng := rand.New(rand.NewSource(seed))
	for attempt := 0; attempt < 40; attempt++ {
		var path []int
		if attempt < 20 {
			from := NodeID(rng.Intn(len(net.Nodes)))
			to := NodeID(rng.Intn(len(net.Nodes)))
			if from == to {
				continue
			}
			sp, _, err := net.ShortestPath(from, to)
			if err != nil || len(sp) < hops {
				continue
			}
			path = sp[:hops]
		} else {
			// Random walk without immediate reversal.
			cur := NodeID(rng.Intn(len(net.Nodes)))
			prev := NodeID(-1)
			for len(path) < hops {
				outs := net.Out(cur)
				var choices []int
				for _, eid := range outs {
					if net.Edges[eid].To != prev {
						choices = append(choices, eid)
					}
				}
				if len(choices) == 0 {
					choices = outs
				}
				eid := choices[rng.Intn(len(choices))]
				path = append(path, eid)
				prev = cur
				cur = net.Edges[eid].To
			}
		}
		tr := &Trace{TrueEdges: path}
		travelled := 0.0
		next := 0.0
		t := 0.0
		for _, eid := range path {
			e := net.Edges[eid]
			a := net.Nodes[e.From]
			b := net.Nodes[e.To]
			for next <= travelled+e.Length {
				frac := (next - travelled) / e.Length
				pos := Point{X: a.X + frac*(b.X-a.X), Y: a.Y + frac*(b.Y-a.Y)}
				noisy := Point{X: pos.X + rng.NormFloat64()*noiseStd, Y: pos.Y + rng.NormFloat64()*noiseStd}
				tr.Points = append(tr.Points, GPSPoint{Pos: noisy, Time: t + frac*e.Length/e.SpeedLim})
				next += sampleEvery
			}
			travelled += e.Length
			t += e.Length / e.SpeedLim
		}
		if len(tr.Points) >= 2 {
			return tr, nil
		}
	}
	return nil, fmt.Errorf("traffic: could not simulate a trip with %d hops", hops)
}

// Candidate is one map-matching candidate: a GPS point projected on an edge.
type Candidate struct {
	Edge int
	Pos  Point
	Dist float64 // projection distance (m)
}

// Projection is stage 1 of the Fig. 4 pipeline (the stage the paper marks
// #[kernel(offloaded = true)]): for every GPS point, find the candidate
// edges within the search radius, keeping at most maxCand per point.
func Projection(net *Network, points []GPSPoint, radius float64, maxCand int) ([][]Candidate, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("traffic: no GPS points")
	}
	if maxCand < 1 {
		maxCand = 4
	}
	out := make([][]Candidate, len(points))
	for i, p := range points {
		var cands []Candidate
		for e := range net.Edges {
			proj, d := net.ProjectOntoEdge(e, p.Pos)
			if d <= radius {
				cands = append(cands, Candidate{Edge: e, Pos: proj, Dist: d})
			}
		}
		if len(cands) == 0 {
			return nil, fmt.Errorf("traffic: GPS point %d has no candidates within %gm", i, radius)
		}
		// Keep the closest maxCand (selection by partial sort).
		for a := 0; a < len(cands) && a < maxCand; a++ {
			best := a
			for b := a + 1; b < len(cands); b++ {
				if cands[b].Dist < cands[best].Dist {
					best = b
				}
			}
			cands[a], cands[best] = cands[best], cands[a]
		}
		if len(cands) > maxCand {
			cands = cands[:maxCand]
		}
		out[i] = cands
	}
	return out, nil
}

// Trellis is stage 2: the HMM lattice with emission and transition weights.
type Trellis struct {
	// Emission[i][c] is the log emission probability of candidate c at
	// point i.
	Emission [][]float64
	// Trans[i][c][d] is the log transition probability from candidate c at
	// point i to candidate d at point i+1.
	Trans [][][]float64
	Cands [][]Candidate
}

// BuildTrellis is stage 2 of Fig. 4: Gaussian emissions on projection
// distance, exponential transition penalty on the difference between the
// great-circle and route distances (Newson–Krumm).
func BuildTrellis(net *Network, points []GPSPoint, cands [][]Candidate, gpsSigma, beta float64) (*Trellis, error) {
	if len(points) != len(cands) {
		return nil, fmt.Errorf("traffic: %d points but %d candidate sets", len(points), len(cands))
	}
	if gpsSigma <= 0 {
		gpsSigma = 10
	}
	if beta <= 0 {
		beta = 30
	}
	tr := &Trellis{Cands: cands}
	for i := range points {
		em := make([]float64, len(cands[i]))
		for c, cand := range cands[i] {
			em[c] = -cand.Dist * cand.Dist / (2 * gpsSigma * gpsSigma)
		}
		tr.Emission = append(tr.Emission, em)
	}
	for i := 0; i+1 < len(points); i++ {
		straight := points[i].Pos.Dist(points[i+1].Pos)
		layer := make([][]float64, len(cands[i]))
		for c, cc := range cands[i] {
			row := make([]float64, len(cands[i+1]))
			for d, cd := range cands[i+1] {
				route := net.RouteDistance(cc.Edge, cc.Pos, cd.Edge, cd.Pos)
				row[d] = -math.Abs(route-straight) / beta
			}
			layer[c] = row
		}
		tr.Trans = append(tr.Trans, layer)
	}
	return tr, nil
}

// Viterbi is stage 3: the maximum a-posteriori candidate sequence.
func Viterbi(tr *Trellis) ([]int, error) {
	n := len(tr.Emission)
	if n == 0 {
		return nil, fmt.Errorf("traffic: empty trellis")
	}
	score := make([][]float64, n)
	back := make([][]int, n)
	score[0] = append([]float64(nil), tr.Emission[0]...)
	for i := 1; i < n; i++ {
		score[i] = make([]float64, len(tr.Emission[i]))
		back[i] = make([]int, len(tr.Emission[i]))
		for d := range tr.Emission[i] {
			best := math.Inf(-1)
			arg := 0
			for c := range tr.Emission[i-1] {
				s := score[i-1][c] + tr.Trans[i-1][c][d]
				if s > best {
					best = s
					arg = c
				}
			}
			score[i][d] = best + tr.Emission[i][d]
			back[i][d] = arg
		}
	}
	// Backtrack.
	bestEnd := 0
	for d := range score[n-1] {
		if score[n-1][d] > score[n-1][bestEnd] {
			bestEnd = d
		}
	}
	path := make([]int, n)
	path[n-1] = bestEnd
	for i := n - 1; i > 0; i-- {
		path[i-1] = back[i][path[i]]
	}
	return path, nil
}

// ViterbiBrute enumerates all candidate sequences (exponential; test oracle
// for Viterbi optimality on tiny traces).
func ViterbiBrute(tr *Trellis) []int {
	n := len(tr.Emission)
	var best []int
	bestScore := math.Inf(-1)
	cur := make([]int, n)
	var rec func(i int, acc float64)
	rec = func(i int, acc float64) {
		if i == n {
			if acc > bestScore {
				bestScore = acc
				best = append([]int(nil), cur...)
			}
			return
		}
		for c := range tr.Emission[i] {
			add := tr.Emission[i][c]
			if i > 0 {
				add += tr.Trans[i-1][cur[i-1]][c]
			}
			cur[i] = c
			rec(i+1, acc+add)
		}
	}
	rec(0, 0)
	return best
}

// MatchResult is stage 4's output: the matched edges per GPS point and the
// road-speed vector derived from timestamps.
type MatchResult struct {
	Edges      []int           // matched edge per point
	RoadSpeeds map[int]float64 // edge -> observed speed (m/s)
}

// Interpolate is stage 4 of Fig. 4: derive per-edge observed speeds from
// the matched positions and timestamps.
func Interpolate(net *Network, points []GPSPoint, cands [][]Candidate, path []int) (*MatchResult, error) {
	if len(path) != len(points) {
		return nil, fmt.Errorf("traffic: path length mismatch")
	}
	res := &MatchResult{RoadSpeeds: make(map[int]float64)}
	counts := make(map[int]int)
	for i, c := range path {
		res.Edges = append(res.Edges, cands[i][c].Edge)
	}
	for i := 0; i+1 < len(points); i++ {
		dt := points[i+1].Time - points[i].Time
		if dt <= 0 {
			continue
		}
		d := net.RouteDistance(res.Edges[i], cands[i][path[i]].Pos,
			res.Edges[i+1], cands[i+1][path[i+1]].Pos)
		speed := d / dt
		e := res.Edges[i]
		res.RoadSpeeds[e] = (res.RoadSpeeds[e]*float64(counts[e]) + speed) / float64(counts[e]+1)
		counts[e]++
	}
	return res, nil
}

// MatchTrace composes the four stages (the match_one function of Fig. 4).
func MatchTrace(net *Network, trace *Trace, radius, gpsSigma, beta float64, maxCand int) (*MatchResult, error) {
	cands, err := Projection(net, trace.Points, radius, maxCand)
	if err != nil {
		return nil, err
	}
	tr, err := BuildTrellis(net, trace.Points, cands, gpsSigma, beta)
	if err != nil {
		return nil, err
	}
	path, err := Viterbi(tr)
	if err != nil {
		return nil, err
	}
	return Interpolate(net, trace.Points, cands, path)
}

// MatchAccuracy returns the fraction of GPS points matched to their true
// edge (or its reverse twin, which is indistinguishable for on-road points).
func MatchAccuracy(net *Network, trace *Trace, res *MatchResult) float64 {
	if len(res.Edges) == 0 {
		return 0
	}
	onTrue := 0
	trueSet := make(map[NodeID]map[NodeID]bool)
	for _, eid := range trace.TrueEdges {
		e := net.Edges[eid]
		if trueSet[e.From] == nil {
			trueSet[e.From] = make(map[NodeID]bool)
		}
		trueSet[e.From][e.To] = true
	}
	for _, eid := range res.Edges {
		e := net.Edges[eid]
		if trueSet[e.From][e.To] || trueSet[e.To][e.From] {
			onTrue++
		}
	}
	return float64(onTrue) / float64(len(res.Edges))
}

// MatchActors exposes the four pipeline stages as ConDRust actors, wiring
// the Fig. 4 program to real implementations (experiment E10).
func MatchActors(net *Network, radius, gpsSigma, beta float64, maxCand int) condrust.FuncRegistry {
	return condrust.FuncRegistry{
		"projection": func(args []interface{}) (interface{}, error) {
			pts := args[0].([]GPSPoint)
			return Projection(net, pts, radius, maxCand)
		},
		"build_trellis": func(args []interface{}) (interface{}, error) {
			pts := args[0].([]GPSPoint)
			cands := args[1].([][]Candidate)
			return BuildTrellis(net, pts, cands, gpsSigma, beta)
		},
		"viterbi": func(args []interface{}) (interface{}, error) {
			tr := args[0].(*Trellis)
			return Viterbi(tr)
		},
		"interpolate": func(args []interface{}) (interface{}, error) {
			pts := args[0].([]GPSPoint)
			cands := args[1].([][]Candidate)
			path := args[2].([]int)
			return Interpolate(net, pts, cands, path)
		},
	}
}

// Fig4Source is the coordination program of the paper's Fig. 4, adapted to
// the actor signatures above.
const Fig4Source = `
fn match_one(gv: GpsVector, mapcell: MapCell) -> RoadSpeedVector {
    #[kernel(offloaded = true, multiplicity = [1, 1, 1, 1],
             path = "projection.cpp")]
    let cv: CandiVector = projection(gv);
    let t: Trellis = build_trellis(gv, cv);
    let rsvbb: Path = viterbi(t);
    interpolate(gv, cv, rsvbb)
}
`
