package traffic

import (
	"math"
	"testing"

	"everest/internal/ekl"
)

// TestProjectionEKLMatchesProjectOntoEdge checks the offload kernel's
// reference interpretation against the Go projection it replaces: every
// (point, edge) squared distance must agree with Network.ProjectOntoEdge.
func TestProjectionEKLMatchesProjectOntoEdge(t *testing.T) {
	net := GridNetwork(3, 3, 200, 1)
	trace, err := SimulateTrip(net, 5, 6, 10, 80)
	if err != nil {
		t.Fatal(err)
	}
	k, err := ekl.ParseKernel(ProjectionEKL())
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Check(); err != nil {
		t.Fatal(err)
	}
	res, err := k.Run(ProjectionBinding(net, trace.Points))
	if err != nil {
		t.Fatal(err)
	}
	d2 := res.Outputs["d2"]
	if got, want := d2.Shape()[0], len(trace.Points); got != want {
		t.Fatalf("d2 rows = %d, want %d", got, want)
	}
	if got, want := d2.Shape()[1], len(net.Edges); got != want {
		t.Fatalf("d2 cols = %d, want %d", got, want)
	}
	for i, gp := range trace.Points {
		for j := range net.Edges {
			_, dist := net.ProjectOntoEdge(j, gp.Pos)
			if diff := math.Abs(d2.At(i, j) - dist*dist); diff > 1e-6 {
				t.Fatalf("point %d edge %d: EKL d2 = %g, Go d2 = %g (diff %g)",
					i, j, d2.At(i, j), dist*dist, diff)
			}
		}
	}
}

// TestStageFlops pins the Fig. 4 stage cost model's shape: projection
// dominates (it is the offloaded stage) and costs scale with the batch.
func TestStageFlops(t *testing.T) {
	stages := []string{"projection", "build_trellis", "viterbi", "interpolate"}
	for _, s := range stages {
		if StageFlops(s, 100) <= 0 {
			t.Fatalf("stage %q has no cost", s)
		}
		if StageFlops(s, 200) <= StageFlops(s, 100) {
			t.Fatalf("stage %q cost does not scale with batch", s)
		}
	}
	for _, s := range stages[1:] {
		if StageFlops(s, 1000) >= StageFlops("projection", 1000) {
			t.Fatalf("projection must dominate stage %q", s)
		}
	}
	if StageFlops("nope", 10) != 0 {
		t.Fatal("unknown stage should cost zero")
	}
}
