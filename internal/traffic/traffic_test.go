package traffic

import (
	"math"
	"math/rand"
	"testing"

	"everest/internal/condrust"
)

func testNet(t *testing.T) *Network {
	t.Helper()
	return GridNetwork(6, 6, 200, 1)
}

func TestGridNetworkStructure(t *testing.T) {
	n := GridNetwork(3, 3, 100, 1)
	if len(n.Nodes) != 9 {
		t.Fatalf("nodes = %d, want 9", len(n.Nodes))
	}
	// 12 undirected streets -> 24 directed edges.
	if len(n.Edges) != 24 {
		t.Fatalf("edges = %d, want 24", len(n.Edges))
	}
	// Corner has 2 outgoing, center has 4.
	if len(n.Out(0)) != 2 {
		t.Errorf("corner out-degree = %d", len(n.Out(0)))
	}
	if len(n.Out(4)) != 4 {
		t.Errorf("center out-degree = %d", len(n.Out(4)))
	}
}

func TestShortestPath(t *testing.T) {
	n := testNet(t)
	path, cost, err := n.ShortestPath(0, 35)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) == 0 || cost <= 0 {
		t.Fatal("degenerate path")
	}
	// Path must be connected and start/end correctly.
	if n.Edges[path[0]].From != 0 {
		t.Error("path must start at origin")
	}
	if n.Edges[path[len(path)-1]].To != 35 {
		t.Error("path must end at destination")
	}
	for i := 0; i+1 < len(path); i++ {
		if n.Edges[path[i]].To != n.Edges[path[i+1]].From {
			t.Fatal("path edges must chain")
		}
	}
	if _, _, err := n.ShortestPath(0, 999); err == nil {
		t.Error("out-of-range node must error")
	}
	// Trivial path.
	same, cost0, err := n.ShortestPath(3, 3)
	if err != nil || len(same) != 0 || cost0 != 0 {
		t.Error("self path must be empty and free")
	}
}

func TestProjectOntoEdge(t *testing.T) {
	n := GridNetwork(2, 1, 100, 1) // single street 0-1
	proj, d := n.ProjectOntoEdge(0, Point{X: 50, Y: 30})
	if math.Abs(proj.X-50) > 1e-9 || proj.Y != 0 {
		t.Errorf("projection = %+v", proj)
	}
	if math.Abs(d-30) > 1e-9 {
		t.Errorf("distance = %g, want 30", d)
	}
	// Beyond the segment end clamps.
	projEnd, _ := n.ProjectOntoEdge(0, Point{X: 150, Y: 0})
	if projEnd.X != 100 {
		t.Errorf("clamped projection = %+v", projEnd)
	}
}

func TestSimulateTripDeterministic(t *testing.T) {
	n := testNet(t)
	a, err := SimulateTrip(n, 5, 6, 8, 60)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateTrip(n, 5, 6, 8, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Points) != len(b.Points) {
		t.Fatal("trip simulation must be deterministic")
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatal("trip points must match across runs")
		}
	}
	if len(a.TrueEdges) != 6 {
		t.Errorf("true edges = %d, want 6", len(a.TrueEdges))
	}
}

func TestMapMatchingRecoversRoute(t *testing.T) {
	n := testNet(t)
	for seed := int64(2); seed < 8; seed++ {
		trace, err := SimulateTrip(n, seed, 8, 10, 80)
		if err != nil {
			t.Fatal(err)
		}
		res, err := MatchTrace(n, trace, 60, 10, 30, 4)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		acc := MatchAccuracy(n, trace, res)
		if acc < 0.8 {
			t.Errorf("seed %d: match accuracy %.2f < 0.8", seed, acc)
		}
	}
}

func TestViterbiMatchesBruteForce(t *testing.T) {
	n := testNet(t)
	for seed := int64(10); seed < 16; seed++ {
		trace, err := SimulateTrip(n, seed, 4, 12, 120)
		if err != nil {
			t.Fatal(err)
		}
		if len(trace.Points) > 7 {
			trace.Points = trace.Points[:7] // keep brute force tractable
		}
		cands, err := Projection(n, trace.Points, 80, 3)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := BuildTrellis(n, trace.Points, cands, 10, 30)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := Viterbi(tr)
		if err != nil {
			t.Fatal(err)
		}
		brute := ViterbiBrute(tr)
		score := func(path []int) float64 {
			s := tr.Emission[0][path[0]]
			for i := 1; i < len(path); i++ {
				s += tr.Trans[i-1][path[i-1]][path[i]] + tr.Emission[i][path[i]]
			}
			return s
		}
		if math.Abs(score(fast)-score(brute)) > 1e-9 {
			t.Fatalf("seed %d: Viterbi score %g != brute force %g", seed, score(fast), score(brute))
		}
	}
}

func TestProjectionErrors(t *testing.T) {
	n := testNet(t)
	if _, err := Projection(n, nil, 50, 4); err == nil {
		t.Error("no points must fail")
	}
	far := []GPSPoint{{Pos: Point{X: 1e7, Y: 1e7}}}
	if _, err := Projection(n, far, 50, 4); err == nil {
		t.Error("point with no candidates must fail")
	}
}

func TestMatchActorsRunFig4(t *testing.T) {
	// E10 wiring: parse the Fig. 4 ConDRust program, bind the real stages,
	// and execute the dataflow graph end to end.
	n := testNet(t)
	prog, err := condrust.Parse(Fig4Source)
	if err != nil {
		t.Fatal(err)
	}
	g, err := condrust.BuildGraph(prog.Find("match_one"))
	if err != nil {
		t.Fatal(err)
	}
	trace, err := SimulateTrip(n, 3, 8, 10, 80)
	if err != nil {
		t.Fatal(err)
	}
	reg := MatchActors(n, 60, 10, 30, 4)
	out, err := g.Execute(reg, map[string]interface{}{
		"gv": trace.Points, "mapcell": struct{}{},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, ok := out.(*MatchResult)
	if !ok {
		t.Fatalf("unexpected result type %T", out)
	}
	if acc := MatchAccuracy(n, trace, res); acc < 0.8 {
		t.Errorf("dataflow pipeline accuracy %.2f < 0.8", acc)
	}
}

func TestGMMFitsBimodalSpeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var data [][]float64
	for i := 0; i < 300; i++ {
		if i%2 == 0 {
			data = append(data, []float64{8 + rng.NormFloat64()})
		} else {
			data = append(data, []float64{16 + rng.NormFloat64()})
		}
	}
	g := NewGMM(2, 1)
	history, err := g.Fit(data, 1, 50, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	// EM likelihood must be non-decreasing.
	for i := 1; i < len(history); i++ {
		if history[i] < history[i-1]-1e-6 {
			t.Fatalf("EM likelihood decreased at iter %d: %g -> %g", i, history[i-1], history[i])
		}
	}
	means := []float64{g.Mean[0][0], g.Mean[1][0]}
	if means[0] > means[1] {
		means[0], means[1] = means[1], means[0]
	}
	if math.Abs(means[0]-8) > 1.0 || math.Abs(means[1]-16) > 1.0 {
		t.Errorf("GMM means %v, want ~[8 16]", means)
	}
}

func TestGMMIncompleteData(t *testing.T) {
	// Two correlated features; 30% of second feature missing. The mixture
	// must still recover structure and predict the missing dimension.
	rng := rand.New(rand.NewSource(4))
	var data [][]float64
	for i := 0; i < 400; i++ {
		base := 8.0
		if i%2 == 1 {
			base = 16
		}
		x := base + rng.NormFloat64()*0.8
		y := 2*base + rng.NormFloat64()*0.8
		if rng.Float64() < 0.3 {
			y = math.NaN()
		}
		data = append(data, []float64{x, y})
	}
	g := NewGMM(2, 2)
	if _, err := g.Fit(data, 2, 60, 1e-6); err != nil {
		t.Fatal(err)
	}
	// Predict missing y for a point from the low cluster.
	pred := g.Predict([]float64{8, math.NaN()}, 1)
	if math.Abs(pred-16) > 2.5 {
		t.Errorf("conditional prediction %g, want ~16", pred)
	}
	predHi := g.Predict([]float64{16, math.NaN()}, 1)
	if math.Abs(predHi-32) > 2.5 {
		t.Errorf("conditional prediction %g, want ~32", predHi)
	}
}

func TestGMMValidation(t *testing.T) {
	g := NewGMM(3, 1)
	if _, err := g.Fit([][]float64{{1}}, 1, 10, 1e-6); err == nil {
		t.Error("too few samples must fail")
	}
	bad := [][]float64{{math.NaN()}, {1}, {2}, {3}, {4}, {5}}
	if _, err := g.Fit(bad, 1, 10, 1e-6); err == nil {
		t.Error("all-missing sample must fail")
	}
}

func TestCNNLearnsRushHour(t *testing.T) {
	var curves [][]float64
	for d := int64(0); d < 6; d++ {
		curves = append(curves, DailySpeedCurve(14, d))
	}
	xs, ys := WindowDataset(curves, 8)
	cnn, err := NewCNN(8, 3, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cnn.Fit(xs, ys, 300, 3e-2); err != nil {
		t.Fatal(err)
	}
	// Evaluate on an unseen day against persistence.
	test := DailySpeedCurve(14, 99)
	txs, tys := WindowDataset([][]float64{test}, 8)
	var cnnErr, persErr float64
	for i := range txs {
		p, err := cnn.Predict(txs[i])
		if err != nil {
			t.Fatal(err)
		}
		cnnErr += math.Abs(p - tys[i])
		persErr += math.Abs(txs[i][len(txs[i])-1] - tys[i])
	}
	if cnnErr >= persErr {
		t.Errorf("CNN MAE %g must beat persistence %g", cnnErr/float64(len(txs)), persErr/float64(len(txs)))
	}
}

func TestCNNValidation(t *testing.T) {
	if _, err := NewCNN(4, 8, 2, 1); err == nil {
		t.Error("kernel > window must fail")
	}
	cnn, _ := NewCNN(8, 3, 2, 1)
	if _, err := cnn.Predict([]float64{1, 2}); err == nil {
		t.Error("wrong window must fail")
	}
	if _, err := cnn.Fit(nil, nil, 1, 0.1); err == nil {
		t.Error("empty training set must fail")
	}
}

func TestPTDRQuantiles(t *testing.T) {
	n := testNet(t)
	profile := BuildProfile(n, 7)
	route, _, err := n.ShortestPath(0, 35)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MonteCarlo(n, profile, route, 8.5*3600, 5000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.P05 < res.P50 && res.P50 < res.P95) {
		t.Errorf("quantiles must be ordered: %g %g %g", res.P05, res.P50, res.P95)
	}
	if res.Mean <= 0 {
		t.Error("mean travel time must be positive")
	}
	// Departing in the evening rush must be slower than at night.
	night, err := MonteCarlo(n, profile, route, 3*3600, 5000, 11)
	if err != nil {
		t.Fatal(err)
	}
	rush, err := MonteCarlo(n, profile, route, 17.5*3600, 5000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if rush.P50 <= night.P50 {
		t.Errorf("rush-hour median %g must exceed night median %g", rush.P50, night.P50)
	}
}

func TestPTDRConvergence(t *testing.T) {
	// More samples -> quantile estimates stabilize (E9's sample sweep).
	n := testNet(t)
	profile := BuildProfile(n, 8)
	route, _, err := n.ShortestPath(0, 30)
	if err != nil {
		t.Fatal(err)
	}
	big, err := MonteCarlo(n, profile, route, 9*3600, 40000, 1)
	if err != nil {
		t.Fatal(err)
	}
	small1, _ := MonteCarlo(n, profile, route, 9*3600, 200, 2)
	small2, _ := MonteCarlo(n, profile, route, 9*3600, 20000, 3)
	err1 := math.Abs(small1.P95 - big.P95)
	err2 := math.Abs(small2.P95 - big.P95)
	if err2 >= err1 {
		t.Errorf("P95 estimate must improve with samples: %g (200) vs %g (20000)", err1, err2)
	}
}

func TestPTDRErrors(t *testing.T) {
	n := testNet(t)
	profile := BuildProfile(n, 1)
	if _, err := MonteCarlo(n, profile, nil, 0, 100, 1); err == nil {
		t.Error("empty route must fail")
	}
	route, _, _ := n.ShortestPath(0, 1)
	if _, err := MonteCarlo(n, profile, route, 0, 0, 1); err == nil {
		t.Error("zero samples must fail")
	}
}

func TestPTDRKernelSchedulable(t *testing.T) {
	k := PTDRKernel(100, 10000)
	if k.Nest.Trips() != 100*10000 {
		t.Error("trip count wrong")
	}
	if _, err := PTDRKernelSchedule(k); err != nil {
		t.Errorf("PTDR kernel must schedule: %v", err)
	}
}
