package traffic

import (
	"fmt"
	"math"
	"math/rand"
)

// GMM is a diagonal-covariance Gaussian mixture over feature vectors with
// support for incomplete observations (NaN entries are marginalized out),
// matching the paper's "Gaussian Mixture model for an alternative traffic
// prediction with incomplete data" (§II-D).
type GMM struct {
	K      int
	Dim    int
	Weight []float64   // K
	Mean   [][]float64 // K x Dim
	Var    [][]float64 // K x Dim (diagonal)
}

// NewGMM allocates a mixture with K components over Dim features.
func NewGMM(k, dim int) *GMM {
	g := &GMM{K: k, Dim: dim}
	g.Weight = make([]float64, k)
	g.Mean = make([][]float64, k)
	g.Var = make([][]float64, k)
	for i := 0; i < k; i++ {
		g.Mean[i] = make([]float64, dim)
		g.Var[i] = make([]float64, dim)
	}
	return g
}

// logCompDensity returns the log density of x under component k, using only
// the observed (non-NaN) dimensions.
func (g *GMM) logCompDensity(k int, x []float64) float64 {
	ll := 0.0
	for d, v := range x {
		if math.IsNaN(v) {
			continue // marginalize missing dimension
		}
		vr := g.Var[k][d]
		diff := v - g.Mean[k][d]
		ll += -0.5*math.Log(2*math.Pi*vr) - diff*diff/(2*vr)
	}
	return ll
}

// LogLikelihood returns the total data log likelihood.
func (g *GMM) LogLikelihood(data [][]float64) float64 {
	total := 0.0
	for _, x := range data {
		total += g.logPoint(x)
	}
	return total
}

func (g *GMM) logPoint(x []float64) float64 {
	best := math.Inf(-1)
	logs := make([]float64, g.K)
	for k := 0; k < g.K; k++ {
		logs[k] = math.Log(g.Weight[k]+1e-300) + g.logCompDensity(k, x)
		if logs[k] > best {
			best = logs[k]
		}
	}
	sum := 0.0
	for _, l := range logs {
		sum += math.Exp(l - best)
	}
	return best + math.Log(sum)
}

// Fit runs EM for maxIter iterations (or until the likelihood improvement
// drops below tol) and returns the per-iteration log likelihoods.
func (g *GMM) Fit(data [][]float64, seed int64, maxIter int, tol float64) ([]float64, error) {
	if len(data) < g.K*2 {
		return nil, fmt.Errorf("traffic: gmm needs at least %d samples, got %d", g.K*2, len(data))
	}
	for _, x := range data {
		if len(x) != g.Dim {
			return nil, fmt.Errorf("traffic: gmm dim mismatch")
		}
		allMissing := true
		for _, v := range x {
			if !math.IsNaN(v) {
				allMissing = false
				break
			}
		}
		if allMissing {
			return nil, fmt.Errorf("traffic: sample with all features missing")
		}
	}
	rng := rand.New(rand.NewSource(seed))
	// Init: random data points as means, global variance.
	globalMean := make([]float64, g.Dim)
	globalVar := make([]float64, g.Dim)
	counts := make([]float64, g.Dim)
	for _, x := range data {
		for d, v := range x {
			if !math.IsNaN(v) {
				globalMean[d] += v
				counts[d]++
			}
		}
	}
	for d := range globalMean {
		if counts[d] > 0 {
			globalMean[d] /= counts[d]
		}
	}
	for _, x := range data {
		for d, v := range x {
			if !math.IsNaN(v) {
				diff := v - globalMean[d]
				globalVar[d] += diff * diff
			}
		}
	}
	for d := range globalVar {
		if counts[d] > 1 {
			globalVar[d] = globalVar[d]/counts[d] + 1e-6
		} else {
			globalVar[d] = 1
		}
	}
	// k-means++-style seeding over observed dimensions: later centers are
	// drawn with probability proportional to squared distance from the
	// nearest existing center, preventing mode collapse.
	obsDist2 := func(a, b []float64) float64 {
		s, cnt := 0.0, 0
		for d := range a {
			if math.IsNaN(a[d]) || math.IsNaN(b[d]) {
				continue
			}
			diff := (a[d] - b[d]) / math.Sqrt(globalVar[d])
			s += diff * diff
			cnt++
		}
		if cnt == 0 {
			return 0
		}
		return s / float64(cnt)
	}
	centers := [][]float64{data[rng.Intn(len(data))]}
	for len(centers) < g.K {
		weights := make([]float64, len(data))
		total := 0.0
		for i, x := range data {
			best := math.Inf(1)
			for _, c := range centers {
				if d := obsDist2(x, c); d < best {
					best = d
				}
			}
			weights[i] = best
			total += best
		}
		pick := 0
		if total > 0 {
			r := rng.Float64() * total
			acc := 0.0
			for i, w := range weights {
				acc += w
				if acc >= r {
					pick = i
					break
				}
			}
		} else {
			pick = rng.Intn(len(data))
		}
		centers = append(centers, data[pick])
	}
	for k := 0; k < g.K; k++ {
		g.Weight[k] = 1 / float64(g.K)
		src := centers[k]
		for d := 0; d < g.Dim; d++ {
			if math.IsNaN(src[d]) {
				g.Mean[k][d] = globalMean[d] + rng.NormFloat64()*math.Sqrt(globalVar[d])
			} else {
				g.Mean[k][d] = src[d]
			}
			g.Var[k][d] = globalVar[d]
		}
	}

	resp := make([][]float64, len(data))
	for i := range resp {
		resp[i] = make([]float64, g.K)
	}
	var history []float64
	prev := math.Inf(-1)
	for iter := 0; iter < maxIter; iter++ {
		// E step.
		for i, x := range data {
			best := math.Inf(-1)
			for k := 0; k < g.K; k++ {
				resp[i][k] = math.Log(g.Weight[k]+1e-300) + g.logCompDensity(k, x)
				if resp[i][k] > best {
					best = resp[i][k]
				}
			}
			sum := 0.0
			for k := 0; k < g.K; k++ {
				resp[i][k] = math.Exp(resp[i][k] - best)
				sum += resp[i][k]
			}
			for k := 0; k < g.K; k++ {
				resp[i][k] /= sum
			}
		}
		// M step (missing dims contribute nothing to that dim's stats).
		for k := 0; k < g.K; k++ {
			nk := 0.0
			for i := range data {
				nk += resp[i][k]
			}
			g.Weight[k] = nk / float64(len(data))
			for d := 0; d < g.Dim; d++ {
				wsum, w := 0.0, 0.0
				for i, x := range data {
					if math.IsNaN(x[d]) {
						continue
					}
					wsum += resp[i][k] * x[d]
					w += resp[i][k]
				}
				if w > 1e-12 {
					g.Mean[k][d] = wsum / w
				}
				vsum := 0.0
				for i, x := range data {
					if math.IsNaN(x[d]) {
						continue
					}
					diff := x[d] - g.Mean[k][d]
					vsum += resp[i][k] * diff * diff
				}
				if w > 1e-12 {
					g.Var[k][d] = vsum/w + 1e-6
				}
			}
		}
		ll := g.LogLikelihood(data)
		history = append(history, ll)
		if ll-prev < tol && iter > 0 {
			break
		}
		prev = ll
	}
	return history, nil
}

// Predict returns the mixture-mean of dimension d conditioned on the
// observed entries of x (with x[d] typically NaN): the prediction-with-
// incomplete-data operation.
func (g *GMM) Predict(x []float64, d int) float64 {
	logs := make([]float64, g.K)
	best := math.Inf(-1)
	for k := 0; k < g.K; k++ {
		logs[k] = math.Log(g.Weight[k]+1e-300) + g.logCompDensity(k, x)
		if logs[k] > best {
			best = logs[k]
		}
	}
	sum := 0.0
	for k := 0; k < g.K; k++ {
		logs[k] = math.Exp(logs[k] - best)
		sum += logs[k]
	}
	out := 0.0
	for k := 0; k < g.K; k++ {
		out += logs[k] / sum * g.Mean[k][d]
	}
	return out
}
