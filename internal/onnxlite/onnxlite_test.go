package onnxlite

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"everest/internal/tensor"
)

func testMLP() *Model {
	rng := rand.New(rand.NewSource(1))
	w := func(n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = rng.NormFloat64() * 0.5
		}
		return out
	}
	return MLP2("mlp", 4, 8, 3, map[string][]float64{
		"w1": w(4 * 8), "b1": w(8), "w2": w(8 * 3),
	})
}

func TestValidateAndRunMLP(t *testing.T) {
	m := testMLP()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	x := tensor.FromData([]float64{0.5, -1, 2, 0.1}, 1, 4)
	out, err := m.Run(map[string]*tensor.Tensor{"x": x})
	if err != nil {
		t.Fatal(err)
	}
	probs := out["probs"]
	if probs.Shape()[1] != 3 {
		t.Fatalf("probs shape %v", probs.Shape())
	}
	sum := probs.Sum()
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("softmax must sum to 1, got %g", sum)
	}
	for _, v := range probs.Data() {
		if v <= 0 || v >= 1 {
			t.Errorf("probability %g out of (0,1)", v)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []func(m *Model){
		func(m *Model) { m.Nodes = nil },
		func(m *Model) { m.Nodes[0].Inputs = []string{"ghost", "w1"} },
		func(m *Model) { m.Nodes[1].Output = "h0" }, // redefinition
		func(m *Model) { m.Outputs = []string{"ghost"} },
		func(m *Model) { m.Nodes[0].Op = "Gemm" },
		func(m *Model) { m.Init["w1"] = []float64{1, 2} }, // shape mismatch
		func(m *Model) { delete(m.InitDim, "w1") },
	}
	for i, mutate := range cases {
		m := testMLP()
		mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: Validate must fail", i)
		}
	}
}

func TestRunErrors(t *testing.T) {
	m := testMLP()
	if _, err := m.Run(nil); err == nil {
		t.Error("missing input must fail")
	}
	bad := tensor.New(4)
	if _, err := m.Run(map[string]*tensor.Tensor{"x": bad}); err == nil {
		t.Error("rank mismatch must fail")
	}
}

func TestConv2DAndPool(t *testing.T) {
	m := &Model{
		Name:    "conv",
		Inputs:  map[string][]int{"img": {4, 4}},
		Init:    map[string][]float64{"k": {1, 0, 0, 1}},
		InitDim: map[string][]int{"k": {2, 2}},
		Nodes: []Node{
			{Op: OpConv2D, Name: "c", Inputs: []string{"img", "k"}, Output: "f"},
			{Op: OpRelu, Name: "r", Inputs: []string{"f"}, Output: "a"},
		},
		Outputs: []string{"a"},
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	img := tensor.FromData([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 4, 4)
	out, err := m.Run(map[string]*tensor.Tensor{"img": img})
	if err != nil {
		t.Fatal(err)
	}
	f := out["a"]
	if f.Shape()[0] != 3 || f.Shape()[1] != 3 {
		t.Fatalf("conv output shape %v, want 3x3", f.Shape())
	}
	// Kernel [[1,0],[0,1]]: out[0][0] = img[0][0] + img[1][1] = 7.
	if f.At(0, 0) != 7 {
		t.Errorf("conv value %g, want 7", f.At(0, 0))
	}
}

func TestMaxPool(t *testing.T) {
	x := tensor.FromData([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 4, 4)
	out, err := applyOp(OpMaxPool, []*tensor.Tensor{x})
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0, 0) != 6 || out.At(1, 1) != 16 {
		t.Errorf("maxpool wrong: %v", out.Data())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	src := `{
	  "name": "tiny",
	  "inputs": {"x": [1, 2]},
	  "init": {"w": [1, 0, 0, 1]},
	  "init_dim": {"w": [2, 2]},
	  "nodes": [{"op": "MatMul", "name": "mm", "inputs": ["x", "w"], "output": "y"}],
	  "outputs": ["y"]
	}`
	m, err := ParseJSON([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.FromData([]float64{3, 4}, 1, 2)
	out, err := m.Run(map[string]*tensor.Tensor{"x": x})
	if err != nil {
		t.Fatal(err)
	}
	if out["y"].At(0, 0) != 3 || out["y"].At(0, 1) != 4 {
		t.Errorf("identity matmul wrong: %v", out["y"].Data())
	}
	if _, err := ParseJSON([]byte("{not json")); err == nil {
		t.Error("bad JSON must fail")
	}
}

func TestLowerToJabbah(t *testing.T) {
	m := testMLP()
	mod, err := m.Lower()
	if err != nil {
		t.Fatal(err)
	}
	if mod.CountOps("jabbah.matmul") != 2 {
		t.Errorf("matmul count = %d, want 2", mod.CountOps("jabbah.matmul"))
	}
	if mod.CountOps("jabbah.softmax") != 1 || mod.CountOps("jabbah.relu") != 1 {
		t.Error("activation ops missing")
	}
	text := mod.String()
	if !strings.Contains(text, "jabbah.graph") {
		t.Error("printed module missing jabbah.graph")
	}
}
