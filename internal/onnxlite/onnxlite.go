// Package onnxlite implements the ML-model entry point of the EVEREST SDK
// (paper §V-A: "the SDK supports standard ONNX ML models"): a minimal
// ONNX-like graph representation with shape inference, a reference executor,
// and lowering into the jabbah MLIR dialect (the Operation Set Architecture
// layer of Fig. 5 used to converge the ML frontends).
package onnxlite

import (
	"encoding/json"
	"fmt"
	"math"

	"everest/internal/mlir"
	"everest/internal/mlir/dialects"
	"everest/internal/tensor"
)

// OpType enumerates the supported graph operators.
type OpType string

// Supported operators.
const (
	OpMatMul  OpType = "MatMul"
	OpAdd     OpType = "Add"
	OpRelu    OpType = "Relu"
	OpConv2D  OpType = "Conv2D" // NHW (single channel) valid-padding conv
	OpSoftmax OpType = "Softmax"
	OpMaxPool OpType = "MaxPool" // 2x2, stride 2
)

// Node is one graph operator application.
type Node struct {
	Op     OpType   `json:"op"`
	Name   string   `json:"name"`
	Inputs []string `json:"inputs"`
	Output string   `json:"output"`
}

// Model is an ONNX-like inference graph.
type Model struct {
	Name    string               `json:"name"`
	Inputs  map[string][]int     `json:"inputs"` // name -> shape
	Init    map[string][]float64 `json:"init"`   // weights (flattened)
	InitDim map[string][]int     `json:"init_dim"`
	Nodes   []Node               `json:"nodes"`
	Outputs []string             `json:"outputs"`
}

// ParseJSON loads a model from its JSON serialization (the interchange form
// standing in for protobuf ONNX files).
func ParseJSON(data []byte) (*Model, error) {
	var m Model
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("onnxlite: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Validate checks graph well-formedness: defined names, acyclic order,
// known ops, weight shapes.
func (m *Model) Validate() error {
	if len(m.Nodes) == 0 {
		return fmt.Errorf("onnxlite: model %q has no nodes", m.Name)
	}
	defined := make(map[string]bool)
	for name := range m.Inputs {
		defined[name] = true
	}
	for name, data := range m.Init {
		dims, ok := m.InitDim[name]
		if !ok {
			return fmt.Errorf("onnxlite: initializer %q has no shape", name)
		}
		n := 1
		for _, d := range dims {
			n *= d
		}
		if n != len(data) {
			return fmt.Errorf("onnxlite: initializer %q has %d values for shape %v", name, len(data), dims)
		}
		defined[name] = true
	}
	for _, n := range m.Nodes {
		switch n.Op {
		case OpMatMul, OpAdd, OpRelu, OpConv2D, OpSoftmax, OpMaxPool:
		default:
			return fmt.Errorf("onnxlite: unsupported op %q", n.Op)
		}
		for _, in := range n.Inputs {
			if !defined[in] {
				return fmt.Errorf("onnxlite: node %q uses undefined input %q", n.Name, in)
			}
		}
		if defined[n.Output] {
			return fmt.Errorf("onnxlite: output %q redefined", n.Output)
		}
		defined[n.Output] = true
	}
	for _, out := range m.Outputs {
		if !defined[out] {
			return fmt.Errorf("onnxlite: graph output %q undefined", out)
		}
	}
	return nil
}

// Run executes the graph on the given inputs.
func (m *Model) Run(inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	env := make(map[string]*tensor.Tensor)
	for name, shape := range m.Inputs {
		t, ok := inputs[name]
		if !ok {
			return nil, fmt.Errorf("onnxlite: missing input %q", name)
		}
		if len(t.Shape()) != len(shape) {
			return nil, fmt.Errorf("onnxlite: input %q rank mismatch", name)
		}
		env[name] = t
	}
	for name, data := range m.Init {
		env[name] = tensor.FromData(append([]float64(nil), data...), m.InitDim[name]...)
	}
	for _, n := range m.Nodes {
		args := make([]*tensor.Tensor, len(n.Inputs))
		for i, in := range n.Inputs {
			args[i] = env[in]
		}
		out, err := applyOp(n.Op, args)
		if err != nil {
			return nil, fmt.Errorf("onnxlite: node %q: %w", n.Name, err)
		}
		env[n.Output] = out
	}
	res := make(map[string]*tensor.Tensor, len(m.Outputs))
	for _, out := range m.Outputs {
		res[out] = env[out]
	}
	return res, nil
}

func applyOp(op OpType, args []*tensor.Tensor) (*tensor.Tensor, error) {
	switch op {
	case OpMatMul:
		if len(args) != 2 || args[0].Rank() != 2 || args[1].Rank() != 2 {
			return nil, fmt.Errorf("op MatMul wants two rank-2 tensors")
		}
		if args[0].Shape()[1] != args[1].Shape()[0] {
			return nil, fmt.Errorf("op MatMul inner dims %d vs %d", args[0].Shape()[1], args[1].Shape()[0])
		}
		return tensor.MatMul(args[0], args[1]), nil
	case OpAdd:
		if len(args) != 2 {
			return nil, fmt.Errorf("op Add wants two tensors")
		}
		// Row-broadcast bias: (N,D) + (D).
		if args[0].Rank() == 2 && args[1].Rank() == 1 && args[0].Shape()[1] == args[1].Shape()[0] {
			out := args[0].Clone()
			rows, cols := out.Shape()[0], out.Shape()[1]
			for i := 0; i < rows; i++ {
				for j := 0; j < cols; j++ {
					out.Set(out.At(i, j)+args[1].At(j), i, j)
				}
			}
			return out, nil
		}
		return tensor.Add(args[0], args[1]), nil
	case OpRelu:
		if len(args) != 1 {
			return nil, fmt.Errorf("op Relu wants one tensor")
		}
		return args[0].Map(func(v float64) float64 {
			if v < 0 {
				return 0
			}
			return v
		}), nil
	case OpConv2D:
		if len(args) != 2 || args[0].Rank() != 2 || args[1].Rank() != 2 {
			return nil, fmt.Errorf("op Conv2D wants image and kernel, both rank-2")
		}
		return conv2d(args[0], args[1])
	case OpSoftmax:
		if len(args) != 1 || args[0].Rank() != 2 {
			return nil, fmt.Errorf("op Softmax wants one rank-2 tensor")
		}
		return softmaxRows(args[0]), nil
	case OpMaxPool:
		if len(args) != 1 || args[0].Rank() != 2 {
			return nil, fmt.Errorf("op MaxPool wants one rank-2 tensor")
		}
		return maxPool2(args[0]), nil
	}
	return nil, fmt.Errorf("unknown op %q", op)
}

func conv2d(img, k *tensor.Tensor) (*tensor.Tensor, error) {
	ih, iw := img.Shape()[0], img.Shape()[1]
	kh, kw := k.Shape()[0], k.Shape()[1]
	if kh > ih || kw > iw {
		return nil, fmt.Errorf("op Conv2D kernel larger than image")
	}
	oh, ow := ih-kh+1, iw-kw+1
	out := tensor.New(oh, ow)
	for i := 0; i < oh; i++ {
		for j := 0; j < ow; j++ {
			s := 0.0
			for a := 0; a < kh; a++ {
				for b := 0; b < kw; b++ {
					s += img.At(i+a, j+b) * k.At(a, b)
				}
			}
			out.Set(s, i, j)
		}
	}
	return out, nil
}

func softmaxRows(x *tensor.Tensor) *tensor.Tensor {
	rows, cols := x.Shape()[0], x.Shape()[1]
	out := tensor.New(rows, cols)
	for i := 0; i < rows; i++ {
		max := x.At(i, 0)
		for j := 1; j < cols; j++ {
			if x.At(i, j) > max {
				max = x.At(i, j)
			}
		}
		sum := 0.0
		for j := 0; j < cols; j++ {
			v := expFast(x.At(i, j) - max)
			out.Set(v, i, j)
			sum += v
		}
		for j := 0; j < cols; j++ {
			out.Set(out.At(i, j)/sum, i, j)
		}
	}
	return out
}

func maxPool2(x *tensor.Tensor) *tensor.Tensor {
	h, w := x.Shape()[0]/2, x.Shape()[1]/2
	out := tensor.New(h, w)
	for i := 0; i < h; i++ {
		for j := 0; j < w; j++ {
			m := x.At(2*i, 2*j)
			for a := 0; a < 2; a++ {
				for b := 0; b < 2; b++ {
					if v := x.At(2*i+a, 2*j+b); v > m {
						m = v
					}
				}
			}
			out.Set(m, i, j)
		}
	}
	return out
}

// Lower emits the model as a jabbah-dialect MLIR module: the OSA layer that
// converges ML frontends before FPGA mapping (Ringlein et al., CAL 2023).
func (m *Model) Lower() (*mlir.Module, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	ctx := mlir.NewContext()
	dialects.RegisterAll(ctx)
	mod := mlir.NewModule(ctx, m.Name)
	b := mlir.NewBuilder(ctx, mod.Body())
	gop := b.CreateWithRegions("jabbah.graph", nil, nil, map[string]mlir.Attribute{
		"sym_name": mlir.StringAttr(m.Name),
	}, 1)
	gb := mlir.NewBuilder(ctx, gop.Regions[0].Entry())

	vals := make(map[string]*mlir.Value)
	mk := func(name string, shape []int, kind string) {
		op := gb.Create("ekl.tensor", nil,
			[]mlir.Type{mlir.TensorOf(mlir.F32(), shape...)},
			map[string]mlir.Attribute{"name": mlir.StringAttr(name), "kind": mlir.StringAttr(kind)})
		op.Result(0).SetName(name)
		vals[name] = op.Result(0)
	}
	for name, shape := range m.Inputs {
		mk(name, shape, "input")
	}
	for name := range m.Init {
		mk(name, m.InitDim[name], "weight")
	}
	for _, n := range m.Nodes {
		operands := make([]*mlir.Value, len(n.Inputs))
		for i, in := range n.Inputs {
			operands[i] = vals[in]
		}
		var opName string
		attrs := map[string]mlir.Attribute{}
		switch n.Op {
		case OpMatMul:
			opName = "jabbah.matmul"
		case OpAdd:
			opName = "jabbah.add"
		case OpRelu:
			opName = "jabbah.relu"
		case OpConv2D:
			opName = "jabbah.conv2d"
		case OpSoftmax:
			opName = "jabbah.softmax"
		case OpMaxPool:
			opName = "jabbah.pool"
			attrs["kind"] = mlir.StringAttr("max")
		}
		op := gb.Create(opName, operands, []mlir.Type{mlir.TensorOf(mlir.F32())}, attrs)
		op.Result(0).SetName(n.Output)
		vals[n.Output] = op.Result(0)
	}
	outs := make([]*mlir.Value, len(m.Outputs))
	for i, o := range m.Outputs {
		outs[i] = vals[o]
	}
	gb.Create("jabbah.output", outs, nil, nil)
	if err := mod.Verify(); err != nil {
		return nil, err
	}
	return mod, nil
}

// MLP2 builds a small two-layer perceptron model (the quickstart's demo
// network): x(N,D) -> MatMul W1 -> Add b1 -> Relu -> MatMul W2 -> Softmax.
func MLP2(name string, d, hidden, classes int, weights map[string][]float64) *Model {
	return &Model{
		Name:   name,
		Inputs: map[string][]int{"x": {1, d}},
		Init: map[string][]float64{
			"w1": weights["w1"], "b1": weights["b1"],
			"w2": weights["w2"],
		},
		InitDim: map[string][]int{
			"w1": {d, hidden}, "b1": {hidden}, "w2": {hidden, classes},
		},
		Nodes: []Node{
			{Op: OpMatMul, Name: "fc1", Inputs: []string{"x", "w1"}, Output: "h0"},
			{Op: OpAdd, Name: "bias1", Inputs: []string{"h0", "b1"}, Output: "h1"},
			{Op: OpRelu, Name: "act1", Inputs: []string{"h1"}, Output: "h2"},
			{Op: OpMatMul, Name: "fc2", Inputs: []string{"h2", "w2"}, Output: "logits"},
			{Op: OpSoftmax, Name: "prob", Inputs: []string{"logits"}, Output: "probs"},
		},
		Outputs: []string{"probs"},
	}
}

// DenseMLP builds a two-layer regression network: x(B,D) -> MatMul W1 ->
// Add b1 -> Relu -> MatMul W2 -> Add b2. Unlike MLP2 there is no softmax
// head — the output is a real-valued prediction vector, the shape the
// energy-forecast inference stage serves.
func DenseMLP(name string, batch, d, hidden, out int, weights map[string][]float64) *Model {
	return &Model{
		Name:   name,
		Inputs: map[string][]int{"x": {batch, d}},
		Init: map[string][]float64{
			"w1": weights["w1"], "b1": weights["b1"],
			"w2": weights["w2"], "b2": weights["b2"],
		},
		InitDim: map[string][]int{
			"w1": {d, hidden}, "b1": {hidden},
			"w2": {hidden, out}, "b2": {out},
		},
		Nodes: []Node{
			{Op: OpMatMul, Name: "fc1", Inputs: []string{"x", "w1"}, Output: "h0"},
			{Op: OpAdd, Name: "bias1", Inputs: []string{"h0", "b1"}, Output: "h1"},
			{Op: OpRelu, Name: "act1", Inputs: []string{"h1"}, Output: "h2"},
			{Op: OpMatMul, Name: "fc2", Inputs: []string{"h2", "w2"}, Output: "h3"},
			{Op: OpAdd, Name: "bias2", Inputs: []string{"h3", "b2"}, Output: "y"},
		},
		Outputs: []string{"y"},
	}
}

func expFast(x float64) float64 { return math.Exp(x) }
