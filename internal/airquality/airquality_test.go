package airquality

import (
	"math"
	"math/rand"
	"testing"
)

func testSite() ([]Source, []Receptor) {
	sources := []Source{
		{X: 0, Y: 0, Height: 40, RateGS: 80},
		{X: 150, Y: 50, Height: 25, RateGS: 30},
	}
	receptors := []Receptor{
		{X: 800, Y: 0, Z: 1.5},
		{X: 1500, Y: 200, Z: 1.5},
		{X: 2500, Y: -300, Z: 1.5},
		{X: -500, Y: 0, Z: 1.5},
	}
	return sources, receptors
}

func controlMet(hours int) []Weather {
	met := make([]Weather, hours)
	for h := 0; h < hours; h++ {
		met[h] = Weather{
			Hour:    h,
			WindMS:  3 + 1.5*math.Sin(2*math.Pi*float64(h)/24),
			WindDir: 0.2 * math.Sin(2*math.Pi*float64(h)/48),
			TempC:   12 + 6*math.Sin(2*math.Pi*float64(h%24-6)/24),
		}
	}
	return met
}

func TestPlumeBasicPhysics(t *testing.T) {
	src := Source{Height: 30, RateGS: 100}
	w := Weather{Hour: 12, WindMS: 4, WindDir: 0}
	down := PlumeConcentration(src, Receptor{X: 1000, Y: 0, Z: 1.5}, w)
	if down <= 0 {
		t.Fatal("downwind receptor must see the plume")
	}
	up := PlumeConcentration(src, Receptor{X: -1000, Y: 0, Z: 1.5}, w)
	if up != 0 {
		t.Error("upwind receptor must see nothing")
	}
	// Off-axis less than on-axis.
	off := PlumeConcentration(src, Receptor{X: 1000, Y: 400, Z: 1.5}, w)
	if off >= down {
		t.Error("crosswind offset must dilute")
	}
	// Stronger wind dilutes at the same geometry... at ground level more
	// wind can also raise sigma class; compare within the same class (day,
	// both >= 5 m/s -> class D).
	c1 := PlumeConcentration(src, Receptor{X: 1000, Y: 0, Z: 1.5}, Weather{Hour: 12, WindMS: 5})
	c2 := PlumeConcentration(src, Receptor{X: 1000, Y: 0, Z: 1.5}, Weather{Hour: 12, WindMS: 10})
	if c2 >= c1 {
		t.Error("doubling wind in the same stability class must dilute")
	}
}

func TestStabilityTable(t *testing.T) {
	if StabilityFromWeather(1, 12) != ClassA {
		t.Error("calm day must be very unstable")
	}
	if StabilityFromWeather(1, 2) != ClassF {
		t.Error("calm night must be very stable")
	}
	if StabilityFromWeather(8, 12) != ClassD {
		t.Error("windy day must be neutral")
	}
}

func TestSigmaMonotone(t *testing.T) {
	for s := ClassA; s <= ClassF; s++ {
		sy1, sz1 := sigmaYZ(s, 500)
		sy2, sz2 := sigmaYZ(s, 2000)
		if sy2 <= sy1 || sz2 <= sz1 {
			t.Errorf("class %d: dispersion must grow with distance", s)
		}
	}
	// Unstable classes disperse more.
	syA, _ := sigmaYZ(ClassA, 1000)
	syF, _ := sigmaYZ(ClassF, 1000)
	if syA <= syF {
		t.Error("class A must disperse more than class F")
	}
}

func TestSiteForecastShape(t *testing.T) {
	sources, receptors := testSite()
	met := controlMet(48)
	f := SiteForecast(sources, receptors, met)
	if len(f) != 48 {
		t.Fatal("one value per hour")
	}
	nonzero := 0
	for _, v := range f {
		if v < 0 {
			t.Fatal("negative concentration")
		}
		if v > 0 {
			nonzero++
		}
	}
	if nonzero < 24 {
		t.Errorf("only %d nonzero hours; plume should usually reach a receptor", nonzero)
	}
}

func TestEnsembleSpread(t *testing.T) {
	met := controlMet(72)
	members := Ensemble(met, 8, 3)
	if len(members) != 8 {
		t.Fatal("member count wrong")
	}
	// Members must differ from control and from each other.
	if members[0][10].WindMS == met[10].WindMS {
		t.Error("perturbation missing")
	}
	if members[0][10].WindMS == members[1][10].WindMS {
		t.Error("members must differ")
	}
	// Determinism.
	again := Ensemble(met, 8, 3)
	if members[3][20] != again[3][20] {
		t.Error("ensemble generation must be deterministic per seed")
	}
}

func TestCorrectorReducesError(t *testing.T) {
	// E13: simulate "true" concentrations that differ from the model by a
	// weather-dependent bias; the corrector must cut the error.
	sources, receptors := testSite()
	met := controlMet(24 * 6)
	forecast := SiteForecast(sources, receptors, met)

	rng := rand.New(rand.NewSource(17))
	observed := make([]float64, len(forecast))
	for i, v := range forecast {
		// True bias: model over-predicts in strong wind, under in weak.
		bias := math.Exp(0.25*(met[i].WindMS-4)*-1 + 0.02*(met[i].TempC-12))
		observed[i] = v * bias * math.Exp(rng.NormFloat64()*0.05)
	}

	split := 24 * 4
	corr, err := FitCorrector(forecast[:split], observed[:split], met[:split])
	if err != nil {
		t.Fatal(err)
	}
	var rawErr, corrErr float64
	for i := split; i < len(forecast); i++ {
		if observed[i] <= 0 || forecast[i] <= 0 {
			continue
		}
		rawErr += math.Abs(math.Log(forecast[i] / observed[i]))
		c := corr.Apply(forecast[i], met[i])
		corrErr += math.Abs(math.Log(c / observed[i]))
	}
	if corrErr >= rawErr*0.7 {
		t.Errorf("correction must cut log-error by >30%%: raw %g corrected %g", rawErr, corrErr)
	}
}

func TestFitCorrectorValidation(t *testing.T) {
	if _, err := FitCorrector([]float64{1}, []float64{1}, []Weather{{}}); err == nil {
		t.Error("too little data must fail")
	}
	if _, err := FitCorrector([]float64{1, 2}, []float64{1}, []Weather{{}, {}}); err == nil {
		t.Error("length mismatch must fail")
	}
	zeros := make([]float64, 20)
	met := controlMet(20)
	if _, err := FitCorrector(zeros, zeros, met); err == nil {
		t.Error("all-zero concentrations must fail (no usable hours)")
	}
}

func TestPlanDayAndCost(t *testing.T) {
	d := PlanDay([]float64{10, 50, 20}, 40)
	if !d.Reduce || d.PredictedMax != 50 {
		t.Errorf("decision wrong: %+v", d)
	}
	d2 := PlanDay([]float64{10, 20}, 40)
	if d2.Reduce {
		t.Error("below threshold must not trigger")
	}
	decisions := []Decision{
		{Reduce: true}, {Reduce: false}, {Reduce: true}, {Reduce: false},
	}
	truth := []float64{50, 50, 10, 10} // day0 hit, day1 miss, day2 false alarm, day3 correct
	cost := DecisionCost(decisions, truth, 40, 20000, 100000)
	want := 20000.0 + 100000 + 20000 + 0
	if cost != want {
		t.Errorf("cost = %g, want %g", cost, want)
	}
}

func TestEnsembleMeanSmoother(t *testing.T) {
	sources, receptors := testSite()
	met := controlMet(48)
	members := Ensemble(met, 12, 5)
	mean := EnsembleMeanForecast(sources, receptors, members)
	single := SiteForecast(sources, receptors, members[0])
	if len(mean) != len(single) {
		t.Fatal("length mismatch")
	}
	// The ensemble mean must have no greater hour-to-hour variance than a
	// single member (averaging smooths).
	varOf := func(xs []float64) float64 {
		var dsum float64
		for i := 1; i < len(xs); i++ {
			d := xs[i] - xs[i-1]
			dsum += d * d
		}
		return dsum
	}
	if varOf(mean) > varOf(single)*1.2 {
		t.Error("ensemble mean should not be rougher than a member")
	}
	if EnsembleMeanForecast(sources, receptors, nil) != nil {
		t.Error("empty ensemble must yield nil")
	}
}
