// Package airquality implements the air-quality monitoring use case (paper
// §II-C): forecasting the impact of an industrial site's atmospheric
// releases on its surroundings over a 2–3 day window, combining an hourly
// weather forecast with an atmospheric dispersion forecast, correcting
// errors with machine learning on the three observed weather parameters the
// paper names (air temperature at 10m, wind direction, wind speed), and
// driving the costly emission-reduction decision.
//
// The ADMS dispersion model (closed source) is substituted by a Gaussian
// plume model with Pasquill–Gifford stability classes — the same model
// family — which preserves the forecast-correction workflow the SDK
// accelerates.
package airquality

import (
	"fmt"
	"math"
	"math/rand"

	"everest/internal/tensor"
)

// Stability is a Pasquill–Gifford atmospheric stability class.
type Stability int

// Stability classes A (very unstable) through F (very stable).
const (
	ClassA Stability = iota
	ClassB
	ClassC
	ClassD
	ClassE
	ClassF
)

// sigmaYZ returns the horizontal/vertical dispersion coefficients (m) at
// downwind distance x (m), briggs rural fits.
func sigmaYZ(s Stability, x float64) (sy, sz float64) {
	if x < 1 {
		x = 1
	}
	switch s {
	case ClassA:
		sy = 0.22 * x / math.Sqrt(1+0.0001*x)
		sz = 0.20 * x
	case ClassB:
		sy = 0.16 * x / math.Sqrt(1+0.0001*x)
		sz = 0.12 * x
	case ClassC:
		sy = 0.11 * x / math.Sqrt(1+0.0001*x)
		sz = 0.08 * x / math.Sqrt(1+0.0002*x)
	case ClassD:
		sy = 0.08 * x / math.Sqrt(1+0.0001*x)
		sz = 0.06 * x / math.Sqrt(1+0.0015*x)
	case ClassE:
		sy = 0.06 * x / math.Sqrt(1+0.0001*x)
		sz = 0.03 * x / (1 + 0.0003*x)
	default:
		sy = 0.04 * x / math.Sqrt(1+0.0001*x)
		sz = 0.016 * x / (1 + 0.0003*x)
	}
	return sy, sz
}

// StabilityFromWeather derives the class from wind speed and insolation
// proxy (hour of day), a standard Pasquill table simplification.
func StabilityFromWeather(windMS float64, hour int) Stability {
	day := hour%24 >= 7 && hour%24 <= 18
	switch {
	case day && windMS < 2:
		return ClassA
	case day && windMS < 3:
		return ClassB
	case day && windMS < 5:
		return ClassC
	case day:
		return ClassD
	case windMS < 2:
		return ClassF
	case windMS < 3:
		return ClassE
	default:
		return ClassD
	}
}

// Source is one emission point of the industrial site.
type Source struct {
	X, Y   float64 // position (m)
	Height float64 // effective release height (m)
	RateGS float64 // emission rate (g/s)
}

// Receptor is a monitoring location.
type Receptor struct {
	X, Y float64
	Z    float64 // sampling height (m)
}

// Weather is one hour of met input.
type Weather struct {
	Hour    int
	WindMS  float64 // wind speed at 10m
	WindDir float64 // direction the wind blows TOWARD (rad, math convention)
	TempC   float64 // air temperature at 10m
}

// PlumeConcentration returns the steady-state concentration (µg/m³) at a
// receptor for one source under the given weather.
func PlumeConcentration(src Source, rec Receptor, w Weather) float64 {
	u := math.Max(0.5, w.WindMS)
	// Rotate into plume coordinates: x downwind, y crosswind.
	dx := rec.X - src.X
	dy := rec.Y - src.Y
	cos, sin := math.Cos(w.WindDir), math.Sin(w.WindDir)
	downwind := dx*cos + dy*sin
	crosswind := -dx*sin + dy*cos
	if downwind <= 0 {
		return 0 // upwind receptor
	}
	sy, sz := sigmaYZ(StabilityFromWeather(w.WindMS, w.Hour), downwind)
	h := src.Height
	z := rec.Z
	// Gaussian plume with ground reflection; grams to micrograms.
	q := src.RateGS * 1e6
	c := q / (2 * math.Pi * u * sy * sz) *
		math.Exp(-crosswind*crosswind/(2*sy*sy)) *
		(math.Exp(-(z-h)*(z-h)/(2*sz*sz)) + math.Exp(-(z+h)*(z+h)/(2*sz*sz)))
	return c
}

// SiteForecast computes the maximum receptor concentration per hour for a
// site (the quantity compared against the pollution-peak threshold).
func SiteForecast(sources []Source, receptors []Receptor, met []Weather) []float64 {
	out := make([]float64, len(met))
	for h, w := range met {
		peak := 0.0
		for _, r := range receptors {
			c := 0.0
			for _, s := range sources {
				c += PlumeConcentration(s, r, w)
			}
			if c > peak {
				peak = c
			}
		}
		out[h] = peak
	}
	return out
}

// Ensemble generates `members` perturbed met forecasts from a control
// forecast, following §VIII: "an ensemble can be created by ... perturbations
// in initial 3D weather fields".
func Ensemble(control []Weather, members int, seed int64) [][]Weather {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]Weather, members)
	for m := 0; m < members; m++ {
		pert := make([]Weather, len(control))
		biasW := rng.NormFloat64() * 0.5
		biasD := rng.NormFloat64() * 0.15
		biasT := rng.NormFloat64() * 0.8
		for i, w := range control {
			pert[i] = Weather{
				Hour:    w.Hour,
				WindMS:  math.Max(0.3, w.WindMS+biasW+rng.NormFloat64()*0.3),
				WindDir: w.WindDir + biasD + rng.NormFloat64()*0.05,
				TempC:   w.TempC + biasT + rng.NormFloat64()*0.3,
			}
		}
		out[m] = pert
	}
	return out
}

// EnsembleMeanForecast averages the per-member site forecasts.
func EnsembleMeanForecast(sources []Source, receptors []Receptor, members [][]Weather) []float64 {
	if len(members) == 0 {
		return nil
	}
	mean := make([]float64, len(members[0]))
	for _, met := range members {
		f := SiteForecast(sources, receptors, met)
		for i, v := range f {
			mean[i] += v
		}
	}
	for i := range mean {
		mean[i] /= float64(len(members))
	}
	return mean
}

// Corrector is the ML error-correction model: ridge regression of the
// log-concentration residual on the three observed weather parameters
// (T10m, wind direction, wind speed), per §II-C.
type Corrector struct {
	w []float64
	b float64
}

func correctionFeatures(w Weather) []float64 {
	return []float64{
		w.TempC,
		math.Sin(w.WindDir), math.Cos(w.WindDir),
		w.WindMS,
		w.WindMS * w.WindMS,
	}
}

// FitCorrector learns the multiplicative (log-space) bias between forecast
// and observed concentrations over a training window.
func FitCorrector(forecast, observed []float64, met []Weather) (*Corrector, error) {
	if len(forecast) != len(observed) || len(forecast) != len(met) {
		return nil, fmt.Errorf("airquality: corrector input length mismatch")
	}
	n := len(forecast)
	if n < 10 {
		return nil, fmt.Errorf("airquality: need >= 10 training hours, got %d", n)
	}
	d := len(correctionFeatures(met[0]))
	xtx := tensor.New(d+1, d+1)
	xty := tensor.New(d + 1)
	used := 0
	for i := 0; i < n; i++ {
		if forecast[i] <= 0 || observed[i] <= 0 {
			continue
		}
		used++
		y := math.Log(observed[i] / forecast[i])
		row := append(correctionFeatures(met[i]), 1)
		for a := 0; a <= d; a++ {
			for b := 0; b <= d; b++ {
				xtx.Set(xtx.At(a, b)+row[a]*row[b], a, b)
			}
			xty.Set(xty.At(a)+row[a]*y, a)
		}
	}
	if used < 10 {
		return nil, fmt.Errorf("airquality: only %d usable training hours", used)
	}
	for a := 0; a <= d; a++ {
		xtx.Set(xtx.At(a, a)+1e-3, a, a)
	}
	sol, err := tensor.SolveSPD(xtx, xty)
	if err != nil {
		return nil, err
	}
	c := &Corrector{w: make([]float64, d), b: sol.At(d)}
	for j := 0; j < d; j++ {
		c.w[j] = sol.At(j)
	}
	return c, nil
}

// Apply corrects one forecast value under the observed weather.
func (c *Corrector) Apply(forecast float64, w Weather) float64 {
	if forecast <= 0 {
		return forecast
	}
	f := correctionFeatures(w)
	logBias := c.b
	for j, v := range f {
		logBias += c.w[j] * v
	}
	// Clamp the correction to a sane multiplicative range.
	logBias = math.Max(-2, math.Min(2, logBias))
	return forecast * math.Exp(logBias)
}

// Decision is the daily emission-planning outcome (§II-C: reductions cost
// tens of thousands of euros per day, so trigger only when needed).
type Decision struct {
	Reduce       bool
	PredictedMax float64
	Threshold    float64
}

// PlanDay decides whether to activate emission reduction for the next day
// given the (corrected) hourly forecast.
func PlanDay(forecast []float64, threshold float64) Decision {
	max := 0.0
	for _, v := range forecast {
		if v > max {
			max = v
		}
	}
	return Decision{Reduce: max > threshold, PredictedMax: max, Threshold: threshold}
}

// DecisionCost scores a sequence of decisions against the truth: a false
// alarm costs the reduction price, a miss costs the penalty.
func DecisionCost(decisions []Decision, truthPeaks []float64, threshold, reductionCost, missPenalty float64) float64 {
	cost := 0.0
	for i, d := range decisions {
		exceeds := truthPeaks[i] > threshold
		switch {
		case d.Reduce && !exceeds:
			cost += reductionCost
		case !d.Reduce && exceeds:
			cost += missPenalty
		case d.Reduce && exceeds:
			cost += reductionCost // necessary reduction still costs money
		}
	}
	return cost
}
