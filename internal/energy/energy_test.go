package energy

import (
	"math"
	"testing"

	"everest/internal/tensor"
)

func TestTurbinePowerCurve(t *testing.T) {
	tb := Turbine{CutInMS: 3, RatedMS: 12, CutOutMS: 25, RatedKW: 2000, Available: true}
	if tb.Power(2) != 0 {
		t.Error("below cut-in must be 0")
	}
	if tb.Power(12) != 2000 || tb.Power(20) != 2000 {
		t.Error("rated region must give rated power")
	}
	if tb.Power(26) != 0 {
		t.Error("above cut-out must be 0")
	}
	mid := tb.Power(8)
	if mid <= 0 || mid >= 2000 {
		t.Errorf("cubic region power %g out of range", mid)
	}
	// Monotone in the cubic region.
	if tb.Power(9) <= tb.Power(7) {
		t.Error("power must increase with wind in the cubic region")
	}
	tb.Available = false
	if tb.Power(10) != 0 {
		t.Error("unavailable turbine produces nothing")
	}
}

func TestFarmPower(t *testing.T) {
	f := NewFarm(10)
	if f.Power(0) != 0 {
		t.Error("no wind, no power")
	}
	p := f.Power(9) // hub speed = 9*1.34 > rated
	if p != 10*2000 {
		t.Errorf("farm at rated = %g, want 20000", p)
	}
}

func TestSynthesizeYearDeterministic(t *testing.T) {
	f := NewFarm(8)
	a := SynthesizeYear(1, 1000, f)
	b := SynthesizeYear(1, 1000, f)
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatal("dataset generation must be deterministic per seed")
		}
	}
	c := SynthesizeYear(2, 1000, f)
	same := true
	for i := range a.Samples {
		if a.Samples[i] != c.Samples[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds must differ")
	}
	// Sanity: wind speeds non-negative, power within farm limits.
	for _, s := range a.Samples {
		if s.ActualWS < 0 || s.ForecastWS < 0 {
			t.Fatal("negative wind speed")
		}
		if s.PowerKW < 0 || s.PowerKW > 8*2000 {
			t.Fatalf("power %g out of range", s.PowerKW)
		}
	}
}

func TestKRRFitPredict(t *testing.T) {
	// y = 2*x0 + 1 is easily learnable.
	n := 50
	x := tensor.New(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := float64(i) / 10
		x.Set(v, i, 0)
		y[i] = 2*v + 1
	}
	k := NewKRR(1e-6, 1.0)
	if err := k.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	got, err := k.Predict([]float64{2.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-6) > 0.2 {
		t.Errorf("KRR predict(2.5) = %g, want ~6", got)
	}
}

func TestKRRValidation(t *testing.T) {
	k := NewKRR(1e-3, 1)
	if _, err := k.Predict([]float64{1}); err == nil {
		t.Error("predict before fit must fail")
	}
	if err := k.Fit(tensor.New(3, 2), []float64{1, 2}); err == nil {
		t.Error("length mismatch must fail")
	}
	if err := k.Fit(tensor.New(1, 2), []float64{1}); err == nil {
		t.Error("single sample must fail")
	}
	x := tensor.New(5, 2)
	if err := k.Fit(x, make([]float64, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Predict([]float64{1}); err == nil {
		t.Error("feature count mismatch must fail")
	}
}

func TestBacktestKRRBeatsBaselines(t *testing.T) {
	// E12: KRR must beat persistence and the raw physical model, and be at
	// least as good as linear regression.
	farm := NewFarm(12)
	ds := SynthesizeYear(7, 1600, farm)
	res, err := Backtest(ds, 0.6, DefaultKRR())
	if err != nil {
		t.Fatal(err)
	}
	if res.MAEKRR <= 0 {
		t.Fatal("MAE must be positive on noisy data")
	}
	if res.MAEKRR >= res.MAEPersistence {
		t.Errorf("KRR MAE %g must beat persistence %g", res.MAEKRR, res.MAEPersistence)
	}
	if res.MAEKRR >= res.MAEPhysical {
		t.Errorf("KRR MAE %g must beat the raw power-curve forecast %g", res.MAEKRR, res.MAEPhysical)
	}
	if res.MAEKRR > res.MAELinear*1.05 {
		t.Errorf("KRR MAE %g should be at least comparable to linear %g", res.MAEKRR, res.MAELinear)
	}
}

func TestBacktestValidation(t *testing.T) {
	farm := NewFarm(4)
	ds := SynthesizeYear(1, 15, farm)
	if _, err := Backtest(ds, 0.5, DefaultKRR()); err == nil {
		t.Error("too little data must fail")
	}
}

func TestFeaturesShape(t *testing.T) {
	s := Sample{Hour: 13, ForecastWS: 8, ForecastDir: 1.2, Availability: 1}
	f := Features(NewFarm(4), s)
	if len(f) != 8 {
		t.Errorf("feature vector has %d entries, want 8", len(f))
	}
}
