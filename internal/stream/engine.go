package stream

import (
	"fmt"

	"everest/internal/platform"
	"everest/internal/runtime"
)

// window is one closed batch of events moving through the stage chain. The
// arrival times are kept so end-to-end latency is recorded per event when
// the window clears the final stage. Windows are recycled through a
// freelist, so the steady-state per-event path allocates nothing.
type window struct {
	arrivals []float64
}

// devState is one accelerator's kernel residency bookkeeping. With partial
// reconfiguration the device exposes Regions() slots, each holding one
// kernel, evicted LRU; without it the whole device holds a single image
// and every kernel alternation pays a full reprogram. The platform Node is
// kept truthful throughout (ProgramRegion/Program), so the busy-window
// serialization (ClaimDeviceAt) and the residency model share one device.
type devState struct {
	node     *platform.Node
	dev      int
	d        *platform.Device
	name     string   // "node00/dev0"
	partial  bool     // per-region swapping enabled and every kernel fits
	resident []string // region slot -> resident kernel id ("" = empty)
	lru      []int64  // region slot -> last-touch sequence
	seq      int64
	kernels  int // distinct kernels assigned here

	everLoaded  map[string]bool // kernels that have paid their cold load
	swaps       int64           // reloads beyond each kernel's first (churn)
	swapSeconds float64
}

// stageRun is one pipeline stage's serving state: a bounded input queue of
// windows and a single-server executor (one window in service at a time).
type stageRun struct {
	spec *StageSpec
	node *platform.Node // software host (pricing + FPGA fallback)
	ds   *devState      // accelerator residency state; nil = software stage

	queue []*window // ring buffer, len = Config.QueueWindows
	qHead int
	qLen  int

	busy    bool
	cur     *window // window in service
	blocked bool    // Block policy: finished window refused downstream
	held    *window // the refused window, delivered when space frees

	stats StageStats
}

// pipeline is one stream's runtime state.
type pipeline struct {
	spec   PipelineSpec
	idx    int
	stages []stageRun

	open    *window // filling window (nil between windows)
	flushAt float64 // scheduled age-flush time of the open window

	// ingress is the unbounded overflow buffer of the Block policy: windows
	// that find stage 0's bounded queue full wait here instead of being
	// dropped. FIFO via a head index; growth allocates, but only under
	// overload — never in steady state.
	ingress []*window
	ingHead int

	generated int
	done      int64
	shed      int64
	windows   int64
	h         hist
}

// Engine runs a set of streaming pipelines over one cluster as a
// single-threaded discrete-event simulation on the TimeHeap event core.
// Engines are single-shot: New, then Run once.
type Engine struct {
	cfg    Config
	qcap   int
	pipes  []*pipeline
	devs   []*devState
	heap   *runtime.TimeHeap
	stride int // heap Seq slots per pipeline: arrival, flush, per-stage done

	pool      []*window // window freelist
	winEvents int       // largest WindowEvents across pipelines (freelist cap)
	makespan  float64
	ran       bool
}

// Event slot offsets within a pipeline's Seq stride.
const (
	slotArrival = 0
	slotFlush   = 1
	slotDone    = 2 // + stage index
)

// New builds a streaming engine: validates the pipeline specs, assigns
// every distinct kernel bitstream to a device (round-robin over the
// cluster's accelerators, first fit), and sizes the queues, heap, and
// window freelist so the steady-state event loop never allocates.
func New(cfg Config, specs []PipelineSpec) (*Engine, error) {
	if cfg.Cluster == nil || len(cfg.Cluster.Nodes) == 0 {
		return nil, fmt.Errorf("stream: config needs a cluster")
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("stream: no pipelines")
	}
	if cfg.QueueWindows <= 0 {
		cfg.QueueWindows = 4
	}
	e := &Engine{cfg: cfg, qcap: cfg.QueueWindows}

	// Enumerate the cluster's accelerators in deterministic node/device
	// order.
	var devList []*devState
	for _, n := range cfg.Cluster.Nodes {
		for idx := range n.Devices {
			devList = append(devList, &devState{
				node: n, dev: idx, d: n.Devices[idx],
				name:       fmt.Sprintf("%s/dev%d", n.Name, idx),
				everLoaded: make(map[string]bool),
			})
		}
	}

	maxStages := 0
	assigned := make(map[string]*devState)
	cursor := 0
	for i := range specs {
		p := &specs[i]
		if err := p.validate(i); err != nil {
			return nil, err
		}
		if len(p.Stages) > maxStages {
			maxStages = len(p.Stages)
		}
		if p.WindowEvents > e.winEvents {
			e.winEvents = p.WindowEvents
		}
		pl := &pipeline{spec: *p, idx: i}
		host := cfg.Cluster.Nodes[i%len(cfg.Cluster.Nodes)]
		pl.stages = make([]stageRun, len(p.Stages))
		for k := range p.Stages {
			st := &p.Stages[k]
			sr := &pl.stages[k]
			sr.spec = st
			sr.node = host
			sr.queue = make([]*window, e.qcap)
			sr.stats.Name = st.Name
			if !st.fpga() {
				continue
			}
			ds, ok := assigned[st.Bitstream.ID]
			if !ok {
				if len(devList) == 0 {
					return nil, fmt.Errorf("stream: stage %s/%s needs an FPGA but the cluster has none", p.Name, st.Name)
				}
				need := st.Bitstream.TotalResources()
				for probe := 0; probe < len(devList); probe++ {
					cand := devList[(cursor+probe)%len(devList)]
					if need.FitsIn(cand.d.Capacity) {
						ds = cand
						cursor = (cursor + probe + 1) % len(devList)
						break
					}
				}
				if ds == nil {
					return nil, fmt.Errorf("stream: bitstream %q fits no device in the cluster", st.Bitstream.ID)
				}
				assigned[st.Bitstream.ID] = ds
				ds.kernels++
			}
			sr.ds = ds
		}
		e.pipes = append(e.pipes, pl)
	}

	// Decide each device's swap granularity: per-region only when the
	// floorplan has regions and every kernel assigned to the device fits
	// one — mixing region and whole-device images on one card is not
	// modelled.
	for _, ds := range devList {
		if ds.kernels == 0 {
			continue
		}
		ds.partial = cfg.PartialReconfig && ds.d.Regions() > 1
		e.devs = append(e.devs, ds)
	}
	if cfg.PartialReconfig {
		for id, ds := range assigned {
			if !ds.partial {
				continue
			}
			for i := range specs {
				for k := range specs[i].Stages {
					st := &specs[i].Stages[k]
					if st.Bitstream.ID == id && !st.Bitstream.TotalResources().FitsIn(ds.d.RegionCapacity()) {
						ds.partial = false
					}
				}
			}
		}
	}
	for _, ds := range e.devs {
		slots := 1
		if ds.partial {
			slots = ds.d.Regions()
		}
		ds.resident = make([]string, slots)
		ds.lru = make([]int64, slots)
	}

	e.stride = maxStages + slotDone
	e.heap = runtime.NewTimeHeap(len(e.pipes) * (e.stride + 2))
	e.pool = make([]*window, 0, len(e.pipes)*(maxStages*(e.qcap+2)+2))
	return e, nil
}

// Run generates every pipeline's event train and drains the system,
// returning the aggregate statistics. Deterministic: the heap pops in a
// total (time, pipeline, slot) order and nothing else sequences work.
func (e *Engine) Run() (Stats, error) {
	if e.ran {
		return Stats{}, fmt.Errorf("stream: engine already ran (single-shot)")
	}
	e.ran = true
	for _, p := range e.pipes {
		e.heap.Push(runtime.TimeItem{Time: p.spec.Arrivals.Next(), Seq: p.idx*e.stride + slotArrival})
	}
	for e.heap.Len() > 0 {
		e.step()
	}
	return e.stats(), nil
}

// step processes the next modelled-time event. This is the per-event hot
// path the zero-alloc budget pins.
func (e *Engine) step() {
	it := e.heap.PopMin()
	p := e.pipes[it.Seq/e.stride]
	slot := it.Seq % e.stride
	switch slot {
	case slotArrival:
		e.arrive(p, it.Time)
	case slotFlush:
		e.flushTimer(p, it.Time)
	default:
		e.stageDone(p, slot-slotDone, it.Time)
	}
}

// arrive admits one source event into the pipeline's open window and
// schedules the next arrival.
func (e *Engine) arrive(p *pipeline, t float64) {
	p.generated++
	if p.open == nil {
		p.open = e.getWindow()
		if p.spec.WindowSeconds > 0 {
			p.flushAt = t + p.spec.WindowSeconds
			e.heap.Push(runtime.TimeItem{Time: p.flushAt, Seq: p.idx*e.stride + slotFlush})
		}
	}
	p.open.arrivals = append(p.open.arrivals, t)
	if len(p.open.arrivals) >= p.spec.WindowEvents {
		e.closeWindow(p, t)
	}
	if p.generated < p.spec.Events {
		e.heap.Push(runtime.TimeItem{Time: t + p.spec.Arrivals.Next(), Seq: p.idx*e.stride + slotArrival})
	} else if p.open != nil {
		// Source exhausted: flush the undersized tail window now.
		e.closeWindow(p, t)
	}
}

// flushTimer fires a window's age deadline; stale timers (the window
// already closed on size) are recognized by the flushAt mismatch.
func (e *Engine) flushTimer(p *pipeline, t float64) {
	if p.open != nil && p.flushAt == t && len(p.open.arrivals) > 0 {
		e.closeWindow(p, t)
	}
}

// closeWindow seals the open window and offers it to the stage chain under
// the pipeline's overload policy.
func (e *Engine) closeWindow(p *pipeline, t float64) {
	w := p.open
	p.open = nil
	p.flushAt = 0
	if e.cfg.Trace != nil {
		e.cfg.Trace(Event{Kind: EventWindowClose, Pipeline: p.spec.Name,
			Time: t, Events: len(w.arrivals)})
	}
	s0 := &p.stages[0]
	if p.spec.Policy == Block {
		// Backpressure: overload waits in the unbounded ingress buffer; the
		// buffer drains FIFO as stage 0 frees queue slots, so a new window
		// must queue behind earlier overflow.
		if len(p.ingress)-p.ingHead > 0 || s0.qLen == e.qcap {
			p.ingress = append(p.ingress, w)
			return
		}
		e.push(p, 0, w)
		e.tryStart(p, 0, t)
		return
	}
	if s0.qLen == e.qcap {
		e.shedWindow(p, 0, w, t)
		return
	}
	e.push(p, 0, w)
	e.tryStart(p, 0, t)
}

// push appends a window to stage k's bounded ring (caller checked space).
func (e *Engine) push(p *pipeline, k int, w *window) {
	si := &p.stages[k]
	si.queue[(si.qHead+si.qLen)%e.qcap] = w
	si.qLen++
}

// tryStart begins service on stage k's queue head if the stage is free.
func (e *Engine) tryStart(p *pipeline, k int, t float64) {
	si := &p.stages[k]
	if si.busy || si.blocked || si.qLen == 0 {
		return
	}
	w := e.pop(p, k, t)
	e.startService(p, k, w, t)
}

// pop removes stage k's queue head and refills the freed slot from
// upstream: the ingress buffer (k = 0) or a blocked upstream stage whose
// held window can now be delivered — unblocking cascades toward the
// source, which is how backpressure releases.
func (e *Engine) pop(p *pipeline, k int, t float64) *window {
	si := &p.stages[k]
	w := si.queue[si.qHead]
	si.queue[si.qHead] = nil
	si.qHead = (si.qHead + 1) % e.qcap
	si.qLen--
	if k == 0 {
		if p.ingHead < len(p.ingress) {
			nw := p.ingress[p.ingHead]
			p.ingress[p.ingHead] = nil
			p.ingHead++
			if p.ingHead == len(p.ingress) {
				p.ingress = p.ingress[:0]
				p.ingHead = 0
			}
			e.push(p, 0, nw)
		}
	} else if up := &p.stages[k-1]; up.blocked {
		e.push(p, k, up.held)
		up.held = nil
		up.blocked = false
		e.tryStart(p, k-1, t)
	}
	return w
}

// startService prices a window on stage k's executor and schedules its
// completion. Accelerated stages first make their kernel resident (free if
// it already is; a region swap or whole-device reprogram otherwise), then
// claim the device — claims serialize, so stages sharing a card queue
// behind each other in deterministic order.
func (e *Engine) startService(p *pipeline, k int, w *window, t float64) {
	si := &p.stages[k]
	si.busy = true
	si.cur = w
	n := len(w.arrivals)
	var end float64
	if si.ds != nil {
		swap := e.ensureResident(p, si, t, n)
		dur := swap + float64(n)*si.spec.FPGASecondsPerEvent
		_, claimEnd, ok, err := si.ds.node.ClaimDeviceAt(si.ds.dev, t, dur)
		if err == nil && ok {
			end = claimEnd
		} else {
			// Device detached: degrade this window to software.
			end = t + si.node.RunCPU(si.spec.FlopsPerEvent*float64(n),
				si.spec.BytesPerEvent*int64(n), si.spec.Cores)
		}
	} else {
		end = t + si.node.RunCPU(si.spec.FlopsPerEvent*float64(n),
			si.spec.BytesPerEvent*int64(n), si.spec.Cores)
	}
	si.stats.Windows++
	si.stats.BusySeconds += end - t
	e.heap.Push(runtime.TimeItem{Time: end, Seq: p.idx*e.stride + slotDone + k})
}

// ensureResident makes the stage's kernel resident on its device and
// returns the modelled swap stall (0 on residency hit). Partial devices
// swap one LRU region (region-sized image transfer + region
// reconfiguration); whole-device mode pays the full image and
// reconfiguration on every kernel alternation — the cost the PR floorplan
// exists to avoid.
func (e *Engine) ensureResident(p *pipeline, si *stageRun, t float64, events int) float64 {
	ds := si.ds
	id := si.spec.Bitstream.ID
	slot := -1
	for r, res := range ds.resident {
		if res == id {
			ds.seq++
			ds.lru[r] = ds.seq
			return 0
		}
		if slot < 0 && res == "" {
			slot = r
		}
	}
	if slot < 0 {
		slot = 0
		for r := 1; r < len(ds.resident); r++ {
			if ds.lru[r] < ds.lru[slot] {
				slot = r
			}
		}
	}
	var dt float64
	var err error
	var img int64
	if ds.partial {
		if ds.resident[slot] != "" {
			_, _ = ds.node.UnprogramRegion(ds.dev, slot)
		}
		dt, err = ds.node.ProgramRegion(ds.dev, slot, si.spec.Bitstream)
		img = ds.d.RegionConfigBytes()
	} else {
		dt, err = ds.node.Program(ds.dev, si.spec.Bitstream)
		img = ds.d.ConfigBytes()
	}
	if err != nil {
		// Should be unreachable (fit was checked at New); charge nothing
		// rather than corrupt the timeline.
		return 0
	}
	cost := e.cfg.Cluster.Network.TransferSeconds(img) + dt
	ds.resident[slot] = id
	ds.seq++
	ds.lru[slot] = ds.seq
	if ds.everLoaded[id] {
		// A reload of a kernel this device already paid for: churn the PR
		// floorplan would have kept resident.
		ds.swaps++
		ds.swapSeconds += cost
	}
	ds.everLoaded[id] = true
	if e.cfg.Trace != nil {
		e.cfg.Trace(Event{Kind: EventSwap, Pipeline: p.spec.Name, Stage: si.spec.Name,
			Device: ds.name, Bitstream: id, Time: t, Events: events})
	}
	return cost
}

// stageDone completes stage k's window in service: the final stage records
// per-event latencies, inner stages hand off downstream under the overload
// policy, and the stage pulls its next window unless backpressure blocked
// it.
func (e *Engine) stageDone(p *pipeline, k int, t float64) {
	si := &p.stages[k]
	w := si.cur
	si.cur = nil
	si.busy = false
	if k == len(p.stages)-1 {
		e.finishWindow(p, w, t)
	} else {
		ni := &p.stages[k+1]
		if ni.qLen == e.qcap {
			if p.spec.Policy == Shed {
				e.shedWindow(p, k+1, w, t)
			} else {
				si.held = w
				si.blocked = true
			}
		} else {
			e.push(p, k+1, w)
			e.tryStart(p, k+1, t)
		}
	}
	if !si.blocked {
		e.tryStart(p, k, t)
	}
}

// finishWindow records the end-to-end latency of every event in a window
// clearing the final stage.
func (e *Engine) finishWindow(p *pipeline, w *window, t float64) {
	for _, a := range w.arrivals {
		p.h.add(t - a)
	}
	p.done += int64(len(w.arrivals))
	p.windows++
	if t > e.makespan {
		e.makespan = t
	}
	if e.cfg.Trace != nil {
		e.cfg.Trace(Event{Kind: EventWindowDone, Pipeline: p.spec.Name,
			Time: t, Events: len(w.arrivals)})
	}
	e.putWindow(w)
}

// shedWindow drops a window at stage k's full input queue (Shed policy).
func (e *Engine) shedWindow(p *pipeline, k int, w *window, t float64) {
	n := int64(len(w.arrivals))
	p.shed += n
	si := &p.stages[k]
	si.stats.ShedWindows++
	si.stats.ShedEvents += n
	if e.cfg.Trace != nil {
		e.cfg.Trace(Event{Kind: EventShed, Pipeline: p.spec.Name, Stage: si.spec.Name,
			Time: t, Events: int(n)})
	}
	e.putWindow(w)
}

// getWindow takes a window from the freelist (or allocates during warmup).
func (e *Engine) getWindow() *window {
	if n := len(e.pool); n > 0 {
		w := e.pool[n-1]
		e.pool[n-1] = nil
		e.pool = e.pool[:n-1]
		return w
	}
	return &window{arrivals: make([]float64, 0, e.winEvents)}
}

// putWindow recycles a drained window.
func (e *Engine) putWindow(w *window) {
	w.arrivals = w.arrivals[:0]
	e.pool = append(e.pool, w)
}

// stats aggregates the run's outcome.
func (e *Engine) stats() Stats {
	out := Stats{Makespan: e.makespan}
	var total hist
	for _, p := range e.pipes {
		total.merge(&p.h)
		ps := PipelineStats{
			Name: p.spec.Name, Tenant: p.spec.Tenant,
			Events: int64(p.generated), Done: p.done, Shed: p.shed, Windows: p.windows,
			P50: p.h.percentile(0.50), P99: p.h.percentile(0.99),
			Mean: p.h.mean(), Max: p.h.max,
		}
		for k := range p.stages {
			ps.Stages = append(ps.Stages, p.stages[k].stats)
		}
		out.Events += ps.Events
		out.Done += ps.Done
		out.Shed += ps.Shed
		out.Windows += ps.Windows
		out.Pipelines = append(out.Pipelines, ps)
	}
	out.P50 = total.percentile(0.50)
	out.P99 = total.percentile(0.99)
	out.Mean = total.mean()
	out.Max = total.max
	if out.Makespan > 0 {
		out.Throughput = float64(out.Done) / out.Makespan
	}
	for _, ds := range e.devs {
		regions := 1
		if ds.partial {
			regions = ds.d.Regions()
		}
		out.Devices = append(out.Devices, DeviceStats{
			Name: ds.name, Regions: regions, Kernels: ds.kernels,
			Swaps: ds.swaps, SwapSeconds: ds.swapSeconds,
		})
		out.Swaps += ds.swaps
		out.SwapSeconds += ds.swapSeconds
	}
	return out
}
