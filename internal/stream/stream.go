// Package stream is the streaming serving tier of the EVEREST runtime:
// long-lived pipelines over the driver deployments' continuous feeds
// (traffic sensors, smart meters, weather stations) instead of discrete
// workflow submissions. Modelled open arrival processes (Poisson, bursty,
// diurnal) feed windowed operators derived from the application DAG
// stages; windows flow through bounded inter-stage queues whose overload
// policy is set per tenant SLO class (best-effort pipelines shed load,
// guaranteed pipelines apply backpressure and never drop); and accelerated
// operators keep their kernels resident in partial-reconfiguration regions
// of the shared FPGAs, so a stage change swaps only the region that
// changes instead of reprogramming the whole card (Diba-style
// reconfigurable stream processing).
//
// The engine is a single-threaded discrete-event simulation over the
// runtime.TimeHeap event core: all time is modelled seconds, the event
// order is a total deterministic order (time, then a fixed per-pipeline
// event slot), and the steady-state per-event path allocates nothing —
// which is what keeps million-event feeds wall-clock feasible and trace
// streams byte-identical across GOMAXPROCS settings.
package stream

import (
	"fmt"

	"everest/internal/platform"
)

// Policy is a tenant SLO class's overload behaviour at a full bounded
// queue.
type Policy int

// Overload policies.
const (
	// Shed drops the window that finds its downstream queue full —
	// best-effort tenants trade completeness for bounded latency.
	Shed Policy = iota
	// Block applies backpressure: a full downstream queue stalls the
	// upstream stage, and overload accumulates in an unbounded ingress
	// buffer instead of being dropped — guaranteed tenants trade latency
	// for completeness.
	Block
)

func (p Policy) String() string {
	if p == Block {
		return "block"
	}
	return "shed"
}

// StageSpec is one windowed operator of a pipeline. Costs are per event;
// serving a window of W events costs W times the per-event work (plus a
// kernel swap when an accelerated stage's bitstream is not resident on its
// device).
type StageSpec struct {
	Name string
	// Software cost model of one event, priced on the host node's CPU.
	FlopsPerEvent float64
	BytesPerEvent int64
	Cores         int // software parallelism (0 = all cores)
	// Accelerated stages carry their compiled kernel: a non-empty
	// Bitstream.ID requests FPGA service at FPGASecondsPerEvent.
	Bitstream           platform.Bitstream
	FPGASecondsPerEvent float64
}

// fpga reports whether the stage requests accelerator service.
func (s *StageSpec) fpga() bool { return s.Bitstream.ID != "" }

// PipelineSpec is one long-lived stream: an arrival process, a windowing
// discipline, and a chain of stage operators.
type PipelineSpec struct {
	Name   string
	Tenant string
	// Policy is the tenant's SLO class overload behaviour.
	Policy Policy
	// Arrivals generates the event train (required).
	Arrivals Arrivals
	// Events is the number of events the source generates (required > 0);
	// the run drains after the last arrival.
	Events int
	// WindowEvents closes a window when it holds this many events
	// (default 64).
	WindowEvents int
	// WindowSeconds flushes an undersized window this long after its first
	// event (0 = size-triggered closes only).
	WindowSeconds float64
	// Stages is the operator chain (required non-empty).
	Stages []StageSpec
}

// Config configures a streaming Engine.
type Config struct {
	// Cluster hosts the pipelines (required). Software operators price on
	// the node CPUs; accelerated operators share the cluster's FPGAs.
	Cluster *platform.Cluster
	// PartialReconfig keeps several kernels resident per device in PR
	// region slots and swaps only the region that changes; off, a device
	// holds one whole-device image at a time and every kernel alternation
	// pays a full reconfiguration.
	PartialReconfig bool
	// QueueWindows bounds each inter-stage queue, in windows (default 4).
	QueueWindows int
	// Trace, when set, receives window-level events (close/shed/swap/done)
	// in deterministic modelled-time order.
	Trace func(Event)
}

// EventKind classifies stream trace events.
type EventKind int

// Stream trace event kinds.
const (
	// EventWindowClose fires when a window fills (or its age flush fires)
	// and enters the stage chain.
	EventWindowClose EventKind = iota
	// EventShed fires when an overloaded queue drops a window (Shed
	// policy).
	EventShed
	// EventSwap fires when a device loads a kernel that was not resident
	// (a PR region swap, or a whole-device reprogram).
	EventSwap
	// EventWindowDone fires when a window clears the final stage.
	EventWindowDone
)

func (k EventKind) String() string {
	switch k {
	case EventWindowClose:
		return "window-close"
	case EventShed:
		return "shed"
	case EventSwap:
		return "swap"
	case EventWindowDone:
		return "window-done"
	}
	return "unknown"
}

// Event is one stream trace record.
type Event struct {
	Kind      EventKind
	Pipeline  string
	Stage     string
	Device    string // "node00/dev0" (swap events)
	Bitstream string
	Time      float64 // modelled seconds
	Events    int     // events in the window involved
}

// StageStats is one operator's serving counters.
type StageStats struct {
	Name        string
	Windows     int64   // windows served
	BusySeconds float64 // modelled service time, swaps included
	ShedWindows int64   // windows dropped at this stage's input queue
	ShedEvents  int64
}

// PipelineStats is one pipeline's outcome.
type PipelineStats struct {
	Name    string
	Tenant  string
	Events  int64 // generated by the source
	Done    int64 // events that cleared the final stage
	Shed    int64 // events dropped by overload policy
	Windows int64 // windows that entered the stage chain
	P50     float64
	P99     float64
	Mean    float64
	Max     float64
	Stages  []StageStats
}

// DeviceStats is one accelerator's residency churn.
type DeviceStats struct {
	Name        string // "node00/dev0"
	Regions     int    // region slots in use (1 = whole-device)
	Kernels     int    // distinct kernels assigned to the device
	Swaps       int64  // kernel loads paid (beyond each kernel's first)
	SwapSeconds float64
}

// Stats is the outcome of one streaming run.
type Stats struct {
	Events      int64 // generated across pipelines
	Done        int64
	Shed        int64
	Windows     int64
	Makespan    float64 // modelled completion of the last window
	Throughput  float64 // Done / Makespan, events per modelled second
	P50         float64 // end-to-end event latency percentiles
	P99         float64
	Mean        float64
	Max         float64
	Swaps       int64
	SwapSeconds float64
	Pipelines   []PipelineStats
	Devices     []DeviceStats
}

// validate checks a pipeline spec and applies defaults.
func (p *PipelineSpec) validate(i int) error {
	if p.Name == "" {
		p.Name = fmt.Sprintf("pipe%02d", i)
	}
	if p.Tenant == "" {
		p.Tenant = "default"
	}
	if p.Arrivals == nil {
		return fmt.Errorf("stream: pipeline %s has no arrival process", p.Name)
	}
	if p.Events <= 0 {
		return fmt.Errorf("stream: pipeline %s has no event budget", p.Name)
	}
	if p.WindowEvents <= 0 {
		p.WindowEvents = 64
	}
	if len(p.Stages) == 0 {
		return fmt.Errorf("stream: pipeline %s has no stages", p.Name)
	}
	return nil
}
