package stream

import (
	"sort"
	"testing"

	"everest/internal/quantile"
)

// TestPercentileRankNotInflated is the regression test for the nearest-rank
// ulp bug: 0.95×20 evaluates to 19.000000000000004 in float64, and the old
// raw Ceil bumped the rank to 20 — reporting the max instead of the 19th
// value. 20 samples in strictly distinct buckets make the off-by-one-rank
// visible as a whole-bucket jump.
func TestPercentileRankNotInflated(t *testing.T) {
	var h hist
	lats := make([]float64, 20)
	for i := range lats {
		lats[i] = histMin * float64(int64(1)<<i) // one sample per octave
		h.add(lats[i])
	}
	want := bucketUpper(bucketOf(lats[18])) // 19th-ranked sample's bucket
	if got := h.percentile(0.95); got != want {
		t.Errorf("percentile(0.95) = %g, want 19th-rank bucket upper %g (rank inflated to 20?)", got, want)
	}
	// And the exact-boundary grid: q = i/n must select the i-th sample's
	// bucket for every i, not the (i+1)-th.
	for i := 1; i <= len(lats); i++ {
		q := float64(i) / float64(len(lats))
		want := bucketUpper(bucketOf(lats[i-1]))
		if want > h.max {
			want = h.max
		}
		if got := h.percentile(q); got != want {
			t.Errorf("percentile(%d/20) = %g, want %g", i, got, want)
		}
	}
}

// TestHistAgreesWithNearestRank cross-tests the histogram percentile
// against the shared nearest-rank semantics (the same quantile.NearestRank
// that sdk.Percentile uses): for any recorded multiset, the histogram must
// report the bucket holding the rank'th smallest sample.
func TestHistAgreesWithNearestRank(t *testing.T) {
	var h hist
	// A lumpy multiset: duplicates, sub-floor values, octave gaps.
	lats := []float64{
		0, 5e-7, 2e-6, 2e-6, 3e-6, 9e-6, 1.1e-5, 1.1e-5, 1.1e-5,
		6e-5, 1e-4, 2.5e-4, 1e-3, 1e-3, 7e-3, 0.1, 0.1, 1.5, 30, 30,
	}
	for _, l := range lats {
		h.add(l)
	}
	sorted := append([]float64(nil), lats...)
	sort.Float64s(sorted)
	for _, q := range []float64{0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1} {
		rank := quantile.NearestRank(q, int64(len(sorted)))
		want := bucketUpper(bucketOf(sorted[rank-1]))
		if want > h.max {
			want = h.max
		}
		if got := h.percentile(q); got != want {
			t.Errorf("percentile(%g) = %g, want rank-%d bucket %g", q, got, rank, want)
		}
	}
}
