package stream

import "math"

// Arrivals is a modelled open arrival process: Next returns the
// interarrival gap (modelled seconds, always > 0) to the following event,
// advancing the process's internal state. Implementations must be
// deterministic in call order — the engine draws gaps from exactly one
// goroutine, so a seeded process yields the same event train on every run
// and every GOMAXPROCS setting.
type Arrivals interface {
	Next() float64
}

// rng is a splitmix64 generator: tiny, allocation-free, and with an exact
// cross-platform output sequence (no math/rand version dependence on the
// determinism contract).
type rng struct{ state uint64 }

func newRNG(seed uint64) rng { return rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// exp returns a unit-mean exponential draw, clamped positive so gap
// sequences are strictly increasing in time.
func (r *rng) exp() float64 {
	e := -math.Log(1 - r.float64())
	if e <= 0 {
		return 1e-12
	}
	return e
}

// Poisson is a homogeneous Poisson process: exponential interarrival gaps
// at a constant rate (events per modelled second).
type Poisson struct {
	rate float64
	rng  rng
}

// NewPoisson builds a Poisson arrival process.
func NewPoisson(rate float64, seed uint64) *Poisson {
	if rate <= 0 {
		rate = 1
	}
	return &Poisson{rate: rate, rng: newRNG(seed)}
}

// Next returns the gap to the next arrival.
func (p *Poisson) Next() float64 { return p.rng.exp() / p.rate }

// Bursty is an on/off modulated Poisson process (an interrupted Poisson
// process): during a burst the rate is Burst x the base rate, between
// bursts it falls back to the base rate. Burst and quiet phase lengths are
// themselves exponential, so the event train shows the heavy-tailed
// clumping real sensor gateways produce (buffered uplinks flushing).
type Bursty struct {
	base   float64 // events/s outside bursts
	burst  float64 // rate multiplier inside a burst
	onLen  float64 // mean burst length, modelled seconds
	offLen float64 // mean quiet length, modelled seconds
	rng    rng

	inBurst   bool
	phaseLeft float64 // modelled time left in the current phase
}

// NewBursty builds a bursty arrival process with mean rate `base` outside
// bursts and base*burst inside; on/off are the mean burst/quiet durations.
func NewBursty(base, burst, on, off float64, seed uint64) *Bursty {
	if base <= 0 {
		base = 1
	}
	if burst < 1 {
		burst = 1
	}
	if on <= 0 {
		on = 1
	}
	if off <= 0 {
		off = 1
	}
	return &Bursty{base: base, burst: burst, onLen: on, offLen: off, rng: newRNG(seed)}
}

// Next returns the gap to the next arrival, crossing phase boundaries as
// needed (a gap that would overrun the current phase is resampled from the
// boundary, which keeps the process Markovian and the gap strictly
// positive).
func (b *Bursty) Next() float64 {
	gap := 0.0
	for {
		if b.phaseLeft <= 0 {
			b.inBurst = !b.inBurst
			if b.inBurst {
				b.phaseLeft = b.rng.exp() * b.onLen
			} else {
				b.phaseLeft = b.rng.exp() * b.offLen
			}
		}
		rate := b.base
		if b.inBurst {
			rate *= b.burst
		}
		g := b.rng.exp() / rate
		if g <= b.phaseLeft {
			b.phaseLeft -= g
			return gap + g
		}
		// The draw lands past the phase boundary: consume the remainder of
		// the phase and redraw under the next phase's rate (memorylessness
		// of the exponential makes this exact thinning-free switching).
		gap += b.phaseLeft
		b.phaseLeft = 0
	}
}

// Diurnal is a nonhomogeneous Poisson process with a sinusoidal daily rate
// profile: rate(t) = mean * (1 + swing*sin(2*pi*t/period)), sampled by
// Lewis-Shedler thinning against the peak rate. Traffic and energy feeds
// follow this shape (rush hours, daily consumption cycles).
type Diurnal struct {
	mean   float64
	swing  float64 // relative amplitude in [0, 1)
	period float64 // modelled seconds per cycle
	rng    rng
	t      float64 // modelled time of the last arrival
}

// NewDiurnal builds a diurnal arrival process with the given mean rate,
// relative swing (clamped to [0, 0.95]), and cycle period.
func NewDiurnal(mean, swing, period float64, seed uint64) *Diurnal {
	if mean <= 0 {
		mean = 1
	}
	if swing < 0 {
		swing = 0
	}
	if swing > 0.95 {
		swing = 0.95
	}
	if period <= 0 {
		period = 86400
	}
	return &Diurnal{mean: mean, swing: swing, period: period, rng: newRNG(seed)}
}

// Next returns the gap to the next arrival via thinning: candidate gaps
// are drawn at the peak rate and accepted with probability rate(t)/peak.
func (d *Diurnal) Next() float64 {
	peak := d.mean * (1 + d.swing)
	start := d.t
	for {
		d.t += d.rng.exp() / peak
		rate := d.mean * (1 + d.swing*math.Sin(2*math.Pi*d.t/d.period))
		if d.rng.float64()*peak <= rate {
			return d.t - start
		}
	}
}

// NewArrivals builds a named arrival process at the given mean event rate:
// "poisson" (default), "bursty" (4x bursts, 30s on / 90s off), or
// "diurnal" (60% swing over a 1-hour modelled cycle, compressed from a day
// so scenario-length runs actually cross the peak and trough).
func NewArrivals(kind string, rate float64, seed uint64) Arrivals {
	switch kind {
	case "bursty":
		// Mean rate is preserved: base*(off + burst*on)/(on+off) = rate.
		on, off, burst := 30.0, 90.0, 4.0
		base := rate * (on + off) / (off + burst*on)
		return NewBursty(base, burst, on, off, seed)
	case "diurnal":
		return NewDiurnal(rate, 0.6, 3600, seed)
	default:
		return NewPoisson(rate, seed)
	}
}
