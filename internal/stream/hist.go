package stream

import (
	"math"

	"everest/internal/quantile"
)

// Latency histogram used on the steady-state per-event path: log-spaced
// buckets (8 linear sub-buckets per power-of-two octave above a 1 µs
// floor), so recording is a Frexp plus two integer ops — no allocation, no
// sort, O(1) — and a million-event stream costs a 520-entry array instead
// of a million float64s. Percentiles quantize to the recorded bucket's
// upper edge (≤ ~9% relative error), which is far inside the benchmark
// gate's tolerance and exactly deterministic.

// histMin is the histogram floor: latencies below 1 µs land in bucket 0.
const histMin = 1e-6

// histOctaves spans 1 µs .. ~1.8e13 s; anything above clamps to the top.
const histOctaves = 64

// histSub is the number of linear sub-buckets per octave.
const histSub = 8

type hist struct {
	count   int64
	sum     float64
	max     float64
	buckets [histOctaves * histSub]int64
}

// bucketOf maps a latency to its bucket index.
func bucketOf(lat float64) int {
	if lat < histMin {
		return 0
	}
	frac, exp := math.Frexp(lat / histMin) // frac in [0.5, 1), exp >= 1
	oct := exp - 1
	if oct >= histOctaves {
		return histOctaves*histSub - 1
	}
	sub := int((frac - 0.5) * 2 * histSub) // linear within the octave
	if sub >= histSub {
		sub = histSub - 1
	}
	return oct*histSub + sub
}

// bucketUpper is the upper-edge latency of a bucket, the value percentiles
// report.
func bucketUpper(idx int) float64 {
	oct := idx / histSub
	sub := idx % histSub
	lo := histMin * math.Ldexp(1, oct)
	return lo * (0.5 + float64(sub+1)/(2*histSub)) * 2
}

// add records one latency.
func (h *hist) add(lat float64) {
	h.count++
	h.sum += lat
	if lat > h.max {
		h.max = lat
	}
	h.buckets[bucketOf(lat)]++
}

// merge folds another histogram into h.
func (h *hist) merge(o *hist) {
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
}

// percentile returns the nearest-rank q-quantile (q in (0, 1]) as the
// holding bucket's upper edge; 0 when the histogram is empty.
func (h *hist) percentile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	// quantile.NearestRank snaps q·count back onto intended integer ranks
	// (0.95×20 would otherwise ceil to 21st-rank semantics one rank high).
	rank := quantile.NearestRank(q, h.count)
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i]
		if seen >= rank {
			up := bucketUpper(i)
			if up > h.max {
				return h.max
			}
			return up
		}
	}
	return h.max
}

// mean returns the average recorded latency.
func (h *hist) mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}
