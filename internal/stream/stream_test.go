package stream

import (
	"bytes"
	"fmt"
	"math"
	goruntime "runtime"
	"testing"

	"everest/internal/hls"
	"everest/internal/platform"
	"everest/internal/runtime"
)

// --- arrival processes ---

func drawGaps(a Arrivals, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = a.Next()
		if out[i] <= 0 {
			panic("non-positive gap")
		}
	}
	return out
}

func TestArrivalsDeterministic(t *testing.T) {
	for _, kind := range []string{"poisson", "bursty", "diurnal"} {
		a := drawGaps(NewArrivals(kind, 100, 7), 5000)
		b := drawGaps(NewArrivals(kind, 100, 7), 5000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: gap %d differs across same-seed runs: %g vs %g", kind, i, a[i], b[i])
			}
		}
		c := drawGaps(NewArrivals(kind, 100, 8), 5000)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: different seeds produced identical gap trains", kind)
		}
	}
}

func TestArrivalsMeanRate(t *testing.T) {
	const rate, n = 50.0, 200000
	for _, kind := range []string{"poisson", "bursty", "diurnal"} {
		var span float64
		for _, g := range drawGaps(NewArrivals(kind, rate, 42), n) {
			span += g
		}
		got := float64(n) / span
		if got < rate*0.9 || got > rate*1.1 {
			t.Errorf("%s: realized rate %.2f events/s, want ~%.0f", kind, got, rate)
		}
	}
}

func TestBurstyModulation(t *testing.T) {
	// The burst phases must actually raise the short-term rate: the largest
	// 10% of gaps (quiet phase) should be much longer than the smallest 10%
	// (burst phase) relative to a plain Poisson train at the same mean rate.
	gaps := drawGaps(NewBursty(10, 8, 5, 15, 3), 50000)
	var small, large int
	mean := 0.0
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	for _, g := range gaps {
		if g < mean/4 {
			small++
		}
		if g > mean*4 {
			large++
		}
	}
	if small == 0 || large == 0 {
		t.Fatalf("bursty train shows no modulation: %d short, %d long gaps around mean %g", small, large, mean)
	}
}

// --- histogram ---

func TestHistBucketEdges(t *testing.T) {
	r := newRNG(11)
	for i := 0; i < 10000; i++ {
		// Latencies from sub-floor to hours.
		lat := math.Exp((r.float64() - 0.3) * 20)
		idx := bucketOf(lat)
		up := bucketUpper(idx)
		if lat >= histMin {
			if up < lat {
				t.Fatalf("bucketUpper(%d)=%g below recorded latency %g", idx, up, lat)
			}
			if up > lat*(1+2.0/histSub)+histMin {
				t.Fatalf("bucketUpper(%d)=%g too far above latency %g", idx, up, lat)
			}
		}
	}
}

func TestHistPercentiles(t *testing.T) {
	var h hist
	for i := 1; i <= 1000; i++ {
		h.add(float64(i) * 1e-6)
	}
	if p := h.percentile(0.5); p < 450e-6 || p > 560e-6 {
		t.Errorf("p50 = %g, want ~500µs", p)
	}
	if p := h.percentile(0.99); p < 900e-6 || p > 1100e-6 {
		t.Errorf("p99 = %g, want ~990µs", p)
	}
	if p := h.percentile(1); p != h.max {
		t.Errorf("p100 = %g, want max %g", p, h.max)
	}
	if m := h.mean(); math.Abs(m-500.5e-6) > 1e-9 {
		t.Errorf("mean = %g, want 500.5µs", m)
	}
	var a, b hist
	for i := 1; i <= 500; i++ {
		a.add(float64(i) * 1e-6)
	}
	for i := 501; i <= 1000; i++ {
		b.add(float64(i) * 1e-6)
	}
	a.merge(&b)
	if a.count != h.count || a.percentile(0.99) != h.percentile(0.99) || a.max != h.max {
		t.Errorf("merged histogram disagrees with direct: count %d vs %d", a.count, h.count)
	}
	var empty hist
	if empty.percentile(0.99) != 0 || empty.mean() != 0 {
		t.Errorf("empty histogram should report zeros")
	}
}

// --- engine ---

func testCluster() *platform.Cluster {
	return platform.NewCluster(
		platform.NewNode("node00", platform.XeonModel(), platform.AlveoU55C()),
	)
}

func testBitstream(id string, lut int) platform.Bitstream {
	return platform.Bitstream{
		ID:     id,
		Kernel: id,
		Report: hls.Report{Resources: hls.Resources{LUT: lut, FF: lut, DSP: 8, BRAM: 16}},
		Config: platform.SystemConfig{Replicas: 1, Lanes: 1, BusWidthBits: 64, PackedElements: 1},
	}
}

func softStage(name string, flops float64) StageSpec {
	return StageSpec{Name: name, FlopsPerEvent: flops, BytesPerEvent: 64}
}

func TestEngineValidation(t *testing.T) {
	cl := testCluster()
	ok := PipelineSpec{Arrivals: NewPoisson(10, 1), Events: 10, Stages: []StageSpec{softStage("s", 1e3)}}
	cases := []struct {
		name  string
		cfg   Config
		specs []PipelineSpec
	}{
		{"no cluster", Config{}, []PipelineSpec{ok}},
		{"no pipelines", Config{Cluster: cl}, nil},
		{"no arrivals", Config{Cluster: cl}, []PipelineSpec{{Events: 10, Stages: ok.Stages}}},
		{"no events", Config{Cluster: cl}, []PipelineSpec{{Arrivals: NewPoisson(10, 1), Stages: ok.Stages}}},
		{"no stages", Config{Cluster: cl}, []PipelineSpec{{Arrivals: NewPoisson(10, 1), Events: 10}}},
		{"oversized kernel", Config{Cluster: cl}, []PipelineSpec{{
			Arrivals: NewPoisson(10, 1), Events: 10,
			Stages: []StageSpec{{Name: "big", Bitstream: testBitstream("big", 1<<30), FPGASecondsPerEvent: 1e-6}},
		}}},
	}
	for _, c := range cases {
		if _, err := New(c.cfg, c.specs); err == nil {
			t.Errorf("%s: expected an error", c.name)
		}
	}
	e, err := New(Config{Cluster: cl}, []PipelineSpec{ok})
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := e.Run(); err == nil {
		t.Fatalf("second Run on a single-shot engine should fail")
	}
}

func TestEngineDrainsAllEvents(t *testing.T) {
	const events = 10000
	e, err := New(Config{Cluster: testCluster()}, []PipelineSpec{{
		Name: "calm", Arrivals: NewPoisson(1000, 1), Events: events,
		WindowEvents: 64,
		Stages:       []StageSpec{softStage("ingest", 1e4), softStage("project", 5e4)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Events != events || st.Done != events || st.Shed != 0 {
		t.Fatalf("events=%d done=%d shed=%d, want all %d done", st.Events, st.Done, st.Shed, events)
	}
	if st.Windows < events/64 {
		t.Errorf("windows = %d, want >= %d", st.Windows, events/64)
	}
	if st.P50 <= 0 || st.P99 < st.P50 || st.Max < st.P99 || st.Throughput <= 0 {
		t.Errorf("degenerate latency stats: p50=%g p99=%g max=%g thr=%g", st.P50, st.P99, st.Max, st.Throughput)
	}
	if len(st.Pipelines) != 1 || st.Pipelines[0].Done != events {
		t.Errorf("pipeline breakdown missing or wrong: %+v", st.Pipelines)
	}
	if len(st.Pipelines[0].Stages) != 2 || st.Pipelines[0].Stages[1].Windows != st.Windows {
		t.Errorf("stage breakdown wrong: %+v", st.Pipelines[0].Stages)
	}
}

func TestEngineWindowAgeFlush(t *testing.T) {
	// 5 events/s against a 64-event window: only the age flush can close
	// windows before the source runs dry.
	e, err := New(Config{Cluster: testCluster()}, []PipelineSpec{{
		Name: "sparse", Arrivals: NewPoisson(5, 2), Events: 200,
		WindowEvents: 64, WindowSeconds: 0.5,
		Stages: []StageSpec{softStage("ingest", 1e4)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 200 || st.Shed != 0 {
		t.Fatalf("done=%d shed=%d, want all 200 done", st.Done, st.Shed)
	}
	// ~2.5 events per 0.5s flush -> far more windows than 200/64.
	if st.Windows < 20 {
		t.Errorf("windows = %d, want age flushes to produce many undersized windows", st.Windows)
	}
	if st.P99 > 0.6 {
		t.Errorf("p99 = %gs, age flush should bound latency near the 0.5s window age", st.P99)
	}
}

// overloadSpec is a pipeline whose second stage cannot keep up with the
// offered rate, forcing the overload policy to act.
func overloadSpec(policy Policy) PipelineSpec {
	return PipelineSpec{
		Name: "hot", Policy: policy,
		Arrivals: NewPoisson(2000, 3), Events: 20000, WindowEvents: 64,
		Stages: []StageSpec{
			softStage("ingest", 1e4),
			// 51.2 Gflop/s Xeon: 2.5e8 flops/event at 2000 ev/s asks ~10x
			// the node -> hopeless overload.
			softStage("train", 2.5e8),
		},
	}
}

func TestEngineShedPolicy(t *testing.T) {
	e, err := New(Config{Cluster: testCluster()}, []PipelineSpec{overloadSpec(Shed)})
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Shed == 0 {
		t.Fatalf("overloaded shed pipeline dropped nothing")
	}
	if st.Done+st.Shed != st.Events {
		t.Fatalf("done %d + shed %d != events %d", st.Done, st.Shed, st.Events)
	}
	// Shedding keeps the served latency bounded by the queue depth, not the
	// overload: every served window waited at most ~queue-depth service
	// times.
	if st.P99 > 30 {
		t.Errorf("shed p99 = %gs, shedding should bound latency", st.P99)
	}
	ps := st.Pipelines[0]
	var shedW int64
	for _, sg := range ps.Stages {
		shedW += sg.ShedWindows
	}
	if shedW == 0 {
		t.Errorf("no stage accounted the dropped windows: %+v", ps.Stages)
	}
}

func TestEngineBlockPolicy(t *testing.T) {
	e, err := New(Config{Cluster: testCluster()}, []PipelineSpec{overloadSpec(Block)})
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Shed != 0 {
		t.Fatalf("block policy shed %d events", st.Shed)
	}
	if st.Done != st.Events {
		t.Fatalf("done %d != events %d, backpressure must not lose windows", st.Done, st.Events)
	}
	// The price of completeness: latency absorbs the overload.
	if st.P99 < 30 {
		t.Errorf("block p99 = %gs, expected deep queueing delay under 66x overload", st.P99)
	}
}

// swapSpecs builds two pipelines with distinct kernels that must share the
// cluster's single FPGA, so consecutive windows alternate kernels.
func swapSpecs() []PipelineSpec {
	mk := func(name, kernel string, seed uint64) PipelineSpec {
		return PipelineSpec{
			Name: name, Arrivals: NewPoisson(200, seed), Events: 2000, WindowEvents: 64,
			Stages: []StageSpec{{
				Name: "infer", FlopsPerEvent: 1e5, BytesPerEvent: 256,
				Bitstream: testBitstream(kernel, 40000), FPGASecondsPerEvent: 7e-5,
			}},
		}
	}
	return []PipelineSpec{mk("traffic", "proj_krr", 10), mk("energy", "meter_mlp", 11)}
}

func TestEnginePartialReconfigSwapWin(t *testing.T) {
	run := func(partial bool) Stats {
		e, err := New(Config{Cluster: testCluster(), PartialReconfig: partial}, swapSpecs())
		if err != nil {
			t.Fatal(err)
		}
		st, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	off := run(false)
	on := run(true)
	if off.Swaps < 10 {
		t.Fatalf("whole-device mode swapped only %d times; the scenario should alternate kernels", off.Swaps)
	}
	if on.Swaps != 0 {
		t.Errorf("partial reconfig still swapped %d times; both kernels fit resident regions", on.Swaps)
	}
	if on.SwapSeconds >= off.SwapSeconds {
		t.Errorf("swap seconds: on=%g off=%g, want a win", on.SwapSeconds, off.SwapSeconds)
	}
	if on.P99 >= off.P99 {
		t.Errorf("p99: on=%g off=%g, resident kernels should cut tail latency", on.P99, off.P99)
	}
	if on.Done != on.Events || off.Done != off.Events {
		t.Errorf("lost events: on %d/%d, off %d/%d", on.Done, on.Events, off.Done, off.Events)
	}
	foundOn := false
	for _, d := range on.Devices {
		if d.Kernels == 2 && d.Regions > 1 {
			foundOn = true
		}
	}
	if !foundOn {
		t.Errorf("device stats should show one card hosting 2 kernels across regions: %+v", on.Devices)
	}
}

func TestEngineSharedDeviceSerializes(t *testing.T) {
	// Two accelerated pipelines on one card: total busy seconds on the
	// device must not exceed the makespan (no double-booked fabric).
	e, err := New(Config{Cluster: testCluster(), PartialReconfig: true}, swapSpecs())
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	var busy float64
	for _, p := range st.Pipelines {
		for _, sg := range p.Stages {
			busy += sg.BusySeconds
		}
	}
	if busy > st.Makespan*1.0001 {
		t.Errorf("device busy %gs exceeds makespan %gs: fabric double-booked", busy, st.Makespan)
	}
}

// --- determinism (trace byte-equality across GOMAXPROCS) ---

func renderStreamTrace(buf *bytes.Buffer) {
	specs := swapSpecs()
	specs[0].Policy = Shed
	specs[1].Policy = Block
	specs[0].Arrivals = NewArrivals("bursty", 300, 21)
	specs[1].Arrivals = NewArrivals("diurnal", 300, 22)
	e, err := New(Config{
		Cluster:         testCluster(),
		PartialReconfig: true,
		Trace: func(ev Event) {
			fmt.Fprintf(buf, "%.9f %s %s/%s %s %d\n", ev.Time, ev.Kind, ev.Pipeline, ev.Stage, ev.Device, ev.Events)
		},
	}, specs)
	if err != nil {
		panic(err)
	}
	st, err := e.Run()
	if err != nil {
		panic(err)
	}
	fmt.Fprintf(buf, "done=%d shed=%d windows=%d p99=%.9f swaps=%d\n",
		st.Done, st.Shed, st.Windows, st.P99, st.Swaps)
}

func atGOMAXPROCS(n int, fn func()) {
	old := goruntime.GOMAXPROCS(n)
	defer goruntime.GOMAXPROCS(old)
	fn()
}

func TestStreamTraceDeterministic(t *testing.T) {
	var one, eight bytes.Buffer
	atGOMAXPROCS(1, func() { renderStreamTrace(&one) })
	atGOMAXPROCS(8, func() { renderStreamTrace(&eight) })
	if one.Len() == 0 {
		t.Fatal("empty trace")
	}
	if !bytes.Equal(one.Bytes(), eight.Bytes()) {
		a, b := one.String(), eight.String()
		i := 0
		for i < len(a) && i < len(b) && a[i] == b[i] {
			i++
		}
		lo := i - 80
		if lo < 0 {
			lo = 0
		}
		t.Fatalf("stream trace differs across GOMAXPROCS at byte %d:\n...%q\nvs\n...%q",
			i, a[lo:min(i+80, len(a))], b[lo:min(i+80, len(b))])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// --- steady-state allocation budget ---

func TestStreamSteadyStateAllocs(t *testing.T) {
	e, err := New(Config{Cluster: testCluster()}, []PipelineSpec{{
		Name: "steady", Arrivals: NewPoisson(5000, 5), Events: 400000, WindowEvents: 64,
		Stages: []StageSpec{softStage("ingest", 1e3), softStage("project", 2e3)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	e.ran = true // drive the loop by hand
	e.heap.Push(runtime.TimeItem{Time: e.pipes[0].spec.Arrivals.Next(), Seq: slotArrival})
	// Warm up: let the freelist, rings, and heap reach steady state.
	for i := 0; i < 50000 && e.heap.Len() > 0; i++ {
		e.step()
	}
	if e.heap.Len() == 0 {
		t.Fatal("warmup drained the event budget; raise Events")
	}
	avg := testing.AllocsPerRun(2000, func() {
		if e.heap.Len() > 0 {
			e.step()
		}
	})
	if avg != 0 {
		t.Errorf("steady-state step allocates %.2f objects/event, want 0", avg)
	}
}
