package wrf

import (
	"fmt"

	"everest/internal/netsim"
)

// DistributedPlan models running an ensemble across network-attached FPGA
// nodes with ZRLMPI-style communication (paper §III, §V-C: cloudFPGA +
// hardware-agnostic synchronous communication routines): the initial
// condition is broadcast, members run in parallel waves, and the ensemble
// statistics are reduced back.
type DistributedPlan struct {
	Members     int
	Ranks       int
	StateBytes  int64
	StepSeconds float64 // per-member integration time for the window
	Steps       int
}

// DistributedResult is the modelled timing breakdown.
type DistributedResult struct {
	Broadcast float64 // IC distribution
	Compute   float64 // parallel member integration (waves)
	Reduce    float64 // ensemble statistics allreduce
	Total     float64
	Waves     int
}

// RunDistributed models the plan over a ZRLMPI world.
func RunDistributed(p DistributedPlan, w netsim.World) (*DistributedResult, error) {
	if p.Members < 1 || p.Ranks < 1 {
		return nil, fmt.Errorf("wrf: distributed plan needs members and ranks")
	}
	if w.Ranks != p.Ranks {
		return nil, fmt.Errorf("wrf: world has %d ranks, plan expects %d", w.Ranks, p.Ranks)
	}
	waves := (p.Members + p.Ranks - 1) / p.Ranks
	res := &DistributedResult{Waves: waves}
	res.Broadcast = w.Broadcast(p.StateBytes)
	res.Compute = float64(waves) * p.StepSeconds * float64(p.Steps)
	res.Reduce = w.AllReduce(p.StateBytes)
	res.Total = res.Broadcast + res.Compute + res.Reduce
	return res, nil
}

// ScalingTable returns the total time for rank counts 1..maxRanks, the
// strong-scaling sweep of the network-attached deployment.
func ScalingTable(members int, stateBytes int64, stepSeconds float64, steps, maxRanks int) ([]DistributedResult, error) {
	var out []DistributedResult
	for r := 1; r <= maxRanks; r *= 2 {
		w, err := netsim.NewWorld(r, netsim.UDP10G())
		if err != nil {
			return nil, err
		}
		res, err := RunDistributed(DistributedPlan{
			Members: members, Ranks: r, StateBytes: stateBytes,
			StepSeconds: stepSeconds, Steps: steps,
		}, w)
		if err != nil {
			return nil, err
		}
		out = append(out, *res)
	}
	return out, nil
}
