package wrf

import (
	"math"
	"math/rand"
	"testing"

	"everest/internal/ekl"
	"everest/internal/tensor"
)

func smallCfg() Config {
	return Config{NX: 12, NY: 12, NZ: 6, DT: 60, DX: 3000, RadiationEvery: 1}
}

func TestStateInitialization(t *testing.T) {
	s := NewState(smallCfg(), 1)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// North colder than south (baroclinic gradient).
	south := 0.0
	north := 0.0
	for i := 0; i < s.Cfg.NX; i++ {
		south += s.T.At(i, 0, 0)
		north += s.T.At(i, s.Cfg.NY-1, 0)
	}
	if north >= south {
		t.Error("initial state must have a meridional temperature gradient")
	}
}

func TestStepStability(t *testing.T) {
	s := NewState(smallCfg(), 2)
	rad := NewRadiation(2, s.Cfg.NZ)
	s.Run(rad, 100)
	if err := s.Validate(); err != nil {
		t.Fatalf("model blew up after 100 steps: %v", err)
	}
	if s.Steps != 100 {
		t.Errorf("step counter = %d", s.Steps)
	}
}

func TestStepDeterministic(t *testing.T) {
	a := NewState(smallCfg(), 3)
	b := NewState(smallCfg(), 3)
	rad := NewRadiation(3, a.Cfg.NZ)
	a.Run(rad, 20)
	b.Run(rad, 20)
	if tensor.MaxAbsDiff(a.T, b.T) != 0 {
		t.Error("model must be bit-deterministic")
	}
}

func TestRadiationFractionNearPaperValue(t *testing.T) {
	// Paper §V-A1: RRTMG consumes around 30% of WRF compute cycles. Our
	// flop model must land in the same regime (20%–45%).
	s := NewState(smallCfg(), 4)
	rad := NewRadiation(4, s.Cfg.NZ)
	s.Run(rad, 20)
	frac := s.RadiationFraction()
	if frac < 0.20 || frac > 0.45 {
		t.Errorf("radiation fraction = %.2f, want ~0.3 (paper's RRTMG share)", frac)
	}
}

func TestColumnTauProperties(t *testing.T) {
	rad := NewRadiation(5, 6)
	tCol := []float64{290, 285, 275, 260, 245, 230}
	qCol := []float64{7, 6, 4, 3, 2, 1}
	tau := rad.ColumnTau(tCol, qCol)
	if len(tau) != rad.NGpt {
		t.Fatalf("tau has %d g-points, want %d", len(tau), rad.NGpt)
	}
	for g, v := range tau {
		if v <= 0 || math.IsNaN(v) {
			t.Fatalf("tau[%d] = %g must be positive", g, v)
		}
	}
	// More moisture -> more absorber -> larger tau.
	qWet := []float64{10, 9, 8, 7, 6, 5}
	tauWet := rad.ColumnTau(tCol, qWet)
	sum, sumWet := 0.0, 0.0
	for g := range tau {
		sum += tau[g]
		sumWet += tauWet[g]
	}
	if sumWet <= sum {
		t.Error("wetter column must have larger optical depth")
	}
}

func TestEKLKernelMatchesRadiationStructure(t *testing.T) {
	// The EKL source must parse, check, and run on tables shaped like the
	// Radiation scheme's (E1 wiring).
	k, err := ekl.ParseKernel(EKLSource())
	if err != nil {
		t.Fatal(err)
	}
	rad := NewRadiation(6, 6)
	rng := rand.New(rand.NewSource(6))
	nx := 8
	intT := func(max int, shape ...int) *tensor.Tensor {
		tt := tensor.New(shape...)
		for i := range tt.Data() {
			tt.Data()[i] = float64(rng.Intn(max))
		}
		return tt
	}
	bind := ekl.Binding{
		Tensors: map[string]*tensor.Tensor{
			"p":           tensor.Random(rng, 5000, 101325, nx),
			"bnd_to_flav": intT(rad.NFlav, 2, 4),
			"j_T":         intT(rad.NT-2, nx),
			"j_p":         intT(rad.NP-3, nx),
			"j_eta":       intT(rad.NEta-2, rad.NFlav, nx),
			"r_mix":       tensor.Random(rng, 0, 1, rad.NFlav, nx, 2),
			"f_major":     tensor.Random(rng, 0, 1, rad.NFlav, nx, 2, 2, 2),
			"k_major":     rad.kMajor,
		},
		Scalars: map[string]float64{"bnd": 1},
	}
	res, err := k.Run(bind)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Outputs["tau_abs"]
	if out.Shape()[0] != nx || out.Shape()[1] != rad.NGpt {
		t.Errorf("tau shape %v, want (%d,%d)", out.Shape(), nx, rad.NGpt)
	}
}

func TestAssimilationImprovesAnalysis(t *testing.T) {
	// Verification horizon short enough that the upwind scheme's numerical
	// diffusion has not yet damped the initial-condition differences.
	exp, err := RunAssimilationExperiment(smallCfg(), 10, 8, 30, 11)
	if err != nil {
		t.Fatal(err)
	}
	if exp.AnalysisRMSE >= exp.BackgroundRMSE {
		t.Errorf("analysis RMSE %g must beat background %g",
			exp.AnalysisRMSE, exp.BackgroundRMSE)
	}
	if exp.ForecastRMSEAssim >= exp.ForecastRMSEFree {
		t.Errorf("assimilated forecast RMSE %g must beat free forecast %g",
			exp.ForecastRMSEAssim, exp.ForecastRMSEFree)
	}
}

func TestAssimilationValidation(t *testing.T) {
	bg := NewState(smallCfg(), 1)
	if _, err := Assimilate3DVar(bg, nil, 0, 1); err == nil {
		t.Error("zero background error must fail")
	}
	bad := []Observation{{I: 99, J: 0, K: 0, Value: 300, ErrStd: 1}}
	if _, err := Assimilate3DVar(bg, bad, 1, 1); err == nil {
		t.Error("out-of-grid observation must fail")
	}
}

func TestEnsembleSpreadAndSkill(t *testing.T) {
	res, err := RunEnsemble(smallCfg(), 6, 30, 21)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spread <= 0 {
		t.Error("ensemble must have positive spread")
	}
	// Classic ensemble property: the mean beats the average member.
	avgMember := 0.0
	for _, r := range res.MemberRMSE {
		avgMember += r
	}
	avgMember /= float64(len(res.MemberRMSE))
	if res.MeanRMSE >= avgMember {
		t.Errorf("ensemble mean RMSE %g must beat average member %g", res.MeanRMSE, avgMember)
	}
	if _, err := RunEnsemble(smallCfg(), 1, 5, 1); err == nil {
		t.Error("ensemble of 1 must fail")
	}
}

func TestRadiationEveryThrottles(t *testing.T) {
	cfg := smallCfg()
	cfg.RadiationEvery = 5
	s := NewState(cfg, 8)
	rad := NewRadiation(8, cfg.NZ)
	s.Run(rad, 20)
	full := NewState(smallCfg(), 8)
	full.Run(NewRadiation(8, full.Cfg.NZ), 20)
	if s.RadiationFlops >= full.RadiationFlops {
		t.Error("throttled radiation must cost fewer flops")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := NewState(smallCfg(), 9)
	c := s.Clone()
	c.T.Set(999, 0, 0, 0)
	if s.T.At(0, 0, 0) == 999 {
		t.Error("Clone must deep-copy fields")
	}
}

// TestEKLBindingRunsKernel: the synthesized binding must drive the Fig. 3
// kernel against the scheme's own table shapes (the compile path of the
// weather application in the workload registry).
func TestEKLBindingRunsKernel(t *testing.T) {
	rad := NewRadiation(9, 8)
	k, err := ekl.ParseKernel(EKLSource())
	if err != nil {
		t.Fatal(err)
	}
	res, err := k.Run(rad.EKLBinding(9, 12))
	if err != nil {
		t.Fatal(err)
	}
	out := res.Outputs["tau_abs"]
	if out.Shape()[0] != 12 || out.Shape()[1] != rad.NGpt {
		t.Fatalf("tau shape %v, want (12,%d)", out.Shape(), rad.NGpt)
	}
	for _, v := range out.Data() {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("non-physical optical depth %g", v)
		}
	}
}
