package wrf

import (
	"fmt"
	"math"
	"math/rand"

	"everest/internal/tensor"
)

// EnsembleResult summarizes an ensemble forecast.
type EnsembleResult struct {
	Members    int
	MeanT      *tensor.Tensor // ensemble-mean temperature field
	Spread     float64        // mean ensemble standard deviation
	MeanRMSE   float64        // RMSE of the ensemble mean vs truth
	MemberRMSE []float64      // per-member RMSE vs truth
}

// RunEnsemble integrates `members` perturbed copies of the initial state
// forward `steps` steps and verifies them against a truth run (§VIII:
// ensembles from "perturbations in initial 3D weather fields").
func RunEnsemble(cfg Config, members, steps int, seed int64) (*EnsembleResult, error) {
	if members < 2 {
		return nil, fmt.Errorf("wrf: ensemble needs >= 2 members")
	}
	rad := NewRadiation(seed, cfg.NZ)
	truth := NewState(cfg, seed)
	truth.Run(rad, steps)

	states := make([]*State, members)
	for m := 0; m < members; m++ {
		st := NewState(cfg, seed)
		perturb(st, seed+100+int64(m), 0.4)
		st.Run(rad, steps)
		states[m] = st
	}

	res := &EnsembleResult{Members: members, MeanT: tensor.New(cfg.NX, cfg.NY, cfg.NZ)}
	for _, st := range states {
		res.MeanT = tensor.Add(res.MeanT, st.T)
	}
	res.MeanT = res.MeanT.Scale(1 / float64(members))

	// Spread: mean per-cell stddev.
	varSum := tensor.New(cfg.NX, cfg.NY, cfg.NZ)
	for _, st := range states {
		d := tensor.Sub(st.T, res.MeanT)
		varSum = tensor.Add(varSum, tensor.Mul(d, d))
	}
	res.Spread = varSum.Scale(1 / float64(members)).Map(math.Sqrt).Mean()

	res.MeanRMSE = tensor.RMSE(res.MeanT, truth.T)
	for _, st := range states {
		res.MemberRMSE = append(res.MemberRMSE, RMSE(st, truth))
	}
	return res, nil
}

// perturb adds a spatially smooth (low-wavenumber) perturbation to the
// temperature initial condition, matching the large-scale structure of real
// initial-condition uncertainty — which is also what makes localized data
// assimilation effective.
func perturb(s *State, seed int64, std float64) {
	rng := rand.New(rand.NewSource(seed))
	cfg := s.Cfg
	const modes = 6
	amp := std * math.Sqrt(2/float64(modes))
	type mode struct {
		kx, ky, kz float64
		phase, a   float64
	}
	ms := make([]mode, modes)
	for m := range ms {
		ms[m] = mode{
			kx: float64(1 + rng.Intn(3)), ky: float64(1 + rng.Intn(3)),
			kz: float64(rng.Intn(2)), phase: rng.Float64() * 2 * math.Pi,
			a: amp * (0.5 + rng.Float64()),
		}
	}
	for i := 0; i < cfg.NX; i++ {
		for j := 0; j < cfg.NY; j++ {
			for k := 0; k < cfg.NZ; k++ {
				dv := 0.0
				for _, m := range ms {
					dv += m.a * math.Sin(2*math.Pi*(m.kx*float64(i)/float64(cfg.NX)+
						m.ky*float64(j)/float64(cfg.NY)+
						m.kz*float64(k)/float64(cfg.NZ))+m.phase)
				}
				s.T.Set(s.T.At(i, j, k)+dv, i, j, k)
			}
		}
	}
}
