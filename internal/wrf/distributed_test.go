package wrf

import (
	"testing"

	"everest/internal/netsim"
)

func TestRunDistributedBasics(t *testing.T) {
	w, err := netsim.NewWorld(4, netsim.UDP10G())
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunDistributed(DistributedPlan{
		Members: 8, Ranks: 4, StateBytes: 1 << 22, StepSeconds: 0.05, Steps: 10,
	}, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Waves != 2 {
		t.Errorf("8 members on 4 ranks = %d waves, want 2", res.Waves)
	}
	if res.Total <= res.Compute {
		t.Error("total must include communication")
	}
	if res.Broadcast <= 0 || res.Reduce <= 0 {
		t.Error("collectives must cost time")
	}
}

func TestRunDistributedValidation(t *testing.T) {
	w, _ := netsim.NewWorld(2, netsim.UDP10G())
	if _, err := RunDistributed(DistributedPlan{Members: 0, Ranks: 2}, w); err == nil {
		t.Error("zero members must fail")
	}
	if _, err := RunDistributed(DistributedPlan{Members: 4, Ranks: 4}, w); err == nil {
		t.Error("rank mismatch must fail")
	}
}

func TestScalingImprovesThenSaturates(t *testing.T) {
	// Strong scaling: more ranks cut compute linearly until communication
	// dominates; total time must be non-increasing through the compute-
	// bound region and the speedup must be sublinear at high rank counts.
	table, err := ScalingTable(16, 1<<22, 0.05, 10, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(table) != 5 { // ranks 1,2,4,8,16
		t.Fatalf("table rows = %d", len(table))
	}
	if table[1].Total >= table[0].Total {
		t.Error("2 ranks must beat 1 rank on a compute-bound ensemble")
	}
	speedup16 := table[0].Total / table[4].Total
	if speedup16 <= 4 {
		t.Errorf("16-rank speedup %.1f too small", speedup16)
	}
	if speedup16 >= 16 {
		t.Errorf("16-rank speedup %.1f cannot be superlinear (communication must bite)", speedup16)
	}
}
