package wrf

import (
	"fmt"
	"math"
	"math/rand"

	"everest/internal/tensor"
)

// Observation is one temperature measurement from a station (radar,
// authoritative or non-authoritative weather station — §VIII).
type Observation struct {
	I, J, K int
	Value   float64
	ErrStd  float64
}

// SampleObservations extracts noisy observations of the truth state at
// nStations random columns (all levels observed).
func SampleObservations(truth *State, nStations int, noiseStd float64, seed int64) []Observation {
	rng := rand.New(rand.NewSource(seed))
	var obs []Observation
	for s := 0; s < nStations; s++ {
		i := rng.Intn(truth.Cfg.NX)
		j := rng.Intn(truth.Cfg.NY)
		for k := 0; k < truth.Cfg.NZ; k++ {
			obs = append(obs, Observation{
				I: i, J: j, K: k,
				Value:  truth.T.At(i, j, k) + rng.NormFloat64()*noiseStd,
				ErrStd: noiseStd,
			})
		}
	}
	return obs
}

// Assimilate3DVar performs one WRFDA-like 3D-Var analysis step on the
// background state. Each observation spreads its innovation over a Gaussian
// localization of the given radius (grid cells); where observation
// footprints overlap, innovations are combined as a weighted mean (so dense
// networks do not overshoot), and the optimal-interpolation gain
// B/(B+R) weights background versus observation error.
func Assimilate3DVar(background *State, obs []Observation, bgErrStd, radius float64) (*State, error) {
	if bgErrStd <= 0 || radius <= 0 {
		return nil, fmt.Errorf("wrf: 3dvar needs positive background error and radius")
	}
	analysis := background.Clone()
	cfg := background.Cfg
	num := tensor.New(cfg.NX, cfg.NY, cfg.NZ)
	den := tensor.New(cfg.NX, cfg.NY, cfg.NZ)
	span := int(radius * 3)
	for _, o := range obs {
		if o.I < 0 || o.I >= cfg.NX || o.J < 0 || o.J >= cfg.NY || o.K < 0 || o.K >= cfg.NZ {
			return nil, fmt.Errorf("wrf: observation outside grid (%d,%d,%d)", o.I, o.J, o.K)
		}
		innovation := o.Value - background.T.At(o.I, o.J, o.K)
		for di := -span; di <= span; di++ {
			for dj := -span; dj <= span; dj++ {
				i := o.I + di
				j := o.J + dj
				if i < 0 || i >= cfg.NX || j < 0 || j >= cfg.NY {
					continue
				}
				dist2 := float64(di*di + dj*dj)
				w := math.Exp(-dist2 / (2 * radius * radius))
				num.Set(num.At(i, j, o.K)+w*innovation, i, j, o.K)
				den.Set(den.At(i, j, o.K)+w, i, j, o.K)
			}
		}
	}
	gain := bgErrStd * bgErrStd / (bgErrStd*bgErrStd + meanObsErr(obs))
	for i := 0; i < cfg.NX; i++ {
		for j := 0; j < cfg.NY; j++ {
			for k := 0; k < cfg.NZ; k++ {
				d := den.At(i, j, k)
				if d <= 0 {
					continue
				}
				meanInnov := num.At(i, j, k) / d
				conf := d
				if conf > 1 {
					conf = 1
				}
				cur := analysis.T.At(i, j, k)
				analysis.T.Set(cur+gain*conf*meanInnov, i, j, k)
			}
		}
	}
	return analysis, nil
}

func meanObsErr(obs []Observation) float64 {
	if len(obs) == 0 {
		return 1
	}
	s := 0.0
	for _, o := range obs {
		s += o.ErrStd * o.ErrStd
	}
	return s / float64(len(obs))
}

// AssimilationExperiment runs the E11 assimilation test: truth and a
// perturbed background evolve freely; assimilating observations must pull
// the analysis closer to the truth than the background was.
type AssimilationExperiment struct {
	BackgroundRMSE    float64
	AnalysisRMSE      float64
	ForecastRMSEFree  float64 // forecast RMSE without assimilation
	ForecastRMSEAssim float64 // forecast RMSE starting from the analysis
}

// RunAssimilationExperiment executes the full cycle.
func RunAssimilationExperiment(cfg Config, spinup, forecast int, nStations int, seed int64) (*AssimilationExperiment, error) {
	rad := NewRadiation(seed, cfg.NZ)
	truth := NewState(cfg, seed)
	truth.Run(rad, spinup)
	// Background: the truth contaminated by a large-amplitude IC error (the
	// situation data assimilation exists to fix).
	background := truth.Clone()
	perturb(background, seed+1, 1.0)

	obs := SampleObservations(truth, nStations, 0.3, seed+2)
	analysis, err := Assimilate3DVar(background, obs, 1.0, 2.0)
	if err != nil {
		return nil, err
	}

	exp := &AssimilationExperiment{
		BackgroundRMSE: RMSE(background, truth),
		AnalysisRMSE:   RMSE(analysis, truth),
	}

	freeFc := background.Clone()
	assimFc := analysis.Clone()
	truthFc := truth.Clone()
	freeFc.Run(rad, forecast)
	assimFc.Run(rad, forecast)
	truthFc.Run(rad, forecast)
	exp.ForecastRMSEFree = RMSE(freeFc, truthFc)
	exp.ForecastRMSEAssim = RMSE(assimFc, truthFc)
	return exp, nil
}
