// Package wrf implements the weather-simulation substrate of the EVEREST
// use cases (paper §II-A): a reduced-physics proxy of the WRF numerical
// model with the structure that matters to the SDK experiments —
//
//   - a 3D advection–diffusion dynamical core over temperature, winds and
//     moisture;
//   - an RRTMG-style radiation step (the module the EVEREST kernel language
//     was designed around, Fig. 3) whose gas-optics lookup dominates a
//     realistic ~30% share of the step cost;
//   - WRFDA-like variational data assimilation (paper: "the ingestion of
//     observational data ... improving the initial condition");
//   - ensemble prediction drivers (§VIII: accelerated WRF enables "an
//     ensemble prediction").
//
// Full WRF is ~1M lines of Fortran and needs HPC resources; this proxy
// preserves the kernel structure, data volumes, and workflow shape (see the
// substitution table in DESIGN.md).
package wrf

import (
	"fmt"
	"math"
	"math/rand"

	"everest/internal/tensor"
)

// Config sizes the model grid.
type Config struct {
	NX, NY, NZ int
	// DT is the model time step in seconds; DX the grid spacing in meters.
	DT, DX float64
	// RadiationEvery applies radiation each N steps (WRF-style radiation
	// calling frequency).
	RadiationEvery int
}

// DefaultConfig returns a small stable configuration.
func DefaultConfig() Config {
	return Config{NX: 24, NY: 24, NZ: 8, DT: 60, DX: 3000, RadiationEvery: 1}
}

// State is the prognostic model state.
type State struct {
	Cfg Config
	T   *tensor.Tensor // temperature (K), shape (NX,NY,NZ)
	U   *tensor.Tensor // zonal wind (m/s)
	V   *tensor.Tensor // meridional wind (m/s)
	Q   *tensor.Tensor // moisture mixing ratio (g/kg)
	// Step counter and accumulated modelled FLOPs per component.
	Steps          int
	DynamicsFlops  float64
	RadiationFlops float64
}

// NewState builds an initial state with a baroclinic-like temperature
// gradient, a zonal jet, and seeded perturbations.
func NewState(cfg Config, seed int64) *State {
	rng := rand.New(rand.NewSource(seed))
	s := &State{
		Cfg: cfg,
		T:   tensor.New(cfg.NX, cfg.NY, cfg.NZ),
		U:   tensor.New(cfg.NX, cfg.NY, cfg.NZ),
		V:   tensor.New(cfg.NX, cfg.NY, cfg.NZ),
		Q:   tensor.New(cfg.NX, cfg.NY, cfg.NZ),
	}
	for i := 0; i < cfg.NX; i++ {
		for j := 0; j < cfg.NY; j++ {
			for k := 0; k < cfg.NZ; k++ {
				lat := float64(j) / float64(cfg.NY-1) // 0..1 south->north
				height := float64(k) / float64(cfg.NZ)
				base := 300 - 30*lat - 50*height
				s.T.Set(base+rng.NormFloat64()*0.3, i, j, k)
				s.U.Set(8*math.Sin(math.Pi*lat)+rng.NormFloat64()*0.3, i, j, k)
				s.V.Set(rng.NormFloat64()*0.3, i, j, k)
				s.Q.Set(math.Max(0, 8*(1-height)+rng.NormFloat64()*0.2), i, j, k)
			}
		}
	}
	return s
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	return &State{
		Cfg: s.Cfg,
		T:   s.T.Clone(), U: s.U.Clone(), V: s.V.Clone(), Q: s.Q.Clone(),
		Steps: s.Steps, DynamicsFlops: s.DynamicsFlops, RadiationFlops: s.RadiationFlops,
	}
}

// Step advances the model one time step: upwind advection of T and Q by the
// winds, horizontal diffusion, then (every RadiationEvery steps) the RRTMG
// proxy heating.
func (s *State) Step(rad *Radiation) {
	cfg := s.Cfg
	cn := cfg.DT / cfg.DX // Courant number scale
	tNew := s.T.Clone()
	qNew := s.Q.Clone()

	idx := func(i, n int) int { return ((i % n) + n) % n } // periodic
	for i := 0; i < cfg.NX; i++ {
		for j := 0; j < cfg.NY; j++ {
			for k := 0; k < cfg.NZ; k++ {
				u := s.U.At(i, j, k)
				v := s.V.At(i, j, k)
				// Upwind advection.
				var dTdx, dTdy, dQdx, dQdy float64
				if u >= 0 {
					dTdx = s.T.At(i, j, k) - s.T.At(idx(i-1, cfg.NX), j, k)
					dQdx = s.Q.At(i, j, k) - s.Q.At(idx(i-1, cfg.NX), j, k)
				} else {
					dTdx = s.T.At(idx(i+1, cfg.NX), j, k) - s.T.At(i, j, k)
					dQdx = s.Q.At(idx(i+1, cfg.NX), j, k) - s.Q.At(i, j, k)
				}
				if v >= 0 {
					dTdy = s.T.At(i, j, k) - s.T.At(i, idx(j-1, cfg.NY), k)
					dQdy = s.Q.At(i, j, k) - s.Q.At(i, idx(j-1, cfg.NY), k)
				} else {
					dTdy = s.T.At(i, idx(j+1, cfg.NY), k) - s.T.At(i, j, k)
					dQdy = s.Q.At(i, idx(j+1, cfg.NY), k) - s.Q.At(i, j, k)
				}
				adv := -cn * (u*dTdx + v*dTdy)
				advQ := -cn * (u*dQdx + v*dQdy)
				// Horizontal diffusion (explicit, small coefficient).
				lap := s.T.At(idx(i+1, cfg.NX), j, k) + s.T.At(idx(i-1, cfg.NX), j, k) +
					s.T.At(i, idx(j+1, cfg.NY), k) + s.T.At(i, idx(j-1, cfg.NY), k) -
					4*s.T.At(i, j, k)
				tNew.Set(s.T.At(i, j, k)+adv+0.02*lap, i, j, k)
				qNew.Set(math.Max(0, s.Q.At(i, j, k)+advQ), i, j, k)
			}
		}
	}
	s.T = tNew
	s.Q = qNew
	// Accounted at 1500 flops per cell: the proxy's upwind update stands in
	// for WRF's full non-radiation suite (dynamics, microphysics, PBL,
	// surface), which is what the paper's "RRTMG is ~30% of cycles" claim
	// is measured against.
	s.DynamicsFlops += 1500 * float64(cfg.NX*cfg.NY*cfg.NZ)

	if rad != nil && s.Steps%maxi(1, cfg.RadiationEvery) == 0 {
		flops := rad.Apply(s)
		s.RadiationFlops += flops
	}
	s.Steps++
}

// Run advances n steps.
func (s *State) Run(rad *Radiation, n int) {
	for i := 0; i < n; i++ {
		s.Step(rad)
	}
}

// RadiationFraction returns the fraction of total modelled FLOPs spent in
// radiation — the paper reports ~30% for RRTMG inside WRF.
func (s *State) RadiationFraction() float64 {
	total := s.DynamicsFlops + s.RadiationFlops
	if total == 0 {
		return 0
	}
	return s.RadiationFlops / total
}

// MeanT returns the domain-mean temperature (sanity diagnostics).
func (s *State) MeanT() float64 { return s.T.Mean() }

// RMSE returns the temperature RMSE between two states.
func RMSE(a, b *State) float64 { return tensor.RMSE(a.T, b.T) }

// Validate checks for numerical blow-up.
func (s *State) Validate() error {
	for _, v := range s.T.Data() {
		if math.IsNaN(v) || v < 100 || v > 400 {
			return fmt.Errorf("wrf: temperature field blew up (value %g)", v)
		}
	}
	return nil
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
