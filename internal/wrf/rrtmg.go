package wrf

import (
	"math"
	"math/rand"

	"everest/internal/ekl"
	"everest/internal/tensor"
)

// Radiation is the RRTMG-proxy gas-optics scheme: the kernel the EVEREST
// kernel language was designed around (paper §V-A1, Fig. 3). Per column it
// computes the major-absorber optical depth by trilinear interpolation into
// a k-distribution table — the
//
//	tau = Σ_dT Σ_dp Σ_dη  r·α·k[T+dT, p+dp, η+dη, g]
//
// contraction of Fig. 3 — then applies a Newtonian heating tendency derived
// from the column optical depth.
type Radiation struct {
	NGpt  int // spectral g-points
	NT    int // temperature table size
	NP    int // pressure table size
	NEta  int // mixing-fraction table size
	NFlav int // absorber flavours

	kMajor    *tensor.Tensor // (NT, NP, NEta, NGpt)
	bndToFlav *tensor.Tensor // (2, bands)
	pressRef  []float64      // reference pressure per level
	tempRef   []float64      // temperature table axis
	// HeatRate scales the radiative tendency.
	HeatRate float64
	// Strato is the tropopause pressure threshold of the Fig. 3 select.
	Strato float64
}

// NewRadiation builds a seeded gas-optics table set for a grid with nz
// levels.
func NewRadiation(seed int64, nz int) *Radiation {
	rng := rand.New(rand.NewSource(seed))
	r := &Radiation{
		NGpt: 16, NT: 12, NP: 16, NEta: 9, NFlav: 3,
		HeatRate: 0.002, Strato: 9600,
	}
	r.kMajor = tensor.Random(rng, 0.1, 1.0, r.NT, r.NP, r.NEta, r.NGpt)
	r.bndToFlav = tensor.New(2, 4)
	for i := 0; i < 2; i++ {
		for b := 0; b < 4; b++ {
			r.bndToFlav.Set(float64(rng.Intn(r.NFlav)), i, b)
		}
	}
	r.pressRef = make([]float64, nz)
	for k := 0; k < nz; k++ {
		// Exponential pressure profile from 101325 Pa down to ~8000 Pa.
		r.pressRef[k] = 101325 * math.Exp(-2.5*float64(k)/float64(nz))
	}
	r.tempRef = make([]float64, r.NT)
	for i := range r.tempRef {
		r.tempRef[i] = 180 + 15*float64(i) // 180..345 K
	}
	return r
}

// ColumnTau computes the per-g-point optical depth of one column, the
// Fig. 3 computation. tOfK gives the temperature at each level.
func (r *Radiation) ColumnTau(tOfK []float64, qOfK []float64) []float64 {
	tau := make([]float64, r.NGpt)
	const bnd = 1
	for k := range tOfK {
		p := r.pressRef[k]
		iStrato := 0
		if p <= r.Strato {
			iStrato = 1
		}
		iFlav := int(r.bndToFlav.At(iStrato, bnd))

		// Index re-association: locate table positions.
		jT := clampInt(int((tOfK[k]-r.tempRef[0])/15), 0, r.NT-2)
		jp := clampInt(int(float64(r.NP-2)*(1-p/101325)), 0, r.NP-3)
		eta := qOfK[k] / 10
		jEta := clampInt(int(eta*float64(r.NEta-2)), 0, r.NEta-2)

		// Interpolation weights (the r·α factors of Fig. 3).
		wT := (tOfK[k] - r.tempRef[jT]) / 15
		wT = math.Max(0, math.Min(1, wT))
		wE := eta*float64(r.NEta-2) - float64(jEta)
		wE = math.Max(0, math.Min(1, wE))

		for g := 0; g < r.NGpt; g++ {
			acc := 0.0
			for dT := 0; dT < 2; dT++ {
				for dp := 0; dp < 2; dp++ {
					for dE := 0; dE < 2; dE++ {
						rmix := lerpw(wE, dE) * (0.5 + 0.5*eta)
						fmaj := lerpw(wT, dT) * 0.5
						acc += rmix * fmaj *
							r.kMajor.At(jT+dT, jp+iStrato+dp, jEta+dE, g)
					}
				}
			}
			tau[g] += acc * float64(iFlav+1) / float64(r.NFlav)
		}
	}
	return tau
}

func lerpw(w float64, d int) float64 {
	if d == 0 {
		return 1 - w
	}
	return w
}

// Apply computes radiation for every column and applies the heating
// tendency; it returns the modelled FLOP count (the quantity the paper's
// 30%-of-cycles claim is about).
func (r *Radiation) Apply(s *State) float64 {
	cfg := s.Cfg
	tCol := make([]float64, cfg.NZ)
	qCol := make([]float64, cfg.NZ)
	for i := 0; i < cfg.NX; i++ {
		for j := 0; j < cfg.NY; j++ {
			for k := 0; k < cfg.NZ; k++ {
				tCol[k] = s.T.At(i, j, k)
				qCol[k] = s.Q.At(i, j, k)
			}
			tau := r.ColumnTau(tCol, qCol)
			// Column-integrated optical depth drives Newtonian
			// cooling/heating toward the radiative equilibrium profile.
			tauSum := 0.0
			for _, v := range tau {
				tauSum += v
			}
			tauMean := tauSum / float64(r.NGpt)
			for k := 0; k < cfg.NZ; k++ {
				eq := 300 - 55*float64(k)/float64(cfg.NZ) - 5*tauMean/float64(cfg.NZ)
				dT := r.HeatRate * (eq - s.T.At(i, j, k))
				s.T.Set(s.T.At(i, j, k)+dT, i, j, k)
			}
		}
	}
	// FLOPs: per column per level per g-point: 2*2*2 entries × ~5 ops,
	// plus heating (~4 per cell).
	perColumn := float64(cfg.NZ) * (float64(r.NGpt)*8*5 + 12)
	return perColumn * float64(cfg.NX*cfg.NY)
}

// EKLSource returns the radiation kernel expressed in the EVEREST Kernel
// Language (the Fig. 3 form) for the E1 experiment.
func EKLSource() string {
	return `
kernel tau_major {
  input p           : [X]
  input bnd_to_flav : [2, NBND] index
  input j_T         : [X] index
  input j_p         : [X] index
  input j_eta       : [NFLAV, X] index
  input r_mix       : [NFLAV, X, E]
  input f_major     : [NFLAV, X, T, PP, E]
  input k_major     : [NT, NP, NETA, G]
  param strato = 9600.0
  iparam bnd
  i_strato = select(p[x] <= strato, 1, 0)
  i_flav[x] = bnd_to_flav[i_strato[x], bnd]
  tau_abs = sum(t, pp, e) r_mix[i_flav[x], x, e]
          * f_major[i_flav[x], x, t, pp, e]
          * k_major[j_T[x]+t, j_p[x]+i_strato[x]+pp, j_eta[i_flav[x], x]+e, g]
  output tau_abs[x, g]
}
`
}

// EKLBinding synthesizes a deterministic binding for EKLSource shaped
// like this Radiation's k-distribution tables, with nx atmospheric
// columns: interpolation indices stay inside the table axes (the +t, +pp,
// +e offsets of the Fig. 3 contraction never run off the end), pressures
// span the reference profile, and the k-major table is the scheme's own.
// It is what lets the radiation kernel compile source-to-schedule through
// the variant pipeline against real table shapes.
func (r *Radiation) EKLBinding(seed int64, nx int) ekl.Binding {
	rng := rand.New(rand.NewSource(seed))
	intT := func(max int, shape ...int) *tensor.Tensor {
		t := tensor.New(shape...)
		for i := range t.Data() {
			t.Data()[i] = float64(rng.Intn(max))
		}
		return t
	}
	return ekl.Binding{
		Tensors: map[string]*tensor.Tensor{
			"p":           tensor.Random(rng, 5000, 101325, nx),
			"bnd_to_flav": intT(r.NFlav, 2, 4),
			"j_T":         intT(r.NT-2, nx),
			"j_p":         intT(r.NP-3, nx),
			"j_eta":       intT(r.NEta-2, r.NFlav, nx),
			"r_mix":       tensor.Random(rng, 0, 1, r.NFlav, nx, 2),
			"f_major":     tensor.Random(rng, 0, 1, r.NFlav, nx, 2, 2, 2),
			"k_major":     r.kMajor,
		},
		Scalars: map[string]float64{"bnd": 1},
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
