package quantile

import "testing"

// TestNearestRankUlpSnap pins the cases where a raw Ceil(q·n) inflates the
// rank by one: q·n lands a few ulps above the intended integer.
func TestNearestRankUlpSnap(t *testing.T) {
	cases := []struct {
		q    float64
		n    int64
		want int64
	}{
		{0.95, 20, 19}, // 0.95*20 = 19.000000000000004
		{0.95, 40, 38},
		{0.99, 100, 99},
		{0.5, 10, 5},
		{0.51, 10, 6},
		{0.949, 20, 19},
		{0.951, 20, 20},
		{1, 7, 7},
		{0, 5, 1},    // clamp low
		{-0.5, 5, 1}, // clamp low
		{1.5, 5, 5},  // clamp high
		{0.5, 0, 0},  // empty
		{0.01, 3, 1}, // ceil(0.03) = 1
		{2.0 / 3, 3, 2},
	}
	for _, c := range cases {
		if got := NearestRank(c.q, c.n); got != c.want {
			t.Errorf("NearestRank(%v, %d) = %d, want %d", c.q, c.n, got, c.want)
		}
	}
}

// TestNearestRankExactBoundaries: q = i/n must select rank i for every i,
// across sizes where i/n is not exactly representable.
func TestNearestRankExactBoundaries(t *testing.T) {
	for _, n := range []int64{3, 7, 10, 20, 33, 100, 1000} {
		for i := int64(1); i <= n; i++ {
			q := float64(i) / float64(n)
			if got := NearestRank(q, n); got != i {
				t.Errorf("NearestRank(%d/%d) = %d, want %d", i, n, got, i)
			}
		}
	}
}
