// Package quantile holds the one shared nearest-rank computation every
// percentile reporter in the repo uses — the sorted-sample path
// (sdk.Percentile) and the histogram path (the stream tier) must agree on
// rank semantics or their SLO numbers drift apart on exact boundaries.
package quantile

import "math"

// eps is the float64 machine epsilon (2^-52).
const eps = 0x1p-52

// NearestRank returns ceil(q·n), the 1-based nearest rank, clamped to
// [1, n]. q usually arrives as the closest float64 to an intended rational
// (0.95, i/n), so q·n can land a few ulps to either side of the intended
// integer; a raw Ceil would then bump a full rank (0.95×20 →
// 19.000000000000004 → rank 20). Products within relative rounding error
// of an integer snap to it before the ceiling is taken.
func NearestRank(q float64, n int64) int64 {
	if n <= 0 {
		return 0
	}
	r := q * float64(n)
	if nearest := math.Round(r); nearest != r && math.Abs(r-nearest) <= 4*math.Abs(r)*eps {
		r = nearest
	} else {
		r = math.Ceil(r)
	}
	if r < 1 {
		return 1
	}
	if r > float64(n) {
		return n
	}
	return int64(r)
}
