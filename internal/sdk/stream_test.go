package sdk

import (
	"bytes"
	"fmt"
	"testing"

	"everest/internal/stream"
)

// streamTestServer builds one shared StreamServer for the package's stream
// tests: compiling the suite dominates the test cost, the serving runs are
// cheap, and RunAt builds a fresh cluster per run so tests stay isolated.
var streamTestServer *StreamServer

func testStreamServer(t *testing.T, events int) *StreamServer {
	t.Helper()
	if streamTestServer == nil {
		s, err := NewStreamServer(DefaultStreamScenario())
		if err != nil {
			t.Fatal(err)
		}
		streamTestServer = s
	}
	s := *streamTestServer
	s.sc.Events = events
	return &s
}

func TestStreamScenarioDefaults(t *testing.T) {
	sc := StreamScenario{}.withDefaults()
	def := DefaultStreamScenario()
	def.PartialReconfig = false // the only non-zero-default knob
	if fmt.Sprintf("%+v", sc) != fmt.Sprintf("%+v", def) {
		t.Fatalf("zero-value defaults drifted from DefaultStreamScenario:\n%+v\n%+v", sc, def)
	}
}

func TestStreamServerServesInsideSLO(t *testing.T) {
	s := testStreamServer(t, 20000)
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Events != int64(4*20000) {
		t.Fatalf("events = %d, want %d", st.Events, 4*20000)
	}
	if st.Done != st.Events || st.Shed != 0 {
		t.Fatalf("done=%d shed=%d of %d: the default rate should be inside capacity", st.Done, st.Shed, st.Events)
	}
	if st.P99 > s.sc.SLO {
		t.Fatalf("p99 = %gs exceeds the %gs SLO at the default rate", st.P99, s.sc.SLO)
	}
	if st.Swaps != 0 {
		t.Fatalf("default scenario (partial reconfig on) paid %d swaps, want 0", st.Swaps)
	}
	if len(st.Pipelines) != 4 {
		t.Fatalf("pipelines = %d, want 4", len(st.Pipelines))
	}
	tenants := map[string]bool{}
	for _, p := range st.Pipelines {
		tenants[p.Tenant] = true
	}
	if !tenants["guaranteed"] || !tenants["besteffort"] {
		t.Fatalf("tenant classes missing: %v", tenants)
	}
}

func TestStreamSaturateFindsTheKnee(t *testing.T) {
	s := testStreamServer(t, 20000)
	points, best, err := s.Saturate([]float64{2000, 4000, 12000})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d, want 3", len(points))
	}
	if !points[0].SLOMet || !points[1].SLOMet {
		t.Fatalf("under-capacity rungs should meet the SLO: %+v", points[:2])
	}
	if points[2].SLOMet {
		t.Fatalf("the 12000 ev/s rung should blow the SLO: %+v", points[2])
	}
	if best.Rate != 4000 {
		t.Fatalf("best rung = %+v, want the 4000 ev/s rung", best)
	}
	if best.Throughput < 15000 {
		t.Fatalf("sustained throughput = %g, want ~16000 ev/s across 4 pipelines", best.Throughput)
	}
}

func TestStreamSwapWin(t *testing.T) {
	s := testStreamServer(t, 20000)
	on, off, err := s.SwapWin()
	if err != nil {
		t.Fatal(err)
	}
	if on.Swaps != 0 {
		t.Fatalf("partial reconfig paid %d swaps, want 0 (all kernels resident)", on.Swaps)
	}
	if off.Swaps < 10 || off.SwapSeconds <= 0 {
		t.Fatalf("whole-device churn = %d swaps / %gs, want substantial", off.Swaps, off.SwapSeconds)
	}
	if on.P99 >= off.P99 || on.Throughput <= off.Throughput {
		t.Fatalf("no swap win: on p99=%g thr=%g vs off p99=%g thr=%g",
			on.P99, on.Throughput, off.P99, off.Throughput)
	}
	if s.sc.PartialReconfig != DefaultStreamScenario().PartialReconfig {
		t.Fatalf("SwapWin must restore the scenario's PartialReconfig setting")
	}
}

// renderStreamTrace serves a reduced E-stream scenario with every event
// traced and returns the rendered byte stream plus the headline stats
// line. Bursty and diurnal arrivals, both overload policies, and partial
// reconfiguration are all in play, so the bytes cover the full streaming
// path.
func renderStreamTrace(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	s := testStreamServer(t, 20000)
	s.sc.Arrival = "bursty"
	s.sc.Rate = 6000 // past the bottleneck stage: backpressure and shedding engage
	s.sc.Trace = func(ev stream.Event) {
		fmt.Fprintf(&buf, "%.9f %s %s/%s %s %d\n",
			ev.Time, ev.Kind, ev.Pipeline, ev.Stage, ev.Device, ev.Events)
	}
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&buf, "done=%d shed=%d windows=%d p50=%.9f p99=%.9f swaps=%d\n",
		st.Done, st.Shed, st.Windows, st.P50, st.P99, st.Swaps)
	if buf.Len() == 0 {
		t.Fatal("no stream trace captured")
	}
	return buf.Bytes()
}

// TestStreamDeterministicTrace extends the PR-6 determinism contract to
// the streaming tier: the full window-level trace of an E-stream run —
// arrivals, closes, sheds, swaps, completions — must be byte-identical
// whether Go runs the engine on one CPU or eight. CI runs this under
// -race.
func TestStreamDeterministicTrace(t *testing.T) {
	ref := atGOMAXPROCS(1, func() []byte { return renderStreamTrace(t) })
	for _, procs := range []int{8, 1} {
		got := atGOMAXPROCS(procs, func() []byte { return renderStreamTrace(t) })
		if !bytes.Equal(ref, got) {
			t.Fatalf("stream trace diverged at GOMAXPROCS=%d (%d vs %d bytes):\n%s",
				procs, len(ref), len(got), firstDiff(ref, got))
		}
	}
}
