package sdk

import (
	"fmt"
	"sync"

	"everest/internal/netsim"
	"everest/internal/platform"
	"everest/internal/runtime"
	"everest/internal/virt"
)

// Server is the multi-tenant submission front of the virtualized runtime
// (paper §VI-A): it accepts many concurrent workflow submissions, bounds how
// many execute at once, keeps tenants fair through the engine's round-robin
// ready queues, and hands each caller a future for its result. It is the
// layer `basecamp serve` exposes.
type Server struct {
	sdk   *SDK
	eng   *runtime.Engine
	slots chan struct{} // admission semaphore; nil when unlimited

	mu        sync.Mutex
	started   bool
	closed    bool
	submitted int
	completed int
	failed    int
	tenants   map[string]*TenantStats
	makespan  float64
	hyps      []*virt.Hypervisor // attached via AttachHypervisor

	wg sync.WaitGroup // outstanding submissions
}

// ServerConfig configures a Server.
type ServerConfig struct {
	// Policy selects the engine's placement strategy (default PolicyHEFT).
	Policy runtime.Policy
	// MaxConcurrent bounds how many workflows execute simultaneously
	// (admission control); 0 means unlimited.
	MaxConcurrent int
	// Failures are node deaths injected at start (engine semantics).
	Failures []runtime.NodeFailure
	// Trace receives engine events when set.
	Trace func(runtime.Event)
	// Adaptive enables variant-aware scheduling: every placement consults
	// the per-workflow autotuner and the node monitors, and hot-plug events
	// invalidate stale placements (engine adaptive mode).
	Adaptive bool
	// Faults is a script of environment events injected while the server
	// runs, each triggered after a number of completed tasks (see Fault).
	Faults []Fault
	// Events are modelled-time environment changes scripted at start
	// (engine semantics; deterministic, unlike the completion-triggered
	// Faults).
	Events []runtime.EnvEvent
	// Net prices inter-node transfers over the packetization-aware
	// cloudFPGA network stack when set (engine semantics).
	Net *netsim.Stack
}

// TenantStats aggregates one tenant's submissions.
type TenantStats struct {
	Submitted  int
	Completed  int
	Failed     int
	LastFinish float64 // modelled completion time of the tenant's last workflow

	// Adaptation activity across the tenant's completed workflows.
	Reschedules int            // placements invalidated and redone
	Fallbacks   int            // FPGA placements that executed on CPU
	Variants    map[string]int // completed tasks per selected variant
}

// ServerStats is a snapshot of the server's counters.
type ServerStats struct {
	Submitted int
	Completed int
	Failed    int
	// Makespan is the modelled time at which the last completed workflow
	// finished — the engine-wide completion time of everything served so far.
	Makespan float64
	Tenants  map[string]TenantStats
}

// NewServer builds a server over the SDK's cluster and registry.
func (s *SDK) NewServer(cfg ServerConfig) *Server {
	srv := &Server{
		sdk:     s,
		tenants: make(map[string]*TenantStats),
	}
	trace := cfg.Trace
	if len(cfg.Faults) > 0 {
		trace = srv.faultDriver(cfg.Faults, cfg.Trace)
	}
	srv.eng = runtime.NewEngine(s.Cluster, s.Registry, runtime.EngineConfig{
		Policy: cfg.Policy, Failures: cfg.Failures, Trace: trace,
		Adaptive: cfg.Adaptive, Events: cfg.Events, Net: cfg.Net,
	})
	if cfg.MaxConcurrent > 0 {
		srv.slots = make(chan struct{}, cfg.MaxConcurrent)
	}
	return srv
}

// Monitor exposes the engine's per-node observation layer (health
// snapshots for CLIs and tests).
func (srv *Server) Monitor() *platform.Monitor { return srv.eng.Monitor() }

// UnplugDevice detaches an accelerator mid-run (engine control API).
func (srv *Server) UnplugDevice(node string, dev int, at float64) error {
	return srv.eng.UnplugDevice(node, dev, at)
}

// PlugDevice reattaches an accelerator mid-run.
func (srv *Server) PlugDevice(node string, dev int, at float64) error {
	return srv.eng.PlugDevice(node, dev, at)
}

// SetNodeSlowdown changes a node's load factor mid-run.
func (srv *Server) SetNodeSlowdown(node string, factor, at float64) error {
	return srv.eng.SetNodeSlowdown(node, factor, at)
}

// Start brings the engine up. Submissions made before Start queue. The
// engine's ownership reset marks every device attached; Start then
// re-derives attachment from any hypervisors attached before it ran.
func (srv *Server) Start() error {
	srv.mu.Lock()
	if srv.started {
		srv.mu.Unlock()
		return fmt.Errorf("sdk: server already started")
	}
	srv.started = true
	// The engine starts under srv.mu so a concurrent Shutdown serializes
	// behind it (it must observe a fully started engine to stop it);
	// syncHypervisors runs after release because it takes srv.mu itself.
	err := srv.eng.Start()
	srv.mu.Unlock()
	if err != nil {
		return err
	}
	srv.syncHypervisors()
	return nil
}

// Submission is the caller's handle on one submitted workflow.
type Submission struct {
	Name   string
	Tenant string

	done  chan struct{}
	sched *runtime.Schedule
	err   error
}

// Wait blocks until the workflow completes and returns its schedule.
func (sub *Submission) Wait() (*runtime.Schedule, error) {
	<-sub.done
	return sub.sched, sub.err
}

// Done returns a channel closed when the workflow has completed.
func (sub *Submission) Done() <-chan struct{} { return sub.done }

// Submit accepts a workflow on behalf of a tenant. It never blocks the
// caller: admission control (MaxConcurrent) is applied by a per-submission
// goroutine, so over-limit submissions queue instead of failing.
func (srv *Server) Submit(tenant, name string, w *runtime.Workflow) (*Submission, error) {
	if w == nil {
		return nil, fmt.Errorf("sdk: nil workflow")
	}
	if tenant == "" {
		tenant = "default"
	}
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		return nil, fmt.Errorf("sdk: server shut down")
	}
	srv.submitted++
	if name == "" {
		name = fmt.Sprintf("%s/wf%d", tenant, srv.submitted)
	}
	ts := srv.tenants[tenant]
	if ts == nil {
		ts = &TenantStats{}
		srv.tenants[tenant] = ts
	}
	ts.Submitted++
	srv.wg.Add(1)
	srv.mu.Unlock()

	sub := &Submission{Name: name, Tenant: tenant, done: make(chan struct{})}
	go func() {
		defer srv.wg.Done()
		if srv.slots != nil {
			srv.slots <- struct{}{}
			defer func() { <-srv.slots }()
		}
		fut, err := srv.eng.Submit(w, runtime.SubmitOptions{Name: name, Tenant: tenant})
		if err == nil {
			sub.sched, sub.err = fut.Wait()
		} else {
			sub.err = err
		}
		srv.record(sub)
		close(sub.done)
	}()
	return sub, nil
}

func (srv *Server) record(sub *Submission) {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	ts := srv.tenants[sub.Tenant]
	if sub.err != nil {
		srv.failed++
		ts.Failed++
		return
	}
	srv.completed++
	ts.Completed++
	if sub.sched.Makespan > ts.LastFinish {
		ts.LastFinish = sub.sched.Makespan
	}
	if sub.sched.Makespan > srv.makespan {
		srv.makespan = sub.sched.Makespan
	}
	ts.Reschedules += sub.sched.Adapt.Reschedules
	ts.Fallbacks += sub.sched.Adapt.Fallbacks
	for v, n := range sub.sched.Adapt.VariantCounts {
		if ts.Variants == nil {
			ts.Variants = make(map[string]int)
		}
		ts.Variants[v] += n
	}
}

// Stats returns a snapshot of the server counters.
func (srv *Server) Stats() ServerStats {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	out := ServerStats{
		Submitted: srv.submitted,
		Completed: srv.completed,
		Failed:    srv.failed,
		Makespan:  srv.makespan,
		Tenants:   make(map[string]TenantStats, len(srv.tenants)),
	}
	for name, ts := range srv.tenants {
		cp := *ts
		if ts.Variants != nil {
			cp.Variants = make(map[string]int, len(ts.Variants))
			for v, n := range ts.Variants {
				cp.Variants[v] = n
			}
		}
		out.Tenants[name] = cp
	}
	return out
}

// Shutdown refuses new submissions, waits for in-flight workflows to drain,
// stops the engine, and returns the final stats. Calling Shutdown on a
// server that was never started first starts the engine, so submissions
// queued before Start still drain instead of hanging their waiters.
func (srv *Server) Shutdown() ServerStats {
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		return srv.Stats()
	}
	srv.closed = true
	started := srv.started
	srv.started = true
	srv.mu.Unlock()
	if !started {
		_ = srv.eng.Start()
		srv.syncHypervisors()
	}
	srv.wg.Wait()
	srv.eng.Shutdown()
	return srv.Stats()
}

// SerialMakespan models the pre-engine baseline: each workflow planned alone
// by the serial list scheduler and executed back-to-back, so the total is
// the sum of the individual makespans. It is the denominator of the
// multiplexing speedup `basecamp serve` and the benchmarks report.
func (s *SDK) SerialMakespan(policy runtime.Policy, ws ...*runtime.Workflow) (float64, error) {
	total := 0.0
	sched := s.NewScheduler(policy)
	for i, w := range ws {
		plan, err := sched.Plan(w)
		if err != nil {
			return 0, fmt.Errorf("sdk: serial plan of workflow %d: %w", i, err)
		}
		total += plan.Makespan
	}
	return total, nil
}
