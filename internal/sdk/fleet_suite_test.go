package sdk

import (
	gort "runtime"
	"testing"

	"everest/internal/apps"
)

// suiteCache shares one compiled application suite across the package's
// suite tests (compilation is deterministic, so sharing is safe).
var suiteCache *apps.Suite

func builtSuite(t *testing.T) *apps.Suite {
	t.Helper()
	if suiteCache == nil {
		s, err := DefaultSuiteScenario().BuildSuite()
		if err != nil {
			t.Fatal(err)
		}
		suiteCache = s
	}
	return suiteCache
}

// smallSuiteScenario trims the E-apps configuration for unit-test speed.
func smallSuiteScenario() FleetScenario {
	sc := DefaultSuiteScenario()
	sc.Sites = 2
	sc.Tenants = 6
	sc.Workflows = 12
	return sc
}

// TestSuiteServesAllApplications: every registered application completes
// through the fleet tier and reports its own latency distribution.
func TestSuiteServesAllApplications(t *testing.T) {
	sc := smallSuiteScenario()
	res, err := sc.RunSuite(builtSuite(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != sc.Workflows {
		t.Fatalf("completed %d of %d", res.Completed, sc.Workflows)
	}
	if len(res.Apps) != len(apps.Names()) {
		t.Fatalf("per-app stats for %d apps, want %d (%+v)", len(res.Apps), len(apps.Names()), res.Apps)
	}
	total := 0
	for name, tl := range res.Apps {
		if tl.Completed == 0 || tl.P95 <= 0 || tl.P95 < tl.P50 {
			t.Errorf("app %s: degenerate latency stats %+v", name, tl)
		}
		total += tl.Completed
	}
	if total != res.Completed {
		t.Fatalf("per-app completions sum to %d, want %d", total, res.Completed)
	}
	// The suite path must flow through the registry DAGs: fleet deploys
	// must have staged more than one distinct bitstream per site set.
	if res.Stats.Fleet.CacheMisses() == 0 {
		t.Fatal("suite serving never deployed a bitstream")
	}
}

// TestSuiteDeterministicAcrossGOMAXPROCS is the registry's exact-
// determinism acceptance: the mixed suite served at GOMAXPROCS=1 and 8
// must produce identical modelled numbers, down to the last bit.
func TestSuiteDeterministicAcrossGOMAXPROCS(t *testing.T) {
	sc := smallSuiteScenario()
	s := builtSuite(t)
	run := func(procs int) FleetResult {
		old := gort.GOMAXPROCS(procs)
		defer gort.GOMAXPROCS(old)
		res, err := sc.RunSuite(s)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(1)
	b := run(8)
	if a.Makespan != b.Makespan || a.Throughput != b.Throughput ||
		a.P50 != b.P50 || a.P95 != b.P95 || a.Max != b.Max ||
		a.Completed != b.Completed || a.Rejected != b.Rejected {
		t.Fatalf("suite run differs across GOMAXPROCS:\n1: %+v\n8: %+v", a, b)
	}
	for name := range a.Apps {
		if a.Apps[name] != b.Apps[name] {
			t.Fatalf("app %s stats differ across GOMAXPROCS: %+v vs %+v",
				name, a.Apps[name], b.Apps[name])
		}
	}
	// Closed-loop mode must be deterministic too.
	closed := sc
	closed.Closed = true
	c1 := func() FleetResult {
		old := gort.GOMAXPROCS(1)
		defer gort.GOMAXPROCS(old)
		res, err := closed.RunSuite(s)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}()
	c8 := func() FleetResult {
		old := gort.GOMAXPROCS(8)
		defer gort.GOMAXPROCS(old)
		res, err := closed.RunSuite(s)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}()
	if c1.Makespan != c8.Makespan || c1.P95 != c8.P95 {
		t.Fatalf("closed suite run differs across GOMAXPROCS:\n1: %+v\n8: %+v", c1, c8)
	}
}

// TestSuiteSaturationLadder drives the mixed suite through the rate
// ladder: per-app percentiles ride along with every rung and the best
// rung meets the SLO.
func TestSuiteSaturationLadder(t *testing.T) {
	sc := smallSuiteScenario()
	points, best, perApp, err := sc.SaturateSuite(builtSuite(t), []float64{0.64, 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || len(perApp) != 2 {
		t.Fatalf("points %d, perApp %d, want 2 each", len(points), len(perApp))
	}
	if best.Throughput <= 0 {
		t.Fatalf("no SLO-meeting rung: %+v", points)
	}
	for i, m := range perApp {
		if len(m) != len(apps.Names()) {
			t.Fatalf("rung %d: per-app stats %+v", i, m)
		}
	}
	if _, _, _, err := sc.SaturateSuite(nil, nil); err == nil {
		t.Fatal("nil suite accepted")
	}
}

// TestRunDispatchesOnApps: FleetScenario.Run serves the suite when Apps
// is set and validates unknown names.
func TestRunDispatchesOnApps(t *testing.T) {
	sc := smallSuiteScenario()
	sc.Apps = []string{"nope"}
	if _, err := sc.Run(); err == nil {
		t.Fatal("unknown app name accepted")
	}
	if _, err := sc.RunSuite(nil); err == nil {
		t.Fatal("nil suite accepted")
	}
}
