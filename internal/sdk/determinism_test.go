package sdk

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"everest/internal/fleet"
	rt "everest/internal/runtime"
)

// renderTraces wires both trace streams — fleet events and the per-site
// engine events — into one byte stream, then runs the scenario. The fleet
// serializes the two callbacks under a single mutex, so the rendered bytes
// are the exact interleaving the run produced.
func renderTraces(t *testing.T, sc FleetScenario, run func(sc FleetScenario) (FleetResult, error)) []byte {
	t.Helper()
	var buf bytes.Buffer
	sc.Trace = func(ev fleet.Event) {
		fmt.Fprintf(&buf, "F %d %s %s %s %s %.9f %s\n",
			ev.Kind, ev.Site, ev.Tenant, ev.Workflow, ev.Bitstream, ev.Time, ev.Detail)
	}
	sc.EngineTrace = func(site string, ev rt.Event) {
		fmt.Fprintf(&buf, "E %s %d %s %s %s %s %.9f %s\n",
			site, ev.Kind, ev.Workflow, ev.Tenant, ev.Task, ev.Node, ev.Time, ev.Detail)
	}
	res, err := run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("scenario completed no workflows; trace proves nothing")
	}
	if buf.Len() == 0 {
		t.Fatal("no trace events captured")
	}
	return buf.Bytes()
}

// atGOMAXPROCS runs fn with the scheduler width pinned to n.
func atGOMAXPROCS(n int, fn func() []byte) []byte {
	prev := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(prev)
	return fn()
}

// TestFleetScenarioDeterministicTrace pins the PR-6 determinism contract:
// the merged fleet+engine trace stream of the E-fleet scenario must be
// byte-identical whether Go schedules the dispatcher, the fleet router and
// the trace fan-in on one CPU or eight. The heap tie-break (modelled time,
// then workflow id, then task name, then queue index) plus submit-and-wait
// serving leaves the scheduler no freedom to reorder observable events.
// CI runs this under -race, so a racy shortcut in the hot path fails even
// when the bytes happen to match.
func TestFleetScenarioDeterministicTrace(t *testing.T) {
	sc := DefaultFleetScenario()
	c, err := sc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	run := func(sc FleetScenario) (FleetResult, error) { return sc.RunWith(c) }
	ref := atGOMAXPROCS(1, func() []byte { return renderTraces(t, sc, run) })
	for _, procs := range []int{8, 1} {
		got := atGOMAXPROCS(procs, func() []byte { return renderTraces(t, sc, run) })
		if !bytes.Equal(ref, got) {
			t.Fatalf("trace stream diverged at GOMAXPROCS=%d (%d vs %d bytes):\n%s",
				procs, len(ref), len(got), firstDiff(ref, got))
		}
	}
}

// TestAppSuiteDeterministicTrace repeats the byte-identical check over the
// application-suite workload (weather/traffic/energy via the registry),
// which exercises the compiled kernels and per-app routing paths the
// default mix does not.
func TestAppSuiteDeterministicTrace(t *testing.T) {
	sc := DefaultSuiteScenario()
	sc.Workflows = 24 // enough to cycle every app; keeps -race runtime sane
	suite, err := sc.BuildSuite()
	if err != nil {
		t.Fatal(err)
	}
	run := func(sc FleetScenario) (FleetResult, error) { return sc.RunSuite(suite) }
	ref := atGOMAXPROCS(1, func() []byte { return renderTraces(t, sc, run) })
	got := atGOMAXPROCS(8, func() []byte { return renderTraces(t, sc, run) })
	if !bytes.Equal(ref, got) {
		t.Fatalf("suite trace diverged across GOMAXPROCS (%d vs %d bytes):\n%s",
			len(ref), len(got), firstDiff(ref, got))
	}
}

// firstDiff renders the first line where two trace streams disagree.
func firstDiff(a, b []byte) string {
	la, lb := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := 0; i < len(la) && i < len(lb); i++ {
		if !bytes.Equal(la[i], lb[i]) {
			return fmt.Sprintf("line %d:\n  a: %s\n  b: %s", i+1, la[i], lb[i])
		}
	}
	return fmt.Sprintf("streams are prefixes of each other (len %d vs %d lines)", len(la), len(lb))
}
