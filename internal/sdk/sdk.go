// Package sdk is the EVEREST SDK façade (paper §IV): the single point of
// access wrapped by the basecamp command. It composes the data-driven
// compilation framework (ekl → MLIR → HLS → Olympus), the deployment layer
// (bitstream registry + LEXIS-style descriptors), and the virtualized
// runtime (cluster, resource manager, autotuner) — including Server, the
// concurrent multi-tenant workflow front exposed as `basecamp serve`.
package sdk

import (
	"fmt"
	"sort"

	"everest/internal/autotuner"
	"everest/internal/base2"
	"everest/internal/ekl"
	"everest/internal/hls"
	"everest/internal/mlir"
	"everest/internal/olympus"
	"everest/internal/platform"
	"everest/internal/runtime"
	"everest/internal/tensor"
	"everest/internal/variants"
)

// CompileOptions selects the flow configuration for one kernel.
type CompileOptions struct {
	Backend string       // "vitis" or "bambu" (default vitis)
	Format  base2.Format // datapath format (default f32)
	Device  string       // target device name (default alveo-u55c)
	// Olympus holds the system-generation knobs, including the PLM
	// banking assumption (olympus.Options.MemPorts).
	Olympus olympus.Options
}

// CompileResult is everything the flow produced for one kernel.
type CompileResult struct {
	Kernel    *ekl.Kernel
	Module    *mlir.Module // lowered EKL module (ekl -> teil -> affine)
	HLSKernel hls.Kernel
	Report    hls.Report
	Design    *olympus.Design
	PassStats []mlir.PassStat
	// Compiled is the underlying variant-pipeline result: the derived
	// workload model and the cpu1/cpu16/fpga operating points.
	Compiled *variants.Compiled
}

// Compile runs the full data-driven compilation flow of §V on an EKL kernel
// source: parse/check, shape-specialize against the binding, lower through
// the MLIR dialect stack, HLS-schedule, and generate the FPGA system
// architecture. It delegates to the variant-generation pipeline
// (internal/variants), so the result also carries the derived operating
// points that seed the adaptive runtime's tuners.
func Compile(src string, binding ekl.Binding, opt CompileOptions) (*CompileResult, error) {
	c, err := variants.CompileEKL(src, binding, variants.Options{
		Backend: opt.Backend, Format: opt.Format, Device: opt.Device,
		Olympus: opt.Olympus,
	})
	if err != nil {
		return nil, err
	}
	return &CompileResult{
		Kernel: c.Kernel, Module: c.Module, HLSKernel: c.HLSKernel,
		Report: c.Report, Design: c.Design, PassStats: c.PassStats,
		Compiled: c,
	}, nil
}

// GenericBinding synthesizes a valid binding for a kernel from its
// declarations: symbolic dimensions get symDefault, literal dimensions are
// kept, index tensors are zero-filled (always in range), value tensors get
// small deterministic pseudo-random data, and parameters take their
// defaults (or 1 for defaultless iparams, 0.5 otherwise). This is what lets
// `basecamp compile -kernel file.ekl` work without a caller-provided data
// set: the shapes, not the values, drive hardware generation.
func GenericBinding(k *ekl.Kernel, symDefault int) ekl.Binding {
	if symDefault < 2 {
		symDefault = 16
	}
	b := ekl.Binding{
		Tensors: make(map[string]*tensor.Tensor),
		Scalars: make(map[string]float64),
	}
	seed := uint64(0x9e3779b97f4a7c15)
	next := func() float64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return float64(seed%1000)/1000 + 0.001
	}
	for _, in := range k.Inputs {
		shape := make([]int, len(in.Dims))
		for i, d := range in.Dims {
			if d.Sym != "" {
				shape[i] = symDefault
			} else {
				shape[i] = d.Size
			}
		}
		t := tensor.New(shape...)
		if !in.IsIndex {
			for i := range t.Data() {
				t.Data()[i] = next()
			}
		}
		b.Tensors[in.Name] = t
	}
	for _, p := range k.Params {
		switch {
		case p.HasDef:
			b.Scalars[p.Name] = p.Default
		case p.IsInt:
			b.Scalars[p.Name] = 1
		default:
			b.Scalars[p.Name] = 0.5
		}
	}
	return b
}

// SDK bundles the runtime-side state: the bitstream registry and cluster.
type SDK struct {
	Registry *platform.Registry
	Cluster  *platform.Cluster
}

// New builds an SDK instance over a cluster.
func New(cluster *platform.Cluster) *SDK {
	return &SDK{Registry: platform.NewRegistry(), Cluster: cluster}
}

// DefaultCluster builds the paper-like testbed: `n` Xeon nodes with one
// Alveo U55C each, plus one network-attached cloudFPGA node.
func DefaultCluster(n int) *platform.Cluster {
	var nodes []*platform.Node
	for i := 0; i < n; i++ {
		nodes = append(nodes, platform.NewNode(fmt.Sprintf("node%02d", i),
			platform.XeonModel(), platform.AlveoU55C()))
	}
	nodes = append(nodes, platform.NewNode("cloudfpga0", platform.EPYCModel(), platform.CloudFPGA()))
	return platform.NewCluster(nodes...)
}

// Publish stores a compiled design's bitstream in the registry.
func (s *SDK) Publish(res *CompileResult) error {
	return s.Registry.Put(res.Design.Bitstream)
}

// Deploy stages a bitstream onto the named node and returns the staging
// time.
func (s *SDK) Deploy(bitstreamID, node string) (float64, error) {
	bs, err := s.Registry.Get(bitstreamID)
	if err != nil {
		return 0, err
	}
	n := s.Cluster.FindNode(node)
	if n == nil {
		return 0, fmt.Errorf("sdk: unknown node %q", node)
	}
	for idx := range n.Devices {
		if dt, err := n.Program(idx, bs); err == nil {
			return dt, nil
		}
	}
	return 0, fmt.Errorf("sdk: no device on %q fits bitstream %q", node, bitstreamID)
}

// NewScheduler returns a resource manager over the SDK's cluster.
func (s *SDK) NewScheduler(policy runtime.Policy) *runtime.Scheduler {
	return runtime.NewScheduler(s.Cluster, s.Registry, policy)
}

// Placement is one CPU/FPGA allocation choice for a sub-kernel (E10).
type Placement struct {
	Stage   string
	Target  string  // "cpu" or "fpga"
	TimeSec float64 // modelled execution time
}

// StageCost describes one pipeline stage for placement exploration.
type StageCost struct {
	Name        string
	Flops       float64 // software work
	Offloadable bool
	// FPGA costs (only used when Offloadable).
	Kernel   hls.Kernel
	BytesIn  int64
	BytesOut int64
}

// ReconfigSeconds is the modelled bitstream configuration cost an FPGA
// placement pays once per batch in the flexible multi-kernel setting (XRT
// xclbin load, ~120 ms). It is what keeps small batches on the CPU.
const ReconfigSeconds = 0.120

// ExplorePlacement decides, at compile time, where to run each stage of a
// pipeline: it compares the modelled CPU time against the FPGA time
// (including transfers and per-batch reconfiguration) and picks the faster
// target — the §VIII "transparently decide at compile time where to
// allocate the kernels (FPGA or CPU)" exploration.
func ExplorePlacement(stages []StageCost, cpu platform.CPUModel, dev *platform.Device, backend hls.Backend) ([]Placement, error) {
	var out []Placement
	for _, st := range stages {
		cpuTime := cpu.TimeSeconds(st.Flops, st.BytesIn+st.BytesOut, 1)
		choice := Placement{Stage: st.Name, Target: "cpu", TimeSec: cpuTime}
		if st.Offloadable {
			design, err := olympus.Generate(st.Kernel, backend, dev, nil, olympus.Options{
				SharePLM: true, DoubleBuffer: true, Replicate: true, MaxReplicas: 8, PackData: true,
			})
			if err == nil {
				tl, err := platform.Execute(dev, design.Bitstream, platform.Workload{
					BytesIn: st.BytesIn, BytesOut: st.BytesOut, Batches: 4,
				})
				if err == nil && ReconfigSeconds+tl.Total < cpuTime {
					choice = Placement{Stage: st.Name, Target: "fpga", TimeSec: ReconfigSeconds + tl.Total}
				}
			}
		}
		out = append(out, choice)
	}
	return out, nil
}

// TuneTask applies the autotuner's current best configuration to a task's
// knobs — the paper's "possibility of kernel fine-tuning" through the
// Dask-like API (§VI-A). The selected knob values are merged into
// spec.Knobs; existing keys set explicitly by the user are kept.
func TuneTask(at *autotuner.Autotuner, spec *runtime.TaskSpec) autotuner.OperatingPoint {
	sel := at.Select()
	if spec.Knobs == nil {
		spec.Knobs = make(map[string]string, len(sel.Config))
	}
	for k, v := range sel.Config {
		if _, userSet := spec.Knobs[k]; !userSet {
			spec.Knobs[k] = v
		}
	}
	return sel
}

// PlacementSummary renders placements as stable text rows.
func PlacementSummary(ps []Placement) []string {
	rows := make([]string, 0, len(ps))
	for _, p := range ps {
		rows = append(rows, fmt.Sprintf("%-14s -> %-4s (%.3gs)", p.Stage, p.Target, p.TimeSec))
	}
	sort.Strings(rows)
	return rows
}
