package sdk

import (
	"sync"
	"testing"
	"time"

	"everest/internal/runtime"
)

func TestServerConcurrentSubmissions(t *testing.T) {
	const workflows = 12
	s := New(DefaultCluster(4))
	srv := s.NewServer(ServerConfig{Policy: runtime.PolicyHEFT})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	subs := make([]*Submission, workflows)
	for i := 0; i < workflows; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := []string{"wrf", "traffic", "energy"}[i%3]
			sub, err := srv.Submit(tenant, "", SyntheticWorkflow(i))
			if err != nil {
				t.Error(err)
				return
			}
			subs[i] = sub
		}(i)
	}
	wg.Wait()
	for i, sub := range subs {
		if sub == nil {
			t.Fatalf("submission %d missing", i)
		}
		sched, err := sub.Wait()
		if err != nil {
			t.Fatalf("workflow %d: %v", i, err)
		}
		if len(sched.Assignments) == 0 || sched.Makespan <= 0 {
			t.Errorf("workflow %d: empty schedule %+v", i, sched)
		}
	}
	stats := srv.Shutdown()
	if stats.Submitted != workflows || stats.Completed != workflows || stats.Failed != 0 {
		t.Errorf("stats = %+v, want %d submitted+completed", stats, workflows)
	}
	if len(stats.Tenants) != 3 {
		t.Errorf("tenant stats = %v, want 3 tenants", stats.Tenants)
	}
	for name, ts := range stats.Tenants {
		if ts.Submitted != ts.Completed || ts.Completed != workflows/3 {
			t.Errorf("tenant %s: %+v, want %d completed", name, ts, workflows/3)
		}
	}
}

// TestServerThroughputSpeedup is the acceptance check of the concurrent
// runtime: N=8 concurrent workflows must finish (in modelled time) at least
// 2x faster than the same workflows run back-to-back through the serial
// planner.
func TestServerThroughputSpeedup(t *testing.T) {
	const workflows = 8
	ws := make([]*runtime.Workflow, workflows)
	for i := range ws {
		ws[i] = SyntheticWorkflow(i)
	}
	// 8 compute nodes: wide enough that serial back-to-back execution leaves
	// most of the cluster idle, which is exactly the capacity the engine's
	// multiplexing reclaims.
	s := New(DefaultCluster(8))
	serial, err := s.SerialMakespan(runtime.PolicyHEFT, ws...)
	if err != nil {
		t.Fatal(err)
	}

	// Pre-load the full batch before Start so the engine drains the queued
	// submissions together (round-robin), which keeps run-to-run placement
	// variance small.
	srv := s.NewServer(ServerConfig{Policy: runtime.PolicyHEFT})
	subs := make([]*Submission, workflows)
	for i := range ws {
		// Fresh workflows: the serial planner left the originals untouched,
		// but the engine forbids reuse after submission by contract.
		sub, err := srv.Submit("bench", "", SyntheticWorkflow(i))
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = sub
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	for _, sub := range subs {
		if _, err := sub.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	stats := srv.Shutdown()
	if stats.Makespan <= 0 {
		t.Fatal("server makespan must be positive")
	}
	speedup := serial / stats.Makespan
	t.Logf("serial %.3gs, concurrent %.3gs, speedup %.2fx", serial, stats.Makespan, speedup)
	if speedup < 2 {
		t.Errorf("multiplexing speedup %.2fx, want >= 2x", speedup)
	}
}

func TestServerConcurrencyLimit(t *testing.T) {
	const workflows = 10
	s := New(DefaultCluster(2))
	srv := s.NewServer(ServerConfig{Policy: runtime.PolicyHEFT, MaxConcurrent: 2})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	subs := make([]*Submission, workflows)
	for i := 0; i < workflows; i++ {
		sub, err := srv.Submit("t", "", SyntheticWorkflow(i))
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = sub
	}
	for i, sub := range subs {
		if _, err := sub.Wait(); err != nil {
			t.Fatalf("workflow %d: %v", i, err)
		}
	}
	stats := srv.Shutdown()
	if stats.Completed != workflows {
		t.Errorf("completed %d, want %d", stats.Completed, workflows)
	}
}

func TestServerFailureRecovery(t *testing.T) {
	s := New(DefaultCluster(3))
	srv := s.NewServer(ServerConfig{
		Policy:   runtime.PolicyHEFT,
		Failures: []runtime.NodeFailure{{Node: "node00", AtTime: 0.0005}},
	})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	var subs []*Submission
	for i := 0; i < 6; i++ {
		sub, err := srv.Submit("t", "", SyntheticWorkflow(i))
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub)
	}
	restarts := 0
	for i, sub := range subs {
		sched, err := sub.Wait()
		if err != nil {
			t.Fatalf("workflow %d must survive a single node failure: %v", i, err)
		}
		for _, a := range sched.Assignments {
			if a.Node == "node00" && a.End > 0.0005 {
				t.Errorf("workflow %d ran %s on the dead node", i, a.Task)
			}
			if a.Restart {
				restarts++
			}
		}
	}
	srv.Shutdown()
	if restarts == 0 {
		t.Error("the injected failure must cause at least one restart across the batch")
	}
}

func TestServerSubmitErrors(t *testing.T) {
	s := New(DefaultCluster(1))
	srv := s.NewServer(ServerConfig{})
	if _, err := srv.Submit("t", "", nil); err == nil {
		t.Error("nil workflow must fail")
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err == nil {
		t.Error("double start must fail")
	}
	srv.Shutdown()
	if _, err := srv.Submit("t", "", SyntheticWorkflow(0)); err == nil {
		t.Error("submit after shutdown must fail")
	}
}

func TestServerShutdownWithoutStartDrains(t *testing.T) {
	// Forgetting Start must not hang Shutdown or the submission's waiter:
	// Shutdown brings the engine up, drains the queued workflow, then stops.
	s := New(DefaultCluster(1))
	srv := s.NewServer(ServerConfig{})
	sub, err := srv.Submit("t", "", SyntheticWorkflow(0))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan ServerStats, 1)
	go func() { done <- srv.Shutdown() }()
	select {
	case stats := <-done:
		if stats.Completed != 1 {
			t.Errorf("queued workflow must complete during shutdown, stats %+v", stats)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown hung on a never-started server")
	}
	if _, err := sub.Wait(); err != nil {
		t.Errorf("queued submission must resolve: %v", err)
	}
}

func TestSyntheticWorkflowShapes(t *testing.T) {
	sizes := map[int]int{0: 3, 1: 6, 2: 4}
	for i := 0; i < 9; i++ {
		w := SyntheticWorkflow(i)
		if w.Len() != sizes[i%3] {
			t.Errorf("workflow %d has %d tasks, want %d", i, w.Len(), sizes[i%3])
		}
	}
}

// TestServerControlAPIForwards covers the engine control wrappers: the
// server-level unplug/plug/slowdown calls flip platform state and reject
// unknown nodes.
func TestServerControlAPIForwards(t *testing.T) {
	s := New(DefaultCluster(2))
	srv := s.NewServer(ServerConfig{})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	if err := srv.UnplugDevice("node00", 0, 0.1); err != nil {
		t.Fatal(err)
	}
	if s.Cluster.Nodes[0].DeviceOnline(0) {
		t.Fatal("device should be detached")
	}
	if err := srv.PlugDevice("node00", 0, 0.2); err != nil {
		t.Fatal(err)
	}
	if !s.Cluster.Nodes[0].DeviceOnline(0) {
		t.Fatal("device should be reattached")
	}
	if err := srv.SetNodeSlowdown("node01", 2.5, 0.3); err != nil {
		t.Fatal(err)
	}
	if got := s.Cluster.Nodes[1].Slowdown(); got != 2.5 {
		t.Fatalf("slowdown = %g, want 2.5", got)
	}
	for _, err := range []error{
		srv.UnplugDevice("ghost", 0, 0),
		srv.PlugDevice("ghost", 0, 0),
		srv.SetNodeSlowdown("ghost", 2, 0),
	} {
		if err == nil {
			t.Fatal("unknown node accepted by control API")
		}
	}
	sub, err := srv.Submit("t0", "", SyntheticWorkflow(0))
	if err != nil {
		t.Fatal(err)
	}
	<-sub.Done()
	if _, err := sub.Wait(); err != nil {
		t.Fatal(err)
	}
}
