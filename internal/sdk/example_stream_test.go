package sdk_test

import (
	"fmt"

	"everest/internal/sdk"
)

// ExampleStreamServer serves a scaled-down E-stream feed: the traffic and
// energy applications as long-lived windowed pipelines, kernels resident
// in FPGA partial-reconfiguration regions. Modelled-time serving makes
// every counter exactly reproducible, which is what lets an Example
// assert the output verbatim.
func ExampleStreamServer() {
	sc := sdk.DefaultStreamScenario()
	sc.Events = 5000 // per pipeline; the default scenario serves 250000
	srv, err := sdk.NewStreamServer(sc)
	if err != nil {
		panic(err)
	}
	st, err := srv.Run()
	if err != nil {
		panic(err)
	}
	fmt.Printf("served %d/%d events, shed %d, kernel swaps %d\n",
		st.Done, st.Events, st.Shed, st.Swaps)
	fmt.Printf("p99 within the %.2fs SLO: %v\n", sc.SLO, st.P99 <= sc.SLO)
	for _, p := range st.Pipelines {
		fmt.Printf("  %s (%s): %d done\n", p.Name, p.Tenant, p.Done)
	}
	// Output:
	// served 20000/20000 events, shed 0, kernel swaps 0
	// p99 within the 0.25s SLO: true
	//   energy00 (guaranteed): 5000 done
	//   traffic01 (besteffort): 5000 done
	//   energy02 (guaranteed): 5000 done
	//   traffic03 (besteffort): 5000 done
}
