package sdk

import (
	"fmt"

	"everest/internal/hls"
	"everest/internal/platform"
	"everest/internal/runtime"
	"everest/internal/virt"
)

// This file wires the adaptive loop's outer layers: scripted environment
// faults for experiments (Fault), the virt→engine bridge that turns SR-IOV
// hot-plug notifications into engine control events (AttachHypervisor),
// and the FPGA-leaning synthetic workload the adaptive-placement
// experiment schedules (AdaptiveWorkflow).

// Fault is one scripted environment event — the kinds are the engine's
// runtime.EnvEventKind values — triggered after AfterTasks task
// completions have been observed engine-wide. Completion-count triggers
// surprise a running engine under any scheduling interleaving; for the
// deterministic modelled-time form use ServerConfig.Events instead.
type Fault struct {
	Kind       runtime.EnvEventKind
	AfterTasks int // fire when this many tasks have completed
	Node       string
	Device     int     // EnvUnplug / EnvPlug
	Factor     float64 // EnvSlowdown (1 restores nominal speed)
}

// faultDriver wraps a trace callback with the fault script: it counts
// task completions and injects each fault once its trigger is reached.
// It runs on the engine's dispatcher goroutine; the engine control calls
// below only flip platform state and enqueue a control message, so they
// are safe (and non-blocking) from there.
func (srv *Server) faultDriver(faults []Fault, user func(runtime.Event)) func(runtime.Event) {
	pending := append([]Fault(nil), faults...)
	done := 0
	return func(ev runtime.Event) {
		if ev.Kind == runtime.EventTaskDone {
			done++
			kept := pending[:0]
			for _, f := range pending {
				if done < f.AfterTasks {
					kept = append(kept, f)
					continue
				}
				var err error
				switch f.Kind {
				case runtime.EnvUnplug:
					err = srv.eng.UnplugDevice(f.Node, f.Device, ev.Time)
				case runtime.EnvPlug:
					err = srv.eng.PlugDevice(f.Node, f.Device, ev.Time)
				case runtime.EnvSlowdown:
					err = srv.eng.SetNodeSlowdown(f.Node, f.Factor, ev.Time)
				}
				_ = err // a scripted fault on an unknown node is a no-op
			}
			pending = kept
		}
		if user != nil {
			user(ev)
		}
	}
}

// AttachHypervisor subscribes the server's engine to a hypervisor's
// hot-plug notifications, closing the virt side of the adaptation loop:
// when the last VF of a device is unplugged the accelerator disappears
// from the engine's world (placements invalidate, the fpga variant
// degrades), and the first replugged VF brings it back. clock, when set,
// supplies the modelled time stamped on the engine events. Hypervisors may
// attach before Start: the engine's ownership reset at Start discards the
// events delivered so far, so Start re-derives each device's attachment
// from the hypervisor's current VF state.
func (srv *Server) AttachHypervisor(h *virt.Hypervisor, clock func() float64) {
	srv.mu.Lock()
	srv.hyps = append(srv.hyps, h)
	srv.mu.Unlock()
	h.Subscribe(func(ev virt.HotplugEvent) {
		at := 0.0
		if clock != nil {
			at = clock()
		}
		switch {
		case ev.Kind == virt.VFUnplugged && ev.AssignedVFs == 0:
			_ = srv.eng.UnplugDevice(ev.Node, ev.Device, at)
		case ev.Kind == virt.VFPlugged && ev.AssignedVFs == 1:
			_ = srv.eng.PlugDevice(ev.Node, ev.Device, at)
		}
	})
}

// syncHypervisors re-derives device attachment from each attached
// hypervisor's current VF state (Server.Start, after the engine's
// ownership reset marked everything attached): a device whose guests hold
// no VF while guests exist is unreachable, exactly as if its last VF had
// just been unplugged.
func (srv *Server) syncHypervisors() {
	srv.mu.Lock()
	hyps := append([]*virt.Hypervisor(nil), srv.hyps...)
	srv.mu.Unlock()
	for _, h := range hyps {
		st := h.Query()
		if len(st.VMs) == 0 {
			continue // no guests: host-side access, devices stay attached
		}
		for dev, n := range st.AssignedVFs {
			if n == 0 {
				_ = srv.eng.UnplugDevice(st.Node, dev, 0)
			}
		}
	}
}

// AdaptiveWorkflow returns a deterministic FPGA-leaning workflow for the
// adaptive-placement experiment: a prep stage feeding two offloadable
// compute stages and a software post stage. The offload weight is what
// makes placement react to hot-plug faults; index i varies the task sizes
// like SyntheticWorkflow does.
func AdaptiveWorkflow(i int, bitstreamID string) *runtime.Workflow {
	w := runtime.NewWorkflow()
	must := func(spec runtime.TaskSpec) {
		if err := w.Submit(spec); err != nil {
			panic(fmt.Sprintf("sdk: adaptive workflow %d: %v", i, err))
		}
	}
	scale := 1 + float64(i%3)/2
	must(runtime.TaskSpec{Name: "prep", Flops: 2e9 * scale, OutputBytes: 1 << 22})
	for _, name := range []string{"mc0", "mc1"} {
		must(runtime.TaskSpec{
			Name: name, Deps: []string{"prep"},
			Flops: 4e10 * scale, InputBytes: 1 << 22, OutputBytes: 1 << 20,
			NeedsFPGA: true, BitstreamID: bitstreamID,
		})
	}
	must(runtime.TaskSpec{Name: "post", Deps: []string{"mc0", "mc1"},
		Flops: 1e9, InputBytes: 1 << 21})
	return w
}

// AdaptiveScenario bundles one run of the adaptive-placement experiment:
// the same workflows, faults, and cluster served twice — statically and
// adaptively — so the two makespans are directly comparable.
type AdaptiveScenario struct {
	Workflows int
	Nodes     int // compute nodes (DefaultCluster adds cloudfpga0)
	FPGANodes int // nodes the bitstream is staged on (prefix of the cluster)
	Tenants   int
	Slowdown  float64 // load factor hitting the last compute node
	FaultAt   float64 // modelled time both faults take effect
}

// DefaultAdaptiveScenario is the E-adapt configuration: an unplug of one
// of two accelerators plus a 6x slowdown of one software node, both
// effective mid-run in modelled time.
func DefaultAdaptiveScenario() AdaptiveScenario {
	return AdaptiveScenario{Workflows: 8, Nodes: 4, FPGANodes: 2, Tenants: 2, Slowdown: 6, FaultAt: 0.1}
}

// ScenarioResult is one serving run of the scenario.
type ScenarioResult struct {
	Stats    ServerStats
	Makespan float64
	Health   []platform.NodeHealth // monitor snapshot after the run
}

// Run serves the scenario's workflows once. adaptive selects the engine
// mode; everything else — cluster shape, staged bitstreams, workflows, and
// the fault script — is identical across modes, so the makespan ratio
// isolates the value of adaptation. The faults are scripted as modelled-
// time condition timelines (engine Events): from FaultAt onward the first
// FPGA node's accelerator is detached and the last compute node is slowed,
// and execution prices each task by the state at its own modelled start —
// deterministic under any goroutine interleaving, which is what lets CI
// gate the resulting speedup.
func (sc AdaptiveScenario) Run(adaptive bool) (ScenarioResult, error) {
	if sc.Workflows < 1 || sc.Nodes < 2 || sc.FPGANodes < 1 || sc.FPGANodes > sc.Nodes {
		return ScenarioResult{}, fmt.Errorf("sdk: bad adaptive scenario %+v", sc)
	}
	if sc.Slowdown < 1 {
		// The platform clamps factors below 1 to nominal; rejecting them
		// here keeps the printed fault script honest.
		return ScenarioResult{}, fmt.Errorf("sdk: adaptive scenario slowdown %g must be >= 1", sc.Slowdown)
	}
	s := New(DefaultCluster(sc.Nodes))
	bs := ScenarioBitstream()
	if err := s.Registry.Put(bs); err != nil {
		return ScenarioResult{}, err
	}
	bsID := bs.ID
	for i := 0; i < sc.FPGANodes; i++ {
		if _, err := s.Deploy(bsID, s.Cluster.Nodes[i].Name); err != nil {
			return ScenarioResult{}, err
		}
	}

	events := []runtime.EnvEvent{
		{Kind: runtime.EnvUnplug, Node: s.Cluster.Nodes[0].Name, Device: 0, At: sc.FaultAt},
		{Kind: runtime.EnvSlowdown, Node: s.Cluster.Nodes[sc.Nodes-1].Name, Factor: sc.Slowdown, At: sc.FaultAt},
	}
	srv := s.NewServer(ServerConfig{Policy: runtime.PolicyHEFT, Adaptive: adaptive, Events: events})
	tenants := sc.Tenants
	if tenants < 1 {
		tenants = 1
	}
	if err := srv.Start(); err != nil {
		return ScenarioResult{}, err
	}
	// Workflows are served one at a time: node clocks and placements then
	// advance in a single deterministic modelled sequence, so the measured
	// makespan is identical under any goroutine interleaving — the
	// adaptation benchmark isolates adaptation, not multiplexing (which
	// BenchmarkConcurrentWorkflows measures, with interleaving variance).
	for i := 0; i < sc.Workflows; i++ {
		sub, err := srv.Submit(fmt.Sprintf("tenant%02d", i%tenants), "", AdaptiveWorkflow(i, bsID))
		if err != nil {
			return ScenarioResult{}, err
		}
		if _, err := sub.Wait(); err != nil {
			return ScenarioResult{}, fmt.Errorf("sdk: scenario workflow %d: %w", i, err)
		}
	}
	stats := srv.Shutdown()
	return ScenarioResult{
		Stats: stats, Makespan: stats.Makespan,
		Health: srv.Monitor().Snapshot(),
	}, nil
}

// ScenarioBitstream returns the deployable artifact the adaptive scenario
// stages: a replicated, double-buffered Monte-Carlo kernel sized for an
// Alveo U55C. It is architecturally equivalent to what the compile flow
// produces for the PTDR kernel; synthesizing it directly keeps scenario
// setup out of the measured path.
func ScenarioBitstream() platform.Bitstream {
	return platform.Bitstream{
		ID: "bs-adapt-mc", Kernel: "ptdr-mc", Target: "alveo-u55c",
		Report: hls.Report{
			LatencyCycle: 1 << 19, II: 1, IterLatency: 12,
			Resources: hls.Resources{LUT: 60000, FF: 72000, DSP: 160, BRAM: 96},
			ClockMHz:  300,
		},
		Config: platform.SystemConfig{
			Replicas: 4, BusWidthBits: 512, Lanes: 4, PackedElements: 8,
			DoubleBuffered: true, PLMBytes: 1 << 18,
		},
		ElemBits: 64,
	}
}
