package sdk

import (
	"fmt"
	gort "runtime"
	"sort"
	"strings"
	"testing"

	"everest/internal/fleet"
)

// smallKMeans keeps the scenario tests fast: 4 partitions over 2 sites,
// 2 rounds, default kernel shapes.
func smallKMeans() KMeansScenario {
	sc := DefaultKMeansScenario()
	sc.Sites = 2
	sc.Rounds = 2
	sc.Config.Partitions = 4
	return sc
}

func TestKMeansScenarioArms(t *testing.T) {
	sc := smallKMeans()
	local, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	sc.PlacementBlind = true
	blind, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Every round serves one map per partition plus a reduce, both arms.
	want := sc.Rounds * (sc.Config.Partitions + 1)
	if local.Workflows != want || blind.Workflows != want {
		t.Fatalf("workflows local=%d blind=%d, want %d", local.Workflows, blind.Workflows, want)
	}
	// The contrast the benchmark gates: locality pricing ships only the
	// tiny per-cluster partials, the blind arm ships point partitions.
	if local.ShippedBytes == 0 || blind.ShippedBytes == 0 {
		t.Fatalf("shipped bytes local=%d blind=%d, want both arms nonzero", local.ShippedBytes, blind.ShippedBytes)
	}
	win := blind.BytesPerWorkflow / local.BytesPerWorkflow
	if win < 1.5 {
		t.Fatalf("byte win %.2fx below the 1.5x acceptance floor (local %d B, blind %d B)",
			win, local.ShippedBytes, blind.ShippedBytes)
	}
	if local.DatasetHits == 0 {
		t.Fatal("locality arm never hit a site dataset store")
	}
	if local.Makespan <= 0 || local.Throughput <= 0 {
		t.Fatalf("degenerate timeline: makespan=%g throughput=%g", local.Makespan, local.Throughput)
	}
	// Data staged on serve paths must be accounted stall, and vice versa.
	if (local.ShippedBytes > 0) != (local.FetchStall > 0) {
		t.Fatalf("locality arm: %d B shipped but %g s stall", local.ShippedBytes, local.FetchStall)
	}
}

// TestKMeansScenarioDeterminism renders both arms' full fleet traces at
// GOMAXPROCS 1 and 8 under whatever -race setting the run has. Sites are
// independent serving goroutines, so the emission interleaving across
// sites is host-schedule noise; the canonical (sorted) event set and
// every aggregate must still be byte-identical — each event carries its
// modelled time, so a single drifting stall would show up.
func TestKMeansScenarioDeterminism(t *testing.T) {
	render := func(blind bool) string {
		sc := smallKMeans()
		sc.PlacementBlind = blind
		var lines []string
		sc.Trace = func(e fleet.Event) {
			lines = append(lines, fmt.Sprintf("%d %s %s %s %s %.9f %s\n",
				e.Kind, e.Site, e.Tenant, e.Workflow, e.Bitstream, e.Time, e.Detail))
		}
		res, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		sort.Strings(lines)
		return strings.Join(lines, "") + fmt.Sprintf("wf=%d shipped=%d makespan=%.9f hits=%d misses=%d\n",
			res.Workflows, res.ShippedBytes, res.Makespan, res.DatasetHits, res.DatasetMisses)
	}
	for _, blind := range []bool{false, true} {
		prev := gort.GOMAXPROCS(1)
		one := render(blind)
		gort.GOMAXPROCS(8)
		eight := render(blind)
		gort.GOMAXPROCS(prev)
		if one != eight {
			t.Errorf("blind=%v: trace differs between GOMAXPROCS 1 and 8", blind)
		}
	}
}
