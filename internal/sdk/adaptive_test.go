package sdk

import (
	"testing"

	"everest/internal/runtime"
	"everest/internal/virt"
)

func TestAdaptiveScenarioValidation(t *testing.T) {
	bad := []AdaptiveScenario{
		{Workflows: 0, Nodes: 4, FPGANodes: 1},
		{Workflows: 1, Nodes: 1, FPGANodes: 1},
		{Workflows: 1, Nodes: 4, FPGANodes: 0},
		{Workflows: 1, Nodes: 4, FPGANodes: 5},
		{Workflows: 1, Nodes: 4, FPGANodes: 1, Slowdown: 0.5},
	}
	for _, sc := range bad {
		if _, err := sc.Run(true); err == nil {
			t.Errorf("scenario %+v must fail validation", sc)
		}
	}
}

// TestAdaptiveBeatsStaticUnderFaults is the E-adapt acceptance claim: the
// same workloads, cluster, and mid-run faults (accelerator unplug + node
// slowdown), served adaptively, finish at least 1.3x sooner than under
// static placement.
func TestAdaptiveBeatsStaticUnderFaults(t *testing.T) {
	sc := DefaultAdaptiveScenario()
	static, err := sc.Run(false)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := sc.Run(true)
	if err != nil {
		t.Fatal(err)
	}
	if static.Stats.Completed != sc.Workflows || adaptive.Stats.Completed != sc.Workflows {
		t.Fatalf("completions: static %d adaptive %d, want %d",
			static.Stats.Completed, adaptive.Stats.Completed, sc.Workflows)
	}
	speedup := static.Makespan / adaptive.Makespan
	if speedup < 1.3 {
		t.Fatalf("adaptive speedup %.2fx (static %.3gs, adaptive %.3gs), want >= 1.3x",
			speedup, static.Makespan, adaptive.Makespan)
	}
	// The adaptive run reports per-tenant variant counts; the static run
	// must not (it never consults the tuner) but records its fallbacks.
	for name, ts := range adaptive.Stats.Tenants {
		if len(ts.Variants) == 0 {
			t.Errorf("tenant %s has no variant stats", name)
		}
	}
	staticFallbacks := 0
	for _, ts := range static.Stats.Tenants {
		if len(ts.Variants) != 0 {
			t.Errorf("static run reported variants: %+v", ts.Variants)
		}
		staticFallbacks += ts.Fallbacks
	}
	if staticFallbacks == 0 {
		t.Error("static run under an unplug must pay FPGA fallbacks")
	}
}

// TestServerFaultScript checks the completion-count trigger fires each
// fault exactly once and the health snapshot reflects it.
func TestServerFaultScript(t *testing.T) {
	s := New(DefaultCluster(2))
	slowNode := s.Cluster.Nodes[1].Name
	srv := s.NewServer(ServerConfig{
		Policy: runtime.PolicyHEFT,
		Faults: []Fault{{Kind: runtime.EnvSlowdown, AfterTasks: 2, Node: slowNode, Factor: 4}},
	})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		sub, err := srv.Submit("t", "", SyntheticWorkflow(0))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sub.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	srv.Shutdown()
	if got := s.Cluster.FindNode(slowNode).Slowdown(); got != 4 {
		t.Errorf("slowdown after fault script = %g, want 4", got)
	}
	snap := srv.Monitor().Snapshot()
	if len(snap) != len(s.Cluster.Nodes) {
		t.Fatalf("snapshot covers %d nodes, want %d", len(snap), len(s.Cluster.Nodes))
	}
}

// TestAttachHypervisor drives the full virt→engine path: unplugging the
// last VF detaches the device from the engine's world, replugging restores
// it.
func TestAttachHypervisor(t *testing.T) {
	s := New(DefaultCluster(2))
	bs := ScenarioBitstream()
	if err := s.Registry.Put(bs); err != nil {
		t.Fatal(err)
	}
	node := s.Cluster.Nodes[0]
	if _, err := s.Deploy(bs.ID, node.Name); err != nil {
		t.Fatal(err)
	}
	hyp, err := virt.NewHypervisor(node, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hyp.DefineVM("guest", 4); err != nil {
		t.Fatal(err)
	}
	if _, err := hyp.PlugVF("guest", 0); err != nil {
		t.Fatal(err)
	}

	srv := s.NewServer(ServerConfig{Policy: runtime.PolicyHEFT, Adaptive: true})
	srv.AttachHypervisor(hyp, nil)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	// Engine start resets attachment state; the VF is still plugged, so the
	// device starts online.
	if !node.DeviceOnline(0) {
		t.Fatal("device must start online")
	}
	srv.Shutdown()

	// Pre-Start desync case: the last VF is unplugged before Start, so the
	// ownership reset would mark the device attached — Start must re-derive
	// the detached state from the hypervisor's VF table.
	if _, err := hyp.UnplugVF("guest", 0); err != nil {
		t.Fatal(err)
	}
	srv = s.NewServer(ServerConfig{Policy: runtime.PolicyHEFT, Adaptive: true})
	srv.AttachHypervisor(hyp, nil)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	if node.DeviceOnline(0) {
		t.Fatal("device unplugged before Start must come up detached")
	}
	// Restore the VF so the live unplug/replug sequence below starts from
	// an attached device.
	if _, err := hyp.PlugVF("guest", 0); err != nil {
		t.Fatal(err)
	}
	if !node.DeviceOnline(0) {
		t.Fatal("replug must reattach the device")
	}
	if _, err := hyp.UnplugVF("guest", 0); err != nil {
		t.Fatal(err)
	}
	if node.DeviceOnline(0) {
		t.Error("unplugging the last VF must detach the device")
	}
	if _, err := hyp.PlugVF("guest", 0); err != nil {
		t.Fatal(err)
	}
	if !node.DeviceOnline(0) {
		t.Error("replugging the first VF must reattach the device")
	}
	srv.Shutdown()
}
