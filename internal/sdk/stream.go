package sdk

import (
	"fmt"

	"everest/internal/apps"
	"everest/internal/platform"
	"everest/internal/runtime"
	"everest/internal/stream"
)

// This file is the SDK face of the streaming tier (internal/stream): the
// E-stream scenario turns the registered EVEREST use-case applications
// into long-lived sensor-feed pipelines — each app's DAG stages become
// windowed operators, its compiled kernels stay resident in FPGA partial-
// reconfiguration regions — and StreamServer sweeps the offered event
// rate to find the sustained events/sec the cluster serves inside the p99
// latency SLO, the capacity number BenchmarkStreamThroughput gates in CI.

// StreamScenario configures one E-stream serving run: a million-sensor
// traffic/energy feed over a small shared cluster.
type StreamScenario struct {
	// Nodes is the compute-node count (DefaultCluster shape: adds one
	// cloudFPGA node; default 1, so the suite's distinct kernels contend
	// for two FPGAs and kernel residency matters).
	Nodes int
	// Apps names the workload-registry applications served as pipelines
	// (default traffic + energy, the paper's continuous feeds).
	Apps []string
	// Pipelines is the number of concurrent pipelines, assigned round-robin
	// over Apps (default 2x len(Apps)).
	Pipelines int
	// Events is the event budget per pipeline (default 250000; the default
	// four pipelines then sum to the million-event feed).
	Events int
	// Rate is the per-pipeline mean arrival rate in events per modelled
	// second (default 4000, just inside the energy featurize stage's
	// ~4300 ev/s software capacity — the suite's bottleneck operator).
	Rate float64
	// Arrival picks the arrival process: "poisson" (default), "bursty", or
	// "diurnal" (stream.NewArrivals).
	Arrival string
	// WindowEvents closes an operator window at this many events
	// (default 64); WindowSeconds age-flushes undersized windows
	// (default 0.05).
	WindowEvents  int
	WindowSeconds float64
	// QueueWindows bounds each inter-stage queue (stream.Config; default 4).
	QueueWindows int
	// PartialReconfig keeps several kernels resident per device in PR
	// region slots; off, every kernel alternation reprograms a whole card.
	PartialReconfig bool
	// SLO is the p99 end-to-end event latency target in modelled seconds
	// (default 0.25).
	SLO float64
	// Seed drives the arrival processes (default 1).
	Seed uint64
	// Trace receives stream events during runs when set.
	Trace func(stream.Event)
}

// DefaultStreamScenario is the E-stream configuration: four pipelines —
// traffic map-matching and energy prediction, alternating guaranteed
// (Block) and best-effort (Shed) tenants — totalling one million events
// over one compute node plus the cloudFPGA node, with partial
// reconfiguration on so the three distinct kernels stay resident across
// two FPGAs.
func DefaultStreamScenario() StreamScenario {
	return StreamScenario{
		Nodes:           1,
		Apps:            []string{"traffic", "energy"},
		Pipelines:       4,
		Events:          250000,
		Rate:            4000,
		WindowEvents:    64,
		WindowSeconds:   0.05,
		PartialReconfig: true,
		SLO:             0.25,
		Seed:            1,
	}
}

// withDefaults fills zero fields.
func (sc StreamScenario) withDefaults() StreamScenario {
	if sc.Nodes < 1 {
		sc.Nodes = 1
	}
	if len(sc.Apps) == 0 {
		sc.Apps = []string{"traffic", "energy"}
	}
	if sc.Pipelines <= 0 {
		sc.Pipelines = 2 * len(sc.Apps)
	}
	if sc.Events <= 0 {
		sc.Events = 250000
	}
	if sc.Rate <= 0 {
		sc.Rate = 4000
	}
	if sc.WindowEvents <= 0 {
		sc.WindowEvents = 64
	}
	if sc.WindowSeconds == 0 {
		sc.WindowSeconds = 0.05
	}
	if sc.SLO <= 0 {
		sc.SLO = 0.25
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	return sc
}

// StreamServer serves the E-stream scenario: the application suite is
// compiled once (shared across the rate ladder), each app's DAG is
// linearized into per-event windowed operators, and every run builds a
// fresh cluster so device residency starts cold.
type StreamServer struct {
	sc    StreamScenario
	suite *apps.Suite
	// stages caches each app's derived operator chain; the per-run pipeline
	// specs only vary arrivals, policy, and budget around them.
	stages map[string][]stream.StageSpec
}

// NewStreamServer compiles the scenario's applications and derives their
// streaming operator chains.
func NewStreamServer(sc StreamScenario) (*StreamServer, error) {
	sc = sc.withDefaults()
	switch sc.Arrival {
	case "", "poisson", "bursty", "diurnal":
	default:
		return nil, fmt.Errorf("sdk: unknown arrival process %q (want poisson, bursty, or diurnal)", sc.Arrival)
	}
	suite, err := apps.BuildSuite(apps.DefaultOptions(), sc.Apps...)
	if err != nil {
		return nil, err
	}
	s := &StreamServer{sc: sc, suite: suite, stages: make(map[string][]stream.StageSpec)}
	for _, a := range suite.Apps {
		chain, err := appStages(a)
		if err != nil {
			return nil, err
		}
		s.stages[a.Name] = chain
	}
	return s, nil
}

// Scenario returns the server's effective (defaulted) scenario.
func (s *StreamServer) Scenario() StreamScenario { return s.sc }

// appStages linearizes an application's DAG into a streaming operator
// chain: tasks in submission (dependency) order, batch costs divided by
// the app's BatchEvents, and every accelerable stage carrying its
// compiled bitstream with the FPGA operating-point latency amortized per
// event.
func appStages(a *apps.App) ([]stream.StageSpec, error) {
	if a.BatchEvents <= 0 {
		return nil, fmt.Errorf("sdk: app %s declares no batch event count", a.Name)
	}
	batch := float64(a.BatchEvents)
	w := a.Workflow(0)
	var chain []stream.StageSpec
	for _, name := range w.Tasks() {
		spec, _ := w.Get(name)
		st := stream.StageSpec{
			Name:          name,
			FlopsPerEvent: spec.Flops / batch,
			BytesPerEvent: (spec.InputBytes + spec.OutputBytes) / int64(a.BatchEvents),
			Cores:         spec.Cores,
		}
		if c, ok := a.Kernel(name); ok {
			if p, ok := c.Point(runtime.VariantFPGA); ok {
				st.Bitstream = c.Design.Bitstream
				st.FPGASecondsPerEvent = p.LatencySeconds / batch
				// Software fallback cost if the device detaches mid-run.
				st.FlopsPerEvent = c.Flops / batch
				st.BytesPerEvent = (c.InputBytes + c.OutputBytes) / int64(a.BatchEvents)
			}
		}
		chain = append(chain, st)
	}
	if len(chain) == 0 {
		return nil, fmt.Errorf("sdk: app %s has no stages", a.Name)
	}
	return chain, nil
}

// Pipelines builds the scenario's pipeline specs at a per-pipeline rate:
// apps round-robin across pipelines, tenants alternate guaranteed (Block)
// and best-effort (Shed), and each pipeline draws an independent seeded
// arrival process.
func (s *StreamServer) Pipelines(rate float64) []stream.PipelineSpec {
	specs := make([]stream.PipelineSpec, s.sc.Pipelines)
	for i := range specs {
		a := s.suite.Apps[i%len(s.suite.Apps)]
		policy, tenant := stream.Block, "guaranteed"
		if i%2 == 1 {
			policy, tenant = stream.Shed, "besteffort"
		}
		specs[i] = stream.PipelineSpec{
			Name:          fmt.Sprintf("%s%02d", a.Name, i),
			Tenant:        tenant,
			Policy:        policy,
			Arrivals:      stream.NewArrivals(s.sc.Arrival, rate, s.sc.Seed*1000+uint64(i)),
			Events:        s.sc.Events,
			WindowEvents:  s.sc.WindowEvents,
			WindowSeconds: s.sc.WindowSeconds,
			Stages:        s.stages[a.Name],
		}
	}
	return specs
}

// Run serves the scenario once at its configured rate.
func (s *StreamServer) Run() (stream.Stats, error) { return s.RunAt(s.sc.Rate) }

// RunAt serves the scenario once at the given per-pipeline rate on a
// fresh cluster (cold device residency, cold caches).
func (s *StreamServer) RunAt(rate float64) (stream.Stats, error) {
	e, err := stream.New(stream.Config{
		Cluster:         DefaultCluster(s.sc.Nodes),
		PartialReconfig: s.sc.PartialReconfig,
		QueueWindows:    s.sc.QueueWindows,
		Trace:           s.sc.Trace,
	}, s.Pipelines(rate))
	if err != nil {
		return stream.Stats{}, err
	}
	return e.Run()
}

// StreamPoint is one rung of the offered-rate ladder.
type StreamPoint struct {
	Rate       float64 // offered events per modelled second, per pipeline
	Throughput float64 // achieved events per modelled second, all pipelines
	P50        float64
	P99        float64
	Done       int64
	Shed       int64
	Swaps      int64
	SLOMet     bool
}

// DefaultStreamRates is the standard offered-load ladder: per-pipeline
// event rates climbing from well under capacity (the bottleneck operator
// sustains ~4300 ev/s) to far past it.
func DefaultStreamRates() []float64 {
	return []float64{1000, 2000, 3000, 4000, 5000, 6000, 8000, 12000}
}

// slomet decides whether a rung sustains the SLO: the p99 end-to-end
// latency is inside the target and overload lost (shed) no more than 0.1%
// of the feed.
func (s *StreamServer) slomet(st stream.Stats) bool {
	return st.P99 <= s.sc.SLO && float64(st.Shed) <= 0.001*float64(st.Events)
}

// Saturate serves the scenario once per rate rung and returns every
// measured point plus the best one: the highest achieved throughput among
// rungs that sustained the SLO. A zero best means no rung met it.
func (s *StreamServer) Saturate(rates []float64) ([]StreamPoint, StreamPoint, error) {
	if len(rates) == 0 {
		rates = DefaultStreamRates()
	}
	var points []StreamPoint
	var best StreamPoint
	for _, r := range rates {
		st, err := s.RunAt(r)
		if err != nil {
			return nil, StreamPoint{}, err
		}
		p := StreamPoint{
			Rate: r, Throughput: st.Throughput,
			P50: st.P50, P99: st.P99,
			Done: st.Done, Shed: st.Shed, Swaps: st.Swaps,
			SLOMet: s.slomet(st),
		}
		points = append(points, p)
		if p.SLOMet && (p.Throughput > best.Throughput ||
			(p.Throughput == best.Throughput && p.Rate < best.Rate)) {
			best = p
		}
	}
	return points, best, nil
}

// SwapWin measures the partial-reconfiguration payoff at the scenario's
// configured rate: the same feed served with per-region residency on and
// off. It returns both runs' stats; the win is the whole-device run's
// reload churn (swap seconds) eliminated by the PR floorplan and the p99
// it buys back.
func (s *StreamServer) SwapWin() (on, off stream.Stats, err error) {
	saved := s.sc.PartialReconfig
	s.sc.PartialReconfig = true
	on, err = s.Run()
	if err == nil {
		s.sc.PartialReconfig = false
		off, err = s.Run()
	}
	s.sc.PartialReconfig = saved
	return on, off, err
}

// StreamCluster returns the scenario's cluster shape (exported for the
// CLIs' banner output).
func (s *StreamServer) StreamCluster() *platform.Cluster { return DefaultCluster(s.sc.Nodes) }
