package sdk

import (
	"testing"

	"everest/internal/runtime"
)

func TestCompiledScenarioDeterministicAndAdaptiveWins(t *testing.T) {
	sc := DefaultCompiledScenario()

	static1, err := sc.Run(false)
	if err != nil {
		t.Fatal(err)
	}
	adaptive1, err := sc.Run(true)
	if err != nil {
		t.Fatal(err)
	}
	// Exact repeatability: the scenario serves workflows sequentially over
	// modelled-time fault timelines, so a rerun reproduces the makespan
	// bit-for-bit (this is what lets CI gate speedup_compiled).
	static2, err := sc.Run(false)
	if err != nil {
		t.Fatal(err)
	}
	adaptive2, err := sc.Run(true)
	if err != nil {
		t.Fatal(err)
	}
	if static1.Makespan != static2.Makespan || adaptive1.Makespan != adaptive2.Makespan {
		t.Fatalf("scenario not deterministic: static %g vs %g, adaptive %g vs %g",
			static1.Makespan, static2.Makespan, adaptive1.Makespan, adaptive2.Makespan)
	}

	if adaptive1.Makespan <= 0 || static1.Makespan <= 0 {
		t.Fatal("makespans must be positive")
	}
	speedup := static1.Makespan / adaptive1.Makespan
	if speedup < 1.2 {
		t.Fatalf("compiled-variant adaptation speedup %.3f, want >= 1.2", speedup)
	}

	// The compiled variants are actually exercised: the adaptive arm keeps
	// offloading to the surviving accelerator AND reroutes onto cpu16 —
	// both choices coming from compiler-derived operating points.
	fpga, cpu16 := 0, 0
	for _, ts := range adaptive1.Stats.Tenants {
		fpga += ts.Variants[runtime.VariantFPGA]
		cpu16 += ts.Variants[runtime.VariantCPU16]
	}
	if fpga == 0 || cpu16 == 0 {
		t.Fatalf("adaptive arm should place both fpga and cpu16 variants, got fpga=%d cpu16=%d", fpga, cpu16)
	}

	// The static arm pays the unplug with software fallbacks; the adaptive
	// arm avoids them by never dispatching FPGA work at a dead device.
	staticFallbacks, adaptiveFallbacks := 0, 0
	for _, ts := range static1.Stats.Tenants {
		staticFallbacks += ts.Fallbacks
	}
	for _, ts := range adaptive1.Stats.Tenants {
		adaptiveFallbacks += ts.Fallbacks
	}
	if staticFallbacks == 0 {
		t.Fatal("static arm should hit device-gone fallbacks under the unplug fault")
	}
	if adaptiveFallbacks > staticFallbacks {
		t.Fatalf("adaptive arm pays more fallbacks (%d) than static (%d)", adaptiveFallbacks, staticFallbacks)
	}
}

func TestCompiledScenarioValidation(t *testing.T) {
	sc := DefaultCompiledScenario()
	sc.Nodes = 1
	if _, err := sc.Run(false); err == nil {
		t.Fatal("one-node scenario should be rejected")
	}
	sc = DefaultCompiledScenario()
	sc.Slowdown = 0.5
	if _, err := sc.Run(false); err == nil {
		t.Fatal("sub-nominal slowdown should be rejected")
	}
	sc = DefaultCompiledScenario()
	sc.Kernel = "nope"
	if _, err := sc.Run(false); err == nil {
		t.Fatal("unknown kernel should be rejected")
	}
	sc = DefaultCompiledScenario()
	sc.Net = "carrier-pigeon"
	if _, err := sc.Run(false); err == nil {
		t.Fatal("unknown network stack should be rejected")
	}
}

func TestCompiledWorkflowShape(t *testing.T) {
	sc := DefaultCompiledScenario()
	c, err := sc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	w := CompiledWorkflow(0, c)
	if w.Len() != 4 {
		t.Fatalf("workflow has %d tasks, want 4", w.Len())
	}
	for _, name := range []string{"k0", "k1"} {
		spec, ok := w.Get(name)
		if !ok {
			t.Fatalf("missing kernel task %s", name)
		}
		if !spec.NeedsFPGA || spec.BitstreamID != c.Design.Bitstream.ID {
			t.Fatalf("%s not bound to the compiled bitstream: %+v", name, spec)
		}
		if spec.Flops != c.Flops || spec.InputBytes != c.InputBytes || spec.OutputBytes != c.OutputBytes {
			t.Fatalf("%s workload not derived from compilation: %+v", name, spec)
		}
	}
}
