package sdk

import (
	"errors"
	"fmt"
	"testing"

	"everest/internal/fleet"
	"everest/internal/runtime"
	"everest/internal/variants"
)

func compileFleetKernel(t testing.TB) *variants.Compiled {
	t.Helper()
	c, err := DefaultFleetScenario().Compile()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestFleetScenarioDeterministicWithCacheChurn is the E-fleet acceptance
// test: the scenario serves mixed compiled and hand-declared workloads
// across 4 sites, its modelled numbers are exactly reproducible, and the
// bounded bitstream caches observably churn — hits, misses, and at least
// one eviction-triggered redeploy, all visible in both the stats and the
// trace.
func TestFleetScenarioDeterministicWithCacheChurn(t *testing.T) {
	sc := DefaultFleetScenario()
	c := compileFleetKernel(t)

	var kinds map[fleet.EventKind]int
	run := func() FleetResult {
		res, err := sc.RunWith(c)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Throughput != b.Throughput || a.P95 != b.P95 || a.Makespan != b.Makespan {
		t.Fatalf("scenario not deterministic: %+v vs %+v", a, b)
	}
	if len(a.Stats.Latencies) != len(b.Stats.Latencies) {
		t.Fatalf("latency counts differ: %d vs %d", len(a.Stats.Latencies), len(b.Stats.Latencies))
	}
	for i := range a.Stats.Latencies {
		if a.Stats.Latencies[i] != b.Stats.Latencies[i] {
			t.Fatalf("latency %d differs: %g vs %g", i, a.Stats.Latencies[i], b.Stats.Latencies[i])
		}
	}

	if a.Completed != sc.Workflows || a.Rejected != 0 {
		t.Fatalf("completed/rejected = %d/%d, want %d/0", a.Completed, a.Rejected, sc.Workflows)
	}
	st := a.Stats.Fleet
	if st.CacheHits() == 0 || st.CacheMisses() == 0 {
		t.Fatalf("cache activity not observable: hits=%d misses=%d", st.CacheHits(), st.CacheMisses())
	}
	if st.Evictions() == 0 || st.Redeploys() == 0 {
		t.Fatalf("churn not observable: evictions=%d redeploys=%d", st.Evictions(), st.Redeploys())
	}
	for _, s := range st.Sites {
		if s.Served == 0 {
			t.Fatalf("site %s served nothing: the router is not sharding", s.Name)
		}
	}
	if len(a.Stats.Tenants) != sc.Tenants {
		t.Fatalf("tenant stats cover %d tenants, want %d", len(a.Stats.Tenants), sc.Tenants)
	}
	for tenant, tl := range a.Stats.Tenants {
		if tl.Completed == 0 || tl.P95 < tl.P50 || tl.Max < tl.P95 {
			t.Fatalf("tenant %s latency stats inconsistent: %+v", tenant, tl)
		}
	}

	// The same churn is visible in the trace stream, and tracing does not
	// perturb the modelled numbers.
	kinds = make(map[fleet.EventKind]int)
	traced := sc
	traced.Trace = func(ev fleet.Event) { kinds[ev.Kind]++ }
	res, err := traced.RunWith(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput != a.Throughput {
		t.Fatalf("traced run diverged: %g vs %g", res.Throughput, a.Throughput)
	}
	for _, k := range []fleet.EventKind{fleet.EventRoute, fleet.EventCacheHit,
		fleet.EventCacheMiss, fleet.EventDeploy, fleet.EventEvict, fleet.EventRedeploy, fleet.EventDone} {
		if kinds[k] == 0 {
			t.Fatalf("trace records no %v events (got %v)", k, kinds)
		}
	}
}

// TestFleetScenarioClosedLoop drives the closed arrival mode: every
// tenant is a client that submits its next workflow the moment its
// previous one completes.
func TestFleetScenarioClosedLoop(t *testing.T) {
	sc := DefaultFleetScenario()
	sc.Closed = true
	sc.Tenants = 8
	sc.Workflows = 32
	c := compileFleetKernel(t)
	a, err := sc.RunWith(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.RunWith(c)
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput != b.Throughput || a.P95 != b.P95 {
		t.Fatalf("closed-loop run not deterministic: %+v vs %+v", a, b)
	}
	if a.Completed != sc.Workflows {
		t.Fatalf("completed = %d, want %d", a.Completed, sc.Workflows)
	}
	// Closed loop keeps at most one workflow in flight per tenant, so p95
	// latency stays near service time — far below the open-mode overload.
	if a.P95 > sc.SLO {
		t.Fatalf("closed-loop p95 %g exceeds SLO %g", a.P95, sc.SLO)
	}
}

// TestFleetSaturationLadder checks the harness: throughput grows with
// offered load until the SLO breaks, and the best point is the highest
// SLO-meeting throughput.
func TestFleetSaturationLadder(t *testing.T) {
	sc := DefaultFleetScenario()
	sc.Workflows = 32
	c := compileFleetKernel(t)
	points, best, err := sc.Saturate(c, []float64{0.64, 0.04, 0.0025})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points, want 3", len(points))
	}
	if best.Throughput <= 0 {
		t.Fatal("no SLO-meeting rung found")
	}
	if points[0].Throughput >= points[1].Throughput {
		t.Fatalf("throughput should grow with offered load below saturation: %+v", points[:2])
	}
	for _, p := range points {
		if p.SLOMet && p.Throughput > best.Throughput {
			t.Fatalf("best %+v is not the max SLO-meeting point %+v", best, p)
		}
	}
	if _, _, err := sc.Saturate(c, []float64{-1}); err == nil {
		t.Fatal("negative gap accepted")
	}
}

// TestFleetServerOverloadRejects covers admission control at the server
// front: with a tight modelled queue bound and burst arrivals, saturated
// sites reject with fleet.ErrSaturated, and the workloads that were
// admitted still complete.
func TestFleetServerOverloadRejects(t *testing.T) {
	sc := DefaultFleetScenario()
	sc.Sites = 2
	sc.Workflows = 24
	sc.ArrivalGap = 0 // burst: everything arrives at t=0
	sc.MaxQueueSeconds = 0.3
	c := compileFleetKernel(t)
	a, err := sc.RunWith(c)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rejected == 0 {
		t.Fatal("burst past the queue bound should reject")
	}
	if a.Completed == 0 || a.Completed+a.Rejected != sc.Workflows {
		t.Fatalf("completed %d + rejected %d != %d", a.Completed, a.Rejected, sc.Workflows)
	}
	b, err := sc.RunWith(c)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rejected != a.Rejected || b.Completed != a.Completed {
		t.Fatalf("overload outcome not deterministic: %d/%d vs %d/%d",
			a.Completed, a.Rejected, b.Completed, b.Rejected)
	}

	// The raw error is the sentinel, also at the server-front API.
	srv, err := NewFleetServer(FleetConfig{Sites: 1, MaxQueueSeconds: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	tk, err := srv.SubmitAt("t0", "", SyntheticWorkflow(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.SubmitAt("t1", "", SyntheticWorkflow(1), 0); !errors.Is(err, fleet.ErrSaturated) {
		t.Fatalf("want fleet.ErrSaturated, got %v", err)
	}
	srv.Shutdown()
}

// TestFleetRouterFallbackAllDevicesOffline covers the router's reaction
// to a site whose accelerators are all gone: FPGA-needing work routes to
// the healthy site first, work that does land on the dead site still
// completes in software, and nothing deploys to offline devices.
func TestFleetRouterFallbackAllDevicesOffline(t *testing.T) {
	dead := []runtime.EnvEvent{
		{Kind: runtime.EnvUnplug, Node: "node00", Device: 0, At: 0},
		{Kind: runtime.EnvUnplug, Node: "node01", Device: 0, At: 0},
		{Kind: runtime.EnvUnplug, Node: "cloudfpga0", Device: 0, At: 0},
	}
	srv, err := NewFleetServer(FleetConfig{
		Sites: 2, Adaptive: true,
		SiteEvents: [][]runtime.EnvEvent{dead, nil},
	})
	if err != nil {
		t.Fatal(err)
	}
	bs := ScenarioBitstream()
	if err := srv.Publish(bs); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	// First FPGA workflow skips the dead site even though tie-breaking
	// would otherwise favor it.
	tk, err := srv.SubmitAt("t0", "", AdaptiveWorkflow(0, bs.ID), 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tk.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Site != "site01" {
		t.Fatalf("FPGA workflow routed to %s, want the healthy site01", res.Site)
	}
	// Pile enough arrivals at modelled t=0 that queue depth pushes some
	// onto the dead site; those must complete in software. Submissions
	// wait in turn so routing sees the deterministic modelled backlog.
	sawDeadSite := false
	for i := 1; i < 12; i++ {
		tk, err := srv.SubmitAt(fmt.Sprintf("t%d", i), "", AdaptiveWorkflow(i, bs.ID), 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tk.Wait()
		if err != nil {
			t.Fatalf("workflow %d: %v", i, err)
		}
		if res.Site == "site00" {
			sawDeadSite = true
			for _, a := range res.Sched.Assignments {
				if a.OnFPGA {
					t.Fatalf("task %s ran on FPGA on the dead site", a.Task)
				}
			}
			if res.Deploy != 0 {
				t.Fatalf("deploy stall %g on a site with no online device", res.Deploy)
			}
		}
	}
	st := srv.Shutdown()
	if !sawDeadSite {
		t.Fatalf("queue pressure never spilled onto the dead site: %+v", st.Fleet.Sites)
	}
	s0 := st.Fleet.Sites[0]
	if s0.FallbackDeploys == 0 {
		t.Fatalf("dead site should report fallback deploys, got %+v", s0)
	}
	if s0.Engine.OnlineDevices != 0 {
		t.Fatalf("dead site reports %d online devices", s0.Engine.OnlineDevices)
	}
}

// TestFleetServerValidation covers constructor errors.
func TestFleetServerValidation(t *testing.T) {
	if _, err := NewFleetServer(FleetConfig{Sites: 0}); err == nil {
		t.Fatal("zero sites accepted")
	}
	if _, err := NewFleetServer(FleetConfig{Sites: 1, Net: "bogus"}); err == nil {
		t.Fatal("bogus net accepted")
	}
	if _, err := NewFleetServer(FleetConfig{Sites: 1, RegistryNet: "bogus"}); err == nil {
		t.Fatal("bogus registry net accepted")
	}
	sc := DefaultFleetScenario()
	sc.Sites = 0
	if _, err := sc.Run(); err == nil {
		t.Fatal("bad scenario accepted")
	}
	good := DefaultFleetScenario()
	if _, err := good.RunWith(nil); err == nil {
		t.Fatal("nil compilation accepted")
	}
}

// TestPercentile pins the nearest-rank semantics the SLO gate relies on.
func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cases := []struct {
		q    float64
		want float64
	}{{0, 1}, {0.25, 1}, {0.5, 2}, {0.75, 3}, {0.95, 4}, {1, 4}}
	for _, c := range cases {
		if got := Percentile(xs, c.q); got != c.want {
			t.Fatalf("Percentile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty percentile = %g, want 0", got)
	}
	if xs[0] != 4 {
		t.Fatal("Percentile must not mutate its input")
	}
}

// TestFleetServerAccessorsAndGaps covers the small surface the benchmark
// drives from outside the package.
func TestFleetServerAccessorsAndGaps(t *testing.T) {
	gaps := DefaultSaturationGaps()
	if len(gaps) < 5 {
		t.Fatalf("ladder too short: %v", gaps)
	}
	for i := 1; i < len(gaps); i++ {
		if gaps[i] >= gaps[i-1] {
			t.Fatalf("ladder must descend (offered load must grow): %v", gaps)
		}
	}
	srv, err := NewFleetServer(FleetConfig{Sites: 2})
	if err != nil {
		t.Fatal(err)
	}
	if srv.Fleet() == nil || srv.Fleet().Sites() != 2 {
		t.Fatal("Fleet() should expose the federation tier")
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	st := srv.Shutdown()
	if len(st.Fleet.Sites) != 2 {
		t.Fatalf("stats cover %d sites, want 2", len(st.Fleet.Sites))
	}
}

// TestFleetClosedLoopRetriesRejections pins the closed-mode admission
// semantics: a rejected client backs off and retries the same workflow,
// so every workflow eventually completes even under a tight queue bound.
func TestFleetClosedLoopRetriesRejections(t *testing.T) {
	sc := DefaultFleetScenario()
	sc.Closed = true
	sc.Sites = 1
	sc.Tenants = 4
	sc.Workflows = 12
	sc.ArrivalGap = 0 // all clients start at t=0: guaranteed contention
	sc.MaxQueueSeconds = 0.05
	c := compileFleetKernel(t)
	res, err := sc.RunWith(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected == 0 {
		t.Fatal("tight queue bound with simultaneous clients should reject at least once")
	}
	if res.Completed != sc.Workflows {
		t.Fatalf("completed %d of %d: rejected closed-loop workflows must be retried, not dropped",
			res.Completed, sc.Workflows)
	}
}
