package sdk

import (
	"errors"
	"fmt"
	"sync"

	"everest/internal/apps"
	"everest/internal/fleet"
	"everest/internal/netsim"
	"everest/internal/platform"
	"everest/internal/runtime"
	"everest/internal/variants"
)

// This file is the SDK face of the federation tier (internal/fleet): a
// FleetServer front that shards submissions across N engine sites behind
// one door — the fleet-scale analogue of Server — plus the E-fleet
// scenario serving mixed compiled and hand-declared workloads across
// federated sites under bitstream-cache churn and unplug faults.

// FleetConfig configures a FleetServer.
type FleetConfig struct {
	// Sites is the number of federated engine sites (>= 1).
	Sites int
	// NodesPerSite is the compute-node count of each site's cluster
	// (DefaultCluster shape: adds one cloudFPGA node; default 2).
	NodesPerSite int
	// CacheSlots bounds each site's resident bitstreams (default 1).
	CacheSlots int
	// PartialReconfig deploys kernels into per-region FPGA slots (region-
	// sized image transfers and reconfiguration) instead of whole devices;
	// kernels too large for a region fall back to whole-device programming.
	PartialReconfig bool
	// Policy selects each site engine's placement strategy.
	Policy runtime.Policy
	// Adaptive enables variant-aware scheduling per site.
	Adaptive bool
	// MaxQueueSeconds is the admission bound: when every site's modelled
	// queue wait exceeds it, Submit rejects with fleet.ErrSaturated.
	// 0 = unlimited.
	MaxQueueSeconds float64
	// Net names the intra-site transfer stack ("" = flat cluster fabric).
	Net string
	// RegistryNet names the registry→site deploy fabric ("" = eth100g).
	RegistryNet string
	// DatasetStoreBytes bounds each site's named-dataset store (fleet.Config
	// semantics: 0 = default 256 MiB, negative = unbounded).
	DatasetStoreBytes int64
	// PlacementBlind disables data-locality pricing in the router; data is
	// still fetched and cached, it just no longer steers placement (the
	// contrast arm of the locality benchmark).
	PlacementBlind bool
	// SiteEvents scripts per-site modelled-time faults (index = site).
	SiteEvents [][]runtime.EnvEvent
	// Trace receives fleet events (routing, cache, deploys) when set.
	Trace func(fleet.Event)
	// EngineTrace receives every site engine's runtime events tagged with
	// the site name, serialized with the fleet events (fleet.Config
	// semantics). The determinism harness captures both streams through it.
	EngineTrace func(site string, ev runtime.Event)
}

// FleetServer is the multi-site submission front: one Registry shared by
// all sites, a router placing each workflow, and per-site serial serving.
type FleetServer struct {
	Registry *platform.Registry

	fl *fleet.Fleet

	mu      sync.Mutex
	tickets []*fleet.Ticket
}

// NewFleetServer builds the federation: cfg.Sites independent clusters
// (DefaultCluster shape) behind one router and one bitstream registry.
func NewFleetServer(cfg FleetConfig) (*FleetServer, error) {
	if cfg.Sites < 1 {
		return nil, fmt.Errorf("sdk: fleet needs >= 1 site, got %d", cfg.Sites)
	}
	if cfg.NodesPerSite < 1 {
		cfg.NodesPerSite = 2
	}
	var net, regNet *netsim.Stack
	if cfg.Net != "" {
		st, err := netsim.StackByName(cfg.Net)
		if err != nil {
			return nil, err
		}
		net = &st
	}
	if cfg.RegistryNet != "" {
		st, err := netsim.StackByName(cfg.RegistryNet)
		if err != nil {
			return nil, err
		}
		regNet = &st
	}
	reg := platform.NewRegistry()
	fl, err := fleet.New(reg, fleet.Config{
		Sites:             cfg.Sites,
		NewCluster:        func(int) *platform.Cluster { return DefaultCluster(cfg.NodesPerSite) },
		CacheSlots:        cfg.CacheSlots,
		PartialReconfig:   cfg.PartialReconfig,
		Policy:            cfg.Policy,
		Adaptive:          cfg.Adaptive,
		MaxQueueSeconds:   cfg.MaxQueueSeconds,
		Net:               net,
		RegistryNet:       regNet,
		DatasetStoreBytes: cfg.DatasetStoreBytes,
		PlacementBlind:    cfg.PlacementBlind,
		SiteEvents:        cfg.SiteEvents,
		Trace:             cfg.Trace,
		EngineTrace:       cfg.EngineTrace,
	})
	if err != nil {
		return nil, err
	}
	return &FleetServer{Registry: reg, fl: fl}, nil
}

// Fleet exposes the underlying federation tier.
func (fs *FleetServer) Fleet() *fleet.Fleet { return fs.fl }

// Publish stores a bitstream in the federation registry; sites deploy
// from it on demand (cache misses pay the transfer + reconfiguration).
func (fs *FleetServer) Publish(bs platform.Bitstream) error { return fs.Registry.Put(bs) }

// Start brings every site engine up.
func (fs *FleetServer) Start() error { return fs.fl.Start() }

// SubmitAt routes one workflow arriving at the given modelled time. The
// returned ticket resolves when the chosen site drains to it; admission
// rejections return fleet.ErrSaturated.
func (fs *FleetServer) SubmitAt(tenant, name string, w *runtime.Workflow, arrival float64) (*fleet.Ticket, error) {
	return fs.submit(fleet.Request{Tenant: tenant, Name: name, Workflow: w, Arrival: arrival})
}

// SubmitGuaranteedAt routes one workflow through the proven-bound
// admission class: it is accepted only on a site whose modelled worst case
// fits within deadline seconds of the arrival, and refused with
// fleet.ErrSaturated otherwise (nothing is enqueued on refusal — callers
// typically degrade to SubmitAt).
func (fs *FleetServer) SubmitGuaranteedAt(tenant, name string, w *runtime.Workflow, arrival, deadline float64) (*fleet.Ticket, error) {
	return fs.submit(fleet.Request{Tenant: tenant, Name: name, Workflow: w, Arrival: arrival,
		Guaranteed: true, Deadline: deadline})
}

func (fs *FleetServer) submit(req fleet.Request) (*fleet.Ticket, error) {
	t, err := fs.fl.Submit(req)
	if err != nil {
		return nil, err
	}
	fs.mu.Lock()
	fs.tickets = append(fs.tickets, t)
	fs.mu.Unlock()
	return t, nil
}

// TenantLatency is one tenant's completed-workflow latency distribution.
type TenantLatency struct {
	Completed int
	P50       float64
	P95       float64
	Max       float64
}

// FleetServerStats is the final accounting of a fleet serving run.
type FleetServerStats struct {
	Fleet     fleet.Stats
	Tenants   map[string]TenantLatency
	Latencies []float64 // all completed workflow latencies, submission order
}

// Shutdown drains every site, stops the engines, and returns the final
// stats including per-tenant latency percentiles.
func (fs *FleetServer) Shutdown() FleetServerStats {
	flStats := fs.fl.Shutdown()
	fs.mu.Lock()
	tickets := fs.tickets
	fs.mu.Unlock()
	out := FleetServerStats{Fleet: flStats, Tenants: make(map[string]TenantLatency)}
	byTenant := make(map[string][]float64)
	for _, t := range tickets {
		res, err := t.Wait() // resolved: Shutdown drained the queues
		if err != nil {
			continue
		}
		out.Latencies = append(out.Latencies, res.Latency)
		byTenant[t.Tenant] = append(byTenant[t.Tenant], res.Latency)
	}
	for tenant, ls := range byTenant {
		out.Tenants[tenant] = TenantLatency{
			Completed: len(ls),
			P50:       Percentile(ls, 0.50),
			P95:       Percentile(ls, 0.95),
			Max:       Percentile(ls, 1.0),
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// E-fleet scenario

// FleetScenario bundles one run of the fleet-serving experiment: mixed
// compiled and hand-declared workloads from many tenants arriving over
// modelled time, served by a federation of engine sites with bounded
// bitstream caches, with an accelerator unplug hitting the first site
// mid-run. Workflows are submitted in arrival order and awaited one at a
// time, so every modelled number is exactly deterministic across
// GOMAXPROCS while site timelines still overlap in modelled time.
type FleetScenario struct {
	Sites        int
	NodesPerSite int
	CacheSlots   int
	// PartialReconfig deploys kernels into per-region FPGA slots
	// (FleetConfig semantics).
	PartialReconfig bool
	Tenants         int
	Workflows       int
	// ArrivalGap is the open-mode interarrival (modelled seconds); in
	// closed mode it staggers the clients' initial arrivals instead.
	ArrivalGap float64
	// Closed selects the closed-loop arrival mode: Tenants clients, each
	// submitting its next workflow the moment its previous one completes.
	Closed bool
	// UnplugAt > 0 detaches site 0's first accelerator at that modelled
	// time (cache churn: its resident bitstream goes stale).
	UnplugAt float64
	// SlowdownAt > 0 scripts a CPU slowdown fault of SlowdownFactor on
	// site 0's first node at that modelled time. The factor must respect
	// the fleet's SlowdownCap contract (default cap 4) or NewFleetServer
	// fails — that validation is exactly what keeps guaranteed bounds
	// sound under the fault.
	SlowdownAt     float64
	SlowdownFactor float64
	// GuaranteedEvery > 0 submits every GuaranteedEvery-th workflow (index
	// 0, GuaranteedEvery, ...) through the proven-bound admission class
	// with GuaranteedDeadline as its relative latency bound. A refusal
	// (fleet.ErrSaturated: no site can prove the deadline) is counted and
	// the workflow degrades to best-effort, so the served stream is
	// identical either way.
	GuaranteedEvery    int
	GuaranteedDeadline float64
	// Net / RegistryNet name the transfer stacks (FleetConfig semantics).
	Net         string
	RegistryNet string
	// Policy selects each site engine's placement strategy (the zero
	// value is PolicyHEFT).
	Policy   runtime.Policy
	Adaptive bool
	// MaxQueueSeconds forwards the admission bound (0 = never reject).
	MaxQueueSeconds float64
	// SLO is the p95 latency target the saturation metric gates on.
	SLO float64
	// Apps selects the mixed application-suite mode: the named workload-
	// registry applications (internal/apps; empty slice entries invalid)
	// are interleaved deterministically across tenants instead of the
	// default windpower/hand-declared mix. Serve it with RunSuite /
	// SaturateSuite around a suite from BuildSuite.
	Apps []string
	// Trace receives fleet events during Run/RunWith when set (routing,
	// cache hits/misses, deploys, evictions).
	Trace func(fleet.Event)
	// EngineTrace receives every site engine's runtime events tagged with
	// the site name, merged in order with the fleet events. Because the
	// scenario submits and awaits one workflow at a time, the merged stream
	// is deterministic — the determinism regression test hashes it.
	EngineTrace func(site string, ev runtime.Event)
}

// DefaultFleetScenario is the E-fleet configuration: 4 sites of 2 compute
// nodes each, 32 tenants, 64 mixed workflows (compiled windpower kernels,
// hand-declared Monte-Carlo, pure-software), one bitstream cache slot per
// site (so the two FPGA bitstreams churn), deploys priced over the
// TCP/10G registry fabric, and an unplug of site 0's accelerator mid-run.
func DefaultFleetScenario() FleetScenario {
	return FleetScenario{
		Sites: 4, NodesPerSite: 2, CacheSlots: 1,
		Tenants: 32, Workflows: 64,
		ArrivalGap: 0.05, UnplugAt: 0.5,
		RegistryNet: "tcp10g",
		Adaptive:    true,
		SLO:         1.75,
	}
}

// DefaultGuaranteedScenario is the E-wcet configuration: the E-fleet mix
// driven toward best-effort saturation (tighter arrivals), with every 4th
// submission requesting the proven-bound admission class, site 0 losing
// an accelerator AND suffering a 3x CPU slowdown mid-run (both within the
// SlowdownCap contract). The verifier gates BoundViolations at exactly
// zero on this scenario: admitted guarantees must hold through the faults
// at saturation, refusals must degrade cleanly to best-effort.
func DefaultGuaranteedScenario() FleetScenario {
	sc := DefaultFleetScenario()
	sc.ArrivalGap = 0.02 // push the best-effort tier toward saturation
	sc.SlowdownAt = 0.4
	sc.SlowdownFactor = 3
	sc.GuaranteedEvery = 4
	sc.GuaranteedDeadline = 4
	sc.SLO = 0 // saturation mode: p95 is reported, not gated
	return sc
}

// Compile builds the scenario's compiled kernel (shared across runs: the
// saturation ladder re-serves the same compilation at every rate).
func (sc FleetScenario) Compile() (*variants.Compiled, error) {
	return variants.CompileExample("windpower", DefaultCompileOptions())
}

// DefaultSuiteScenario is the E-apps configuration: all three EVEREST
// use-case applications from the workload registry — weather ensembles,
// traffic map-matching, energy prediction — interleaved across 24
// tenants over 4 federated sites. Each site keeps two bitstreams
// resident, so the suite's four distinct per-stage bitstreams churn the
// caches, and site 0 loses an accelerator mid-run.
func DefaultSuiteScenario() FleetScenario {
	return FleetScenario{
		Sites: 4, NodesPerSite: 2, CacheSlots: 2,
		Tenants: 24, Workflows: 48,
		ArrivalGap: 0.05, UnplugAt: 0.5,
		RegistryNet: "tcp10g",
		Adaptive:    true,
		SLO:         2.5,
		Apps:        apps.Names(),
	}
}

// FleetResult is one serving run of the scenario.
type FleetResult struct {
	Stats      FleetServerStats
	Completed  int
	Rejected   int
	Makespan   float64 // latest site completion (modelled)
	Throughput float64 // completed workflows per modelled second
	P50        float64
	P95        float64
	Max        float64
	SLOMet     bool
	// Guaranteed-class accounting (GuaranteedEvery > 0): how many
	// guaranteed submissions were admitted on proof vs refused (and
	// degraded to best-effort), how many admitted completions missed
	// their proven bound — the verifier gates that at exactly zero — and
	// the worst observed latency/bound tightness ratio (<= 1 when the
	// bounds hold; near 1 means the proof is sharp, near 0 conservative).
	GuaranteedAdmitted  int
	GuaranteedRefused   int
	GuaranteedAdmitRate float64 // admitted / (admitted + refused)
	BoundViolations     int
	BoundTightness      float64
	// Apps holds the per-application latency distributions when the run
	// served the mixed suite (nil otherwise).
	Apps map[string]TenantLatency
}

// Run compiles what the scenario serves — the application suite when Apps
// is set, the default windpower mix otherwise — and serves it once.
func (sc FleetScenario) Run() (FleetResult, error) {
	if len(sc.Apps) > 0 {
		s, err := sc.BuildSuite()
		if err != nil {
			return FleetResult{}, err
		}
		return sc.RunSuite(s)
	}
	c, err := sc.Compile()
	if err != nil {
		return FleetResult{}, err
	}
	return sc.RunWith(c)
}

// BuildSuite compiles the scenario's application suite (shared across
// runs: the saturation ladder re-serves the same compilations at every
// rate).
func (sc FleetScenario) BuildSuite() (*apps.Suite, error) {
	return apps.BuildSuite(apps.DefaultOptions(), sc.Apps...)
}

// workflow returns the i-th submission of the mixed stream: compiled
// windpower workflows, hand-declared FPGA-leaning workflows on two
// distinct bitstreams (what churns a one-slot cache), and pure-software
// synthetic workflows.
func (sc FleetScenario) workflow(i int, c *variants.Compiled) *runtime.Workflow {
	switch i % 4 {
	case 0:
		w := CompiledWorkflow(i, c)
		if sc.Adaptive {
			w.SetVariants(c.Variants())
		}
		return w
	case 1:
		return AdaptiveWorkflow(i, ScenarioBitstream().ID)
	case 2:
		return SyntheticWorkflow(i)
	default:
		return AdaptiveWorkflow(i, c.Design.Bitstream.ID)
	}
}

// RunWith serves the scenario once around an already-compiled kernel
// (the default mixed stream of compiled windpower, hand-declared
// FPGA-leaning, and pure-software workflows).
func (sc FleetScenario) RunWith(c *variants.Compiled) (FleetResult, error) {
	if c == nil || c.Design == nil {
		return FleetResult{}, fmt.Errorf("sdk: fleet scenario needs a compiled kernel")
	}
	// The mixed stream cycles lcm(4,3)=12 distinct workflow descriptions
	// (class i%4 × weight i%3). A workflow is immutable once built and the
	// engine copies its specs on submission, so each template is built once
	// and resubmitted — the realistic client pattern, and it keeps template
	// construction out of the serving hot path the self-bench measures.
	templates := make([]*runtime.Workflow, 12)
	return sc.run(
		[]platform.Bitstream{c.Design.Bitstream, ScenarioBitstream()},
		func(i int) *runtime.Workflow {
			k := i % len(templates)
			if templates[k] == nil {
				templates[k] = sc.workflow(i, c)
			}
			return templates[k]
		},
		nil,
	)
}

// RunSuite serves the scenario once around a built application suite: the
// registered EVEREST use-case applications interleaved deterministically
// across tenants, with every suite bitstream published to the federation
// registry.
func (sc FleetScenario) RunSuite(s *apps.Suite) (FleetResult, error) {
	if s == nil || len(s.Apps) == 0 {
		return FleetResult{}, fmt.Errorf("sdk: fleet scenario needs a built application suite")
	}
	return sc.run(
		s.Bitstreams(),
		func(i int) *runtime.Workflow { _, w := s.Workflow(i); return w },
		func(i int) string { return s.AppOf(i).Name },
	)
}

// run serves one scenario pass: workflows come from wf (indexed by
// submission), bitstreams are published up front, and appOf — when set —
// buckets completed-workflow latencies per application for the suite
// report. Workflows are submitted in arrival order and awaited one at a
// time, so every modelled number is exactly deterministic across
// GOMAXPROCS.
func (sc FleetScenario) run(bitstreams []platform.Bitstream, wf func(i int) *runtime.Workflow, appOf func(i int) string) (FleetResult, error) {
	if sc.Sites < 1 || sc.Tenants < 1 || sc.Workflows < 1 {
		return FleetResult{}, fmt.Errorf("sdk: bad fleet scenario %+v", sc)
	}
	var site0 []runtime.EnvEvent
	if sc.UnplugAt > 0 {
		site0 = append(site0, runtime.EnvEvent{Kind: runtime.EnvUnplug, Node: "node00", Device: 0, At: sc.UnplugAt})
	}
	if sc.SlowdownAt > 0 {
		factor := sc.SlowdownFactor
		if factor <= 0 {
			factor = 2
		}
		site0 = append(site0, runtime.EnvEvent{Kind: runtime.EnvSlowdown, Node: "node00", Factor: factor, At: sc.SlowdownAt})
	}
	var events [][]runtime.EnvEvent
	if len(site0) > 0 {
		events = [][]runtime.EnvEvent{site0}
	}
	srv, err := NewFleetServer(FleetConfig{
		Sites: sc.Sites, NodesPerSite: sc.NodesPerSite, CacheSlots: sc.CacheSlots,
		PartialReconfig: sc.PartialReconfig,
		Policy:          sc.Policy, Adaptive: sc.Adaptive,
		MaxQueueSeconds: sc.MaxQueueSeconds,
		Net:             sc.Net, RegistryNet: sc.RegistryNet,
		SiteEvents: events, Trace: sc.Trace, EngineTrace: sc.EngineTrace,
	})
	if err != nil {
		return FleetResult{}, err
	}
	for _, bs := range bitstreams {
		if err := srv.Publish(bs); err != nil {
			return FleetResult{}, err
		}
	}
	if err := srv.Start(); err != nil {
		return FleetResult{}, err
	}

	rejected := 0
	gAdmitted, gRefused := 0, 0
	tightness := 0.0
	byApp := make(map[string][]float64)
	record := func(i int, res fleet.Result) {
		if appOf != nil {
			byApp[appOf(i)] = append(byApp[appOf(i)], res.Latency)
		}
		if res.Guaranteed && res.Bound > 0 {
			if r := res.Latency / res.Bound; r > tightness {
				tightness = r
			}
		}
	}
	// submit routes workflow i: through the proven-bound class when the
	// scenario marks it guaranteed (degrading to best-effort when no site
	// can prove the deadline), plainly otherwise.
	submit := func(i int, tenant string, w *runtime.Workflow, arrival float64) (*fleet.Ticket, error) {
		if sc.GuaranteedEvery > 0 && i%sc.GuaranteedEvery == 0 {
			t, err := srv.SubmitGuaranteedAt(tenant, "", w, arrival, sc.GuaranteedDeadline)
			if err == nil {
				gAdmitted++
				return t, nil
			}
			if !errors.Is(err, fleet.ErrSaturated) {
				return nil, err
			}
			gRefused++ // no provable site: degrade to best-effort
		}
		return srv.SubmitAt(tenant, "", w, arrival)
	}
	// Tenant names are computed once: the per-submission Sprintf showed up
	// in serving profiles.
	tenants := make([]string, sc.Tenants)
	for j := range tenants {
		tenants[j] = fmt.Sprintf("tenant%02d", j)
	}
	tenantName := func(i int) string { return tenants[i%sc.Tenants] }
	if sc.Closed {
		// Closed loop: each tenant is one client; its next workflow
		// arrives the moment its previous one completes. Submissions are
		// processed in global modelled-arrival order via a modelled-time
		// heap whose tie-break is the client index — identical to a linear
		// lowest-index min-scan, so the run is deterministic.
		next := runtime.NewTimeHeap(sc.Tenants)
		for j := 0; j < sc.Tenants; j++ {
			next.Push(runtime.TimeItem{Time: float64(j) * sc.ArrivalGap, Seq: j})
		}
		for i := 0; i < sc.Workflows; i++ {
			turn := next.PopMin()
			client, arrival := turn.Seq, turn.Time
			t, err := submit(i, tenants[client], wf(i), arrival)
			if err != nil {
				// Rejected: the client backs off and retries the same
				// workflow at a later arrival (i is not consumed). Arrivals
				// advance monotonically while the modelled backlog does
				// not, so the retry is eventually admitted.
				rejected++
				step := sc.ArrivalGap
				if step <= 0 {
					step = 0.01
				}
				next.Push(runtime.TimeItem{Time: arrival + step, Seq: client})
				i--
				continue
			}
			res, err := t.Wait()
			if err != nil {
				srv.Shutdown()
				return FleetResult{}, fmt.Errorf("sdk: fleet scenario workflow %d: %w", i, err)
			}
			record(i, res)
			next.Push(runtime.TimeItem{Time: res.Completion, Seq: client})
		}
	} else {
		for i := 0; i < sc.Workflows; i++ {
			t, err := submit(i, tenantName(i), wf(i), float64(i)*sc.ArrivalGap)
			if err != nil {
				rejected++
				continue
			}
			res, err := t.Wait()
			if err != nil {
				srv.Shutdown()
				return FleetResult{}, fmt.Errorf("sdk: fleet scenario workflow %d: %w", i, err)
			}
			record(i, res)
		}
	}

	stats := srv.Shutdown()
	out := FleetResult{
		Stats:     stats,
		Completed: stats.Fleet.Completed,
		Rejected:  rejected,
		Makespan:  stats.Fleet.Makespan,
		P50:       Percentile(stats.Latencies, 0.50),
		P95:       Percentile(stats.Latencies, 0.95),
		Max:       Percentile(stats.Latencies, 1.0),

		GuaranteedAdmitted: gAdmitted,
		GuaranteedRefused:  gRefused,
		BoundViolations:    stats.Fleet.BoundViolations(),
		BoundTightness:     tightness,
	}
	if gAdmitted+gRefused > 0 {
		out.GuaranteedAdmitRate = float64(gAdmitted) / float64(gAdmitted+gRefused)
	}
	if appOf != nil {
		out.Apps = make(map[string]TenantLatency, len(byApp))
		for name, ls := range byApp {
			out.Apps[name] = TenantLatency{
				Completed: len(ls),
				P50:       Percentile(ls, 0.50),
				P95:       Percentile(ls, 0.95),
				Max:       Percentile(ls, 1.0),
			}
		}
	}
	if out.Makespan > 0 {
		out.Throughput = float64(out.Completed) / out.Makespan
	}
	out.SLOMet = out.Completed == sc.Workflows && (sc.SLO <= 0 || out.P95 <= sc.SLO)
	return out, nil
}
