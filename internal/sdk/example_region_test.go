package sdk_test

import (
	"fmt"

	"everest/internal/sdk"
)

// ExampleRegionScenario serves the default E-region run: a traffic wave
// traveling across three geo-distributed regions over a 1 Gb/s WAN,
// with background batch churn, guaranteed-class admissions and
// forecast-driven bitstream prefetch. The guaranteed class admits only
// what it can prove: traffic and energy carry finite serve-alone WCET
// bounds, while the weather ensemble's conservative worst case exceeds
// the deadline and degrades to interactive — counted, never violated.
// Modelled-time serving makes every counter exactly reproducible, which
// is what lets an Example assert the output verbatim.
func ExampleRegionScenario() {
	sc := sdk.DefaultRegionScenario()
	res, err := sc.Run()
	if err != nil {
		panic(err)
	}
	fmt.Printf("completed %d/%d workflows across %d regions\n",
		res.Completed, sc.Workflows, sc.Regions)
	fmt.Printf("guaranteed: %d admitted, %d refused, %d bound violations\n",
		res.GuaranteedAdmitted, res.GuaranteedRefused, res.BoundViolations)
	fmt.Printf("prefetch staged %d artifacts ahead of the wave\n", res.PrefetchFetches)
	fmt.Printf("tail cold-start overhead p99 under 0.1s: %v\n", res.TailColdStartP99 < 0.1)
	// Output:
	// completed 200/200 workflows across 3 regions
	// guaranteed: 16 admitted, 7 refused, 0 bound violations
	// prefetch staged 166 artifacts ahead of the wave
	// tail cold-start overhead p99 under 0.1s: true
}
