package sdk

import (
	"strings"
	"testing"
)

// TestPercentileExactBoundaries pins the nearest-rank computation at the
// exact multiples q = i/n, where the pre-fix float fudge (+0.9999999
// instead of a true ceiling) could land one rank off. The nearest-rank
// quantile at q = i/n is by definition the i-th smallest element.
func TestPercentileExactBoundaries(t *testing.T) {
	for n := 1; n <= 5; n++ {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i + 1) // sorted 1..n
		}
		for i := 1; i <= n; i++ {
			q := float64(i) / float64(n)
			if got := Percentile(xs, q); got != float64(i) {
				t.Errorf("Percentile(n=%d, q=%d/%d) = %g, want %g", n, i, n, got, float64(i))
			}
		}
	}
}

// TestPercentileNearIntegerRank covers the two sides of an integer q·n
// product. A genuine (if tiny) fraction above the boundary must move to
// the next rank — the pre-fix fudge factor silently swallowed fractions
// under 1e-7 and reported the lower rank — while pure floating error from
// representing q (0.95·20 evaluates to 19.000000000000004) must not.
func TestPercentileNearIntegerRank(t *testing.T) {
	xs4 := []float64{1, 2, 3, 4}
	// q strictly above 1/4: nearest rank is the smallest k with k/4 >= q,
	// which is 2. The old rank computation returned element 1.
	if got := Percentile(xs4, 0.25+1e-8); got != 2 {
		t.Errorf("Percentile(q=0.25+1e-8) = %g, want 2", got)
	}
	xs20 := make([]float64, 20)
	for i := range xs20 {
		xs20[i] = float64(i + 1)
	}
	// 0.95*20 lands 2 ulps above 19; the intended rank is exactly 19.
	if got := Percentile(xs20, 0.95); got != 19 {
		t.Errorf("Percentile(n=20, q=0.95) = %g, want 19", got)
	}
	// Single- and two-element boundary behavior.
	if got := Percentile([]float64{7}, 0.5); got != 7 {
		t.Errorf("Percentile(n=1) = %g, want 7", got)
	}
	if got := Percentile([]float64{1, 2}, 0.5); got != 1 {
		t.Errorf("Percentile(n=2, q=0.5) = %g, want 1", got)
	}
	if got := Percentile([]float64{1, 2}, 0.51); got != 2 {
		t.Errorf("Percentile(n=2, q=0.51) = %g, want 2", got)
	}
}

// TestSaturateTieBreaksOnLowerOfferedRate drives the ladder loop with a
// synthetic serving function: two rungs achieve identical SLO-meeting
// throughput, and the reported best must be the lower offered rate
// (larger gap) regardless of ladder order — pre-fix, input order decided.
func TestSaturateTieBreaksOnLowerOfferedRate(t *testing.T) {
	run := func(gap float64) (FleetResult, error) {
		return FleetResult{Throughput: 10, P95: 1, SLOMet: true}, nil
	}
	for _, ladder := range [][]float64{{0.2, 0.1}, {0.1, 0.2}} {
		points, best, err := saturate(ladder, run)
		if err != nil {
			t.Fatal(err)
		}
		if len(points) != 2 {
			t.Fatalf("got %d points, want 2", len(points))
		}
		if best.Gap != 0.2 {
			t.Errorf("ladder %v: best gap = %g, want 0.2 (lower offered rate wins ties)", ladder, best.Gap)
		}
	}
}

// TestSaturateRejectsDuplicateGaps: serving the same rung twice could only
// re-measure it, and which copy won a tie would be an accident of
// position, so duplicate gaps are an input error.
func TestSaturateRejectsDuplicateGaps(t *testing.T) {
	run := func(gap float64) (FleetResult, error) {
		return FleetResult{Throughput: 1 / gap, SLOMet: true}, nil
	}
	if _, _, err := saturate([]float64{0.2, 0.1, 0.2}, run); err == nil ||
		!strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate gap accepted (err=%v)", err)
	}
	if _, _, err := saturate([]float64{0.2, 0}, run); err == nil {
		t.Fatal("zero gap accepted")
	}
}
