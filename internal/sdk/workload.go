package sdk

import (
	"fmt"

	"everest/internal/runtime"
)

// SyntheticWorkflow returns a deterministic workflow for throughput
// experiments: index i cycles through a three-stage pipeline, a fork-join,
// and a diamond, with task weights varied by i so a stream of submissions
// resembles the mixed traffic of the paper's use cases rather than N clones
// of one job.
func SyntheticWorkflow(i int) *runtime.Workflow {
	w := runtime.NewWorkflow()
	must := func(spec runtime.TaskSpec) {
		if err := w.Submit(spec); err != nil {
			panic(fmt.Sprintf("sdk: synthetic workflow %d: %v", i, err))
		}
	}
	scale := 1 + float64(i%3)/2 // 1x, 1.5x, 2x work
	switch i % 3 {
	case 0: // ingest -> compute -> publish pipeline
		must(runtime.TaskSpec{Name: "ingest", Flops: 2e9 * scale, OutputBytes: 1 << 21})
		must(runtime.TaskSpec{Name: "compute", Deps: []string{"ingest"},
			Flops: 3e10 * scale, InputBytes: 1 << 21, OutputBytes: 1 << 20})
		must(runtime.TaskSpec{Name: "publish", Deps: []string{"compute"},
			Flops: 1e9, InputBytes: 1 << 20})
	case 1: // fork-join ensemble
		must(runtime.TaskSpec{Name: "seed", Flops: 1e9, OutputBytes: 1 << 20})
		members := []string{"m0", "m1", "m2", "m3"}
		for _, m := range members {
			must(runtime.TaskSpec{Name: m, Deps: []string{"seed"},
				Flops: 8e9 * scale, InputBytes: 1 << 20, OutputBytes: 1 << 20})
		}
		must(runtime.TaskSpec{Name: "reduce", Deps: members,
			Flops: 2e9, InputBytes: 1 << 22})
	default: // diamond
		must(runtime.TaskSpec{Name: "load", Flops: 1e9, OutputBytes: 1 << 21})
		must(runtime.TaskSpec{Name: "left", Deps: []string{"load"},
			Flops: 1.2e10 * scale, InputBytes: 1 << 21, OutputBytes: 1 << 20})
		must(runtime.TaskSpec{Name: "right", Deps: []string{"load"},
			Flops: 9e9 * scale, InputBytes: 1 << 21, OutputBytes: 1 << 20})
		must(runtime.TaskSpec{Name: "merge", Deps: []string{"left", "right"},
			Flops: 2e9, InputBytes: 1 << 21})
	}
	return w
}
