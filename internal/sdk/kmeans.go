package sdk

import (
	"fmt"

	"everest/internal/apps"
	"everest/internal/fleet"
	"everest/internal/variants"
)

// This file is the E-data scenario: the FPGA map-reduce k-means workload
// driven through the fleet's named data plane. Point partitions are
// scattered across the federation before serving (the ingest plane), and
// each round submits one map workflow per partition (the compiled assign
// kernel) followed by a reduce workflow (the compiled update kernel)
// whose refreshed centroids supersede the previous model by lineage. The
// scenario's contrast knob is PlacementBlind: with locality pricing the
// router moves the maps to their data; blind, the same workload ships
// partitions to wherever the queues happen to balance.

// KMeansScenario configures a map-reduce k-means run over the fleet.
type KMeansScenario struct {
	// Sites is the federation width (default 4).
	Sites int
	// Rounds is the number of map+reduce iterations (default 3).
	Rounds int
	// Config shapes the compiled workload; zero fields take the
	// apps.KMeansConfig defaults. The benchmark raises Points so the data
	// plane, not the kernel, dominates the modelled cost.
	Config apps.KMeansConfig
	// PlacementBlind disables data-locality pricing (the contrast arm).
	PlacementBlind bool
	// DatasetStoreBytes bounds each site's dataset store (fleet.Config
	// semantics: 0 = default, negative = unbounded).
	DatasetStoreBytes int64
	// RegistryNet names the inter-site data/deploy fabric ("" = eth100g).
	RegistryNet string
	// Trace receives fleet events when set.
	Trace func(fleet.Event)
}

// KMeansResult is the outcome of one k-means serving run.
type KMeansResult struct {
	Workflows        int     // map and reduce workflows completed
	Makespan         float64 // modelled completion of the last round
	Throughput       float64 // workflows per modelled second
	ShippedBytes     int64   // dataset bytes staged over the registry fabric
	BytesPerWorkflow float64 // ShippedBytes / Workflows
	FetchStall       float64 // summed modelled dataset staging stalls
	DatasetHits      int     // serve-time locality probes answered in place
	DatasetMisses    int
	Stats            FleetServerStats
}

// DefaultKMeansScenario is the E-data configuration: a 4-site federation
// over the 1 Gb/s WAN serving 3 rounds of 8 map shards, with partitions
// big enough that the registry fabric, not the kernels, is the scarce
// resource. BenchmarkDatasetLocality and the CLI drivers share it.
func DefaultKMeansScenario() KMeansScenario {
	return KMeansScenario{
		Sites:       4,
		Rounds:      3,
		Config:      apps.KMeansConfig{Partitions: 8, Points: 2048, Dims: 16, Centroids: 8},
		RegistryNet: "wan1g",
	}
}

// scatterSite places partition p in a fixed pattern decorrelated from the
// submission order: ingest planes hash data across sites, so residency
// must not accidentally line up with where queue balancing would have
// sent the matching map anyway — that alignment would let a blind router
// look placement-aware by coincidence.
func scatterSite(p, sites int) int { return (p*3 + 1) % sites }

// Run executes the scenario: scatter the partitions, then Rounds
// iterations of (one map per partition, one reduce), each round submitted
// at the modelled completion frontier of the previous one so the reduce
// reads the weights its maps published.
func (sc KMeansScenario) Run() (KMeansResult, error) {
	if sc.Sites == 0 {
		sc.Sites = 4
	}
	if sc.Rounds == 0 {
		sc.Rounds = 3
	}
	km, err := apps.BuildKMeans(apps.DefaultOptions(), sc.Config)
	if err != nil {
		return KMeansResult{}, err
	}
	srv, err := NewFleetServer(FleetConfig{
		Sites: sc.Sites,
		// All three round kernels stay resident at every site (they are
		// warmed below); a single slot would churn them against each other
		// every round and the deploy traffic would drown the data-plane
		// contrast.
		CacheSlots:        3,
		RegistryNet:       sc.RegistryNet,
		DatasetStoreBytes: sc.DatasetStoreBytes,
		PlacementBlind:    sc.PlacementBlind,
		Trace:             sc.Trace,
	})
	if err != nil {
		return KMeansResult{}, err
	}
	for _, c := range []*variants.Compiled{km.Assign, km.Partial, km.Update} {
		if err := srv.Publish(c.Design.Bitstream); err != nil {
			return KMeansResult{}, err
		}
	}
	if err := srv.Start(); err != nil {
		return KMeansResult{}, err
	}

	// Ingest: stage the round kernels fleet-wide on the control plane (the
	// model is known before the data arrives), scatter the point
	// partitions, and seed the initial centroids. With the bitstreams warm
	// everywhere, routing differences between the arms are purely
	// data-driven.
	fl := srv.Fleet()
	for _, c := range []*variants.Compiled{km.Assign, km.Partial, km.Update} {
		if _, err := fl.WarmAll(c.Design.Bitstream.ID, 0); err != nil {
			return KMeansResult{}, err
		}
	}
	points := km.PointRefs()
	for p, ref := range points {
		if err := fl.PlaceDataset(scatterSite(p, sc.Sites), 0, ref); err != nil {
			return KMeansResult{}, err
		}
	}
	// The initial model is broadcast: it is a few hundred bytes riding the
	// same control-plane rollout as the bitstreams, so every site starts
	// with the centroids and a map shard's home site is strictly free.
	for i := 0; i < sc.Sites; i++ {
		if err := fl.PlaceDataset(i, 0, km.CentroidRef()); err != nil {
			return KMeansResult{}, err
		}
	}

	var out KMeansResult
	account := func(res fleet.Result) {
		out.Workflows++
		out.ShippedBytes += res.FetchedBytes
		out.FetchStall += res.Fetch
		if res.Completion > out.Makespan {
			out.Makespan = res.Completion
		}
	}
	now := 0.0
	for r := 0; r < sc.Rounds; r++ {
		// Map: one shard per partition, all arriving at the same modelled
		// instant. Each is submitted and waited out before the next — the
		// fleet's deterministic driving idiom: routing then reads fully
		// settled modelled state (busy horizons, residency) instead of a
		// host-schedule-dependent live queue depth, so the trace is
		// byte-identical across GOMAXPROCS. The modelled arrivals still
		// tie, so the maps contend for sites exactly as a burst would.
		frontier := now
		for p := range points {
			t, err := srv.SubmitAt("kmeans", fmt.Sprintf("map-r%d-p%d", r, p), km.MapWorkflow(p), now)
			if err != nil {
				return KMeansResult{}, fmt.Errorf("sdk: kmeans round %d map %d: %w", r, p, err)
			}
			res, err := t.Wait()
			if err != nil {
				return KMeansResult{}, fmt.Errorf("sdk: kmeans round %d map %d: %w", r, p, err)
			}
			account(res)
			if res.Completion > frontier {
				frontier = res.Completion
			}
		}
		// Reduce: gathers every shard's weights once the round's maps have
		// published them.
		t, err := srv.SubmitAt("kmeans", fmt.Sprintf("reduce-r%d", r), km.ReduceWorkflow(), frontier)
		if err != nil {
			return KMeansResult{}, fmt.Errorf("sdk: kmeans round %d reduce: %w", r, err)
		}
		res, err := t.Wait()
		if err != nil {
			return KMeansResult{}, fmt.Errorf("sdk: kmeans round %d reduce: %w", r, err)
		}
		account(res)
		now = res.Completion
	}

	out.Stats = srv.Shutdown()
	for _, s := range out.Stats.Fleet.Sites {
		out.DatasetHits += s.DatasetHits
		out.DatasetMisses += s.DatasetMisses
	}
	if out.Workflows > 0 {
		out.BytesPerWorkflow = float64(out.ShippedBytes) / float64(out.Workflows)
	}
	if out.Makespan > 0 {
		out.Throughput = float64(out.Workflows) / out.Makespan
	}
	return out, nil
}
