package sdk

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"everest/internal/apps"
	"everest/internal/fleet"
	"everest/internal/region"
	rt "everest/internal/runtime"
)

func TestRegionServerValidates(t *testing.T) {
	if _, err := NewRegionServer(RegionConfig{}); err == nil {
		t.Fatal("zero regions accepted")
	}
	for _, cfg := range []RegionConfig{
		{Regions: 2, WAN: "no-such-fabric"},
		{Regions: 2, Net: "no-such-fabric"},
		{Regions: 2, RegistryNet: "no-such-fabric"},
	} {
		if _, err := NewRegionServer(cfg); err == nil {
			t.Fatalf("bad fabric name accepted: %+v", cfg)
		}
	}
}

// TestRegionServerServes drives the server directly: publish into the
// catalog, serve across regions, and read the final accounting.
func TestRegionServerServes(t *testing.T) {
	srv, err := NewRegionServer(RegionConfig{Regions: 2, SitesPerRegion: 1, NodesPerSite: 2})
	if err != nil {
		t.Fatal(err)
	}
	bs := ScenarioBitstream()
	if err := srv.Publish(bs); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	if got := srv.Federation().Regions(); got != 2 {
		t.Fatalf("Regions() = %d, want 2", got)
	}
	for i := 0; i < 4; i++ {
		h, err := srv.SubmitAt(region.Request{
			Tenant: "t", App: "app", Workflow: AdaptiveWorkflow(i, bs.ID),
			Home: i % 2, Arrival: float64(i), Class: region.Interactive,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Shutdown()
	if st.Federation.Completed != 4 || len(st.Results) != 4 {
		t.Fatalf("completed %d results %d, want 4/4", st.Federation.Completed, len(st.Results))
	}
	for i, res := range st.Results {
		if res.Arrival != float64(i) {
			t.Fatalf("result %d arrival %.3f: Results not in submission order", i, res.Arrival)
		}
	}
}

func TestRegionScenarioValidates(t *testing.T) {
	sc := DefaultRegionScenario()
	if _, err := sc.RunSuite(nil); err == nil {
		t.Fatal("nil suite accepted")
	}
	s, err := sc.BuildSuite()
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []func(*RegionScenario){
		func(sc *RegionScenario) { sc.Regions = 0 },
		func(sc *RegionScenario) { sc.Workflows = 0 },
		func(sc *RegionScenario) { sc.ArrivalGap = 0 },
		func(sc *RegionScenario) { sc.BlockSize = 0 },
	} {
		run := sc
		bad(&run)
		if _, err := run.RunSuite(s); err == nil {
			t.Fatalf("bad scenario accepted: %+v", run)
		}
	}
	run := sc
	run.WAN = "no-such-fabric"
	if _, err := run.RunSuite(s); err == nil {
		t.Fatal("bad WAN name accepted")
	}
	run = sc
	run.Apps = []string{"no-such-app"}
	if _, err := run.Run(); err == nil {
		t.Fatal("unknown app accepted")
	}
}

// TestRegionScenarioPrefetchContrast mirrors the PR-9 bench gate: served
// over the same suite, the default E-region scenario with predictive
// prefetch must beat the prefetch-off arm on tail cold-start overhead by
// at least the gated 1.5x, with zero guaranteed-bound violations on
// either arm. Off the serving path, that is the whole point of the
// forecaster: the off arm pays wan1g refetches when the wave returns
// after batch churn, the on arm restages the store at window rolls.
func TestRegionScenarioPrefetchContrast(t *testing.T) {
	sc := DefaultRegionScenario()
	s, err := sc.BuildSuite()
	if err != nil {
		t.Fatal(err)
	}
	arms := map[bool]RegionResult{}
	for _, pf := range []bool{true, false} {
		run := sc
		run.Prefetch = pf
		res, err := run.RunSuite(s)
		if err != nil {
			t.Fatal(err)
		}
		if res.Completed != sc.Workflows {
			t.Fatalf("prefetch=%v completed %d/%d", pf, res.Completed, sc.Workflows)
		}
		if res.BoundViolations != 0 {
			t.Fatalf("prefetch=%v: %d guaranteed-bound violations", pf, res.BoundViolations)
		}
		if res.GuaranteedAdmitted == 0 {
			t.Fatalf("prefetch=%v: no guaranteed admissions", pf)
		}
		arms[pf] = res
	}
	on, off := arms[true], arms[false]
	prefetchSeconds := 0.0
	for _, r := range on.Stats.Regions {
		prefetchSeconds += r.PrefetchSeconds
	}
	if on.PrefetchFetches == 0 || prefetchSeconds <= 0 {
		t.Fatalf("prefetch on: no prefetch fetches recorded (%+v)", on.Stats)
	}
	if off.PrefetchFetches != 0 {
		t.Fatalf("prefetch off: %d prefetch fetches recorded", off.PrefetchFetches)
	}
	if on.TailColdStartP99 <= 0 || off.TailColdStartP99 <= 0 {
		t.Fatalf("degenerate tail overhead: on=%.4f off=%.4f", on.TailColdStartP99, off.TailColdStartP99)
	}
	if ratio := off.TailColdStartP99 / on.TailColdStartP99; ratio < 1.5 {
		t.Fatalf("prefetch speedup %.2fx < 1.5x (on=%.4fs off=%.4fs)",
			ratio, on.TailColdStartP99, off.TailColdStartP99)
	}
	if on.TailCold >= off.TailCold {
		t.Fatalf("tail cold serves: on=%d off=%d, want prefetch to reduce them", on.TailCold, off.TailCold)
	}
}

// TestRegionScenarioPartition exercises the WAN-fault path end to end: a
// region partitioned for a stretch must keep serving locally (degrading
// artifact fetches), and the run must still complete every workflow.
func TestRegionScenarioPartition(t *testing.T) {
	sc := DefaultRegionScenario()
	sc.Workflows = 60
	sc.Partitions = []region.Partition{{Region: 0, From: 5, Until: 20}}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != sc.Workflows {
		t.Fatalf("completed %d/%d under partition", res.Completed, sc.Workflows)
	}
	skips := 0
	for _, r := range res.Stats.Regions {
		skips += r.PartitionSkips
	}
	if skips == 0 {
		t.Fatal("partition never forced a local degrade")
	}
}

func TestRegionScenarioSaturate(t *testing.T) {
	sc := DefaultRegionScenario()
	sc.Workflows = 40
	sc.SLO = 30
	s, err := sc.BuildSuite()
	if err != nil {
		t.Fatal(err)
	}
	points, best, err := sc.Saturate(s, []float64{0.5, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2", len(points))
	}
	if best.Gap == 0 || !best.SLOMet {
		t.Fatalf("no SLO-meeting rung selected: %+v", best)
	}
	if _, _, err := sc.Saturate(s, []float64{0.5, 0.5}); err == nil {
		t.Fatal("duplicate gap accepted")
	}
	if _, _, err := sc.Saturate(s, []float64{-1}); err == nil {
		t.Fatal("negative gap accepted")
	}
}

// renderRegionTraces runs the scenario with all three trace tiers —
// region events, per-region fleet events, per-site engine events —
// rendered into one byte stream.
func renderRegionTraces(t *testing.T, sc RegionScenario, s *apps.Suite) []byte {
	t.Helper()
	var buf bytes.Buffer
	sc.Trace = func(ev region.Event) {
		fmt.Fprintf(&buf, "R %d %s %s %s %s %s %.9f %s\n",
			ev.Kind, ev.Region, ev.Tenant, ev.Workflow, ev.App, ev.Bitstream, ev.Time, ev.Detail)
	}
	sc.FleetTrace = func(regionName string, ev fleet.Event) {
		fmt.Fprintf(&buf, "F %s %d %s %s %s %s %.9f %s\n",
			regionName, ev.Kind, ev.Site, ev.Tenant, ev.Workflow, ev.Bitstream, ev.Time, ev.Detail)
	}
	sc.EngineTrace = func(regionName, site string, ev rt.Event) {
		fmt.Fprintf(&buf, "E %s %s %d %s %s %s %s %.9f %s\n",
			regionName, site, ev.Kind, ev.Workflow, ev.Tenant, ev.Task, ev.Node, ev.Time, ev.Detail)
	}
	res, err := sc.RunSuite(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("scenario completed no workflows; trace proves nothing")
	}
	if buf.Len() == 0 {
		t.Fatal("no trace events captured")
	}
	return buf.Bytes()
}

// TestRegionScenarioDeterministicTrace extends the PR-6 determinism
// contract one tier up: the merged region+fleet+engine trace of the
// E-region scenario — router decisions, WAN fetches, prefetch stages,
// holds and preemptions included — must be byte-identical across
// scheduler widths. CI runs this under -race.
func TestRegionScenarioDeterministicTrace(t *testing.T) {
	sc := DefaultRegionScenario()
	sc.Workflows = 60 // enough for holds, prefetch and wave returns; keeps -race runtime sane
	s, err := sc.BuildSuite()
	if err != nil {
		t.Fatal(err)
	}
	ref := atGOMAXPROCS(1, func() []byte { return renderRegionTraces(t, sc, s) })
	for _, kind := range []string{"R ", "F ", "E "} {
		if !strings.Contains(string(ref), "\n"+kind) && !strings.HasPrefix(string(ref), kind) {
			t.Fatalf("trace stream has no %q events", kind)
		}
	}
	got := atGOMAXPROCS(8, func() []byte { return renderRegionTraces(t, sc, s) })
	if !bytes.Equal(ref, got) {
		t.Fatalf("region trace diverged across GOMAXPROCS (%d vs %d bytes):\n%s",
			len(ref), len(got), firstDiff(ref, got))
	}
}
