package sdk

import (
	"math/rand"
	"strings"
	"testing"

	"everest/internal/autotuner"
	"everest/internal/base2"
	"everest/internal/ekl"
	"everest/internal/hls"
	"everest/internal/olympus"
	"everest/internal/platform"
	"everest/internal/runtime"
	"everest/internal/tensor"
	"everest/internal/traffic"
)

const saxpySrc = `
kernel saxpy {
  input x : [N]
  input y : [N]
  param alpha = 2.0
  out = alpha * x[i] + y[i]
  output out[i]
}
`

func saxpyBinding(n int) ekl.Binding {
	rng := rand.New(rand.NewSource(1))
	return ekl.Binding{Tensors: map[string]*tensor.Tensor{
		"x": tensor.Random(rng, -1, 1, n),
		"y": tensor.Random(rng, -1, 1, n),
	}}
}

func TestCompileEndToEnd(t *testing.T) {
	res, err := Compile(saxpySrc, saxpyBinding(4096), CompileOptions{
		Olympus: olympus.Options{SharePLM: true, DoubleBuffer: true, Replicate: true, MaxReplicas: 4, PackData: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Module.CountOps("affine.for") == 0 {
		t.Error("lowering must produce affine loops")
	}
	if res.Report.LatencyCycle <= 0 {
		t.Error("HLS report missing")
	}
	if res.Design.Bitstream.Config.Replicas < 1 {
		t.Error("olympus design missing")
	}
	if len(res.PassStats) != 2 {
		t.Errorf("expected 2 pass stats, got %d", len(res.PassStats))
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile("kernel {", ekl.Binding{}, CompileOptions{}); err == nil {
		t.Error("parse error must propagate")
	}
	if _, err := Compile(saxpySrc, ekl.Binding{}, CompileOptions{}); err == nil {
		t.Error("missing binding must propagate")
	}
	if _, err := Compile(saxpySrc, saxpyBinding(64), CompileOptions{Backend: "ghdl"}); err == nil {
		t.Error("unknown backend must fail")
	}
	if _, err := Compile(saxpySrc, saxpyBinding(64), CompileOptions{Device: "virtex2"}); err == nil {
		t.Error("unknown device must fail")
	}
	posit, _ := base2.NewPositFormat(16, 1)
	if _, err := Compile(saxpySrc, saxpyBinding(64), CompileOptions{Backend: "vitis", Format: posit}); err == nil {
		t.Error("vitis+posit must fail (paper: posits need bambu)")
	}
	if _, err := Compile(saxpySrc, saxpyBinding(64), CompileOptions{Backend: "bambu", Format: posit}); err != nil {
		t.Errorf("bambu+posit must work: %v", err)
	}
}

func TestPublishDeployRun(t *testing.T) {
	s := New(DefaultCluster(2))
	res, err := Compile(saxpySrc, saxpyBinding(4096), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Publish(res); err != nil {
		t.Fatal(err)
	}
	dt, err := s.Deploy(res.Design.Bitstream.ID, "node00")
	if err != nil || dt <= 0 {
		t.Fatalf("Deploy: %v (%g)", err, dt)
	}
	if _, err := s.Deploy(res.Design.Bitstream.ID, "ghost"); err == nil {
		t.Error("unknown node must fail")
	}
	if _, err := s.Deploy("missing", "node00"); err == nil {
		t.Error("unknown bitstream must fail")
	}

	// Schedule a workflow that uses it.
	w := runtime.NewWorkflow()
	if err := w.Submit(runtime.TaskSpec{
		Name: "saxpy", Flops: 1e10, InputBytes: 1 << 22, OutputBytes: 1 << 22,
		NeedsFPGA: true, BitstreamID: res.Design.Bitstream.ID,
	}); err != nil {
		t.Fatal(err)
	}
	sched, err := s.NewScheduler(runtime.PolicyHEFT).Plan(w)
	if err != nil {
		t.Fatal(err)
	}
	if !sched.Assignments[0].OnFPGA {
		t.Error("deployed kernel should run on the FPGA")
	}
}

func TestExplorePlacement(t *testing.T) {
	// E10 in miniature: a heavy data-parallel stage should go to FPGA, a
	// tiny control stage should stay on CPU.
	stages := []StageCost{
		{
			Name: "projection", Flops: 8e10, Offloadable: true,
			Kernel:  traffic.PTDRKernel(200, 20000),
			BytesIn: 1 << 24, BytesOut: 1 << 20,
		},
		{Name: "bookkeeping", Flops: 1e6, Offloadable: false},
	}
	ps, err := ExplorePlacement(stages, platform.XeonModel(), platform.AlveoU55C(), hls.VitisBackend{})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Placement{}
	for _, p := range ps {
		byName[p.Stage] = p
	}
	if byName["projection"].Target != "fpga" {
		t.Errorf("heavy stage should offload, got %+v", byName["projection"])
	}
	if byName["bookkeeping"].Target != "cpu" {
		t.Errorf("tiny stage should stay on CPU, got %+v", byName["bookkeeping"])
	}
	rows := PlacementSummary(ps)
	if len(rows) != 2 || !strings.Contains(strings.Join(rows, "\n"), "fpga") {
		t.Errorf("summary wrong: %v", rows)
	}
}

func TestGenericBinding(t *testing.T) {
	src := `
kernel g {
  input a : [N, 4]
  input sel : [N] index
  param w = 2.5
  iparam k
  out = w * a[i, j] + a[sel[i], j]
  output out[i, j]
}
`
	k, err := ekl.ParseKernel(src)
	if err != nil {
		t.Fatal(err)
	}
	b := GenericBinding(k, 8)
	if b.Tensors["a"].Shape()[0] != 8 || b.Tensors["a"].Shape()[1] != 4 {
		t.Errorf("shape synthesis wrong: %v", b.Tensors["a"].Shape())
	}
	if b.Scalars["w"] != 2.5 {
		t.Error("param default not used")
	}
	if b.Scalars["k"] != 1 {
		t.Error("defaultless iparam should get 1")
	}
	// The binding must actually run.
	if _, err := k.Run(b); err != nil {
		t.Fatalf("generic binding must be runnable: %v", err)
	}
	// And compile end to end.
	if _, err := Compile(src, b, CompileOptions{}); err != nil {
		t.Fatalf("generic binding must compile: %v", err)
	}
}

func TestTuneTask(t *testing.T) {
	knobs := []autotuner.Knob{{Name: "impl", Values: []string{"cpu", "fpga"}},
		{Name: "samples", Values: []string{"1000", "10000"}}}
	points := []autotuner.OperatingPoint{
		{Config: autotuner.Config{"impl": "cpu", "samples": "1000"},
			Metrics: map[autotuner.Metric]float64{autotuner.MetricTimeMs: 500}},
		{Config: autotuner.Config{"impl": "fpga", "samples": "10000"},
			Metrics: map[autotuner.Metric]float64{autotuner.MetricTimeMs: 40}},
	}
	at, err := autotuner.New(knobs, points, nil,
		autotuner.Rank{Metric: autotuner.MetricTimeMs, Minimize: true})
	if err != nil {
		t.Fatal(err)
	}
	spec := runtime.TaskSpec{Name: "mc", Knobs: map[string]string{"samples": "500"}}
	sel := TuneTask(at, &spec)
	if sel.Config["impl"] != "fpga" {
		t.Errorf("selected %v, want fpga variant", sel.Config)
	}
	if spec.Knobs["impl"] != "fpga" {
		t.Error("tuned knob must be merged into the task spec")
	}
	if spec.Knobs["samples"] != "500" {
		t.Error("user-set knobs must be preserved")
	}
}

func TestDefaultClusterShape(t *testing.T) {
	c := DefaultCluster(3)
	if len(c.Nodes) != 4 {
		t.Fatalf("nodes = %d, want 3 + cloudfpga", len(c.Nodes))
	}
	if c.FindNode("cloudfpga0") == nil {
		t.Error("cloudFPGA node missing")
	}
	if c.Nodes[0].Devices[0].Attachment != platform.PCIeAttached {
		t.Error("compute nodes must carry PCIe FPGAs")
	}
}
