package sdk

import (
	"bytes"
	"testing"
)

// TestGuaranteedVerifierZeroViolations is the PR-8 soundness contract: at
// best-effort saturation, through an accelerator unplug AND a 3x CPU
// slowdown on site 0, not one admitted guaranteed workflow may finish past
// its proven bound. The admission math is either sound or it is not —
// the gate is exactly zero, not "few".
func TestGuaranteedVerifierZeroViolations(t *testing.T) {
	sc := DefaultGuaranteedScenario()
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.BoundViolations != 0 {
		t.Fatalf("%d guaranteed completions missed their proven bound (admitted %d)",
			res.BoundViolations, res.GuaranteedAdmitted)
	}
	if res.GuaranteedAdmitted == 0 {
		t.Fatal("scenario admitted no guaranteed work; the verifier proves nothing")
	}
	if res.GuaranteedRefused == 0 {
		t.Fatal("scenario refused no guaranteed work; admission control was never exercised")
	}
	if res.BoundTightness <= 0 || res.BoundTightness > 1 {
		t.Fatalf("bound tightness %.3f out of (0, 1]: a ratio > 1 is a violation, <= 0 means no bound was recorded", res.BoundTightness)
	}
	if res.Completed != sc.Workflows {
		t.Fatalf("completed %d/%d: refusals must degrade to best-effort, not drop work",
			res.Completed, sc.Workflows)
	}
	if got := res.Stats.Fleet.Guaranteed(); got != res.GuaranteedAdmitted {
		t.Fatalf("fleet settled %d guaranteed completions, admission recorded %d", got, res.GuaranteedAdmitted)
	}
}

// TestGuaranteedAdmitRateMonotone: loosening the deadline can only admit
// more — the admission bound is deadline-independent, so the candidate set
// grows monotonically.
func TestGuaranteedAdmitRateMonotone(t *testing.T) {
	prev := -1.0
	for _, dl := range []float64{1, 4, 16} {
		sc := DefaultGuaranteedScenario()
		sc.GuaranteedDeadline = dl
		res, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.BoundViolations != 0 {
			t.Fatalf("deadline %g: %d bound violations", dl, res.BoundViolations)
		}
		if res.GuaranteedAdmitRate < prev {
			t.Fatalf("admit rate fell from %.2f to %.2f as the deadline loosened to %g",
				prev, res.GuaranteedAdmitRate, dl)
		}
		prev = res.GuaranteedAdmitRate
	}
	if prev < 1 {
		t.Fatalf("a 16s deadline should admit everything on this scenario, got rate %.2f", prev)
	}
}

// TestGuaranteedScenarioDeterministicTrace extends the PR-6 determinism
// contract to the guaranteed-class path: the merged fleet+engine trace —
// which now includes the admission bounds in the route events — must be
// byte-identical across scheduler widths.
func TestGuaranteedScenarioDeterministicTrace(t *testing.T) {
	sc := DefaultGuaranteedScenario()
	c, err := sc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	run := func(sc FleetScenario) (FleetResult, error) { return sc.RunWith(c) }
	ref := atGOMAXPROCS(1, func() []byte { return renderTraces(t, sc, run) })
	got := atGOMAXPROCS(8, func() []byte { return renderTraces(t, sc, run) })
	if !bytes.Equal(ref, got) {
		t.Fatalf("guaranteed trace diverged across GOMAXPROCS (%d vs %d bytes):\n%s",
			len(ref), len(got), firstDiff(ref, got))
	}
}
