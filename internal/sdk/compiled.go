package sdk

import (
	"fmt"

	"everest/internal/base2"
	"everest/internal/netsim"
	"everest/internal/olympus"
	"everest/internal/runtime"
	"everest/internal/variants"
)

// This file closes the compilation side of the SDK loop (E-compile): a
// kernel compiled source-to-schedule by the variant pipeline is published,
// staged, and served through the same adaptive engine the hand-declared
// scenarios use — except that here every latency the scheduler consults is
// derived: the fpga execution time from the HLS schedule inside the
// generated bitstream, the software times from the CPU cost model over the
// compiled loop nest, and the tuner seeds from the compiled operating
// points (Workflow.SetVariants).

// CompiledWorkflow builds one E-compile workflow around a compiled kernel:
// an ingest stage feeding two instances of the kernel (the paper's
// replicated inference pattern) and a publish stage. The kernel tasks'
// flops, transfer footprint, and FPGA offload request all come from the
// compilation; only the software ingest/publish stages — which never
// offload — carry workload constants. Index i varies ingest weight so a
// stream of submissions resembles mixed traffic.
func CompiledWorkflow(i int, c *variants.Compiled) *runtime.Workflow {
	w := runtime.NewWorkflow()
	must := func(spec runtime.TaskSpec) {
		if err := w.Submit(spec); err != nil {
			panic(fmt.Sprintf("sdk: compiled workflow %d: %v", i, err))
		}
	}
	scale := 1 + float64(i%3)/2
	must(runtime.TaskSpec{Name: "ingest", Flops: 1e9 * scale, OutputBytes: c.InputBytes})
	for _, name := range []string{"k0", "k1"} {
		must(c.Task(name, "ingest"))
	}
	must(runtime.TaskSpec{Name: "publish", Deps: []string{"k0", "k1"},
		Flops: 5e8, InputBytes: 2 * c.OutputBytes})
	return w
}

// CompiledScenario bundles one run of the E-compile experiment: a kernel
// compiled source-to-schedule, staged on part of the cluster, and served
// under mid-run faults — once on the static engine (hand-declared path:
// placement from the design-time task cost model, no tuner) and once
// adaptively with the compiled operating points seeding each workflow's
// tuner. Transfers are priced over the packetization-aware cloudFPGA
// stack in both arms.
type CompiledScenario struct {
	Kernel    string // built-in example kernel name (variants.ExampleNames)
	Opt       variants.Options
	Workflows int
	Nodes     int // compute nodes (DefaultCluster adds cloudfpga0)
	FPGANodes int // nodes the compiled bitstream is staged on (prefix)
	Tenants   int
	Slowdown  float64 // load factor hitting the last compute node
	FaultAt   float64 // modelled time both faults take effect
	Net       string  // netsim stack name ("" = flat cluster fabric)
}

// DefaultCompiledScenario is the E-compile configuration: the windpower
// KRR kernel compiled for fixed-point Vitis with banked PLMs (8 ports),
// two of four nodes carrying the bitstream, an unplug of one accelerator
// plus a 6x slowdown of one software node mid-run, and TCP/10G transfer
// pricing.
func DefaultCompiledScenario() CompiledScenario {
	return CompiledScenario{
		Kernel:    "windpower",
		Opt:       DefaultCompileOptions(),
		Workflows: 8, Nodes: 4, FPGANodes: 2, Tenants: 2,
		Slowdown: 6, FaultAt: 0.005,
		Net: "tcp10g",
	}
}

// DefaultCompileOptions is the E-compile flow configuration: fixed-point
// datapath (single-cycle accumulate, so the reduction does not bound the
// II), PLMs banked 8 ways, and the full Olympus optimization ladder.
func DefaultCompileOptions() variants.Options {
	fixed, err := base2.NewFixedFormat(4, 12)
	if err != nil {
		panic(fmt.Sprintf("sdk: default compile format: %v", err))
	}
	oly := DefaultOlympus()
	oly.MemPorts = 8
	return variants.Options{
		Backend: "vitis",
		Format:  fixed,
		Device:  "alveo-u55c",
		Olympus: oly,
	}
}

// Compile runs the scenario's kernel source-to-schedule.
func (sc CompiledScenario) Compile() (*variants.Compiled, error) {
	return variants.CompileExample(sc.Kernel, sc.Opt)
}

// Run serves the scenario's workflows once, compiling the kernel first.
// Both arms of a comparison should share one compilation: compile once
// with Compile and pass the result to RunWith.
func (sc CompiledScenario) Run(adaptive bool) (ScenarioResult, error) {
	c, err := sc.Compile()
	if err != nil {
		return ScenarioResult{}, err
	}
	return sc.RunWith(c, adaptive)
}

// RunWith serves the scenario's workflows once around an already-compiled
// kernel (from sc.Compile). adaptive selects the engine mode; the
// compiled kernel, cluster shape, staged bitstreams, fault script, and
// network stack are identical across modes, so the makespan ratio
// isolates what compiler-derived variant knowledge buys. Workflows are
// served one at a time, so the measured makespan is exactly
// deterministic under any goroutine interleaving and GOMAXPROCS.
func (sc CompiledScenario) RunWith(c *variants.Compiled, adaptive bool) (ScenarioResult, error) {
	if sc.Workflows < 1 || sc.Nodes < 2 || sc.FPGANodes < 1 || sc.FPGANodes > sc.Nodes {
		return ScenarioResult{}, fmt.Errorf("sdk: bad compiled scenario %+v", sc)
	}
	if sc.Slowdown < 1 {
		return ScenarioResult{}, fmt.Errorf("sdk: compiled scenario slowdown %g must be >= 1", sc.Slowdown)
	}
	if c == nil || c.Design == nil {
		return ScenarioResult{}, fmt.Errorf("sdk: compiled scenario needs a compiled kernel")
	}
	s := New(DefaultCluster(sc.Nodes))
	if err := s.Registry.Put(c.Design.Bitstream); err != nil {
		return ScenarioResult{}, err
	}
	for i := 0; i < sc.FPGANodes; i++ {
		if _, err := s.Deploy(c.Design.Bitstream.ID, s.Cluster.Nodes[i].Name); err != nil {
			return ScenarioResult{}, err
		}
	}

	var stack *netsim.Stack
	if sc.Net != "" {
		st, err := netsim.StackByName(sc.Net)
		if err != nil {
			return ScenarioResult{}, err
		}
		stack = &st
	}
	events := []runtime.EnvEvent{
		{Kind: runtime.EnvUnplug, Node: s.Cluster.Nodes[0].Name, Device: 0, At: sc.FaultAt},
		{Kind: runtime.EnvSlowdown, Node: s.Cluster.Nodes[sc.Nodes-1].Name, Factor: sc.Slowdown, At: sc.FaultAt},
	}
	srv := s.NewServer(ServerConfig{
		Policy: runtime.PolicyHEFT, Adaptive: adaptive, Events: events, Net: stack,
	})
	tenants := sc.Tenants
	if tenants < 1 {
		tenants = 1
	}
	if err := srv.Start(); err != nil {
		return ScenarioResult{}, err
	}
	for i := 0; i < sc.Workflows; i++ {
		w := CompiledWorkflow(i, c)
		if adaptive {
			w.SetVariants(c.Variants())
		}
		sub, err := srv.Submit(fmt.Sprintf("tenant%02d", i%tenants), "", w)
		if err != nil {
			return ScenarioResult{}, err
		}
		if _, err := sub.Wait(); err != nil {
			return ScenarioResult{}, fmt.Errorf("sdk: compiled scenario workflow %d: %w", i, err)
		}
	}
	stats := srv.Shutdown()
	return ScenarioResult{
		Stats: stats, Makespan: stats.Makespan,
		Health: srv.Monitor().Snapshot(),
	}, nil
}

// DefaultOlympus is the full system-generation optimization ladder used by
// the compiled path (matching `basecamp compile` defaults).
func DefaultOlympus() olympus.Options {
	return olympus.Options{
		SharePLM: true, DoubleBuffer: true, Replicate: true,
		MaxReplicas: 8, PackData: true,
	}
}
