package sdk

import (
	"fmt"
	"sort"

	"everest/internal/apps"
	"everest/internal/quantile"
	"everest/internal/variants"
)

// This file is the saturation harness around the fleet tier: sweep the
// open-mode arrival rate over a ladder, measure latency percentiles and
// achieved throughput at each offered load, and report the achieved
// throughput at the highest load that still meets the p95 SLO — the
// serving-capacity number BenchmarkFleetThroughput gates in CI.

// Percentile returns the q-quantile (0 < q <= 1) of xs by the
// nearest-rank method (deterministic: no interpolation). Returns 0 for
// empty input.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	return s[quantile.NearestRank(q, int64(len(s)))-1]
}

// SaturationPoint is one rung of the arrival-rate ladder.
type SaturationPoint struct {
	Gap         float64 // modelled interarrival seconds
	OfferedRate float64 // workflows per modelled second offered (1/Gap)
	Throughput  float64 // achieved workflows per modelled second
	P50         float64
	P95         float64
	Completed   int
	Rejected    int
	SLOMet      bool
}

// DefaultSaturationGaps is the standard offered-load ladder: interarrival
// gaps halving from well under saturation to far past it.
func DefaultSaturationGaps() []float64 {
	return []float64{0.64, 0.32, 0.16, 0.08, 0.04, 0.02, 0.01, 0.005, 0.0025}
}

// Saturate serves the scenario once per gap in the ladder (open arrival
// mode, same compiled kernel and aggregate workload each time) and
// returns every measured point plus the best one: the highest achieved
// throughput among rungs whose p95 latency met the SLO. A zero best means
// no rung met it.
func (sc FleetScenario) Saturate(c *variants.Compiled, gaps []float64) ([]SaturationPoint, SaturationPoint, error) {
	return saturate(gaps, func(gap float64) (FleetResult, error) {
		run := sc
		run.Closed = false
		run.ArrivalGap = gap
		return run.RunWith(c)
	})
}

// SaturateSuite sweeps the same offered-load ladder serving the built
// application suite (the mixed EVEREST use-case stream) instead of the
// single compiled kernel. The returned points carry per-application
// latency percentiles through FleetResult in addition to the aggregate.
func (sc FleetScenario) SaturateSuite(s *apps.Suite, gaps []float64) ([]SaturationPoint, SaturationPoint, []map[string]TenantLatency, error) {
	var perApp []map[string]TenantLatency
	points, best, err := saturate(gaps, func(gap float64) (FleetResult, error) {
		run := sc
		run.Closed = false
		run.ArrivalGap = gap
		res, err := run.RunSuite(s)
		if err == nil {
			perApp = append(perApp, res.Apps)
		}
		return res, err
	})
	if err != nil {
		return nil, SaturationPoint{}, nil, err
	}
	return points, best, perApp, nil
}

// saturate sweeps the offered-load ladder with one serving run per gap.
// The best point is selected by achieved throughput with ties broken
// toward the lower offered rate (larger gap): equal-throughput rungs then
// resolve the same way however the ladder is ordered, instead of letting
// input order silently decide the reported SLO point. Duplicate gaps are
// rejected for the same reason — serving the same rung twice could only
// re-measure it, and which copy won would be an accident of position.
func saturate(gaps []float64, run func(gap float64) (FleetResult, error)) ([]SaturationPoint, SaturationPoint, error) {
	if len(gaps) == 0 {
		gaps = DefaultSaturationGaps()
	}
	seen := make(map[float64]bool, len(gaps))
	var points []SaturationPoint
	var best SaturationPoint
	for _, gap := range gaps {
		if gap <= 0 {
			return nil, SaturationPoint{}, fmt.Errorf("sdk: saturation gap must be > 0, got %g", gap)
		}
		if seen[gap] {
			return nil, SaturationPoint{}, fmt.Errorf("sdk: duplicate saturation gap %g", gap)
		}
		seen[gap] = true
		res, err := run(gap)
		if err != nil {
			return nil, SaturationPoint{}, fmt.Errorf("sdk: saturation at gap %g: %w", gap, err)
		}
		p := SaturationPoint{
			Gap: gap, OfferedRate: 1 / gap,
			Throughput: res.Throughput, P50: res.P50, P95: res.P95,
			Completed: res.Completed, Rejected: res.Rejected,
			SLOMet: res.SLOMet,
		}
		points = append(points, p)
		if p.SLOMet && (p.Throughput > best.Throughput ||
			(p.Throughput == best.Throughput && p.Gap > best.Gap)) {
			best = p
		}
	}
	return points, best, nil
}
