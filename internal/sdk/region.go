package sdk

import (
	"errors"
	"fmt"
	"sync"

	"everest/internal/apps"
	"everest/internal/fleet"
	"everest/internal/netsim"
	"everest/internal/platform"
	"everest/internal/region"
	"everest/internal/runtime"
)

// This file is the SDK face of the hierarchical federation tier
// (internal/region): a RegionServer front over a fleet-of-fleets —
// regions of federated sites joined by a slow WAN, with SLO classes,
// batch preemption, per-region autoscaling and predictive bitstream
// prefetch — plus the E-region scenario: a traffic wave traveling
// around the regions with background batch churn, the workload on which
// prefetch-on must beat prefetch-off cold-start latency.

// RegionConfig configures a RegionServer.
type RegionConfig struct {
	// Regions is the number of federated regions (>= 1).
	Regions int
	// SitesPerRegion is each region's fleet size (default 2).
	SitesPerRegion int
	// InitialSitesPerRegion caps the sites serving at Start (0 = all);
	// autoscaling brings in the rest.
	InitialSitesPerRegion int
	// NodesPerSite is each site cluster's compute-node count (default 2).
	NodesPerSite int
	// CacheSlots bounds each site's resident bitstreams (fleet semantics).
	CacheSlots int
	// StoreSlots bounds each region's artifact store (region semantics;
	// 0 = unbounded).
	StoreSlots int
	// PartialReconfig, Policy, Adaptive forward to every region's fleet.
	PartialReconfig bool
	Policy          runtime.Policy
	Adaptive        bool
	// Net / RegistryNet name the intra-region fabrics ("" = defaults).
	Net         string
	RegistryNet string
	// WAN names the inter-region fabric ("" = wan10g; "wan1g" for the
	// geo-distributed flavour).
	WAN string
	// Prefetch turns on forecast-driven bitstream staging; Autoscale lets
	// regions grow and shrink their active site count.
	Prefetch  bool
	Autoscale bool
	// WindowSeconds / WarmThreshold / ForecastLag tune the forecaster
	// (region.Config semantics; zero values take the defaults).
	WindowSeconds float64
	WarmThreshold float64
	ForecastLag   int
	// Partitions scripts WAN reachability faults.
	Partitions []region.Partition
	// Trace receives region events; FleetTrace and EngineTrace receive the
	// nested tiers' events tagged with their region (and site). All three
	// are serialized — the determinism harness hashes the merged stream.
	Trace       func(region.Event)
	FleetTrace  func(regionName string, ev fleet.Event)
	EngineTrace func(regionName, site string, ev runtime.Event)
}

// RegionServer is the hierarchical submission front: a federation-wide
// artifact catalog, regional fleets behind a WAN-aware router, and SLO
// classes on every submission.
type RegionServer struct {
	Catalog *platform.Registry

	fed *region.Federation

	mu      sync.Mutex
	handles []*region.Handle
}

// NewRegionServer builds the federation: cfg.Regions fleets of
// DefaultCluster sites, each on its own registry, joined by the named
// WAN, deploying artifacts from one shared catalog.
func NewRegionServer(cfg RegionConfig) (*RegionServer, error) {
	if cfg.Regions < 1 {
		return nil, fmt.Errorf("sdk: region server needs >= 1 region, got %d", cfg.Regions)
	}
	if cfg.SitesPerRegion < 1 {
		cfg.SitesPerRegion = 2
	}
	if cfg.NodesPerSite < 1 {
		cfg.NodesPerSite = 2
	}
	stack := func(name string) (*netsim.Stack, error) {
		if name == "" {
			return nil, nil
		}
		st, err := netsim.StackByName(name)
		if err != nil {
			return nil, err
		}
		return &st, nil
	}
	net, err := stack(cfg.Net)
	if err != nil {
		return nil, err
	}
	regNet, err := stack(cfg.RegistryNet)
	if err != nil {
		return nil, err
	}
	wan, err := stack(cfg.WAN)
	if err != nil {
		return nil, err
	}
	catalog := platform.NewRegistry()
	fed, err := region.New(catalog, region.Config{
		Regions:               cfg.Regions,
		SitesPerRegion:        cfg.SitesPerRegion,
		InitialSitesPerRegion: cfg.InitialSitesPerRegion,
		NewCluster:            func(_, _ int) *platform.Cluster { return DefaultCluster(cfg.NodesPerSite) },
		CacheSlots:            cfg.CacheSlots,
		PartialReconfig:       cfg.PartialReconfig,
		Policy:                cfg.Policy,
		Adaptive:              cfg.Adaptive,
		Net:                   net,
		RegistryNet:           regNet,
		WAN:                   wan,
		StoreSlots:            cfg.StoreSlots,
		Prefetch:              cfg.Prefetch,
		Autoscale:             cfg.Autoscale,
		WindowSeconds:         cfg.WindowSeconds,
		WarmThreshold:         cfg.WarmThreshold,
		ForecastLag:           cfg.ForecastLag,
		Partitions:            cfg.Partitions,
		Trace:                 cfg.Trace,
		FleetTrace:            cfg.FleetTrace,
		EngineTrace:           cfg.EngineTrace,
	})
	if err != nil {
		return nil, err
	}
	return &RegionServer{Catalog: catalog, fed: fed}, nil
}

// Federation exposes the underlying region tier.
func (rs *RegionServer) Federation() *region.Federation { return rs.fed }

// Publish stores a bitstream in the federation-wide catalog; regions
// WAN-fetch it into their bounded stores on demand or ahead of demand.
func (rs *RegionServer) Publish(bs platform.Bitstream) error { return rs.Catalog.Put(bs) }

// Start brings every regional fleet up.
func (rs *RegionServer) Start() error { return rs.fed.Start() }

// SubmitAt routes one workflow through the federation (region.Request
// semantics: arrivals must be non-decreasing; interactive and guaranteed
// handles resolve inside the call, batch handles may stay held until
// Drain). Rejections return the routing error with nothing enqueued.
func (rs *RegionServer) SubmitAt(req region.Request) (*region.Handle, error) {
	h, err := rs.fed.SubmitAt(req)
	if err != nil {
		return nil, err
	}
	rs.mu.Lock()
	rs.handles = append(rs.handles, h)
	rs.mu.Unlock()
	return h, nil
}

// Drain advances modelled time and serves every held batch workflow.
func (rs *RegionServer) Drain(at float64) { rs.fed.Drain(at) }

// RegionServerStats is the final accounting of a region serving run.
type RegionServerStats struct {
	Federation region.Stats
	Results    []region.Result // completed workflows, submission order
}

// Shutdown drains held batch work, stops every regional fleet, and
// returns the final stats.
func (rs *RegionServer) Shutdown() RegionServerStats {
	stats := rs.fed.Shutdown()
	rs.mu.Lock()
	handles := rs.handles
	rs.mu.Unlock()
	out := RegionServerStats{Federation: stats}
	for _, h := range handles {
		res, err := h.Wait() // resolved: Shutdown drained the hold queues
		if err != nil {
			continue
		}
		out.Results = append(out.Results, res)
	}
	return out
}

// ---------------------------------------------------------------------------
// E-region scenario

// RegionScenario bundles one run of the hierarchical serving experiment:
// a traffic wave traveling around the regions — blocks of application-
// suite arrivals homed at one region, then the next — with a background
// batch app churning the bounded stores and caches, every sixth wave
// arrival riding the guaranteed class, and (optionally) each region
// forecasting the wave's return to warm its caches before it arrives.
// Submissions are driven in arrival order and awaited in class order
// (priority inline, batch after Drain), so every modelled number is
// exactly deterministic across GOMAXPROCS.
type RegionScenario struct {
	Regions               int
	SitesPerRegion        int
	InitialSitesPerRegion int
	NodesPerSite          int
	CacheSlots            int
	// StoreSlots is each region's bounded artifact store — the default is
	// smaller than the scenario's working set (suite bitstreams + the
	// batch app's), so staging order decides who survives the LRU.
	StoreSlots int
	// PartialReconfig deploys kernels into per-region FPGA slots, giving
	// each site enough resident capacity that cache warms stick — the
	// default scenario's contrast is then purely the WAN store tier.
	PartialReconfig bool
	Workflows       int
	// ArrivalGap is the interarrival inside the stream (modelled seconds).
	ArrivalGap float64
	// BlockSize is how many consecutive submissions the wave spends homed
	// at one region before moving to the next (the wave period is
	// Regions * BlockSize * ArrivalGap).
	BlockSize int
	// BatchEvery > 0 makes every BatchEvery-th submission a background
	// batch workflow (its own bitstream, home rotating independently of
	// the wave) — deferrable cache churn.
	BatchEvery int
	// GuaranteedEvery > 0 submits every GuaranteedEvery-th wave arrival
	// through the proven-bound class with GuaranteedDeadline; refusals
	// degrade to interactive and are counted.
	GuaranteedEvery    int
	GuaranteedDeadline float64
	// InputBytes is each workflow's WAN handoff payload.
	InputBytes int64
	// Prefetch / Autoscale / WindowSeconds / WarmThreshold / ForecastLag
	// forward to the federation (RegionConfig semantics). ForecastLag must
	// cover the wave period in windows for the KRR to see returns coming.
	Prefetch      bool
	Autoscale     bool
	WindowSeconds float64
	WarmThreshold float64
	ForecastLag   int
	// WAN / Net / RegistryNet name the fabrics (RegionConfig semantics).
	WAN         string
	Net         string
	RegistryNet string
	Adaptive    bool
	// SLO is the tail-latency target the saturation metric gates on
	// (applied to TailP99; 0 = report only).
	SLO float64
	// Apps names the workload-registry applications the wave serves.
	Apps []string
	// Partitions scripts WAN faults.
	Partitions []region.Partition
	// Trace / FleetTrace / EngineTrace mirror RegionConfig (the
	// determinism harness hashes the merged stream).
	Trace       func(region.Event)
	FleetTrace  func(regionName string, ev fleet.Event)
	EngineTrace func(regionName, site string, ev runtime.Event)
}

// DefaultRegionScenario is the E-region configuration: 3 regions of 3
// sites joined by the geo WAN (wan1g), a wave of the three EVEREST
// suite apps spending 4 submissions per region (period 6s = 6 forecast
// windows, within the KRR's lag), every 5th submission a batch
// Monte-Carlo whose own bitstream churns the 4-slot region stores
// against a 5-artifact working set, every 7th wave arrival guaranteed
// (7 is coprime with the 3-app cycle, so the proven-bound class rotates
// across the suite), and prefetch ON. The geometry pins the on/off contrast to exactly
// the WAN store tier: the 24 MiB input payload prices an inter-region
// handoff above an image refetch (so the wave serves at home instead of
// trailing the still-warm previous region), three sites absorb a block
// without queue contention, and partial reconfiguration makes deploys
// quarter-image. Without prefetch, a wave returning after batch churn
// pays a wan1g refetch on the serving path (~0.24-0.47s of overhead);
// with prefetch, the forecaster restages the store at window rolls and
// the overhead collapses to at most one PR-slot deploy (~0.035s).
// Serve the same scenario with Prefetch=false for the cold-start
// contrast the bench gates.
func DefaultRegionScenario() RegionScenario {
	return RegionScenario{
		Regions: 3, SitesPerRegion: 3, NodesPerSite: 2,
		CacheSlots: 4, StoreSlots: 4, PartialReconfig: true,
		Workflows: 200, ArrivalGap: 0.5, BlockSize: 4,
		BatchEvery: 5, GuaranteedEvery: 7, GuaranteedDeadline: 12,
		InputBytes:    24 << 20,
		Prefetch:      true,
		WindowSeconds: 1, WarmThreshold: 0.25, ForecastLag: 16,
		WAN: "wan1g", RegistryNet: "tcp10g",
		Adaptive: true,
		SLO:      0,
		Apps:     apps.Names(),
	}
}

// RegionResult is one serving run of the scenario.
type RegionResult struct {
	Stats     region.Stats
	Completed int
	Rejected  int
	Makespan  float64
	// Throughput is completed workflows per modelled second.
	Throughput float64
	// P50/P95/Max summarize the non-batch (interactive + guaranteed)
	// latency distribution over the whole stream; batch latencies are
	// hold-dominated by design and reported separately.
	P50, P95, Max float64
	BatchP95      float64
	// TailP99 and TailColdStartP99 are the steady-state serving metrics,
	// computed over non-batch submissions in the tail half of the stream —
	// past the forecaster's warmup, where prediction (not first-contact
	// cold serves) decides who is warm. TailP99 is the p99 latency;
	// TailColdStartP99 is the p99 of the serving overhead (latency minus
	// engine service time: WAN handoff + artifact fetch + queue wait +
	// deployment) — the cold-start number prefetch attacks, insensitive to
	// the apps' intrinsic compute times. TailCold counts the cold serves
	// in the same slice.
	TailP99          float64
	TailColdStartP99 float64
	TailCold         int
	SLOMet           bool
	// Guaranteed accounting (FleetResult semantics).
	GuaranteedAdmitted  int
	GuaranteedRefused   int
	GuaranteedAdmitRate float64
	BoundViolations     int
	BoundTightness      float64
	// Prefetch accounting.
	ColdServes      int
	PrefetchFetches int
	Warms           int
	Handoffs        int
	Preemptions     int
}

// BuildSuite compiles the scenario's application suite (shared across
// runs: the prefetch on/off contrast and the saturation ladder re-serve
// the same compilations).
func (sc RegionScenario) BuildSuite() (*apps.Suite, error) {
	return apps.BuildSuite(apps.DefaultOptions(), sc.Apps...)
}

// Run builds the suite and serves the scenario once.
func (sc RegionScenario) Run() (RegionResult, error) {
	s, err := sc.BuildSuite()
	if err != nil {
		return RegionResult{}, err
	}
	return sc.RunSuite(s)
}

// batchBitstream is the background batch app's own artifact: one more
// distinct bitstream than the stores can hold.
func batchBitstream() platform.Bitstream {
	bs := ScenarioBitstream()
	bs.ID = "region-batch-mc"
	bs.Kernel = "mc-batch"
	return bs
}

// RunSuite serves the scenario once around a built application suite.
func (sc RegionScenario) RunSuite(s *apps.Suite) (RegionResult, error) {
	if s == nil || len(s.Apps) == 0 {
		return RegionResult{}, fmt.Errorf("sdk: region scenario needs a built application suite")
	}
	if sc.Regions < 1 || sc.Workflows < 1 || sc.ArrivalGap <= 0 || sc.BlockSize < 1 {
		return RegionResult{}, fmt.Errorf("sdk: bad region scenario %+v", sc)
	}
	srv, err := NewRegionServer(RegionConfig{
		Regions: sc.Regions, SitesPerRegion: sc.SitesPerRegion,
		InitialSitesPerRegion: sc.InitialSitesPerRegion,
		NodesPerSite:          sc.NodesPerSite,
		CacheSlots:            sc.CacheSlots, StoreSlots: sc.StoreSlots,
		PartialReconfig: sc.PartialReconfig,
		Adaptive:        sc.Adaptive,
		Net:             sc.Net, RegistryNet: sc.RegistryNet, WAN: sc.WAN,
		Prefetch: sc.Prefetch, Autoscale: sc.Autoscale,
		WindowSeconds: sc.WindowSeconds, WarmThreshold: sc.WarmThreshold,
		ForecastLag: sc.ForecastLag,
		Partitions:  sc.Partitions,
		Trace:       sc.Trace, FleetTrace: sc.FleetTrace, EngineTrace: sc.EngineTrace,
	})
	if err != nil {
		return RegionResult{}, err
	}
	for _, bs := range s.Bitstreams() {
		if err := srv.Publish(bs); err != nil {
			return RegionResult{}, err
		}
	}
	mc := batchBitstream()
	if err := srv.Publish(mc); err != nil {
		return RegionResult{}, err
	}
	if err := srv.Start(); err != nil {
		return RegionResult{}, err
	}

	type pending struct {
		idx    int
		handle *region.Handle
	}
	var batches []pending
	type record struct {
		latency  float64
		overhead float64 // latency minus engine service: the serving stalls
		cold     bool
		batch    bool
		ok       bool
	}
	records := make([]record, sc.Workflows)
	gAdmitted, gRefused := 0, 0
	tightness := 0.0
	waveIdx := 0
	var lastArrival float64
	for i := 0; i < sc.Workflows; i++ {
		arrival := float64(i) * sc.ArrivalGap
		lastArrival = arrival
		if sc.BatchEvery > 0 && i%sc.BatchEvery == sc.BatchEvery-1 {
			// Background batch: its own app and bitstream, home rotating
			// independently of the wave, deferrable.
			h, err := srv.SubmitAt(region.Request{
				Tenant: "batch", App: "mc",
				Workflow:   AdaptiveWorkflow(i, mc.ID),
				Home:       i % sc.Regions,
				Arrival:    arrival,
				Class:      region.Batch,
				InputBytes: sc.InputBytes,
			})
			if err != nil {
				return RegionResult{}, fmt.Errorf("sdk: region scenario batch %d: %w", i, err)
			}
			batches = append(batches, pending{idx: i, handle: h})
			continue
		}
		app, w := s.Workflow(waveIdx)
		req := region.Request{
			Tenant: fmt.Sprintf("tenant%02d", waveIdx%8), App: app.Name,
			Workflow:   w,
			Home:       (i / sc.BlockSize) % sc.Regions,
			Arrival:    arrival,
			Class:      region.Interactive,
			InputBytes: sc.InputBytes,
		}
		guaranteed := sc.GuaranteedEvery > 0 && waveIdx%sc.GuaranteedEvery == 0
		waveIdx++
		if guaranteed {
			req.Class = region.Guaranteed
			req.Deadline = sc.GuaranteedDeadline
		}
		h, err := srv.SubmitAt(req)
		if guaranteed {
			if err == nil {
				gAdmitted++
			} else if errors.Is(err, fleet.ErrSaturated) {
				// No region can prove the deadline: degrade to interactive.
				gRefused++
				req.Class = region.Interactive
				req.Deadline = 0
				h, err = srv.SubmitAt(req)
			}
		}
		if err != nil {
			return RegionResult{}, fmt.Errorf("sdk: region scenario workflow %d: %w", i, err)
		}
		res, err := h.Wait()
		if err != nil {
			srv.Shutdown()
			return RegionResult{}, fmt.Errorf("sdk: region scenario workflow %d: %w", i, err)
		}
		records[i] = record{latency: res.Latency, overhead: res.Latency - res.Service, cold: res.Cold, ok: true}
		if res.Guaranteed && res.Bound > 0 {
			if r := res.Latency / res.Bound; r > tightness {
				tightness = r
			}
		}
	}
	srv.Drain(lastArrival)
	for _, p := range batches {
		res, err := p.handle.Wait()
		if err != nil {
			srv.Shutdown()
			return RegionResult{}, fmt.Errorf("sdk: region scenario batch %d: %w", p.idx, err)
		}
		records[p.idx] = record{latency: res.Latency, overhead: res.Latency - res.Service, cold: res.Cold, batch: true, ok: true}
	}

	final := srv.Shutdown()
	stats := final.Federation
	var priority, batch, tail, tailOverhead []float64
	tailCold := 0
	for i, r := range records {
		if !r.ok {
			continue
		}
		if r.batch {
			batch = append(batch, r.latency)
			continue
		}
		priority = append(priority, r.latency)
		if i >= sc.Workflows/2 {
			tail = append(tail, r.latency)
			tailOverhead = append(tailOverhead, r.overhead)
			if r.cold {
				tailCold++
			}
		}
	}
	out := RegionResult{
		Stats:            stats,
		Completed:        stats.Completed,
		Rejected:         stats.Rejected,
		Makespan:         stats.Makespan,
		P50:              Percentile(priority, 0.50),
		P95:              Percentile(priority, 0.95),
		Max:              Percentile(priority, 1.0),
		BatchP95:         Percentile(batch, 0.95),
		TailP99:          Percentile(tail, 0.99),
		TailColdStartP99: Percentile(tailOverhead, 0.99),
		TailCold:         tailCold,

		GuaranteedAdmitted: gAdmitted,
		GuaranteedRefused:  gRefused,
		BoundViolations:    stats.BoundViolations,
		BoundTightness:     tightness,

		ColdServes:      stats.ColdServes,
		PrefetchFetches: stats.PrefetchFetches,
		Warms:           stats.Warms,
		Handoffs:        stats.Handoffs,
		Preemptions:     stats.Preemptions,
	}
	if gAdmitted+gRefused > 0 {
		out.GuaranteedAdmitRate = float64(gAdmitted) / float64(gAdmitted+gRefused)
	}
	if out.Makespan > 0 {
		out.Throughput = float64(out.Completed) / out.Makespan
	}
	out.SLOMet = out.Completed == sc.Workflows && (sc.SLO <= 0 || out.TailP99 <= sc.SLO)
	return out, nil
}

// Saturate sweeps the offered-load ladder over the region scenario (one
// serving run per interarrival gap around the same built suite) and
// returns every point plus the best: the highest achieved throughput
// among rungs whose TailP99 met the SLO.
func (sc RegionScenario) Saturate(s *apps.Suite, gaps []float64) ([]SaturationPoint, SaturationPoint, error) {
	if len(gaps) == 0 {
		gaps = DefaultSaturationGaps()
	}
	seen := make(map[float64]bool, len(gaps))
	var points []SaturationPoint
	var best SaturationPoint
	for _, gap := range gaps {
		if gap <= 0 {
			return nil, SaturationPoint{}, fmt.Errorf("sdk: saturation gap must be > 0, got %g", gap)
		}
		if seen[gap] {
			return nil, SaturationPoint{}, fmt.Errorf("sdk: duplicate saturation gap %g", gap)
		}
		seen[gap] = true
		run := sc
		run.ArrivalGap = gap
		res, err := run.RunSuite(s)
		if err != nil {
			return nil, SaturationPoint{}, fmt.Errorf("sdk: region saturation at gap %g: %w", gap, err)
		}
		p := SaturationPoint{
			Gap: gap, OfferedRate: 1 / gap,
			Throughput: res.Throughput, P50: res.P50, P95: res.TailP99,
			Completed: res.Completed, Rejected: res.Rejected,
			SLOMet: res.SLOMet,
		}
		points = append(points, p)
		if p.SLOMet && (p.Throughput > best.Throughput ||
			(p.Throughput == best.Throughput && p.Gap > best.Gap)) {
			best = p
		}
	}
	return points, best, nil
}
