package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"everest/internal/airquality"
	"everest/internal/energy"
	"everest/internal/traffic"
	"everest/internal/wrf"
)

// E11 — WRF ensemble with FPGA-accelerated radiation (§II-A, §VIII):
// Amdahl speedup of the step, ensemble capacity per deadline, and the
// assimilation benefit.
func E11() (Table, error) {
	t := Table{
		ID:     "E11",
		Title:  "Accelerated WRF: radiation share, step speedup, ensemble capacity",
		Header: []string{"quantity", "value"},
	}
	cfg := wrf.Config{NX: 16, NY: 16, NZ: 8, DT: 60, DX: 3000, RadiationEvery: 1}
	s := wrf.NewState(cfg, 11)
	rad := wrf.NewRadiation(11, cfg.NZ)
	s.Run(rad, 10)
	frac := s.RadiationFraction()
	t.Rows = append(t.Rows, []string{"radiation share of step cost", fmt.Sprintf("%.1f%%", frac*100)})
	t.metric("radiation_fraction", frac)

	// FPGA acceleration of radiation: modelled 8x kernel speedup (from the
	// E3/E4 datapath numbers) -> Amdahl step speedup.
	const kernelSpeedup = 8.0
	stepSpeedup := 1 / ((1 - frac) + frac/kernelSpeedup)
	t.Rows = append(t.Rows, []string{"radiation kernel speedup (FPGA)", fmt.Sprintf("%.1fx", kernelSpeedup)})
	t.Rows = append(t.Rows, []string{"whole-step speedup (Amdahl)", fmt.Sprintf("%.2fx", stepSpeedup)})
	t.metric("step_speedup", stepSpeedup)

	// Ensemble capacity in a fixed wall-clock budget grows by the same
	// factor — the paper's "more frequent and possibly more accurate
	// simulations" enabler.
	baseMembers := 8
	t.Rows = append(t.Rows, []string{"ensemble members per deadline",
		fmt.Sprintf("%d -> %d", baseMembers, int(float64(baseMembers)*stepSpeedup))})

	// Assimilation benefit.
	exp, err := wrf.RunAssimilationExperiment(cfg, 10, 8, 40, 11)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{"background T RMSE (K)", f3(exp.BackgroundRMSE)})
	t.Rows = append(t.Rows, []string{"analysis T RMSE (K)", f3(exp.AnalysisRMSE)})
	t.Rows = append(t.Rows, []string{"forecast RMSE free/assimilated",
		fmt.Sprintf("%s / %s", f3(exp.ForecastRMSEFree), f3(exp.ForecastRMSEAssim))})
	t.metric("analysis_gain", exp.BackgroundRMSE/exp.AnalysisRMSE)

	// Ensemble skill.
	ens, err := wrf.RunEnsemble(cfg, 8, 30, 11)
	if err != nil {
		return t, err
	}
	avgMember := 0.0
	for _, r := range ens.MemberRMSE {
		avgMember += r
	}
	avgMember /= float64(len(ens.MemberRMSE))
	t.Rows = append(t.Rows, []string{"ensemble mean RMSE vs avg member",
		fmt.Sprintf("%s vs %s", f3(ens.MeanRMSE), f3(avgMember))})
	t.metric("ensemble_gain", avgMember/ens.MeanRMSE)
	return t, nil
}

// E12 — renewable-energy prediction backtest (§II-B): KRR vs baselines.
func E12() (Table, error) {
	t := Table{
		ID:     "E12",
		Title:  "Wind-power forecast backtest (12-turbine farm, 1600h synthetic year)",
		Header: []string{"model", "MAE kW", "vs KRR"},
	}
	farm := energy.NewFarm(12)
	ds := energy.SynthesizeYear(7, 1600, farm)
	res, err := energy.Backtest(ds, 0.6, energy.DefaultKRR())
	if err != nil {
		return t, err
	}
	rows := []struct {
		name string
		mae  float64
	}{
		{"Kernel Ridge (paper's algorithm)", res.MAEKRR},
		{"linear regression", res.MAELinear},
		{"physical power curve", res.MAEPhysical},
		{"persistence (24h)", res.MAEPersistence},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.name, f3(r.mae), fmt.Sprintf("%.2fx", r.mae/res.MAEKRR)})
	}
	t.metric("krr_mae", res.MAEKRR)
	t.metric("persistence_mae", res.MAEPersistence)
	t.metric("physical_mae", res.MAEPhysical)
	return t, nil
}

// E13 — air-quality monitoring (§II-C): ensemble + ML correction and the
// emission-reduction decision cost.
func E13() (Table, error) {
	t := Table{
		ID:     "E13",
		Title:  "Air-quality forecast: ensemble + ML correction + decision layer",
		Header: []string{"pipeline", "log-error", "decision cost k€ (30 days)"},
	}
	sources := []airquality.Source{
		{X: 0, Y: 0, Height: 40, RateGS: 80},
		{X: 150, Y: 50, Height: 25, RateGS: 30},
	}
	receptors := []airquality.Receptor{
		{X: 800, Y: 0, Z: 1.5}, {X: 1500, Y: 200, Z: 1.5}, {X: 2500, Y: -300, Z: 1.5},
	}
	hours := 24 * 36
	met := make([]airquality.Weather, hours)
	for h := 0; h < hours; h++ {
		met[h] = airquality.Weather{
			Hour:    h,
			WindMS:  3 + 1.5*math.Sin(2*math.Pi*float64(h)/24) + 0.8*math.Sin(float64(h)/53),
			WindDir: 0.3 * math.Sin(2*math.Pi*float64(h)/48),
			TempC:   12 + 6*math.Sin(2*math.Pi*float64(h%24-6)/24),
		}
	}
	forecast := airquality.SiteForecast(sources, receptors, met)
	rng := rand.New(rand.NewSource(13))
	observed := make([]float64, hours)
	for i, v := range forecast {
		bias := math.Exp(-0.22*(met[i].WindMS-4) + 0.02*(met[i].TempC-12))
		observed[i] = v * bias * math.Exp(rng.NormFloat64()*0.05)
	}
	split := 24 * 6
	corr, err := airquality.FitCorrector(forecast[:split], observed[:split], met[:split])
	if err != nil {
		return t, err
	}

	logErr := func(pred []float64) float64 {
		s, n := 0.0, 0
		for i := split; i < hours; i++ {
			if pred[i] <= 0 || observed[i] <= 0 {
				continue
			}
			s += math.Abs(math.Log(pred[i] / observed[i]))
			n++
		}
		return s / float64(n)
	}
	corrected := make([]float64, hours)
	copy(corrected, forecast)
	for i := split; i < hours; i++ {
		corrected[i] = corr.Apply(forecast[i], met[i])
	}

	// Decision layer over daily peaks.
	threshold := percentile(observed[split:], 0.8)
	decide := func(pred []float64) float64 {
		var decisions []airquality.Decision
		var truthPeaks []float64
		for d := split / 24; d < hours/24; d++ {
			dayPred := pred[d*24 : (d+1)*24]
			dayObs := observed[d*24 : (d+1)*24]
			decisions = append(decisions, airquality.PlanDay(dayPred, threshold))
			peak := 0.0
			for _, v := range dayObs {
				if v > peak {
					peak = v
				}
			}
			truthPeaks = append(truthPeaks, peak)
		}
		return airquality.DecisionCost(decisions, truthPeaks, threshold, 20, 100) // k€
	}

	rawErr, corrErr := logErr(forecast), logErr(corrected)
	t.Rows = append(t.Rows,
		[]string{"raw plume forecast", f3(rawErr), f3(decide(forecast))},
		[]string{"+ ML correction (T10m, dir, speed)", f3(corrErr), f3(decide(corrected))},
	)
	t.metric("raw_logerr", rawErr)
	t.metric("corrected_logerr", corrErr)
	t.Notes = append(t.Notes, "correction trained on 6 days, evaluated on 30; reduction cost 20k€/day, miss penalty 100k€")
	return t, nil
}

func percentile(xs []float64, q float64) float64 {
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	idx := int(q * float64(len(cp)-1))
	return cp[idx]
}

// E14 — traffic models (§II-D): map-matching accuracy, GMM with incomplete
// data, CNN speed prediction, PTDR quantiles.
func E14() (Table, error) {
	t := Table{
		ID:     "E14",
		Title:  "Traffic model suite (grid network, synthetic FCD)",
		Header: []string{"model", "metric", "value"},
	}
	net := traffic.GridNetwork(6, 6, 200, 1)

	// Map matching over several traces.
	accSum, nTraces := 0.0, 0
	for seed := int64(2); seed < 10; seed++ {
		trace, err := traffic.SimulateTrip(net, seed, 8, 10, 80)
		if err != nil {
			continue
		}
		res, err := traffic.MatchTrace(net, trace, 60, 10, 30, 4)
		if err != nil {
			continue
		}
		accSum += traffic.MatchAccuracy(net, trace, res)
		nTraces++
	}
	acc := accSum / float64(nTraces)
	t.Rows = append(t.Rows, []string{"HMM map matching", "edge accuracy", fmt.Sprintf("%.1f%%", acc*100)})
	t.metric("match_accuracy", acc)

	// GMM with incomplete data.
	rng := rand.New(rand.NewSource(14))
	var data [][]float64
	for i := 0; i < 400; i++ {
		base := 8.0
		if i%2 == 1 {
			base = 16
		}
		x := base + rng.NormFloat64()*0.8
		y := 2*base + rng.NormFloat64()*0.8
		if rng.Float64() < 0.3 {
			y = math.NaN()
		}
		data = append(data, []float64{x, y})
	}
	g := traffic.NewGMM(2, 2)
	hist, err := g.Fit(data, 2, 60, 1e-6)
	if err != nil {
		return t, err
	}
	pred := g.Predict([]float64{8, math.NaN()}, 1)
	t.Rows = append(t.Rows, []string{"GMM (30% missing)", "EM iters / cond. pred (want ~16)",
		fmt.Sprintf("%d / %.1f", len(hist), pred)})
	t.metric("gmm_pred", pred)

	// CNN speed prediction vs persistence.
	var curves [][]float64
	for d := int64(0); d < 6; d++ {
		curves = append(curves, traffic.DailySpeedCurve(14, d))
	}
	xs, ys := traffic.WindowDataset(curves, 8)
	cnn, err := traffic.NewCNN(8, 3, 4, 1)
	if err != nil {
		return t, err
	}
	if _, err := cnn.Fit(xs, ys, 300, 3e-2); err != nil {
		return t, err
	}
	test := traffic.DailySpeedCurve(14, 99)
	txs, tys := traffic.WindowDataset([][]float64{test}, 8)
	var cnnErr, persErr float64
	for i := range txs {
		p, err := cnn.Predict(txs[i])
		if err != nil {
			return t, err
		}
		cnnErr += math.Abs(p - tys[i])
		persErr += math.Abs(txs[i][len(txs[i])-1] - tys[i])
	}
	cnnErr /= float64(len(txs))
	persErr /= float64(len(txs))
	t.Rows = append(t.Rows, []string{"CNN speed predictor", "MAE vs persistence (m/s)",
		fmt.Sprintf("%.2f vs %.2f", cnnErr, persErr)})
	t.metric("cnn_mae", cnnErr)
	t.metric("persistence_mae", persErr)

	// PTDR distribution.
	profile := traffic.BuildProfile(net, 7)
	route, _, err := net.ShortestPath(0, 35)
	if err != nil {
		return t, err
	}
	res, err := traffic.MonteCarlo(net, profile, route, 17.5*3600, 20000, 11)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{"PTDR (rush hour)", "P05/P50/P95 s",
		fmt.Sprintf("%.0f/%.0f/%.0f", res.P05, res.P50, res.P95)})
	t.metric("ptdr_p95_ratio", res.P95/res.P50)
	return t, nil
}

// All returns the full experiment registry in order.
func All() []func() (Table, error) {
	return []func() (Table, error){
		E1, E2, E3, E4, E5, E6, E7, E8, E9, E10, E11, E12, E13, E14,
	}
}
