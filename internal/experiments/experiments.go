// Package experiments implements the EVEREST reproduction experiments
// E1–E14 (see DESIGN.md §4): each experiment regenerates the paper-shaped
// table for one claim of the paper, using the simulated platform substrate.
// The cmd/everest-bench binary prints the tables; the root bench suite
// asserts their shape.
package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"everest/internal/base2"
	"everest/internal/cfdlang"
	"everest/internal/condrust"
	"everest/internal/ekl"
	"everest/internal/hls"
	"everest/internal/mlir"
	"everest/internal/olympus"
	"everest/internal/onnxlite"
	"everest/internal/platform"
	"everest/internal/tensor"
	"everest/internal/traffic"
	"everest/internal/virt"
	"everest/internal/wrf"
)

// Table is one experiment's result table.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// KeyMetrics exposes the quantities the bench suite asserts on.
	KeyMetrics map[string]float64
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func (t *Table) metric(k string, v float64) {
	if t.KeyMetrics == nil {
		t.KeyMetrics = make(map[string]float64)
	}
	t.KeyMetrics[k] = v
}

func f3(v float64) string { return fmt.Sprintf("%.3g", v) }

// E1 — kernel-language compactness and correctness (Fig. 3, §V-A1):
// the RRTMG major-absorber kernel in EKL versus a hand-written loop nest.
func E1() (Table, error) {
	t := Table{
		ID:     "E1",
		Title:  "EKL compactness & numerical equivalence (Fig. 3, RRTMG tau_major)",
		Header: []string{"variant", "statements/LoC", "max|diff| vs reference"},
	}
	k, err := ekl.ParseKernel(wrf.EKLSource())
	if err != nil {
		return t, err
	}
	// Bind with RRTMG-like shapes.
	rng := rand.New(rand.NewSource(1))
	nx, ng := 32, 16
	rad := wrf.NewRadiation(1, 8)
	_ = rad
	intT := func(max int, shape ...int) *tensor.Tensor {
		tt := tensor.New(shape...)
		for i := range tt.Data() {
			tt.Data()[i] = float64(rng.Intn(max))
		}
		return tt
	}
	const nflav, nT, nP, nEta = 3, 12, 16, 9
	bind := ekl.Binding{
		Tensors: map[string]*tensor.Tensor{
			"p":           tensor.Random(rng, 5000, 101325, nx),
			"bnd_to_flav": intT(nflav, 2, 4),
			"j_T":         intT(nT-2, nx),
			"j_p":         intT(nP-3, nx),
			"j_eta":       intT(nEta-2, nflav, nx),
			"r_mix":       tensor.Random(rng, 0, 1, nflav, nx, 2),
			"f_major":     tensor.Random(rng, 0, 1, nflav, nx, 2, 2, 2),
			"k_major":     tensor.Random(rng, 0.1, 1, nT, nP, nEta, ng),
		},
		Scalars: map[string]float64{"bnd": 1},
	}
	res, err := k.Run(bind)
	if err != nil {
		return t, err
	}
	ref := rrtmgLoopReference(bind)
	diff := tensor.MaxAbsDiff(res.Outputs["tau_abs"], ref)

	// The loop-nest reference below is ~45 lines of Go; the original WRF
	// RRTMG Fortran block is ~200 lines (paper's number).
	t.Rows = append(t.Rows,
		[]string{"EKL (Fig. 3 style)", fmt.Sprintf("%d stmts", k.SourceLines()), f3(diff)},
		[]string{"hand loop nest (Go)", "~45 LoC", "0 (reference)"},
		[]string{"WRF RRTMG (Fortran)", "~200 LoC (paper)", "n/a"},
	)
	t.metric("max_diff", diff)
	t.metric("ekl_statements", float64(k.SourceLines()))
	return t, nil
}

// rrtmgLoopReference is the expanded loop-nest form of the Fig. 3 kernel.
func rrtmgLoopReference(b ekl.Binding) *tensor.Tensor {
	p := b.Tensors["p"]
	bndToFlav := b.Tensors["bnd_to_flav"]
	jT := b.Tensors["j_T"]
	jp := b.Tensors["j_p"]
	jEta := b.Tensors["j_eta"]
	rMix := b.Tensors["r_mix"]
	fMajor := b.Tensors["f_major"]
	kMajor := b.Tensors["k_major"]
	strato := 9600.0
	bnd := int(b.Scalars["bnd"])
	nx := p.Shape()[0]
	ng := kMajor.Shape()[3]
	out := tensor.New(nx, ng)
	for x := 0; x < nx; x++ {
		iStrato := 0
		if p.At(x) <= strato {
			iStrato = 1
		}
		iFlav := int(bndToFlav.At(iStrato, bnd))
		for g := 0; g < ng; g++ {
			acc := 0.0
			for dT := 0; dT < 2; dT++ {
				for dp := 0; dp < 2; dp++ {
					for e := 0; e < 2; e++ {
						acc += rMix.At(iFlav, x, e) *
							fMajor.At(iFlav, x, dT, dp, e) *
							kMajor.At(int(jT.At(x))+dT,
								int(jp.At(x))+iStrato+dp,
								int(jEta.At(iFlav, x))+e, g)
					}
				}
			}
			out.Set(acc, x, g)
		}
	}
	return out
}

// E2 — MLIR lowering pipeline (Fig. 5): every dialect path lowers and
// verifies; reports op counts and pass timings.
func E2() (Table, error) {
	t := Table{
		ID:     "E2",
		Title:  "Dialect lowering pipeline (Fig. 5): ekl -> teil -> affine",
		Header: []string{"stage", "ops in module", "verified"},
	}
	k, err := ekl.ParseKernel(wrf.EKLSource())
	if err != nil {
		return t, err
	}
	rng := rand.New(rand.NewSource(2))
	intT := func(max int, shape ...int) *tensor.Tensor {
		tt := tensor.New(shape...)
		for i := range tt.Data() {
			tt.Data()[i] = float64(rng.Intn(max))
		}
		return tt
	}
	const nflav, nT, nP, nEta, nx, ng = 3, 12, 16, 9, 16, 8
	bind := ekl.Binding{
		Tensors: map[string]*tensor.Tensor{
			"p":           tensor.Random(rng, 5000, 101325, nx),
			"bnd_to_flav": intT(nflav, 2, 4),
			"j_T":         intT(nT-2, nx),
			"j_p":         intT(nP-3, nx),
			"j_eta":       intT(nEta-2, nflav, nx),
			"r_mix":       tensor.Random(rng, 0, 1, nflav, nx, 2),
			"f_major":     tensor.Random(rng, 0, 1, nflav, nx, 2, 2, 2),
			"k_major":     tensor.Random(rng, 0.1, 1, nT, nP, nEta, ng),
		},
		Scalars: map[string]float64{"bnd": 1},
	}
	m, _, err := ekl.Lower(k, bind)
	if err != nil {
		return t, err
	}
	count := func() int {
		n := 0
		m.Walk(func(*mlir.Op) { n++ })
		return n
	}
	t.Rows = append(t.Rows, []string{"ekl (frontend)", fmt.Sprintf("%d", count()), "yes"})

	pm := mlir.NewPassManager().Add(ekl.LowerToTeIL())
	if err := pm.Run(m); err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{"teil (bufferized)", fmt.Sprintf("%d", count()), "yes"})

	pm2 := mlir.NewPassManager().Add(ekl.LowerToAffine())
	if err := pm2.Run(m); err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{"affine (loops)", fmt.Sprintf("%d", count()), "yes"})
	t.metric("affine_for", float64(m.CountOps("affine.for")))

	// The other Fig. 5 entry paths: cfdlang, onnx -> jabbah, condrust -> dfg.
	cfdProg, err := cfdlang.Parse(`
var input  A : [4 5]
var input  B : [5 6]
var output C : [4 6]
C = (A * B) . [[2 3]]
`)
	if err != nil {
		return t, err
	}
	cfdMod, err := cfdProg.EmitModule("cfd_matmul")
	if err != nil {
		return t, err
	}
	nOps := 0
	cfdMod.Walk(func(*mlir.Op) { nOps++ })
	t.Rows = append(t.Rows, []string{"cfdlang (frontend)", fmt.Sprintf("%d", nOps), "yes"})

	mlp := onnxlite.MLP2("mlp", 4, 8, 3, map[string][]float64{
		"w1": make([]float64, 32), "b1": make([]float64, 8), "w2": make([]float64, 24),
	})
	jb, err := mlp.Lower()
	if err != nil {
		return t, err
	}
	nOps = 0
	jb.Walk(func(*mlir.Op) { nOps++ })
	t.Rows = append(t.Rows, []string{"onnx -> jabbah", fmt.Sprintf("%d", nOps), "yes"})

	prog, err := condrust.Parse(traffic.Fig4Source)
	if err != nil {
		return t, err
	}
	g, err := condrust.BuildGraph(prog.Find("match_one"))
	if err != nil {
		return t, err
	}
	dfgMod, err := g.EmitDFG()
	if err != nil {
		return t, err
	}
	nOps = 0
	dfgMod.Walk(func(*mlir.Op) { nOps++ })
	t.Rows = append(t.Rows, []string{"condrust -> dfg", fmt.Sprintf("%d", nOps), "yes"})
	t.metric("frontend_paths", 4)
	t.Notes = append(t.Notes, fmt.Sprintf("affine.for loops: %d; einsum reduction dims preserved", m.CountOps("affine.for")))
	return t, nil
}

// E3 — Olympus memory-architecture ablation (§V-C): naive -> +PLM sharing
// -> +double buffering -> +replication/lanes -> +packing.
func E3() (Table, error) {
	t := Table{
		ID:     "E3",
		Title:  "Olympus optimization ladder on HBM-bound streaming kernel (Alveo U55C)",
		Header: []string{"configuration", "replicas", "effBW GB/s", "throughput GB/s", "speedup"},
	}
	dev := platform.AlveoU55C()
	kern := hls.Kernel{
		Name: "stream",
		Nest: hls.LoopNest{TripCounts: []int{1 << 20},
			Body: hls.OpMix{Adds: 2, Muls: 2, Loads: 2, Stores: 1}},
		Format: base2.Float32{},
	}
	buffers := []olympus.Buffer{
		{Name: "in", Bytes: 1 << 16, Phase: 0},
		{Name: "tmp", Bytes: 1 << 16, Phase: 0},
		{Name: "out", Bytes: 1 << 16, Phase: 1},
	}
	wl := platform.Workload{BytesIn: 1 << 28, BytesOut: 1 << 28, Batches: 8}
	var base float64
	for i, step := range olympus.AblationLadder(8) {
		design, err := olympus.Generate(kern, hls.VitisBackend{}, dev, buffers, step.Opt)
		if err != nil {
			return t, err
		}
		tl, err := platform.Execute(dev, design.Bitstream, wl)
		if err != nil {
			return t, err
		}
		thr := platform.Throughput(wl, tl) / 1e9
		if i == 0 {
			base = thr
		}
		t.Rows = append(t.Rows, []string{
			step.Label,
			fmt.Sprintf("%d", design.Bitstream.Config.Replicas),
			f3(tl.EffBWGBs), f3(thr), fmt.Sprintf("%.2fx", thr/base),
		})
		t.metric("speedup_"+step.Label, thr/base)
	}
	return t, nil
}

// E4 — custom data formats (base2, §V-B/§VIII): accuracy vs resources vs
// latency for the RRTMG kernel datapath.
func E4() (Table, error) {
	t := Table{
		ID:     "E4",
		Title:  "Custom data formats: accuracy / resource / latency trade-off (RRTMG datapath)",
		Header: []string{"format", "bits", "max rel err", "LUT", "DSP", "iter depth", "clock MHz"},
	}
	fixed16, _ := base2.NewFixedFormat(4, 12)
	posit16, _ := base2.NewPositFormat(16, 1)
	formats := []base2.Format{
		base2.Float64{}, base2.Float32{}, base2.BF16(), base2.FP16(), fixed16, posit16,
	}
	// Accuracy on RRTMG-like values (optical depths in (0, ~3)).
	rng := rand.New(rand.NewSource(4))
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = math.Abs(rng.NormFloat64()) * 0.8
	}
	kern := hls.Kernel{
		Name: "rrtmg_dp",
		Nest: hls.LoopNest{TripCounts: []int{32, 16, 8},
			Body: hls.OpMix{Adds: 2, Muls: 3, Loads: 3, Stores: 1}, Reduction: true},
	}
	for _, f := range formats {
		stats := base2.MeasureError(f, vals)
		kern.Format = f
		backend := hls.Backend(hls.VitisBackend{})
		if !backend.SupportsFormat(f) {
			backend = hls.BambuBackend{}
		}
		rep, err := hls.Schedule(kern, hls.Directives{PipelineEnabled: true}, backend)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			f.Name(), fmt.Sprintf("%d", f.Bits()), f3(stats.MaxRel),
			fmt.Sprintf("%d", rep.Resources.LUT), fmt.Sprintf("%d", rep.Resources.DSP),
			fmt.Sprintf("%d", rep.IterLatency), fmt.Sprintf("%.0f", rep.ClockMHz),
		})
		t.metric("lut_"+f.Name(), float64(rep.Resources.LUT))
		t.metric("err_"+f.Name(), stats.MaxRel)
	}
	t.Notes = append(t.Notes,
		"paper claim: custom formats trade resources/accuracy; fixed/posit cut LUT+DSP and raise clock vs fp64")
	return t, nil
}

// E5 — virtualization overhead (§VI-B): native vs SR-IOV VF passthrough vs
// software virtio, plus dynamic VF plug/unplug under contention.
func E5() (Table, error) {
	t := Table{
		ID:     "E5",
		Title:  "I/O virtualization paths (QEMU-KVM + SR-IOV model)",
		Header: []string{"path", "total time s", "overhead vs native"},
	}
	node := platform.NewNode("hv", platform.XeonModel(), platform.AlveoU55C())
	bs := platform.Bitstream{
		ID: "bs", Kernel: "k", Target: "alveo-u55c",
		Report: hls.Report{LatencyCycle: 1 << 22, II: 1, IterLatency: 8,
			Resources: hls.Resources{LUT: 20000, FF: 20000, DSP: 40, BRAM: 16}, ClockMHz: 300},
		Config: platform.SystemConfig{Replicas: 1, BusWidthBits: 512, Lanes: 1,
			PackedElements: 8, PLMBytes: 1 << 16},
		ElemBits: 64,
	}
	if _, err := node.Program(0, bs); err != nil {
		return t, err
	}
	h, err := virt.NewHypervisor(node, 4)
	if err != nil {
		return t, err
	}
	if _, err := h.DefineVM("guest", 8); err != nil {
		return t, err
	}
	if _, err := h.PlugVF("guest", 0); err != nil {
		return t, err
	}
	wl := platform.Workload{BytesIn: 1 << 27, BytesOut: 1 << 25}
	var native float64
	for _, path := range []virt.IOPath{virt.Native, virt.VFPassthrough, virt.VirtIO} {
		tl, err := h.RunAccelerated("guest", 0, wl, path)
		if err != nil {
			return t, err
		}
		if path == virt.Native {
			native = tl.Total
		}
		t.Rows = append(t.Rows, []string{
			path.String(), f3(tl.Total), fmt.Sprintf("%.1f%%", (tl.Total/native-1)*100),
		})
		t.metric("overhead_"+path.String(), tl.Total/native-1)
	}
	// Plug/unplug churn cost.
	reb, err := h.Rebalance(map[string]map[int]int{"guest": {0: 3}})
	if err != nil {
		return t, err
	}
	t.Notes = append(t.Notes, fmt.Sprintf("dynamic VF rebalance (1->3 VFs): %.0f ms hot-plug", reb*1000))
	t.metric("rebalance_s", reb)
	return t, nil
}
