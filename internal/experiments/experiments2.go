package experiments

import (
	"fmt"
	"math/rand"

	"everest/internal/anomaly"
	"everest/internal/autotuner"
	"everest/internal/base2"
	"everest/internal/hls"
	"everest/internal/olympus"
	"everest/internal/platform"
	"everest/internal/runtime"
	"everest/internal/sdk"
	"everest/internal/tensor"
	"everest/internal/traffic"
	"everest/internal/virt"
)

// E6 — resource manager (§VI-A): HEFT vs FIFO on DAG families, plus
// failure recovery.
func E6() (Table, error) {
	t := Table{
		ID:     "E6",
		Title:  "Resource manager: scheduling policies and failure recovery (4 nodes)",
		Header: []string{"workload", "policy", "makespan s", "transfers", "imbalance"},
	}
	cluster := sdk.DefaultCluster(4)
	reg := platform.NewRegistry()

	build := func(kind string) (*runtime.Workflow, error) {
		w := runtime.NewWorkflow()
		switch kind {
		case "chain":
			for i := 0; i < 12; i++ {
				spec := runtime.TaskSpec{Name: fmt.Sprintf("c%02d", i), Flops: 2e10,
					InputBytes: 1 << 22, OutputBytes: 1 << 22}
				if i > 0 {
					spec.Deps = []string{fmt.Sprintf("c%02d", i-1)}
				}
				if err := w.Submit(spec); err != nil {
					return nil, err
				}
			}
		case "fork-join":
			if err := w.Submit(runtime.TaskSpec{Name: "src", Flops: 1e9, OutputBytes: 1 << 22}); err != nil {
				return nil, err
			}
			var mids []string
			for i := 0; i < 12; i++ {
				name := fmt.Sprintf("m%02d", i)
				if err := w.Submit(runtime.TaskSpec{Name: name, Deps: []string{"src"},
					Flops: 3e10, InputBytes: 1 << 22, OutputBytes: 1 << 22}); err != nil {
					return nil, err
				}
				mids = append(mids, name)
			}
			if err := w.Submit(runtime.TaskSpec{Name: "sink", Deps: mids, Flops: 1e9,
				InputBytes: 1 << 24}); err != nil {
				return nil, err
			}
		case "wrf-ensemble":
			if err := w.Submit(runtime.TaskSpec{Name: "ic", Flops: 1e9, OutputBytes: 1 << 24}); err != nil {
				return nil, err
			}
			var members []string
			for m := 0; m < 8; m++ {
				name := fmt.Sprintf("wrf%02d", m)
				if err := w.Submit(runtime.TaskSpec{Name: name, Deps: []string{"ic"},
					Flops: 8e10, InputBytes: 1 << 24, OutputBytes: 1 << 24}); err != nil {
					return nil, err
				}
				members = append(members, name)
			}
			if err := w.Submit(runtime.TaskSpec{Name: "stats", Deps: members, Flops: 5e9,
				InputBytes: 1 << 26}); err != nil {
				return nil, err
			}
		}
		return w, nil
	}

	for _, kind := range []string{"chain", "fork-join", "wrf-ensemble"} {
		for _, pol := range []runtime.Policy{runtime.PolicyHEFT, runtime.PolicyFIFO} {
			w, err := build(kind)
			if err != nil {
				return t, err
			}
			sched, err := runtime.NewScheduler(cluster, reg, pol).Plan(w)
			if err != nil {
				return t, err
			}
			t.Rows = append(t.Rows, []string{kind, pol.String(), f3(sched.Makespan),
				fmt.Sprintf("%d", sched.Transfers), fmt.Sprintf("%.2f", sched.LoadImbalance())})
			t.metric(kind+"_"+pol.String(), sched.Makespan)
		}
	}

	// Failure recovery on the fork-join DAG.
	w, err := build("fork-join")
	if err != nil {
		return t, err
	}
	s := runtime.NewScheduler(cluster, reg, runtime.PolicyHEFT)
	base, err := s.Plan(w)
	if err != nil {
		return t, err
	}
	victim := base.Assignments[3].Node
	s.Failures = []runtime.NodeFailure{{Node: victim, AtTime: base.Assignments[3].Start}}
	rec, err := s.PlanWithRecovery(w)
	if err != nil {
		return t, err
	}
	restarts := 0
	for _, a := range rec.Assignments {
		if a.Restart {
			restarts++
		}
	}
	t.Rows = append(t.Rows, []string{"fork-join+failure", "heft",
		f3(rec.Makespan), fmt.Sprintf("%d restarts", restarts),
		fmt.Sprintf("%.2fx base", rec.Makespan/base.Makespan)})
	t.metric("recovery_inflation", rec.Makespan/base.Makespan)
	return t, nil
}

// E7 — mARGOt dynamic autotuning (§VI-C): variant selection adapts when the
// FPGA disappears (VF unplugged) and recovers when it returns.
func E7() (Table, error) {
	t := Table{
		ID:     "E7",
		Title:  "mARGOt autotuning: PTDR variant selection under environment changes",
		Header: []string{"phase", "selected variant", "expected time ms", "expected energy J"},
	}
	knobs := []autotuner.Knob{{Name: "impl", Values: []string{"cpu1", "cpu16", "fpga"}}}
	points := []autotuner.OperatingPoint{
		{Config: autotuner.Config{"impl": "cpu1"},
			Metrics: map[autotuner.Metric]float64{autotuner.MetricTimeMs: 840, autotuner.MetricEnergyJ: 42}},
		{Config: autotuner.Config{"impl": "cpu16"},
			Metrics: map[autotuner.Metric]float64{autotuner.MetricTimeMs: 95, autotuner.MetricEnergyJ: 118}},
		{Config: autotuner.Config{"impl": "fpga"},
			Metrics: map[autotuner.Metric]float64{autotuner.MetricTimeMs: 31, autotuner.MetricEnergyJ: 24}},
	}
	goals := []autotuner.Goal{{Metric: autotuner.MetricTimeMs, Op: autotuner.LE, Value: 120}}
	at, err := autotuner.New(knobs, points, goals, autotuner.Rank{Metric: autotuner.MetricEnergyJ, Minimize: true})
	if err != nil {
		return t, err
	}
	record := func(phase string) {
		sel := at.Select()
		t.Rows = append(t.Rows, []string{phase, sel.Config["impl"],
			f3(sel.Metrics[autotuner.MetricTimeMs]), f3(sel.Metrics[autotuner.MetricEnergyJ])})
	}
	record("steady state")
	sel0 := at.Select().Config["impl"]
	t.metric("initial_fpga", boolTo01(sel0 == "fpga"))

	// FPGA VF unplugged: observed fpga times degrade to software fallback.
	for i := 0; i < 8; i++ {
		if err := at.Observe(autotuner.Config{"impl": "fpga"}, autotuner.MetricTimeMs, 2100); err != nil {
			return t, err
		}
	}
	record("fpga unplugged")
	t.metric("degraded_cpu16", boolTo01(at.Select().Config["impl"] == "cpu16"))

	// FPGA returns.
	for i := 0; i < 14; i++ {
		if err := at.Observe(autotuner.Config{"impl": "fpga"}, autotuner.MetricTimeMs, 31); err != nil {
			return t, err
		}
	}
	record("fpga recovered")
	t.metric("recovered_fpga", boolTo01(at.Select().Config["impl"] == "fpga"))
	t.Notes = append(t.Notes, "goal: exec_time <= 120ms; rank: minimize energy; hot-plug latency 50ms per VF op")
	_ = virt.HotplugSeconds
	return t, nil
}

// E8 — anomaly detection AutoML (§VII): TPE vs random search at equal trial
// budget, plus the detection node's JSON output.
func E8() (Table, error) {
	t := Table{
		ID:     "E8",
		Title:  "AutoML model selection: TPE vs random search (30 trials, F1 on planted anomalies)",
		Header: []string{"sampler", "best F1", "best detector"},
	}
	rng := rand.New(rand.NewSource(8))
	train := anomalyData(rng, 250, 0)
	val, labels := anomalyDataLabeled(rng, 250, 12)

	run := func(s anomaly.Sampler) (*anomaly.SelectionResult, error) {
		return anomaly.SelectModel(train, val, labels, 12.0/250, 30, s)
	}
	tpe, err := anomaly.NewTPE(anomaly.DetectorSpace(), 7)
	if err != nil {
		return t, err
	}
	resT, err := run(tpe)
	if err != nil {
		return t, err
	}
	rnd, err := anomaly.NewRandomSearch(anomaly.DetectorSpace(), 7)
	if err != nil {
		return t, err
	}
	resR, err := run(rnd)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows,
		[]string{"TPE (Optuna-style)", f3(resT.BestF1), resT.Best.Cats["detector"]},
		[]string{"random search", f3(resR.BestF1), resR.Best.Cats["detector"]},
	)
	t.metric("tpe_f1", resT.BestF1)
	t.metric("random_f1", resR.BestF1)

	// Detection node JSON (the §VII output artifact).
	node := &anomaly.DetectionNode{Detector: resT.Detector}
	if err := node.CalibrateThreshold(train, 0.05); err != nil {
		return t, err
	}
	rep, err := node.Detect(val)
	if err != nil {
		return t, err
	}
	t.Notes = append(t.Notes, fmt.Sprintf("detection node flagged %d/%d points above threshold %.3g",
		len(rep.Anomalies), val.Shape()[0], rep.Threshold))
	return t, nil
}

func anomalyData(rng *rand.Rand, n, planted int) *tensor.Tensor {
	d, _ := anomalyDataLabeled(rng, n, planted)
	return d
}

func anomalyDataLabeled(rng *rand.Rand, n, planted int) (*tensor.Tensor, []bool) {
	x := tensor.New(n, 2)
	labels := make([]bool, n)
	for i := 0; i < n; i++ {
		x.Set(rng.NormFloat64(), i, 0)
		x.Set(rng.NormFloat64()*0.5+1, i, 1)
	}
	for k := 0; k < planted; k++ {
		i := (k*19 + 5) % n
		x.Set(9+rng.Float64()*3, i, 0)
		x.Set(-7-rng.Float64()*2, i, 1)
		labels[i] = true
	}
	return x, labels
}

// E9 — PTDR on FPGA vs CPU (§VIII): Monte-Carlo travel-time sampling,
// sample-count sweep, PCIe- vs network-attached targets.
func E9() (Table, error) {
	t := Table{
		ID:     "E9",
		Title:  "PTDR kernel: CPU vs FPGA (Alveo U55C, cloudFPGA), route len 200",
		Header: []string{"samples", "CPU 16c s", "U55C s", "speedup", "cloudFPGA s"},
	}
	routeLen := 200
	cpu := platform.XeonModel()
	u55c := platform.AlveoU55C()
	cloud := platform.CloudFPGA()

	for _, samples := range []int{1000, 10000, 100000} {
		flops := traffic.FlopsPerSample(routeLen) * float64(samples)
		bytesIn, bytesOut := traffic.PTDRBytes(routeLen, samples)
		cpuT := cpu.TimeSeconds(flops*12, bytesIn+bytesOut, 16) // 12x: exp/log are multi-flop

		kern := traffic.PTDRKernel(routeLen, samples)
		design, err := genPTDR(kern, u55c)
		if err != nil {
			return t, err
		}
		tl, err := platform.Execute(u55c, design, platform.Workload{
			BytesIn: bytesIn, BytesOut: bytesOut, Batches: 4})
		if err != nil {
			return t, err
		}

		cloudDesign, err := genPTDR(kern, cloud)
		var cloudT float64
		if err != nil {
			cloudT = -1
		} else {
			ctl, err := platform.Execute(cloud, cloudDesign, platform.Workload{
				BytesIn: bytesIn, BytesOut: bytesOut, Batches: 4})
			if err != nil {
				cloudT = -1
			} else {
				cloudT = ctl.Total
			}
		}
		speedup := cpuT / tl.Total
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", samples), f3(cpuT), f3(tl.Total),
			fmt.Sprintf("%.1fx", speedup), f3(cloudT),
		})
		t.metric(fmt.Sprintf("speedup_%d", samples), speedup)
	}
	t.Notes = append(t.Notes, "speedup grows with samples: transfers amortize (paper: PTDR deployed on u55c cluster)")
	return t, nil
}

func genPTDR(k hls.Kernel, dev *platform.Device) (platform.Bitstream, error) {
	design, err := olympus.Generate(k, hls.VitisBackend{}, dev, nil, olympus.Options{
		SharePLM: true, DoubleBuffer: true, Replicate: true, MaxReplicas: 8, PackData: true,
	})
	if err != nil {
		return platform.Bitstream{}, err
	}
	return design.Bitstream, nil
}

// E10 — map-matching placement exploration (§VIII, Fig. 4): per-sub-kernel
// CPU/FPGA decision as the candidate workload scales.
func E10() (Table, error) {
	t := Table{
		ID:     "E10",
		Title:  "Map-matching sub-kernel placement (compile-time CPU/FPGA decision)",
		Header: []string{"batch (traces)", "projection", "build_trellis", "viterbi", "interpolate"},
	}
	cpu := platform.XeonModel()
	dev := platform.AlveoU55C()

	for _, batch := range []int{10, 1000, 100000} {
		// Per-trace stage costs (flops) from profiling the Go stages:
		// projection dominates (candidate search over edges).
		pointsPerTrace := 40.0
		edges := 2000.0
		projFlops := float64(batch) * pointsPerTrace * edges * 12
		trellisFlops := float64(batch) * pointsPerTrace * 16 * 40
		viterbiFlops := float64(batch) * pointsPerTrace * 16 * 4
		interpFlops := float64(batch) * pointsPerTrace * 8

		stages := []sdk.StageCost{
			{Name: "projection", Flops: projFlops, Offloadable: true,
				Kernel: hls.Kernel{Name: "projection",
					Nest: hls.LoopNest{TripCounts: []int{batch, int(pointsPerTrace), int(edges)},
						Body: hls.OpMix{Adds: 4, Muls: 6, Divs: 1, Loads: 4, Stores: 1}},
					Format: base2.Float32{}},
				BytesIn: int64(batch) * int64(pointsPerTrace) * 16, BytesOut: int64(batch) * 64},
			{Name: "build_trellis", Flops: trellisFlops, Offloadable: true,
				Kernel: hls.Kernel{Name: "trellis",
					Nest: hls.LoopNest{TripCounts: []int{batch, int(pointsPerTrace), 16},
						Body: hls.OpMix{Adds: 6, Muls: 4, Special: 1, Loads: 4, Stores: 2}},
					Format: base2.Float32{}},
				BytesIn: int64(batch) * 512, BytesOut: int64(batch) * 512},
			{Name: "viterbi", Flops: viterbiFlops, Offloadable: false},
			{Name: "interpolate", Flops: interpFlops, Offloadable: false},
		}
		ps, err := sdk.ExplorePlacement(stages, cpu, dev, hls.VitisBackend{})
		if err != nil {
			return t, err
		}
		byName := map[string]string{}
		for _, p := range ps {
			byName[p.Stage] = p.Target
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", batch),
			byName["projection"], byName["build_trellis"], byName["viterbi"], byName["interpolate"]})
		t.metric(fmt.Sprintf("proj_fpga_%d", batch), boolTo01(byName["projection"] == "fpga"))
	}
	t.Notes = append(t.Notes,
		"small batches stay on CPU (transfer dominated); large batches offload projection/trellis — the paper's flexibility claim")
	return t, nil
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
