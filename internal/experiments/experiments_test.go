package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsRun executes every experiment and checks that each
// produces a non-empty table.
func TestAllExperimentsRun(t *testing.T) {
	for i, exp := range All() {
		tab, err := exp()
		if err != nil {
			t.Fatalf("experiment %d (%s): %v", i+1, tab.ID, err)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s produced no rows", tab.ID)
		}
		if !strings.Contains(tab.String(), tab.ID) {
			t.Errorf("%s: String() must include the experiment ID", tab.ID)
		}
	}
}

// The shape assertions below encode the paper's qualitative claims: who
// wins, roughly by what factor, where crossovers fall (see EXPERIMENTS.md).

func TestE1Shape(t *testing.T) {
	tab, err := E1()
	if err != nil {
		t.Fatal(err)
	}
	if tab.KeyMetrics["max_diff"] > 1e-12 {
		t.Errorf("EKL kernel must match the loop reference exactly, diff %g", tab.KeyMetrics["max_diff"])
	}
	if tab.KeyMetrics["ekl_statements"] > 10 {
		t.Errorf("EKL kernel must stay Fig.3-compact, got %g statements", tab.KeyMetrics["ekl_statements"])
	}
}

func TestE2Shape(t *testing.T) {
	tab, err := E2()
	if err != nil {
		t.Fatal(err)
	}
	if tab.KeyMetrics["affine_for"] < 5 {
		t.Errorf("affine lowering must materialize the full loop nest, got %g loops", tab.KeyMetrics["affine_for"])
	}
}

func TestE3Shape(t *testing.T) {
	tab, err := E3()
	if err != nil {
		t.Fatal(err)
	}
	full := tab.KeyMetrics["speedup_+packing"]
	if full < 2 {
		t.Errorf("full Olympus ladder speedup %gx, want >= 2x", full)
	}
	if tab.KeyMetrics["speedup_+replicate-lanes"] < tab.KeyMetrics["speedup_+double-buffer"]*0.99 {
		t.Error("replication step must not regress")
	}
}

func TestE4Shape(t *testing.T) {
	tab, err := E4()
	if err != nil {
		t.Fatal(err)
	}
	if tab.KeyMetrics["lut_fixed<4,12>"] >= tab.KeyMetrics["lut_f64"] {
		t.Error("fixed16 must use fewer LUTs than fp64")
	}
	if tab.KeyMetrics["err_f64"] != 0 {
		t.Error("fp64 is the exact baseline")
	}
	if tab.KeyMetrics["err_bf16"] <= tab.KeyMetrics["err_f32"] {
		t.Error("bf16 must be less accurate than f32")
	}
}

func TestE5Shape(t *testing.T) {
	tab, err := E5()
	if err != nil {
		t.Fatal(err)
	}
	vf := tab.KeyMetrics["overhead_vf-passthrough"]
	if vf <= 0 || vf > 0.05 {
		t.Errorf("VF passthrough overhead %g, want near-native (0,5%%]", vf)
	}
	if tab.KeyMetrics["overhead_virtio"] <= vf {
		t.Error("virtio must cost more than VF passthrough")
	}
}

func TestE6Shape(t *testing.T) {
	tab, err := E6()
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"chain", "fork-join", "wrf-ensemble"} {
		if tab.KeyMetrics[kind+"_heft"] > tab.KeyMetrics[kind+"_fifo"]*1.001 {
			t.Errorf("%s: HEFT (%g) must not lose to FIFO (%g)", kind,
				tab.KeyMetrics[kind+"_heft"], tab.KeyMetrics[kind+"_fifo"])
		}
	}
	if infl := tab.KeyMetrics["recovery_inflation"]; infl < 1 || infl > 3 {
		t.Errorf("failure recovery inflation %g outside [1,3]", infl)
	}
}

func TestE7Shape(t *testing.T) {
	tab, err := E7()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"initial_fpga", "degraded_cpu16", "recovered_fpga"} {
		if tab.KeyMetrics[key] != 1 {
			t.Errorf("autotuner adaptation failed at %q", key)
		}
	}
}

func TestE8Shape(t *testing.T) {
	tab, err := E8()
	if err != nil {
		t.Fatal(err)
	}
	if tab.KeyMetrics["tpe_f1"] < 0.75 {
		t.Errorf("TPE best F1 %g too low", tab.KeyMetrics["tpe_f1"])
	}
	if tab.KeyMetrics["tpe_f1"] < tab.KeyMetrics["random_f1"]-1e-9 {
		t.Errorf("TPE (%g) must match or beat random (%g) at equal budget",
			tab.KeyMetrics["tpe_f1"], tab.KeyMetrics["random_f1"])
	}
}

func TestE9Shape(t *testing.T) {
	tab, err := E9()
	if err != nil {
		t.Fatal(err)
	}
	if tab.KeyMetrics["speedup_100000"] <= 1 {
		t.Errorf("FPGA must win at 100k samples, speedup %g", tab.KeyMetrics["speedup_100000"])
	}
	if tab.KeyMetrics["speedup_100000"] <= tab.KeyMetrics["speedup_1000"] {
		t.Error("speedup must grow with sample count (transfer amortization)")
	}
}

func TestE10Shape(t *testing.T) {
	tab, err := E10()
	if err != nil {
		t.Fatal(err)
	}
	if tab.KeyMetrics["proj_fpga_10"] != 0 {
		t.Error("tiny batches must stay on CPU")
	}
	if tab.KeyMetrics["proj_fpga_100000"] != 1 {
		t.Error("large batches must offload projection to FPGA")
	}
}

func TestE11Shape(t *testing.T) {
	tab, err := E11()
	if err != nil {
		t.Fatal(err)
	}
	frac := tab.KeyMetrics["radiation_fraction"]
	if frac < 0.2 || frac > 0.45 {
		t.Errorf("radiation fraction %g outside the paper's ~30%% regime", frac)
	}
	if s := tab.KeyMetrics["step_speedup"]; s < 1.2 || s > 2 {
		t.Errorf("Amdahl step speedup %g outside plausible range", s)
	}
	if tab.KeyMetrics["analysis_gain"] <= 1 {
		t.Error("assimilation must improve the analysis")
	}
	if tab.KeyMetrics["ensemble_gain"] <= 1 {
		t.Error("ensemble mean must beat the average member")
	}
}

func TestE12Shape(t *testing.T) {
	tab, err := E12()
	if err != nil {
		t.Fatal(err)
	}
	if tab.KeyMetrics["krr_mae"] >= tab.KeyMetrics["persistence_mae"] {
		t.Error("KRR must beat persistence")
	}
	if tab.KeyMetrics["krr_mae"] >= tab.KeyMetrics["physical_mae"] {
		t.Error("KRR must beat the raw physical model")
	}
}

func TestE13Shape(t *testing.T) {
	tab, err := E13()
	if err != nil {
		t.Fatal(err)
	}
	if tab.KeyMetrics["corrected_logerr"] >= tab.KeyMetrics["raw_logerr"]*0.7 {
		t.Errorf("ML correction must cut log error by >30%%: %g -> %g",
			tab.KeyMetrics["raw_logerr"], tab.KeyMetrics["corrected_logerr"])
	}
}

func TestE14Shape(t *testing.T) {
	tab, err := E14()
	if err != nil {
		t.Fatal(err)
	}
	if tab.KeyMetrics["match_accuracy"] < 0.8 {
		t.Errorf("map matching accuracy %g < 0.8", tab.KeyMetrics["match_accuracy"])
	}
	if p := tab.KeyMetrics["gmm_pred"]; p < 13 || p > 19 {
		t.Errorf("GMM conditional prediction %g, want ~16", p)
	}
	if tab.KeyMetrics["cnn_mae"] >= tab.KeyMetrics["persistence_mae"] {
		t.Error("CNN must beat persistence")
	}
	if tab.KeyMetrics["ptdr_p95_ratio"] <= 1 {
		t.Error("PTDR P95 must exceed the median")
	}
}
