package platform

import (
	"sync"
	"testing"
	"testing/quick"

	"everest/internal/hls"
)

func testBitstream(replicas, lanes, packed int, double bool) Bitstream {
	return Bitstream{
		ID: "test", Kernel: "k", Target: "alveo-u55c",
		Report: hls.Report{
			Kernel: "k", Backend: "vitis",
			LatencyCycle: 1 << 20, II: 1, IterLatency: 10,
			Resources: hls.Resources{LUT: 10000, FF: 12000, DSP: 30, BRAM: 16},
			ClockMHz:  300,
		},
		Config: SystemConfig{
			Replicas: replicas, BusWidthBits: 512, Lanes: lanes,
			PackedElements: packed, DoubleBuffered: double, PLMBytes: 1 << 16,
		},
		ElemBits: 64,
	}
}

func TestDeviceCatalog(t *testing.T) {
	for _, name := range []string{"alveo-u55c", "alveo-u280", "cloudfpga"} {
		d, err := DeviceByName(name)
		if err != nil || d == nil {
			t.Fatalf("DeviceByName(%s): %v", name, err)
		}
		if d.Capacity.LUT == 0 || d.Memory.BandwidthGBs == 0 {
			t.Errorf("%s has empty specs", name)
		}
	}
	if _, err := DeviceByName("stratix"); err == nil {
		t.Error("unknown device must error")
	}
	if AlveoU55C().Attachment != PCIeAttached {
		t.Error("U55C must be PCIe attached")
	}
	if CloudFPGA().Attachment != NetworkAttached {
		t.Error("cloudFPGA must be network attached")
	}
}

func TestLinkTransfer(t *testing.T) {
	l := LinkSpec{BandwidthGBs: 10, LatencyUs: 5}
	if got := l.TransferSeconds(0); got < 4.9e-6 || got > 5.1e-6 {
		t.Errorf("zero-byte transfer = %g, want ~latency only", got)
	}
	got := l.TransferSeconds(10 * 1e9)
	if got < 1.0 || got > 1.001 {
		t.Errorf("10GB over 10GB/s = %g, want ~1s", got)
	}
}

func TestExecuteBasics(t *testing.T) {
	dev := AlveoU55C()
	bs := testBitstream(1, 1, 1, false)
	wl := Workload{BytesIn: 1 << 26, BytesOut: 1 << 24}
	tl, err := Execute(dev, bs, wl)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Total <= 0 || tl.Compute <= 0 || tl.TransferIn <= 0 {
		t.Errorf("degenerate timeline: %+v", tl)
	}
	if tl.Total < tl.TransferIn+tl.Compute {
		t.Error("unbuffered total must include transfer + compute")
	}
}

func TestExecuteRejectsOverflow(t *testing.T) {
	dev := CloudFPGA()
	bs := testBitstream(1, 1, 1, false)
	bs.Report.Resources = hls.Resources{LUT: 10 << 20} // enormous
	if _, err := Execute(dev, bs, Workload{BytesIn: 1}); err == nil {
		t.Error("oversized bitstream must be rejected")
	}
	bad := testBitstream(0, 1, 1, false)
	if _, err := Execute(dev, bad, Workload{}); err == nil {
		t.Error("invalid config must be rejected")
	}
}

func TestDoubleBufferingOverlaps(t *testing.T) {
	dev := AlveoU55C()
	seq := testBitstream(1, 1, 1, false)
	dbl := testBitstream(1, 1, 1, true)
	wl := Workload{BytesIn: 1 << 28, BytesOut: 1 << 28, Batches: 16}
	t1, err := Execute(dev, seq, wl)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Execute(dev, dbl, wl)
	if err != nil {
		t.Fatal(err)
	}
	if t2.Total >= t1.Total {
		t.Errorf("double buffering must overlap: %g vs %g", t2.Total, t1.Total)
	}
}

func TestReplicationSpeedsCompute(t *testing.T) {
	dev := AlveoU55C()
	one := testBitstream(1, 1, 8, false)
	four := testBitstream(4, 4, 8, false)
	wl := Workload{BytesIn: 1 << 20, BytesOut: 1 << 20}
	t1, err := Execute(dev, one, wl)
	if err != nil {
		t.Fatal(err)
	}
	t4, err := Execute(dev, four, wl)
	if err != nil {
		t.Fatal(err)
	}
	if t4.Compute >= t1.Compute {
		t.Errorf("replication must cut compute: %g vs %g", t4.Compute, t1.Compute)
	}
}

func TestPackingRaisesEffectiveBandwidth(t *testing.T) {
	dev := AlveoU55C()
	unpacked := testBitstream(1, 1, 1, false)
	packed := testBitstream(1, 1, 8, false)
	wl := Workload{BytesIn: 1 << 30, BytesOut: 1 << 28}
	t1, err := Execute(dev, unpacked, wl)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Execute(dev, packed, wl)
	if err != nil {
		t.Fatal(err)
	}
	if t2.EffBWGBs <= t1.EffBWGBs {
		t.Errorf("packing must raise effective bandwidth: %g vs %g", t2.EffBWGBs, t1.EffBWGBs)
	}
}

func TestNetworkAttachedPaysLinkCost(t *testing.T) {
	wl := Workload{BytesIn: 1 << 28, BytesOut: 1 << 26}
	bsA := testBitstream(1, 1, 8, false)
	tlA, err := Execute(AlveoU55C(), bsA, wl)
	if err != nil {
		t.Fatal(err)
	}
	bsC := testBitstream(1, 1, 8, false)
	bsC.Report.Resources = hls.Resources{LUT: 5000, FF: 5000, DSP: 10, BRAM: 8}
	tlC, err := Execute(CloudFPGA(), bsC, wl)
	if err != nil {
		t.Fatal(err)
	}
	if tlC.TransferIn <= tlA.TransferIn {
		t.Error("10G network transfers must be slower than PCIe")
	}
}

func TestNodeProgramAndRun(t *testing.T) {
	n := NewNode("n0", XeonModel(), AlveoU55C())
	bs := testBitstream(1, 1, 1, false)
	if _, err := n.RunKernel(0, Workload{BytesIn: 1}); err == nil {
		t.Error("running an unprogrammed device must fail")
	}
	dt, err := n.Program(0, bs)
	if err != nil || dt <= 0 {
		t.Fatalf("Program: %v (%g)", err, dt)
	}
	if _, ok := n.Programmed(0); !ok {
		t.Error("Programmed must report the bitstream")
	}
	if _, err := n.RunKernel(0, Workload{BytesIn: 1 << 20}); err != nil {
		t.Errorf("RunKernel: %v", err)
	}
	if _, err := n.Program(5, bs); err == nil {
		t.Error("bad device index must fail")
	}
}

func TestCPUModel(t *testing.T) {
	cpu := XeonModel()
	t1 := cpu.TimeSeconds(1e9, 0, 1)
	tAll := cpu.TimeSeconds(1e9, 0, 0)
	if tAll >= t1 {
		t.Error("more cores must be faster for compute-bound work")
	}
	// Memory-bound work does not scale with cores.
	m1 := cpu.TimeSeconds(1, 80e9, 1)
	if m1 < 0.99 {
		t.Errorf("80GB over 80GB/s should take ~1s, got %g", m1)
	}
}

func TestSimClock(t *testing.T) {
	var c SimClock
	if c.Now() != 0 {
		t.Error("clock must start at 0")
	}
	c.Advance(1.5)
	c.Advance(-1) // ignored
	if c.Now() != 1.5 {
		t.Error("Advance wrong")
	}
	c.AdvanceTo(1.0) // ignored (past)
	c.AdvanceTo(2.0)
	if c.Now() != 2.0 {
		t.Error("AdvanceTo wrong")
	}
}

func TestClusterTransfer(t *testing.T) {
	c := NewCluster(NewNode("a", XeonModel()), NewNode("b", XeonModel()))
	if c.TransferSeconds("a", "a", 1<<30) != 0 {
		t.Error("same-node transfer must be free")
	}
	if c.TransferSeconds("a", "b", 1<<30) <= 0 {
		t.Error("cross-node transfer must cost time")
	}
	if c.FindNode("a") == nil || c.FindNode("zz") != nil {
		t.Error("FindNode broken")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	bs := testBitstream(1, 1, 1, false)
	if err := r.Put(bs); err != nil {
		t.Fatal(err)
	}
	got, err := r.Get("test")
	if err != nil || got.Kernel != "k" {
		t.Errorf("Get: %v", err)
	}
	if _, err := r.Get("nope"); err == nil {
		t.Error("missing ID must error")
	}
	if err := r.Put(Bitstream{}); err == nil {
		t.Error("empty ID must error")
	}
	if ids := r.IDs(); len(ids) != 1 || ids[0] != "test" {
		t.Errorf("IDs = %v", ids)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []SystemConfig{
		{Replicas: 0, BusWidthBits: 512, Lanes: 1, PackedElements: 1},
		{Replicas: 1, BusWidthBits: 0, Lanes: 1, PackedElements: 1},
		{Replicas: 1, BusWidthBits: 512, Lanes: 3, PackedElements: 1},
		{Replicas: 1, BusWidthBits: 512, Lanes: 1, PackedElements: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d must be invalid", i)
		}
	}
}

func TestMoreBatchesNeverSlowerProperty(t *testing.T) {
	dev := AlveoU55C()
	prop := func(b uint8) bool {
		batches := int(b%16) + 2
		bs := testBitstream(1, 1, 1, true)
		wl1 := Workload{BytesIn: 1 << 28, BytesOut: 1 << 28, Batches: 1}
		wlN := Workload{BytesIn: 1 << 28, BytesOut: 1 << 28, Batches: batches}
		t1, err1 := Execute(dev, bs, wl1)
		tn, err2 := Execute(dev, bs, wlN)
		if err1 != nil || err2 != nil {
			return false
		}
		return tn.Total <= t1.Total+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestNodeFailureState(t *testing.T) {
	n := NewNode("n0", XeonModel())
	if _, failed := n.FailedAt(); failed {
		t.Error("fresh node must not be failed")
	}
	if !n.Alive(1e9) {
		t.Error("fresh node must be alive at any time")
	}
	n.Fail(5.0)
	n.Fail(7.0) // later failure must not move the time forward
	if at, failed := n.FailedAt(); !failed || at != 5.0 {
		t.Errorf("FailedAt = %v %v, want 5 true", at, failed)
	}
	if !n.Alive(5.0) || n.Alive(5.1) {
		t.Error("node must be alive up to the failure time and dead after")
	}
	n.Fail(2.0) // earlier failure wins
	if at, _ := n.FailedAt(); at != 2.0 {
		t.Errorf("earliest failure must be kept, got %v", at)
	}
	n.Heal()
	if !n.Alive(1e9) {
		t.Error("healed node must be alive")
	}
}

func TestClaimDeviceSerializes(t *testing.T) {
	n := NewNode("n0", XeonModel(), AlveoU55C())
	s1, e1, ok, err := n.ClaimDeviceAt(0, 1.0, 2.0)
	if err != nil || !ok || s1 != 1.0 || e1 != 3.0 {
		t.Fatalf("first claim: [%v,%v] %v %v", s1, e1, ok, err)
	}
	// Overlapping claim queues behind the first.
	s2, e2, ok, err := n.ClaimDeviceAt(0, 2.0, 1.0)
	if err != nil || !ok || s2 != 3.0 || e2 != 4.0 {
		t.Fatalf("second claim must queue: [%v,%v] %v %v", s2, e2, ok, err)
	}
	if free := n.DeviceFreeAt(0); free != 4.0 {
		t.Errorf("DeviceFreeAt = %v, want 4", free)
	}
	if _, _, _, err := n.ClaimDeviceAt(1, 0, 1); err == nil {
		t.Error("claiming a missing device must fail")
	}
	// A claim that would queue past a detach makes no reservation.
	if _, err := n.SetDeviceOffline(0, true, 3.5); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := n.ClaimDeviceAt(0, 2.0, 1.0); err != nil || ok {
		t.Fatalf("claim queuing past the detach must refuse: ok=%v err=%v", ok, err)
	}
	if free := n.DeviceFreeAt(0); free != 4.0 {
		t.Errorf("refused claim must leave no phantom window, free=%v", free)
	}
}

func TestClaimDeviceRaceSafety(t *testing.T) {
	n := NewNode("n0", XeonModel(), AlveoU55C())
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, ok, err := n.ClaimDeviceAt(0, 0, 1.0); err != nil || !ok {
				t.Error(ok, err)
			}
		}()
	}
	wg.Wait()
	if free := n.DeviceFreeAt(0); free != 32.0 {
		t.Errorf("32 serialized unit claims must end at 32, got %v", free)
	}
}

func TestBatchTransferSeconds(t *testing.T) {
	c := NewCluster(NewNode("a", XeonModel()), NewNode("b", XeonModel()))
	bytes := int64(1 << 20)
	single := c.TransferSeconds("a", "b", bytes)
	batched := c.BatchTransferSeconds("a", "b", 4*bytes, 4)
	perDep := 4 * single
	if batched >= perDep {
		t.Errorf("batched transfer (%g) must beat 4 separate transfers (%g)", batched, perDep)
	}
	if got := c.BatchTransferSeconds("a", "a", bytes, 2); got != 0 {
		t.Errorf("same-node batch must be free, got %g", got)
	}
	if got := c.BatchTransferSeconds("a", "b", bytes, 0); got != 0 {
		t.Errorf("zero-dep batch must be free, got %g", got)
	}
}

func TestUnprogramFreesDeviceSlot(t *testing.T) {
	n := NewNode("n0", XeonModel(), AlveoU55C())
	bs := Bitstream{
		ID: "bs-x", Kernel: "k", Target: "alveo-u55c",
		Report: hls.Report{LatencyCycle: 1024, II: 1, IterLatency: 4,
			Resources: hls.Resources{LUT: 1000, FF: 1000}, ClockMHz: 300},
		Config:   SystemConfig{Replicas: 1, BusWidthBits: 512, Lanes: 4, PackedElements: 1, PLMBytes: 1 << 12},
		ElemBits: 32,
	}
	if _, err := n.Program(0, bs); err != nil {
		t.Fatal(err)
	}
	if _, ok := n.Programmed(0); !ok {
		t.Fatal("bitstream should be loaded")
	}
	loaded, err := n.Unprogram(0)
	if err != nil || !loaded {
		t.Fatalf("Unprogram = (%v, %v), want (true, nil)", loaded, err)
	}
	if _, ok := n.Programmed(0); ok {
		t.Fatal("bitstream should be gone after Unprogram")
	}
	loaded, err = n.Unprogram(0)
	if err != nil || loaded {
		t.Fatalf("second Unprogram = (%v, %v), want (false, nil)", loaded, err)
	}
	if _, err := n.Unprogram(5); err == nil {
		t.Fatal("out-of-range device accepted")
	}
}
