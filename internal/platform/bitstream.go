package platform

import (
	"fmt"
	"sort"
	"sync"

	"everest/internal/hls"
)

// SystemConfig captures the FPGA system architecture Olympus generated
// around a kernel (paper §V-C): private local memories, bus organization,
// replication, and transfer scheduling.
type SystemConfig struct {
	Replicas       int   // kernel instances on the fabric
	BusWidthBits   int   // memory bus width
	Lanes          int   // bus lanes serving the replicas
	PackedElements int   // elements packed per bus beat (1 = unpacked)
	DoubleBuffered bool  // overlap transfer and compute
	PLMBytes       int64 // on-fabric private local memory footprint
	PLMShared      bool  // buffers share storage across kernel phases
}

// Validate checks internal consistency.
func (c SystemConfig) Validate() error {
	if c.Replicas < 1 {
		return fmt.Errorf("platform: config needs >= 1 replica")
	}
	if c.Lanes < 1 || c.BusWidthBits < 1 {
		return fmt.Errorf("platform: config needs positive bus width and lanes")
	}
	if c.BusWidthBits%c.Lanes != 0 {
		return fmt.Errorf("platform: bus width %d not divisible into %d lanes", c.BusWidthBits, c.Lanes)
	}
	if c.PackedElements < 1 {
		return fmt.Errorf("platform: packed elements must be >= 1")
	}
	return nil
}

// Bitstream is the deployable artifact: the HLS report of the kernel plus
// the generated system architecture. (A real bitstream is opaque; what the
// paper evaluates is exactly this architectural content.)
type Bitstream struct {
	ID       string
	Kernel   string
	Target   string // device name it was generated for
	Report   hls.Report
	Config   SystemConfig
	ElemBits int // datapath element width
}

// TotalResources returns the fabric resources of the full system: replicas
// plus the memory subsystem (PLMs, lane controllers, DMA engines).
func (b Bitstream) TotalResources() hls.Resources {
	r := b.Report.Resources.Scale(b.Config.Replicas)
	// Lane controllers and DMA engine overhead.
	r = r.Add(hls.Resources{LUT: 2000 + 500*b.Config.Lanes, FF: 3000 + 700*b.Config.Lanes})
	plm := b.Config.PLMBytes
	if b.Config.DoubleBuffered {
		plm *= 2
	}
	r = r.Add(hls.Resources{BRAM: int((plm + 2047) / 2048)})
	return r
}

// Registry stores bitstreams by ID, mimicking the deployment store the
// LEXIS-based flow pushes artifacts into (paper §IV).
type Registry struct {
	mu sync.RWMutex
	m  map[string]Bitstream
}

// NewRegistry returns an empty bitstream registry.
func NewRegistry() *Registry { return &Registry{m: make(map[string]Bitstream)} }

// Put stores a bitstream (overwrites by ID).
func (r *Registry) Put(b Bitstream) error {
	if b.ID == "" {
		return fmt.Errorf("platform: bitstream needs an ID")
	}
	if err := b.Config.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m[b.ID] = b
	return nil
}

// Get fetches a bitstream by ID.
func (r *Registry) Get(id string) (Bitstream, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	b, ok := r.m[id]
	if !ok {
		return Bitstream{}, fmt.Errorf("platform: no bitstream %q", id)
	}
	return b, nil
}

// Delete removes a bitstream by ID (missing IDs are a no-op). Bounded
// region stores evict idle artifacts through this; the federation-wide
// catalog retains the authoritative copy.
func (r *Registry) Delete(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.m, id)
}

// IDs returns all stored bitstream IDs, sorted.
func (r *Registry) IDs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := make([]string, 0, len(r.m))
	for id := range r.m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
