package platform

import (
	"fmt"
	"math"
)

// Workload describes one invocation of a deployed kernel system.
type Workload struct {
	BytesIn  int64 // host -> device payload
	BytesOut int64 // device -> host payload
	// Batches splits the payload into equal batches; double buffering
	// overlaps batch k+1's transfer with batch k's compute.
	Batches int
}

// Timeline is the modelled execution breakdown of one workload run.
type Timeline struct {
	TransferIn  float64 // seconds moving inputs
	Compute     float64 // seconds of kernel execution (all batches)
	TransferOut float64 // seconds moving outputs
	Total       float64 // end-to-end seconds (overlap-aware)
	MemoryBound bool    // compute was limited by memory bandwidth
	EffBWGBs    float64 // effective memory bandwidth seen by the kernel
}

func (t Timeline) String() string {
	return fmt.Sprintf("in=%.3gs compute=%.3gs out=%.3gs total=%.3gs (membound=%v, effBW=%.1fGB/s)",
		t.TransferIn, t.Compute, t.TransferOut, t.Total, t.MemoryBound, t.EffBWGBs)
}

// Execute models running a bitstream on a device.
//
// The model captures the effects Olympus optimizes for (paper §V-C):
//
//   - replication divides compute cycles across instances, but each replica
//     needs its own data stream: the memory system sustains Lanes concurrent
//     streams, so replicas beyond the lane count queue;
//   - data packing raises the usable fraction of each bus beat from
//     elemBits/busWidth to packed*elemBits/busWidth;
//   - double buffering overlaps per-batch transfers with compute;
//   - network-attached devices pay the (much slower) network link for
//     transfers but are otherwise identical, exposing the compute/byte
//     crossover of E9.
func Execute(dev *Device, bs Bitstream, wl Workload) (Timeline, error) {
	return executeCycles(dev, bs, wl, bs.Report.LatencyCycle)
}

// ExecuteBound is Execute priced at the schedule's proven worst case: the
// kernel spends max(WCETCycle, LatencyCycle) cycles instead of the achieved
// latency. The timeline model is monotone in compute cycles, so the
// returned Total dominates Execute's for the same workload — the per-task
// device bound guaranteed-class admission sums (hand-declared bitstreams
// without a derived WCET degrade to the achieved latency, which Execute
// then matches exactly).
func ExecuteBound(dev *Device, bs Bitstream, wl Workload) (Timeline, error) {
	cycles := bs.Report.WCETCycle
	if bs.Report.LatencyCycle > cycles {
		cycles = bs.Report.LatencyCycle
	}
	return executeCycles(dev, bs, wl, cycles)
}

// executeCycles is the shared timeline model, parameterized on the kernel
// cycle count (achieved latency for Execute, worst case for ExecuteBound).
func executeCycles(dev *Device, bs Bitstream, wl Workload, cycles int64) (Timeline, error) {
	if err := bs.Config.Validate(); err != nil {
		return Timeline{}, err
	}
	if !bs.TotalResources().FitsIn(dev.Capacity) {
		return Timeline{}, fmt.Errorf("platform: bitstream %q does not fit on %s (%s > %s)",
			bs.ID, dev.Name, bs.TotalResources(), dev.Capacity)
	}
	batches := wl.Batches
	if batches < 1 {
		batches = 1
	}

	cfg := bs.Config
	clockHz := bs.Report.ClockMHz * 1e6
	if dev.FabricMHz*1e6 < clockHz {
		clockHz = dev.FabricMHz * 1e6
	}

	// Pure compute: the HLS latency covers the whole iteration space once;
	// replicas split it. Parallelism beyond the lane count still computes
	// but waits on data, handled through the bandwidth bound below.
	computePure := float64(cycles) / clockHz / float64(cfg.Replicas)

	// Memory bound: bytes touched per run = in + out (PLM-resident
	// intermediates excluded). The usable bandwidth scales with beat
	// utilization and with how many lanes the replicas can actually drive.
	beatUtil := float64(cfg.PackedElements*bs.ElemBits) / float64(cfg.BusWidthBits)
	if beatUtil > 1 {
		beatUtil = 1
	}
	activeLanes := cfg.Lanes
	if cfg.Replicas < activeLanes {
		activeLanes = cfg.Replicas
	}
	laneShare := float64(activeLanes) / float64(cfg.Lanes)
	// Raw stream bandwidth: the DRAM side shared across lanes, capped by
	// what the active AXI ports can move per cycle. Unused beat bits are
	// wasted on both paths, so beat utilization scales the raw figure.
	rawBW := dev.Memory.BandwidthGBs * 1e9 * laneShare
	portBW := float64(cfg.BusWidthBits/8/cfg.Lanes) * clockHz * float64(activeLanes)
	if portBW < rawBW {
		rawBW = portBW
	}
	effBW := rawBW * beatUtil
	memTime := float64(wl.BytesIn+wl.BytesOut) / effBW

	compute := computePure
	memoryBound := false
	if memTime > compute {
		compute = memTime
		memoryBound = true
	}

	tIn := dev.Host.TransferSeconds(wl.BytesIn)
	tOut := dev.Host.TransferSeconds(wl.BytesOut)

	var total float64
	if cfg.DoubleBuffered && batches > 1 {
		// Steady state: stages overlap; the slowest stage dominates, plus
		// pipeline fill and drain of the faster stages.
		perIn := tIn / float64(batches)
		perC := compute / float64(batches)
		perOut := tOut / float64(batches)
		slowest := math.Max(perIn, math.Max(perC, perOut))
		total = slowest*float64(batches) + (perIn + perC + perOut - slowest)
	} else {
		total = tIn + compute + tOut
	}

	return Timeline{
		TransferIn:  tIn,
		Compute:     compute,
		TransferOut: tOut,
		Total:       total,
		MemoryBound: memoryBound,
		EffBWGBs:    effBW / 1e9,
	}, nil
}

// Throughput returns processed bytes per second for a timeline.
func Throughput(wl Workload, tl Timeline) float64 {
	if tl.Total <= 0 {
		return 0
	}
	return float64(wl.BytesIn+wl.BytesOut) / tl.Total
}
