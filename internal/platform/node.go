package platform

import (
	"fmt"
	"sync"
)

// SimClock is the logical clock shared by the simulated cluster. All times
// are modelled seconds; nothing sleeps.
type SimClock struct {
	mu  sync.Mutex
	now float64
}

// Now returns the current modelled time.
func (c *SimClock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by dt seconds and returns the new time.
func (c *SimClock) Advance(dt float64) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if dt > 0 {
		c.now += dt
	}
	return c.now
}

// AdvanceTo moves the clock to t if t is in the future.
func (c *SimClock) AdvanceTo(t float64) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Node is one computing node of the EVEREST cluster: a CPU plus attached
// FPGA devices, with an XRT-like programming interface.
type Node struct {
	Name    string
	CPU     CPUModel
	Devices []*Device

	mu         sync.Mutex
	programmed map[int]Bitstream    // device index -> loaded whole-device bitstream
	regions    map[[2]int]Bitstream // (device index, PR region) -> loaded kernel
	busyUntil  map[int]float64      // device index -> modelled time it frees up
	failed     bool
	failedAt   float64
	// Condition faults are timelines in modelled time, not booleans: a
	// task is priced by the state at its own modelled start, so a fault
	// stamped at time T never applies retroactively to work modelled
	// before T, whatever the wall-clock order executors observe events in
	// (same principle as failed/failedAt).
	slowHist []condChange         // CPU load-factor change history
	devHist  map[int][]condChange // device index -> attachment change history
}

// condChange is one modelled-time transition of a node condition.
type condChange struct {
	at    float64
	value float64 // slowdown factor, or 0/1 for detached/attached
}

// NewNode builds a node.
func NewNode(name string, cpu CPUModel, devices ...*Device) *Node {
	return &Node{
		Name: name, CPU: cpu, Devices: devices,
		programmed: make(map[int]Bitstream),
		regions:    make(map[[2]int]Bitstream),
		busyUntil:  make(map[int]float64),
		devHist:    make(map[int][]condChange),
	}
}

// condAt returns the value of a condition history at modelled time t (the
// change with the greatest at <= t wins; def if none applies). Histories
// are time-sorted by construction (clampMonotonic), so the backward scan
// stops at the first applicable entry — the newest wins ties because it
// was appended last.
func condAt(hist []condChange, t, def float64) float64 {
	for i := len(hist) - 1; i >= 0; i-- {
		if hist[i].at <= t {
			return hist[i].value
		}
	}
	return def
}

// clampMonotonic floors `at` to the history's latest transition time:
// transitions are state changes observed in order, so one stamped earlier
// than an already-recorded change (completion-count fault triggers see
// task-done times in report order, not modelled order) takes effect at the
// recorded frontier instead of rewriting the past — where condAt would
// never see it as the latest state. The invariant this maintains is what
// keeps histories sorted, so the last entry is the frontier.
func clampMonotonic(hist []condChange, at float64) float64 {
	if n := len(hist); n > 0 && hist[n-1].at > at {
		return hist[n-1].at
	}
	return at
}

// Program loads a bitstream onto device idx (XRT xclLoadXclbin analogue).
// Reprogramming takes modelled time returned as seconds.
func (n *Node) Program(idx int, bs Bitstream) (float64, error) {
	if idx < 0 || idx >= len(n.Devices) {
		return 0, fmt.Errorf("platform: node %s has no device %d", n.Name, idx)
	}
	if !bs.TotalResources().FitsIn(n.Devices[idx].Capacity) {
		return 0, fmt.Errorf("platform: bitstream %q does not fit on %s", bs.ID, n.Devices[idx].Name)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.programmed[idx] = bs
	// A whole-device image rewrites the entire fabric, displacing every
	// kernel resident in a PR region.
	n.clearRegionsLocked(idx)
	return n.Devices[idx].ReconfigSeconds(), nil
}

// clearRegionsLocked drops every PR-region entry of device idx (n.mu held).
func (n *Node) clearRegionsLocked(idx int) {
	for r := 0; r < n.Devices[idx].Regions(); r++ {
		delete(n.regions, [2]int{idx, r})
	}
}

// ProgramRegion loads a kernel bitstream into one partial-reconfiguration
// region of device idx, leaving every other region resident — the streaming
// and fleet tiers use this so one card hosts several kernels and a stage
// change swaps only the region that changes. The kernel must fit the
// region's share of the fabric; the modelled latency returned is the
// region-sized reconfiguration time. A previously loaded whole-device image
// is displaced (its static shell is what the regions plug into).
func (n *Node) ProgramRegion(idx, region int, bs Bitstream) (float64, error) {
	if idx < 0 || idx >= len(n.Devices) {
		return 0, fmt.Errorf("platform: node %s has no device %d", n.Name, idx)
	}
	d := n.Devices[idx]
	if region < 0 || region >= d.Regions() {
		return 0, fmt.Errorf("platform: %s device %d has no PR region %d (regions: %d)",
			n.Name, idx, region, d.Regions())
	}
	if !bs.TotalResources().FitsIn(d.RegionCapacity()) {
		return 0, fmt.Errorf("platform: bitstream %q does not fit a PR region of %s (1/%d of the fabric)",
			bs.ID, d.Name, d.Regions())
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.programmed, idx)
	n.regions[[2]int{idx, region}] = bs
	return d.RegionReconfigSeconds(), nil
}

// UnprogramRegion clears one PR region of device idx, returning whether a
// kernel was resident there. Per-region cache evictions use this so the
// victim region frees without disturbing its neighbours.
func (n *Node) UnprogramRegion(idx, region int) (bool, error) {
	if idx < 0 || idx >= len(n.Devices) {
		return false, fmt.Errorf("platform: node %s has no device %d", n.Name, idx)
	}
	if region < 0 || region >= n.Devices[idx].Regions() {
		return false, fmt.Errorf("platform: %s device %d has no PR region %d", n.Name, idx, region)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	_, loaded := n.regions[[2]int{idx, region}]
	delete(n.regions, [2]int{idx, region})
	return loaded, nil
}

// RegionProgrammed returns the kernel resident in one PR region of device
// idx.
func (n *Node) RegionProgrammed(idx, region int) (Bitstream, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	bs, ok := n.regions[[2]int{idx, region}]
	return bs, ok
}

// ProgrammedRegions counts the kernels resident across device idx's PR
// regions.
func (n *Node) ProgrammedRegions(idx int) int {
	if idx < 0 || idx >= len(n.Devices) {
		return 0
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	count := 0
	for r := 0; r < n.Devices[idx].Regions(); r++ {
		if _, ok := n.regions[[2]int{idx, r}]; ok {
			count++
		}
	}
	return count
}

// Unprogram clears the bitstream loaded on device idx, returning whether
// one was loaded. A cache-capacity eviction in a bitstream deployment tier
// uses this to free the slot: the next task requesting the evicted
// bitstream on this node no longer finds it and must pay a redeploy (or
// fall back to software). Device reservations are untouched — work already
// claimed keeps its window.
func (n *Node) Unprogram(idx int) (bool, error) {
	if idx < 0 || idx >= len(n.Devices) {
		return false, fmt.Errorf("platform: node %s has no device %d", n.Name, idx)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	_, loaded := n.programmed[idx]
	delete(n.programmed, idx)
	// Freeing the device clears PR regions too: the whole fabric is blank.
	n.clearRegionsLocked(idx)
	return loaded, nil
}

// Programmed returns the loaded bitstream for device idx.
func (n *Node) Programmed(idx int) (Bitstream, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	bs, ok := n.programmed[idx]
	return bs, ok
}

// RunKernel executes the loaded bitstream with the workload, returning the
// timeline. The caller accounts the time on its own clock.
func (n *Node) RunKernel(idx int, wl Workload) (Timeline, error) {
	n.mu.Lock()
	bs, ok := n.programmed[idx]
	n.mu.Unlock()
	if !ok {
		return Timeline{}, fmt.Errorf("platform: device %d of %s is not programmed", idx, n.Name)
	}
	return Execute(n.Devices[idx], bs, wl)
}

// RunCPU models a software execution on n cores at the node's nominal
// (design-time) speed. Planners use it for estimates that deliberately
// ignore the current load.
func (n *Node) RunCPU(flops float64, bytes int64, cores int) float64 {
	return n.CPU.TimeSeconds(flops, bytes, cores)
}

// RunCPULiveAt models a software execution on n cores starting at modelled
// time `at`, under the load in effect then: the nominal time scaled by the
// slowdown factor. Executors pay this; whether a scheduler *predicts* it
// depends on whether it consults the monitors (the adaptive engine does,
// the static one does not).
func (n *Node) RunCPULiveAt(flops float64, bytes int64, cores int, at float64) float64 {
	return n.CPU.TimeSeconds(flops, bytes, cores) * n.SlowdownAt(at)
}

// SetSlowdown sets the node's CPU load multiplier from modelled time `at`
// onward (1 = nominal, 2 = every software execution takes twice as long).
// Factors below 1 clamp to 1: the model has no overclocking.
func (n *Node) SetSlowdown(factor, at float64) {
	if factor < 1 {
		factor = 1
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.slowHist = append(n.slowHist, condChange{at: clampMonotonic(n.slowHist, at), value: factor})
}

// SlowdownAt returns the CPU load multiplier in effect at modelled time t.
func (n *Node) SlowdownAt(t float64) float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return condAt(n.slowHist, t, 1)
}

// Slowdown returns the most recently set CPU load multiplier.
func (n *Node) Slowdown() float64 {
	return n.SlowdownAt(maxModelledTime)
}

// maxModelledTime queries a condition timeline's latest state.
const maxModelledTime = 1e300

// SetDeviceOffline marks device idx as detached (off=true) or reattached
// from modelled time `at` onward, reporting whether the latest state
// actually changed — the check and the timeline append are one atomic
// step, so concurrent callers cannot both observe "changed". An offline
// device keeps its programmed bitstream — replugging a VF brings the
// accelerator back without reconfiguration — but cannot execute kernels
// while detached.
func (n *Node) SetDeviceOffline(idx int, off bool, at float64) (changed bool, err error) {
	if idx < 0 || idx >= len(n.Devices) {
		return false, fmt.Errorf("platform: node %s has no device %d", n.Name, idx)
	}
	v := 1.0
	if off {
		v = 0
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if condAt(n.devHist[idx], maxModelledTime, 1) == v {
		return false, nil
	}
	n.devHist[idx] = append(n.devHist[idx], condChange{at: clampMonotonic(n.devHist[idx], at), value: v})
	return true, nil
}

// DeviceOnlineAt reports whether device idx is attached at modelled time t.
func (n *Node) DeviceOnlineAt(idx int, t float64) bool {
	if idx < 0 || idx >= len(n.Devices) {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return condAt(n.devHist[idx], t, 1) != 0
}

// DeviceOnline reports whether device idx is attached in the latest state.
func (n *Node) DeviceOnline(idx int) bool {
	return n.DeviceOnlineAt(idx, maxModelledTime)
}

// ResetCondition clears load and attachment fault timelines (slowdown back
// to nominal, all devices online). Engines call it with Heal and
// ResetDeviceClaims when they take ownership of a cluster.
func (n *Node) ResetCondition() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.slowHist = nil
	for k := range n.devHist {
		delete(n.devHist, k)
	}
}

// ClaimDeviceAt reserves device idx from modelled time `at` for `dur`
// seconds and returns the actual [start, end] window. Claims serialize: if
// the device is still busy at `at`, the claim queues behind the current
// owner. The reservation is made only if the device is still attached at
// the granted start (otherwise ok=false and nothing is reserved) — so a
// claim that would queue past a detach never leaves a phantom busy window
// blocking work after a replug; the attachment check and the reservation
// are one atomic step. This is the executor hook that lets concurrent
// workflow engines share one physical accelerator safely.
func (n *Node) ClaimDeviceAt(idx int, at, dur float64) (start, end float64, ok bool, err error) {
	if idx < 0 || idx >= len(n.Devices) {
		return 0, 0, false, fmt.Errorf("platform: node %s has no device %d", n.Name, idx)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	start = at
	if b := n.busyUntil[idx]; b > start {
		start = b
	}
	if condAt(n.devHist[idx], start, 1) == 0 {
		return 0, 0, false, nil
	}
	end = start + dur
	n.busyUntil[idx] = end
	return start, end, true, nil
}

// ResetDeviceClaims clears all device reservations, returning every device
// to idle at modelled time zero. Engines call it when they take ownership of
// a cluster so stale claims from a previous run do not inflate start times.
func (n *Node) ResetDeviceClaims() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for idx := range n.busyUntil {
		delete(n.busyUntil, idx)
	}
}

// DeviceFreeAt returns the modelled time device idx becomes idle.
func (n *Node) DeviceFreeAt(idx int) float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.busyUntil[idx]
}

// Fail marks the node as failed at modelled time t (monitor hook: the
// resource manager's failure detector calls this, executors consult
// FailedAt or Alive). Only the earliest failure time is kept.
func (n *Node) Fail(t float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.failed || t < n.failedAt {
		n.failed = true
		n.failedAt = t
	}
}

// Heal clears the failure state (tests and re-provisioning flows).
func (n *Node) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.failed = false
	n.failedAt = 0
}

// FailedAt reports whether the node has failed and, if so, when.
func (n *Node) FailedAt() (float64, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.failedAt, n.failed
}

// Alive reports whether the node is still up at modelled time t.
func (n *Node) Alive(t float64) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return !n.failed || t <= n.failedAt
}

// Cluster is a set of nodes joined by a data-center network.
type Cluster struct {
	Nodes   []*Node
	Network LinkSpec
	Clock   SimClock
}

// NewCluster builds a cluster with a default 100 Gbps data-center fabric.
func NewCluster(nodes ...*Node) *Cluster {
	return &Cluster{
		Nodes:   nodes,
		Network: LinkSpec{Kind: "eth100g", BandwidthGBs: 11, LatencyUs: 3},
	}
}

// FindNode returns the node with the given name, or nil.
func (c *Cluster) FindNode(name string) *Node {
	for _, n := range c.Nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// TransferSeconds models moving bytes between two nodes.
func (c *Cluster) TransferSeconds(from, to string, bytes int64) float64 {
	if from == to {
		return 0
	}
	return c.Network.TransferSeconds(bytes)
}

// BatchTransferSeconds models moving the coalesced outputs of `deps`
// dependencies from one node to another as a single bulk transfer: the link
// latency is paid once instead of once per dependency. This is the hook the
// concurrent engine uses to batch inter-node transfers; the per-dependency
// cost it avoids is (deps-1) extra latencies.
func (c *Cluster) BatchTransferSeconds(from, to string, totalBytes int64, deps int) float64 {
	if from == to || deps <= 0 {
		return 0
	}
	return c.Network.TransferSeconds(totalBytes)
}
