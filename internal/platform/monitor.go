package platform

import (
	"sort"
	"sync"
)

// Monitor is the per-node observation layer of the adaptive resource
// manager (paper §VI-A/§VI-C): it aggregates what actually happened on each
// node — task completions, their latencies, and the ratio of observed to
// nominal execution time — so schedulers and autotuners can react to the
// current environment instead of the design-time model.
//
// The slowdown estimate is learned, not read: the monitor never looks at
// the fault injected via Node.SetSlowdown, it infers the factor from the
// observed/nominal ratio of completed software tasks (EWMA). A freshly
// slowed node therefore mispredicts for its first task or two and then
// converges, which is exactly the adaptation transient experiment E-adapt
// measures.
type Monitor struct {
	cluster *Cluster

	mu    sync.Mutex
	stats map[string]*nodeObs
}

// nodeObs is one node's accumulated observations.
type nodeObs struct {
	tasks       int
	ewmaLatency float64
	ewmaRatio   float64 // observed/nominal software execution time
	hasRatio    bool
}

// ewmaAlpha weights new observations; 0.5 matches the autotuner's default
// so both adaptation loops react at the same rate.
const ewmaAlpha = 0.5

// NewMonitor builds a monitor over a cluster.
func NewMonitor(c *Cluster) *Monitor {
	return &Monitor{cluster: c, stats: make(map[string]*nodeObs)}
}

func (m *Monitor) obs(node string) *nodeObs {
	o := m.stats[node]
	if o == nil {
		o = &nodeObs{}
		m.stats[node] = o
	}
	return o
}

// Reset discards all accumulated observations. An engine taking ownership
// of a cluster calls it alongside Heal/ResetCondition: load learned during
// a previous run is stale evidence for the next one.
func (m *Monitor) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for k := range m.stats {
		delete(m.stats, k)
	}
}

// RecordTask records one completed task's modelled latency on a node.
func (m *Monitor) RecordTask(node string, latency float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	o := m.obs(node)
	if o.tasks == 0 {
		o.ewmaLatency = latency
	} else {
		o.ewmaLatency = (1-ewmaAlpha)*o.ewmaLatency + ewmaAlpha*latency
	}
	o.tasks++
}

// ObserveRatio feeds one observed/nominal execution-time pair for a
// software task. Nominal is the design-time cost model's prediction; the
// ratio tracks the node's real load.
func (m *Monitor) ObserveRatio(node string, observed, nominal float64) {
	if nominal <= 0 {
		return
	}
	ratio := observed / nominal
	m.mu.Lock()
	defer m.mu.Unlock()
	o := m.obs(node)
	if !o.hasRatio {
		o.ewmaRatio = ratio
		o.hasRatio = true
	} else {
		o.ewmaRatio = (1-ewmaAlpha)*o.ewmaRatio + ewmaAlpha*ratio
	}
}

// SlowdownEstimate returns the learned load factor of a node (1 = nominal
// until evidence arrives).
func (m *Monitor) SlowdownEstimate(node string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	o := m.stats[node]
	if o == nil || !o.hasRatio || o.ewmaRatio < 1 {
		return 1
	}
	return o.ewmaRatio
}

// DeviceAvailable reports whether device idx of the named node is attached,
// and the node alive, right now.
func (m *Monitor) DeviceAvailable(node string, idx int) bool {
	n := m.cluster.FindNode(node)
	if n == nil {
		return false
	}
	if _, failed := n.FailedAt(); failed {
		return false
	}
	return n.DeviceOnline(idx)
}

// NodeHealth is one node's monitor snapshot.
type NodeHealth struct {
	Node          string
	Tasks         int     // completed tasks observed
	EWMALatency   float64 // modelled seconds
	SlowdownEst   float64 // learned load factor (>= 1)
	DevicesOnline int
	DevicesTotal  int
	Failed        bool
}

// Snapshot returns the health of every cluster node, sorted by name.
func (m *Monitor) Snapshot() []NodeHealth {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]NodeHealth, 0, len(m.cluster.Nodes))
	for _, n := range m.cluster.Nodes {
		h := NodeHealth{Node: n.Name, SlowdownEst: 1, DevicesTotal: len(n.Devices)}
		if o := m.stats[n.Name]; o != nil {
			h.Tasks = o.tasks
			h.EWMALatency = o.ewmaLatency
			if o.hasRatio && o.ewmaRatio > 1 {
				h.SlowdownEst = o.ewmaRatio
			}
		}
		for idx := range n.Devices {
			if n.DeviceOnline(idx) {
				h.DevicesOnline++
			}
		}
		_, h.Failed = n.FailedAt()
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}
