// Package platform models the EVEREST target systems (paper §III): PCIe-
// attached AMD Alveo cards with HBM and the Xilinx Runtime (XRT), and IBM
// cloudFPGA network-attached FPGAs on a 10 Gbps TCP/UDP fabric.
//
// Real hardware is replaced by calibrated analytical models (substitution
// table in DESIGN.md): device resource capacities and memory/link bandwidth
// numbers follow the boards' public data sheets, and execution time is
// derived from the HLS report plus the memory system model. All time is
// modelled (seconds as float64), never wall clock, so experiments are
// deterministic.
package platform

import (
	"fmt"

	"everest/internal/hls"
)

// Attachment distinguishes how a device reaches its host.
type Attachment int

// Attachment kinds.
const (
	// PCIeAttached devices (Alveo) transfer via the host PCIe link.
	PCIeAttached Attachment = iota
	// NetworkAttached devices (cloudFPGA) are reached over TCP/UDP and have
	// no local host (disaggregated).
	NetworkAttached
)

func (a Attachment) String() string {
	if a == NetworkAttached {
		return "network"
	}
	return "pcie"
}

// MemorySpec describes one device memory system.
type MemorySpec struct {
	Kind          string  // "hbm2", "ddr4"
	Channels      int     // pseudo-channels for HBM
	BandwidthGBs  float64 // aggregate peak bandwidth, GB/s
	LatencyNs     float64 // access latency
	SizeBytes     int64
	PortWidthBits int // AXI port width per channel
}

// ChannelBandwidthGBs returns the per-channel share of the peak bandwidth.
func (m MemorySpec) ChannelBandwidthGBs() float64 {
	if m.Channels == 0 {
		return m.BandwidthGBs
	}
	return m.BandwidthGBs / float64(m.Channels)
}

// LinkSpec describes a host or network link.
type LinkSpec struct {
	Kind         string  // "pcie3x16", "tcp10g"
	BandwidthGBs float64 // effective payload bandwidth, GB/s
	LatencyUs    float64 // one-way latency
}

// TransferSeconds returns the modelled time to move n bytes over the link.
func (l LinkSpec) TransferSeconds(n int64) float64 {
	if n <= 0 {
		return l.LatencyUs * 1e-6
	}
	return l.LatencyUs*1e-6 + float64(n)/(l.BandwidthGBs*1e9)
}

// Device is one FPGA card model.
type Device struct {
	Name       string
	Attachment Attachment
	Capacity   hls.Resources
	Memory     MemorySpec
	Host       LinkSpec // PCIe link (PCIeAttached) or network link (NetworkAttached)
	FabricMHz  float64  // achievable fabric clock ceiling
	// PRRegions is the number of partial-reconfiguration region slots the
	// shell floorplan exposes (0 or 1 means whole-device configuration
	// only). Each region holds one kernel bitstream and reconfigures
	// independently of its neighbours, which is what lets one card keep
	// several streaming kernels resident and swap only the one that
	// changes.
	PRRegions int
}

func (d *Device) String() string {
	return fmt.Sprintf("%s (%s, %s)", d.Name, d.Attachment, d.Memory.Kind)
}

// ReconfigSeconds is the modelled bitstream configuration latency of the
// device: full-device configuration takes O(100ms) on PCIe-attached
// cards; network-attached cloudFPGA nodes use faster partial
// reconfiguration (Ringlein FPL'19). Node.Program charges it, and
// deployment tiers use it to price cold deploys consistently.
func (d *Device) ReconfigSeconds() float64 {
	if d.Attachment == NetworkAttached {
		return 0.040
	}
	return 0.120
}

// Regions returns the number of usable PR region slots (at least 1: a
// device without a PR floorplan is one whole-device "region").
func (d *Device) Regions() int {
	if d.PRRegions < 2 {
		return 1
	}
	return d.PRRegions
}

// RegionCapacity returns the resource budget of one PR region: the fabric
// divided evenly across the floorplanned regions. A kernel that does not
// fit a region can still be deployed whole-device (displacing every
// resident region).
func (d *Device) RegionCapacity() hls.Resources {
	r := d.Regions()
	return hls.Resources{
		LUT: d.Capacity.LUT / r, FF: d.Capacity.FF / r,
		DSP: d.Capacity.DSP / r, BRAM: d.Capacity.BRAM / r,
	}
}

// RegionReconfigSeconds is the modelled configuration latency of a single
// PR region: reconfiguration streams configuration frames, so the latency
// scales with the region's share of the fabric.
func (d *Device) RegionReconfigSeconds() float64 {
	return d.ReconfigSeconds() / float64(d.Regions())
}

// ConfigBytes models the whole-device configuration image size: the frame
// count scales with fabric size (~16 bytes of configuration per LUT),
// which puts an Alveo xclbin in the tens of megabytes and a cloudFPGA
// partial image a quarter of that. Deployment tiers price registry
// transfers with it.
func (d *Device) ConfigBytes() int64 {
	return int64(d.Capacity.LUT) * 16
}

// RegionConfigBytes is the configuration image size of one PR region — the
// region's share of the whole-device image. Per-region deploys transfer
// and reconfigure only this slice.
func (d *Device) RegionConfigBytes() int64 {
	return d.ConfigBytes() / int64(d.Regions())
}

// AlveoU55C returns the model of an AMD Alveo U55C: HBM2 card used by the
// paper's PTDR and map-matching deployments (§VIII).
func AlveoU55C() *Device {
	return &Device{
		Name:       "alveo-u55c",
		Attachment: PCIeAttached,
		Capacity:   hls.Resources{LUT: 1303680, FF: 2607360, DSP: 9024, BRAM: 4032},
		Memory: MemorySpec{
			Kind: "hbm2", Channels: 32, BandwidthGBs: 460, LatencyNs: 120,
			SizeBytes: 16 << 30, PortWidthBits: 256,
		},
		Host:      LinkSpec{Kind: "pcie3x16", BandwidthGBs: 12, LatencyUs: 5},
		FabricMHz: 450,
		PRRegions: 4,
	}
}

// AlveoU280 returns the model of an AMD Alveo U280 (HBM2 + DDR4).
func AlveoU280() *Device {
	return &Device{
		Name:       "alveo-u280",
		Attachment: PCIeAttached,
		Capacity:   hls.Resources{LUT: 1304000, FF: 2607000, DSP: 9024, BRAM: 4032},
		Memory: MemorySpec{
			Kind: "hbm2", Channels: 32, BandwidthGBs: 460, LatencyNs: 128,
			SizeBytes: 8 << 30, PortWidthBits: 256,
		},
		Host:      LinkSpec{Kind: "pcie4x8", BandwidthGBs: 14, LatencyUs: 4},
		FabricMHz: 450,
		PRRegions: 4,
	}
}

// CloudFPGA returns the model of an IBM cloudFPGA node (Ringlein et al.,
// FPL 2019): a standalone Kintex-class FPGA attached directly to the data
// center network with a 10 Gbps TCP/UDP stack.
func CloudFPGA() *Device {
	return &Device{
		Name:       "cloudfpga-ku060",
		Attachment: NetworkAttached,
		Capacity:   hls.Resources{LUT: 331680, FF: 663360, DSP: 2760, BRAM: 2160},
		Memory: MemorySpec{
			Kind: "ddr4", Channels: 2, BandwidthGBs: 38, LatencyNs: 90,
			SizeBytes: 8 << 30, PortWidthBits: 512,
		},
		Host:      LinkSpec{Kind: "tcp10g", BandwidthGBs: 1.1, LatencyUs: 25},
		FabricMHz: 322,
		PRRegions: 2,
	}
}

// DeviceByName resolves a catalog device.
func DeviceByName(name string) (*Device, error) {
	switch name {
	case "alveo-u55c", "u55c":
		return AlveoU55C(), nil
	case "alveo-u280", "u280":
		return AlveoU280(), nil
	case "cloudfpga", "cloudfpga-ku060":
		return CloudFPGA(), nil
	default:
		return nil, fmt.Errorf("platform: unknown device %q", name)
	}
}

// CPUModel is the software baseline executor: a host core that retires a
// bounded number of floating-point operations per second. Used for the
// CPU-vs-FPGA experiments (E9, E10).
type CPUModel struct {
	Name             string
	GFLOPs           float64 // sustained scalar GFLOP/s per core
	Cores            int
	MemBWGBs         float64
	LaunchOverheadUs float64
}

// XeonModel returns a model of the paper's Intel Xeon host nodes.
func XeonModel() CPUModel {
	return CPUModel{Name: "xeon-gold", GFLOPs: 3.2, Cores: 16, MemBWGBs: 80, LaunchOverheadUs: 1}
}

// EPYCModel returns a model of the paper's AMD EPYC host nodes.
func EPYCModel() CPUModel {
	return CPUModel{Name: "epyc", GFLOPs: 3.0, Cores: 32, MemBWGBs: 120, LaunchOverheadUs: 1}
}

// TimeSeconds models running `flops` floating-point operations touching
// `bytes` of memory on n cores (n <= Cores; 0 means all).
func (c CPUModel) TimeSeconds(flops float64, bytes int64, n int) float64 {
	if n <= 0 || n > c.Cores {
		n = c.Cores
	}
	compute := flops / (c.GFLOPs * 1e9 * float64(n))
	mem := float64(bytes) / (c.MemBWGBs * 1e9)
	t := compute
	if mem > t {
		t = mem
	}
	return c.LaunchOverheadUs*1e-6 + t
}
