package platform

import (
	"math"
	"testing"
)

func monitorCluster() *Cluster {
	return NewCluster(
		NewNode("n0", XeonModel(), AlveoU55C()),
		NewNode("n1", XeonModel()),
	)
}

func TestNodeConditionState(t *testing.T) {
	n := NewNode("n0", XeonModel(), AlveoU55C())
	nominal := n.RunCPU(1e10, 1<<20, 4)
	if live := n.RunCPULiveAt(1e10, 1<<20, 4, 0); math.Abs(live-nominal) > 1e-12 {
		t.Fatalf("unloaded node: live %g != nominal %g", live, nominal)
	}
	n.SetSlowdown(3, 1.0)
	if live := n.RunCPULiveAt(1e10, 1<<20, 4, 2.0); math.Abs(live-3*nominal) > 1e-9 {
		t.Fatalf("3x slowdown: live %g, want %g", live, 3*nominal)
	}
	// Condition timelines are modelled time: work starting before the
	// fault's effective time is priced nominally.
	if live := n.RunCPULiveAt(1e10, 1<<20, 4, 0.5); math.Abs(live-nominal) > 1e-12 {
		t.Fatalf("pre-fault start priced %g, want nominal %g", live, nominal)
	}
	if nom := n.RunCPU(1e10, 1<<20, 4); math.Abs(nom-nominal) > 1e-12 {
		t.Fatal("RunCPU must stay nominal under load")
	}
	n.SetSlowdown(0.25, 2.0) // clamps to 1
	if n.Slowdown() != 1 {
		t.Fatalf("slowdown below 1 must clamp, got %g", n.Slowdown())
	}

	if !n.DeviceOnline(0) {
		t.Fatal("device must start online")
	}
	if changed, err := n.SetDeviceOffline(0, true, 1.0); err != nil || !changed {
		t.Fatalf("unplug: changed=%v err=%v", changed, err)
	}
	if changed, err := n.SetDeviceOffline(0, true, 1.2); err != nil || changed {
		t.Fatalf("redundant unplug must not change state: changed=%v err=%v", changed, err)
	}
	if n.DeviceOnline(0) {
		t.Fatal("device must be offline after unplug")
	}
	if !n.DeviceOnlineAt(0, 0.5) {
		t.Fatal("device must read attached before the unplug time")
	}
	if changed, err := n.SetDeviceOffline(0, false, 2.0); err != nil || !changed {
		t.Fatalf("replug: changed=%v err=%v", changed, err)
	}
	if !n.DeviceOnline(0) || n.DeviceOnlineAt(0, 1.5) {
		t.Fatal("replug timeline wrong")
	}
	if _, err := n.SetDeviceOffline(5, true, 0); err == nil {
		t.Fatal("unknown device index must error")
	}
	n.SetSlowdown(4, 0)
	n.ResetCondition()
	if n.Slowdown() != 1 || !n.DeviceOnline(0) {
		t.Fatal("ResetCondition must clear slowdown and reattach devices")
	}
}

// TestConditionTimelineMonotonicClamp: a transition stamped earlier than an
// already-recorded one (completion-count fault triggers see task-done times
// in report order, not modelled order) takes effect at the recorded
// frontier rather than silently rewriting the past.
func TestConditionTimelineMonotonicClamp(t *testing.T) {
	n := NewNode("n0", XeonModel(), AlveoU55C())
	if _, err := n.SetDeviceOffline(0, true, 1.0); err != nil {
		t.Fatal(err)
	}
	// Replug stamped in the modelled past of the unplug: must still win.
	if changed, err := n.SetDeviceOffline(0, false, 0.1); err != nil || !changed {
		t.Fatalf("out-of-order replug: changed=%v err=%v", changed, err)
	}
	if !n.DeviceOnline(0) {
		t.Fatal("replug must bring the device back despite the earlier stamp")
	}
	if !n.DeviceOnlineAt(0, 0.5) {
		t.Fatal("the pre-unplug past must stay attached")
	}
	// Both transitions clamp to t=1.0; the newest (the replug) wins there.
	if !n.DeviceOnlineAt(0, 1.0) {
		t.Fatal("at the clamped boundary the newest transition must win")
	}

	n.SetSlowdown(6, 2.0)
	n.SetSlowdown(1, 0.5) // restore stamped before the fault: clamps to 2.0
	if got := n.Slowdown(); got != 1 {
		t.Fatalf("restore must win: latest slowdown %g, want 1", got)
	}
	if got := n.SlowdownAt(1.0); got != 1 {
		t.Fatalf("slowdown at t=1.0 (before the fault) = %g, want 1", got)
	}
}

func TestMonitorLearnsSlowdown(t *testing.T) {
	m := NewMonitor(monitorCluster())
	if est := m.SlowdownEstimate("n1"); est != 1 {
		t.Fatalf("no evidence: estimate %g, want 1", est)
	}
	// A 4x-loaded node: the EWMA converges toward 4.
	for i := 0; i < 6; i++ {
		m.ObserveRatio("n1", 4.0, 1.0)
	}
	if est := m.SlowdownEstimate("n1"); math.Abs(est-4) > 0.1 {
		t.Fatalf("estimate %g, want ~4", est)
	}
	// Recovery: nominal-speed observations pull it back down.
	for i := 0; i < 8; i++ {
		m.ObserveRatio("n1", 1.0, 1.0)
	}
	if est := m.SlowdownEstimate("n1"); est > 1.1 {
		t.Fatalf("estimate after recovery %g, want ~1", est)
	}
	m.ObserveRatio("n1", 1.0, 0) // zero nominal is ignored
}

func TestMonitorSnapshotAndAvailability(t *testing.T) {
	c := monitorCluster()
	m := NewMonitor(c)
	m.RecordTask("n0", 2.0)
	m.RecordTask("n0", 4.0)
	if !m.DeviceAvailable("n0", 0) {
		t.Fatal("n0 device 0 must start available")
	}
	if m.DeviceAvailable("n1", 0) {
		t.Fatal("n1 has no device")
	}
	if m.DeviceAvailable("ghost", 0) {
		t.Fatal("unknown node must be unavailable")
	}
	c.FindNode("n0").SetDeviceOffline(0, true, 0)
	if m.DeviceAvailable("n0", 0) {
		t.Fatal("offline device must be unavailable")
	}
	c.FindNode("n1").Fail(1.0)

	snap := m.Snapshot()
	if len(snap) != 2 || snap[0].Node != "n0" || snap[1].Node != "n1" {
		t.Fatalf("snapshot order wrong: %+v", snap)
	}
	n0 := snap[0]
	if n0.Tasks != 2 || n0.EWMALatency != 3.0 {
		t.Fatalf("n0 stats: %+v (want 2 tasks, EWMA 3.0)", n0)
	}
	if n0.DevicesOnline != 0 || n0.DevicesTotal != 1 {
		t.Fatalf("n0 devices: %+v", n0)
	}
	if !snap[1].Failed {
		t.Fatal("n1 must report failed")
	}
}
