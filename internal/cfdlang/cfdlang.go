// Package cfdlang implements the legacy CFDlang frontend of the EVEREST SDK
// (paper §V-B; Rink et al., "CFDlang: High-level Code Generation for
// High-order Methods in Fluid Dynamics", RWDSL 2018): a small tensor
// language whose programs declare typed input/output tensors and combine
// them with tensor products and dimension-pair contractions.
//
// Supported syntax (a faithful subset):
//
//	var input  A : [4 5]
//	var input  B : [5 6]
//	var output C : [4 6]
//	C = (A * B) . [[2 3]]
//
// `*` is the tensor (outer) product, `+`/`-` are elementwise, and
// `expr . [[i j] ...]` contracts the given 1-based dimension pairs — the
// matmul above contracts dims 2 and 3 of the rank-4 product. Programs
// evaluate against bound tensors and lower to the cfdlang MLIR dialect.
package cfdlang

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"everest/internal/mlir"
	"everest/internal/mlir/dialects"
	"everest/internal/tensor"
)

// Decl declares a named tensor.
type Decl struct {
	Name   string
	Dims   []int
	Output bool
}

// Expr is a CFDlang expression.
type Expr interface{ cfdExpr() }

// Ref references a declared tensor.
type Ref struct{ Name string }

// Binary combines two expressions: "*" tensor product, "+"/"-" elementwise.
type Binary struct {
	Op   string
	L, R Expr
}

// Contract sums over 1-based dimension pairs of its operand.
type Contract struct {
	X     Expr
	Pairs [][2]int
}

func (Ref) cfdExpr()      {}
func (Binary) cfdExpr()   {}
func (Contract) cfdExpr() {}

// Stmt assigns an expression to a declared output tensor.
type Stmt struct {
	Target string
	RHS    Expr
}

// Program is a parsed CFDlang program.
type Program struct {
	Decls []Decl
	Stmts []Stmt
}

// Decl returns the declaration of name, or nil.
func (p *Program) Decl(name string) *Decl {
	for i := range p.Decls {
		if p.Decls[i].Name == name {
			return &p.Decls[i]
		}
	}
	return nil
}

// Parse parses CFDlang source.
func Parse(src string) (*Program, error) {
	p := &Program{}
	for ln, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "var ") {
			d, err := parseDecl(line)
			if err != nil {
				return nil, fmt.Errorf("cfdlang:%d: %w", ln+1, err)
			}
			if p.Decl(d.Name) != nil {
				return nil, fmt.Errorf("cfdlang:%d: %q redeclared", ln+1, d.Name)
			}
			p.Decls = append(p.Decls, d)
			continue
		}
		eq := strings.Index(line, "=")
		if eq < 0 {
			return nil, fmt.Errorf("cfdlang:%d: expected declaration or assignment", ln+1)
		}
		target := strings.TrimSpace(line[:eq])
		d := p.Decl(target)
		if d == nil {
			return nil, fmt.Errorf("cfdlang:%d: assignment to undeclared %q", ln+1, target)
		}
		if !d.Output {
			return nil, fmt.Errorf("cfdlang:%d: assignment to non-output %q", ln+1, target)
		}
		ep := &exprParser{src: []rune(line[eq+1:])}
		e, err := ep.parseExpr()
		if err != nil {
			return nil, fmt.Errorf("cfdlang:%d: %w", ln+1, err)
		}
		ep.skip()
		if ep.pos < len(ep.src) {
			return nil, fmt.Errorf("cfdlang:%d: trailing input %q", ln+1, string(ep.src[ep.pos:]))
		}
		p.Stmts = append(p.Stmts, Stmt{Target: target, RHS: e})
	}
	if len(p.Stmts) == 0 {
		return nil, fmt.Errorf("cfdlang: no statements")
	}
	return p, nil
}

func parseDecl(line string) (Decl, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(line, "var"))
	var d Decl
	switch {
	case strings.HasPrefix(rest, "input "):
		rest = strings.TrimPrefix(rest, "input ")
	case strings.HasPrefix(rest, "output "):
		rest = strings.TrimPrefix(rest, "output ")
		d.Output = true
	default:
		return d, fmt.Errorf("expected 'input' or 'output'")
	}
	colon := strings.Index(rest, ":")
	if colon < 0 {
		return d, fmt.Errorf("expected ':' in declaration")
	}
	d.Name = strings.TrimSpace(rest[:colon])
	if d.Name == "" {
		return d, fmt.Errorf("missing name")
	}
	shape := strings.TrimSpace(rest[colon+1:])
	if !strings.HasPrefix(shape, "[") || !strings.HasSuffix(shape, "]") {
		return d, fmt.Errorf("expected shape [d1 d2 ...]")
	}
	for _, f := range strings.Fields(shape[1 : len(shape)-1]) {
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			return d, fmt.Errorf("bad dimension %q", f)
		}
		d.Dims = append(d.Dims, n)
	}
	if len(d.Dims) == 0 {
		return d, fmt.Errorf("empty shape")
	}
	return d, nil
}

type exprParser struct {
	src []rune
	pos int
}

func (p *exprParser) skip() {
	for p.pos < len(p.src) && unicode.IsSpace(p.src[p.pos]) {
		p.pos++
	}
}

func (p *exprParser) peek() rune {
	p.skip()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

// parseExpr := postfix (("*"|"+"|"-") postfix)*   (left associative)
func (p *exprParser) parseExpr() (Expr, error) {
	l, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	for {
		c := p.peek()
		if c != '*' && c != '+' && c != '-' {
			return l, nil
		}
		p.pos++
		r, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: string(c), L: l, R: r}
	}
}

// parsePostfix := primary (". [[i j] ...]")*
func (p *exprParser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.peek() == '.' {
		p.pos++
		pairs, err := p.parsePairs()
		if err != nil {
			return nil, err
		}
		e = Contract{X: e, Pairs: pairs}
	}
	return e, nil
}

func (p *exprParser) parsePrimary() (Expr, error) {
	c := p.peek()
	if c == '(' {
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("expected ')'")
		}
		p.pos++
		return e, nil
	}
	if unicode.IsLetter(c) || c == '_' {
		start := p.pos
		for p.pos < len(p.src) &&
			(unicode.IsLetter(p.src[p.pos]) || unicode.IsDigit(p.src[p.pos]) || p.src[p.pos] == '_') {
			p.pos++
		}
		return Ref{Name: string(p.src[start:p.pos])}, nil
	}
	return nil, fmt.Errorf("unexpected character %q in expression", c)
}

func (p *exprParser) parsePairs() ([][2]int, error) {
	if p.peek() != '[' {
		return nil, fmt.Errorf("expected '[[' after '.'")
	}
	p.pos++
	var pairs [][2]int
	for {
		if p.peek() != '[' {
			return nil, fmt.Errorf("expected '[' starting a pair")
		}
		p.pos++
		a, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		b, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		if p.peek() != ']' {
			return nil, fmt.Errorf("expected ']' closing a pair")
		}
		p.pos++
		pairs = append(pairs, [2]int{a, b})
		if p.peek() == ']' {
			p.pos++
			return pairs, nil
		}
	}
}

func (p *exprParser) parseInt() (int, error) {
	p.skip()
	start := p.pos
	for p.pos < len(p.src) && unicode.IsDigit(p.src[p.pos]) {
		p.pos++
	}
	if start == p.pos {
		return 0, fmt.Errorf("expected integer")
	}
	return strconv.Atoi(string(p.src[start:p.pos]))
}

// Run evaluates the program on bound input tensors and returns the outputs.
func (p *Program) Run(inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	env := make(map[string]*tensor.Tensor)
	for i := range p.Decls {
		d := &p.Decls[i]
		if d.Output {
			continue
		}
		t, ok := inputs[d.Name]
		if !ok {
			return nil, fmt.Errorf("cfdlang: missing input %q", d.Name)
		}
		if !shapeEq(t.Shape(), d.Dims) {
			return nil, fmt.Errorf("cfdlang: input %q has shape %v, declared %v",
				d.Name, t.Shape(), d.Dims)
		}
		env[d.Name] = t
	}
	outs := make(map[string]*tensor.Tensor)
	for _, s := range p.Stmts {
		v, err := evalExpr(s.RHS, env)
		if err != nil {
			return nil, err
		}
		want := p.Decl(s.Target).Dims
		if !shapeEq(v.Shape(), want) {
			return nil, fmt.Errorf("cfdlang: %q computes shape %v, declared %v",
				s.Target, v.Shape(), want)
		}
		env[s.Target] = v
		outs[s.Target] = v
	}
	return outs, nil
}

func evalExpr(e Expr, env map[string]*tensor.Tensor) (*tensor.Tensor, error) {
	switch t := e.(type) {
	case Ref:
		v, ok := env[t.Name]
		if !ok {
			return nil, fmt.Errorf("cfdlang: unknown tensor %q", t.Name)
		}
		return v, nil
	case Binary:
		l, err := evalExpr(t.L, env)
		if err != nil {
			return nil, err
		}
		r, err := evalExpr(t.R, env)
		if err != nil {
			return nil, err
		}
		switch t.Op {
		case "+":
			if !shapeEq(l.Shape(), r.Shape()) {
				return nil, fmt.Errorf("cfdlang: '+' shape mismatch %v vs %v", l.Shape(), r.Shape())
			}
			return tensor.Add(l, r), nil
		case "-":
			if !shapeEq(l.Shape(), r.Shape()) {
				return nil, fmt.Errorf("cfdlang: '-' shape mismatch %v vs %v", l.Shape(), r.Shape())
			}
			return tensor.Sub(l, r), nil
		default: // tensor product
			return outerProduct(l, r), nil
		}
	case Contract:
		x, err := evalExpr(t.X, env)
		if err != nil {
			return nil, err
		}
		return contract(x, t.Pairs)
	}
	return nil, fmt.Errorf("cfdlang: unhandled expression %T", e)
}

// outerProduct returns the tensor product: dims concatenate.
func outerProduct(a, b *tensor.Tensor) *tensor.Tensor {
	shape := append(append([]int(nil), a.Shape()...), b.Shape()...)
	out := tensor.New(shape...)
	ad, bd, od := a.Data(), b.Data(), out.Data()
	for i := range ad {
		base := i * len(bd)
		for j := range bd {
			od[base+j] = ad[i] * bd[j]
		}
	}
	return out
}

// contract sums over the given 1-based dimension pairs via the einsum
// engine: paired dimensions share a letter and are dropped from the output.
func contract(x *tensor.Tensor, pairs [][2]int) (*tensor.Tensor, error) {
	rank := x.Rank()
	if rank > 26 {
		return nil, fmt.Errorf("cfdlang: rank %d too large", rank)
	}
	letters := make([]byte, rank)
	for i := range letters {
		letters[i] = byte('a' + i)
	}
	contracted := make([]bool, rank)
	for _, pr := range pairs {
		i, j := pr[0]-1, pr[1]-1
		if i < 0 || j < 0 || i >= rank || j >= rank || i == j {
			return nil, fmt.Errorf("cfdlang: bad contraction pair [%d %d] for rank %d", pr[0], pr[1], rank)
		}
		if contracted[i] || contracted[j] {
			return nil, fmt.Errorf("cfdlang: dimension contracted twice in %v", pairs)
		}
		if x.Shape()[i] != x.Shape()[j] {
			return nil, fmt.Errorf("cfdlang: contraction pair [%d %d] has extents %d vs %d",
				pr[0], pr[1], x.Shape()[i], x.Shape()[j])
		}
		letters[j] = letters[i]
		contracted[i], contracted[j] = true, true
	}
	var in, out strings.Builder
	for i := 0; i < rank; i++ {
		in.WriteByte(letters[i])
		if !contracted[i] {
			out.WriteByte(letters[i])
		}
	}
	return tensor.Einsum(in.String()+"->"+out.String(), x)
}

func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// EmitModule lowers the program to the cfdlang MLIR dialect (Fig. 5's
// legacy frontend path); the module verifies under the registered dialects.
func (p *Program) EmitModule(name string) (*mlir.Module, error) {
	ctx := mlir.NewContext()
	dialects.RegisterAll(ctx)
	m := mlir.NewModule(ctx, name)
	b := mlir.NewBuilder(ctx, m.Body())
	prog := b.CreateWithRegions("cfdlang.prog", nil, nil, map[string]mlir.Attribute{
		"sym_name": mlir.StringAttr(name),
	}, 1)
	pb := mlir.NewBuilder(ctx, prog.Regions[0].Entry())

	vals := make(map[string]*mlir.Value)
	for _, d := range p.Decls {
		if d.Output {
			continue
		}
		op := pb.Create("cfdlang.decl", nil,
			[]mlir.Type{mlir.TensorOf(mlir.F64(), d.Dims...)},
			map[string]mlir.Attribute{"name": mlir.StringAttr(d.Name)})
		op.Result(0).SetName(d.Name)
		vals[d.Name] = op.Result(0)
	}
	var emit func(e Expr) (*mlir.Value, error)
	emit = func(e Expr) (*mlir.Value, error) {
		switch t := e.(type) {
		case Ref:
			v, ok := vals[t.Name]
			if !ok {
				return nil, fmt.Errorf("cfdlang: unknown tensor %q in lowering", t.Name)
			}
			return v, nil
		case Binary:
			l, err := emit(t.L)
			if err != nil {
				return nil, err
			}
			r, err := emit(t.R)
			if err != nil {
				return nil, err
			}
			opName := "cfdlang.mul"
			if t.Op == "+" || t.Op == "-" {
				opName = "cfdlang.add"
			}
			op := pb.Create(opName, []*mlir.Value{l, r}, []mlir.Type{mlir.TensorOf(mlir.F64())}, nil)
			return op.Result(0), nil
		case Contract:
			x, err := emit(t.X)
			if err != nil {
				return nil, err
			}
			var spec []string
			for _, pr := range t.Pairs {
				spec = append(spec, fmt.Sprintf("%d %d", pr[0], pr[1]))
			}
			op := pb.Create("cfdlang.contract", []*mlir.Value{x},
				[]mlir.Type{mlir.TensorOf(mlir.F64())},
				map[string]mlir.Attribute{"pairs": mlir.StringAttr(strings.Join(spec, ", "))})
			return op.Result(0), nil
		}
		return nil, fmt.Errorf("cfdlang: unhandled expression in lowering")
	}
	for _, s := range p.Stmts {
		v, err := emit(s.RHS)
		if err != nil {
			return nil, err
		}
		v.SetName(s.Target)
		vals[s.Target] = v
		pb.Create("cfdlang.out", []*mlir.Value{v}, nil,
			map[string]mlir.Attribute{"name": mlir.StringAttr(s.Target)})
	}
	if err := m.Verify(); err != nil {
		return nil, err
	}
	return m, nil
}
