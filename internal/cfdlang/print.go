package cfdlang

import (
	"fmt"
	"strings"
)

// Source renders the program back to parseable CFDlang source in canonical
// form: declarations first, one statement per line, binary expressions
// fully parenthesized. Parse(p.Source()) yields a program that prints
// identically — the round-trip property the fuzz tests assert.
func (p *Program) Source() string {
	var b strings.Builder
	for _, d := range p.Decls {
		kind := "input"
		if d.Output {
			kind = "output"
		}
		dims := make([]string, len(d.Dims))
		for i, n := range d.Dims {
			dims[i] = fmt.Sprintf("%d", n)
		}
		fmt.Fprintf(&b, "var %s %s : [%s]\n", kind, d.Name, strings.Join(dims, " "))
	}
	for _, s := range p.Stmts {
		fmt.Fprintf(&b, "%s = %s\n", s.Target, ExprString(s.RHS))
	}
	return b.String()
}

// ExprString renders one expression in parseable form.
func ExprString(e Expr) string {
	switch t := e.(type) {
	case Ref:
		return t.Name
	case Binary:
		return fmt.Sprintf("(%s %s %s)", ExprString(t.L), t.Op, ExprString(t.R))
	case Contract:
		pairs := make([]string, len(t.Pairs))
		for i, pr := range t.Pairs {
			pairs[i] = fmt.Sprintf("[%d %d]", pr[0], pr[1])
		}
		return fmt.Sprintf("%s . [%s]", ExprString(t.X), strings.Join(pairs, " "))
	}
	return "?"
}
