package cfdlang

import (
	"testing"
)

// Fuzz targets for the legacy CFDlang frontend: no panics on arbitrary
// input, and parse -> print -> parse stability for everything accepted.
// Seed corpora are committed under testdata/fuzz/.

func FuzzParseRoundTrip(f *testing.F) {
	for _, s := range []string{
		"var input A : [4 5]\nvar input B : [5 6]\nvar output C : [4 6]\nC = (A * B) . [[2 3]]\n",
		"var input A : [3 3]\nvar output t : [1]\nt = A . [[1 2]]\n",
		"var input A : [2 2]\nvar input B : [2 2]\nvar output C : [2 2]\nC = A + B - A\n",
		"var input A : [2 3 2 3]\nvar output C : [2 3]\nC = A . [[1 3]]\n",
		"var input A : [2]\nvar output C : [2 2 2]\nC = A * A * A\n",
		"# comment\nvar input A : [1]\nvar output B : [1]\nB = A\n",
		"var input A : [2]\nC = A\n",
		"var output C : [2]\nC = ((C))\n",
		"var input A : [4 4 4]\nvar output C : [4]\nC = A . [[1 2] [2 3]]\n",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		printed := p.Source()
		p2, err := Parse(printed)
		if err != nil {
			t.Fatalf("canonical print does not reparse: %v\n--- printed ---\n%s", err, printed)
		}
		if again := p2.Source(); again != printed {
			t.Fatalf("print -> parse -> print unstable:\n--- first ---\n%s\n--- second ---\n%s", printed, again)
		}
	})
}
