package cfdlang

import (
	"math/rand"
	"strings"
	"testing"

	"everest/internal/tensor"
)

const matmulSrc = `
# matrix multiply via tensor product + contraction
var input  A : [4 5]
var input  B : [5 6]
var output C : [4 6]
C = (A * B) . [[2 3]]
`

func TestParseMatmul(t *testing.T) {
	p, err := Parse(matmulSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Decls) != 3 || len(p.Stmts) != 1 {
		t.Fatalf("decls=%d stmts=%d", len(p.Decls), len(p.Stmts))
	}
	if !p.Decl("C").Output || p.Decl("A").Output {
		t.Error("output flags wrong")
	}
	c, ok := p.Stmts[0].RHS.(Contract)
	if !ok {
		t.Fatalf("RHS is %T, want Contract", p.Stmts[0].RHS)
	}
	if len(c.Pairs) != 1 || c.Pairs[0] != [2]int{2, 3} {
		t.Errorf("pairs = %v", c.Pairs)
	}
}

func TestRunMatmulMatchesEinsum(t *testing.T) {
	p, err := Parse(matmulSrc)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	a := tensor.Random(rng, -1, 1, 4, 5)
	b := tensor.Random(rng, -1, 1, 5, 6)
	out, err := p.Run(map[string]*tensor.Tensor{"A": a, "B": b})
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.MatMul(a, b)
	if tensor.MaxAbsDiff(out["C"], want) > 1e-12 {
		t.Error("CFDlang matmul disagrees with einsum matmul")
	}
}

func TestTraceAndElementwise(t *testing.T) {
	src := `
var input  M : [3 3]
var input  N : [3 3]
var output S : [3 3]
var output T : [3 3]
S = M + N - M
T = M - M + N
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	m := tensor.Random(rng, -1, 1, 3, 3)
	n := tensor.Random(rng, -1, 1, 3, 3)
	out, err := p.Run(map[string]*tensor.Tensor{"M": m, "N": n})
	if err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(out["S"], n) > 1e-12 || tensor.MaxAbsDiff(out["T"], n) > 1e-12 {
		t.Error("elementwise chain wrong")
	}
}

func TestHighOrderContraction(t *testing.T) {
	// Interpolation-like kernel from the CFDlang paper: u = (A * A * v)
	// contracted on both A dimensions — (A ⊗ A ⊗ v) with pairs (2,5),(4,6)
	// computes A v Aᵀ for matching shapes.
	src := `
var input  A : [3 3]
var input  v : [3 3]
var output u : [3 3]
u = (A * A * v) . [[2 5] [4 6]]
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	a := tensor.Random(rng, -1, 1, 3, 3)
	v := tensor.Random(rng, -1, 1, 3, 3)
	out, err := p.Run(map[string]*tensor.Tensor{"A": a, "v": v})
	if err != nil {
		t.Fatal(err)
	}
	// Reference: u[i,k] = sum_{j,l} A[i,j] A[k,l] v[j,l].
	want := tensor.MustEinsum("ij,kl,jl->ik", a, a, v)
	if tensor.MaxAbsDiff(out["u"], want) > 1e-10 {
		t.Error("high-order contraction wrong")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"var inpt A : [3]",
		"var input A : [0]",
		"var input A : 3",
		"C = A",                    // undeclared target
		"var input A : [3]\nA = A", // assignment to input
		"var input A : [3]\nvar output B : [3]\nB = A . [2 3]",            // bad pair syntax
		"var input A : [3]\nvar input A : [3]\nvar output B : [3]\nB = A", // redeclared
		"var input A : [3]\nvar output B : [3]\nB = A)",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) must fail", src)
		}
	}
}

func TestRunErrors(t *testing.T) {
	p, err := Parse(matmulSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(nil); err == nil {
		t.Error("missing inputs must fail")
	}
	bad := map[string]*tensor.Tensor{
		"A": tensor.New(4, 4), "B": tensor.New(5, 6), // A shape mismatch
	}
	if _, err := p.Run(bad); err == nil {
		t.Error("shape mismatch must fail")
	}
	// Contraction of unequal extents.
	src := `
var input A : [3 4]
var output B : [1]
B = A . [[1 2]]
`
	p2, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Run(map[string]*tensor.Tensor{"A": tensor.New(3, 4)}); err == nil {
		t.Error("contraction of unequal extents must fail")
	}
}

func TestEmitModule(t *testing.T) {
	p, err := Parse(matmulSrc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.EmitModule("matmul")
	if err != nil {
		t.Fatal(err)
	}
	if m.CountOps("cfdlang.mul") != 1 || m.CountOps("cfdlang.contract") != 1 {
		t.Error("op counts wrong")
	}
	text := m.String()
	if !strings.Contains(text, "cfdlang.prog") || !strings.Contains(text, `pairs = "2 3"`) {
		t.Errorf("printed module missing pieces:\n%s", text)
	}
}

func TestOuterProductShape(t *testing.T) {
	a := tensor.FromData([]float64{1, 2}, 2)
	b := tensor.FromData([]float64{3, 4, 5}, 3)
	o := outerProduct(a, b)
	if o.Rank() != 2 || o.Shape()[0] != 2 || o.Shape()[1] != 3 {
		t.Fatalf("outer shape %v", o.Shape())
	}
	if o.At(1, 2) != 10 {
		t.Errorf("outer value wrong: %v", o.Data())
	}
}
