// Package autotuner implements the EVEREST dynamic autotuner (paper §VI-C):
// mARGOt (Gadioli et al., IEEE TC 2019), an application-level library that
// monitors execution and selects the best configuration for the current
// execution environment.
//
// Concepts follow the paper exactly:
//
//   - Knobs are variables the library controls (application parameters or
//     code variants, e.g. "impl" ∈ {cpu1, cpu16, fpga});
//   - Metrics are observed properties (execution time, energy, error);
//   - Operating points pair a knob configuration with expected metrics;
//   - Goals constrain metrics ("exec_time <= 100ms"), a Rank orders the
//     feasible points ("minimize energy");
//   - Monitors feed runtime observations back, so the expected metrics
//     track the actual environment (resource availability, data features):
//     when the FPGA is unplugged and the fpga variant degrades, selection
//     adapts (experiment E7).
package autotuner

import (
	"fmt"
	"sort"
	"strings"
)

// Metric names an observable property.
type Metric string

// Common metrics.
const (
	MetricTimeMs   Metric = "exec_time_ms"
	MetricEnergyJ  Metric = "energy_j"
	MetricErrorPct Metric = "error_pct"
)

// Config is a knob assignment, e.g. {"impl": "fpga", "samples": "10000"}.
type Config map[string]string

// Key returns a canonical string for map indexing.
func (c Config) Key() string {
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + c[k]
	}
	return strings.Join(parts, ",")
}

// Knob is one controllable variable with its admissible values.
type Knob struct {
	Name   string
	Values []string
}

// OperatingPoint pairs a configuration with its expected metric values.
type OperatingPoint struct {
	Config  Config
	Metrics map[Metric]float64
}

// GoalOp is a constraint direction.
type GoalOp int

// Goal operators.
const (
	LE GoalOp = iota // metric <= value
	GE               // metric >= value
)

// Goal is one constraint on a metric.
type Goal struct {
	Metric Metric
	Op     GoalOp
	Value  float64
}

// Satisfied reports whether v meets the goal.
func (g Goal) Satisfied(v float64) bool {
	if g.Op == LE {
		return v <= g.Value
	}
	return v >= g.Value
}

// Rank is the optimization objective over feasible points.
type Rank struct {
	Metric   Metric
	Minimize bool
}

// Autotuner is one application's mARGOt instance.
type Autotuner struct {
	knobs  []Knob
	points map[string]*OperatingPoint
	order  []string // deterministic iteration order
	goals  []Goal
	rank   Rank
	// alpha is the EWMA factor for online metric updates.
	alpha float64
	// observations counts per-config feedback events.
	observations map[string]int
}

// New creates an autotuner with the design-time knowledge (knobs and
// operating points), goals, and rank.
func New(knobs []Knob, points []OperatingPoint, goals []Goal, rank Rank) (*Autotuner, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("autotuner: need at least one operating point")
	}
	a := &Autotuner{
		knobs:        knobs,
		points:       make(map[string]*OperatingPoint, len(points)),
		goals:        goals,
		rank:         rank,
		alpha:        0.5,
		observations: make(map[string]int),
	}
	for i := range points {
		p := points[i]
		if err := a.validateConfig(p.Config); err != nil {
			return nil, err
		}
		key := p.Config.Key()
		if _, dup := a.points[key]; dup {
			return nil, fmt.Errorf("autotuner: duplicate operating point %q", key)
		}
		cp := OperatingPoint{Config: p.Config, Metrics: make(map[Metric]float64, len(p.Metrics))}
		for m, v := range p.Metrics {
			cp.Metrics[m] = v
		}
		a.points[key] = &cp
		a.order = append(a.order, key)
	}
	return a, nil
}

func (a *Autotuner) validateConfig(c Config) error {
	for _, k := range a.knobs {
		v, ok := c[k.Name]
		if !ok {
			return fmt.Errorf("autotuner: operating point missing knob %q", k.Name)
		}
		valid := false
		for _, allowed := range k.Values {
			if allowed == v {
				valid = true
				break
			}
		}
		if !valid {
			return fmt.Errorf("autotuner: knob %q has no value %q", k.Name, v)
		}
	}
	return nil
}

// Select returns the best operating point: among the points satisfying all
// goals, the one optimizing the rank metric. If no point is feasible, it
// returns the point closest to feasibility (smallest total relative goal
// violation), which is mARGOt's graceful-degradation behaviour.
func (a *Autotuner) Select() OperatingPoint {
	var bestFeasible *OperatingPoint
	var bestInfeasible *OperatingPoint
	bestViolation := 0.0

	for _, key := range a.order {
		p := a.points[key]
		violation := 0.0
		for _, g := range a.goals {
			v, ok := p.Metrics[g.Metric]
			if !ok {
				violation += 1 // unknown metric counts as violated
				continue
			}
			if !g.Satisfied(v) {
				denom := g.Value
				if denom == 0 {
					denom = 1
				}
				violation += abs(v-g.Value) / abs(denom)
			}
		}
		if violation == 0 {
			if bestFeasible == nil || a.better(p, bestFeasible) {
				bestFeasible = p
			}
		} else if bestInfeasible == nil || violation < bestViolation {
			bestInfeasible = p
			bestViolation = violation
		}
	}
	if bestFeasible != nil {
		return snapshot(bestFeasible)
	}
	return snapshot(bestInfeasible)
}

func (a *Autotuner) better(p, q *OperatingPoint) bool {
	pv, pok := p.Metrics[a.rank.Metric]
	qv, qok := q.Metrics[a.rank.Metric]
	if !pok || !qok {
		return pok && !qok
	}
	if a.rank.Minimize {
		return pv < qv
	}
	return pv > qv
}

func snapshot(p *OperatingPoint) OperatingPoint {
	out := OperatingPoint{Config: p.Config, Metrics: make(map[Metric]float64, len(p.Metrics))}
	for m, v := range p.Metrics {
		out.Metrics[m] = v
	}
	return out
}

// Observe feeds a runtime measurement for a configuration back into the
// knowledge base (the monitor loop). Expected metrics track observations by
// exponential moving average.
func (a *Autotuner) Observe(c Config, m Metric, value float64) error {
	key := c.Key()
	p, ok := a.points[key]
	if !ok {
		return fmt.Errorf("autotuner: observation for unknown operating point %q", key)
	}
	old, had := p.Metrics[m]
	if !had {
		p.Metrics[m] = value
	} else {
		p.Metrics[m] = (1-a.alpha)*old + a.alpha*value
	}
	a.observations[key]++
	return nil
}

// Scale multiplies a configuration's expected metric by factor — the
// degradation hook the resource manager pulls when the environment changes
// abruptly (e.g. an SR-IOV unplug makes the fpga variant's expected time
// jump without waiting for a slow probe to confirm it).
func (a *Autotuner) Scale(c Config, m Metric, factor float64) error {
	if factor <= 0 {
		return fmt.Errorf("autotuner: scale factor must be positive, got %g", factor)
	}
	key := c.Key()
	p, ok := a.points[key]
	if !ok {
		return fmt.Errorf("autotuner: scale of unknown operating point %q", key)
	}
	if v, had := p.Metrics[m]; had {
		p.Metrics[m] = v * factor
	}
	return nil
}

// Observations returns how many observations a configuration has received.
func (a *Autotuner) Observations(c Config) int { return a.observations[c.Key()] }

// Points returns snapshots of all operating points in insertion order.
func (a *Autotuner) Points() []OperatingPoint {
	out := make([]OperatingPoint, 0, len(a.order))
	for _, key := range a.order {
		out = append(out, snapshot(a.points[key]))
	}
	return out
}

// SetGoals replaces the goal set (requirements can change at runtime).
func (a *Autotuner) SetGoals(goals []Goal) { a.goals = goals }

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
