package autotuner

import (
	"testing"
)

func implKnob() []Knob {
	return []Knob{{Name: "impl", Values: []string{"cpu1", "cpu16", "fpga"}}}
}

func defaultPoints() []OperatingPoint {
	return []OperatingPoint{
		{Config: Config{"impl": "cpu1"}, Metrics: map[Metric]float64{MetricTimeMs: 800, MetricEnergyJ: 40}},
		{Config: Config{"impl": "cpu16"}, Metrics: map[Metric]float64{MetricTimeMs: 90, MetricEnergyJ: 120}},
		{Config: Config{"impl": "fpga"}, Metrics: map[Metric]float64{MetricTimeMs: 30, MetricEnergyJ: 25}},
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(implKnob(), nil, nil, Rank{}); err == nil {
		t.Error("no points must fail")
	}
	bad := []OperatingPoint{{Config: Config{"impl": "gpu"}, Metrics: nil}}
	if _, err := New(implKnob(), bad, nil, Rank{}); err == nil {
		t.Error("invalid knob value must fail")
	}
	missing := []OperatingPoint{{Config: Config{}, Metrics: nil}}
	if _, err := New(implKnob(), missing, nil, Rank{}); err == nil {
		t.Error("missing knob must fail")
	}
	dup := []OperatingPoint{
		{Config: Config{"impl": "cpu1"}, Metrics: nil},
		{Config: Config{"impl": "cpu1"}, Metrics: nil},
	}
	if _, err := New(implKnob(), dup, nil, Rank{}); err == nil {
		t.Error("duplicate point must fail")
	}
}

func TestSelectMinimizesRank(t *testing.T) {
	a, err := New(implKnob(), defaultPoints(), nil, Rank{Metric: MetricTimeMs, Minimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Select().Config["impl"]; got != "fpga" {
		t.Errorf("Select = %s, want fpga (fastest)", got)
	}
}

func TestSelectHonorsGoals(t *testing.T) {
	// Minimize energy subject to exec_time <= 100ms: cpu1 is cheapest in
	// energy but too slow; fpga wins (fast AND frugal). Tighten to force
	// cpu16 exclusion too.
	goals := []Goal{{Metric: MetricTimeMs, Op: LE, Value: 100}}
	a, err := New(implKnob(), defaultPoints(), goals, Rank{Metric: MetricEnergyJ, Minimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Select().Config["impl"]; got != "fpga" {
		t.Errorf("Select = %s, want fpga", got)
	}
	// Unreachable goal: closest point wins (graceful degradation).
	a.SetGoals([]Goal{{Metric: MetricTimeMs, Op: LE, Value: 1}})
	if got := a.Select().Config["impl"]; got != "fpga" {
		t.Errorf("closest-to-feasible = %s, want fpga (30ms nearest to 1ms)", got)
	}
}

func TestObserveAdaptsSelection(t *testing.T) {
	// E7 in miniature: the FPGA is unplugged, its observed time degrades,
	// and selection falls back to cpu16.
	goals := []Goal{{Metric: MetricTimeMs, Op: LE, Value: 100}}
	a, err := New(implKnob(), defaultPoints(), goals, Rank{Metric: MetricEnergyJ, Minimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Select().Config["impl"] != "fpga" {
		t.Fatal("precondition: fpga selected")
	}
	// FPGA now times out (software fallback path): feed slow observations.
	for i := 0; i < 8; i++ {
		if err := a.Observe(Config{"impl": "fpga"}, MetricTimeMs, 2000); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Select().Config["impl"]; got != "cpu16" {
		t.Errorf("after degradation Select = %s, want cpu16", got)
	}
	if a.Observations(Config{"impl": "fpga"}) != 8 {
		t.Error("observation count wrong")
	}
	// FPGA recovers.
	for i := 0; i < 12; i++ {
		if err := a.Observe(Config{"impl": "fpga"}, MetricTimeMs, 30); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Select().Config["impl"]; got != "fpga" {
		t.Errorf("after recovery Select = %s, want fpga", got)
	}
}

func TestObserveUnknownConfig(t *testing.T) {
	a, _ := New(implKnob(), defaultPoints(), nil, Rank{Metric: MetricTimeMs, Minimize: true})
	if err := a.Observe(Config{"impl": "gpu"}, MetricTimeMs, 1); err == nil {
		t.Error("unknown config must fail")
	}
}

func TestEWMAUpdate(t *testing.T) {
	a, _ := New(implKnob(), defaultPoints(), nil, Rank{Metric: MetricTimeMs, Minimize: true})
	cfg := Config{"impl": "cpu1"}
	if err := a.Observe(cfg, MetricTimeMs, 1000); err != nil {
		t.Fatal(err)
	}
	// EWMA(0.5): 0.5*800 + 0.5*1000 = 900.
	for _, p := range a.Points() {
		if p.Config.Key() == cfg.Key() {
			if p.Metrics[MetricTimeMs] != 900 {
				t.Errorf("EWMA = %g, want 900", p.Metrics[MetricTimeMs])
			}
		}
	}
	// New metric appears directly.
	if err := a.Observe(cfg, MetricErrorPct, 2.5); err != nil {
		t.Fatal(err)
	}
	for _, p := range a.Points() {
		if p.Config.Key() == cfg.Key() && p.Metrics[MetricErrorPct] != 2.5 {
			t.Error("fresh metric must be adopted as-is")
		}
	}
}

func TestSelectDeterministicOnTies(t *testing.T) {
	pts := []OperatingPoint{
		{Config: Config{"impl": "cpu1"}, Metrics: map[Metric]float64{MetricTimeMs: 50}},
		{Config: Config{"impl": "cpu16"}, Metrics: map[Metric]float64{MetricTimeMs: 50}},
	}
	a, _ := New(implKnob(), pts, nil, Rank{Metric: MetricTimeMs, Minimize: true})
	first := a.Select().Config["impl"]
	for i := 0; i < 10; i++ {
		if a.Select().Config["impl"] != first {
			t.Fatal("tie-breaking must be deterministic")
		}
	}
	if first != "cpu1" {
		t.Errorf("tie should keep insertion order winner, got %s", first)
	}
}

func TestGoalSatisfied(t *testing.T) {
	if !(Goal{Metric: MetricTimeMs, Op: LE, Value: 10}).Satisfied(10) {
		t.Error("LE must include equality")
	}
	if (Goal{Metric: MetricTimeMs, Op: GE, Value: 10}).Satisfied(9) {
		t.Error("GE violated")
	}
}

func TestConfigKeyCanonical(t *testing.T) {
	a := Config{"b": "2", "a": "1"}
	b := Config{"a": "1", "b": "2"}
	if a.Key() != b.Key() {
		t.Error("Config.Key must be order-independent")
	}
}
