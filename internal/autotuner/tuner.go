package autotuner

import (
	"fmt"
	"sync"
)

// KnobImpl is the knob name a variant Tuner controls: the implementation
// choice of one workload ("impl" ∈ {cpu1, cpu16, fpga} in the paper's E7
// scenario).
const KnobImpl = "impl"

// Variant seeds one implementation choice with its design-time expected
// latency.
type Variant struct {
	Name       string
	ExpectedMs float64
	// BoundMs, when positive, is the variant's proven worst-case latency
	// (schedule-derived WCET priced through the device model; summed across
	// DAG stages by variants.MergeVariants). 0 means no proven bound. The
	// tuner tracks ExpectedMs from observations but never moves BoundMs —
	// bounds are compile-time facts, not estimates.
	BoundMs float64
}

// Tuner is the concurrency-safe mARGOt instance the adaptive engine embeds
// per workload: one "impl" knob whose operating points carry expected
// execution latency, ranked minimize-time. The engine consults Best/
// Expected on every dispatch, feeds Observe from completions, and reacts to
// hot-plug events through Degrade/SetAvailable — so variant selection
// tracks the live environment instead of the static plan.
//
// The knowledge base is held in parallel slices indexed by variant order
// rather than a general Autotuner: the engine calls Best/Expected on every
// placement of every task, and the general operating-point snapshot (one
// map allocation per point per call) dominated dispatch profiles. Semantics
// are identical to an Autotuner with a single KnobImpl knob and an EWMA
// alpha of 0.5.
type Tuner struct {
	mu       sync.Mutex
	order    []string
	seeds    []float64 // design-time expected ms, by variant index
	expected []float64 // live expected ms (EWMA), by variant index
	obs      []int     // observation counts, by variant index
	disabled []bool    // variants currently unreachable (no device)
}

// index resolves a variant name with a linear scan: tuners hold a handful
// of variants (cpu1/cpu16/fpga), where scanning a short string slice beats
// a map on both lookup time and construction allocations — NewTuner runs
// once per submitted workflow on the engine's hot path.
func (t *Tuner) index(name string) (int, bool) {
	for i, n := range t.order {
		if n == name {
			return i, true
		}
	}
	return -1, false
}

// NewTuner builds a variant tuner from design-time knowledge.
func NewTuner(variants []Variant) (*Tuner, error) {
	if len(variants) == 0 {
		return nil, fmt.Errorf("autotuner: tuner needs at least one variant")
	}
	n := len(variants)
	floats := make([]float64, 2*n) // seeds and expected share one backing array
	t := &Tuner{
		order:    make([]string, 0, n),
		seeds:    floats[:0:n],
		expected: floats[n : n : 2*n],
		obs:      make([]int, n),
		disabled: make([]bool, n),
	}
	for _, v := range variants {
		if v.Name == "" || v.ExpectedMs <= 0 {
			return nil, fmt.Errorf("autotuner: variant needs a name and positive expected latency")
		}
		if v.BoundMs < 0 || (v.BoundMs > 0 && v.BoundMs < v.ExpectedMs) {
			return nil, fmt.Errorf("autotuner: variant %q bound %.4gms must be absent (0) or >= expected %.4gms",
				v.Name, v.BoundMs, v.ExpectedMs)
		}
		if _, dup := t.index(v.Name); dup {
			return nil, fmt.Errorf("autotuner: duplicate variant %q", v.Name)
		}
		t.order = append(t.order, v.Name)
		t.seeds = append(t.seeds, v.ExpectedMs)
		t.expected = append(t.expected, v.ExpectedMs)
	}
	return t, nil
}

// Variants returns the variant names in seed order.
func (t *Tuner) Variants() []string {
	return append([]string(nil), t.order...)
}

// Best returns the available variant with the lowest expected latency,
// first-seeded winning ties. When every variant is disabled it falls back
// to the overall best — the graceful degradation mARGOt applies when no
// point is feasible.
func (t *Tuner) Best() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	best, bestAny := -1, -1
	for i := range t.order {
		v := t.expected[i]
		if bestAny < 0 || v < t.expected[bestAny] {
			bestAny = i
		}
		if t.disabled[i] {
			continue
		}
		if best < 0 || v < t.expected[best] {
			best = i
		}
	}
	if best < 0 {
		best = bestAny
	}
	return t.order[best]
}

// Expected returns the current expected latency of a variant in ms (0 for
// unknown variants).
func (t *Tuner) Expected(name string) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i, ok := t.index(name); ok {
		return t.expected[i]
	}
	return 0
}

// Drift returns expected/seed for a variant: the learned multiplicative
// deviation of the live environment from the design-time model (1 = on
// model). Schedulers scale their per-task nominal estimates by it.
func (t *Tuner) Drift(name string) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	i, ok := t.index(name)
	if !ok || t.seeds[i] <= 0 || t.expected[i] <= 0 {
		return 1
	}
	return t.expected[i] / t.seeds[i]
}

// Available reports whether a variant is currently selectable.
func (t *Tuner) Available(name string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	i, ok := t.index(name)
	return ok && !t.disabled[i]
}

// SetAvailable masks or unmasks a variant (e.g. fpga when the last VF of
// the last programmed device is unplugged cluster-wide).
func (t *Tuner) SetAvailable(name string, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i, known := t.index(name); known {
		t.disabled[i] = !ok
	}
}

// Observe feeds one measured latency (ms) for a variant back into the
// knowledge base with the same EWMA the general autotuner applies.
func (t *Tuner) Observe(name string, ms float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i, ok := t.index(name); ok {
		t.expected[i] = 0.5*t.expected[i] + 0.5*ms
		t.obs[i]++
	}
}

// Observations returns how many measurements a variant has received.
func (t *Tuner) Observations(name string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i, ok := t.index(name); ok {
		return t.obs[i]
	}
	return 0
}

// Degrade multiplies a variant's expected latency by factor — the immediate
// reaction to an environment event, ahead of the next observation.
func (t *Tuner) Degrade(name string, factor float64) {
	if factor <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if i, ok := t.index(name); ok {
		t.expected[i] *= factor
	}
}

// ResetExpected restores a variant's expected latency to its design-time
// seed. A degraded-then-deselected variant receives no observations, so a
// Degrade could otherwise never decay; the resource manager calls this
// when the environment event that caused the degradation is undone (e.g.
// the accelerator is replugged).
func (t *Tuner) ResetExpected(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i, ok := t.index(name); ok && t.expected[i] > 0 {
		t.expected[i] = t.seeds[i]
	}
}
