package autotuner

import (
	"fmt"
	"sync"
)

// KnobImpl is the knob name a variant Tuner controls: the implementation
// choice of one workload ("impl" ∈ {cpu1, cpu16, fpga} in the paper's E7
// scenario).
const KnobImpl = "impl"

// Variant seeds one implementation choice with its design-time expected
// latency.
type Variant struct {
	Name       string
	ExpectedMs float64
}

// Tuner is the concurrency-safe mARGOt instance the adaptive engine embeds
// per workload: one "impl" knob whose operating points carry expected
// execution latency, ranked minimize-time. The engine consults Best/
// Expected on every dispatch, feeds Observe from completions, and reacts to
// hot-plug events through Degrade/SetAvailable — so variant selection
// tracks the live environment instead of the static plan.
type Tuner struct {
	mu       sync.Mutex
	at       *Autotuner
	seeds    map[string]float64 // variant -> design-time expected ms
	disabled map[string]bool    // variants currently unreachable (no device)
	order    []string
}

// NewTuner builds a variant tuner from design-time knowledge.
func NewTuner(variants []Variant) (*Tuner, error) {
	if len(variants) == 0 {
		return nil, fmt.Errorf("autotuner: tuner needs at least one variant")
	}
	values := make([]string, 0, len(variants))
	points := make([]OperatingPoint, 0, len(variants))
	seeds := make(map[string]float64, len(variants))
	for _, v := range variants {
		if v.Name == "" || v.ExpectedMs <= 0 {
			return nil, fmt.Errorf("autotuner: variant needs a name and positive expected latency")
		}
		if _, dup := seeds[v.Name]; dup {
			return nil, fmt.Errorf("autotuner: duplicate variant %q", v.Name)
		}
		values = append(values, v.Name)
		seeds[v.Name] = v.ExpectedMs
		points = append(points, OperatingPoint{
			Config:  Config{KnobImpl: v.Name},
			Metrics: map[Metric]float64{MetricTimeMs: v.ExpectedMs},
		})
	}
	at, err := New(
		[]Knob{{Name: KnobImpl, Values: values}},
		points, nil,
		Rank{Metric: MetricTimeMs, Minimize: true},
	)
	if err != nil {
		return nil, err
	}
	return &Tuner{at: at, seeds: seeds, disabled: make(map[string]bool), order: values}, nil
}

// Variants returns the variant names in seed order.
func (t *Tuner) Variants() []string {
	return append([]string(nil), t.order...)
}

// Best returns the available variant with the lowest expected latency.
// When every variant is disabled it falls back to the overall best — the
// graceful degradation mARGOt applies when no point is feasible.
func (t *Tuner) Best() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	best, bestAny := "", ""
	bestV, bestAnyV := 0.0, 0.0
	for _, p := range t.at.Points() {
		name := p.Config[KnobImpl]
		v := p.Metrics[MetricTimeMs]
		if bestAny == "" || v < bestAnyV {
			bestAny, bestAnyV = name, v
		}
		if t.disabled[name] {
			continue
		}
		if best == "" || v < bestV {
			best, bestV = name, v
		}
	}
	if best == "" {
		return bestAny
	}
	return best
}

// Expected returns the current expected latency of a variant in ms (0 for
// unknown variants).
func (t *Tuner) Expected(name string) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, p := range t.at.Points() {
		if p.Config[KnobImpl] == name {
			return p.Metrics[MetricTimeMs]
		}
	}
	return 0
}

// Drift returns expected/seed for a variant: the learned multiplicative
// deviation of the live environment from the design-time model (1 = on
// model). Schedulers scale their per-task nominal estimates by it.
func (t *Tuner) Drift(name string) float64 {
	seed := t.seeds[name]
	if seed <= 0 {
		return 1
	}
	exp := t.Expected(name)
	if exp <= 0 {
		return 1
	}
	return exp / seed
}

// Available reports whether a variant is currently selectable.
func (t *Tuner) Available(name string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, known := t.seeds[name]
	return known && !t.disabled[name]
}

// SetAvailable masks or unmasks a variant (e.g. fpga when the last VF of
// the last programmed device is unplugged cluster-wide).
func (t *Tuner) SetAvailable(name string, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, known := t.seeds[name]; !known {
		return
	}
	if ok {
		delete(t.disabled, name)
	} else {
		t.disabled[name] = true
	}
}

// Observe feeds one measured latency (ms) for a variant back into the
// knowledge base.
func (t *Tuner) Observe(name string, ms float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	_ = t.at.Observe(Config{KnobImpl: name}, MetricTimeMs, ms)
}

// Observations returns how many measurements a variant has received.
func (t *Tuner) Observations(name string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.at.Observations(Config{KnobImpl: name})
}

// Degrade multiplies a variant's expected latency by factor — the immediate
// reaction to an environment event, ahead of the next observation.
func (t *Tuner) Degrade(name string, factor float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	_ = t.at.Scale(Config{KnobImpl: name}, MetricTimeMs, factor)
}

// ResetExpected restores a variant's expected latency to its design-time
// seed. A degraded-then-deselected variant receives no observations, so a
// Degrade could otherwise never decay; the resource manager calls this
// when the environment event that caused the degradation is undone (e.g.
// the accelerator is replugged).
func (t *Tuner) ResetExpected(name string) {
	seed, known := t.seeds[name]
	if !known {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := 0.0
	for _, p := range t.at.Points() {
		if p.Config[KnobImpl] == name {
			cur = p.Metrics[MetricTimeMs]
			break
		}
	}
	if cur > 0 {
		_ = t.at.Scale(Config{KnobImpl: name}, MetricTimeMs, seed/cur)
	}
}
