package autotuner

import (
	"math"
	"sync"
	"testing"
)

func newTestTuner(t *testing.T) *Tuner {
	t.Helper()
	tn, err := NewTuner([]Variant{
		{Name: "cpu1", ExpectedMs: 1000},
		{Name: "cpu16", ExpectedMs: 120},
		{Name: "fpga", ExpectedMs: 15},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tn
}

func TestTunerValidation(t *testing.T) {
	if _, err := NewTuner(nil); err == nil {
		t.Error("empty variant set must fail")
	}
	if _, err := NewTuner([]Variant{{Name: "", ExpectedMs: 1}}); err == nil {
		t.Error("unnamed variant must fail")
	}
	if _, err := NewTuner([]Variant{{Name: "a", ExpectedMs: 0}}); err == nil {
		t.Error("non-positive expectation must fail")
	}
	if _, err := NewTuner([]Variant{{Name: "a", ExpectedMs: 1}, {Name: "a", ExpectedMs: 2}}); err == nil {
		t.Error("duplicate variant must fail")
	}
}

func TestTunerSelectsAndAdapts(t *testing.T) {
	tn := newTestTuner(t)
	if got := tn.Best(); got != "fpga" {
		t.Fatalf("fresh tuner best = %q, want fpga", got)
	}
	// The fpga variant degrades in the field (device unplugged, runs fall
	// back to slow software): observations push its expectation past cpu16.
	for i := 0; i < 6; i++ {
		tn.Observe("fpga", 900)
	}
	if got := tn.Best(); got != "cpu16" {
		t.Fatalf("after degradation best = %q (fpga now %.0fms), want cpu16",
			got, tn.Expected("fpga"))
	}
	if tn.Observations("fpga") != 6 {
		t.Fatalf("observations = %d, want 6", tn.Observations("fpga"))
	}
	if d := tn.Drift("fpga"); d < 10 {
		t.Fatalf("fpga drift = %g, want >= 10 (expected latency blew up)", d)
	}
	if d := tn.Drift("cpu16"); math.Abs(d-1) > 1e-9 {
		t.Fatalf("untouched cpu16 drift = %g, want 1", d)
	}
	// Fast fpga observations recover the selection.
	for i := 0; i < 12; i++ {
		tn.Observe("fpga", 15)
	}
	if got := tn.Best(); got != "fpga" {
		t.Fatalf("after recovery best = %q, want fpga", got)
	}
}

func TestTunerAvailabilityAndDegrade(t *testing.T) {
	tn := newTestTuner(t)
	tn.SetAvailable("fpga", false)
	if tn.Available("fpga") {
		t.Fatal("masked variant must be unavailable")
	}
	if got := tn.Best(); got != "cpu16" {
		t.Fatalf("best with fpga masked = %q, want cpu16", got)
	}
	tn.SetAvailable("fpga", true)
	if got := tn.Best(); got != "fpga" {
		t.Fatalf("best after unmask = %q, want fpga", got)
	}
	// Degrade reacts immediately, without an observation.
	tn.Degrade("fpga", 20)
	if got := tn.Best(); got != "cpu16" {
		t.Fatalf("best after 20x degrade = %q, want cpu16", got)
	}
	if exp := tn.Expected("fpga"); math.Abs(exp-300) > 1e-9 {
		t.Fatalf("fpga expected = %g, want 300", exp)
	}
	// Masking everything still returns the overall best (graceful
	// degradation), and unknown variants are ignored safely.
	for _, v := range tn.Variants() {
		tn.SetAvailable(v, false)
	}
	if got := tn.Best(); got == "" {
		t.Fatal("fully masked tuner must still pick a variant")
	}
	tn.SetAvailable("ghost", false)
	if tn.Available("ghost") {
		t.Fatal("unknown variant must be unavailable")
	}
	if tn.Expected("ghost") != 0 || tn.Drift("ghost") != 1 {
		t.Fatal("unknown variant must report zero expectation, unit drift")
	}
}

func TestTunerConcurrentAccess(t *testing.T) {
	tn := newTestTuner(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch i % 4 {
				case 0:
					tn.Observe("fpga", float64(10+g))
				case 1:
					tn.Best()
				case 2:
					tn.SetAvailable("fpga", i%8 == 2)
				default:
					tn.Drift("cpu16")
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestAutotunerScale(t *testing.T) {
	at, err := New(
		[]Knob{{Name: "impl", Values: []string{"a"}}},
		[]OperatingPoint{{Config: Config{"impl": "a"}, Metrics: map[Metric]float64{MetricTimeMs: 10}}},
		nil, Rank{Metric: MetricTimeMs, Minimize: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := at.Scale(Config{"impl": "a"}, MetricTimeMs, 3); err != nil {
		t.Fatal(err)
	}
	if got := at.Select().Metrics[MetricTimeMs]; math.Abs(got-30) > 1e-9 {
		t.Fatalf("scaled metric = %g, want 30", got)
	}
	if err := at.Scale(Config{"impl": "b"}, MetricTimeMs, 2); err == nil {
		t.Error("scaling unknown point must fail")
	}
	if err := at.Scale(Config{"impl": "a"}, MetricTimeMs, 0); err == nil {
		t.Error("non-positive factor must fail")
	}
}
